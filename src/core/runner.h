// Experiment-matrix runner with a shared on-disk result cache.
//
// Every bench binary regenerates one paper table/figure; most need the
// same scheme × trace matrix. The runner memoises completed cells under
// $PPSSD_CACHE_DIR (default ".ppssd_cache" in the working directory), so
// the full bench suite re-simulates each cell exactly once.
//
// Environment knobs honoured by default_spec():
//   REPRO_FULL=1       paper-scale device (65536 blocks) and full traces
//   PPSSD_BLOCKS=n     device scale override
//   PPSSD_SCALE=f      trace-length fraction override
//   PPSSD_NO_CACHE=1   disable the disk cache
//
// Matrix-level knobs (run_all / run_matrix / paper_schemes):
//   PPSSD_JOBS=n       simulate up to n cells concurrently (default 1).
//                      Each cell owns its Ssd and deterministic RNG, so
//                      results are bit-identical at any job count; only
//                      wall_seconds varies.
//   PPSSD_SCHEMES=a,b  restrict paper_schemes() to a comma-separated
//                      subset of registered scheme names (case-
//                      insensitive). Unknown names abort with the list
//                      of known schemes.
#pragma once

#include <string>
#include <vector>

#include "core/experiment.h"

namespace ppssd::core {

class Runner {
 public:
  /// Uses $PPSSD_CACHE_DIR or ".ppssd_cache"; empty string disables cache.
  Runner();
  explicit Runner(std::string cache_dir);

  /// Run (or load) one cell.
  ExperimentResult run(const ExperimentSpec& spec);

  /// Run every spec, up to `jobs` concurrently (0 = $PPSSD_JOBS, default
  /// 1). Results come back in spec order regardless of job count; cells
  /// are independent simulations, so the values are bit-identical at any
  /// parallelism. Telemetry env vars force sequential execution (the
  /// artifact writers share output paths).
  std::vector<ExperimentResult> run_all(
      const std::vector<ExperimentSpec>& specs, std::size_t jobs = 0);

  /// Run the full scheme × trace matrix at the default scale (delegates
  /// to run_all, honouring $PPSSD_JOBS).
  std::vector<ExperimentResult> run_matrix(
      const std::vector<std::string>& schemes,
      const std::vector<std::string>& traces, std::uint32_t pe_cycles = 4000);

  /// Spec template honouring the environment knobs.
  [[nodiscard]] static ExperimentSpec default_spec();

  /// All six paper trace names in Table 3 order.
  [[nodiscard]] static std::vector<std::string> paper_traces();

  /// Every registered scheme, in registry (paper) order — a newly
  /// registered scheme automatically appears in every figure matrix.
  /// $PPSSD_SCHEMES restricts the list (see header comment).
  [[nodiscard]] static std::vector<std::string> paper_schemes();

  [[nodiscard]] const std::string& cache_dir() const { return cache_dir_; }

 private:
  [[nodiscard]] std::string cache_path(const ExperimentSpec& spec) const;

  std::string cache_dir_;
};

}  // namespace ppssd::core
