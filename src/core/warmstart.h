// Warm-start device-checkpoint cache (DESIGN.md §14).
//
// run_experiment spends most of its non-measured wall time warming the
// device: pre-filling the MLC region and streaming ~1.2x the SLC cache
// capacity of writes. That warm-up is a pure function of the experiment
// cache key (config + trace + scale pin every input), so its result — the
// complete post-warm-up device state — is cached on disk as a PPSSDWRM
// container (common/warmstart_format.h) and restored on later runs.
//
// Enabled with PPSSD_WARMSTART=1; checkpoints live under
// PPSSD_WARMSTART_DIR (default .ppssd_warmstart). Restores are
// behavior-preserving to the byte (tests/integration/warmstart_twin_test),
// so cached and cold runs produce identical results.
//
// Failure policy: anything wrong with a checkpoint file — missing, stale
// format, foreign key, truncated, corrupt — is a cache *miss*, never an
// abort. Missing files miss silently; everything else warns once.
#pragma once

#include <string>

namespace ppssd::sim {
class Ssd;
}

namespace ppssd::core {

class WarmStartCache {
 public:
  /// Disabled cache: every lookup misses, store() is a no-op.
  WarmStartCache() = default;
  WarmStartCache(bool enabled, std::string dir)
      : enabled_(enabled), dir_(std::move(dir)) {}

  /// PPSSD_WARMSTART=1 enables; PPSSD_WARMSTART_DIR overrides the
  /// checkpoint directory (default .ppssd_warmstart).
  static WarmStartCache from_env();

  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Checkpoint file path for an experiment cache key.
  [[nodiscard]] std::string path_for(const std::string& key) const;

  /// Restore `ssd` from the checkpoint for `key`. True on a hit (the
  /// device now carries the post-warm-up state); false on any miss.
  /// The device must be freshly constructed from the spec's config —
  /// the geometry header is cross-checked before the payload touches it.
  bool try_restore(const std::string& key, sim::Ssd& ssd) const;

  /// Write the checkpoint for `key` from a just-warmed device. Skips
  /// silently when a checkpoint already exists (first writer wins; the
  /// content is deterministic, so every writer would produce the same
  /// bytes). Writes are atomic (unique temp file + rename), so parallel
  /// runners never observe a half-written checkpoint. Returns true if a
  /// new checkpoint was written.
  bool store(const std::string& key, const sim::Ssd& ssd) const;

 private:
  bool enabled_ = false;
  std::string dir_ = ".ppssd_warmstart";
};

}  // namespace ppssd::core
