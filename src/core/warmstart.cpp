#include "core/warmstart.h"

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <system_error>
#include <vector>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/state_io.h"
#include "common/warmstart_format.h"
#include "nand/geometry.h"
#include "perf/progress.h"
#include "sim/ssd.h"

namespace ppssd::core {

namespace fs = std::filesystem;

namespace {

void warn(const std::string& message) {
  perf::ProgressReporter::global().note("[ppssd] warm-start: " + message);
}

io::warmstart::Header header_for(const std::string& key,
                                 const sim::Ssd& ssd) {
  const cache::Scheme& scheme = ssd.scheme();
  const nand::Geometry& geom = scheme.array().geometry();
  io::warmstart::Header h;
  h.key = key;
  h.scheme = scheme.name();
  h.total_blocks = geom.total_blocks();
  h.planes = geom.planes();
  h.subpages_per_page = geom.subpages_per_page();
  h.slc_blocks_per_plane = geom.slc_blocks_per_plane();
  h.slc_pages_per_block = geom.pages_per_block(CellMode::kSlc);
  h.mlc_pages_per_block = geom.pages_per_block(CellMode::kMlc);
  h.slc_gc_threshold = scheme.blocks().gc_threshold_blocks(CellMode::kSlc);
  h.mlc_gc_threshold = scheme.blocks().gc_threshold_blocks(CellMode::kMlc);
  return h;
}

bool read_file(const std::string& path, std::vector<std::uint8_t>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  in.seekg(0, std::ios::end);
  const auto size = in.tellg();
  if (size < 0) return false;
  in.seekg(0, std::ios::beg);
  out->resize(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(out->data()),
          static_cast<std::streamsize>(out->size()));
  return in.good() || out->empty();
}

/// Read-only view of a checkpoint file, memory-mapped when possible so
/// the multi-MB file is never copied into a heap buffer before the
/// checksum pass — the checksum and the layer restores read the
/// page-cached mapping directly. Falls back to a buffered read when mmap
/// is unavailable (zero-length or special files).
class MappedCheckpoint {
 public:
  explicit MappedCheckpoint(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd >= 0) {
      struct ::stat st {};
      if (::fstat(fd, &st) == 0 && st.st_size > 0) {
        void* map = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                           PROT_READ, MAP_PRIVATE, fd, 0);
        if (map != MAP_FAILED) {
          map_ = map;
          size_ = static_cast<std::size_t>(st.st_size);
          ::madvise(map_, size_, MADV_WILLNEED);
        }
      }
      ::close(fd);
    }
    if (map_ == nullptr) {
      opened_ = read_file(path, &fallback_);
    } else {
      opened_ = true;
    }
  }
  ~MappedCheckpoint() {
    if (map_ != nullptr) ::munmap(map_, size_);
  }
  MappedCheckpoint(const MappedCheckpoint&) = delete;
  MappedCheckpoint& operator=(const MappedCheckpoint&) = delete;

  [[nodiscard]] bool opened() const { return opened_; }
  [[nodiscard]] const std::uint8_t* data() const {
    return map_ != nullptr ? static_cast<const std::uint8_t*>(map_)
                           : fallback_.data();
  }
  [[nodiscard]] std::size_t size() const {
    return map_ != nullptr ? size_ : fallback_.size();
  }

 private:
  void* map_ = nullptr;
  std::size_t size_ = 0;
  std::vector<std::uint8_t> fallback_;
  bool opened_ = false;
};

}  // namespace

WarmStartCache WarmStartCache::from_env() {
  const char* flag = std::getenv("PPSSD_WARMSTART");
  const bool enabled = flag != nullptr && flag[0] == '1';
  const char* dir = std::getenv("PPSSD_WARMSTART_DIR");
  return WarmStartCache(enabled,
                        dir != nullptr ? dir : ".ppssd_warmstart");
}

std::string WarmStartCache::path_for(const std::string& key) const {
  return dir_ + "/wrm-v" + std::to_string(io::warmstart::kVersion) + "-" +
         key + ".ckpt";
}

bool WarmStartCache::try_restore(const std::string& key,
                                 sim::Ssd& ssd) const {
  if (!enabled_) return false;
  const std::string path = path_for(key);

  const MappedCheckpoint bytes(path);
  if (!bytes.opened()) return false;  // no checkpoint: silent miss

  io::StateSource src(bytes.data(), bytes.size());
  io::warmstart::Header h;
  if (!io::warmstart::read_header(src, &h)) {
    warn("ignoring stale/corrupt checkpoint " + path);
    return false;
  }
  if (h.key != key) {
    warn("ignoring checkpoint with foreign key at " + path);
    return false;
  }
  // Cross-check the device shape before the payload touches it; a
  // mismatch here (key collision, edited config) must stay a soft miss,
  // while post-checksum shape mismatches inside restore() are hard
  // programming errors.
  const io::warmstart::Header want = header_for(key, ssd);
  if (h.scheme != want.scheme || h.total_blocks != want.total_blocks ||
      h.planes != want.planes ||
      h.subpages_per_page != want.subpages_per_page ||
      h.slc_blocks_per_plane != want.slc_blocks_per_plane ||
      h.slc_pages_per_block != want.slc_pages_per_block ||
      h.mlc_pages_per_block != want.mlc_pages_per_block ||
      h.slc_gc_threshold != want.slc_gc_threshold ||
      h.mlc_gc_threshold != want.mlc_gc_threshold) {
    warn("ignoring checkpoint with mismatched geometry at " + path);
    return false;
  }

  // Validate the payload in full before any layer restore runs: the
  // bytes after the header must be exactly payload_size and hash to the
  // stored checksum. After this gate, Ssd::restore may assume integrity.
  const std::size_t header_end = src.pos();
  if (bytes.size() - header_end != h.payload_size) {
    warn("ignoring truncated checkpoint " + path);
    return false;
  }
  const std::uint8_t* payload = bytes.data() + header_end;
  const std::size_t payload_size = static_cast<std::size_t>(h.payload_size);
  if (io::warmstart::fnv1a(payload, payload_size) != h.payload_checksum) {
    warn("ignoring corrupt checkpoint " + path);
    return false;
  }

  io::StateSource payload_src(payload, payload_size);
  ssd.restore(payload_src);
  PPSSD_CHECK_MSG(payload_src.exhausted(),
                  "warm-start payload has trailing bytes after restore");
  return true;
}

bool WarmStartCache::store(const std::string& key,
                           const sim::Ssd& ssd) const {
  if (!enabled_) return false;
  std::error_code ec;
  fs::create_directories(dir_, ec);
  const std::string path = path_for(key);
  if (fs::exists(path, ec)) return false;  // first writer already won

  io::StateSink payload_sink;
  ssd.save(payload_sink);
  const std::vector<std::uint8_t> payload = payload_sink.take();

  io::warmstart::Header h = header_for(key, ssd);
  h.payload_size = payload.size();
  h.payload_checksum = io::warmstart::fnv1a(payload.data(), payload.size());

  io::StateSink file_sink;
  io::warmstart::write_header(file_sink, h);
  const std::vector<std::uint8_t>& head = file_sink.buffer();

  // Atomic publish: write a uniquely named temp file in the same
  // directory, then rename over the final path. Concurrent runners
  // (PPSSD_JOBS) either lose the exists() race above or rename identical
  // bytes — both are fine.
  static std::atomic<std::uint64_t> counter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(counter.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      warn("cannot write checkpoint " + tmp);
      return false;
    }
    out.write(reinterpret_cast<const char*>(head.data()),
              static_cast<std::streamsize>(head.size()));
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    if (!out.good()) {
      out.close();
      fs::remove(tmp, ec);
      warn("failed writing checkpoint " + tmp);
      return false;
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    warn("failed publishing checkpoint " + path);
    return false;
  }
  return true;
}

}  // namespace ppssd::core
