// Fixed-width table rendering for the bench binaries' paper-style output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ppssd::core {

/// Simple column-aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Render with a title, column alignment, and a separator rule.
  [[nodiscard]] std::string render(const std::string& title = "") const;

  /// Format helpers.
  static std::string fmt(double v, int precision = 3);
  static std::string pct(double fraction, int precision = 1);
  static std::string count(std::uint64_t v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Relative change of `value` versus `base` as a signed percentage string.
[[nodiscard]] std::string delta_pct(double value, double base);

/// Geometric-mean helper over positive values.
[[nodiscard]] double geomean(const std::vector<double>& values);

// Forward declaration (core/experiment.h).
struct ExperimentResult;

/// Write a flat CSV of experiment results (one row per cell, header
/// included) for external plotting. Returns false on I/O failure.
bool write_results_csv(const std::string& path,
                       const std::vector<ExperimentResult>& results);

}  // namespace ppssd::core
