// One experiment cell: a (scheme × trace × wear) trace-driven simulation,
// and the flat result record every bench derives its figures from.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "cache/registry.h"
#include "cache/scheme.h"
#include "common/config.h"
#include "perf/progress.h"

namespace ppssd::core {

/// Version of the ExperimentResult record layout. Bump whenever fields
/// are added/removed or their meaning changes: the runner keys its disk
/// cache by this version and deserialize() rejects other versions, so a
/// stale cache can never masquerade as a fresh result.
inline constexpr int kResultSchemaVersion = 4;

struct ExperimentSpec {
  std::string scheme = "IPU";        // registry name (cache/registry.h)
  std::string trace;                 // profile name (profiles.h)
  std::uint32_t pe_cycles = 4000;    // device wear at replay start
  std::uint32_t total_blocks = 16384;  // device scale
  double trace_scale = 0.15;         // fraction of the profile's requests
  /// Scheme-specific option bag, handed to the scheme's registry factory
  /// (ablation switches, design knobs). Participates in key().
  cache::SchemeOptions options;

  /// Stable identity string (cache key, log label).
  [[nodiscard]] std::string key() const;
};

struct ExperimentResult {
  ExperimentSpec spec;

  // Figure 5 / 13: response times (ms). Percentiles form the uniform
  // p50/p95/p99/p999 ladder the report layer exposes everywhere.
  double avg_read_ms = 0.0;
  double avg_write_ms = 0.0;
  double avg_overall_ms = 0.0;
  double p50_read_ms = 0.0;
  double p50_write_ms = 0.0;
  double p95_read_ms = 0.0;
  double p95_write_ms = 0.0;
  double p99_read_ms = 0.0;
  double p99_write_ms = 0.0;
  double p999_read_ms = 0.0;
  double p999_write_ms = 0.0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;

  // Figure 8 / 14: mean raw BER observed by host reads.
  double read_ber = 0.0;

  // Figure 6: completed subpage writes per region.
  std::uint64_t slc_subpages = 0;
  std::uint64_t mlc_subpages = 0;

  // Figure 7: host subpage writes per SLC level (index = BlockLevel).
  std::uint64_t level_subpages[4] = {0, 0, 0, 0};
  std::uint64_t intra_page_updates = 0;

  // Figure 9: mean used/total subpage ratio of GC victim blocks.
  double gc_utilization = 0.0;

  // Figure 10: erases per region.
  std::uint64_t slc_erases = 0;
  std::uint64_t mlc_erases = 0;

  // Figure 11: mapping-table model (bytes).
  std::uint64_t map_base_bytes = 0;
  std::uint64_t map_extra_bytes = 0;
  std::uint64_t map_aux_bytes = 0;

  // GC activity.
  std::uint64_t slc_gc_count = 0;
  std::uint64_t mlc_gc_count = 0;
  std::uint64_t evicted_subpages = 0;
  std::uint64_t gc_moved_subpages = 0;

  double avg_queue_depth = 0.0;             // time-weighted mean in-flight
  double avg_queue_depth_at_arrival = 0.0;  // legacy at-arrival sampling

  // Host-side (wall-clock) performance of the simulator itself. Every
  // serialized key here starts with "wall_" — the determinism checks
  // (tests + CI) filter that prefix, since only these fields may differ
  // between bit-identical replays. `ctrl_events` (flash commands the
  // controller scheduled during the measured phase) is deterministic.
  double wall_seconds = 0.0;          // whole cell, all phases
  double wall_setup_seconds = 0.0;    // config + scheme + workload build
  double wall_warmup_seconds = 0.0;   // prefill + cache warm replay
  double wall_measure_seconds = 0.0;  // measured replay
  double wall_report_seconds = 0.0;   // metric collection + assembly
  double wall_reqs_per_sec = 0.0;     // host requests / measured second
  double wall_ctrl_events_per_sec = 0.0;
  std::uint64_t ctrl_events = 0;

  // Chip-occupancy breakdown (seconds of array time) for diagnosis.
  double chip_fg_seconds = 0.0;   // host reads+programs
  double chip_bg_seconds = 0.0;   // GC/migration reads+programs
  double chip_erase_seconds = 0.0;

  [[nodiscard]] double map_normalized() const {
    return map_base_bytes == 0
               ? 0.0
               : static_cast<double>(map_base_bytes + map_extra_bytes) /
                     static_cast<double>(map_base_bytes);
  }

  /// Serialise to key=value lines / parse back (runner's disk cache).
  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static std::optional<ExperimentResult> deserialize(
      const std::string& text);
};

/// Build the SsdConfig for a spec (scale + wear applied).
[[nodiscard]] SsdConfig config_for(const ExperimentSpec& spec);

/// Run the cell end-to-end (synthesise trace, replay, collect). The
/// optional sink receives begin/advance ticks over the measured replay
/// (the runner passes its live progress cell; null costs nothing).
[[nodiscard]] ExperimentResult run_experiment(
    const ExperimentSpec& spec, perf::ProgressSink* progress = nullptr);

/// Resolve the effective intra-run shard count (DESIGN.md §15) from a
/// PPSSD_SHARDS value: unset/invalid = 1 (sequential), 0 = auto
/// (hardware / jobs). The result is clamped to the device's channel
/// count, and — when the experiment matrix itself runs in parallel
/// (jobs > 1) — clamped so jobs × shards never exceeds the machine's
/// hardware threads (one stderr note the first time that fires). With
/// jobs == 1 an explicit shard count is honoured even above the
/// hardware thread count, so sharded determinism can be validated on
/// any machine.
[[nodiscard]] std::uint32_t resolve_shard_count(const char* env_value,
                                                std::uint32_t channels,
                                                std::uint32_t jobs,
                                                std::uint32_t hardware);

/// Experiment-matrix parallelism currently configured (Runner::run_all
/// records the resolved PPSSD_JOBS here before dispatching); composes
/// with PPSSD_SHARDS through resolve_shard_count().
void set_parallel_jobs(std::size_t jobs);
[[nodiscard]] std::size_t parallel_jobs();

}  // namespace ppssd::core
