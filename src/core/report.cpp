#include "core/report.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "core/experiment.h"

namespace ppssd::core {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  PPSSD_CHECK(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::render(const std::string& title) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  if (!title.empty()) {
    os << title << '\n';
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      // Left-align the first column (labels), right-align numbers.
      if (c == 0) {
        os << row[c] << std::string(widths[c] - row[c].size(), ' ');
      } else {
        os << std::string(widths[c] - row[c].size(), ' ') << row[c];
      }
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return os.str();
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string Table::pct(double fraction, int precision) {
  return fmt(fraction * 100.0, precision) + "%";
}

std::string Table::count(std::uint64_t v) { return std::to_string(v); }

std::string delta_pct(double value, double base) {
  if (base == 0.0) return "n/a";
  const double d = (value - base) / base * 100.0;
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(1);
  os << (d >= 0 ? "+" : "") << d << "%";
  return os.str();
}

bool write_results_csv(const std::string& path,
                       const std::vector<ExperimentResult>& results) {
  std::ofstream out(path);
  if (!out) return false;
  out << "scheme,trace,pe_cycles,blocks,scale,avg_read_ms,avg_write_ms,"
         "avg_overall_ms,p50_read_ms,p50_write_ms,p95_read_ms,p95_write_ms,"
         "p99_read_ms,p99_write_ms,p999_read_ms,p999_write_ms,reads,writes,"
         "read_ber,slc_subpages,mlc_subpages,work_subpages,monitor_subpages,"
         "hot_subpages,intra_page_updates,gc_utilization,slc_erases,"
         "mlc_erases,map_total_bytes,slc_gc_count,mlc_gc_count,"
         "evicted_subpages,gc_moved_subpages,ctrl_events,"
         "wall_measure_seconds,wall_reqs_per_sec,wall_ctrl_events_per_sec\n";
  out.precision(10);
  for (const auto& r : results) {
    out << r.spec.scheme << ',' << r.spec.trace << ','
        << r.spec.pe_cycles << ',' << r.spec.total_blocks << ','
        << r.spec.trace_scale << ',' << r.avg_read_ms << ','
        << r.avg_write_ms << ',' << r.avg_overall_ms << ',' << r.p50_read_ms
        << ',' << r.p50_write_ms << ',' << r.p95_read_ms << ','
        << r.p95_write_ms << ',' << r.p99_read_ms << ',' << r.p99_write_ms
        << ',' << r.p999_read_ms << ',' << r.p999_write_ms << ','
        << r.reads << ',' << r.writes << ','
        << r.read_ber << ',' << r.slc_subpages << ',' << r.mlc_subpages
        << ',' << r.level_subpages[1] << ',' << r.level_subpages[2] << ','
        << r.level_subpages[3] << ',' << r.intra_page_updates << ','
        << r.gc_utilization << ',' << r.slc_erases << ',' << r.mlc_erases
        << ',' << (r.map_base_bytes + r.map_extra_bytes) << ','
        << r.slc_gc_count << ',' << r.mlc_gc_count << ','
        << r.evicted_subpages << ',' << r.gc_moved_subpages << ','
        << r.ctrl_events << ',' << r.wall_measure_seconds << ','
        << r.wall_reqs_per_sec << ',' << r.wall_ctrl_events_per_sec << '\n';
  }
  return static_cast<bool>(out);
}

double geomean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double v : values) {
    PPSSD_CHECK(v > 0.0);
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace ppssd::core
