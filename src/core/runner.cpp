#include "core/runner.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "common/thread_pool.h"
#include "perf/profiler.h"
#include "perf/progress.h"
#include "telemetry/introspect/format.h"
#include "telemetry/telemetry.h"
#include "trace/profiles.h"

namespace ppssd::core {

namespace {
std::string env_or(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v ? std::string(v) : fallback;
}
}  // namespace

Runner::Runner()
    : cache_dir_(env_or("PPSSD_NO_CACHE", "").empty()
                     ? env_or("PPSSD_CACHE_DIR", ".ppssd_cache")
                     : "") {
  perf::Profiler::init_from_env();
}

Runner::Runner(std::string cache_dir) : cache_dir_(std::move(cache_dir)) {
  perf::Profiler::init_from_env();
}

std::string Runner::cache_path(const ExperimentSpec& spec) const {
  // The schema version is part of the key: a result-layout change makes
  // every old cache file invisible instead of silently misread.
  return cache_dir_ + "/v" + std::to_string(kResultSchemaVersion) + "-" +
         spec.key() + ".result";
}

ExperimentResult Runner::run(const ExperimentSpec& spec) {
  // A cached cell would skip the simulation entirely — and with it every
  // requested telemetry artifact (trace, metrics CSV, time series) or
  // introspection stream (snapshots, flight dump). When either
  // environment is set, always re-simulate.
  const bool want_telemetry =
      telemetry::TelemetryOptions::from_env().any() ||
      telemetry::introspect::IntrospectOptions::from_env().any();
  if (!cache_dir_.empty() && !want_telemetry) {
    std::ifstream in(cache_path(spec));
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      if (auto cached = ExperimentResult::deserialize(buf.str())) {
        cached->spec = spec;
        return *cached;
      }
    }
  }

  // All status output funnels through the progress reporter: it owns the
  // stderr mutex (so PPSSD_JOBS>1 cells never interleave mid-line), obeys
  // the TTY / PPSSD_PROGRESS activation policy, and drives the live
  // percent/rate/ETA line from the replayer's ticks.
  auto& progress = perf::ProgressReporter::global();
  progress.note("[ppssd] simulating " + spec.key() + " ...");
  perf::ProgressCell* cell =
      progress.start_cell(spec.scheme + "/" + spec.trace);
  ExperimentResult result = run_experiment(spec, cell);
  progress.finish_cell(cell, result.wall_seconds,
                       result.reads + result.writes);

  if (!cache_dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(cache_dir_, ec);
    std::ofstream out(cache_path(spec));
    if (out) out << result.serialize();
  }
  return result;
}

std::vector<ExperimentResult> Runner::run_all(
    const std::vector<ExperimentSpec>& specs, std::size_t jobs) {
  if (jobs == 0) {
    const std::string env = env_or("PPSSD_JOBS", "");
    if (!env.empty()) {
      try {
        jobs = static_cast<std::size_t>(std::stoul(env));
      } catch (...) {
        jobs = 1;
      }
    }
    if (jobs == 0) jobs = 1;
  }
  // The telemetry artifact writers (trace JSON, metrics CSV, time series)
  // share env-configured output paths; concurrent cells would clobber
  // each other's files. The same goes for the snapshot stream (append
  // mode gives one stream per *sequential* cell) and the check-failure
  // hook (process-global). Telemetry/introspection runs force sequential
  // execution.
  if (telemetry::TelemetryOptions::from_env().any() ||
      telemetry::introspect::IntrospectOptions::from_env().any()) {
    jobs = 1;
  }
  // Record the matrix parallelism so per-cell shard resolution
  // (PPSSD_SHARDS; resolve_shard_count) can cap jobs x shards at the
  // machine's hardware threads.
  set_parallel_jobs(jobs);

  perf::ProgressReporter::global().set_expected_cells(specs.size());
  std::vector<ExperimentResult> results(specs.size());
  if (jobs <= 1 || specs.size() <= 1) {
    for (std::size_t i = 0; i < specs.size(); ++i) results[i] = run(specs[i]);
    return results;
  }
  ThreadPool pool(jobs);
  pool.parallel_for(specs.size(),
                    [&](std::size_t i) { results[i] = run(specs[i]); });
  return results;
}

std::vector<ExperimentResult> Runner::run_matrix(
    const std::vector<std::string>& schemes,
    const std::vector<std::string>& traces, std::uint32_t pe_cycles) {
  std::vector<ExperimentSpec> specs;
  specs.reserve(schemes.size() * traces.size());
  for (const auto& trace : traces) {
    for (const auto& scheme : schemes) {
      ExperimentSpec spec = default_spec();
      spec.scheme = scheme;
      spec.trace = trace;
      spec.pe_cycles = pe_cycles;
      specs.push_back(std::move(spec));
    }
  }
  return run_all(specs);
}

ExperimentSpec Runner::default_spec() {
  ExperimentSpec spec;
  if (!env_or("REPRO_FULL", "").empty()) {
    spec.total_blocks = 65536;
    spec.trace_scale = 1.0;
  }
  const std::string blocks = env_or("PPSSD_BLOCKS", "");
  if (!blocks.empty()) {
    spec.total_blocks = static_cast<std::uint32_t>(std::stoul(blocks));
  }
  const std::string scale = env_or("PPSSD_SCALE", "");
  if (!scale.empty()) {
    spec.trace_scale = std::stod(scale);
  }
  return spec;
}

std::vector<std::string> Runner::paper_traces() {
  std::vector<std::string> names;
  for (const auto& p : trace::paper_profiles()) {
    names.push_back(p.name);
  }
  return names;
}

std::vector<std::string> Runner::paper_schemes() {
  // Registry enumeration order is the paper order (Baseline, MGA, IPU,
  // then later additions) — every bench matrix follows it automatically.
  std::vector<std::string> names = cache::SchemeRegistry::instance().names();
  const std::string filter = env_or("PPSSD_SCHEMES", "");
  if (filter.empty()) return names;

  // $PPSSD_SCHEMES=a,b restricts the matrix. Resolve each requested name
  // through the registry (fails fast listing known schemes on a typo),
  // then keep registry order rather than the env-var order so figures
  // stay stable under any spelling of the same subset.
  std::vector<std::string> wanted;
  std::stringstream ss(filter);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    const auto begin = tok.find_first_not_of(" \t");
    if (begin == std::string::npos) continue;  // empty segment
    const auto end = tok.find_last_not_of(" \t");
    wanted.push_back(
        cache::SchemeRegistry::instance().resolve(
            tok.substr(begin, end - begin + 1)).name);
  }
  PPSSD_CHECK_MSG(!wanted.empty(),
                  "PPSSD_SCHEMES is set but names no schemes");
  std::vector<std::string> out;
  for (const auto& name : names) {
    for (const auto& w : wanted) {
      if (w == name) {
        out.push_back(name);
        break;
      }
    }
  }
  return out;
}

}  // namespace ppssd::core
