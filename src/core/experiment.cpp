#include "core/experiment.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <thread>

#include "common/check.h"
#include "core/warmstart.h"
#include "perf/profiler.h"
#include "sim/replayer.h"
#include "sim/shard_executor.h"
#include "sim/ssd.h"
#include "telemetry/introspect/snapshotter.h"
#include "telemetry/telemetry.h"
#include "trace/profiles.h"
#include "trace/synthetic.h"

namespace ppssd::core {

namespace {
using Clock = std::chrono::steady_clock;

std::atomic<std::size_t> g_parallel_jobs{1};

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Cold warm-up: pre-fill the MLC region, then stream ~1.2x the SLC cache
/// capacity of writes from the trace's address model, and land the device
/// on the quiescent post-warm-up boundary (metrics and timing reset).
/// This is the work a warm-start checkpoint hit replaces.
void run_warmup(sim::Ssd& ssd, const trace::SyntheticWorkload& workload,
                const trace::TraceProfile& profile) {
  const auto& geom = ssd.scheme().array().geometry();
  // Fill the whole logical space: an aged drive holds the trace's
  // footprint plus other resident data, so the MLC region runs near its
  // steady-state occupancy and evictions contend with MLC GC.
  const std::uint64_t prefill_subpages = geom.logical_subpages();
  const std::uint32_t free_floor =
      ssd.scheme().blocks().gc_threshold_blocks(CellMode::kMlc) +
      std::max<std::uint32_t>(
          3, static_cast<std::uint32_t>(
                 0.03 * (geom.blocks_per_plane() -
                         geom.slc_blocks_per_plane())));
  ssd.scheme().prefill_mlc(prefill_subpages, free_floor);
  const std::uint64_t cache_bytes =
      static_cast<std::uint64_t>(geom.slc_block_count()) *
      geom.pages_per_block(CellMode::kSlc) * geom.config().page_bytes;
  trace::TraceProfile warm = profile;
  warm.seed = profile.seed + 7777;
  warm.write_ratio = 1.0;
  warm.hot_objects = workload.hot_object_count();
  warm.mean_interarrival_us = 1.0;  // back-to-back; timing is reset after
  warm.requests = static_cast<std::uint64_t>(
      1.2 * static_cast<double>(cache_bytes) /
      (profile.mean_write_kb * 1024.0));
  trace::SyntheticWorkload warmup(warm, ssd.logical_bytes());
  // Warm-up ops carry the kPrefill origin so a blame ledger attached
  // around this phase (telemetry tour, bench harnesses) separates
  // pre-conditioning traffic from measured host work.
  sim::Replayer replayer(ssd);
  ssd.scheme().set_origin_phase(cache::OpOrigin::kPrefill);
  replayer.replay(warmup);
  ssd.scheme().set_origin_phase(cache::OpOrigin::kHost);
  ssd.scheme().reset_metrics();
  ssd.reset_timing();
}
}  // namespace

void set_parallel_jobs(std::size_t jobs) {
  g_parallel_jobs.store(std::max<std::size_t>(1, jobs),
                        std::memory_order_relaxed);
}

std::size_t parallel_jobs() {
  return g_parallel_jobs.load(std::memory_order_relaxed);
}

std::uint32_t resolve_shard_count(const char* env_value,
                                  std::uint32_t channels, std::uint32_t jobs,
                                  std::uint32_t hardware) {
  if (env_value == nullptr || *env_value == '\0') return 1;
  std::uint32_t shards = 0;
  try {
    shards = static_cast<std::uint32_t>(std::stoul(env_value));
  } catch (...) {
    return 1;
  }
  hardware = std::max(1u, hardware);
  jobs = std::max(1u, jobs);
  if (shards == 0) shards = std::max(1u, hardware / jobs);  // auto
  shards = std::min(shards, std::max(1u, channels));
  if (jobs > 1 && static_cast<std::uint64_t>(jobs) * shards > hardware) {
    const std::uint32_t clamped = std::max(1u, hardware / jobs);
    if (clamped < shards) {
      static std::atomic<bool> noted{false};
      if (!noted.exchange(true)) {
        std::fprintf(stderr,
                     "[ppssd] PPSSD_SHARDS clamped %u -> %u (%u jobs x %u "
                     "shards exceeds %u hardware threads)\n",
                     shards, clamped, jobs, shards, hardware);
      }
      shards = clamped;
    }
  }
  return shards;
}

std::string ExperimentSpec::key() const {
  std::ostringstream os;
  os << scheme << '-' << trace << "-pe" << pe_cycles << "-b" << total_blocks
     << "-s" << trace_scale;
  // Option entries append in insertion order; schemes emit a fixed key
  // order so the encoding is stable (and byte-compatible with the legacy
  // IPU "-isr1-lvl1-ipp1-cmb0" suffix).
  for (const auto& [k, v] : options.entries) os << '-' << k << v;
  return os.str();
}

SsdConfig config_for(const ExperimentSpec& spec) {
  SsdConfig cfg = spec.total_blocks == 65536
                      ? SsdConfig::paper()
                      : SsdConfig::scaled(spec.total_blocks);
  cfg.wear.initial_pe_cycles = spec.pe_cycles;
  return cfg;
}

ExperimentResult run_experiment(const ExperimentSpec& spec,
                                perf::ProgressSink* progress) {
  perf::Profiler::init_from_env();
  PPSSD_PROFILE_SCOPE("experiment");
  const auto wall_start = Clock::now();
  auto phase_start = wall_start;

  ExperimentResult r;
  r.spec = spec;

  std::unique_ptr<sim::Ssd> ssd_owner;
  std::unique_ptr<trace::SyntheticWorkload> workload_owner;
  {
    PPSSD_PROFILE_SCOPE("setup");
    const SsdConfig cfg = config_for(spec);
    ssd_owner = std::make_unique<sim::Ssd>(
        cfg, cache::make_scheme(spec.scheme, cfg, spec.options));
    workload_owner = std::make_unique<trace::SyntheticWorkload>(
        trace::profile_by_name(spec.trace), ssd_owner->logical_bytes(),
        spec.trace_scale);
  }
  sim::Ssd& ssd = *ssd_owner;
  trace::SyntheticWorkload& workload = *workload_owner;
  const auto& profile = trace::profile_by_name(spec.trace);
  sim::Replayer replayer(ssd);

  // Sharded windowed execution (PPSSD_SHARDS; DESIGN.md §15): attach the
  // executor before warm-up so the pre-conditioning replay shards too.
  // Results are bit-identical at any shard count. Trace and time-series
  // telemetry observe scheme-time instants ahead of the commit replay,
  // so those runs stay on the sequential path.
  std::unique_ptr<sim::ShardExecutor> shard_exec;
  {
    std::uint32_t shards = resolve_shard_count(
        std::getenv("PPSSD_SHARDS"),
        ssd.scheme().array().geometry().channels(),
        static_cast<std::uint32_t>(parallel_jobs()),
        std::thread::hardware_concurrency());
    const auto topt = telemetry::TelemetryOptions::from_env();
    if (shards > 1 &&
        (!topt.trace_path.empty() || !topt.timeseries_path.empty())) {
      static std::atomic<bool> noted{false};
      if (!noted.exchange(true)) {
        std::fprintf(stderr,
                     "[ppssd] PPSSD_SHARDS ignored: trace/time-series "
                     "telemetry requires the sequential path\n");
      }
      shards = 1;
    }
    if (shards > 1) {
      shard_exec = std::make_unique<sim::ShardExecutor>(shards);
      ssd.set_shard_executor(shard_exec.get());
    }
  }
  r.wall_setup_seconds = seconds_since(phase_start);
  phase_start = Clock::now();

  // Warm-up: the paper evaluates a pre-worn device (P/E already at
  // thousands of cycles), i.e. an aged SSD in steady state. Two phases:
  //  1. Pre-fill the MLC region with the trace's logical footprint (an
  //     aged drive is mostly full, so evictions contend with MLC GC).
  //  2. Fill the SLC cache with ~1.2x its capacity of writes drawn from
  //     the same address model (identical hot-object layout).
  // Metrics and queues reset afterwards so the measured phase starts from
  // steady state.
  //
  // The warmed state is a pure function of the cache key, so with
  // PPSSD_WARMSTART=1 both phases are skipped on a checkpoint hit: the
  // device restores straight to the post-warm-up quiescent boundary.
  // Restores are behavior-preserving to the byte, so measured results are
  // identical either way; a miss warms cold and stores the checkpoint.
  {
    PPSSD_PROFILE_SCOPE("warmup");
    const WarmStartCache warmstart = WarmStartCache::from_env();
    const std::string spec_key = spec.key();
    if (!warmstart.try_restore(spec_key, ssd)) {
      run_warmup(ssd, workload, profile);
      warmstart.store(spec_key, ssd);
    }
  }
  r.wall_warmup_seconds = seconds_since(phase_start);
  phase_start = Clock::now();

  // Telemetry (PPSSD_TRACE / PPSSD_METRICS / PPSSD_TIMESERIES): attach
  // after warm-up so the artifacts cover only the measured phase. The
  // bundle is declared after `ssd`, so it is destroyed (flushing any
  // remaining output) while the scheme its gauges poll is still alive.
  const std::unique_ptr<telemetry::Telemetry> tel =
      telemetry::Telemetry::from_env();
  if (tel) ssd.attach_telemetry(tel.get());

  // Introspection (PPSSD_SNAPSHOT / PPSSD_FLIGHT): same post-warm-up
  // attach discipline, so the snapshot stream and flight ring cover only
  // the measured phase. Declared after `ssd` so finish()/destruction run
  // while the scheme it observes is alive.
  const std::unique_ptr<telemetry::introspect::Snapshotter> snap =
      telemetry::introspect::Snapshotter::from_env();
  if (snap) {
    ssd.attach_introspection(snap.get());
    replayer.set_snapshotter(snap.get());
  }

  if (progress != nullptr) {
    progress->begin(workload.expected_records());
    replayer.set_progress(progress);
  }
  sim::ReplayResult replay;
  {
    PPSSD_PROFILE_SCOPE("measure");
    replay = replayer.replay(workload);
  }
  if (tel) tel->finish(replay.makespan);
  if (snap) {
    snap->finish(replay.makespan);
    ssd.attach_introspection(nullptr);
  }
  r.wall_measure_seconds = seconds_since(phase_start);
  phase_start = Clock::now();

  PPSSD_PROFILE_SCOPE("report");
  const auto& m = ssd.scheme().metrics();
  const auto fp = ssd.scheme().footprint();
  const auto& counters = ssd.scheme().array().counters();

  r.avg_read_ms = replay.latency.avg_read_ms();
  r.avg_write_ms = replay.latency.avg_write_ms();
  r.avg_overall_ms = replay.latency.avg_overall_ms();
  r.p50_read_ms = replay.latency.read_p50_ms();
  r.p50_write_ms = replay.latency.write_p50_ms();
  r.p95_read_ms = replay.latency.read_p95_ms();
  r.p95_write_ms = replay.latency.write_p95_ms();
  r.p99_read_ms = replay.latency.read_p99_ms();
  r.p99_write_ms = replay.latency.write_p99_ms();
  r.p999_read_ms = replay.latency.read_p999_ms();
  r.p999_write_ms = replay.latency.write_p999_ms();
  r.reads = replay.latency.read_count();
  r.writes = replay.latency.write_count();
  r.read_ber = m.read_ber.mean();
  r.slc_subpages = m.slc_subpages_written;
  r.mlc_subpages = m.mlc_subpages_written;
  for (int i = 0; i < 4; ++i) r.level_subpages[i] = m.level_subpages[i];
  r.intra_page_updates = m.intra_page_updates;
  r.gc_utilization = m.gc_utilization.mean();
  r.slc_erases = counters.slc_erases;
  r.mlc_erases = counters.mlc_erases;
  r.map_base_bytes = fp.base_bytes;
  r.map_extra_bytes = fp.scheme_extra;
  r.map_aux_bytes = fp.aux_bytes;
  r.slc_gc_count = m.slc_gc_count;
  r.mlc_gc_count = m.mlc_gc_count;
  r.evicted_subpages = m.evicted_subpages;
  r.gc_moved_subpages = m.gc_moved_subpages;
  r.avg_queue_depth = replay.avg_queue_depth;
  r.avg_queue_depth_at_arrival = replay.avg_queue_depth_at_arrival;
  {
    const auto& u = ssd.service_model().usage();
    r.chip_fg_seconds = ns_to_ms(u.read_fg + u.program_fg) / 1e3;
    r.chip_bg_seconds = ns_to_ms(u.read_bg + u.program_bg) / 1e3;
    r.chip_erase_seconds = ns_to_ms(u.erase_bg) / 1e3;
  }
  // The controller was reset at the end of warm-up, so its command count
  // covers exactly the measured phase.
  r.ctrl_events = ssd.controller().scheduled_ops();
  r.wall_report_seconds = seconds_since(phase_start);
  r.wall_seconds = seconds_since(wall_start);
  if (r.wall_measure_seconds > 0.0) {
    r.wall_reqs_per_sec =
        static_cast<double>(r.reads + r.writes) / r.wall_measure_seconds;
    r.wall_ctrl_events_per_sec =
        static_cast<double>(r.ctrl_events) / r.wall_measure_seconds;
  }
  return r;
}

// ---- serialization ------------------------------------------------------

std::string ExperimentResult::serialize() const {
  std::ostringstream os;
  os.precision(17);
  os << "schema=" << kResultSchemaVersion << '\n'
     << "key=" << spec.key() << '\n'
     << "avg_read_ms=" << avg_read_ms << '\n'
     << "avg_write_ms=" << avg_write_ms << '\n'
     << "avg_overall_ms=" << avg_overall_ms << '\n'
     << "p50_read_ms=" << p50_read_ms << '\n'
     << "p50_write_ms=" << p50_write_ms << '\n'
     << "p95_read_ms=" << p95_read_ms << '\n'
     << "p95_write_ms=" << p95_write_ms << '\n'
     << "p99_read_ms=" << p99_read_ms << '\n'
     << "p99_write_ms=" << p99_write_ms << '\n'
     << "p999_read_ms=" << p999_read_ms << '\n'
     << "p999_write_ms=" << p999_write_ms << '\n'
     << "reads=" << reads << '\n'
     << "writes=" << writes << '\n'
     << "read_ber=" << read_ber << '\n'
     << "slc_subpages=" << slc_subpages << '\n'
     << "mlc_subpages=" << mlc_subpages << '\n'
     << "level0=" << level_subpages[0] << '\n'
     << "level1=" << level_subpages[1] << '\n'
     << "level2=" << level_subpages[2] << '\n'
     << "level3=" << level_subpages[3] << '\n'
     << "intra_page_updates=" << intra_page_updates << '\n'
     << "gc_utilization=" << gc_utilization << '\n'
     << "slc_erases=" << slc_erases << '\n'
     << "mlc_erases=" << mlc_erases << '\n'
     << "map_base_bytes=" << map_base_bytes << '\n'
     << "map_extra_bytes=" << map_extra_bytes << '\n'
     << "map_aux_bytes=" << map_aux_bytes << '\n'
     << "slc_gc_count=" << slc_gc_count << '\n'
     << "mlc_gc_count=" << mlc_gc_count << '\n'
     << "evicted_subpages=" << evicted_subpages << '\n'
     << "gc_moved_subpages=" << gc_moved_subpages << '\n'
     << "avg_queue_depth=" << avg_queue_depth << '\n'
     << "avg_queue_depth_at_arrival=" << avg_queue_depth_at_arrival << '\n'
     << "chip_fg_seconds=" << chip_fg_seconds << '\n'
     << "chip_bg_seconds=" << chip_bg_seconds << '\n'
     << "chip_erase_seconds=" << chip_erase_seconds << '\n'
     << "ctrl_events=" << ctrl_events << '\n'
     // Every wall_* key is wall-clock-derived and nondeterministic; the
     // determinism checks filter on this prefix.
     << "wall_seconds=" << wall_seconds << '\n'
     << "wall_setup_seconds=" << wall_setup_seconds << '\n'
     << "wall_warmup_seconds=" << wall_warmup_seconds << '\n'
     << "wall_measure_seconds=" << wall_measure_seconds << '\n'
     << "wall_report_seconds=" << wall_report_seconds << '\n'
     << "wall_reqs_per_sec=" << wall_reqs_per_sec << '\n'
     << "wall_ctrl_events_per_sec=" << wall_ctrl_events_per_sec << '\n';
  return os.str();
}

std::optional<ExperimentResult> ExperimentResult::deserialize(
    const std::string& text) {
  ExperimentResult r;
  std::istringstream in(text);
  std::string line;
  int seen = 0;
  bool schema_ok = false;
  while (std::getline(in, line)) {
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    const std::string k = line.substr(0, eq);
    const std::string v = line.substr(eq + 1);
    ++seen;
    try {
      if (k == "schema") {
        if (std::stoi(v) != kResultSchemaVersion) return std::nullopt;
        schema_ok = true;
      } else if (k == "key") {
        /* informational */
      } else if (k == "avg_read_ms") {
        r.avg_read_ms = std::stod(v);
      } else if (k == "avg_write_ms") {
        r.avg_write_ms = std::stod(v);
      } else if (k == "avg_overall_ms") {
        r.avg_overall_ms = std::stod(v);
      } else if (k == "p50_read_ms") {
        r.p50_read_ms = std::stod(v);
      } else if (k == "p50_write_ms") {
        r.p50_write_ms = std::stod(v);
      } else if (k == "p95_read_ms") {
        r.p95_read_ms = std::stod(v);
      } else if (k == "p95_write_ms") {
        r.p95_write_ms = std::stod(v);
      } else if (k == "p99_read_ms") {
        r.p99_read_ms = std::stod(v);
      } else if (k == "p99_write_ms") {
        r.p99_write_ms = std::stod(v);
      } else if (k == "p999_read_ms") {
        r.p999_read_ms = std::stod(v);
      } else if (k == "p999_write_ms") {
        r.p999_write_ms = std::stod(v);
      } else if (k == "reads") {
        r.reads = std::stoull(v);
      } else if (k == "writes") {
        r.writes = std::stoull(v);
      } else if (k == "read_ber") {
        r.read_ber = std::stod(v);
      } else if (k == "slc_subpages") {
        r.slc_subpages = std::stoull(v);
      } else if (k == "mlc_subpages") {
        r.mlc_subpages = std::stoull(v);
      } else if (k == "level0") {
        r.level_subpages[0] = std::stoull(v);
      } else if (k == "level1") {
        r.level_subpages[1] = std::stoull(v);
      } else if (k == "level2") {
        r.level_subpages[2] = std::stoull(v);
      } else if (k == "level3") {
        r.level_subpages[3] = std::stoull(v);
      } else if (k == "intra_page_updates") {
        r.intra_page_updates = std::stoull(v);
      } else if (k == "gc_utilization") {
        r.gc_utilization = std::stod(v);
      } else if (k == "slc_erases") {
        r.slc_erases = std::stoull(v);
      } else if (k == "mlc_erases") {
        r.mlc_erases = std::stoull(v);
      } else if (k == "map_base_bytes") {
        r.map_base_bytes = std::stoull(v);
      } else if (k == "map_extra_bytes") {
        r.map_extra_bytes = std::stoull(v);
      } else if (k == "map_aux_bytes") {
        r.map_aux_bytes = std::stoull(v);
      } else if (k == "slc_gc_count") {
        r.slc_gc_count = std::stoull(v);
      } else if (k == "mlc_gc_count") {
        r.mlc_gc_count = std::stoull(v);
      } else if (k == "evicted_subpages") {
        r.evicted_subpages = std::stoull(v);
      } else if (k == "gc_moved_subpages") {
        r.gc_moved_subpages = std::stoull(v);
      } else if (k == "avg_queue_depth") {
        r.avg_queue_depth = std::stod(v);
      } else if (k == "avg_queue_depth_at_arrival") {
        r.avg_queue_depth_at_arrival = std::stod(v);
      } else if (k == "chip_fg_seconds") {
        r.chip_fg_seconds = std::stod(v);
      } else if (k == "chip_bg_seconds") {
        r.chip_bg_seconds = std::stod(v);
      } else if (k == "chip_erase_seconds") {
        r.chip_erase_seconds = std::stod(v);
      } else if (k == "ctrl_events") {
        r.ctrl_events = std::stoull(v);
      } else if (k == "wall_seconds") {
        r.wall_seconds = std::stod(v);
      } else if (k == "wall_setup_seconds") {
        r.wall_setup_seconds = std::stod(v);
      } else if (k == "wall_warmup_seconds") {
        r.wall_warmup_seconds = std::stod(v);
      } else if (k == "wall_measure_seconds") {
        r.wall_measure_seconds = std::stod(v);
      } else if (k == "wall_report_seconds") {
        r.wall_report_seconds = std::stod(v);
      } else if (k == "wall_reqs_per_sec") {
        r.wall_reqs_per_sec = std::stod(v);
      } else if (k == "wall_ctrl_events_per_sec") {
        r.wall_ctrl_events_per_sec = std::stod(v);
      } else {
        --seen;
      }
    } catch (...) {
      return std::nullopt;
    }
  }
  if (!schema_ok) return std::nullopt;  // pre-versioning or foreign file
  if (seen < 10) return std::nullopt;   // clearly truncated
  return r;
}

}  // namespace ppssd::core
