// Scheme-native second-level mapping structures for the SLC-mode cache.
//
// Partial programming breaks the 1-page = 1-logical-page assumption, so a
// scheme that shares pages between requests needs per-subpage translation:
//
//  * MGA keeps a two-level table: the first level locates the physical
//    page, the second level (SecondLevelTable here) records which logical
//    subpage occupies each slot of each SLC page. This is the memory cost
//    Figure 11 charges MGA for.
//  * IPU needs no per-slot table: a page only ever holds versions of a
//    single small extent, so a 2-bit "offset of the latest version" per
//    page (IpuOffsetTable) suffices — the paper's +0.84% memory claim.
//
// Both tables are indexed densely by (SLC block ordinal, page).
#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/state_io.h"
#include "common/types.h"
#include "nand/geometry.h"

namespace ppssd::ftl {

/// MGA's second-level table: per SLC page, per slot, the logical subpage
/// stored there (or kInvalidLsn).
class SecondLevelTable {
 public:
  SecondLevelTable(const nand::Geometry& geom);

  void set(const nand::Geometry& geom, const PhysicalAddress& addr, Lsn lsn);
  void clear(const nand::Geometry& geom, const PhysicalAddress& addr);
  /// Clear every slot of a block (erase).
  void clear_block(const nand::Geometry& geom, BlockId block);

  [[nodiscard]] Lsn lookup(const nand::Geometry& geom,
                           const PhysicalAddress& addr) const;

  /// Number of live (occupied) slot entries.
  [[nodiscard]] std::uint64_t live_entries() const { return live_; }
  /// Total slot capacity of the table.
  [[nodiscard]] std::uint64_t capacity() const { return slots_.size(); }

  /// Warm-start checkpointing (DESIGN.md §14).
  void save(io::StateSink& sink) const {
    sink.vec(slots_);
    sink.u64(live_);
  }
  void restore(io::StateSource& src) {
    std::vector<Lsn> slots = src.vec<Lsn>();
    const std::uint64_t live = src.u64();
    PPSSD_CHECK_MSG(src.ok() && slots.size() == slots_.size(),
                    "warm-start checkpoint does not match MGA table shape");
    slots_ = std::move(slots);
    live_ = live;
  }

 private:
  [[nodiscard]] std::size_t index(const nand::Geometry& geom,
                                  const PhysicalAddress& addr) const;

  std::uint32_t subpages_per_page_;
  std::uint32_t pages_per_block_;
  std::vector<Lsn> slots_;
  std::uint64_t live_ = 0;
};

/// IPU's per-page tag: the extent (first LSN of the single request stored
/// in the page) plus the slot offset of the latest version.
class IpuOffsetTable {
 public:
  struct Tag {
    Lsn extent_base = kInvalidLsn;  // first LSN of the extent in this page
    std::uint8_t latest_offset = 0; // slot of the newest version
    std::uint8_t extent_len = 0;    // subpages per version of the extent
  };

  explicit IpuOffsetTable(const nand::Geometry& geom);

  /// Record the page's extent on first program.
  void open_page(const nand::Geometry& geom, BlockId block, PageId page,
                 Lsn extent_base, std::uint8_t extent_len,
                 std::uint8_t offset);

  /// Record an intra-page update: the latest version now starts at `offset`.
  void update_offset(const nand::Geometry& geom, BlockId block, PageId page,
                     std::uint8_t offset);

  void clear_page(const nand::Geometry& geom, BlockId block, PageId page);
  void clear_block(const nand::Geometry& geom, BlockId block);

  [[nodiscard]] const Tag& lookup(const nand::Geometry& geom, BlockId block,
                                  PageId page) const;

  /// Number of pages with a live tag.
  [[nodiscard]] std::uint64_t live_pages() const { return live_; }
  [[nodiscard]] std::uint64_t capacity() const { return tags_.size(); }

  /// Warm-start checkpointing (DESIGN.md §14). Tags are written
  /// field-wise: the struct has padding bytes, and a memcpy'd vector
  /// would leak indeterminate padding into the checkpoint stream.
  void save(io::StateSink& sink) const {
    sink.u64(tags_.size());
    for (const Tag& t : tags_) {
      sink.u64(t.extent_base);
      sink.u8(t.latest_offset);
      sink.u8(t.extent_len);
    }
    sink.u64(live_);
  }
  void restore(io::StateSource& src) {
    PPSSD_CHECK_MSG(src.u64() == tags_.size(),
                    "warm-start checkpoint does not match IPU table shape");
    for (Tag& t : tags_) {
      t.extent_base = src.u64();
      t.latest_offset = src.u8();
      t.extent_len = src.u8();
    }
    live_ = src.u64();
    PPSSD_CHECK_MSG(src.ok(), "warm-start checkpoint truncated");
  }

 private:
  [[nodiscard]] std::size_t index(const nand::Geometry& geom, BlockId block,
                                  PageId page) const;

  std::uint32_t pages_per_block_;
  std::vector<Tag> tags_;
  std::uint64_t live_ = 0;
};

}  // namespace ppssd::ftl
