// Mapping-table memory model (Figure 11 and Section 4.4.1).
//
// All schemes pay for the first-level page map. Partial programming adds
// scheme-specific structures:
//  * MGA: a two-level table over the SLC region — a per-logical-page
//    pointer into the second level plus a per-subpage-slot entry
//    (logical subpage id + state bits), the dominant overhead.
//  * IPU: 2 bits per SLC page recording which slot holds the latest
//    version of the page's single extent — no per-slot table.
//  * IPU bookkeeping outside the map (reported separately, as the paper
//    does in Sec. 4.4.1): 2-bit level labels per SLC block and one 4-byte
//    IS' accumulator per SLC page.
#pragma once

#include <cstdint>

#include "nand/geometry.h"

namespace ppssd::ftl {

struct FootprintReport {
  std::uint64_t base_bytes = 0;       // first-level page map
  std::uint64_t scheme_extra = 0;     // second-level / offset structures
  std::uint64_t aux_bytes = 0;        // labels, IS' values (IPU)

  [[nodiscard]] std::uint64_t mapping_total() const {
    return base_bytes + scheme_extra;
  }
  /// Mapping size normalised to the Baseline table.
  [[nodiscard]] double normalized() const {
    return base_bytes == 0
               ? 0.0
               : static_cast<double>(mapping_total()) /
                     static_cast<double>(base_bytes);
  }
};

class MappingFootprint {
 public:
  explicit MappingFootprint(const nand::Geometry& geom) : geom_(&geom) {}

  [[nodiscard]] FootprintReport baseline() const;
  [[nodiscard]] FootprintReport mga() const;
  [[nodiscard]] FootprintReport ipu() const;
  [[nodiscard]] FootprintReport ips() const;

  /// Bits needed to address every physical page.
  [[nodiscard]] std::uint32_t ppn_bits() const;
  /// Bits needed to address every logical subpage.
  [[nodiscard]] std::uint32_t lsn_bits() const;

 private:
  [[nodiscard]] std::uint64_t slc_pages() const;
  [[nodiscard]] std::uint64_t slc_subpages() const;

  const nand::Geometry* geom_;
};

}  // namespace ppssd::ftl
