#include "ftl/hotness.h"

namespace ppssd::ftl {

double UpdateTracker::hot_fraction() const {
  std::uint64_t written = 0;
  std::uint64_t hot = 0;
  for (const auto c : counts_) {
    if (c > 0) {
      ++written;
      if (c >= kHotThreshold) ++hot;
    }
  }
  return written == 0 ? 0.0
                      : static_cast<double>(hot) / static_cast<double>(written);
}

}  // namespace ppssd::ftl
