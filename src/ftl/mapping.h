// Address translation: the device map.
//
// Partial programming makes the subpage the unit of translation (the
// paper's Section 1: "partial programming requires a second-level mapping
// table"). The simulator therefore tracks ground truth as one flat
// logical-subpage -> physical-slot table covering both the SLC-mode cache
// and the MLC region; whether a subpage is cached is a property of the
// block it maps to (Geometry::is_slc_block).
//
// How much SRAM each *scheme* would need to realise its own translation
// structures (page-level for Baseline, two-level for MGA, page-level +
// offsets for IPU) is modelled separately by mapping_footprint.h — the
// Figure 11 numbers do not depend on this ground-truth representation.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/state_io.h"
#include "common/types.h"

namespace ppssd::ftl {

class DeviceMap {
 public:
  explicit DeviceMap(std::uint64_t logical_subpages)
      : table_(logical_subpages) {}

  [[nodiscard]] std::uint64_t logical_subpages() const {
    return table_.size();
  }

  /// Physical location of a logical subpage (invalid when unmapped).
  [[nodiscard]] PhysicalAddress lookup(Lsn lsn) const {
    PPSSD_DCHECK(lsn < table_.size());
    return table_[lsn].unpack();
  }

  [[nodiscard]] bool mapped(Lsn lsn) const {
    return table_[lsn].block != kInvalidBlock;
  }

  /// Bind a logical subpage to a slot. The LSN must currently be unmapped
  /// (supersede via clear() first) — this keeps every transition explicit.
  void set(Lsn lsn, const PhysicalAddress& addr) {
    PPSSD_CHECK(lsn < table_.size());
    PPSSD_CHECK(addr.valid());
    Packed& e = table_[lsn];
    PPSSD_CHECK_MSG(e.block == kInvalidBlock,
                    "mapping an LSN that is already mapped");
    e = Packed::pack(addr);
    ++mapped_count_;
  }

  /// Fused lookup-and-clear: unbind `lsn` and return its previous slot in
  /// one table access, or an invalid address when the LSN was unmapped
  /// (never-written LSNs are a legal fast-path case for the write path's
  /// supersede step, so this does not abort like clear()).
  [[nodiscard]] PhysicalAddress take(Lsn lsn) {
    PPSSD_DCHECK(lsn < table_.size());
    Packed& e = table_[lsn];
    const PhysicalAddress addr = e.unpack();
    if (e.block != kInvalidBlock) {
      e = Packed{};
      PPSSD_DCHECK(mapped_count_ > 0);
      --mapped_count_;
    }
    return addr;
  }

  /// Unbind a mapped logical subpage.
  void clear(Lsn lsn) {
    PPSSD_CHECK(lsn < table_.size());
    Packed& e = table_[lsn];
    PPSSD_CHECK_MSG(e.block != kInvalidBlock, "clearing an unmapped LSN");
    e = Packed{};
    PPSSD_CHECK(mapped_count_ > 0);
    --mapped_count_;
  }

  /// Number of currently mapped logical subpages.
  [[nodiscard]] std::uint64_t mapped_count() const { return mapped_count_; }

  /// Warm-start checkpointing (DESIGN.md §14): the whole table verbatim.
  void save(io::StateSink& sink) const {
    sink.vec(table_);
    sink.u64(mapped_count_);
  }
  void restore(io::StateSource& src) {
    // In place: the table is already sized for the device's LSN space and
    // vec_into sticky-fails on a length mismatch.
    (void)src.vec_into(table_);
    const std::uint64_t mapped = src.u64();
    PPSSD_CHECK_MSG(src.ok(),
                    "warm-start checkpoint does not match mapping shape");
    mapped_count_ = mapped;
  }

 private:
  struct Packed {
    BlockId block = kInvalidBlock;
    PageId page = 0;
    SubpageId subpage = 0;
    std::uint8_t reserved = 0;

    static Packed pack(const PhysicalAddress& a) {
      return Packed{a.block, a.page, a.subpage, 0};
    }
    [[nodiscard]] PhysicalAddress unpack() const {
      if (block == kInvalidBlock) return PhysicalAddress{};
      return PhysicalAddress{block, page, subpage};
    }
  };
  static_assert(sizeof(Packed) == 8, "DeviceMap entries should stay 8B");

  std::vector<Packed> table_;
  std::uint64_t mapped_count_ = 0;
};

}  // namespace ppssd::ftl
