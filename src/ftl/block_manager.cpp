#include "ftl/block_manager.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ppssd::ftl {

namespace {
constexpr std::size_t level_index(BlockLevel level) {
  return static_cast<std::size_t>(level);
}

constexpr const char* level_name(BlockLevel level) {
  switch (level) {
    case BlockLevel::kHighDensity:
      return "mlc";
    case BlockLevel::kWork:
      return "work";
    case BlockLevel::kMonitor:
      return "monitor";
    case BlockLevel::kHot:
      return "hot";
  }
  return "?";
}
}  // namespace

BlockManager::BlockManager(nand::FlashArray& array) : array_(&array) {
  const auto& geom = array.geometry();
  const auto& cache = array.config().cache;

  planes_.resize(geom.planes());
  state_.assign(geom.total_blocks(), State::kFree);

  for (std::uint32_t p = 0; p < geom.planes(); ++p) {
    const BlockId first = geom.plane_first_block(p);
    for (std::uint32_t i = 0; i < geom.blocks_per_plane(); ++i) {
      const BlockId b = first + i;
      const auto& blk = array.block(b);
      FreeEntry entry{blk.erase_count(), b};
      if (blk.mode() == CellMode::kSlc) {
        planes_[p].slc_free.push(entry);
      } else {
        planes_[p].mlc_free.push(entry);
      }
    }
  }

  const auto slc_per_plane = geom.slc_blocks_per_plane();
  const auto mlc_per_plane = geom.blocks_per_plane() - slc_per_plane;
  slc_threshold_ = std::max<std::uint32_t>(
      2, static_cast<std::uint32_t>(
             std::ceil(slc_per_plane * cache.gc_threshold)));
  mlc_threshold_ = std::max<std::uint32_t>(
      2, static_cast<std::uint32_t>(
             std::ceil(mlc_per_plane * cache.gc_threshold)));
  monitor_cap_ = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(slc_per_plane * cache.monitor_ratio));
  hot_cap_ = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(slc_per_plane * cache.hot_ratio));
}

std::uint32_t BlockManager::level_cap(BlockLevel level) const {
  switch (level) {
    case BlockLevel::kMonitor:
      return monitor_cap_;
    case BlockLevel::kHot:
      return hot_cap_;
    default:
      return UINT32_MAX;  // Work and MLC are bounded only by the free list
  }
}

bool BlockManager::open_block(std::uint32_t plane, BlockLevel level) {
  PlaneState& ps = planes_[plane];
  FreeHeap& heap =
      level == BlockLevel::kHighDensity ? ps.mlc_free : ps.slc_free;
  if (heap.empty()) return false;
  if (ps.level_counts[level_index(level)] >= level_cap(level)) return false;
  const BlockId b = heap.top().block;
  heap.pop();
  PPSSD_CHECK(state_[b] == State::kFree);
  state_[b] = State::kOpen;
  array_->block(b).set_level(level);
  ps.open[level_index(level)] = b;
  ++ps.level_counts[level_index(level)];
  if (tl_opened_[level_index(level)]) {
    tl_opened_[level_index(level)]->inc();
  }
  return true;
}

void BlockManager::close_open(std::uint32_t plane, BlockLevel level) {
  PlaneState& ps = planes_[plane];
  const BlockId b = ps.open[level_index(level)];
  PPSSD_CHECK(b != kInvalidBlock);
  state_[b] = State::kUsed;
  ps.open[level_index(level)] = kInvalidBlock;
}

std::optional<PageAlloc> BlockManager::allocate_page(std::uint32_t plane,
                                                     BlockLevel level) {
  PPSSD_CHECK(plane < planes_.size());
  PlaneState& ps = planes_[plane];

  // Try the requested level, degrading through lower SLC levels when the
  // cap or free list blocks the allocation (Algorithm 1's fallback).
  for (;;) {
    BlockId open = ps.open[level_index(level)];
    if (open != kInvalidBlock &&
        !array_->block(open).has_free_page()) {
      close_open(plane, level);
      open = kInvalidBlock;
    }
    if (open == kInvalidBlock) {
      if (!open_block(plane, level)) {
        if (level == BlockLevel::kHot || level == BlockLevel::kMonitor) {
          level = static_cast<BlockLevel>(static_cast<std::uint8_t>(level) - 1);
          if (tl_level_fallbacks_) tl_level_fallbacks_->inc();
          continue;
        }
        return std::nullopt;  // Work or MLC exhausted: caller must GC
      }
      open = ps.open[level_index(level)];
    }
    const auto frontier =
        static_cast<PageId>(array_->block(open).write_frontier());
    return PageAlloc{open, frontier, level};
  }
}

std::uint32_t BlockManager::free_blocks(std::uint32_t plane,
                                        CellMode mode) const {
  const PlaneState& ps = planes_[plane];
  return static_cast<std::uint32_t>(mode == CellMode::kSlc
                                        ? ps.slc_free.size()
                                        : ps.mlc_free.size());
}

std::uint32_t BlockManager::gc_threshold_blocks(CellMode mode) const {
  return mode == CellMode::kSlc ? slc_threshold_ : mlc_threshold_;
}

void BlockManager::for_each_candidate(
    std::uint32_t plane, CellMode mode,
    const std::function<void(BlockId)>& fn) const {
  const auto& geom = array_->geometry();
  const BlockId first = geom.plane_first_block(plane);
  const std::uint32_t slc = geom.slc_blocks_per_plane();
  const std::uint32_t begin = mode == CellMode::kSlc ? 0 : slc;
  const std::uint32_t end =
      mode == CellMode::kSlc ? slc : geom.blocks_per_plane();
  for (std::uint32_t i = begin; i < end; ++i) {
    const BlockId b = first + i;
    if (is_candidate(b)) fn(b);
  }
}

void BlockManager::release_block(BlockId b) {
  PPSSD_CHECK_MSG(state_[b] == State::kUsed,
                  "released block must be a closed, in-use block");
  const auto& geom = array_->geometry();
  nand::Block& blk = array_->block(b);
  PPSSD_CHECK_MSG(blk.programmed_subpages() == 0,
                  "released block was not erased");
  PlaneState& ps = planes_[geom.plane_of(b)];
  // Retire the level label.
  const auto li = level_index(blk.level());
  PPSSD_CHECK(ps.level_counts[li] > 0);
  --ps.level_counts[li];
  state_[b] = State::kFree;
  FreeEntry entry{blk.erase_count(), b};
  if (blk.mode() == CellMode::kSlc) {
    ps.slc_free.push(entry);
  } else {
    ps.mlc_free.push(entry);
  }
}

std::uint32_t BlockManager::level_count(std::uint32_t plane,
                                        BlockLevel level) const {
  return planes_[plane].level_counts[level_index(level)];
}

std::uint64_t BlockManager::level_count_total(BlockLevel level) const {
  std::uint64_t total = 0;
  for (const PlaneState& ps : planes_) {
    total += ps.level_counts[level_index(level)];
  }
  return total;
}

std::uint64_t BlockManager::free_blocks_total(CellMode mode) const {
  std::uint64_t total = 0;
  for (const PlaneState& ps : planes_) {
    total += mode == CellMode::kSlc ? ps.slc_free.size()
                                    : ps.mlc_free.size();
  }
  return total;
}

void BlockManager::attach_telemetry(telemetry::MetricsRegistry& registry,
                                    const telemetry::Labels& labels) {
  for (const BlockLevel level :
       {BlockLevel::kHighDensity, BlockLevel::kWork, BlockLevel::kMonitor,
        BlockLevel::kHot}) {
    telemetry::Labels l = labels;
    l.push_back({"level", level_name(level)});
    tl_opened_[level_index(level)] = registry.counter("blocks_opened", l);
    registry.gauge_fn("level_pool_blocks", l,
                      [this, level] {
                        return static_cast<double>(level_count_total(level));
                      });
  }
  tl_level_fallbacks_ = registry.counter("alloc_level_fallbacks", labels);
  for (const CellMode mode : {CellMode::kSlc, CellMode::kMlc}) {
    telemetry::Labels l = labels;
    l.push_back({"region", mode == CellMode::kSlc ? "slc" : "mlc"});
    registry.gauge_fn("free_blocks", l, [this, mode] {
      return static_cast<double>(free_blocks_total(mode));
    });
  }
}

}  // namespace ppssd::ftl
