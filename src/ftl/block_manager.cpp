#include "ftl/block_manager.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/state_io.h"

namespace ppssd::ftl {

namespace {
constexpr std::size_t level_index(BlockLevel level) {
  return static_cast<std::size_t>(level);
}

constexpr const char* level_name(BlockLevel level) {
  switch (level) {
    case BlockLevel::kHighDensity:
      return "mlc";
    case BlockLevel::kWork:
      return "work";
    case BlockLevel::kMonitor:
      return "monitor";
    case BlockLevel::kHot:
      return "hot";
  }
  return "?";
}
}  // namespace

BlockManager::BlockManager(nand::FlashArray& array) : array_(&array) {
  const auto& geom = array.geometry();
  const auto& cache = array.config().cache;

  planes_.resize(geom.planes());
  state_.assign(geom.total_blocks(), State::kFree);
  indexed_invalid_.assign(geom.total_blocks(), 0);

  const std::uint32_t slc_subpages =
      geom.pages_per_block(CellMode::kSlc) * geom.subpages_per_page();
  const std::uint32_t mlc_subpages =
      geom.pages_per_block(CellMode::kMlc) * geom.subpages_per_page();

  const std::uint32_t slc_per_plane_blocks = geom.slc_blocks_per_plane();
  index_by_block_.resize(geom.total_blocks());
  for (std::uint32_t p = 0; p < geom.planes(); ++p) {
    const BlockId first = geom.plane_first_block(p);
    planes_[p].slc_victims.init(first, slc_per_plane_blocks,
                                slc_subpages + 1);
    planes_[p].mlc_victims.init(
        first + slc_per_plane_blocks,
        geom.blocks_per_plane() - slc_per_plane_blocks, mlc_subpages + 1);
    for (std::uint32_t i = 0; i < geom.blocks_per_plane(); ++i) {
      const BlockId b = first + i;
      const auto& blk = array.block(b);
      FreeEntry entry{blk.erase_count(), b};
      if (blk.mode() == CellMode::kSlc) {
        planes_[p].slc_free.push(entry);
        index_by_block_[b] = &planes_[p].slc_victims;
      } else {
        planes_[p].mlc_free.push(entry);
        index_by_block_[b] = &planes_[p].mlc_victims;
      }
    }
  }

  const auto slc_per_plane = geom.slc_blocks_per_plane();
  const auto mlc_per_plane = geom.blocks_per_plane() - slc_per_plane;
  slc_threshold_ = std::max<std::uint32_t>(
      2, static_cast<std::uint32_t>(
             std::ceil(slc_per_plane * cache.gc_threshold)));
  mlc_threshold_ = std::max<std::uint32_t>(
      2, static_cast<std::uint32_t>(
             std::ceil(mlc_per_plane * cache.gc_threshold)));
  monitor_cap_ = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(slc_per_plane * cache.monitor_ratio));
  hot_cap_ = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(slc_per_plane * cache.hot_ratio));

  const std::uint32_t pressure_words = (geom.planes() + 63) / 64;
  pressure_[0].assign(pressure_words, 0);
  pressure_[1].assign(pressure_words, 0);
  for (std::uint32_t p = 0; p < geom.planes(); ++p) {
    update_pressure(p, CellMode::kSlc);
    update_pressure(p, CellMode::kMlc);
  }

  array_->set_block_observer(this);
}

BlockManager::~BlockManager() { array_->set_block_observer(nullptr); }

std::uint32_t BlockManager::level_cap(BlockLevel level) const {
  switch (level) {
    case BlockLevel::kMonitor:
      return monitor_cap_;
    case BlockLevel::kHot:
      return hot_cap_;
    default:
      return UINT32_MAX;  // Work and MLC are bounded only by the free list
  }
}

const BlockManager::VictimIndex& BlockManager::victim_index(
    std::uint32_t plane, CellMode mode) const {
  const PlaneState& ps = planes_[plane];
  return mode == CellMode::kSlc ? ps.slc_victims : ps.mlc_victims;
}

void BlockManager::index_insert(BlockId b) {
  VictimIndex& idx = victim_index(b);
  const std::uint32_t invalid = array_->block(b).invalid_subpages();
  PPSSD_CHECK(invalid < idx.counts.size());
  const std::uint32_t slot = b - idx.first;
  const std::uint64_t mask = 1ull << (slot % 64);
  PPSSD_CHECK((idx.members[slot / 64] & mask) == 0);
  idx.members[slot / 64] |= mask;
  idx.row(invalid)[slot / 64] |= mask;
  ++idx.counts[invalid];
  ++idx.candidates;
  indexed_invalid_[b] = invalid;
  idx.max_invalid = std::max(idx.max_invalid, invalid);
}

void BlockManager::index_erase(BlockId b) {
  VictimIndex& idx = victim_index(b);
  const std::uint32_t key = indexed_invalid_[b];
  const std::uint32_t slot = b - idx.first;
  const std::uint64_t mask = 1ull << (slot % 64);
  PPSSD_CHECK((idx.members[slot / 64] & mask) != 0);
  idx.members[slot / 64] &= ~mask;
  idx.row(key)[slot / 64] &= ~mask;
  PPSSD_CHECK(idx.counts[key] > 0);
  --idx.counts[key];
  --idx.candidates;
  indexed_invalid_[b] = 0;
  // Keep the watermark exact so the victim query never probes an empty
  // bucket: walk it down past any buckets this removal drained.
  while (idx.max_invalid > 0 && idx.counts[idx.max_invalid] == 0) {
    --idx.max_invalid;
  }
}

void BlockManager::on_subpage_invalidated(BlockId b, std::uint32_t invalid) {
  // Open blocks are not candidates; their invalid count is captured when
  // they close. Free blocks cannot be invalidated at all.
  if (state_[b] != State::kUsed) return;
  VictimIndex& idx = victim_index(b);
  const std::uint32_t key = indexed_invalid_[b];
  PPSSD_CHECK_MSG(invalid == key + 1,
                  "victim index out of sync with block invalid count");
  PPSSD_DCHECK(invalid < idx.counts.size());
  const std::uint32_t slot = b - idx.first;
  const std::uint64_t mask = 1ull << (slot % 64);
  PPSSD_DCHECK((idx.row(key)[slot / 64] & mask) != 0);
  idx.row(key)[slot / 64] &= ~mask;
  idx.row(invalid)[slot / 64] |= mask;
  --idx.counts[key];
  ++idx.counts[invalid];
  indexed_invalid_[b] = invalid;
  idx.max_invalid = std::max(idx.max_invalid, invalid);
}

bool BlockManager::open_block(std::uint32_t plane, BlockLevel level) {
  PlaneState& ps = planes_[plane];
  FreeHeap& heap =
      level == BlockLevel::kHighDensity ? ps.mlc_free : ps.slc_free;
  if (heap.empty()) return false;
  if (ps.level_counts[level_index(level)] >= level_cap(level)) return false;
  const BlockId b = heap.top().block;
  heap.pop();
  update_pressure(plane, level == BlockLevel::kHighDensity ? CellMode::kMlc
                                                           : CellMode::kSlc);
  PPSSD_CHECK(state_[b] == State::kFree);
  state_[b] = State::kOpen;
  array_->block(b).set_level(level);
  ps.open[level_index(level)] = b;
  ++ps.level_counts[level_index(level)];
  if (tl_opened_[level_index(level)]) {
    tl_opened_[level_index(level)]->inc();
  }
  return true;
}

void BlockManager::close_open(std::uint32_t plane, BlockLevel level) {
  PlaneState& ps = planes_[plane];
  const BlockId b = ps.open[level_index(level)];
  PPSSD_CHECK(b != kInvalidBlock);
  state_[b] = State::kUsed;
  ps.open[level_index(level)] = kInvalidBlock;
  index_insert(b);
}

std::optional<PageAlloc> BlockManager::allocate_page(std::uint32_t plane,
                                                     BlockLevel level) {
  PPSSD_CHECK(plane < planes_.size());
  PlaneState& ps = planes_[plane];

  // Try the requested level, degrading through lower SLC levels when the
  // cap or free list blocks the allocation (Algorithm 1's fallback).
  for (;;) {
    BlockId open = ps.open[level_index(level)];
    if (open != kInvalidBlock &&
        !array_->block(open).has_free_page()) {
      close_open(plane, level);
      open = kInvalidBlock;
    }
    if (open == kInvalidBlock) {
      if (!open_block(plane, level)) {
        if (level == BlockLevel::kHot || level == BlockLevel::kMonitor) {
          level = static_cast<BlockLevel>(static_cast<std::uint8_t>(level) - 1);
          if (tl_level_fallbacks_) tl_level_fallbacks_->inc();
          continue;
        }
        return std::nullopt;  // Work or MLC exhausted: caller must GC
      }
      open = ps.open[level_index(level)];
    }
    const auto frontier =
        static_cast<PageId>(array_->block(open).write_frontier());
    return PageAlloc{open, frontier, level};
  }
}

void BlockManager::for_each_candidate(
    std::uint32_t plane, CellMode mode,
    const std::function<void(BlockId)>& fn) const {
  const VictimIndex& idx = victim_index(plane, mode);
  for (std::uint32_t w = 0; w < idx.words; ++w) {
    std::uint64_t bitsw = idx.members[w];
    while (bitsw != 0) {
      const auto i = static_cast<std::uint32_t>(std::countr_zero(bitsw));
      fn(idx.first + w * 64 + i);
      bitsw &= bitsw - 1;
    }
  }
}

BlockId BlockManager::max_invalid_candidate(std::uint32_t plane,
                                            CellMode mode) const {
  const VictimIndex& idx = victim_index(plane, mode);
  if (idx.max_invalid == 0) return kInvalidBlock;
  const std::uint64_t* bucket = idx.row(idx.max_invalid);
  for (std::uint32_t w = 0; w < idx.words; ++w) {
    if (bucket[w] != 0) {
      return idx.first + w * 64 +
             static_cast<std::uint32_t>(std::countr_zero(bucket[w]));
    }
  }
  PPSSD_CHECK_MSG(false, "victim-index watermark points at an empty bucket");
  return kInvalidBlock;
}

void BlockManager::release_block(BlockId b) {
  PPSSD_CHECK_MSG(state_[b] == State::kUsed,
                  "released block must be a closed, in-use block");
  nand::Block& blk = array_->block(b);
  PPSSD_CHECK_MSG(blk.programmed_subpages() == 0,
                  "released block was not erased");
  index_erase(b);
  const std::uint32_t plane = array_->block_static(b).plane;
  PlaneState& ps = planes_[plane];
  // Retire the level label.
  const auto li = level_index(blk.level());
  PPSSD_CHECK(ps.level_counts[li] > 0);
  --ps.level_counts[li];
  state_[b] = State::kFree;
  FreeEntry entry{blk.erase_count(), b};
  if (blk.mode() == CellMode::kSlc) {
    ps.slc_free.push(entry);
    update_pressure(plane, CellMode::kSlc);
  } else {
    ps.mlc_free.push(entry);
    update_pressure(plane, CellMode::kMlc);
  }
}

std::uint32_t BlockManager::level_count(std::uint32_t plane,
                                        BlockLevel level) const {
  return planes_[plane].level_counts[level_index(level)];
}

std::uint64_t BlockManager::level_count_total(BlockLevel level) const {
  std::uint64_t total = 0;
  for (const PlaneState& ps : planes_) {
    total += ps.level_counts[level_index(level)];
  }
  return total;
}

std::uint64_t BlockManager::free_blocks_total(CellMode mode) const {
  std::uint64_t total = 0;
  for (const PlaneState& ps : planes_) {
    total += mode == CellMode::kSlc ? ps.slc_free.size()
                                    : ps.mlc_free.size();
  }
  return total;
}

void BlockManager::check_victim_index() const {
  const auto& geom = array_->geometry();
  for (std::uint32_t p = 0; p < geom.planes(); ++p) {
    for (const CellMode mode : {CellMode::kSlc, CellMode::kMlc}) {
      const VictimIndex& idx = victim_index(p, mode);
      std::uint32_t expected_watermark = 0;
      std::uint32_t filed = 0;
      for (std::uint32_t key = 0;
           key < static_cast<std::uint32_t>(idx.counts.size()); ++key) {
        const std::uint64_t* bucket = idx.row(key);
        std::uint32_t popcount = 0;
        for (std::uint32_t w = 0; w < idx.words; ++w) {
          std::uint64_t bitsw = bucket[w];
          popcount += static_cast<std::uint32_t>(std::popcount(bitsw));
          while (bitsw != 0) {
            const auto i =
                static_cast<std::uint32_t>(std::countr_zero(bitsw));
            const BlockId b = idx.first + w * 64 + i;
            PPSSD_CHECK_MSG((idx.members[w] >> i) & 1,
                            "bucketed block missing from candidate bitmap");
            PPSSD_CHECK_MSG(indexed_invalid_[b] == key,
                            "block filed under the wrong invalid count");
            PPSSD_CHECK_MSG(array_->block(b).invalid_subpages() == key,
                            "filed invalid count is stale");
            bitsw &= bitsw - 1;
          }
        }
        PPSSD_CHECK_MSG(popcount == idx.counts[key],
                        "bucket population count is stale");
        filed += popcount;
        if (popcount > 0) expected_watermark = key;
      }
      PPSSD_CHECK_MSG(filed == idx.candidates,
                      "candidate count and buckets disagree on membership");
      PPSSD_CHECK_MSG(idx.max_invalid == expected_watermark,
                      "victim-index watermark is stale");
    }
  }
  // Every kUsed block must be filed exactly once; no open/free block may be.
  for (BlockId b = 0; b < geom.total_blocks(); ++b) {
    const auto& idx =
        victim_index(geom.plane_of(b), array_->block(b).mode());
    PPSSD_CHECK_MSG(index_by_block_[b] == &idx,
                    "per-block victim-index pointer is stale");
    const std::uint32_t slot = b - idx.first;
    const bool member = (idx.members[slot / 64] >> (slot % 64)) & 1;
    PPSSD_CHECK_MSG(member == (state_[b] == State::kUsed),
                    "candidacy disagrees with block state");
  }
  // The pressure bitmask must agree with a fresh free-list recount for
  // every plane and region.
  for (std::uint32_t p = 0; p < geom.planes(); ++p) {
    for (const CellMode mode : {CellMode::kSlc, CellMode::kMlc}) {
      const bool expected =
          free_blocks(p, mode) <= gc_threshold_blocks(mode);
      PPSSD_CHECK_MSG(needs_gc(p, mode) == expected,
                      "GC-pressure bit disagrees with free-list size");
    }
  }
}

namespace {

/// std::priority_queue keeps its storage in the protected member `c`;
/// this opens it for verbatim capture/replacement.
template <typename Q>
struct HeapAccess : Q {
  static const typename Q::container_type& get(const Q& q) {
    return q.*&HeapAccess::c;
  }
  static void set(Q& q, typename Q::container_type v) {
    q.*&HeapAccess::c = std::move(v);
  }
};

}  // namespace

void BlockManager::save(io::StateSink& sink) const {
  // Keep the layout in sync with the read-only checkpoint adapter
  // (telemetry/introspect/warmstart_reader.cpp), which re-parses this
  // section standalone; bump io::warmstart::kVersion on any change.
  sink.vec(state_);
  sink.u64(planes_.size());
  for (const PlaneState& ps : planes_) {
    sink.vec(HeapAccess<FreeHeap>::get(ps.slc_free));
    sink.vec(HeapAccess<FreeHeap>::get(ps.mlc_free));
    sink.pod(ps.open);
    sink.pod(ps.level_counts);
  }
}

void BlockManager::restore(io::StateSource& src) {
  std::vector<State> state = src.vec<State>();
  PPSSD_CHECK_MSG(src.ok() && state.size() == state_.size() &&
                      src.u64() == planes_.size(),
                  "warm-start checkpoint does not match block-manager shape");
  state_ = std::move(state);
  for (PlaneState& ps : planes_) {
    HeapAccess<FreeHeap>::set(ps.slc_free, src.vec<FreeEntry>());
    HeapAccess<FreeHeap>::set(ps.mlc_free, src.vec<FreeEntry>());
    ps.open = src.pod<std::array<BlockId, 4>>();
    ps.level_counts = src.pod<std::array<std::uint32_t, 4>>();
  }
  PPSSD_CHECK_MSG(src.ok(), "warm-start checkpoint truncated");

  // Rebuild the derived structures from the restored ground truth. The
  // victim-index bitmaps are insertion-order independent, so filing every
  // kUsed block in BlockId order reproduces the cold-built index exactly.
  const auto& geom = array_->geometry();
  indexed_invalid_.assign(geom.total_blocks(), 0);
  const std::uint32_t slc_subpages =
      geom.pages_per_block(CellMode::kSlc) * geom.subpages_per_page();
  const std::uint32_t mlc_subpages =
      geom.pages_per_block(CellMode::kMlc) * geom.subpages_per_page();
  const std::uint32_t slc_per_plane = geom.slc_blocks_per_plane();
  for (std::uint32_t p = 0; p < geom.planes(); ++p) {
    const BlockId first = geom.plane_first_block(p);
    planes_[p].slc_victims.init(first, slc_per_plane, slc_subpages + 1);
    planes_[p].slc_victims.max_invalid = 0;
    planes_[p].slc_victims.candidates = 0;
    planes_[p].mlc_victims.init(
        first + slc_per_plane, geom.blocks_per_plane() - slc_per_plane,
        mlc_subpages + 1);
    planes_[p].mlc_victims.max_invalid = 0;
    planes_[p].mlc_victims.candidates = 0;
  }
  for (BlockId b = 0; b < geom.total_blocks(); ++b) {
    if (state_[b] == State::kUsed) index_insert(b);
  }
  for (std::uint32_t p = 0; p < geom.planes(); ++p) {
    update_pressure(p, CellMode::kSlc);
    update_pressure(p, CellMode::kMlc);
  }
}

void BlockManager::attach_telemetry(telemetry::MetricsRegistry& registry,
                                    const telemetry::Labels& labels) {
  for (const BlockLevel level :
       {BlockLevel::kHighDensity, BlockLevel::kWork, BlockLevel::kMonitor,
        BlockLevel::kHot}) {
    telemetry::Labels l = labels;
    l.push_back({"level", level_name(level)});
    tl_opened_[level_index(level)] = registry.counter("blocks_opened", l);
    registry.gauge_fn("level_pool_blocks", l,
                      [this, level] {
                        return static_cast<double>(level_count_total(level));
                      });
  }
  tl_level_fallbacks_ = registry.counter("alloc_level_fallbacks", labels);
  for (const CellMode mode : {CellMode::kSlc, CellMode::kMlc}) {
    telemetry::Labels l = labels;
    l.push_back({"region", mode == CellMode::kSlc ? "slc" : "mlc"});
    registry.gauge_fn("free_blocks", l, [this, mode] {
      return static_cast<double>(free_blocks_total(mode));
    });
  }
}

}  // namespace ppssd::ftl
