#include "ftl/mapping.h"

// DeviceMap is header-only; this TU anchors it in the library.
