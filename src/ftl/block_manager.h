// Block allocation: per-plane free lists, open (active) blocks, wear-aware
// selection, GC-trigger accounting, and the GC victim index.
//
// Allocation policy follows the paper's Table 2 settings: dynamic page
// allocation striped over planes, "static" wear-levelling realised as
// lowest-erase-count-first free-block selection, and a GC threshold
// expressed as a fraction of each plane's block budget per region.
//
// Open blocks: each plane keeps one append point per SLC level (Work,
// Monitor, Hot) and one for the MLC region. IPU's level-capacity caps
// (CacheConfig::monitor_ratio / hot_ratio) bound how many blocks of a
// plane may carry the Monitor/Hot label; when a cap or the free list is
// exhausted the allocator degrades to the next lower level, as Algorithm 1
// prescribes ("lower level blocks can be instead selected only if no
// available block can be found").
//
// Victim index: every closed in-use block is filed, per (plane, region),
// in (a) a candidate membership bitmap — what for_each_candidate
// iterates, so candidate walks cost O(candidates) instead of
// O(blocks_per_plane) — and (b) an invalid-count bucket bitmap array with
// a max watermark, so the greedy "most invalid subpages, lowest BlockId
// tie-break" victim query is O(1) amortized and the per-invalidation
// bucket move is two word operations. The index learns about
// invalidations through the nand::BlockObserver hook; candidacy
// transitions happen at close / release time inside this class.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <vector>

#include "common/types.h"
#include "nand/flash_array.h"
#include "telemetry/metrics.h"

namespace ppssd::ftl {

struct PageAlloc {
  BlockId block = kInvalidBlock;
  PageId page = kInvalidPage;
  BlockLevel level = BlockLevel::kWork;  // actual level after fallback
};

class BlockManager : private nand::BlockObserver {
 public:
  explicit BlockManager(nand::FlashArray& array);
  ~BlockManager() override;

  BlockManager(const BlockManager&) = delete;
  BlockManager& operator=(const BlockManager&) = delete;

  /// Allocate the next fresh page for (plane, level). SLC levels may
  /// degrade (Hot -> Monitor -> Work) when caps or free blocks run out;
  /// kHighDensity allocates in the MLC region. Returns nullopt only when
  /// the region has neither an open page nor a free block.
  std::optional<PageAlloc> allocate_page(std::uint32_t plane,
                                         BlockLevel level);

  /// Free blocks currently available in the plane's region.
  [[nodiscard]] std::uint32_t free_blocks(std::uint32_t plane,
                                          CellMode mode) const {
    const PlaneState& ps = planes_[plane];
    return static_cast<std::uint32_t>(mode == CellMode::kSlc
                                          ? ps.slc_free.size()
                                          : ps.mlc_free.size());
  }

  /// GC trigger threshold in blocks for one plane's region.
  [[nodiscard]] std::uint32_t gc_threshold_blocks(CellMode mode) const {
    return mode == CellMode::kSlc ? slc_threshold_ : mlc_threshold_;
  }

  /// True when the plane's region is at or below its GC threshold. Backed
  /// by the incrementally maintained pressure bitmask (DESIGN.md §10):
  /// free-list sizes change only at open_block/release_block, so the mask
  /// is updated there instead of recomputed per poll.
  [[nodiscard]] bool needs_gc(std::uint32_t plane, CellMode mode) const {
    return (pressure_[pressure_row(mode)][plane / 64] >> (plane % 64)) & 1;
  }

  /// Smallest plane id >= `from` whose SLC *or* MLC region is under GC
  /// pressure, or kNoPlane when none is. Lets the per-request GC driver
  /// iterate set bits instead of scanning every plane.
  static constexpr std::uint32_t kNoPlane = UINT32_MAX;
  [[nodiscard]] std::uint32_t next_pressured_plane(std::uint32_t from) const {
    const auto& slc = pressure_[0];
    const auto& mlc = pressure_[1];
    const auto nwords = static_cast<std::uint32_t>(slc.size());
    for (std::uint32_t w = from / 64; w < nwords; ++w) {
      std::uint64_t bits = slc[w] | mlc[w];
      if (w == from / 64 && (from % 64) != 0) {
        bits &= ~0ull << (from % 64);
      }
      if (bits != 0) {
        return w * 64 + static_cast<std::uint32_t>(std::countr_zero(bits));
      }
    }
    return kNoPlane;
  }

  /// True if the block is fully erased and waiting in a free list.
  [[nodiscard]] bool is_free(BlockId b) const { return state_[b] == State::kFree; }
  /// True if the block is an active append point.
  [[nodiscard]] bool is_open(BlockId b) const { return state_[b] == State::kOpen; }
  /// GC victim candidacy: in use and not an append point.
  [[nodiscard]] bool is_candidate(BlockId b) const {
    return state_[b] == State::kUsed;
  }

  /// Invoke fn(block) for every GC candidate of the plane's region, in
  /// ascending BlockId order. O(candidates) via the victim index.
  void for_each_candidate(std::uint32_t plane, CellMode mode,
                          const std::function<void(BlockId)>& fn) const;

  /// The candidate with the most invalid subpages (ties broken by lowest
  /// BlockId), or kInvalidBlock when no candidate has any invalid
  /// subpage. O(1) amortized via the invalid-count bucket index.
  [[nodiscard]] BlockId max_invalid_candidate(std::uint32_t plane,
                                              CellMode mode) const;

  /// Return an erased block to its plane's free list. The caller must have
  /// erased it via FlashArray::erase first.
  void release_block(BlockId b);

  /// Number of blocks currently carrying each SLC level label in a plane.
  [[nodiscard]] std::uint32_t level_count(std::uint32_t plane,
                                          BlockLevel level) const;

  [[nodiscard]] std::uint32_t plane_count() const {
    return static_cast<std::uint32_t>(planes_.size());
  }

  /// Total blocks currently carrying a level label across all planes.
  [[nodiscard]] std::uint64_t level_count_total(BlockLevel level) const;
  /// Total free blocks of a region across all planes.
  [[nodiscard]] std::uint64_t free_blocks_total(CellMode mode) const;

  /// Abort on any victim-index inconsistency against a full state scan
  /// (candidate membership, bucket keys, watermark). O(blocks);
  /// test/diagnostic use.
  void check_victim_index() const;

  /// Register pool-transition counters (blocks opened per level, level
  /// fallbacks) and polled pool-size gauges. `labels` identifies the
  /// owning scheme.
  void attach_telemetry(telemetry::MetricsRegistry& registry,
                        const telemetry::Labels& labels);

  /// Warm-start checkpointing (DESIGN.md §14). The free heaps are written
  /// as their underlying storage verbatim: heap order among equal erase
  /// counts is history-dependent, so rebuilding them would change warm-path
  /// pop order versus the cold run. The victim indexes, per-block invalid
  /// keys, and GC-pressure bitmasks are canonical functions of (state_,
  /// array) and are rebuilt on restore — which must therefore run *after*
  /// FlashArray::restore on the same device.
  void save(io::StateSink& sink) const;
  void restore(io::StateSource& src);

 private:
  enum class State : std::uint8_t { kFree = 0, kOpen = 1, kUsed = 2 };

  struct FreeEntry {
    std::uint32_t erase_count;
    BlockId block;
    bool operator>(const FreeEntry& o) const {
      return erase_count != o.erase_count ? erase_count > o.erase_count
                                          : block > o.block;
    }
  };
  using FreeHeap =
      std::priority_queue<FreeEntry, std::vector<FreeEntry>, std::greater<>>;

  /// Per-(plane, region) GC candidate index. A region's blocks occupy the
  /// contiguous BlockId range [first, first + slots), so membership is a
  /// bitmap: `members` holds every candidate, `bits` holds one bitmap row
  /// per invalid-subpage count. Bucket moves on the invalidation hot path
  /// are then two word operations, and bit order is BlockId order, so a
  /// first-set-bit scan reproduces the lowest-BlockId tie-break.
  /// `max_invalid` is an exact watermark — the highest non-empty bucket
  /// (0 when empty or when all candidates are fully valid).
  struct VictimIndex {
    BlockId first = 0;        // region's first BlockId
    std::uint32_t slots = 0;  // blocks in the region
    std::uint32_t words = 0;  // 64-bit words per bitmap row
    std::vector<std::uint64_t> members;  // candidate membership
    std::vector<std::uint64_t> bits;     // buckets × words, row-major
    std::vector<std::uint32_t> counts;   // population per bucket
    std::uint32_t candidates = 0;
    std::uint32_t max_invalid = 0;

    void init(BlockId first_block, std::uint32_t block_count,
              std::uint32_t bucket_count) {
      first = first_block;
      slots = block_count;
      words = (block_count + 63) / 64;
      members.assign(words, 0);
      bits.assign(static_cast<std::size_t>(bucket_count) * words, 0);
      counts.assign(bucket_count, 0);
    }
    [[nodiscard]] std::uint64_t* row(std::uint32_t key) {
      return bits.data() + static_cast<std::size_t>(key) * words;
    }
    [[nodiscard]] const std::uint64_t* row(std::uint32_t key) const {
      return bits.data() + static_cast<std::size_t>(key) * words;
    }
  };

  struct PlaneState {
    FreeHeap slc_free;
    FreeHeap mlc_free;
    VictimIndex slc_victims;
    VictimIndex mlc_victims;
    // Open block per SLC level (index by BlockLevel value; 0 = MLC open).
    std::array<BlockId, 4> open{kInvalidBlock, kInvalidBlock, kInvalidBlock,
                                kInvalidBlock};
    std::array<std::uint32_t, 4> level_counts{};  // labelled blocks per level
  };

  /// Open a fresh block for (plane, level); returns false when impossible.
  bool open_block(std::uint32_t plane, BlockLevel level);
  /// Retire the plane's open block for a level (it became full) into the
  /// victim index.
  void close_open(std::uint32_t plane, BlockLevel level);

  [[nodiscard]] std::uint32_t level_cap(BlockLevel level) const;

  [[nodiscard]] VictimIndex& victim_index(BlockId b) {
    return *index_by_block_[b];
  }
  [[nodiscard]] const VictimIndex& victim_index(std::uint32_t plane,
                                                CellMode mode) const;

  static constexpr std::size_t pressure_row(CellMode mode) {
    return mode == CellMode::kSlc ? 0 : 1;
  }

  /// Recompute one plane/region pressure bit. Called at every free-list
  /// size transition (open_block pop, release_block push, construction).
  void update_pressure(std::uint32_t plane, CellMode mode) {
    auto& words = pressure_[pressure_row(mode)];
    const std::uint64_t mask = 1ull << (plane % 64);
    if (free_blocks(plane, mode) <= gc_threshold_blocks(mode)) {
      words[plane / 64] |= mask;
    } else {
      words[plane / 64] &= ~mask;
    }
  }

  /// File a newly closed block under its current invalid count.
  void index_insert(BlockId b);
  /// Remove a candidate filed under `indexed_invalid_[b]`.
  void index_erase(BlockId b);

  /// nand::BlockObserver — an invalidation moves a filed candidate one
  /// bucket up; invalidations of open/free blocks are intentionally
  /// ignored (the count is captured when the block closes).
  void on_subpage_invalidated(BlockId b, std::uint32_t invalid) override;

  nand::FlashArray* array_;
  std::vector<PlaneState> planes_;
  std::vector<State> state_;
  /// Invalid count each kUsed block is currently filed under (stable even
  /// while the underlying block is concurrently erased, until release).
  std::vector<std::uint32_t> indexed_invalid_;
  /// Per-block victim-index pointer (plane_of division + mode branch
  /// precomputed once; PlaneState storage is stable after construction).
  std::vector<VictimIndex*> index_by_block_;
  /// GC-pressure bitmasks, one bit per plane, per region
  /// (pressure_row(mode)). Invariant: bit (plane) is set iff
  /// free_blocks(plane, mode) <= gc_threshold_blocks(mode); audited by
  /// check_victim_index().
  std::array<std::vector<std::uint64_t>, 2> pressure_;
  std::uint32_t slc_threshold_;
  std::uint32_t mlc_threshold_;
  std::uint32_t monitor_cap_;
  std::uint32_t hot_cap_;
  // Telemetry handles (null until attached): blocks opened per level and
  // allocations degraded to a lower level.
  std::array<telemetry::Counter*, 4> tl_opened_{};
  telemetry::Counter* tl_level_fallbacks_ = nullptr;
};

}  // namespace ppssd::ftl
