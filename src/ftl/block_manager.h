// Block allocation: per-plane free lists, open (active) blocks, wear-aware
// selection, and GC-trigger accounting.
//
// Allocation policy follows the paper's Table 2 settings: dynamic page
// allocation striped over planes, "static" wear-levelling realised as
// lowest-erase-count-first free-block selection, and a GC threshold
// expressed as a fraction of each plane's block budget per region.
//
// Open blocks: each plane keeps one append point per SLC level (Work,
// Monitor, Hot) and one for the MLC region. IPU's level-capacity caps
// (CacheConfig::monitor_ratio / hot_ratio) bound how many blocks of a
// plane may carry the Monitor/Hot label; when a cap or the free list is
// exhausted the allocator degrades to the next lower level, as Algorithm 1
// prescribes ("lower level blocks can be instead selected only if no
// available block can be found").
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <vector>

#include "common/types.h"
#include "nand/flash_array.h"
#include "telemetry/metrics.h"

namespace ppssd::ftl {

struct PageAlloc {
  BlockId block = kInvalidBlock;
  PageId page = kInvalidPage;
  BlockLevel level = BlockLevel::kWork;  // actual level after fallback
};

class BlockManager {
 public:
  explicit BlockManager(nand::FlashArray& array);

  /// Allocate the next fresh page for (plane, level). SLC levels may
  /// degrade (Hot -> Monitor -> Work) when caps or free blocks run out;
  /// kHighDensity allocates in the MLC region. Returns nullopt only when
  /// the region has neither an open page nor a free block.
  std::optional<PageAlloc> allocate_page(std::uint32_t plane,
                                         BlockLevel level);

  /// Free blocks currently available in the plane's region.
  [[nodiscard]] std::uint32_t free_blocks(std::uint32_t plane,
                                          CellMode mode) const;

  /// GC trigger threshold in blocks for one plane's region.
  [[nodiscard]] std::uint32_t gc_threshold_blocks(CellMode mode) const;

  [[nodiscard]] bool needs_gc(std::uint32_t plane, CellMode mode) const {
    return free_blocks(plane, mode) <= gc_threshold_blocks(mode);
  }

  /// True if the block is fully erased and waiting in a free list.
  [[nodiscard]] bool is_free(BlockId b) const { return state_[b] == State::kFree; }
  /// True if the block is an active append point.
  [[nodiscard]] bool is_open(BlockId b) const { return state_[b] == State::kOpen; }
  /// GC victim candidacy: in use and not an append point.
  [[nodiscard]] bool is_candidate(BlockId b) const {
    return state_[b] == State::kUsed;
  }

  /// Invoke fn(block) for every GC candidate of the plane's region.
  void for_each_candidate(std::uint32_t plane, CellMode mode,
                          const std::function<void(BlockId)>& fn) const;

  /// Return an erased block to its plane's free list. The caller must have
  /// erased it via FlashArray::erase first.
  void release_block(BlockId b);

  /// Number of blocks currently carrying each SLC level label in a plane.
  [[nodiscard]] std::uint32_t level_count(std::uint32_t plane,
                                          BlockLevel level) const;

  [[nodiscard]] std::uint32_t plane_count() const {
    return static_cast<std::uint32_t>(planes_.size());
  }

  /// Total blocks currently carrying a level label across all planes.
  [[nodiscard]] std::uint64_t level_count_total(BlockLevel level) const;
  /// Total free blocks of a region across all planes.
  [[nodiscard]] std::uint64_t free_blocks_total(CellMode mode) const;

  /// Register pool-transition counters (blocks opened per level, level
  /// fallbacks) and polled pool-size gauges. `labels` identifies the
  /// owning scheme.
  void attach_telemetry(telemetry::MetricsRegistry& registry,
                        const telemetry::Labels& labels);

 private:
  enum class State : std::uint8_t { kFree = 0, kOpen = 1, kUsed = 2 };

  struct FreeEntry {
    std::uint32_t erase_count;
    BlockId block;
    bool operator>(const FreeEntry& o) const {
      return erase_count != o.erase_count ? erase_count > o.erase_count
                                          : block > o.block;
    }
  };
  using FreeHeap =
      std::priority_queue<FreeEntry, std::vector<FreeEntry>, std::greater<>>;

  struct PlaneState {
    FreeHeap slc_free;
    FreeHeap mlc_free;
    // Open block per SLC level (index by BlockLevel value; 0 = MLC open).
    std::array<BlockId, 4> open{kInvalidBlock, kInvalidBlock, kInvalidBlock,
                                kInvalidBlock};
    std::array<std::uint32_t, 4> level_counts{};  // labelled blocks per level
  };

  /// Open a fresh block for (plane, level); returns false when impossible.
  bool open_block(std::uint32_t plane, BlockLevel level);
  /// Retire the plane's open block for a level (it became full).
  void close_open(std::uint32_t plane, BlockLevel level);

  [[nodiscard]] std::uint32_t level_cap(BlockLevel level) const;

  nand::FlashArray* array_;
  std::vector<PlaneState> planes_;
  std::vector<State> state_;
  std::uint32_t slc_threshold_;
  std::uint32_t mlc_threshold_;
  std::uint32_t monitor_cap_;
  std::uint32_t hot_cap_;
  // Telemetry handles (null until attached): blocks opened per level and
  // allocations degraded to a lower level.
  std::array<telemetry::Counter*, 4> tl_opened_{};
  telemetry::Counter* tl_level_fallbacks_ = nullptr;
};

}  // namespace ppssd::ftl
