// Per-LSN write-frequency tracking.
//
// IPU's hot/cold separation is *implicit* (block levels encode hotness),
// but the simulator still tracks per-LSN write statistics for three
// consumers: trace characterisation (Table 3's "Hot write" column),
// metric reports, and the single-level ablation scheme which needs an
// explicit hotness oracle to compare against IPU's implicit one.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/state_io.h"
#include "common/types.h"

namespace ppssd::ftl {

class UpdateTracker {
 public:
  /// Threshold of accesses after which an address counts as hot (the
  /// paper's Table 3 uses >= 4).
  static constexpr std::uint8_t kHotThreshold = 4;

  explicit UpdateTracker(std::uint64_t logical_subpages)
      : counts_(logical_subpages, 0), last_write_ms_(logical_subpages, 0) {}

  void record_write(Lsn lsn, SimTime now) {
    PPSSD_CHECK(lsn < counts_.size());
    if (counts_[lsn] < 255) ++counts_[lsn];
    last_write_ms_[lsn] = static_cast<std::uint32_t>(now / 1'000'000);
  }

  [[nodiscard]] bool ever_written(Lsn lsn) const { return counts_[lsn] > 0; }
  [[nodiscard]] bool is_hot(Lsn lsn) const {
    return counts_[lsn] >= kHotThreshold;
  }
  [[nodiscard]] std::uint8_t write_count(Lsn lsn) const {
    return counts_[lsn];
  }
  [[nodiscard]] std::uint32_t last_write_ms(Lsn lsn) const {
    return last_write_ms_[lsn];
  }

  /// Fraction of written addresses with >= kHotThreshold writes.
  [[nodiscard]] double hot_fraction() const;

  /// Warm-start checkpointing (DESIGN.md §14).
  void save(io::StateSink& sink) const {
    sink.vec(counts_);
    sink.vec(last_write_ms_);
  }
  void restore(io::StateSource& src) {
    std::vector<std::uint8_t> counts = src.vec<std::uint8_t>();
    std::vector<std::uint32_t> last = src.vec<std::uint32_t>();
    PPSSD_CHECK_MSG(src.ok() && counts.size() == counts_.size() &&
                        last.size() == last_write_ms_.size(),
                    "warm-start checkpoint does not match tracker shape");
    counts_ = std::move(counts);
    last_write_ms_ = std::move(last);
  }

 private:
  std::vector<std::uint8_t> counts_;
  std::vector<std::uint32_t> last_write_ms_;
};

}  // namespace ppssd::ftl
