#include "ftl/mapping_footprint.h"

#include <bit>

namespace ppssd::ftl {

namespace {
/// ceil(bits/8) rounded up to whole bytes for `entries` entries.
std::uint64_t bits_to_bytes(std::uint64_t entries, std::uint64_t bits) {
  return (entries * bits + 7) / 8;
}

std::uint32_t bits_for(std::uint64_t values) {
  return values <= 1 ? 1 : std::bit_width(values - 1);
}
}  // namespace

std::uint32_t MappingFootprint::ppn_bits() const {
  const std::uint64_t phys_pages =
      static_cast<std::uint64_t>(geom_->mlc_block_count()) *
          geom_->pages_per_block(CellMode::kMlc) +
      static_cast<std::uint64_t>(geom_->slc_block_count()) *
          geom_->pages_per_block(CellMode::kSlc);
  return bits_for(phys_pages);
}

std::uint32_t MappingFootprint::lsn_bits() const {
  return bits_for(geom_->logical_subpages());
}

std::uint64_t MappingFootprint::slc_pages() const {
  return static_cast<std::uint64_t>(geom_->slc_block_count()) *
         geom_->pages_per_block(CellMode::kSlc);
}

std::uint64_t MappingFootprint::slc_subpages() const {
  return slc_pages() * geom_->subpages_per_page();
}

FootprintReport MappingFootprint::baseline() const {
  FootprintReport r;
  const std::uint64_t logical_pages =
      geom_->logical_subpages() / geom_->subpages_per_page();
  // Page-level dynamic mapping: one PPN per logical page, byte-aligned
  // entries as real FTLs store them.
  r.base_bytes = logical_pages * ((ppn_bits() + 7) / 8);
  return r;
}

FootprintReport MappingFootprint::mga() const {
  FootprintReport r = baseline();
  // Two-level subpage mapping over the SLC region:
  //  - forward: per SLC subpage slot, the logical subpage stored there
  //    (lsn bits + 2 state bits);
  //  - reverse/first-level extension: per cached logical subpage a slot
  //    pointer (2 bits) and a residency bit; sized for the worst case of a
  //    fully-occupied cache.
  const std::uint64_t slot_entry_bits = lsn_bits() + 2;
  const std::uint64_t fwd = bits_to_bytes(slc_subpages(), slot_entry_bits);
  const std::uint64_t rev = bits_to_bytes(slc_subpages(), ppn_bits() + 3);
  r.scheme_extra = fwd + rev;
  return r;
}

FootprintReport MappingFootprint::ipu() const {
  FootprintReport r = baseline();
  // Latest-version offset: 2 bits per SLC page (Section 4.4.1), plus the
  // cache residency index sized like Baseline's SLC handling (per cached
  // extent one first-level entry — already covered by base map semantics).
  r.scheme_extra = bits_to_bytes(slc_pages(), 2);
  // Reported separately by the paper: 2-bit level labels per SLC block and
  // a 4-byte IS' value per SLC page.
  r.aux_bytes =
      bits_to_bytes(geom_->slc_block_count(), 2) + slc_pages() * 4;
  return r;
}

FootprintReport MappingFootprint::ips() const {
  // In-place switch keeps Baseline's page-level dynamic map: promotion
  // rebinds a cached page's mapping to the reprogrammed dense page, no
  // second-level structure. The only addition is one
  // reprogrammed-eligibility bit per SLC page (frontier-state tracking),
  // reported outside the map like IPU's bookkeeping.
  FootprintReport r = baseline();
  r.aux_bytes = bits_to_bytes(slc_pages(), 1);
  return r;
}

}  // namespace ppssd::ftl
