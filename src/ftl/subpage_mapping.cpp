#include "ftl/subpage_mapping.h"

namespace ppssd::ftl {

SecondLevelTable::SecondLevelTable(const nand::Geometry& geom)
    : subpages_per_page_(geom.subpages_per_page()),
      pages_per_block_(geom.pages_per_block(CellMode::kSlc)) {
  slots_.assign(static_cast<std::size_t>(geom.slc_block_count()) *
                    pages_per_block_ * subpages_per_page_,
                kInvalidLsn);
}

std::size_t SecondLevelTable::index(const nand::Geometry& geom,
                                    const PhysicalAddress& addr) const {
  PPSSD_CHECK(addr.page < pages_per_block_ &&
              addr.subpage < subpages_per_page_);
  return (static_cast<std::size_t>(geom.slc_ordinal(addr.block)) *
              pages_per_block_ +
          addr.page) *
             subpages_per_page_ +
         addr.subpage;
}

void SecondLevelTable::set(const nand::Geometry& geom,
                           const PhysicalAddress& addr, Lsn lsn) {
  Lsn& slot = slots_[index(geom, addr)];
  PPSSD_CHECK_MSG(slot == kInvalidLsn, "second-level slot already occupied");
  slot = lsn;
  ++live_;
}

void SecondLevelTable::clear(const nand::Geometry& geom,
                             const PhysicalAddress& addr) {
  Lsn& slot = slots_[index(geom, addr)];
  PPSSD_CHECK_MSG(slot != kInvalidLsn, "clearing an empty second-level slot");
  slot = kInvalidLsn;
  PPSSD_CHECK(live_ > 0);
  --live_;
}

void SecondLevelTable::clear_block(const nand::Geometry& geom,
                                   BlockId block) {
  const std::size_t base = static_cast<std::size_t>(geom.slc_ordinal(block)) *
                           pages_per_block_ * subpages_per_page_;
  for (std::size_t i = 0; i < static_cast<std::size_t>(pages_per_block_) *
                                  subpages_per_page_;
       ++i) {
    if (slots_[base + i] != kInvalidLsn) {
      slots_[base + i] = kInvalidLsn;
      PPSSD_CHECK(live_ > 0);
      --live_;
    }
  }
}

Lsn SecondLevelTable::lookup(const nand::Geometry& geom,
                             const PhysicalAddress& addr) const {
  return slots_[index(geom, addr)];
}

IpuOffsetTable::IpuOffsetTable(const nand::Geometry& geom)
    : pages_per_block_(geom.pages_per_block(CellMode::kSlc)) {
  tags_.assign(
      static_cast<std::size_t>(geom.slc_block_count()) * pages_per_block_,
      Tag{});
}

std::size_t IpuOffsetTable::index(const nand::Geometry& geom, BlockId block,
                                  PageId page) const {
  PPSSD_CHECK(page < pages_per_block_);
  return static_cast<std::size_t>(geom.slc_ordinal(block)) *
             pages_per_block_ +
         page;
}

void IpuOffsetTable::open_page(const nand::Geometry& geom, BlockId block,
                               PageId page, Lsn extent_base,
                               std::uint8_t extent_len, std::uint8_t offset) {
  Tag& tag = tags_[index(geom, block, page)];
  PPSSD_CHECK_MSG(tag.extent_base == kInvalidLsn,
                  "opening an IPU page that already has an extent");
  PPSSD_CHECK(extent_len >= 1);
  tag.extent_base = extent_base;
  tag.extent_len = extent_len;
  tag.latest_offset = offset;
  ++live_;
}

void IpuOffsetTable::update_offset(const nand::Geometry& geom, BlockId block,
                                   PageId page, std::uint8_t offset) {
  Tag& tag = tags_[index(geom, block, page)];
  PPSSD_CHECK_MSG(tag.extent_base != kInvalidLsn,
                  "updating offset of an untagged IPU page");
  tag.latest_offset = offset;
}

void IpuOffsetTable::clear_page(const nand::Geometry& geom, BlockId block,
                                PageId page) {
  Tag& tag = tags_[index(geom, block, page)];
  if (tag.extent_base != kInvalidLsn) {
    tag = Tag{};
    PPSSD_CHECK(live_ > 0);
    --live_;
  }
}

void IpuOffsetTable::clear_block(const nand::Geometry& geom, BlockId block) {
  for (std::uint32_t p = 0; p < pages_per_block_; ++p) {
    clear_page(geom, block, static_cast<PageId>(p));
  }
}

const IpuOffsetTable::Tag& IpuOffsetTable::lookup(const nand::Geometry& geom,
                                                  BlockId block,
                                                  PageId page) const {
  return tags_[index(geom, block, page)];
}

}  // namespace ppssd::ftl
