// GC victim-selection policies.
//
// * GreedyPolicy — the conventional choice (Baseline, MGA, and the MLC
//   region of every scheme): pick the candidate block with the most
//   invalid subpages.
// * IsrPolicy — the paper's Section 3.2 policy: pick the block with the
//   largest invalid-subpage ratio
//       ISR_i = (IS_i + IS'_i) / TS_i                        (Eq. 1)
//   where IS_i counts invalid subpages, TS_i is the block's total
//   subpages, and IS'_i weighs *valid but cold* subpages by their age
//       IS'_i = sum_j (1 - exp(-t_ij / T_i))                 (Eq. 2)
//   over subpages j that were never updated in this block, with t_ij the
//   subpage's age and T_i the block's mean valid-subpage age (the Poisson
//   inter-update assumption of [23]). Cold-heavy blocks are preferred so
//   the GC pass doubles as a cold-data ejection pass.
//
// Both policies run off incrementally maintained state instead of walking
// pages: Greedy answers from the BlockManager's invalid-count bucket index
// in O(1), and ISR's per-block terms come from nand::Block running
// aggregates — age_sum() is an O(1) identity over sum_write_time_ms() and
// cold_weight() an O(kBuckets) fold over the block's age histogram (one
// exp per occupied bucket instead of one per valid subpage; see
// DESIGN.md's GC-complexity section for the approximation bound). The
// original full-scan forms survive as *_exact / select_victim_reference —
// they define the semantics the fast paths are tested against and anchor
// the gc_bench comparison.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.h"
#include "ftl/block_manager.h"
#include "nand/flash_array.h"
#include "telemetry/metrics.h"

namespace ppssd::ftl {

/// A page "was updated" when it absorbed at least one partial program
/// after its first program — for IPU pages that means an in-place update
/// of the extent it stores. Never-updated pages are the cold-movement
/// candidates in both Eq. 2 and the degraded GC movement of Section 3.2.
[[nodiscard]] inline bool page_updated(const nand::Page& page) {
  return page.program_ops() > 1;
}

class GcPolicy {
 public:
  virtual ~GcPolicy() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// Choose a victim among the plane's GC candidates in the given region.
  /// Returns kInvalidBlock when no candidate has reclaimable space.
  [[nodiscard]] virtual BlockId select_victim(const nand::FlashArray& array,
                                              const BlockManager& bm,
                                              std::uint32_t plane,
                                              CellMode mode,
                                              SimTime now) const = 0;

  /// Register victim-selection counters; `labels` identifies the owner
  /// (scheme, region). The policy name is added automatically.
  void attach_telemetry(telemetry::MetricsRegistry& registry,
                        telemetry::Labels labels);

 protected:
  /// Tally one select_victim() outcome (no-op until telemetry attaches).
  void count_selection(bool found) const {
    if (found && selected_) selected_->inc();
    if (!found && exhausted_) exhausted_->inc();
  }

 private:
  telemetry::Counter* selected_ = nullptr;
  telemetry::Counter* exhausted_ = nullptr;  // calls with no usable victim
};

class GreedyPolicy final : public GcPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "greedy"; }

  /// O(1) amortized: the answer is the head of the BlockManager's
  /// max-invalid bucket, which already encodes the lowest-BlockId
  /// tie-break.
  [[nodiscard]] BlockId select_victim(const nand::FlashArray& array,
                                      const BlockManager& bm,
                                      std::uint32_t plane, CellMode mode,
                                      SimTime now) const override;

  /// The pre-index full candidate scan. Semantically identical to
  /// select_victim(); kept as the test oracle and gc_bench baseline.
  [[nodiscard]] BlockId select_victim_reference(const nand::FlashArray& array,
                                                const BlockManager& bm,
                                                std::uint32_t plane,
                                                CellMode mode) const;
};

class IsrPolicy final : public GcPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "isr"; }

  [[nodiscard]] BlockId select_victim(const nand::FlashArray& array,
                                      const BlockManager& bm,
                                      std::uint32_t plane, CellMode mode,
                                      SimTime now) const override;

  /// The pre-optimization two-pass page walk (exact per-subpage terms).
  /// Kept as the test oracle and gc_bench baseline.
  [[nodiscard]] BlockId select_victim_reference(const nand::FlashArray& array,
                                                const BlockManager& bm,
                                                std::uint32_t plane,
                                                CellMode mode,
                                                SimTime now) const;

  /// ISR_i of Equation 1 for one block. `mean_age_ms` is T_i — the average
  /// valid-subpage age the exponential is normalised by. The paper derives
  /// it from "all subpages"; select_victim() computes it over the plane's
  /// candidates so cold *blocks* score above equally-shaped hot ones.
  [[nodiscard]] static double isr(const nand::Block& block, SimTime now,
                                  double mean_age_ms);

  /// IS'_i of Equation 2 (the cold-valid weight term), evaluated in
  /// O(AgeHistogram::kBuckets) from the block's age histogram with each
  /// bucket's subpages collapsed onto their mean write time.
  [[nodiscard]] static double cold_weight(const nand::Block& block,
                                          SimTime now, double mean_age_ms);

  /// (sum of valid-subpage ages in ms, valid count) — T_i building block.
  /// O(1): valid * now_ms - sum_write_time_ms.
  [[nodiscard]] static std::pair<double, std::uint64_t> age_sum(
      const nand::Block& block, SimTime now);

  /// Per-subpage page-walk forms of the three terms above — the exact
  /// semantics the aggregate-driven versions approximate. They walk the
  /// array's SoA subpage rows, so they take (array, block) instead of a
  /// Block reference.
  [[nodiscard]] static double isr_exact(const nand::FlashArray& array,
                                        BlockId block, SimTime now,
                                        double mean_age_ms);
  [[nodiscard]] static double cold_weight_exact(const nand::FlashArray& array,
                                                BlockId block, SimTime now,
                                                double mean_age_ms);
  [[nodiscard]] static std::pair<double, std::uint64_t> age_sum_exact(
      const nand::FlashArray& array, BlockId block, SimTime now);

 private:
  // Candidate scratch for select_victim(): reused across calls so the
  // steady-state GC path allocates nothing.
  mutable std::vector<BlockId> scratch_;
};

}  // namespace ppssd::ftl
