#include "ftl/gc_policy.h"

#include <cmath>
#include <vector>

#include "common/units.h"

namespace ppssd::ftl {

void GcPolicy::attach_telemetry(telemetry::MetricsRegistry& registry,
                                telemetry::Labels labels) {
  labels.push_back({"policy", name()});
  selected_ = registry.counter("gc_victims_selected", labels);
  exhausted_ = registry.counter("gc_victims_exhausted", labels);
}

BlockId GreedyPolicy::select_victim(const nand::FlashArray& /*array*/,
                                    const BlockManager& bm,
                                    std::uint32_t plane, CellMode mode,
                                    SimTime /*now*/) const {
  // The index files every candidate under its invalid count and keeps the
  // max watermark; a victim must reclaim at least one subpage, and the
  // index returns kInvalidBlock when no candidate has any.
  const BlockId best = bm.max_invalid_candidate(plane, mode);
  count_selection(best != kInvalidBlock);
  return best;
}

BlockId GreedyPolicy::select_victim_reference(const nand::FlashArray& array,
                                              const BlockManager& bm,
                                              std::uint32_t plane,
                                              CellMode mode) const {
  BlockId best = kInvalidBlock;
  std::uint32_t best_invalid = 0;
  bm.for_each_candidate(plane, mode, [&](BlockId b) {
    const auto& blk = array.block(b);
    // A victim must reclaim at least one subpage, otherwise GC would churn.
    const std::uint32_t invalid = blk.invalid_subpages();
    if (invalid > best_invalid ||
        (invalid == best_invalid && invalid > 0 && b < best)) {
      best = b;
      best_invalid = invalid;
    }
  });
  if (best_invalid == 0) best = kInvalidBlock;
  return best;
}

std::pair<double, std::uint64_t> IsrPolicy::age_sum(const nand::Block& block,
                                                    SimTime now) {
  // sum_j (now - wt_j) over valid subpages == valid * now - sum_j wt_j,
  // and the block maintains sum_j wt_j incrementally.
  const std::uint64_t valid = block.valid_subpages();
  return {static_cast<double>(valid) * ns_to_ms(now) -
              static_cast<double>(block.sum_write_time_ms()),
          valid};
}

std::pair<double, std::uint64_t> IsrPolicy::age_sum_exact(
    const nand::FlashArray& array, BlockId block, SimTime now) {
  const nand::Block& blk = array.block(block);
  const double now_ms = ns_to_ms(now);
  const std::uint32_t spp = blk.subpages_per_page();
  double sum = 0.0;
  std::uint64_t valid = 0;
  for (std::uint32_t p = 0; p < blk.write_frontier(); ++p) {
    for (std::uint32_t s = 0; s < spp; ++s) {
      const nand::Subpage sp = array.subpage(
          block, static_cast<PageId>(p), static_cast<SubpageId>(s));
      if (sp.state == nand::SubpageState::kValid) {
        sum += now_ms - sp.write_time_ms;
        ++valid;
      }
    }
  }
  return {sum, valid};
}

double IsrPolicy::cold_weight(const nand::Block& block, SimTime now,
                              double mean_age_ms) {
  if (mean_age_ms <= 0.0) return 0.0;
  const double now_ms = ns_to_ms(now);
  // One exp per occupied histogram bucket, each bucket's subpages
  // evaluated at their mean write time. The kernel is concave in the
  // write time, so this overestimates the exact sum by at most
  // count * (bucket width) / (2 * T) per bucket (see DESIGN.md).
  return block.age_histogram().fold([&](double mean_wt_ms) {
    return 1.0 - std::exp(-(now_ms - mean_wt_ms) / mean_age_ms);
  });
}

double IsrPolicy::cold_weight_exact(const nand::FlashArray& array,
                                    BlockId block, SimTime now,
                                    double mean_age_ms) {
  if (mean_age_ms <= 0.0) return 0.0;
  const nand::Block& blk = array.block(block);
  const double now_ms = ns_to_ms(now);
  const std::uint32_t spp = blk.subpages_per_page();

  // IS' sums the age weight of valid subpages in never-updated pages.
  double weight = 0.0;
  for (std::uint32_t p = 0; p < blk.write_frontier(); ++p) {
    if (page_updated(blk.page(static_cast<PageId>(p)))) continue;
    for (std::uint32_t s = 0; s < spp; ++s) {
      const nand::Subpage sp = array.subpage(
          block, static_cast<PageId>(p), static_cast<SubpageId>(s));
      if (sp.state == nand::SubpageState::kValid) {
        const double age = now_ms - sp.write_time_ms;
        weight += 1.0 - std::exp(-age / mean_age_ms);
      }
    }
  }
  return weight;
}

double IsrPolicy::isr(const nand::Block& block, SimTime now,
                      double mean_age_ms) {
  const double total = block.total_subpages();
  return (block.invalid_subpages() + cold_weight(block, now, mean_age_ms)) /
         total;
}

double IsrPolicy::isr_exact(const nand::FlashArray& array, BlockId block,
                            SimTime now, double mean_age_ms) {
  const nand::Block& blk = array.block(block);
  const double total = blk.total_subpages();
  return (blk.invalid_subpages() +
          cold_weight_exact(array, block, now, mean_age_ms)) /
         total;
}

BlockId IsrPolicy::select_victim(const nand::FlashArray& array,
                                 const BlockManager& bm, std::uint32_t plane,
                                 CellMode mode, SimTime now) const {
  // Pass 1: T = mean valid-subpage age over the plane's candidates.
  // age_sum() is O(1) per block, so this pass is O(candidates).
  scratch_.clear();
  double age_total = 0.0;
  std::uint64_t valid_total = 0;
  bm.for_each_candidate(plane, mode, [&](BlockId b) {
    scratch_.push_back(b);
    const auto [sum, count] = age_sum(array.block(b), now);
    age_total += sum;
    valid_total += count;
  });
  const double mean_age =
      valid_total > 0 ? age_total / static_cast<double>(valid_total) : 0.0;

  // Pass 2: score by Equation 1, O(kBuckets) per block.
  BlockId best = kInvalidBlock;
  double best_isr = 0.0;
  for (const BlockId b : scratch_) {
    const auto& blk = array.block(b);
    if (blk.programmed_subpages() == 0) continue;  // nothing to reclaim
    const double v = isr(blk, now, mean_age);
    if (v > best_isr) {
      best = b;
      best_isr = v;
    }
  }
  count_selection(best != kInvalidBlock);
  return best;
}

BlockId IsrPolicy::select_victim_reference(const nand::FlashArray& array,
                                           const BlockManager& bm,
                                           std::uint32_t plane, CellMode mode,
                                           SimTime now) const {
  // Pass 1: T = mean valid-subpage age over the plane's candidates.
  double age_total = 0.0;
  std::uint64_t valid_total = 0;
  std::vector<BlockId> candidates;
  bm.for_each_candidate(plane, mode, [&](BlockId b) {
    candidates.push_back(b);
    const auto [sum, count] = age_sum_exact(array, b, now);
    age_total += sum;
    valid_total += count;
  });
  const double mean_age =
      valid_total > 0 ? age_total / static_cast<double>(valid_total) : 0.0;

  // Pass 2: score by Equation 1.
  BlockId best = kInvalidBlock;
  double best_isr = 0.0;
  for (const BlockId b : candidates) {
    const auto& blk = array.block(b);
    if (blk.programmed_subpages() == 0) continue;  // nothing to reclaim
    const double v = isr_exact(array, b, now, mean_age);
    if (v > best_isr) {
      best = b;
      best_isr = v;
    }
  }
  return best;
}

}  // namespace ppssd::ftl
