#include "ftl/gc_policy.h"

#include <cmath>
#include <vector>

namespace ppssd::ftl {

void GcPolicy::attach_telemetry(telemetry::MetricsRegistry& registry,
                                telemetry::Labels labels) {
  labels.push_back({"policy", name()});
  selected_ = registry.counter("gc_victims_selected", labels);
  exhausted_ = registry.counter("gc_victims_exhausted", labels);
}

BlockId GreedyPolicy::select_victim(const nand::FlashArray& array,
                                    const BlockManager& bm,
                                    std::uint32_t plane, CellMode mode,
                                    SimTime /*now*/) const {
  BlockId best = kInvalidBlock;
  std::uint32_t best_invalid = 0;
  bm.for_each_candidate(plane, mode, [&](BlockId b) {
    const auto& blk = array.block(b);
    // A victim must reclaim at least one subpage, otherwise GC would churn.
    const std::uint32_t invalid = blk.invalid_subpages();
    if (invalid > best_invalid ||
        (invalid == best_invalid && invalid > 0 && b < best)) {
      best = b;
      best_invalid = invalid;
    }
  });
  if (best_invalid == 0) best = kInvalidBlock;
  count_selection(best != kInvalidBlock);
  return best;
}

std::pair<double, std::uint64_t> IsrPolicy::age_sum(const nand::Block& block,
                                                    SimTime now) {
  const auto now_ms = static_cast<double>(now / 1'000'000);
  const std::uint32_t spp = block.subpages_per_page();
  double sum = 0.0;
  std::uint64_t valid = 0;
  for (std::uint32_t p = 0; p < block.write_frontier(); ++p) {
    const auto& page = block.page(static_cast<PageId>(p));
    for (std::uint32_t s = 0; s < spp; ++s) {
      const auto& sp = page.subpage(static_cast<SubpageId>(s));
      if (sp.state == nand::SubpageState::kValid) {
        sum += now_ms - sp.write_time_ms;
        ++valid;
      }
    }
  }
  return {sum, valid};
}

double IsrPolicy::cold_weight(const nand::Block& block, SimTime now,
                              double mean_age_ms) {
  if (mean_age_ms <= 0.0) return 0.0;
  const auto now_ms = static_cast<double>(now / 1'000'000);
  const std::uint32_t spp = block.subpages_per_page();

  // IS' sums the age weight of valid subpages in never-updated pages.
  double weight = 0.0;
  for (std::uint32_t p = 0; p < block.write_frontier(); ++p) {
    const auto& page = block.page(static_cast<PageId>(p));
    if (page_updated(page)) continue;
    for (std::uint32_t s = 0; s < spp; ++s) {
      const auto& sp = page.subpage(static_cast<SubpageId>(s));
      if (sp.state == nand::SubpageState::kValid) {
        const double age = now_ms - sp.write_time_ms;
        weight += 1.0 - std::exp(-age / mean_age_ms);
      }
    }
  }
  return weight;
}

double IsrPolicy::isr(const nand::Block& block, SimTime now,
                      double mean_age_ms) {
  const double total = block.total_subpages();
  return (block.invalid_subpages() + cold_weight(block, now, mean_age_ms)) /
         total;
}

BlockId IsrPolicy::select_victim(const nand::FlashArray& array,
                                 const BlockManager& bm, std::uint32_t plane,
                                 CellMode mode, SimTime now) const {
  // Pass 1: T = mean valid-subpage age over the plane's candidates.
  double age_total = 0.0;
  std::uint64_t valid_total = 0;
  std::vector<BlockId> candidates;
  bm.for_each_candidate(plane, mode, [&](BlockId b) {
    candidates.push_back(b);
    const auto [sum, count] = age_sum(array.block(b), now);
    age_total += sum;
    valid_total += count;
  });
  const double mean_age =
      valid_total > 0 ? age_total / static_cast<double>(valid_total) : 0.0;

  // Pass 2: score by Equation 1.
  BlockId best = kInvalidBlock;
  double best_isr = 0.0;
  for (const BlockId b : candidates) {
    const auto& blk = array.block(b);
    if (blk.programmed_subpages() == 0) continue;  // nothing to reclaim
    const double v = isr(blk, now, mean_age);
    if (v > best_isr) {
      best = b;
      best_isr = v;
    }
  }
  count_selection(best != kInvalidBlock);
  return best;
}

}  // namespace ppssd::ftl
