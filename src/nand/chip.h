// Chip service state for the timing model.
//
// A chip executes one NAND operation at a time (reads, programs, erases
// serialize on the die; we model chip-level serialization as SSDsim's
// default). The channel serializes data transfers. The service model in
// sim/ composes these two resources.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace ppssd::nand {

class Chip {
 public:
  /// Earliest time the chip can begin a new array operation.
  [[nodiscard]] SimTime busy_until() const { return busy_until_; }

  /// Reserve the chip for [start, start+duration); start must be >=
  /// busy_until(). Returns the operation end time.
  SimTime occupy(SimTime start, SimTime duration) {
    busy_until_ = start + duration;
    ++ops_;
    return busy_until_;
  }

  [[nodiscard]] std::uint64_t ops() const { return ops_; }

 private:
  SimTime busy_until_ = 0;
  std::uint64_t ops_ = 0;
};

}  // namespace ppssd::nand
