#include "nand/timing.h"

// TimingModel is header-only today; this TU anchors the type.
