// Program-disturb observation for a stored subpage.
//
// The paper's error model (Section 2.2, Figure 2) distinguishes:
//   * in-page disturb — partial programs applied to a page *after* a
//     subpage was written stress that subpage's cells directly;
//   * neighbouring-page disturb — programs on wordline-adjacent pages.
// Page/Block track the raw counters; DisturbSnapshot packages everything
// the BER model needs to price a read of one subpage.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "nand/block.h"

namespace ppssd::nand {

struct DisturbSnapshot {
  CellMode mode = CellMode::kSlc;
  std::uint32_t pe_cycles = 0;
  /// Partial programs applied to the same page after this subpage's write.
  std::uint32_t in_page_disturbs = 0;
  /// Programs applied to wordline-adjacent pages after this subpage's write.
  std::uint32_t neighbor_disturbs = 0;
  /// Page was produced by an in-place SLC→dense reprogram (IPS): the
  /// continued ISPP sequence leaves wider threshold-voltage distributions
  /// than a fresh dense program, priced as a BER penalty.
  bool reprogrammed = false;
};

/// Build the snapshot for `block.page(p).subpage(s)` given the device's
/// baseline P/E count. `base_pe` models pre-existing wear (the paper ages
/// the device to a fixed P/E before replay); per-block erases accumulate on
/// top of it. Header-inline: this runs once per resolved subpage on the
/// host-read path (DESIGN.md §10).
[[nodiscard]] inline DisturbSnapshot snapshot_disturb(const Block& block,
                                                      PageId p, SubpageId s,
                                                      std::uint32_t base_pe) {
  DisturbSnapshot snap;
  snap.mode = block.mode();
  snap.pe_cycles = base_pe + block.erase_count();
  const Page& pg = block.page(p);
  snap.in_page_disturbs = pg.in_page_disturbs(s);
  snap.neighbor_disturbs = pg.neighbor_disturbs(s);
  snap.reprogrammed = pg.reprogrammed();
  return snap;
}

}  // namespace ppssd::nand
