// Program-disturb observation for a stored subpage.
//
// The paper's error model (Section 2.2, Figure 2) distinguishes:
//   * in-page disturb — partial programs applied to a page *after* a
//     subpage was written stress that subpage's cells directly;
//   * neighbouring-page disturb — programs on wordline-adjacent pages.
// Page/Block track the raw counters; DisturbSnapshot packages everything
// the BER model needs to price a read of one subpage. The snapshot is
// assembled by FlashArray::disturb_of, which owns the SoA subpage rows
// the subtraction terms come from (DESIGN.md §14).
#pragma once

#include <cstdint>

#include "common/types.h"

namespace ppssd::nand {

struct DisturbSnapshot {
  CellMode mode = CellMode::kSlc;
  std::uint32_t pe_cycles = 0;
  /// Partial programs applied to the same page after this subpage's write.
  std::uint32_t in_page_disturbs = 0;
  /// Programs applied to wordline-adjacent pages after this subpage's write.
  std::uint32_t neighbor_disturbs = 0;
  /// Page was produced by an in-place SLC→dense reprogram (IPS): the
  /// continued ISPP sequence leaves wider threshold-voltage distributions
  /// than a fresh dense program, priced as a BER penalty.
  bool reprogrammed = false;
};

}  // namespace ppssd::nand
