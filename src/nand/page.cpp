#include "nand/page.h"

#include <limits>

namespace ppssd::nand {

bool Page::program(std::span<const SlotWrite> writes, SimTime now) {
  PPSSD_CHECK(!writes.empty());
  const bool partial = programmed();
  PPSSD_CHECK_MSG(program_ops_ < std::numeric_limits<std::uint8_t>::max(),
                  "page program-op counter overflow");
  for (const SlotWrite& w : writes) {
    PPSSD_CHECK(w.slot < kMaxSubpagesPerPage);
    Subpage& sp = subpages_[w.slot];
    PPSSD_CHECK_MSG(sp.state == SubpageState::kFree,
                    "programming a non-free subpage (NAND write-once rule)");
    sp.state = SubpageState::kValid;
    sp.owner_lsn = static_cast<std::uint32_t>(w.lsn);
    sp.version = w.version;
    sp.write_time_ms = static_cast<std::uint32_t>(now / 1'000'000);
    sp.programs_before = program_ops_;
    sp.neighbors_before = neighbor_programs_;
  }
  ++program_ops_;
  return partial;
}

void Page::invalidate(SubpageId i) {
  PPSSD_CHECK(i < kMaxSubpagesPerPage);
  Subpage& sp = subpages_[i];
  PPSSD_CHECK_MSG(sp.state == SubpageState::kValid,
                  "invalidating a subpage that is not valid");
  sp.state = SubpageState::kInvalid;
}

void Page::absorb_neighbor_program() {
  if (neighbor_programs_ < std::numeric_limits<std::uint16_t>::max()) {
    ++neighbor_programs_;
  }
}

void Page::reset() { *this = Page{}; }

}  // namespace ppssd::nand
