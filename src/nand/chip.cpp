#include "nand/chip.h"

// Chip is header-only today; this TU anchors the type for the library.
