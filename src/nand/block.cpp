#include "nand/block.h"

#include "common/check.h"

namespace ppssd::nand {

Block::Block(CellMode mode, std::uint32_t pages,
             std::uint32_t subpages_per_page)
    : pages_(pages),
      mode_(mode),
      level_(mode == CellMode::kMlc ? BlockLevel::kHighDensity
                                    : BlockLevel::kWork),
      subpages_per_page_(subpages_per_page) {
  PPSSD_CHECK(pages > 0);
  PPSSD_CHECK(subpages_per_page >= 1 &&
              subpages_per_page <= kMaxSubpagesPerPage);
}

bool Block::program(PageId p, std::span<const SlotWrite> writes, SimTime now) {
  PPSSD_CHECK(p < page_count());
  for (const SlotWrite& w : writes) {
    PPSSD_CHECK(w.slot < subpages_per_page_);
  }
  Page& pg = pages_[p];
  const std::uint8_t pre_ops = pg.program_ops();
  if (pre_ops == 0) {
    // First program of a page must land on the write frontier: NAND blocks
    // are programmed page-sequentially after an erase.
    PPSSD_CHECK_MSG(p == frontier_, "out-of-order first program of a page");
    ++frontier_;
  } else if (pre_ops == 1) {
    // The page transitions to "updated": its valid subpages leave the
    // cold (never-updated) population tracked by the age histogram.
    for (std::uint32_t s = 0; s < subpages_per_page_; ++s) {
      const Subpage& sp = pg.subpage(static_cast<SubpageId>(s));
      if (sp.state == SubpageState::kValid) {
        age_histogram_.remove(sp.write_time_ms);
      }
    }
  }
  const bool partial = pg.program(writes, now);
  const auto n = static_cast<std::uint32_t>(writes.size());
  // The write time the page stamped on the new subpages (ms truncation
  // happens in one place — read it back instead of recomputing).
  const std::uint32_t wt = pg.subpage(writes[0].slot).write_time_ms;
  valid_ += n;
  sum_write_time_ms_ += static_cast<std::uint64_t>(wt) * n;
  if (pre_ops == 0) {
    age_histogram_.add(wt, n);
  }
  return partial;
}

void Block::invalidate(PageId p, SubpageId s) {
  PPSSD_CHECK(p < page_count());
  Page& pg = pages_[p];
  const std::uint32_t wt = pg.subpage(s).write_time_ms;
  pg.invalidate(s);
  PPSSD_CHECK(valid_ > 0);
  --valid_;
  ++invalid_;
  sum_write_time_ms_ -= wt;
  if (pg.program_ops() == 1) {
    age_histogram_.remove(wt);
  }
}

void Block::erase(SimTime now) {
  for (auto& pg : pages_) {
    pg.reset();
  }
  frontier_ = 0;
  valid_ = 0;
  invalid_ = 0;
  sum_write_time_ms_ = 0;
  // Rebase the histogram on this erase so bucket widths are log-spaced in
  // the block's own fill window (same ms truncation as Page::program).
  age_histogram_.clear(static_cast<std::uint32_t>(now / 1'000'000));
  ++erase_count_;
  last_erase_time_ = now;
}

}  // namespace ppssd::nand
