#include "nand/block.h"

#include "common/check.h"

namespace ppssd::nand {

Block::Block(CellMode mode, std::uint32_t pages,
             std::uint32_t subpages_per_page)
    : pages_(pages),
      mode_(mode),
      level_(mode == CellMode::kMlc ? BlockLevel::kHighDensity
                                    : BlockLevel::kWork),
      subpages_per_page_(subpages_per_page) {
  PPSSD_CHECK(pages > 0);
  PPSSD_CHECK(subpages_per_page >= 1 &&
              subpages_per_page <= kMaxSubpagesPerPage);
}

void Block::erase(SimTime now) {
  for (auto& pg : pages_) {
    pg.reset();
  }
  frontier_ = 0;
  valid_ = 0;
  invalid_ = 0;
  sum_write_time_ms_ = 0;
  // Rebase the histogram on this erase so bucket widths are log-spaced in
  // the block's own fill window (same ms truncation as the program path).
  age_histogram_.clear(static_cast<std::uint32_t>(now / 1'000'000));
  ++erase_count_;
  last_erase_time_ = now;
}

}  // namespace ppssd::nand
