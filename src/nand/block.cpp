#include "nand/block.h"

#include "common/check.h"

namespace ppssd::nand {

Block::Block(CellMode mode, std::uint32_t pages,
             std::uint32_t subpages_per_page)
    : pages_(pages),
      mode_(mode),
      level_(mode == CellMode::kMlc ? BlockLevel::kHighDensity
                                    : BlockLevel::kWork),
      subpages_per_page_(subpages_per_page) {
  PPSSD_CHECK(pages > 0);
  PPSSD_CHECK(subpages_per_page >= 1 &&
              subpages_per_page <= kMaxSubpagesPerPage);
}

bool Block::program(PageId p, std::span<const SlotWrite> writes, SimTime now) {
  PPSSD_CHECK(p < page_count());
  for (const SlotWrite& w : writes) {
    PPSSD_CHECK(w.slot < subpages_per_page_);
  }
  Page& pg = pages_[p];
  if (!pg.programmed()) {
    // First program of a page must land on the write frontier: NAND blocks
    // are programmed page-sequentially after an erase.
    PPSSD_CHECK_MSG(p == frontier_, "out-of-order first program of a page");
    ++frontier_;
  }
  const bool partial = pg.program(writes, now);
  valid_ += static_cast<std::uint32_t>(writes.size());
  return partial;
}

void Block::invalidate(PageId p, SubpageId s) {
  PPSSD_CHECK(p < page_count());
  pages_[p].invalidate(s);
  PPSSD_CHECK(valid_ > 0);
  --valid_;
  ++invalid_;
}

void Block::erase(SimTime now) {
  for (auto& pg : pages_) {
    pg.reset();
  }
  frontier_ = 0;
  valid_ = 0;
  invalid_ = 0;
  ++erase_count_;
  last_erase_time_ = now;
}

}  // namespace ppssd::nand
