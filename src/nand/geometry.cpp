#include "nand/geometry.h"

#include <cmath>

#include "common/check.h"

namespace ppssd::nand {

namespace {
/// Fraction of MLC capacity hidden from the host for GC headroom.
constexpr double kOverProvision = 0.05;
}  // namespace

Geometry::Geometry(const GeometryConfig& cfg, double slc_ratio) : cfg_(cfg) {
  planes_ = cfg.planes();
  chips_ = cfg.chips();
  PPSSD_CHECK_MSG(cfg.total_blocks % planes_ == 0,
                  "total_blocks must divide evenly across planes");
  planes_per_chip_ = cfg.dies_per_chip * cfg.planes_per_die;
  blocks_per_plane_ = cfg.total_blocks / planes_;
  slc_blocks_per_plane_ = static_cast<std::uint32_t>(
      std::ceil(blocks_per_plane_ * slc_ratio));
  PPSSD_CHECK_MSG(slc_blocks_per_plane_ < blocks_per_plane_,
                  "slc_ratio leaves no MLC blocks");

  const std::uint64_t mlc_pages =
      static_cast<std::uint64_t>(mlc_block_count()) * cfg.pages_per_mlc_block;
  const std::uint64_t mlc_subpages = mlc_pages * cfg.subpages_per_page();
  logical_subpages_ =
      static_cast<std::uint64_t>(mlc_subpages * (1.0 - kOverProvision));
  // Round down to whole logical pages.
  logical_subpages_ -= logical_subpages_ % cfg.subpages_per_page();
  PPSSD_CHECK(logical_subpages_ > 0);
}

}  // namespace ppssd::nand
