#include "nand/disturb.h"

namespace ppssd::nand {

DisturbSnapshot snapshot_disturb(const Block& block, PageId p, SubpageId s,
                                 std::uint32_t base_pe) {
  DisturbSnapshot snap;
  snap.mode = block.mode();
  snap.pe_cycles = base_pe + block.erase_count();
  const Page& pg = block.page(p);
  snap.in_page_disturbs = pg.in_page_disturbs(s);
  snap.neighbor_disturbs = pg.neighbor_disturbs(s);
  return snap;
}

}  // namespace ppssd::nand
