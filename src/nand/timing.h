// NAND operation latency model (Table 2 of the paper).
#pragma once

#include "common/config.h"
#include "common/types.h"

namespace ppssd::nand {

class TimingModel {
 public:
  explicit TimingModel(const TimingConfig& cfg) : cfg_(cfg) {}

  /// Array sensing time of a page read in the given mode.
  [[nodiscard]] SimTime read_latency(CellMode mode) const {
    return mode == CellMode::kSlc ? cfg_.slc_read : cfg_.mlc_read;
  }

  /// Array program time of one program operation (full or partial — a
  /// partial program still runs a full program pulse sequence on the
  /// wordline, so its latency equals a page program).
  [[nodiscard]] SimTime program_latency(CellMode mode) const {
    return mode == CellMode::kSlc ? cfg_.slc_write : cfg_.mlc_write;
  }

  [[nodiscard]] SimTime erase_latency() const { return cfg_.erase; }

  /// In-place SLC→dense reprogram (IPS promotion): pure array time — the
  /// data never crosses the channel, so there is no transfer or ECC term.
  [[nodiscard]] SimTime reprogram_latency() const { return cfg_.reprogram; }

  /// Channel transfer time for `subpages` subpages of data.
  [[nodiscard]] SimTime transfer_latency(std::uint32_t subpages) const {
    return cfg_.transfer_per_subpage * subpages;
  }

  [[nodiscard]] const TimingConfig& config() const { return cfg_; }

 private:
  TimingConfig cfg_;
};

}  // namespace ppssd::nand
