// Page metadata and subpage value types.
//
// A 16 KiB page holds four 4 KiB subpages — the partial-programming unit.
// Each program operation writes one or more subpage slots of a page; the
// first program of a page is "conventional", every later one is a partial
// program (Figure 1). Disturb bookkeeping is snapshot-based: every subpage
// remembers how many program operations and neighbouring-page programs the
// page had seen when the subpage was written, so the disturb *it* has
// absorbed since is a subtraction, not a per-event fan-out.
//
// Storage layout (DESIGN.md §14): per-subpage fields live in
// structure-of-arrays rows owned by FlashArray — the fused program/
// invalidate paths and the GC oracles walk one field's row each instead of
// striding over interleaved structs. `Subpage` survives as the *value*
// type those rows gather into (accessors, tests, BER snapshots); `Page`
// keeps only the per-page counters the disturb model subtracts against.
#pragma once

#include <cstdint>
#include <limits>

#include "common/types.h"

namespace ppssd::nand {

enum class SubpageState : std::uint8_t {
  kFree = 0,
  kValid = 1,
  kInvalid = 2,
};

/// One 4 KiB subpage slot, materialized from the FlashArray SoA rows.
struct Subpage {
  /// Logical subpage stored here (valid only when state == kValid).
  std::uint32_t owner_lsn = 0;
  /// Wall-clock (sim) write time, milliseconds. Used by the IS' age model.
  std::uint32_t write_time_ms = 0;
  /// Monotonic per-LSN version, for integrity checking.
  std::uint32_t version = 0;
  SubpageState state = SubpageState::kFree;
  /// Page program-op count when this subpage was written.
  std::uint8_t programs_before = 0;
  /// Page neighbour-program count when this subpage was written.
  std::uint16_t neighbors_before = 0;

  bool operator==(const Subpage&) const = default;
};

/// Maximum subpages per page supported without heap allocation.
inline constexpr std::uint32_t kMaxSubpagesPerPage = 8;

/// One subpage slot to fill in a program operation.
struct SlotWrite {
  SubpageId slot = 0;
  Lsn lsn = kInvalidLsn;
  std::uint32_t version = 0;
};

/// Per-page counters. Subpage slot contents live in the FlashArray rows;
/// what remains here is the page-granular state the disturb subtractions
/// and the hot/cold split (page_updated) read.
class Page {
 public:
  /// Number of program operations applied since the last erase.
  [[nodiscard]] std::uint8_t program_ops() const { return program_ops_; }
  /// True if at least one program has been applied (page not fully free).
  [[nodiscard]] bool programmed() const { return program_ops_ > 0; }
  /// Number of programs on wordline-adjacent pages since this page's erase.
  [[nodiscard]] std::uint16_t neighbor_programs() const {
    return neighbor_programs_;
  }

  /// True when this page's data was produced by an in-place reprogram
  /// (ISPP continuation from SLC frontier state, IPS promotion) rather
  /// than a fresh program. Reprogrammed cells carry a retention/disturb
  /// BER penalty; cleared by erase.
  [[nodiscard]] bool reprogrammed() const { return reprogrammed_; }

  /// Called when a wordline-adjacent page is programmed.
  void absorb_neighbor_program() {
    if (neighbor_programs_ < std::numeric_limits<std::uint16_t>::max()) {
      ++neighbor_programs_;
    }
  }

  /// Reset to the erased state.
  void reset() { *this = Page{}; }

 private:
  /// The fused array-level paths stamp page counters directly (one pass
  /// over the touched slots instead of one per layer).
  friend class FlashArray;

  std::uint8_t program_ops_ = 0;
  std::uint16_t neighbor_programs_ = 0;
  bool reprogrammed_ = false;
};

}  // namespace ppssd::nand
