// Page and subpage state machines.
//
// A 16 KiB page holds four 4 KiB subpages — the partial-programming unit.
// Each program operation writes one or more subpage slots of a page; the
// first program of a page is "conventional", every later one is a partial
// program (Figure 1). Disturb bookkeeping is snapshot-based: every subpage
// remembers how many program operations and neighbouring-page programs the
// page had seen when the subpage was written, so the disturb *it* has
// absorbed since is a subtraction, not a per-event fan-out.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "common/check.h"
#include "common/types.h"

namespace ppssd::nand {

enum class SubpageState : std::uint8_t {
  kFree = 0,
  kValid = 1,
  kInvalid = 2,
};

/// One 4 KiB subpage slot.
struct Subpage {
  /// Logical subpage stored here (valid only when state == kValid).
  std::uint32_t owner_lsn = 0;
  /// Wall-clock (sim) write time, milliseconds. Used by the IS' age model.
  std::uint32_t write_time_ms = 0;
  /// Monotonic per-LSN version, for integrity checking.
  std::uint32_t version = 0;
  SubpageState state = SubpageState::kFree;
  /// Page program-op count when this subpage was written.
  std::uint8_t programs_before = 0;
  /// Page neighbour-program count when this subpage was written.
  std::uint16_t neighbors_before = 0;
};

/// Maximum subpages per page supported without heap allocation.
inline constexpr std::uint32_t kMaxSubpagesPerPage = 8;

/// One subpage slot to fill in a program operation.
struct SlotWrite {
  SubpageId slot = 0;
  Lsn lsn = kInvalidLsn;
  std::uint32_t version = 0;
};

class Page {
 public:
  /// Number of program operations applied since the last erase.
  [[nodiscard]] std::uint8_t program_ops() const { return program_ops_; }
  /// True if at least one program has been applied (page not fully free).
  [[nodiscard]] bool programmed() const { return program_ops_ > 0; }
  /// Number of programs on wordline-adjacent pages since this page's erase.
  [[nodiscard]] std::uint16_t neighbor_programs() const {
    return neighbor_programs_;
  }

  /// True when this page's data was produced by an in-place reprogram
  /// (ISPP continuation from SLC frontier state, IPS promotion) rather
  /// than a fresh program. Reprogrammed cells carry a retention/disturb
  /// BER penalty; cleared by erase.
  [[nodiscard]] bool reprogrammed() const { return reprogrammed_; }

  [[nodiscard]] const Subpage& subpage(SubpageId i) const {
    PPSSD_DCHECK(i < kMaxSubpagesPerPage);
    return subpages_[i];
  }

  /// Count of subpages in a given state over the first `n` slots.
  [[nodiscard]] std::uint32_t count(SubpageState s, std::uint32_t n) const {
    PPSSD_DCHECK(n <= kMaxSubpagesPerPage);
    std::uint32_t c = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (subpages_[i].state == s) ++c;
    }
    return c;
  }

  /// Index of the first free slot in the first `n`, or kInvalidSubpage.
  [[nodiscard]] SubpageId first_free(std::uint32_t n) const {
    PPSSD_DCHECK(n <= kMaxSubpagesPerPage);
    for (std::uint32_t i = 0; i < n; ++i) {
      if (subpages_[i].state == SubpageState::kFree) {
        return static_cast<SubpageId>(i);
      }
    }
    return kInvalidSubpage;
  }

  /// Apply one program operation filling the given slots. Returns true if
  /// the operation was a partial program (page already had data).
  ///
  /// Every targeted slot must be free (NAND write-once rule). The caller is
  /// responsible for enforcing the per-page partial-program limit.
  ///
  /// This is the per-layer *reference* implementation: the production hot
  /// path is the fused FlashArray::program, which updates page, block
  /// aggregates and array counters in one pass (DESIGN.md §10). The two
  /// are held state-identical by tests/nand/fused_path_test.cpp.
  bool program(std::span<const SlotWrite> writes, SimTime now);

  /// Mark a valid subpage invalid (data superseded elsewhere). Reference
  /// counterpart of the fused FlashArray::invalidate.
  void invalidate(SubpageId i);

  /// Called when a wordline-adjacent page is programmed.
  void absorb_neighbor_program();

  /// In-page disturb events absorbed by subpage `i` since it was written:
  /// the number of partial programs applied to this page afterwards.
  [[nodiscard]] std::uint32_t in_page_disturbs(SubpageId i) const {
    const auto& sp = subpages_[i];
    PPSSD_DCHECK(sp.state != SubpageState::kFree);
    return program_ops_ - sp.programs_before - 1;
  }

  /// Neighbour disturb events absorbed by subpage `i` since it was written.
  [[nodiscard]] std::uint32_t neighbor_disturbs(SubpageId i) const {
    const auto& sp = subpages_[i];
    PPSSD_DCHECK(sp.state != SubpageState::kFree);
    return neighbor_programs_ - sp.neighbors_before;
  }

  /// Reset to the erased state.
  void reset();

 private:
  /// The fused array-level program/invalidate paths stamp subpage state
  /// directly (one pass over the slots instead of one per layer).
  friend class FlashArray;

  std::array<Subpage, kMaxSubpagesPerPage> subpages_{};
  std::uint8_t program_ops_ = 0;
  std::uint16_t neighbor_programs_ = 0;
  bool reprogrammed_ = false;
};

}  // namespace ppssd::nand
