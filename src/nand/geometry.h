// Physical address arithmetic for the flash array.
//
// Blocks are numbered flat across the device. Plane p owns the contiguous
// block range [p * blocks_per_plane, (p+1) * blocks_per_plane). Within each
// plane the first ceil(blocks_per_plane * slc_ratio) blocks form the
// SLC-mode cache region, so the cache is striped across every plane and the
// multi-chip parallelism of the device applies to cache traffic too.
#pragma once

#include <cstdint>

#include "common/check.h"
#include "common/config.h"
#include "common/types.h"

namespace ppssd::nand {

class Geometry {
 public:
  Geometry(const GeometryConfig& cfg, double slc_ratio);

  [[nodiscard]] std::uint32_t total_blocks() const { return cfg_.total_blocks; }
  [[nodiscard]] std::uint32_t planes() const { return planes_; }
  [[nodiscard]] std::uint32_t chips() const { return chips_; }
  [[nodiscard]] std::uint32_t channels() const { return cfg_.channels; }
  [[nodiscard]] std::uint32_t blocks_per_plane() const {
    return blocks_per_plane_;
  }
  [[nodiscard]] std::uint32_t slc_blocks_per_plane() const {
    return slc_blocks_per_plane_;
  }
  [[nodiscard]] std::uint32_t slc_block_count() const {
    return slc_blocks_per_plane_ * planes_;
  }
  [[nodiscard]] std::uint32_t mlc_block_count() const {
    return total_blocks() - slc_block_count();
  }
  [[nodiscard]] std::uint32_t subpages_per_page() const {
    return cfg_.subpages_per_page();
  }
  [[nodiscard]] std::uint32_t pages_per_block(CellMode mode) const {
    return mode == CellMode::kSlc ? cfg_.pages_per_slc_block
                                  : cfg_.pages_per_mlc_block;
  }

  /// True if `block` lies in the SLC-mode cache region.
  [[nodiscard]] bool is_slc_block(BlockId block) const {
    return block % blocks_per_plane_ < slc_blocks_per_plane_;
  }

  [[nodiscard]] std::uint32_t plane_of(BlockId block) const {
    return block / blocks_per_plane_;
  }
  [[nodiscard]] std::uint32_t chip_of(BlockId block) const {
    return plane_of(block) / planes_per_chip_;
  }
  [[nodiscard]] std::uint32_t channel_of(BlockId block) const {
    return chip_of(block) % cfg_.channels;
  }

  /// First block of a plane.
  [[nodiscard]] BlockId plane_first_block(std::uint32_t plane) const {
    return plane * blocks_per_plane_;
  }

  /// Dense ordinal of an SLC-mode block in [0, slc_block_count()).
  [[nodiscard]] std::uint32_t slc_ordinal(BlockId block) const {
    PPSSD_CHECK(is_slc_block(block));
    return plane_of(block) * slc_blocks_per_plane_ +
           block % blocks_per_plane_;
  }

  /// Inverse of slc_ordinal().
  [[nodiscard]] BlockId slc_block_at(std::uint32_t ordinal) const {
    PPSSD_CHECK(ordinal < slc_block_count());
    return plane_first_block(ordinal / slc_blocks_per_plane_) +
           ordinal % slc_blocks_per_plane_;
  }

  /// Host-visible logical capacity in subpages. The SLC cache is not part
  /// of the logical capacity (it caches MLC-resident data), and we reserve
  /// an over-provisioning slice of the MLC region for GC headroom.
  [[nodiscard]] std::uint64_t logical_subpages() const {
    return logical_subpages_;
  }

  [[nodiscard]] const GeometryConfig& config() const { return cfg_; }

 private:
  GeometryConfig cfg_;
  std::uint32_t planes_;
  std::uint32_t chips_;
  std::uint32_t planes_per_chip_;
  std::uint32_t blocks_per_plane_;
  std::uint32_t slc_blocks_per_plane_;
  std::uint64_t logical_subpages_;
};

}  // namespace ppssd::nand
