#include "nand/plane.h"

// Plane is header-only today; this TU anchors the type for the library.
