// Plane bookkeeping: block ranges and per-plane counters.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace ppssd::nand {

/// A plane is the unit of block allocation striping. It records aggregate
/// activity counters used by the wear and report modules.
class Plane {
 public:
  Plane(std::uint32_t id, BlockId first_block, std::uint32_t block_count,
        std::uint32_t chip, std::uint32_t channel)
      : id_(id),
        first_block_(first_block),
        block_count_(block_count),
        chip_(chip),
        channel_(channel) {}

  [[nodiscard]] std::uint32_t id() const { return id_; }
  [[nodiscard]] BlockId first_block() const { return first_block_; }
  [[nodiscard]] std::uint32_t block_count() const { return block_count_; }
  [[nodiscard]] std::uint32_t chip() const { return chip_; }
  [[nodiscard]] std::uint32_t channel() const { return channel_; }

  void count_program() { ++programs_; }
  void count_read() { ++reads_; }
  void count_erase() { ++erases_; }

  [[nodiscard]] std::uint64_t programs() const { return programs_; }
  [[nodiscard]] std::uint64_t reads() const { return reads_; }
  [[nodiscard]] std::uint64_t erases() const { return erases_; }

  /// Warm-start restore: overwrite the activity counters wholesale.
  void restore_counters(std::uint64_t programs, std::uint64_t reads,
                        std::uint64_t erases) {
    programs_ = programs;
    reads_ = reads;
    erases_ = erases;
  }

 private:
  std::uint32_t id_;
  BlockId first_block_;
  std::uint32_t block_count_;
  std::uint32_t chip_;
  std::uint32_t channel_;
  std::uint64_t programs_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t erases_ = 0;
};

}  // namespace ppssd::nand
