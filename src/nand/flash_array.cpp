#include "nand/flash_array.h"

#include "common/check.h"

namespace ppssd::nand {

FlashArray::FlashArray(const SsdConfig& cfg)
    : cfg_(cfg), geom_(cfg.geometry, cfg.cache.slc_ratio) {
  const std::string err = cfg.validate();
  PPSSD_CHECK_MSG(err.empty(), err.c_str());

  blocks_.reserve(geom_.total_blocks());
  for (BlockId b = 0; b < geom_.total_blocks(); ++b) {
    const CellMode mode =
        geom_.is_slc_block(b) ? CellMode::kSlc : CellMode::kMlc;
    blocks_.emplace_back(mode, geom_.pages_per_block(mode),
                         geom_.subpages_per_page());
  }
  planes_.reserve(geom_.planes());
  for (std::uint32_t p = 0; p < geom_.planes(); ++p) {
    const BlockId first = geom_.plane_first_block(p);
    planes_.emplace_back(p, first, geom_.blocks_per_plane(),
                         geom_.chip_of(first), geom_.channel_of(first));
  }
  chips_.resize(geom_.chips());
}

bool FlashArray::program(BlockId b, PageId p,
                         std::span<const SlotWrite> writes, SimTime now) {
  PPSSD_CHECK(b < blocks_.size());
  PPSSD_CHECK(!writes.empty());
  Block& blk = blocks_[b];
  if (blk.page(p).programmed()) {
    PPSSD_CHECK_MSG(can_partial_program(b, p),
                    "partial-program limit exceeded or no free slot");
  }
  const bool partial = blk.program(p, writes, now);

  // Wordline adjacency: programming page p disturbs pages p-1 and p+1 of
  // the same block if they already hold data (Figure 1).
  if (p > 0 && blk.page(static_cast<PageId>(p - 1)).programmed()) {
    blk.absorb_neighbor_program(static_cast<PageId>(p - 1));
  }
  const auto next = static_cast<PageId>(p + 1);
  if (next < blk.page_count() && blk.page(next).programmed()) {
    blk.absorb_neighbor_program(next);
  }

  const auto n = static_cast<std::uint64_t>(writes.size());
  if (blk.mode() == CellMode::kSlc) {
    ++counters_.slc_program_ops;
    counters_.slc_subpages_written += n;
  } else {
    ++counters_.mlc_program_ops;
    counters_.mlc_subpages_written += n;
  }
  if (partial) ++counters_.partial_program_ops;
  planes_[geom_.plane_of(b)].count_program();
  return partial;
}

bool FlashArray::can_partial_program(BlockId b, PageId p) const {
  const Block& blk = blocks_[b];
  const Page& pg = blk.page(p);
  if (pg.program_ops() >= cfg_.cache.max_partial_programs) return false;
  return pg.first_free(blk.subpages_per_page()) != kInvalidSubpage;
}

void FlashArray::invalidate(BlockId b, PageId p, SubpageId s) {
  PPSSD_CHECK(b < blocks_.size());
  blocks_[b].invalidate(p, s);
  if (observer_ != nullptr) {
    observer_->on_subpage_invalidated(b, blocks_[b].invalid_subpages());
  }
}

void FlashArray::erase(BlockId b, SimTime now) {
  PPSSD_CHECK(b < blocks_.size());
  Block& blk = blocks_[b];
  PPSSD_CHECK_MSG(blk.valid_subpages() == 0,
                  "erasing a block that still holds valid data");
  blk.erase(now);
  if (blk.mode() == CellMode::kSlc) {
    ++counters_.slc_erases;
  } else {
    ++counters_.mlc_erases;
  }
  planes_[geom_.plane_of(b)].count_erase();
}

void FlashArray::count_read(BlockId b) {
  ++counters_.read_ops;
  planes_[geom_.plane_of(b)].count_read();
}

std::uint64_t FlashArray::total_erases(CellMode mode) const {
  std::uint64_t sum = 0;
  for (const auto& blk : blocks_) {
    if (blk.mode() == mode) sum += blk.erase_count();
  }
  return sum;
}

}  // namespace ppssd::nand
