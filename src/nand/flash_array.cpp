#include "nand/flash_array.h"

#include <algorithm>

#include "common/check.h"
#include "common/state_io.h"

namespace ppssd::nand {

FlashArray::FlashArray(const SsdConfig& cfg)
    : cfg_(cfg), geom_(cfg.geometry, cfg.cache.slc_ratio) {
  const std::string err = cfg.validate();
  PPSSD_CHECK_MSG(err.empty(), err.c_str());

  spp_ = geom_.subpages_per_page();
  blocks_.reserve(geom_.total_blocks());
  statics_.reserve(geom_.total_blocks());
  slot_base_.reserve(geom_.total_blocks());
  std::size_t slots = 0;
  for (BlockId b = 0; b < geom_.total_blocks(); ++b) {
    const CellMode mode =
        geom_.is_slc_block(b) ? CellMode::kSlc : CellMode::kMlc;
    blocks_.emplace_back(mode, geom_.pages_per_block(mode),
                         geom_.subpages_per_page());
    statics_.push_back(BlockStatic{
        geom_.plane_of(b), static_cast<std::uint16_t>(geom_.chip_of(b)),
        static_cast<std::uint16_t>(geom_.channel_of(b)), mode});
    slot_base_.push_back(slots);
    slots += static_cast<std::size_t>(geom_.pages_per_block(mode)) * spp_;
  }
  sp_state_.assign(slots, 0);
  sp_owner_.assign(slots, 0);
  sp_wtime_.assign(slots, 0);
  sp_version_.assign(slots, 0);
  sp_programs_before_.assign(slots, 0);
  sp_neighbors_before_.assign(slots, 0);

  planes_.reserve(geom_.planes());
  for (std::uint32_t p = 0; p < geom_.planes(); ++p) {
    const BlockId first = geom_.plane_first_block(p);
    planes_.emplace_back(p, first, geom_.blocks_per_plane(),
                         geom_.chip_of(first), geom_.channel_of(first));
  }
  chips_.resize(geom_.chips());
}

bool FlashArray::program_reference(BlockId b, PageId p,
                                   std::span<const SlotWrite> writes,
                                   SimTime now) {
  PPSSD_CHECK(b < blocks_.size());
  PPSSD_CHECK(!writes.empty());
  Block& blk = blocks_[b];
  PPSSD_CHECK(p < blk.page_count());
  Page& pg = blk.pages_[p];
  if (pg.programmed()) {
    PPSSD_CHECK_MSG(can_partial_program(b, p),
                    "partial-program limit exceeded or no free slot");
  }
  const std::size_t base = slot_base_[b] + static_cast<std::size_t>(p) * spp_;

  // Layer "block": frontier rule and the cold-population transition.
  const std::uint8_t pre_ops = pg.program_ops_;
  if (pre_ops == 0) {
    PPSSD_CHECK_MSG(p == blk.frontier_, "out-of-order first program of a page");
    ++blk.frontier_;
  } else if (pre_ops == 1) {
    for (std::uint32_t s = 0; s < spp_; ++s) {
      if (sp_state_[base + s] ==
          static_cast<std::uint8_t>(SubpageState::kValid)) {
        blk.age_histogram_.remove(sp_wtime_[base + s]);
      }
    }
  }

  // Layer "page": write-once slot stamping in its own pass.
  PPSSD_CHECK_MSG(pre_ops < std::numeric_limits<std::uint8_t>::max(),
                  "page program-op counter overflow");
  const auto wt = static_cast<std::uint32_t>(now / 1'000'000);
  for (const SlotWrite& w : writes) {
    PPSSD_CHECK(w.slot < spp_);
    const std::size_t i = base + w.slot;
    PPSSD_CHECK_MSG(sp_state_[i] ==
                        static_cast<std::uint8_t>(SubpageState::kFree),
                    "programming a non-free subpage (NAND write-once rule)");
    sp_state_[i] = static_cast<std::uint8_t>(SubpageState::kValid);
    sp_owner_[i] = static_cast<std::uint32_t>(w.lsn);
    sp_version_[i] = w.version;
    sp_wtime_[i] = wt;
    sp_programs_before_[i] = pre_ops;
    sp_neighbors_before_[i] = pg.neighbor_programs_;
  }
  pg.program_ops_ = static_cast<std::uint8_t>(pre_ops + 1);
  const bool partial = pre_ops > 0;

  // Layer "block" aggregates, separate pass.
  const auto n = static_cast<std::uint32_t>(writes.size());
  blk.valid_ += n;
  blk.sum_write_time_ms_ += static_cast<std::uint64_t>(wt) * n;
  if (pre_ops == 0) {
    blk.age_histogram_.add(wt, n);
  }

  // Wordline adjacency: programming page p disturbs pages p-1 and p+1 of
  // the same block if they already hold data (Figure 1).
  if (p > 0 && blk.pages_[p - 1].programmed()) {
    blk.pages_[p - 1].absorb_neighbor_program();
  }
  const auto next = static_cast<PageId>(p + 1);
  if (next < blk.page_count() && blk.pages_[next].programmed()) {
    blk.pages_[next].absorb_neighbor_program();
  }

  if (blk.mode() == CellMode::kSlc) {
    ++counters_.slc_program_ops;
    counters_.slc_subpages_written += n;
  } else {
    ++counters_.mlc_program_ops;
    counters_.mlc_subpages_written += n;
  }
  if (partial) ++counters_.partial_program_ops;
  planes_[geom_.plane_of(b)].count_program();
  return partial;
}

void FlashArray::prefill_page(BlockId b, PageId p,
                              std::span<const SlotWrite> writes) {
  PPSSD_DCHECK(b < blocks_.size());
  PPSSD_DCHECK(!writes.empty());
  Block& blk = blocks_[b];
  PPSSD_CHECK_MSG(p == blk.frontier_, "out-of-order first program of a page");
  ++blk.frontier_;
  const std::size_t base = slot_base_[b] + static_cast<std::size_t>(p) * spp_;
  for (const SlotWrite& w : writes) {
    PPSSD_DCHECK(w.slot < spp_);
    const std::size_t i = base + w.slot;
    PPSSD_CHECK_MSG(sp_state_[i] ==
                        static_cast<std::uint8_t>(SubpageState::kFree),
                    "programming a non-free subpage (NAND write-once rule)");
    sp_state_[i] = static_cast<std::uint8_t>(SubpageState::kValid);
    sp_owner_[i] = static_cast<std::uint32_t>(w.lsn);
    sp_version_[i] = w.version;
    // write_time_ms, programs_before, neighbors_before stay 0: a frontier
    // fill at sim time 0 has seen no prior programs or neighbour disturbs.
  }
  blk.pages_[p].program_ops_ = 1;

  const auto n = static_cast<std::uint32_t>(writes.size());
  blk.valid_ += n;
  blk.age_histogram_.add(0, n);

  // Only the page behind the frontier can absorb this program; the page
  // ahead has never been programmed.
  if (p > 0 && blk.pages_[p - 1].program_ops_ > 0) {
    blk.pages_[p - 1].absorb_neighbor_program();
  }

  const BlockStatic& bs = statics_[b];
  if (bs.mode == CellMode::kSlc) {
    ++counters_.slc_program_ops;
    counters_.slc_subpages_written += n;
  } else {
    ++counters_.mlc_program_ops;
    counters_.mlc_subpages_written += n;
  }
  planes_[bs.plane].count_program();
}

bool FlashArray::can_partial_program(BlockId b, PageId p) const {
  const Block& blk = blocks_[b];
  if (blk.pages_[p].program_ops() >= cfg_.cache.max_partial_programs) {
    return false;
  }
  return page_first_free(b, p) != kInvalidSubpage;
}

void FlashArray::invalidate_reference(BlockId b, PageId p, SubpageId s) {
  PPSSD_CHECK(b < blocks_.size());
  Block& blk = blocks_[b];
  PPSSD_CHECK(p < blk.page_count());
  PPSSD_CHECK(s < spp_);
  const std::size_t i = slot_base_[b] + static_cast<std::size_t>(p) * spp_ + s;

  // Layer "page": the state flip.
  PPSSD_CHECK_MSG(sp_state_[i] ==
                      static_cast<std::uint8_t>(SubpageState::kValid),
                  "invalidating a subpage that is not valid");
  sp_state_[i] = static_cast<std::uint8_t>(SubpageState::kInvalid);

  // Layer "block": aggregates in a separate pass.
  const std::uint32_t wt = sp_wtime_[i];
  PPSSD_CHECK(blk.valid_ > 0);
  --blk.valid_;
  ++blk.invalid_;
  blk.sum_write_time_ms_ -= wt;
  if (blk.pages_[p].program_ops() == 1) {
    blk.age_histogram_.remove(wt);
  }
  if (observer_ != nullptr) {
    observer_->on_subpage_invalidated(b, blk.invalid_);
  }
}

void FlashArray::erase(BlockId b, SimTime now) {
  PPSSD_CHECK(b < blocks_.size());
  Block& blk = blocks_[b];
  PPSSD_CHECK_MSG(blk.valid_subpages() == 0,
                  "erasing a block that still holds valid data");
  blk.erase(now);
  // Clear the block's SoA slot range back to the erased state.
  const std::size_t base = slot_base_[b];
  const std::size_t n = static_cast<std::size_t>(blk.page_count()) * spp_;
  std::fill_n(sp_state_.begin() + base, n, std::uint8_t{0});
  std::fill_n(sp_owner_.begin() + base, n, std::uint32_t{0});
  std::fill_n(sp_wtime_.begin() + base, n, std::uint32_t{0});
  std::fill_n(sp_version_.begin() + base, n, std::uint32_t{0});
  std::fill_n(sp_programs_before_.begin() + base, n, std::uint8_t{0});
  std::fill_n(sp_neighbors_before_.begin() + base, n, std::uint16_t{0});
  const BlockStatic& bs = statics_[b];
  if (bs.mode == CellMode::kSlc) {
    ++counters_.slc_erases;
  } else {
    ++counters_.mlc_erases;
  }
  planes_[bs.plane].count_erase();
}

void FlashArray::count_read(BlockId b) {
  ++counters_.read_ops;
  planes_[statics_[b].plane].count_read();
}

std::uint64_t FlashArray::total_erases(CellMode mode) const {
  std::uint64_t sum = 0;
  for (const auto& blk : blocks_) {
    if (blk.mode() == mode) sum += blk.erase_count();
  }
  return sum;
}

void FlashArray::save(io::StateSink& sink) const {
  // Keep the layout in sync with the read-only checkpoint adapter
  // (telemetry/introspect/warmstart_reader.cpp), which re-parses this
  // section standalone; bump io::warmstart::kVersion on any change.
  //
  // Shape header: lets restore() reject a checkpoint whose geometry does
  // not match the constructed array (the container's key should already
  // guarantee this; the check is defense in depth).
  sink.u32(spp_);
  sink.u32(static_cast<std::uint32_t>(blocks_.size()));
  sink.u64(sp_state_.size());

  sink.vec(sp_state_);
  sink.vec(sp_owner_);
  sink.vec(sp_wtime_);
  sink.vec(sp_version_);
  sink.vec(sp_programs_before_);
  sink.vec(sp_neighbors_before_);

  // Page fields as three global SoA rows (block-major, page order), so
  // restore ingests them as three bulk copies instead of a per-page
  // scalar loop over the stream.
  std::size_t total_pages = 0;
  for (const Block& blk : blocks_) total_pages += blk.page_count();
  std::vector<std::uint8_t> pg_ops;
  std::vector<std::uint16_t> pg_neighbors;
  std::vector<std::uint8_t> pg_reprogrammed;
  pg_ops.reserve(total_pages);
  pg_neighbors.reserve(total_pages);
  pg_reprogrammed.reserve(total_pages);
  for (const Block& blk : blocks_) {
    for (const Page& pg : blk.pages_) {
      pg_ops.push_back(pg.program_ops_);
      pg_neighbors.push_back(pg.neighbor_programs_);
      pg_reprogrammed.push_back(pg.reprogrammed_ ? 1 : 0);
    }
  }
  sink.vec(pg_ops);
  sink.vec(pg_neighbors);
  sink.vec(pg_reprogrammed);

  // Per-block scalars *and* the running aggregates: the aggregates are
  // derivable from the rows above, but serializing them makes restore a
  // straight copy instead of a fold over every subpage slot — the
  // invariant walk (Scheme::check_consistency) still re-derives and
  // cross-checks them after every checkpoint round-trip in tests.
  for (const Block& blk : blocks_) {
    sink.u8(static_cast<std::uint8_t>(blk.level()));
    sink.u32(blk.erase_count());
    sink.u64(blk.last_erase_time());
    sink.u32(blk.frontier_);
    sink.u32(blk.valid_);
    sink.u32(blk.invalid_);
    sink.u64(blk.sum_write_time_ms_);
    blk.age_histogram_.save(sink);
  }

  for (const Plane& pl : planes_) {
    sink.u64(pl.programs());
    sink.u64(pl.reads());
    sink.u64(pl.erases());
  }

  sink.pod(counters_);
}

void FlashArray::restore(io::StateSource& src) {
  PPSSD_CHECK_MSG(src.u32() == spp_ &&
                      src.u32() == static_cast<std::uint32_t>(blocks_.size()) &&
                      src.u64() == sp_state_.size(),
                  "warm-start checkpoint does not match device geometry");

  // In-place row reads: the arrays are already sized by the constructor
  // (the geometry check above passed), so each row is one bulk copy;
  // vec_into sticky-fails on any length mismatch.
  (void)src.vec_into(sp_state_);
  (void)src.vec_into(sp_owner_);
  (void)src.vec_into(sp_wtime_);
  (void)src.vec_into(sp_version_);
  (void)src.vec_into(sp_programs_before_);
  (void)src.vec_into(sp_neighbors_before_);
  PPSSD_CHECK_MSG(src.ok(), "warm-start checkpoint rows truncated");

  const std::vector<std::uint8_t> pg_ops = src.vec<std::uint8_t>();
  const std::vector<std::uint16_t> pg_neighbors = src.vec<std::uint16_t>();
  const std::vector<std::uint8_t> pg_reprogrammed = src.vec<std::uint8_t>();
  std::size_t total_pages = 0;
  for (const Block& blk : blocks_) total_pages += blk.page_count();
  PPSSD_CHECK_MSG(src.ok() && pg_ops.size() == total_pages &&
                      pg_neighbors.size() == total_pages &&
                      pg_reprogrammed.size() == total_pages,
                  "warm-start checkpoint page rows truncated");

  // Scatter the page rows back, then take the serialized aggregates as
  // is — they were read off a consistent device and the stream already
  // passed the container checksum; the cheap per-block shape checks
  // below catch writer/reader drift, and the invariant walk re-derives
  // the aggregates in full wherever tests call it.
  std::size_t cursor = 0;
  for (Block& blk : blocks_) {
    blk.level_ = static_cast<BlockLevel>(src.u8());
    blk.erase_count_ = src.u32();
    blk.last_erase_time_ = src.u64();
    for (Page& pg : blk.pages_) {
      pg.program_ops_ = pg_ops[cursor];
      pg.neighbor_programs_ = pg_neighbors[cursor];
      pg.reprogrammed_ = pg_reprogrammed[cursor] != 0;
      ++cursor;
    }
    blk.frontier_ = src.u32();
    blk.valid_ = src.u32();
    blk.invalid_ = src.u32();
    blk.sum_write_time_ms_ = src.u64();
    blk.age_histogram_.restore(src);
    PPSSD_CHECK_MSG(
        blk.frontier_ <= blk.page_count() &&
            blk.valid_ + blk.invalid_ <=
                static_cast<std::uint64_t>(blk.frontier_) * spp_,
        "warm-start checkpoint block aggregates out of shape");
  }

  for (Plane& pl : planes_) {
    const std::uint64_t programs = src.u64();
    const std::uint64_t reads = src.u64();
    const std::uint64_t erases = src.u64();
    pl.restore_counters(programs, reads, erases);
  }

  counters_ = src.pod<ArrayCounters>();
  PPSSD_CHECK_MSG(src.ok(), "warm-start checkpoint truncated");
}

}  // namespace ppssd::nand
