#include "nand/flash_array.h"

#include "common/check.h"

namespace ppssd::nand {

FlashArray::FlashArray(const SsdConfig& cfg)
    : cfg_(cfg), geom_(cfg.geometry, cfg.cache.slc_ratio) {
  const std::string err = cfg.validate();
  PPSSD_CHECK_MSG(err.empty(), err.c_str());

  blocks_.reserve(geom_.total_blocks());
  statics_.reserve(geom_.total_blocks());
  for (BlockId b = 0; b < geom_.total_blocks(); ++b) {
    const CellMode mode =
        geom_.is_slc_block(b) ? CellMode::kSlc : CellMode::kMlc;
    blocks_.emplace_back(mode, geom_.pages_per_block(mode),
                         geom_.subpages_per_page());
    statics_.push_back(BlockStatic{
        geom_.plane_of(b), static_cast<std::uint16_t>(geom_.chip_of(b)),
        static_cast<std::uint16_t>(geom_.channel_of(b)), mode});
  }
  planes_.reserve(geom_.planes());
  for (std::uint32_t p = 0; p < geom_.planes(); ++p) {
    const BlockId first = geom_.plane_first_block(p);
    planes_.emplace_back(p, first, geom_.blocks_per_plane(),
                         geom_.chip_of(first), geom_.channel_of(first));
  }
  chips_.resize(geom_.chips());
}

bool FlashArray::program_reference(BlockId b, PageId p,
                                   std::span<const SlotWrite> writes,
                                   SimTime now) {
  PPSSD_CHECK(b < blocks_.size());
  PPSSD_CHECK(!writes.empty());
  Block& blk = blocks_[b];
  if (blk.page(p).programmed()) {
    PPSSD_CHECK_MSG(can_partial_program(b, p),
                    "partial-program limit exceeded or no free slot");
  }
  const bool partial = blk.program(p, writes, now);

  // Wordline adjacency: programming page p disturbs pages p-1 and p+1 of
  // the same block if they already hold data (Figure 1).
  if (p > 0 && blk.page(static_cast<PageId>(p - 1)).programmed()) {
    blk.absorb_neighbor_program(static_cast<PageId>(p - 1));
  }
  const auto next = static_cast<PageId>(p + 1);
  if (next < blk.page_count() && blk.page(next).programmed()) {
    blk.absorb_neighbor_program(next);
  }

  const auto n = static_cast<std::uint64_t>(writes.size());
  if (blk.mode() == CellMode::kSlc) {
    ++counters_.slc_program_ops;
    counters_.slc_subpages_written += n;
  } else {
    ++counters_.mlc_program_ops;
    counters_.mlc_subpages_written += n;
  }
  if (partial) ++counters_.partial_program_ops;
  planes_[geom_.plane_of(b)].count_program();
  return partial;
}

void FlashArray::prefill_page(BlockId b, PageId p,
                              std::span<const SlotWrite> writes) {
  PPSSD_DCHECK(b < blocks_.size());
  PPSSD_DCHECK(!writes.empty());
  Block& blk = blocks_[b];
  PPSSD_CHECK_MSG(p == blk.frontier_, "out-of-order first program of a page");
  ++blk.frontier_;
  Page& pg = blk.pages_[p];
  for (const SlotWrite& w : writes) {
    PPSSD_DCHECK(w.slot < blk.subpages_per_page_);
    Subpage& sp = pg.subpages_[w.slot];
    PPSSD_CHECK_MSG(sp.state == SubpageState::kFree,
                    "programming a non-free subpage (NAND write-once rule)");
    sp.state = SubpageState::kValid;
    sp.owner_lsn = static_cast<std::uint32_t>(w.lsn);
    sp.version = w.version;
    // write_time_ms, programs_before, neighbors_before stay 0: a frontier
    // fill at sim time 0 has seen no prior programs or neighbour disturbs.
  }
  pg.program_ops_ = 1;

  const auto n = static_cast<std::uint32_t>(writes.size());
  blk.valid_ += n;
  blk.age_histogram_.add(0, n);

  // Only the page behind the frontier can absorb this program; the page
  // ahead has never been programmed.
  if (p > 0 && blk.pages_[p - 1].program_ops_ > 0) {
    blk.pages_[p - 1].absorb_neighbor_program();
  }

  const BlockStatic& bs = statics_[b];
  if (bs.mode == CellMode::kSlc) {
    ++counters_.slc_program_ops;
    counters_.slc_subpages_written += n;
  } else {
    ++counters_.mlc_program_ops;
    counters_.mlc_subpages_written += n;
  }
  planes_[bs.plane].count_program();
}

bool FlashArray::can_partial_program(BlockId b, PageId p) const {
  const Block& blk = blocks_[b];
  const Page& pg = blk.page(p);
  if (pg.program_ops() >= cfg_.cache.max_partial_programs) return false;
  return pg.first_free(blk.subpages_per_page()) != kInvalidSubpage;
}

void FlashArray::invalidate_reference(BlockId b, PageId p, SubpageId s) {
  PPSSD_CHECK(b < blocks_.size());
  blocks_[b].invalidate(p, s);
  if (observer_ != nullptr) {
    observer_->on_subpage_invalidated(b, blocks_[b].invalid_subpages());
  }
}

void FlashArray::erase(BlockId b, SimTime now) {
  PPSSD_CHECK(b < blocks_.size());
  Block& blk = blocks_[b];
  PPSSD_CHECK_MSG(blk.valid_subpages() == 0,
                  "erasing a block that still holds valid data");
  blk.erase(now);
  const BlockStatic& bs = statics_[b];
  if (bs.mode == CellMode::kSlc) {
    ++counters_.slc_erases;
  } else {
    ++counters_.mlc_erases;
  }
  planes_[bs.plane].count_erase();
}

void FlashArray::count_read(BlockId b) {
  ++counters_.read_ops;
  planes_[statics_[b].plane].count_read();
}

std::uint64_t FlashArray::total_erases(CellMode mode) const {
  std::uint64_t sum = 0;
  for (const auto& blk : blocks_) {
    if (blk.mode() == mode) sum += blk.erase_count();
  }
  return sum;
}

}  // namespace ppssd::nand
