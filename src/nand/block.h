// Flash block: the erase unit.
//
// A block operates in a fixed cell mode (SLC-mode cache block or native
// MLC block). Pages within a block must be programmed in ascending order
// for the *first* program (NAND sequential-program rule); partial programs
// may later revisit a page's free subpage slots, bounded by the per-page
// partial-program limit enforced by the caller.
//
// GC support: the block maintains running aggregates over its subpage
// population so victim scoring never walks pages:
//  * sum_write_time_ms() — sum of write times over *valid* subpages, so a
//    policy can form sum-of-ages as valid * now_ms - sum_write_time_ms.
//  * never_updated_valid() + age_histogram() — the valid subpages living
//    in never-updated pages (the Eq. 2 cold-movement candidates), bucketed
//    by log2(write time - last erase time) so an age-weighted sum is
//    O(buckets).
// All three are maintained incrementally at program / invalidate / erase
// time and always equal a full rescan of the pages (see the invariant
// walk in cache::Scheme::check_consistency).
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/state_io.h"
#include "common/types.h"
#include "nand/page.h"

namespace ppssd::nand {

/// Log-spaced histogram of subpage write times (milliseconds). Write
/// times are bucketed by their offset from a per-block base — the owning
/// block's last erase time — so resolution tracks the block's own fill
/// window instead of absolute sim time: bucket k holds offsets with
/// bit-width k (i.e. [2^(k-1), 2^k); bucket 0 is offset 0). Each bucket
/// keeps the exact count and absolute write-time sum, so an age-weighted
/// fold evaluates its kernel once per bucket at the bucket's true mean
/// write time instead of once per subpage. Each octave is split into
/// 2^kSubBits linear sub-buckets (HDR-histogram style), so the bucket
/// width — the kernel's within-bucket error bound — is at most 1/8 of the
/// subpage's time-since-erase.
class AgeHistogram {
 public:
  /// Linear sub-buckets per octave: 2^kSubBits.
  static constexpr std::uint32_t kSubBits = 2;
  /// 33 possible bit-widths of a 32-bit offset, each split in sub-buckets
  /// (small offsets with fewer than kSubBits significant bits collapse
  /// into their octave's first sub-buckets, which are then exact).
  static constexpr std::uint32_t kBuckets = 33u << kSubBits;

  [[nodiscard]] std::uint32_t bucket_of(std::uint32_t wt_ms) const {
    const std::uint32_t offset = wt_ms - base_ms_;
    const auto bw = static_cast<std::uint32_t>(std::bit_width(offset));
    // Sub-bucket index: the kSubBits bits below the leading bit.
    const std::uint32_t sub =
        bw > kSubBits ? (offset >> (bw - 1 - kSubBits)) & ((1u << kSubBits) - 1)
                      : offset;
    return (bw << kSubBits) | sub;
  }

  void add(std::uint32_t wt_ms, std::uint32_t n = 1) {
    const std::uint32_t b = bucket_of(wt_ms);
    count_[b] += n;
    sum_[b] += static_cast<std::uint64_t>(wt_ms) * n;
    total_ += n;
    occupied_[b / 64] |= 1ull << (b % 64);
  }

  void remove(std::uint32_t wt_ms) {
    const std::uint32_t b = bucket_of(wt_ms);
    count_[b] -= 1;
    sum_[b] -= wt_ms;
    total_ -= 1;
    if (count_[b] == 0) occupied_[b / 64] &= ~(1ull << (b % 64));
  }

  /// Empty the histogram and rebase it. Every subsequent add/remove must
  /// carry a write time >= base_ms (writes follow the erase that sets it).
  void clear(std::uint32_t base_ms = 0) {
    count_.fill(0);
    sum_.fill(0);
    occupied_.fill(0);
    total_ = 0;
    base_ms_ = base_ms;
  }

  [[nodiscard]] std::uint32_t base_ms() const { return base_ms_; }

  [[nodiscard]] std::uint32_t total() const { return total_; }
  [[nodiscard]] std::uint32_t count(std::uint32_t bucket) const {
    return count_[bucket];
  }
  [[nodiscard]] std::uint64_t sum(std::uint32_t bucket) const {
    return sum_[bucket];
  }

  /// Fold count * f(bucket mean write time) over non-empty buckets,
  /// walking the occupancy bitmap so cost is O(occupied buckets).
  template <typename Fn>
  [[nodiscard]] double fold(Fn&& f) const {
    double acc = 0.0;
    for (std::uint32_t w = 0; w < occupied_.size(); ++w) {
      std::uint64_t bits = occupied_[w];
      while (bits != 0) {
        const auto b =
            w * 64 + static_cast<std::uint32_t>(std::countr_zero(bits));
        const double mean = static_cast<double>(sum_[b]) /
                            static_cast<double>(count_[b]);
        acc += static_cast<double>(count_[b]) * f(mean);
        bits &= bits - 1;
      }
    }
    return acc;
  }

  bool operator==(const AgeHistogram&) const = default;

  /// Checkpoint serialization: the sparse set of occupied buckets (the
  /// dense arrays are ~1.6 KB/block, but post-warm-up blocks occupy only
  /// a handful of buckets). restore() reproduces exact equality; totals
  /// are rebuilt from the bucket counts.
  void save(io::StateSink& sink) const {
    sink.u32(base_ms_);
    std::uint32_t n = 0;
    for (const std::uint64_t w : occupied_) n += std::popcount(w);
    sink.u32(n);
    for (std::uint32_t w = 0; w < occupied_.size(); ++w) {
      std::uint64_t bits = occupied_[w];
      while (bits != 0) {
        const auto b =
            w * 64 + static_cast<std::uint32_t>(std::countr_zero(bits));
        sink.u16(static_cast<std::uint16_t>(b));
        sink.u32(count_[b]);
        sink.u64(sum_[b]);
        bits &= bits - 1;
      }
    }
  }

  /// Inverse of save(). The caller (FlashArray::restore) has already
  /// checksum-validated the stream, so shape violations are hard errors.
  void restore(io::StateSource& src) {
    clear(src.u32());
    const std::uint32_t n = src.u32();
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t b = src.u16();
      const std::uint32_t count = src.u32();
      const std::uint64_t sum = src.u64();
      PPSSD_CHECK_MSG(b < kBuckets && count > 0,
                      "age histogram bucket out of range in checkpoint");
      count_[b] = count;
      sum_[b] = sum;
      occupied_[b / 64] |= 1ull << (b % 64);
      total_ += count;
    }
  }

 private:
  std::array<std::uint32_t, kBuckets> count_{};
  std::array<std::uint64_t, kBuckets> sum_{};
  std::array<std::uint64_t, (kBuckets + 63) / 64> occupied_{};
  std::uint32_t total_ = 0;
  std::uint32_t base_ms_ = 0;
};

class Block {
 public:
  Block(CellMode mode, std::uint32_t pages, std::uint32_t subpages_per_page);

  [[nodiscard]] CellMode mode() const { return mode_; }
  [[nodiscard]] std::uint32_t page_count() const {
    return static_cast<std::uint32_t>(pages_.size());
  }
  [[nodiscard]] std::uint32_t subpages_per_page() const {
    return subpages_per_page_;
  }
  [[nodiscard]] std::uint32_t total_subpages() const {
    return page_count() * subpages_per_page_;
  }

  /// IPU block level (Work/Monitor/Hot, or HighDensity for MLC blocks).
  [[nodiscard]] BlockLevel level() const { return level_; }
  void set_level(BlockLevel level) { level_ = level; }

  [[nodiscard]] std::uint32_t erase_count() const { return erase_count_; }
  [[nodiscard]] SimTime last_erase_time() const { return last_erase_time_; }

  /// Next page that has never been programmed (append point), or
  /// page_count() when the block is fully opened.
  [[nodiscard]] std::uint32_t write_frontier() const { return frontier_; }
  [[nodiscard]] bool has_free_page() const { return frontier_ < page_count(); }

  [[nodiscard]] std::uint32_t valid_subpages() const { return valid_; }
  [[nodiscard]] std::uint32_t invalid_subpages() const { return invalid_; }
  [[nodiscard]] std::uint32_t programmed_subpages() const {
    return valid_ + invalid_;
  }

  /// Sum of write_time_ms over the block's valid subpages.
  [[nodiscard]] std::uint64_t sum_write_time_ms() const {
    return sum_write_time_ms_;
  }
  /// Valid subpages living in never-updated pages (page_updated() false).
  [[nodiscard]] std::uint32_t never_updated_valid() const {
    return age_histogram_.total();
  }
  /// Write-time histogram over the never-updated valid subpages.
  [[nodiscard]] const AgeHistogram& age_histogram() const {
    return age_histogram_;
  }

  [[nodiscard]] const Page& page(PageId p) const { return pages_[p]; }
  [[nodiscard]] Page& page(PageId p) { return pages_[p]; }

  /// Erase: clears all pages, bumps the P/E counter. Subpage slot contents
  /// live in the FlashArray SoA rows; FlashArray::erase clears those.
  void erase(SimTime now);

 private:
  /// The fused array-level paths update frontier, counters and the age
  /// histogram directly in one pass over the touched slots.
  friend class FlashArray;

  std::vector<Page> pages_;
  AgeHistogram age_histogram_;
  CellMode mode_;
  BlockLevel level_;
  std::uint32_t subpages_per_page_;
  std::uint32_t frontier_ = 0;
  std::uint32_t valid_ = 0;
  std::uint32_t invalid_ = 0;
  std::uint32_t erase_count_ = 0;
  std::uint64_t sum_write_time_ms_ = 0;
  SimTime last_erase_time_ = 0;
};

}  // namespace ppssd::nand
