// Flash block: the erase unit.
//
// A block operates in a fixed cell mode (SLC-mode cache block or native
// MLC block). Pages within a block must be programmed in ascending order
// for the *first* program (NAND sequential-program rule); partial programs
// may later revisit a page's free subpage slots, bounded by the per-page
// partial-program limit enforced by the caller.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "nand/page.h"

namespace ppssd::nand {

class Block {
 public:
  Block(CellMode mode, std::uint32_t pages, std::uint32_t subpages_per_page);

  [[nodiscard]] CellMode mode() const { return mode_; }
  [[nodiscard]] std::uint32_t page_count() const {
    return static_cast<std::uint32_t>(pages_.size());
  }
  [[nodiscard]] std::uint32_t subpages_per_page() const {
    return subpages_per_page_;
  }
  [[nodiscard]] std::uint32_t total_subpages() const {
    return page_count() * subpages_per_page_;
  }

  /// IPU block level (Work/Monitor/Hot, or HighDensity for MLC blocks).
  [[nodiscard]] BlockLevel level() const { return level_; }
  void set_level(BlockLevel level) { level_ = level; }

  [[nodiscard]] std::uint32_t erase_count() const { return erase_count_; }
  [[nodiscard]] SimTime last_erase_time() const { return last_erase_time_; }

  /// Next page that has never been programmed (append point), or
  /// page_count() when the block is fully opened.
  [[nodiscard]] std::uint32_t write_frontier() const { return frontier_; }
  [[nodiscard]] bool has_free_page() const { return frontier_ < page_count(); }

  [[nodiscard]] std::uint32_t valid_subpages() const { return valid_; }
  [[nodiscard]] std::uint32_t invalid_subpages() const { return invalid_; }
  [[nodiscard]] std::uint32_t programmed_subpages() const {
    return valid_ + invalid_;
  }

  [[nodiscard]] const Page& page(PageId p) const { return pages_[p]; }
  [[nodiscard]] Page& page(PageId p) { return pages_[p]; }

  /// Apply one program operation to page `p` filling the given slots.
  /// Advances the frontier on a first program; updates valid counters.
  /// Returns true if this was a partial program.
  bool program(PageId p, std::span<const SlotWrite> writes, SimTime now);

  /// Invalidate one valid subpage.
  void invalidate(PageId p, SubpageId s);

  /// Record a program on the page adjacent to `p` (disturb propagation is
  /// performed by FlashArray which knows wordline adjacency).
  void absorb_neighbor_program(PageId p) {
    pages_[p].absorb_neighbor_program();
  }

  /// Erase: clears all pages, bumps the P/E counter.
  void erase(SimTime now);

 private:
  std::vector<Page> pages_;
  CellMode mode_;
  BlockLevel level_;
  std::uint32_t subpages_per_page_;
  std::uint32_t frontier_ = 0;
  std::uint32_t valid_ = 0;
  std::uint32_t invalid_ = 0;
  std::uint32_t erase_count_ = 0;
  SimTime last_erase_time_ = 0;
};

}  // namespace ppssd::nand
