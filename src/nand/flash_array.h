// The flash array: owns every block and enforces NAND physics.
//
// This is the bottom layer of the simulator. It knows nothing about
// logical addresses or caching policy; the FTL and cache schemes above it
// decide *where* to program, the array enforces *how* programming behaves:
// write-once subpages, page-sequential first programs, the per-page
// partial-program limit, disturb propagation to wordline neighbours, and
// erase/wear accounting.
//
// Hot-path layout (DESIGN.md §10): program() and invalidate() are *fused*
// single-pass implementations — they update subpage state, block running
// aggregates, the age histogram, array counters and the block observer in
// one walk over the touched slots, instead of dispatching through
// Block::program → Page::program per layer. The layer-by-layer chains
// survive as program_reference()/invalidate_reference() oracles, held
// state-identical by tests/nand/fused_path_test.cpp. Contract invariants
// (write-once, frontier order, partial-program limit, valid-state) stay
// PPSSD_CHECK in every build; bounds and secondary state checks are
// PPSSD_DCHECK and compile out of Release.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/config.h"
#include "common/types.h"
#include "nand/block.h"
#include "nand/chip.h"
#include "nand/disturb.h"
#include "nand/geometry.h"
#include "nand/plane.h"

namespace ppssd::nand {

/// Raw operation counters, split by region.
struct ArrayCounters {
  std::uint64_t slc_program_ops = 0;
  std::uint64_t mlc_program_ops = 0;
  std::uint64_t partial_program_ops = 0;
  std::uint64_t slc_subpages_written = 0;
  std::uint64_t mlc_subpages_written = 0;
  std::uint64_t slc_erases = 0;
  std::uint64_t mlc_erases = 0;
  std::uint64_t read_ops = 0;
  /// In-place SLC→dense reprogram operations (IPS promotion path).
  std::uint64_t reprogram_ops = 0;
  std::uint64_t reprogrammed_subpages = 0;
};

/// Observer of block bookkeeping changes. The FTL's victim index hangs
/// off this so per-block scores stay incrementally maintained without the
/// array knowing anything about GC policy.
class BlockObserver {
 public:
  virtual ~BlockObserver() = default;
  /// One subpage of `b` went valid -> invalid; `invalid` is the block's
  /// new invalid-subpage count.
  virtual void on_subpage_invalidated(BlockId b, std::uint32_t invalid) = 0;
};

/// Immutable physical coordinates of a block, precomputed once at
/// construction so the per-operation paths (and the schemes' op-emission
/// helpers) never pay the plane_of/chip_of/channel_of divisions.
struct BlockStatic {
  std::uint32_t plane = 0;
  std::uint16_t chip = 0;
  std::uint16_t channel = 0;
  CellMode mode = CellMode::kSlc;
};

class FlashArray {
 public:
  explicit FlashArray(const SsdConfig& cfg);

  [[nodiscard]] const Geometry& geometry() const { return geom_; }
  [[nodiscard]] const SsdConfig& config() const { return cfg_; }

  [[nodiscard]] const Block& block(BlockId b) const { return blocks_[b]; }
  [[nodiscard]] Block& block(BlockId b) { return blocks_[b]; }

  /// Precomputed plane/chip/channel/mode of a block (no divisions).
  [[nodiscard]] const BlockStatic& block_static(BlockId b) const {
    PPSSD_DCHECK(b < statics_.size());
    return statics_[b];
  }

  [[nodiscard]] const Plane& plane(std::uint32_t p) const { return planes_[p]; }
  [[nodiscard]] Chip& chip(std::uint32_t c) { return chips_[c]; }
  [[nodiscard]] std::uint32_t chip_count() const {
    return static_cast<std::uint32_t>(chips_.size());
  }

  /// Apply one program operation to block `b`, page `p`, filling the given
  /// slots. Enforces the per-page partial-program limit and propagates
  /// neighbour disturb. Returns true if it was a partial program.
  ///
  /// Fused single-pass implementation: page state, block aggregates, the
  /// age histogram and array counters update in one walk over `writes`.
  bool program(BlockId b, PageId p, std::span<const SlotWrite> writes,
               SimTime now) {
    PPSSD_DCHECK(b < blocks_.size());
    PPSSD_DCHECK(!writes.empty());
    Block& blk = blocks_[b];
    PPSSD_DCHECK(p < blk.page_count());
    Page& pg = blk.pages_[p];
    const std::uint8_t pre_ops = pg.program_ops_;
    if (pre_ops == 0) {
      // First program of a page must land on the write frontier: NAND
      // blocks are programmed page-sequentially after an erase.
      PPSSD_CHECK_MSG(p == blk.frontier_,
                      "out-of-order first program of a page");
      ++blk.frontier_;
    } else {
      PPSSD_CHECK_MSG(pre_ops < cfg_.cache.max_partial_programs,
                      "partial-program limit exceeded or no free slot");
      if (pre_ops == 1) {
        // The page transitions to "updated": its valid subpages leave the
        // cold (never-updated) population tracked by the age histogram.
        for (std::uint32_t s = 0; s < blk.subpages_per_page_; ++s) {
          const Subpage& sp = pg.subpages_[s];
          if (sp.state == SubpageState::kValid) {
            blk.age_histogram_.remove(sp.write_time_ms);
          }
        }
      }
    }
    PPSSD_DCHECK_MSG(pg.program_ops_ <
                         std::numeric_limits<std::uint8_t>::max(),
                     "page program-op counter overflow");
    const auto wt = static_cast<std::uint32_t>(now / 1'000'000);
    for (const SlotWrite& w : writes) {
      PPSSD_DCHECK(w.slot < blk.subpages_per_page_);
      Subpage& sp = pg.subpages_[w.slot];
      PPSSD_CHECK_MSG(sp.state == SubpageState::kFree,
                      "programming a non-free subpage (NAND write-once rule)");
      sp.state = SubpageState::kValid;
      sp.owner_lsn = static_cast<std::uint32_t>(w.lsn);
      sp.version = w.version;
      sp.write_time_ms = wt;
      sp.programs_before = pre_ops;
      sp.neighbors_before = pg.neighbor_programs_;
    }
    pg.program_ops_ = static_cast<std::uint8_t>(pre_ops + 1);

    const auto n = static_cast<std::uint32_t>(writes.size());
    blk.valid_ += n;
    blk.sum_write_time_ms_ += static_cast<std::uint64_t>(wt) * n;
    if (pre_ops == 0) {
      blk.age_histogram_.add(wt, n);
    }

    // Wordline adjacency: programming page p disturbs pages p-1 and p+1
    // of the same block if they already hold data (Figure 1).
    if (p > 0 && blk.pages_[p - 1].program_ops_ > 0) {
      blk.pages_[p - 1].absorb_neighbor_program();
    }
    const auto next = static_cast<PageId>(p + 1);
    if (next < blk.page_count() && blk.pages_[next].program_ops_ > 0) {
      blk.pages_[next].absorb_neighbor_program();
    }

    const BlockStatic& bs = statics_[b];
    if (bs.mode == CellMode::kSlc) {
      ++counters_.slc_program_ops;
      counters_.slc_subpages_written += n;
    } else {
      ++counters_.mlc_program_ops;
      counters_.mlc_subpages_written += n;
    }
    if (pre_ops > 0) ++counters_.partial_program_ops;
    planes_[bs.plane].count_program();
    return pre_ops > 0;
  }

  /// Layer-by-layer program chain (FlashArray → Block → Page), kept as
  /// the equivalence oracle for the fused program().
  bool program_reference(BlockId b, PageId p,
                         std::span<const SlotWrite> writes, SimTime now);

  /// In-place switch (IPS, arXiv 2409.14360): promote an SLC-mode cache
  /// page to a dense-mode destination by continuing the ISPP sequence on
  /// the cells instead of read-migrate-program. The destination page's
  /// resulting state is identical to program(dst_b, dst_p, writes, now) —
  /// the caller supplies the surviving slot writes — plus a sticky
  /// `reprogrammed` mark that the BER model prices as a retention/disturb
  /// penalty. The mark clears on erase.
  ///
  /// The source page must be in SLC frontier state: exactly one program
  /// since erase (a single-pulse SLC write, never partially programmed).
  /// Reprogramming from any other state is physically meaningless and is
  /// rejected by an always-on check, as is a non-SLC source or a non-dense
  /// destination. The caller invalidates the source slots itself (they
  /// are superseded data after the switch, exactly as after a migration).
  void reprogram(BlockId src_b, PageId src_p, BlockId dst_b, PageId dst_p,
                 std::span<const SlotWrite> writes, SimTime now) {
    PPSSD_DCHECK(src_b < blocks_.size());
    const Block& src = blocks_[src_b];
    PPSSD_DCHECK(src_p < src.page_count());
    PPSSD_CHECK_MSG(statics_[src_b].mode == CellMode::kSlc,
                    "reprogram source must be an SLC-mode page");
    PPSSD_CHECK_MSG(src.page(src_p).program_ops() == 1,
                    "reprogram source not in SLC frontier state (exactly one "
                    "program since erase required)");
    PPSSD_CHECK_MSG(statics_[dst_b].mode == CellMode::kMlc,
                    "reprogram destination must be a dense-mode page");
    program(dst_b, dst_p, writes, now);
    blocks_[dst_b].pages_[dst_p].reprogrammed_ = true;
    ++counters_.reprogram_ops;
    counters_.reprogrammed_subpages += writes.size();
  }

  /// Bulk first-program entry point for setup (Scheme prefill): programs
  /// the write frontier of `b` at sim time 0. Skips the partial-program
  /// branches and the forward-neighbour probe — a frontier fill can only
  /// disturb the page behind it. State produced is identical to
  /// program(b, p, writes, 0) on a free frontier page.
  void prefill_page(BlockId b, PageId p, std::span<const SlotWrite> writes);

  /// True if page (b, p) may accept another program operation (partial-
  /// program limit not yet reached and free subpage slots remain).
  [[nodiscard]] bool can_partial_program(BlockId b, PageId p) const;

  /// Fused invalidate: one page lookup updates subpage state, block
  /// aggregates, the age histogram and the observer in a single pass.
  void invalidate(BlockId b, PageId p, SubpageId s) {
    PPSSD_DCHECK(b < blocks_.size());
    Block& blk = blocks_[b];
    PPSSD_DCHECK(p < blk.page_count());
    Page& pg = blk.pages_[p];
    PPSSD_DCHECK(s < blk.subpages_per_page_);
    Subpage& sp = pg.subpages_[s];
    PPSSD_CHECK_MSG(sp.state == SubpageState::kValid,
                    "invalidating a subpage that is not valid");
    sp.state = SubpageState::kInvalid;
    const std::uint32_t wt = sp.write_time_ms;
    PPSSD_DCHECK(blk.valid_ > 0);
    --blk.valid_;
    ++blk.invalid_;
    blk.sum_write_time_ms_ -= wt;
    if (pg.program_ops_ == 1) {
      blk.age_histogram_.remove(wt);
    }
    if (observer_ != nullptr) {
      observer_->on_subpage_invalidated(b, blk.invalid_);
    }
  }

  /// Layer-by-layer invalidate chain, kept as the equivalence oracle for
  /// the fused invalidate().
  void invalidate_reference(BlockId b, PageId p, SubpageId s);

  /// Erase a block. All subpages must already be invalid or free — the
  /// caller (GC) is responsible for relocating valid data first.
  void erase(BlockId b, SimTime now);

  /// Count a read operation (timing handled by the service model).
  void count_read(BlockId b);

  /// Disturb snapshot of a stored subpage for the BER model.
  [[nodiscard]] DisturbSnapshot disturb_of(BlockId b, PageId p,
                                           SubpageId s) const {
    return snapshot_disturb(blocks_[b], p, s, cfg_.wear.initial_pe_cycles);
  }

  [[nodiscard]] const ArrayCounters& counters() const { return counters_; }

  /// Zero the aggregate operation counters (per-block wear is preserved).
  /// Used after warm-up so reports cover only the measured phase.
  void reset_counters() { counters_ = ArrayCounters{}; }

  /// Sum of erase counts over SLC-mode / MLC blocks (wear inspection).
  [[nodiscard]] std::uint64_t total_erases(CellMode mode) const;

  /// Register (or clear, with nullptr) the single block observer. The
  /// observer must outlive the array or unregister before destruction.
  void set_block_observer(BlockObserver* observer) { observer_ = observer; }

 private:
  SsdConfig cfg_;
  Geometry geom_;
  std::vector<Block> blocks_;
  std::vector<BlockStatic> statics_;
  std::vector<Plane> planes_;
  std::vector<Chip> chips_;
  ArrayCounters counters_;
  BlockObserver* observer_ = nullptr;
};

}  // namespace ppssd::nand
