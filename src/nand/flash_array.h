// The flash array: owns every block and enforces NAND physics.
//
// This is the bottom layer of the simulator. It knows nothing about
// logical addresses or caching policy; the FTL and cache schemes above it
// decide *where* to program, the array enforces *how* programming behaves:
// write-once subpages, page-sequential first programs, the per-page
// partial-program limit, disturb propagation to wordline neighbours, and
// erase/wear accounting.
//
// Hot-path layout (DESIGN.md §10, §14): program() and invalidate() are
// *fused* single-pass implementations, and the per-subpage fields they
// walk are stored as structure-of-arrays rows (one flat vector per field,
// indexed by a precomputed per-block slot base) so a state scan touches
// one densely packed row instead of striding over interleaved structs.
// The layer-by-layer chains survive as program_reference()/
// invalidate_reference() oracles, held state-identical by
// tests/nand/fused_path_test.cpp. Contract invariants (write-once,
// frontier order, partial-program limit, valid-state) stay PPSSD_CHECK in
// every build; bounds and secondary state checks are PPSSD_DCHECK and
// compile out of Release.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/config.h"
#include "common/types.h"
#include "nand/block.h"
#include "nand/chip.h"
#include "nand/disturb.h"
#include "nand/geometry.h"
#include "nand/plane.h"

namespace ppssd::io {
class StateSink;
class StateSource;
}  // namespace ppssd::io

namespace ppssd::nand {

/// Raw operation counters, split by region.
struct ArrayCounters {
  std::uint64_t slc_program_ops = 0;
  std::uint64_t mlc_program_ops = 0;
  std::uint64_t partial_program_ops = 0;
  std::uint64_t slc_subpages_written = 0;
  std::uint64_t mlc_subpages_written = 0;
  std::uint64_t slc_erases = 0;
  std::uint64_t mlc_erases = 0;
  std::uint64_t read_ops = 0;
  /// In-place SLC→dense reprogram operations (IPS promotion path).
  std::uint64_t reprogram_ops = 0;
  std::uint64_t reprogrammed_subpages = 0;
};

/// Observer of block bookkeeping changes. The FTL's victim index hangs
/// off this so per-block scores stay incrementally maintained without the
/// array knowing anything about GC policy.
class BlockObserver {
 public:
  virtual ~BlockObserver() = default;
  /// One subpage of `b` went valid -> invalid; `invalid` is the block's
  /// new invalid-subpage count.
  virtual void on_subpage_invalidated(BlockId b, std::uint32_t invalid) = 0;
};

/// Immutable physical coordinates of a block, precomputed once at
/// construction so the per-operation paths (and the schemes' op-emission
/// helpers) never pay the plane_of/chip_of/channel_of divisions.
struct BlockStatic {
  std::uint32_t plane = 0;
  std::uint16_t chip = 0;
  std::uint16_t channel = 0;
  CellMode mode = CellMode::kSlc;
};

class FlashArray {
 public:
  explicit FlashArray(const SsdConfig& cfg);

  [[nodiscard]] const Geometry& geometry() const { return geom_; }
  [[nodiscard]] const SsdConfig& config() const { return cfg_; }

  [[nodiscard]] const Block& block(BlockId b) const { return blocks_[b]; }
  [[nodiscard]] Block& block(BlockId b) { return blocks_[b]; }

  /// Precomputed plane/chip/channel/mode of a block (no divisions).
  [[nodiscard]] const BlockStatic& block_static(BlockId b) const {
    PPSSD_DCHECK(b < statics_.size());
    return statics_[b];
  }

  [[nodiscard]] const Plane& plane(std::uint32_t p) const { return planes_[p]; }
  [[nodiscard]] Chip& chip(std::uint32_t c) { return chips_[c]; }
  [[nodiscard]] std::uint32_t chip_count() const {
    return static_cast<std::uint32_t>(chips_.size());
  }

  /// Subpages per page — uniform across cell modes; the SoA rows rely on
  /// that uniformity for their fixed per-page stride.
  [[nodiscard]] std::uint32_t subpages_per_page() const { return spp_; }

  /// Flat SoA slot index of subpage (b, p, s).
  [[nodiscard]] std::size_t slot_index(BlockId b, PageId p,
                                       SubpageId s) const {
    PPSSD_DCHECK(b < blocks_.size());
    PPSSD_DCHECK(p < blocks_[b].page_count());
    PPSSD_DCHECK(s < spp_);
    return slot_base_[b] + static_cast<std::size_t>(p) * spp_ + s;
  }

  [[nodiscard]] SubpageState subpage_state(BlockId b, PageId p,
                                           SubpageId s) const {
    return static_cast<SubpageState>(sp_state_[slot_index(b, p, s)]);
  }

  /// Materialized copy of one subpage's stored fields (SoA gather).
  [[nodiscard]] Subpage subpage(BlockId b, PageId p, SubpageId s) const {
    const std::size_t i = slot_index(b, p, s);
    Subpage sp;
    sp.owner_lsn = sp_owner_[i];
    sp.write_time_ms = sp_wtime_[i];
    sp.version = sp_version_[i];
    sp.state = static_cast<SubpageState>(sp_state_[i]);
    sp.programs_before = sp_programs_before_[i];
    sp.neighbors_before = sp_neighbors_before_[i];
    return sp;
  }

  /// Count of page (b, p)'s subpages in state `st`.
  [[nodiscard]] std::uint32_t page_count_state(BlockId b, PageId p,
                                               SubpageState st) const {
    const std::size_t base = slot_index(b, p, 0);
    std::uint32_t c = 0;
    for (std::uint32_t s = 0; s < spp_; ++s) {
      if (sp_state_[base + s] == static_cast<std::uint8_t>(st)) ++c;
    }
    return c;
  }

  /// Index of the first free slot of page (b, p), or kInvalidSubpage.
  /// Slots are consumed in order and invalidation never frees them, so
  /// the free slots of a page always form a suffix.
  [[nodiscard]] SubpageId page_first_free(BlockId b, PageId p) const {
    const std::size_t base = slot_index(b, p, 0);
    for (std::uint32_t s = 0; s < spp_; ++s) {
      if (sp_state_[base + s] ==
          static_cast<std::uint8_t>(SubpageState::kFree)) {
        return static_cast<SubpageId>(s);
      }
    }
    return kInvalidSubpage;
  }

  /// In-page disturb events absorbed by (b, p, s) since it was written:
  /// the number of partial programs applied to the page afterwards.
  [[nodiscard]] std::uint32_t in_page_disturbs(BlockId b, PageId p,
                                               SubpageId s) const {
    const std::size_t i = slot_index(b, p, s);
    PPSSD_DCHECK(sp_state_[i] !=
                 static_cast<std::uint8_t>(SubpageState::kFree));
    return blocks_[b].pages_[p].program_ops_ - sp_programs_before_[i] - 1;
  }

  /// Neighbour disturb events absorbed by (b, p, s) since it was written.
  [[nodiscard]] std::uint32_t neighbor_disturbs(BlockId b, PageId p,
                                                SubpageId s) const {
    const std::size_t i = slot_index(b, p, s);
    PPSSD_DCHECK(sp_state_[i] !=
                 static_cast<std::uint8_t>(SubpageState::kFree));
    return blocks_[b].pages_[p].neighbor_programs_ -
           sp_neighbors_before_[i];
  }

  /// Apply one program operation to block `b`, page `p`, filling the given
  /// slots. Enforces the per-page partial-program limit and propagates
  /// neighbour disturb. Returns true if it was a partial program.
  ///
  /// Fused single-pass implementation: subpage rows, page counters, block
  /// aggregates, the age histogram and array counters update in one walk
  /// over `writes`.
  bool program(BlockId b, PageId p, std::span<const SlotWrite> writes,
               SimTime now) {
    PPSSD_DCHECK(b < blocks_.size());
    PPSSD_DCHECK(!writes.empty());
    Block& blk = blocks_[b];
    PPSSD_DCHECK(p < blk.page_count());
    Page& pg = blk.pages_[p];
    const std::size_t base = slot_base_[b] + static_cast<std::size_t>(p) * spp_;
    const std::uint8_t pre_ops = pg.program_ops_;
    if (pre_ops == 0) {
      // First program of a page must land on the write frontier: NAND
      // blocks are programmed page-sequentially after an erase.
      PPSSD_CHECK_MSG(p == blk.frontier_,
                      "out-of-order first program of a page");
      ++blk.frontier_;
    } else {
      PPSSD_CHECK_MSG(pre_ops < cfg_.cache.max_partial_programs,
                      "partial-program limit exceeded or no free slot");
      if (pre_ops == 1) {
        // The page transitions to "updated": its valid subpages leave the
        // cold (never-updated) population tracked by the age histogram.
        for (std::uint32_t s = 0; s < spp_; ++s) {
          if (sp_state_[base + s] ==
              static_cast<std::uint8_t>(SubpageState::kValid)) {
            blk.age_histogram_.remove(sp_wtime_[base + s]);
          }
        }
      }
    }
    PPSSD_DCHECK_MSG(pg.program_ops_ <
                         std::numeric_limits<std::uint8_t>::max(),
                     "page program-op counter overflow");
    const auto wt = static_cast<std::uint32_t>(now / 1'000'000);
    for (const SlotWrite& w : writes) {
      PPSSD_DCHECK(w.slot < spp_);
      const std::size_t i = base + w.slot;
      PPSSD_CHECK_MSG(sp_state_[i] ==
                          static_cast<std::uint8_t>(SubpageState::kFree),
                      "programming a non-free subpage (NAND write-once rule)");
      sp_state_[i] = static_cast<std::uint8_t>(SubpageState::kValid);
      sp_owner_[i] = static_cast<std::uint32_t>(w.lsn);
      sp_version_[i] = w.version;
      sp_wtime_[i] = wt;
      sp_programs_before_[i] = pre_ops;
      sp_neighbors_before_[i] = pg.neighbor_programs_;
    }
    pg.program_ops_ = static_cast<std::uint8_t>(pre_ops + 1);

    const auto n = static_cast<std::uint32_t>(writes.size());
    blk.valid_ += n;
    blk.sum_write_time_ms_ += static_cast<std::uint64_t>(wt) * n;
    if (pre_ops == 0) {
      blk.age_histogram_.add(wt, n);
    }

    // Wordline adjacency: programming page p disturbs pages p-1 and p+1
    // of the same block if they already hold data (Figure 1).
    if (p > 0 && blk.pages_[p - 1].program_ops_ > 0) {
      blk.pages_[p - 1].absorb_neighbor_program();
    }
    const auto next = static_cast<PageId>(p + 1);
    if (next < blk.page_count() && blk.pages_[next].program_ops_ > 0) {
      blk.pages_[next].absorb_neighbor_program();
    }

    const BlockStatic& bs = statics_[b];
    if (bs.mode == CellMode::kSlc) {
      ++counters_.slc_program_ops;
      counters_.slc_subpages_written += n;
    } else {
      ++counters_.mlc_program_ops;
      counters_.mlc_subpages_written += n;
    }
    if (pre_ops > 0) ++counters_.partial_program_ops;
    planes_[bs.plane].count_program();
    return pre_ops > 0;
  }

  /// Layer-by-layer program chain (checks, then per-slot stamping, then
  /// aggregate updates as separate passes), kept as the equivalence
  /// oracle for the fused program().
  bool program_reference(BlockId b, PageId p,
                         std::span<const SlotWrite> writes, SimTime now);

  /// In-place switch (IPS, arXiv 2409.14360): promote an SLC-mode cache
  /// page to a dense-mode destination by continuing the ISPP sequence on
  /// the cells instead of read-migrate-program. The destination page's
  /// resulting state is identical to program(dst_b, dst_p, writes, now) —
  /// the caller supplies the surviving slot writes — plus a sticky
  /// `reprogrammed` mark that the BER model prices as a retention/disturb
  /// penalty. The mark clears on erase.
  ///
  /// The source page must be in SLC frontier state: exactly one program
  /// since erase (a single-pulse SLC write, never partially programmed).
  /// Reprogramming from any other state is physically meaningless and is
  /// rejected by an always-on check, as is a non-SLC source or a non-dense
  /// destination. The caller invalidates the source slots itself (they
  /// are superseded data after the switch, exactly as after a migration).
  void reprogram(BlockId src_b, PageId src_p, BlockId dst_b, PageId dst_p,
                 std::span<const SlotWrite> writes, SimTime now) {
    PPSSD_DCHECK(src_b < blocks_.size());
    const Block& src = blocks_[src_b];
    PPSSD_DCHECK(src_p < src.page_count());
    PPSSD_CHECK_MSG(statics_[src_b].mode == CellMode::kSlc,
                    "reprogram source must be an SLC-mode page");
    PPSSD_CHECK_MSG(src.page(src_p).program_ops() == 1,
                    "reprogram source not in SLC frontier state (exactly one "
                    "program since erase required)");
    PPSSD_CHECK_MSG(statics_[dst_b].mode == CellMode::kMlc,
                    "reprogram destination must be a dense-mode page");
    program(dst_b, dst_p, writes, now);
    blocks_[dst_b].pages_[dst_p].reprogrammed_ = true;
    ++counters_.reprogram_ops;
    counters_.reprogrammed_subpages += writes.size();
  }

  /// Bulk first-program entry point for setup (Scheme prefill): programs
  /// the write frontier of `b` at sim time 0. Skips the partial-program
  /// branches and the forward-neighbour probe — a frontier fill can only
  /// disturb the page behind it. State produced is identical to
  /// program(b, p, writes, 0) on a free frontier page.
  void prefill_page(BlockId b, PageId p, std::span<const SlotWrite> writes);

  /// True if page (b, p) may accept another program operation (partial-
  /// program limit not yet reached and free subpage slots remain).
  [[nodiscard]] bool can_partial_program(BlockId b, PageId p) const;

  /// Fused invalidate: one slot lookup updates the state row, block
  /// aggregates, the age histogram and the observer in a single pass.
  void invalidate(BlockId b, PageId p, SubpageId s) {
    PPSSD_DCHECK(b < blocks_.size());
    Block& blk = blocks_[b];
    PPSSD_DCHECK(p < blk.page_count());
    PPSSD_DCHECK(s < spp_);
    const std::size_t i =
        slot_base_[b] + static_cast<std::size_t>(p) * spp_ + s;
    PPSSD_CHECK_MSG(sp_state_[i] ==
                        static_cast<std::uint8_t>(SubpageState::kValid),
                    "invalidating a subpage that is not valid");
    sp_state_[i] = static_cast<std::uint8_t>(SubpageState::kInvalid);
    const std::uint32_t wt = sp_wtime_[i];
    PPSSD_DCHECK(blk.valid_ > 0);
    --blk.valid_;
    ++blk.invalid_;
    blk.sum_write_time_ms_ -= wt;
    if (blk.pages_[p].program_ops_ == 1) {
      blk.age_histogram_.remove(wt);
    }
    if (observer_ != nullptr) {
      observer_->on_subpage_invalidated(b, blk.invalid_);
    }
  }

  /// Layer-by-layer invalidate chain, kept as the equivalence oracle for
  /// the fused invalidate().
  void invalidate_reference(BlockId b, PageId p, SubpageId s);

  /// Erase a block. All subpages must already be invalid or free — the
  /// caller (GC) is responsible for relocating valid data first.
  void erase(BlockId b, SimTime now);

  /// Count a read operation (timing handled by the service model).
  void count_read(BlockId b);

  /// Disturb snapshot of a stored subpage for the BER model.
  [[nodiscard]] DisturbSnapshot disturb_of(BlockId b, PageId p,
                                           SubpageId s) const {
    const Block& blk = blocks_[b];
    DisturbSnapshot snap;
    snap.mode = blk.mode();
    snap.pe_cycles = cfg_.wear.initial_pe_cycles + blk.erase_count();
    snap.in_page_disturbs = in_page_disturbs(b, p, s);
    snap.neighbor_disturbs = neighbor_disturbs(b, p, s);
    snap.reprogrammed = blk.pages_[p].reprogrammed_;
    return snap;
  }

  [[nodiscard]] const ArrayCounters& counters() const { return counters_; }

  /// Zero the aggregate operation counters (per-block wear is preserved).
  /// Used after warm-up so reports cover only the measured phase.
  void reset_counters() { counters_ = ArrayCounters{}; }

  /// Sum of erase counts over SLC-mode / MLC blocks (wear inspection).
  [[nodiscard]] std::uint64_t total_erases(CellMode mode) const;

  /// Register (or clear, with nullptr) the single block observer. The
  /// observer must outlive the array or unregister before destruction.
  void set_block_observer(BlockObserver* observer) { observer_ = observer; }

  /// Serialize the complete mutable array state (SoA rows, per-page and
  /// per-block counters, wear, histograms, operation counters) for the
  /// warm-start checkpoint. Geometry/config are not written — the restore
  /// target must be constructed from the same SsdConfig.
  void save(io::StateSink& sink) const;

  /// Inverse of save(). PPSSD_CHECKs that the checkpoint's shape matches
  /// this array's geometry; the caller validates checksum/version first.
  void restore(io::StateSource& src);

 private:
  SsdConfig cfg_;
  Geometry geom_;
  std::vector<Block> blocks_;
  std::vector<BlockStatic> statics_;
  std::vector<Plane> planes_;
  std::vector<Chip> chips_;
  ArrayCounters counters_;
  BlockObserver* observer_ = nullptr;

  // Structure-of-arrays subpage rows (DESIGN.md §14). Slot index =
  // slot_base_[b] + page * spp_ + slot; slot_base_ is precomputed per
  // block because pages-per-block differs between cell modes.
  std::uint32_t spp_ = 0;
  std::vector<std::size_t> slot_base_;
  std::vector<std::uint8_t> sp_state_;
  std::vector<std::uint32_t> sp_owner_;
  std::vector<std::uint32_t> sp_wtime_;
  std::vector<std::uint32_t> sp_version_;
  std::vector<std::uint8_t> sp_programs_before_;
  std::vector<std::uint16_t> sp_neighbors_before_;
};

}  // namespace ppssd::nand
