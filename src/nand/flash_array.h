// The flash array: owns every block and enforces NAND physics.
//
// This is the bottom layer of the simulator. It knows nothing about
// logical addresses or caching policy; the FTL and cache schemes above it
// decide *where* to program, the array enforces *how* programming behaves:
// write-once subpages, page-sequential first programs, the per-page
// partial-program limit, disturb propagation to wordline neighbours, and
// erase/wear accounting.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/config.h"
#include "common/types.h"
#include "nand/block.h"
#include "nand/chip.h"
#include "nand/disturb.h"
#include "nand/geometry.h"
#include "nand/plane.h"

namespace ppssd::nand {

/// Raw operation counters, split by region.
struct ArrayCounters {
  std::uint64_t slc_program_ops = 0;
  std::uint64_t mlc_program_ops = 0;
  std::uint64_t partial_program_ops = 0;
  std::uint64_t slc_subpages_written = 0;
  std::uint64_t mlc_subpages_written = 0;
  std::uint64_t slc_erases = 0;
  std::uint64_t mlc_erases = 0;
  std::uint64_t read_ops = 0;
};

/// Observer of block bookkeeping changes. The FTL's victim index hangs
/// off this so per-block scores stay incrementally maintained without the
/// array knowing anything about GC policy.
class BlockObserver {
 public:
  virtual ~BlockObserver() = default;
  /// One subpage of `b` went valid -> invalid; `invalid` is the block's
  /// new invalid-subpage count.
  virtual void on_subpage_invalidated(BlockId b, std::uint32_t invalid) = 0;
};

class FlashArray {
 public:
  explicit FlashArray(const SsdConfig& cfg);

  [[nodiscard]] const Geometry& geometry() const { return geom_; }
  [[nodiscard]] const SsdConfig& config() const { return cfg_; }

  [[nodiscard]] const Block& block(BlockId b) const { return blocks_[b]; }
  [[nodiscard]] Block& block(BlockId b) { return blocks_[b]; }

  [[nodiscard]] const Plane& plane(std::uint32_t p) const { return planes_[p]; }
  [[nodiscard]] Chip& chip(std::uint32_t c) { return chips_[c]; }
  [[nodiscard]] std::uint32_t chip_count() const {
    return static_cast<std::uint32_t>(chips_.size());
  }

  /// Apply one program operation to block `b`, page `p`, filling the given
  /// slots. Enforces the per-page partial-program limit and propagates
  /// neighbour disturb. Returns true if it was a partial program.
  bool program(BlockId b, PageId p, std::span<const SlotWrite> writes,
               SimTime now);

  /// True if page (b, p) may accept another program operation (partial-
  /// program limit not yet reached and free subpage slots remain).
  [[nodiscard]] bool can_partial_program(BlockId b, PageId p) const;

  void invalidate(BlockId b, PageId p, SubpageId s);

  /// Erase a block. All subpages must already be invalid or free — the
  /// caller (GC) is responsible for relocating valid data first.
  void erase(BlockId b, SimTime now);

  /// Count a read operation (timing handled by the service model).
  void count_read(BlockId b);

  /// Disturb snapshot of a stored subpage for the BER model.
  [[nodiscard]] DisturbSnapshot disturb_of(BlockId b, PageId p,
                                           SubpageId s) const {
    return snapshot_disturb(blocks_[b], p, s, cfg_.wear.initial_pe_cycles);
  }

  [[nodiscard]] const ArrayCounters& counters() const { return counters_; }

  /// Zero the aggregate operation counters (per-block wear is preserved).
  /// Used after warm-up so reports cover only the measured phase.
  void reset_counters() { counters_ = ArrayCounters{}; }

  /// Sum of erase counts over SLC-mode / MLC blocks (wear inspection).
  [[nodiscard]] std::uint64_t total_erases(CellMode mode) const;

  /// Register (or clear, with nullptr) the single block observer. The
  /// observer must outlive the array or unregister before destruction.
  void set_block_observer(BlockObserver* observer) { observer_ = observer; }

 private:
  SsdConfig cfg_;
  Geometry geom_;
  std::vector<Block> blocks_;
  std::vector<Plane> planes_;
  std::vector<Chip> chips_;
  ArrayCounters counters_;
  BlockObserver* observer_ = nullptr;
};

}  // namespace ppssd::nand
