#include "trace/writer.h"

namespace ppssd::trace {

MsrTraceWriter::MsrTraceWriter(std::ostream& out, std::string hostname,
                               std::uint32_t disk)
    : out_(&out), hostname_(std::move(hostname)), disk_(disk) {}

void MsrTraceWriter::write(const TraceRecord& rec) {
  // Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
  const std::uint64_t ticks = epoch_ticks_ + rec.arrival / 100;
  *out_ << ticks << ',' << hostname_ << ',' << disk_ << ','
        << (rec.op == OpType::kWrite ? "Write" : "Read") << ',' << rec.offset
        << ',' << rec.size << ",0\n";
  ++written_;
}

std::uint64_t MsrTraceWriter::write_all(TraceSource& src) {
  TraceRecord rec;
  std::uint64_t n = 0;
  while (src.next(rec)) {
    write(rec);
    ++n;
  }
  return n;
}

}  // namespace ppssd::trace
