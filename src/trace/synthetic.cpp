#include "trace/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/units.h"

namespace ppssd::trace {

namespace {
/// Fixed slot size of one hot object: large enough for any request the
/// size model can produce, so objects never overlap.
constexpr std::uint64_t kHotObjectStride = 64 * kKiB;
/// Largest request the size model produces (subpages, 256 KiB): VDI-style
/// traces (lun2) need a long tail of large sequential writes to reach
/// their Table-3 mean sizes.
constexpr std::uint32_t kMaxSubpages = 64;
/// Estimated uniqueness of uniform cold writes (some collide).
constexpr double kColdUniqueness = 0.8;

std::uint64_t derive_hot_objects(const TraceProfile& p, double scale) {
  if (p.hot_objects > 0) return p.hot_objects;
  // Size the hot set from the *replayed* request count so the per-object
  // rewrite intensity (and thus the hot-address ratio) is invariant under
  // trace_scale — a scaled-down replay is a statistically faithful slice.
  const double writes =
      static_cast<double>(p.requests) * scale * p.write_ratio;
  const double hot_writes = writes * p.hot_request_fraction;
  const double cold_writes = writes - hot_writes;
  const double mean_sp = std::max(1.0, p.mean_write_kb / 4.0);
  const double cold_unique = cold_writes * mean_sp * kColdUniqueness;
  const double h = std::clamp(p.hot_write, 0.01, 0.95);
  double objects = h / (1.0 - h) * cold_unique / mean_sp;
  // Keep the zipf tail above Table 3's >= 4-write hotness threshold:
  // with alpha ~0.9 the tail rank receives ~1/3 of the mean, so ~16
  // writes per object on average keeps most objects hot.
  objects = std::min(objects, hot_writes / 16.0);
  return std::max<std::uint64_t>(64, static_cast<std::uint64_t>(objects));
}
}  // namespace

SyntheticWorkload::SyntheticWorkload(const TraceProfile& profile,
                                     std::uint64_t logical_bytes,
                                     double scale)
    : profile_(profile),
      footprint_bytes_(static_cast<std::uint64_t>(
          static_cast<double>(logical_bytes) * profile.footprint_fraction)),
      hot_objects_(derive_hot_objects(profile, scale)),
      rng_(profile.seed),
      zipf_([&] {
        // Hot region must leave at least half the footprint cold.
        const std::uint64_t max_objects =
            std::max<std::uint64_t>(1, footprint_bytes_ / 2 / kHotObjectStride);
        hot_objects_ = std::min(hot_objects_, max_objects);
        return ZipfSampler(hot_objects_, profile.zipf_alpha);
      }()),
      total_(std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(
                 static_cast<double>(profile.requests) * scale))) {
  PPSSD_CHECK(scale > 0.0 && scale <= 1.0);
  PPSSD_CHECK(footprint_bytes_ >= 4 * kHotObjectStride);
  hot_region_bytes_ = hot_objects_ * kHotObjectStride;
  cold_region_bytes_ = footprint_bytes_ - hot_region_bytes_;

  // Mean of the >8K bucket implied by the overall mean write size.
  const auto& b = profile_.write_sizes;
  const double p3 = std::max(1e-6, 1.0 - b.le_4k - b.le_8k);
  const double m3_kb =
      (profile_.mean_write_kb - 4.0 * b.le_4k - 8.0 * b.le_8k) / p3;
  mean_gt8k_subpages_ = std::clamp(m3_kb / 4.0, 3.0, 64.0);
}

std::uint32_t SyntheticWorkload::sample_size_bytes(Rng& rng) const {
  const auto& b = profile_.write_sizes;
  const double u = rng.next_double();
  if (u < b.le_4k) return static_cast<std::uint32_t>(4 * kKiB);
  if (u < b.le_4k + b.le_8k) return static_cast<std::uint32_t>(8 * kKiB);
  // > 8 KiB tail: 3 + exponential, capped, so the bucket mean matches the
  // profile's overall mean write size.
  const double extra = rng.exponential(
      std::max(0.25, mean_gt8k_subpages_ - 3.0));
  const auto sp = std::min<std::uint32_t>(
      kMaxSubpages, 3 + static_cast<std::uint32_t>(extra));
  return static_cast<std::uint32_t>(sp * kSubpageBytes);
}

std::uint32_t SyntheticWorkload::object_size_bytes(std::uint64_t object) const {
  // A hot object is updated with a consistent request size (a DB page, a
  // log record): derive it deterministically from the object id so every
  // rewrite matches the original extent.
  std::uint64_t h = profile_.seed * 0x9e3779b97f4a7c15ULL + object;
  Rng rng(h);
  // Objects are bounded by their slot so rewrites never overlap
  // neighbours; the long large-request tail belongs to the cold stream.
  return std::min<std::uint32_t>(sample_size_bytes(rng),
                                 static_cast<std::uint32_t>(kHotObjectStride));
}

bool SyntheticWorkload::next(TraceRecord& out) {
  if (produced_ >= total_) return false;
  ++produced_;

  clock_ += static_cast<SimTime>(
      rng_.exponential(profile_.mean_interarrival_us * 1000.0));
  out.arrival = clock_;
  out.op = rng_.chance(profile_.write_ratio) ? OpType::kWrite : OpType::kRead;

  const bool hot = rng_.chance(profile_.hot_request_fraction);
  if (hot) {
    const std::uint64_t object = zipf_.sample(rng_);
    out.offset = object * kHotObjectStride;
    out.size = object_size_bytes(object);
    return true;
  }
  out.size = sample_size_bytes(rng_);
  if (out.op == OpType::kWrite || rng_.chance(0.7)) {
    const std::uint64_t slots =
        (cold_region_bytes_ - out.size) / kSubpageBytes;
    out.offset =
        hot_region_bytes_ + rng_.next_below(slots + 1) * kSubpageBytes;
  } else {
    const std::uint64_t slots = (footprint_bytes_ - out.size) / kSubpageBytes;
    out.offset = rng_.next_below(slots + 1) * kSubpageBytes;
  }
  return true;
}

std::size_t SyntheticWorkload::next_batch(std::span<TraceRecord> out) {
  // `next` devirtualizes here (final class), so the whole batch generates
  // in one call with the RNG state hot.
  std::size_t n = 0;
  while (n < out.size() && next(out[n])) ++n;
  return n;
}

void SyntheticWorkload::reset() {
  rng_ = Rng(profile_.seed);
  produced_ = 0;
  clock_ = 0;
}

}  // namespace ppssd::trace
