#include "trace/record.h"

namespace ppssd::trace {

std::vector<TraceRecord> collect(TraceSource& src) {
  std::vector<TraceRecord> out;
  TraceRecord rec;
  while (src.next(rec)) {
    out.push_back(rec);
  }
  return out;
}

}  // namespace ppssd::trace
