#include "trace/profiles.h"

#include "common/check.h"

namespace ppssd::trace {

namespace {

TraceProfile make(std::string name, std::uint64_t requests,
                  double write_ratio, double mean_write_kb, double hot_write,
                  SizeBuckets buckets, double hot_request_fraction,
                  std::uint64_t seed) {
  TraceProfile p;
  p.name = std::move(name);
  p.requests = requests;
  p.write_ratio = write_ratio;
  p.mean_write_kb = mean_write_kb;
  p.hot_write = hot_write;
  p.write_sizes = buckets;
  p.hot_request_fraction = hot_request_fraction;
  p.seed = seed;
  return p;
}

std::vector<TraceProfile> build_profiles() {
  // Request counts, write ratios, mean write sizes, and hot-write ratios
  // from Table 3; update-size buckets from Table 1. hot_request_fraction
  // is tuned so the measured hot-address ratio lands near Table 3.
  std::vector<TraceProfile> v;
  v.push_back(make("ts0", 1'801'734, 0.824, 8.0, 0.505,
                   SizeBuckets{0.698, 0.179}, 0.75, 1001));
  v.push_back(make("wdev0", 1'143'261, 0.799, 8.2, 0.582,
                   SizeBuckets{0.732, 0.068}, 0.80, 1002));
  v.push_back(make("lun1", 1'073'405, 0.731, 7.6, 0.100,
                   SizeBuckets{0.852, 0.073}, 0.45, 1003));
  v.push_back(make("usr0", 2'237'889, 0.596, 10.3, 0.365,
                   SizeBuckets{0.663, 0.121}, 0.70, 1004));
  v.push_back(make("lun2", 1'758'887, 0.193, 9.7, 0.085,
                   SizeBuckets{0.926, 0.025}, 0.40, 1005));
  v.push_back(make("ads", 1'532'120, 0.095, 7.0, 0.183,
                   SizeBuckets{0.745, 0.141}, 0.55, 1006));
  return v;
}

}  // namespace

const std::vector<TraceProfile>& paper_profiles() {
  static const std::vector<TraceProfile> profiles = build_profiles();
  return profiles;
}

const TraceProfile& profile_by_name(std::string_view name) {
  for (const auto& p : paper_profiles()) {
    if (p.name == name) return p;
  }
  PPSSD_CHECK_MSG(false, "unknown trace profile name");
  __builtin_unreachable();
}

}  // namespace ppssd::trace
