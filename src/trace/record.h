// Block-I/O trace records and streaming sources.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"

namespace ppssd::trace {

struct TraceRecord {
  SimTime arrival = 0;          // ns since trace start
  OpType op = OpType::kRead;
  std::uint64_t offset = 0;     // bytes
  std::uint32_t size = 0;       // bytes

  constexpr bool operator==(const TraceRecord&) const = default;
};

/// Pull-based record stream: generators and parsers implement this so the
/// replayer never has to materialise multi-million-request traces.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Produce the next record; returns false at end of stream.
  virtual bool next(TraceRecord& out) = 0;

  /// Fill `out` with up to out.size() records; returns the count
  /// produced. A short count means end of stream. The record sequence is
  /// identical to repeated next() calls regardless of batch size — the
  /// batch path exists so the replay loop pays one virtual dispatch per
  /// ~256 records instead of per record; concrete sources override it
  /// with a devirtualized decode loop.
  virtual std::size_t next_batch(std::span<TraceRecord> out) {
    std::size_t n = 0;
    while (n < out.size() && next(out[n])) ++n;
    return n;
  }

  /// Rewind to the beginning (regenerates identically for synthetic
  /// sources).
  virtual void reset() = 0;

  /// Total records this source will produce, if known (0 = unknown).
  [[nodiscard]] virtual std::uint64_t expected_records() const { return 0; }
};

/// In-memory source over a record vector.
class VectorTraceSource final : public TraceSource {
 public:
  explicit VectorTraceSource(std::vector<TraceRecord> records)
      : records_(std::move(records)) {}

  bool next(TraceRecord& out) override {
    if (pos_ >= records_.size()) return false;
    out = records_[pos_++];
    return true;
  }

  std::size_t next_batch(std::span<TraceRecord> out) override {
    const std::size_t n = std::min(out.size(), records_.size() - pos_);
    std::copy_n(records_.begin() + static_cast<std::ptrdiff_t>(pos_), n,
                out.begin());
    pos_ += n;
    return n;
  }

  void reset() override { pos_ = 0; }

  [[nodiscard]] std::uint64_t expected_records() const override {
    return records_.size();
  }

  [[nodiscard]] std::span<const TraceRecord> records() const {
    return records_;
  }

 private:
  std::vector<TraceRecord> records_;
  std::size_t pos_ = 0;
};

/// Collect an entire source into a vector (tests, small traces).
[[nodiscard]] std::vector<TraceRecord> collect(TraceSource& src);

}  // namespace ppssd::trace
