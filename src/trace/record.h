// Block-I/O trace records and streaming sources.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"

namespace ppssd::trace {

struct TraceRecord {
  SimTime arrival = 0;          // ns since trace start
  OpType op = OpType::kRead;
  std::uint64_t offset = 0;     // bytes
  std::uint32_t size = 0;       // bytes

  constexpr bool operator==(const TraceRecord&) const = default;
};

/// Pull-based record stream: generators and parsers implement this so the
/// replayer never has to materialise multi-million-request traces.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Produce the next record; returns false at end of stream.
  virtual bool next(TraceRecord& out) = 0;

  /// Rewind to the beginning (regenerates identically for synthetic
  /// sources).
  virtual void reset() = 0;

  /// Total records this source will produce, if known (0 = unknown).
  [[nodiscard]] virtual std::uint64_t expected_records() const { return 0; }
};

/// In-memory source over a record vector.
class VectorTraceSource final : public TraceSource {
 public:
  explicit VectorTraceSource(std::vector<TraceRecord> records)
      : records_(std::move(records)) {}

  bool next(TraceRecord& out) override {
    if (pos_ >= records_.size()) return false;
    out = records_[pos_++];
    return true;
  }

  void reset() override { pos_ = 0; }

  [[nodiscard]] std::uint64_t expected_records() const override {
    return records_.size();
  }

  [[nodiscard]] std::span<const TraceRecord> records() const {
    return records_;
  }

 private:
  std::vector<TraceRecord> records_;
  std::size_t pos_ = 0;
};

/// Collect an entire source into a vector (tests, small traces).
[[nodiscard]] std::vector<TraceRecord> collect(TraceSource& src);

}  // namespace ppssd::trace
