// Trace characterisation: reproduces the statistics of Tables 1 and 3.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "trace/record.h"

namespace ppssd::trace {

struct TraceStats {
  std::uint64_t requests = 0;
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  double write_bytes_sum = 0.0;

  // Updated requests (writes whose start address was written before),
  // bucketed by size as in Table 1.
  std::uint64_t updates_le_4k = 0;
  std::uint64_t updates_le_8k = 0;
  std::uint64_t updates_gt_8k = 0;

  [[nodiscard]] double write_ratio() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(writes) /
                               static_cast<double>(requests);
  }
  [[nodiscard]] double mean_write_kb() const {
    return writes == 0 ? 0.0 : write_bytes_sum / 1024.0 /
                                   static_cast<double>(writes);
  }
  [[nodiscard]] std::uint64_t updates() const {
    return updates_le_4k + updates_le_8k + updates_gt_8k;
  }
  [[nodiscard]] double update_frac_le_4k() const {
    return updates() == 0 ? 0.0
                          : static_cast<double>(updates_le_4k) / updates();
  }
  [[nodiscard]] double update_frac_le_8k() const {
    return updates() == 0 ? 0.0
                          : static_cast<double>(updates_le_8k) / updates();
  }
  [[nodiscard]] double update_frac_gt_8k() const {
    return updates() == 0 ? 0.0
                          : static_cast<double>(updates_gt_8k) / updates();
  }

  /// Table 3 "Hot write": fraction of written 4K addresses with >= 4
  /// write requests.
  double hot_write_fraction = 0.0;
};

/// Single-pass analysis of a trace stream (consumes the source).
class TraceAnalyzer {
 public:
  void add(const TraceRecord& rec);

  /// Finalise and return the statistics.
  [[nodiscard]] TraceStats finish() const;

 private:
  TraceStats stats_;
  // Write count per 4K-aligned start address (saturating at 255).
  std::unordered_map<std::uint64_t, std::uint8_t> write_counts_;
};

/// Convenience: run a whole source through the analyzer.
[[nodiscard]] TraceStats analyze(TraceSource& src);

}  // namespace ppssd::trace
