#include "trace/msr_parser.h"

#include <array>
#include <charconv>
#include <cstring>
#include <stdexcept>

namespace ppssd::trace {

namespace {

bool equals_ignore_case(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const char ca = a[i] >= 'A' && a[i] <= 'Z' ? a[i] + 32 : a[i];
    const char cb = b[i] >= 'A' && b[i] <= 'Z' ? b[i] + 32 : b[i];
    if (ca != cb) return false;
  }
  return true;
}

template <typename T>
bool parse_uint(std::string_view field, T& out) {
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), out);
  return ec == std::errc{} && ptr == field.data() + field.size();
}

}  // namespace

MsrTraceParser::MsrTraceParser(const std::string& path)
    : path_(path), in_(path, std::ios::binary), buf_(kChunkBytes) {
  if (!in_) {
    throw std::runtime_error("cannot open trace file: " + path);
  }
}

bool MsrTraceParser::parse_line(std::string_view line, TraceRecord& out,
                                std::uint64_t* raw_timestamp) {
  // Split into at most 7 comma-separated fields.
  std::array<std::string_view, 7> fields;
  std::size_t nfields = 0;
  std::size_t start = 0;
  while (nfields < fields.size()) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      fields[nfields++] = line.substr(start);
      break;
    }
    fields[nfields++] = line.substr(start, comma - start);
    start = comma + 1;
  }
  if (nfields < 6) return false;

  std::uint64_t timestamp = 0;
  std::uint64_t offset = 0;
  std::uint32_t size = 0;
  if (!parse_uint(fields[0], timestamp)) return false;
  if (!parse_uint(fields[4], offset)) return false;
  if (!parse_uint(fields[5], size) || size == 0) return false;

  if (equals_ignore_case(fields[3], "read") ||
      equals_ignore_case(fields[3], "r")) {
    out.op = OpType::kRead;
  } else if (equals_ignore_case(fields[3], "write") ||
             equals_ignore_case(fields[3], "w")) {
    out.op = OpType::kWrite;
  } else {
    return false;
  }
  out.offset = offset;
  out.size = size;
  if (raw_timestamp) *raw_timestamp = timestamp;
  return true;
}

bool MsrTraceParser::next_line(std::string_view& line) {
  if (carry_returned_) {
    carry_.clear();
    carry_returned_ = false;
  }
  for (;;) {
    if (pos_ < len_) {
      const char* base = buf_.data() + pos_;
      const auto* nl = static_cast<const char*>(
          std::memchr(base, '\n', len_ - pos_));
      if (nl != nullptr) {
        const auto n = static_cast<std::size_t>(nl - base);
        pos_ += n + 1;
        if (carry_.empty()) {
          line = std::string_view(base, n);
        } else {
          carry_.append(base, n);
          line = carry_;
          carry_returned_ = true;
        }
        return true;
      }
      // No newline in the rest of the chunk: stash it and refill.
      carry_.append(base, len_ - pos_);
      pos_ = len_;
    }
    if (eof_) {
      if (carry_.empty()) return false;
      line = carry_;  // final line without a trailing newline
      carry_returned_ = true;
      return true;
    }
    in_.read(buf_.data(), static_cast<std::streamsize>(buf_.size()));
    len_ = static_cast<std::size_t>(in_.gcount());
    pos_ = 0;
    if (len_ < buf_.size()) eof_ = true;
  }
}

bool MsrTraceParser::next(TraceRecord& out) {
  std::string_view line;
  while (next_line(line)) {
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty() || line[0] == '#') continue;
    std::uint64_t raw = 0;
    if (!parse_line(line, out, &raw)) {
      ++skipped_;
      continue;
    }
    if (!have_first_) {
      first_timestamp_ = raw;
      have_first_ = true;
    }
    // FILETIME ticks are 100 ns; rebase to trace start.
    out.arrival = (raw - first_timestamp_) * 100;
    return true;
  }
  return false;
}

std::size_t MsrTraceParser::next_batch(std::span<TraceRecord> out) {
  // `next` devirtualizes here (final class): one call decodes the whole
  // batch through the chunked line splitter.
  std::size_t n = 0;
  while (n < out.size() && next(out[n])) ++n;
  return n;
}

void MsrTraceParser::reset() {
  in_.close();
  in_.open(path_, std::ios::binary);
  if (!in_) {
    throw std::runtime_error("cannot reopen trace file: " + path_);
  }
  pos_ = 0;
  len_ = 0;
  carry_.clear();
  carry_returned_ = false;
  eof_ = false;
  have_first_ = false;
  skipped_ = 0;
}

}  // namespace ppssd::trace
