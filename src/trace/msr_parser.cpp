#include "trace/msr_parser.h"

#include <array>
#include <charconv>
#include <stdexcept>

namespace ppssd::trace {

namespace {

bool equals_ignore_case(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const char ca = a[i] >= 'A' && a[i] <= 'Z' ? a[i] + 32 : a[i];
    const char cb = b[i] >= 'A' && b[i] <= 'Z' ? b[i] + 32 : b[i];
    if (ca != cb) return false;
  }
  return true;
}

template <typename T>
bool parse_uint(std::string_view field, T& out) {
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), out);
  return ec == std::errc{} && ptr == field.data() + field.size();
}

}  // namespace

MsrTraceParser::MsrTraceParser(const std::string& path)
    : path_(path), in_(path) {
  if (!in_) {
    throw std::runtime_error("cannot open trace file: " + path);
  }
}

bool MsrTraceParser::parse_line(const std::string& line, TraceRecord& out,
                                std::uint64_t* raw_timestamp) {
  // Split into at most 7 comma-separated fields.
  std::array<std::string_view, 7> fields;
  std::size_t nfields = 0;
  std::size_t start = 0;
  const std::string_view sv(line);
  while (nfields < fields.size()) {
    const std::size_t comma = sv.find(',', start);
    if (comma == std::string_view::npos) {
      fields[nfields++] = sv.substr(start);
      break;
    }
    fields[nfields++] = sv.substr(start, comma - start);
    start = comma + 1;
  }
  if (nfields < 6) return false;

  std::uint64_t timestamp = 0;
  std::uint64_t offset = 0;
  std::uint32_t size = 0;
  if (!parse_uint(fields[0], timestamp)) return false;
  if (!parse_uint(fields[4], offset)) return false;
  if (!parse_uint(fields[5], size) || size == 0) return false;

  if (equals_ignore_case(fields[3], "read") ||
      equals_ignore_case(fields[3], "r")) {
    out.op = OpType::kRead;
  } else if (equals_ignore_case(fields[3], "write") ||
             equals_ignore_case(fields[3], "w")) {
    out.op = OpType::kWrite;
  } else {
    return false;
  }
  out.offset = offset;
  out.size = size;
  if (raw_timestamp) *raw_timestamp = timestamp;
  return true;
}

bool MsrTraceParser::next(TraceRecord& out) {
  std::string line;
  while (std::getline(in_, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::uint64_t raw = 0;
    if (!parse_line(line, out, &raw)) {
      ++skipped_;
      continue;
    }
    if (!have_first_) {
      first_timestamp_ = raw;
      have_first_ = true;
    }
    // FILETIME ticks are 100 ns; rebase to trace start.
    out.arrival = (raw - first_timestamp_) * 100;
    return true;
  }
  return false;
}

void MsrTraceParser::reset() {
  in_.close();
  in_.open(path_);
  if (!in_) {
    throw std::runtime_error("cannot reopen trace file: " + path_);
  }
  have_first_ = false;
  skipped_ = 0;
}

}  // namespace ppssd::trace
