#include "trace/trace_stats.h"

#include "common/units.h"

namespace ppssd::trace {

void TraceAnalyzer::add(const TraceRecord& rec) {
  ++stats_.requests;
  if (rec.op == OpType::kRead) {
    ++stats_.reads;
    return;
  }
  ++stats_.writes;
  stats_.write_bytes_sum += static_cast<double>(rec.size);

  const std::uint64_t addr = rec.offset / kSubpageBytes;
  auto [it, inserted] = write_counts_.try_emplace(addr, 0);
  if (!inserted) {
    // Update (re-write of a previously written address): Table 1 buckets.
    if (rec.size <= 4 * kKiB) {
      ++stats_.updates_le_4k;
    } else if (rec.size <= 8 * kKiB) {
      ++stats_.updates_le_8k;
    } else {
      ++stats_.updates_gt_8k;
    }
  }
  if (it->second < 255) ++it->second;
}

TraceStats TraceAnalyzer::finish() const {
  TraceStats out = stats_;
  std::uint64_t hot = 0;
  for (const auto& [addr, count] : write_counts_) {
    if (count >= 4) ++hot;
  }
  out.hot_write_fraction =
      write_counts_.empty()
          ? 0.0
          : static_cast<double>(hot) / static_cast<double>(write_counts_.size());
  return out;
}

TraceStats analyze(TraceSource& src) {
  TraceAnalyzer analyzer;
  TraceRecord rec;
  while (src.next(rec)) {
    analyzer.add(rec);
  }
  return analyzer.finish();
}

}  // namespace ppssd::trace
