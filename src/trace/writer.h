// MSR-CSV trace export.
//
// Writes any TraceSource back out in the MSR Cambridge line format the
// parser consumes, so synthetic workloads can be exported once and
// replayed elsewhere (including by the original SSDsim tooling), and
// real traces can be filtered/rescaled through this library.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "trace/record.h"

namespace ppssd::trace {

class MsrTraceWriter {
 public:
  /// Writes to `out`. `hostname` and `disk` fill the metadata columns.
  explicit MsrTraceWriter(std::ostream& out, std::string hostname = "ppssd",
                          std::uint32_t disk = 0);

  /// Append one record. Arrivals are converted from ns to FILETIME ticks
  /// (100 ns) on top of `epoch_ticks`.
  void write(const TraceRecord& rec);

  /// Drain an entire source; returns the number of records written.
  std::uint64_t write_all(TraceSource& src);

  [[nodiscard]] std::uint64_t records_written() const { return written_; }

  /// Base timestamp (FILETIME ticks) added to every arrival.
  void set_epoch_ticks(std::uint64_t ticks) { epoch_ticks_ = ticks; }

 private:
  std::ostream* out_;
  std::string hostname_;
  std::uint32_t disk_;
  std::uint64_t epoch_ticks_ = 128166372000000000ull;  // arbitrary FILETIME
  std::uint64_t written_ = 0;
};

}  // namespace ppssd::trace
