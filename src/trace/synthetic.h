// Synthetic workload generation calibrated to the paper's trace tables.
//
// The six evaluation traces (ts0, wdev0, lun1, usr0, lun2, ads) are not
// redistributable, but the paper's results depend on them only through
// aggregate statistics: request count, write ratio, and mean write size
// (Table 3), the hot-address fraction (Table 3's "Hot write"), and the
// update-size bucket distribution (Table 1). SyntheticWorkload reproduces
// those statistics with a seeded two-population address model:
//
//  * a small set of hot "objects" (fixed-base extents re-written many
//    times, Zipf-weighted) — these drive the update traffic whose size
//    distribution Table 1 reports;
//  * a wide cold region written (mostly) once, uniformly.
//
// Reads draw from the same populations, so cache hits and MLC reads both
// occur. Arrivals are a Poisson process at the profile's mean rate.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "trace/record.h"

namespace ppssd::trace {

struct SizeBuckets {
  double le_4k = 0.7;    // P(size <= 4 KiB)     (Table 1, col 1)
  double le_8k = 0.15;   // P(4 KiB < size <= 8 KiB)
  // remainder: P(size > 8 KiB)
};

struct TraceProfile {
  std::string name;
  std::uint64_t requests = 1'000'000;
  double write_ratio = 0.6;        // Table 3: Write R
  double mean_write_kb = 8.0;      // Table 3: Write SZ
  double hot_write = 0.4;          // Table 3: Hot write (addresses >= 4 reqs)
  SizeBuckets write_sizes;         // Table 1 buckets
  /// Fraction of write requests addressed at the hot-object population.
  double hot_request_fraction = 0.6;
  /// Number of distinct hot objects (0 = derive from hot_write).
  std::uint64_t hot_objects = 0;
  /// Zipf skew over hot objects.
  double zipf_alpha = 0.9;
  /// Fraction of the device's logical space the trace touches. High by
  /// default: the paper replays week-long server traces against an aged
  /// drive, i.e. most of the logical space is live.
  double footprint_fraction = 0.95;
  /// Mean arrival gap (Poisson process). Sized so a write-heavy trace
  /// loads the scaled device at moderate utilisation — queueing happens
  /// (GC stalls are visible) without saturating.
  double mean_interarrival_us = 400.0;
  std::uint64_t seed = 42;
};

class SyntheticWorkload final : public TraceSource {
 public:
  /// `logical_bytes` is the device's logical capacity; the address space
  /// is sized as footprint_fraction of it. `scale` in (0,1] shortens the
  /// trace proportionally (statistics are scale-invariant by design).
  SyntheticWorkload(const TraceProfile& profile, std::uint64_t logical_bytes,
                    double scale = 1.0);

  bool next(TraceRecord& out) override;
  /// Batched decode: identical stream to repeated next() (same RNG
  /// draws), but the generation loop is devirtualized.
  std::size_t next_batch(std::span<TraceRecord> out) override;
  void reset() override;
  [[nodiscard]] std::uint64_t expected_records() const override {
    return total_;
  }

  [[nodiscard]] const TraceProfile& profile() const { return profile_; }
  [[nodiscard]] std::uint64_t hot_object_count() const {
    return hot_objects_;
  }

  /// Sample a request size in bytes from the profile's bucket model
  /// (exposed for tests).
  std::uint32_t sample_size_bytes(Rng& rng) const;

  /// Fixed request size of a hot object (deterministic in object id).
  [[nodiscard]] std::uint32_t object_size_bytes(std::uint64_t object) const;

 private:

  TraceProfile profile_;
  std::uint64_t footprint_bytes_;
  std::uint64_t hot_objects_;
  std::uint64_t hot_region_bytes_;
  std::uint64_t cold_region_bytes_;
  double mean_gt8k_subpages_;
  Rng rng_;
  ZipfSampler zipf_;
  std::uint64_t produced_ = 0;
  std::uint64_t total_;
  SimTime clock_ = 0;
};

}  // namespace ppssd::trace
