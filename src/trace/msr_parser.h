// Parser for MSR-Cambridge-format block I/O traces [20].
//
// Line format (CSV):
//   Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
// with Timestamp in Windows FILETIME units (100 ns ticks), Type either
// "Read"/"Write" (any case), Offset and Size in bytes. The SNIA "ads"
// production-server traces and the VDI LUN traces use the same layout, so
// one parser covers all six paper traces when the real files are present;
// the synthetic profiles (synthetic.h) stand in when they are not.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>

#include "trace/record.h"

namespace ppssd::trace {

class MsrTraceParser final : public TraceSource {
 public:
  /// Opens the file; throws std::runtime_error when it cannot be read.
  explicit MsrTraceParser(const std::string& path);

  bool next(TraceRecord& out) override;
  void reset() override;

  /// Lines skipped because they failed to parse.
  [[nodiscard]] std::uint64_t skipped_lines() const { return skipped_; }

  /// Parse one CSV line; returns false if malformed. Exposed for tests.
  static bool parse_line(const std::string& line, TraceRecord& out,
                         std::uint64_t* raw_timestamp);

 private:
  std::string path_;
  std::ifstream in_;
  std::uint64_t first_timestamp_ = 0;
  bool have_first_ = false;
  std::uint64_t skipped_ = 0;
};

}  // namespace ppssd::trace
