// Parser for MSR-Cambridge-format block I/O traces [20].
//
// Line format (CSV):
//   Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
// with Timestamp in Windows FILETIME units (100 ns ticks), Type either
// "Read"/"Write" (any case), Offset and Size in bytes. The SNIA "ads"
// production-server traces and the VDI LUN traces use the same layout, so
// one parser covers all six paper traces when the real files are present;
// the synthetic profiles (synthetic.h) stand in when they are not.
//
// I/O strategy: the file is read in 256 KiB chunks and split on '\n'
// in-place, so steady-state parsing touches each byte once and performs
// no per-line allocation (a line is copied only when it straddles a chunk
// boundary).
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "trace/record.h"

namespace ppssd::trace {

class MsrTraceParser final : public TraceSource {
 public:
  /// Opens the file; throws std::runtime_error when it cannot be read.
  explicit MsrTraceParser(const std::string& path);

  bool next(TraceRecord& out) override;
  /// Batched decode: identical stream to repeated next(); the chunked
  /// line splitter runs devirtualized for the whole batch.
  std::size_t next_batch(std::span<TraceRecord> out) override;
  void reset() override;

  /// Lines skipped because they failed to parse.
  [[nodiscard]] std::uint64_t skipped_lines() const { return skipped_; }

  /// Parse one CSV line; returns false if malformed. Exposed for tests.
  static bool parse_line(std::string_view line, TraceRecord& out,
                         std::uint64_t* raw_timestamp);

 private:
  static constexpr std::size_t kChunkBytes = 256 * 1024;

  /// Yield the next newline-delimited line (without the '\n'); false at
  /// EOF. The view is valid until the following next_line()/reset() call.
  bool next_line(std::string_view& line);

  std::string path_;
  std::ifstream in_;
  std::vector<char> buf_;
  std::size_t pos_ = 0;  // cursor into buf_[0, len_)
  std::size_t len_ = 0;  // bytes currently buffered
  std::string carry_;    // prefix of a line that straddles chunks
  bool carry_returned_ = false;
  bool eof_ = false;
  std::uint64_t first_timestamp_ = 0;
  bool have_first_ = false;
  std::uint64_t skipped_ = 0;
};

}  // namespace ppssd::trace
