// The six evaluation-trace profiles (Tables 1 and 3 of the paper).
#pragma once

#include <string_view>
#include <vector>

#include "trace/synthetic.h"

namespace ppssd::trace {

/// All six paper profiles in Table 3 order (descending write ratio):
/// ts0, wdev0, lun1, usr0, lun2, ads.
[[nodiscard]] const std::vector<TraceProfile>& paper_profiles();

/// Look up a profile by name; aborts on unknown names.
[[nodiscard]] const TraceProfile& profile_by_name(std::string_view name);

}  // namespace ppssd::trace
