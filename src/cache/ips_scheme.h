// IPS: In-place Switch — reprogramming-based SLC cache promotion
// (arXiv 2409.14360).
//
// Host placement is Baseline-style: every write consumes fresh SLC pages
// in Work blocks, never partial programming, so each cached page stays in
// SLC *frontier state* (exactly one program since erase). That is the
// precondition for the scheme's point: when GC drains the cache, a victim
// page's cells are converted to dense mode by continuing the ISPP pulse
// sequence in place — no page read, no channel transfer, no ECC
// round-trip — instead of the read-migrate-program eviction the other
// schemes pay. The simulator models the conversion as a slot-preserving
// rewrite into a freshly allocated dense page (the mapping layer's view of
// "the cells now hold dense data") priced as a single kReprogram array op,
// with the destination page carrying a sticky BER penalty for the wider
// threshold-voltage distributions reprogramming leaves behind.
//
// `use_reprogram = false` degrades the promotion into the conventional
// read-migrate-program sequence over the *same* slots — the reference
// oracle the equivalence tests lock the reprogram accounting against.
#pragma once

#include "cache/scheme.h"
#include "common/state_io.h"

namespace ppssd::cache {

class IpsScheme final : public Scheme {
 public:
  explicit IpsScheme(const SsdConfig& cfg) : Scheme(cfg) {}

  [[nodiscard]] const char* name() const override { return "IPS"; }

  struct Options {
    /// false -> promote by read-migrate-program over the same slots (the
    /// equivalence oracle; state-identical, timing differs).
    bool use_reprogram = true;

    /// Registry option-bag form (key rpg, value "0"/"1").
    [[nodiscard]] SchemeOptions to_scheme_options() const;
    [[nodiscard]] static Options from_scheme_options(
        const SchemeOptions& opts);
  };
  void set_options(const Options& opts) { opts_ = opts; }
  [[nodiscard]] const Options& options() const { return opts_; }

  /// Promotion accounting (test/diagnostic use).
  [[nodiscard]] std::uint64_t reprogrammed_pages() const {
    return reprogrammed_pages_;
  }
  [[nodiscard]] std::uint64_t reprogrammed_subpages() const {
    return reprogrammed_subpages_;
  }
  /// Subpages promoted via the defensive read-migrate fallback (a victim
  /// page not in frontier state; cannot happen with IPS placement).
  [[nodiscard]] std::uint64_t fallback_subpages() const {
    return fallback_subpages_;
  }

  /// Base entries plus the cumulative promotion accounting above.
  void inspect(telemetry::introspect::StateSink& sink) const override {
    Scheme::inspect(sink);
    sink.value("reprogrammed_pages", reprogrammed_pages_);
    sink.value("reprogrammed_subpages", reprogrammed_subpages_);
    sink.value("fallback_subpages", fallback_subpages_);
  }

 protected:
  void place_write(Lsn lsn, std::uint32_t count, SimTime now,
                   std::vector<PhysOp>& ops) override;
  void relocate_slc_page(BlockId victim, PageId page, SimTime now,
                         std::vector<PhysOp>& ops) override;
  [[nodiscard]] bool relocation_reads_source() const override {
    return !opts_.use_reprogram;
  }
  [[nodiscard]] const ftl::GcPolicy& slc_policy() const override {
    return greedy_;
  }
  void on_attach_telemetry(telemetry::MetricsRegistry* registry,
                           const telemetry::Labels& labels) override;
  void save_scheme_state(io::StateSink& sink) const override {
    sink.u64(reprogrammed_pages_);
    sink.u64(reprogrammed_subpages_);
    sink.u64(fallback_subpages_);
  }
  void restore_scheme_state(io::StateSource& src) override {
    reprogrammed_pages_ = src.u64();
    reprogrammed_subpages_ = src.u64();
    fallback_subpages_ = src.u64();
  }

 private:
  Options opts_;
  std::uint64_t reprogrammed_pages_ = 0;
  std::uint64_t reprogrammed_subpages_ = 0;
  std::uint64_t fallback_subpages_ = 0;
  // Telemetry handles (null until attached).
  telemetry::Counter* tl_reprogrammed_ = nullptr;
  telemetry::Counter* tl_fallback_ = nullptr;
};

}  // namespace ppssd::cache
