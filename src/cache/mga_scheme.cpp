#include "cache/mga_scheme.h"

#include <algorithm>
#include <array>
#include <utility>

#include "cache/registry.h"
#include "common/check.h"
#include "common/state_io.h"

namespace ppssd::cache {

namespace detail {
const SchemeRegistrar mga_registrar(SchemeInfo{
    "MGA",
    "mapping-granularity-adaptive aggregation into shared SLC pages",
    /*order=*/1,
    [](const SsdConfig& cfg,
       const SchemeOptions& opts) -> std::unique_ptr<Scheme> {
      PPSSD_CHECK_MSG(opts.empty(), "MGA scheme takes no options");
      return std::make_unique<MgaScheme>(cfg);
    },
    [](const ftl::MappingFootprint& fp) { return fp.mga(); },
});

// Called by SchemeRegistry::instance() to pin this translation unit (and
// with it the registrar above) into static-library consumers.
void mga_scheme_link() {}
}  // namespace detail

MgaScheme::MgaScheme(const SsdConfig& cfg)
    : Scheme(cfg),
      second_level_(array_.geometry()),
      open_pages_(array_.geometry().planes()) {}

void MgaScheme::inspect(telemetry::introspect::StateSink& sink) const {
  Scheme::inspect(sink);
  sink.value("second_level_entries", second_level_.live_entries());
  sink.value("second_level_capacity", second_level_.capacity());
  std::uint64_t open = 0;
  for (const OpenPage& p : open_pages_) {
    if (p.valid()) ++open;
  }
  sink.value("open_aggregation_pages", open);
}

std::uint32_t MgaScheme::append_to_plane(std::uint32_t plane, Lsn lsn,
                                         std::uint32_t max, SimTime now,
                                         std::vector<PhysOp>& ops) {
  OpenPage& open = open_pages_[plane];

  // Re-open when the current aggregation page can take no more programs.
  if (open.valid()) {
    const auto& blk = array_.block(open.block);
    const auto& page = blk.page(open.page);
    const bool usable = page.programmed()
                            ? array_.can_partial_program(open.block, open.page)
                            : true;
    if (!usable) open = OpenPage{};
  }
  if (!open.valid()) {
    const auto alloc = bm_.allocate_page(plane, BlockLevel::kWork);
    if (!alloc) return 0;
    open = OpenPage{alloc->block, alloc->page};
  }

  const auto& page = array_.block(open.block).page(open.page);
  const std::uint32_t free =
      array_.page_count_state(open.block, open.page, nand::SubpageState::kFree);
  PPSSD_CHECK(free > 0);
  const std::uint32_t n = std::min(max, free);
  const bool partial = page.programmed();

  // Fill free slots (a suffix: slots are consumed in order, invalidation
  // never frees them).
  std::array<nand::SlotWrite, nand::kMaxSubpagesPerPage> writes;
  const SubpageId first = array_.page_first_free(open.block, open.page);
  for (std::uint32_t k = 0; k < n; ++k) {
    const Lsn cur = lsn + k;
    invalidate_previous(cur);
    writes[k] = {static_cast<SubpageId>(first + k), cur, bump_version(cur)};
  }
  array_.program(open.block, open.page,
                 std::span<const nand::SlotWrite>(writes.data(), n), now);
  for (std::uint32_t k = 0; k < n; ++k) {
    const PhysicalAddress addr{open.block, open.page, writes[k].slot};
    map_.set(writes[k].lsn, addr);
    second_level_.set(array_.geometry(), addr, writes[k].lsn);
  }

  metrics_.slc_subpages_written += n;
  metrics_.host_subpages_written += n;
  metrics_.level_subpages[static_cast<std::size_t>(BlockLevel::kWork)] += n;
  if (partial) count_partial_program(n);
  emit_program(open.block, n, /*background=*/false, ops);
  return n;
}

void MgaScheme::place_write(Lsn lsn, std::uint32_t count, SimTime now,
                            std::vector<PhysOp>& ops) {
  std::uint32_t i = 0;
  while (i < count) {
    const std::uint32_t plane = next_plane();
    const std::uint32_t wrote =
        append_to_plane(plane, lsn + i, count - i, now, ops);
    if (wrote == 0) {
      // SLC region exhausted: write the remainder through to MLC.
      direct_mlc_write(lsn + i, count - i, now, ops);
      return;
    }
    i += wrote;
  }
}

void MgaScheme::relocate_slc_page(BlockId victim, PageId page, SimTime now,
                                  std::vector<PhysOp>& ops) {
  evict_page_to_mlc(victim, page, now, ops);
}

void MgaScheme::on_slc_block_erased(BlockId block) {
  second_level_.clear_block(array_.geometry(), block);
  for (auto& open : open_pages_) {
    if (open.block == block) open = OpenPage{};
  }
}

void MgaScheme::on_slc_slot_invalidated(const PhysicalAddress& addr) {
  second_level_.clear(array_.geometry(), addr);
}

void MgaScheme::on_slc_page_programmed(BlockId block, PageId page,
                                       std::span<const Lsn> lsns,
                                       bool /*first_program*/) {
  // Defensive: the shared placement helper is not used on MGA's hot path,
  // but keep the second-level table consistent if it ever is.
  for (std::size_t i = 0; i < lsns.size(); ++i) {
    second_level_.set(
        array_.geometry(),
        PhysicalAddress{block, page, static_cast<SubpageId>(i)}, lsns[i]);
  }
}

void MgaScheme::save_scheme_state(io::StateSink& sink) const {
  second_level_.save(sink);
  sink.vec(open_pages_);
}

void MgaScheme::restore_scheme_state(io::StateSource& src) {
  second_level_.restore(src);
  std::vector<OpenPage> open = src.vec<OpenPage>();
  PPSSD_CHECK_MSG(src.ok() && open.size() == open_pages_.size(),
                  "warm-start checkpoint does not match MGA open-page shape");
  open_pages_ = std::move(open);
}

}  // namespace ppssd::cache
