// MGA: mapping-granularity-adaptive aggregation (Feng et al., DATE'17).
//
// Small writes of *different* requests are appended into the currently
// open SLC page of a plane with partial programming, until the page's
// subpage slots or its partial-program budget run out. This maximises
// page utilisation (Figure 9's ~100%) at the cost of in-page program
// disturb on the other requests' live data sharing the page, and of a
// two-level mapping table over the whole SLC region (Figure 11).
#pragma once

#include <vector>

#include "cache/scheme.h"
#include "ftl/subpage_mapping.h"

namespace ppssd::cache {

class MgaScheme final : public Scheme {
 public:
  explicit MgaScheme(const SsdConfig& cfg);

  [[nodiscard]] const char* name() const override { return "MGA"; }

  [[nodiscard]] const ftl::SecondLevelTable& second_level() const {
    return second_level_;
  }

  /// Base entries plus the two-level table's occupancy and the count of
  /// currently open per-plane aggregation pages.
  void inspect(telemetry::introspect::StateSink& sink) const override;

 protected:
  void place_write(Lsn lsn, std::uint32_t count, SimTime now,
                   std::vector<PhysOp>& ops) override;
  void relocate_slc_page(BlockId victim, PageId page, SimTime now,
                         std::vector<PhysOp>& ops) override;
  [[nodiscard]] const ftl::GcPolicy& slc_policy() const override {
    return greedy_;
  }
  void on_slc_block_erased(BlockId block) override;
  void on_slc_slot_invalidated(const PhysicalAddress& addr) override;
  void on_slc_page_programmed(BlockId block, PageId page,
                              std::span<const Lsn> lsns,
                              bool first_program) override;
  void save_scheme_state(io::StateSink& sink) const override;
  void restore_scheme_state(io::StateSource& src) override;

 private:
  /// The plane's current aggregation page, or nullopt when a fresh page
  /// must be opened.
  struct OpenPage {
    BlockId block = kInvalidBlock;
    PageId page = kInvalidPage;
    [[nodiscard]] bool valid() const { return block != kInvalidBlock; }
  };

  /// Append up to `max` subpages starting at `lsn` into the plane's open
  /// aggregation page; returns how many were written (0 if a fresh page
  /// could not be opened either).
  std::uint32_t append_to_plane(std::uint32_t plane, Lsn lsn,
                                std::uint32_t max, SimTime now,
                                std::vector<PhysOp>& ops);

  ftl::SecondLevelTable second_level_;
  std::vector<OpenPage> open_pages_;  // per plane
};

}  // namespace ppssd::cache
