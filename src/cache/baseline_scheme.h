// Baseline: dynamic page-level mapping without partial programming.
//
// Every host write consumes fresh SLC pages — a request smaller than a
// page leaves the remainder of the page unprogrammed forever (the internal
// fragmentation of Section 1). SLC GC uses the conventional greedy policy
// and evicts all valid data of the victim to the MLC region.
#pragma once

#include "cache/scheme.h"

namespace ppssd::cache {

class BaselineScheme final : public Scheme {
 public:
  explicit BaselineScheme(const SsdConfig& cfg) : Scheme(cfg) {}

  [[nodiscard]] const char* name() const override { return "Baseline"; }

  /// Baseline keeps no side tables beyond the base mapping; the explicit
  /// override documents that the base entries are its full state.
  void inspect(telemetry::introspect::StateSink& sink) const override {
    Scheme::inspect(sink);
  }

 protected:
  void place_write(Lsn lsn, std::uint32_t count, SimTime now,
                   std::vector<PhysOp>& ops) override;
  void relocate_slc_page(BlockId victim, PageId page, SimTime now,
                         std::vector<PhysOp>& ops) override;
  [[nodiscard]] const ftl::GcPolicy& slc_policy() const override {
    return greedy_;
  }
};

}  // namespace ppssd::cache
