#include "cache/baseline_scheme.h"

#include <vector>

#include "cache/registry.h"
#include "common/check.h"

namespace ppssd::cache {

namespace detail {
const SchemeRegistrar baseline_registrar(SchemeInfo{
    "Baseline",
    "dynamic page-level mapping, partial programming disabled",
    /*order=*/0,
    [](const SsdConfig& cfg,
       const SchemeOptions& opts) -> std::unique_ptr<Scheme> {
      PPSSD_CHECK_MSG(opts.empty(), "Baseline scheme takes no options");
      return std::make_unique<BaselineScheme>(cfg);
    },
    [](const ftl::MappingFootprint& fp) { return fp.baseline(); },
});

// Called by SchemeRegistry::instance() to pin this translation unit (and
// with it the registrar above) into static-library consumers.
void baseline_scheme_link() {}
}  // namespace detail

void BaselineScheme::place_write(Lsn lsn, std::uint32_t count, SimTime now,
                                 std::vector<PhysOp>& ops) {
  std::uint32_t i = 0;
  std::vector<Lsn> chunk;
  std::vector<std::uint32_t> vers;
  while (i < count) {
    chunk.clear();
    vers.clear();
    const std::uint32_t n = std::min(count - i, subpages_per_page());
    for (std::uint32_t k = 0; k < n; ++k) {
      chunk.push_back(lsn + i + k);
      vers.push_back(bump_version(lsn + i + k));
    }
    const auto alloc = program_new_slc_page(next_plane(), BlockLevel::kWork,
                                            chunk, vers, now,
                                            /*host=*/true, ops);
    if (!alloc) {
      // SLC region exhausted even for Work blocks: write through to MLC.
      // Roll the versions back first — direct_mlc_write bumps them itself.
      for (const Lsn l : chunk) versions_[l] -= 1;
      direct_mlc_write(chunk.front(),
                       static_cast<std::uint32_t>(chunk.size()), now, ops);
    }
    i += n;
  }
}

void BaselineScheme::relocate_slc_page(BlockId victim, PageId page,
                                       SimTime now, std::vector<PhysOp>& ops) {
  evict_page_to_mlc(victim, page, now, ops);
}

}  // namespace ppssd::cache
