// SLC-mode cache management schemes.
//
// A Scheme is the policy brain of the FTL: it decides where host data
// lands (which SLC level, which page, partial vs conventional program),
// when and how the SLC cache evicts to the MLC region, and how GC selects
// and relocates. The three schemes of Section 4.1:
//
//  * BaselineScheme — dynamic page-level mapping, partial programming
//    disabled: every write consumes fresh pages, never revisited.
//  * MgaScheme — mapping-granularity-adaptive aggregation [12]: small
//    writes of *different* requests are appended into the same open SLC
//    page with partial programming (maximum space utilisation, maximum
//    in-page disturb), backed by a two-level mapping table.
//  * IpuScheme — the paper's contribution: updates are partial-programmed
//    into the *same page* that holds the previous version (in-page disturb
//    lands only on already-invalidated data), hot updates climb the
//    Work -> Monitor -> Hot block levels, and GC uses the ISR policy with
//    degraded cold-data movement (Sections 3.1-3.3, Algorithm 1).
//  * IpsScheme (cache/ips_scheme.h) — the In-place Switch successor
//    design (arXiv 2409.14360): SLC cache lines are promoted to the dense
//    region by reprogramming the cells in place instead of
//    read-migrate-program.
//
// Schemes self-register in the name-indexed plugin registry
// (cache/registry.h); construct them with make_scheme(name, cfg, opts).
//
// Schemes do not advance time; they emit PhysOps that the service model
// (sim/service_model.h) prices against chip/channel availability.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "cache/registry.h"
#include "common/config.h"
#include "common/stats.h"
#include "common/types.h"
#include "ecc/ber_model.h"
#include "ecc/latency_model.h"
#include "ftl/block_manager.h"
#include "ftl/gc_policy.h"
#include "ftl/mapping.h"
#include "ftl/mapping_footprint.h"
#include "nand/flash_array.h"
#include "telemetry/introspect/format.h"
#include "telemetry/telemetry.h"

namespace ppssd::cache {

/// One physical flash operation for the timing model.
///
/// Ops within one host request form a dependency DAG: `depends_on` names
/// the index (within the request's op sequence) of the op whose data this
/// op consumes — a GC relocation program depends on the page read that
/// sourced its data, a victim erase depends on the last relocation op of
/// that victim. The controller dispatches an op only once its dependency
/// has completed; independent ops overlap freely across chips/channels.
/// Why an op exists — the causal tag the latency-attribution ledger
/// charges wait intervals to (host command, GC/migration machinery, or
/// warm-up traffic). Distinct from `background`, which is the *priority*
/// the controller schedules at.
enum class OpOrigin : std::uint8_t { kHost = 0, kGc = 1, kPrefill = 2 };

struct PhysOp {
  /// kReprogram is the in-place SLC→dense switch (IPS): pure array time on
  /// the chip lane — no channel transfer and no ECC decode.
  enum class Kind : std::uint8_t {
    kRead = 0,
    kProgram = 1,
    kErase = 2,
    kReprogram = 3,
  };

  /// Sentinel: the op has no intra-request dependency.
  static constexpr std::uint32_t kNoDependency = 0xffffffffu;

  std::uint32_t chip = 0;
  std::uint32_t channel = 0;
  Kind kind = Kind::kRead;
  CellMode mode = CellMode::kSlc;
  std::uint32_t subpages = 1;  // transferred / ECC-decoded payload
  double ber = 0.0;            // raw BER priced by ECC (reads only)
  bool background = false;     // GC / migration work
  OpOrigin origin = OpOrigin::kHost;
  std::uint32_t depends_on = kNoDependency;  // earlier op index, or none
};

/// Aggregated policy metrics for the paper's figures.
struct SchemeMetrics {
  // Figure 6: completed writes per region (subpages, host + GC/flush).
  std::uint64_t slc_subpages_written = 0;
  std::uint64_t mlc_subpages_written = 0;
  // Host-only split.
  std::uint64_t host_subpages_written = 0;
  // Figure 7: host writes landing in each SLC level (index by BlockLevel).
  std::uint64_t level_subpages[4] = {0, 0, 0, 0};
  std::uint64_t intra_page_updates = 0;  // subpages updated in place
  // GC activity.
  std::uint64_t slc_gc_count = 0;
  std::uint64_t mlc_gc_count = 0;
  RunningStat gc_utilization;  // Figure 9: used/total subpages of victims
  std::uint64_t gc_moved_subpages = 0;    // relocated within SLC
  std::uint64_t evicted_subpages = 0;     // ejected SLC -> MLC
  // Figure 8: raw BER observed by host subpage reads.
  RunningStat read_ber;
  std::uint64_t host_reads_slc = 0;
  std::uint64_t host_reads_mlc = 0;
  std::uint64_t host_reads_unmapped = 0;
};

class Scheme {
 public:
  explicit Scheme(const SsdConfig& cfg);
  virtual ~Scheme() = default;

  Scheme(const Scheme&) = delete;
  Scheme& operator=(const Scheme&) = delete;

  /// Canonical registry name of this scheme ("Baseline", "MGA", …).
  [[nodiscard]] virtual const char* name() const = 0;

  /// Serve a host write of `count` contiguous logical subpages starting at
  /// `lsn`. Appends the physical operations to `ops` in issue order
  /// (host programs first, then any triggered flush/GC work).
  void host_write(Lsn lsn, std::uint32_t count, SimTime now,
                  std::vector<PhysOp>& ops);

  /// Serve a host read of `count` contiguous logical subpages.
  void host_read(Lsn lsn, std::uint32_t count, SimTime now,
                 std::vector<PhysOp>& ops);

  [[nodiscard]] const nand::FlashArray& array() const { return array_; }
  [[nodiscard]] nand::FlashArray& array() { return array_; }
  [[nodiscard]] const ftl::BlockManager& blocks() const { return bm_; }
  [[nodiscard]] const SchemeMetrics& metrics() const { return metrics_; }
  [[nodiscard]] const SsdConfig& config() const { return cfg_; }
  [[nodiscard]] const ftl::DeviceMap& device_map() const { return map_; }

  /// Mapping-table memory model for this scheme (Figure 11).
  [[nodiscard]] ftl::FootprintReport footprint() const;

  /// Current stored version of an LSN (0 = never written).
  [[nodiscard]] std::uint32_t version_of(Lsn lsn) const {
    return versions_[lsn];
  }

  /// True if the LSN's current copy lives in the SLC-mode cache.
  [[nodiscard]] bool cached_in_slc(Lsn lsn) const {
    const PhysicalAddress addr = map_.lookup(lsn);
    return addr.valid() && array_.geometry().is_slc_block(addr.block);
  }

  /// Walk every mapping and physical slot and abort on any violated
  /// invariant (see DESIGN.md §5). O(device); test/diagnostic use.
  void check_consistency() const;

  /// Zero the policy metrics and array op counters (cache contents, maps
  /// and wear are preserved). Called after cache warm-up.
  void reset_metrics() {
    metrics_ = SchemeMetrics{};
    array_.reset_counters();
  }

  /// Pre-fill the MLC region with logical pages [0, max_subpages), as an
  /// aged drive would be, stopping when every plane is down to
  /// `free_floor_blocks` free MLC blocks. No timing is simulated; call
  /// before replay. Returns the number of subpages filled.
  std::uint64_t prefill_mlc(std::uint64_t max_subpages,
                            std::uint32_t free_floor_blocks);

  /// Observer of committed GC victim decisions, fired once per GC pass
  /// right after victim selection resolves (test / capture use).
  using GcDecisionHook = std::function<void(
      std::uint32_t plane, CellMode mode, BlockId victim, SimTime now)>;
  void set_gc_decision_hook(GcDecisionHook hook) {
    gc_decision_hook_ = std::move(hook);
  }

  /// Tag the origin of subsequently emitted *foreground* ops (background
  /// ops are always kGc). The experiment driver marks warm-up traffic
  /// kPrefill so the attribution ledger separates it from measured host
  /// work; restore kHost before the measured replay.
  void set_origin_phase(OpOrigin origin) { fg_origin_ = origin; }

  /// Append this scheme's named occupancy/side-table figures to `sink`
  /// for the introspection snapshotter. The base implementation emits
  /// the scheme-independent accounting every frame carries —
  /// "mapped_lsns", "logical_subpages", "slc_cached_subpages",
  /// "staged_evictions" — and overrides must call it before adding
  /// their own entries (names are stable: tools key on them). Must be a
  /// pure observation — no state changes, device walk allowed.
  virtual void inspect(telemetry::introspect::StateSink& sink) const;

  /// Warm-start checkpointing (DESIGN.md §14): serialize the device's
  /// complete mutable state — flash array, block manager, mapping table,
  /// version table, round-robin cursor — then scheme-specific side state
  /// via save_scheme_state(). Must be called at a quiescent point (no
  /// staged evictions, no GC victim mid-flight); metrics are NOT
  /// serialized — callers checkpoint right after reset_metrics() so both
  /// cold and warm paths start the measured phase from zero.
  void save(io::StateSink& sink) const;
  /// Inverse of save() on a freshly constructed scheme of the *same*
  /// config and options. PPSSD_CHECKs on any shape mismatch (the
  /// checkpoint container validates integrity up front).
  void restore(io::StateSource& src);

  /// Attach (or detach, with null) the crash flight recorder: committed
  /// GC victim decisions are recorded as kGcDecision events. Pure
  /// observer; one branch per GC pass when detached.
  void set_flight_recorder(telemetry::introspect::FlightRecorder* flight) {
    flight_ = flight;
  }

  /// Register the scheme's counters/histograms (cache hit/miss, partial
  /// programs, evictions, GC episodes, read BER…) labelled
  /// {scheme=<name>}, fan out to the block manager and GC policies, and
  /// adopt the bundle's trace log. Null detaches the hot-path handles; the
  /// registry must outlive the scheme (or be re-attached) because pool
  /// gauges poll it. Call at most once per registry.
  void attach_telemetry(telemetry::Telemetry* telemetry);

 protected:
  /// Scheme-specific write placement. Must handle map updates, old-version
  /// invalidation, metrics, and emit program ops.
  virtual void place_write(Lsn lsn, std::uint32_t count, SimTime now,
                           std::vector<PhysOp>& ops) = 0;

  /// Scheme-specific relocation of one victim page's valid data during SLC
  /// GC.
  virtual void relocate_slc_page(BlockId victim, PageId page, SimTime now,
                                 std::vector<PhysOp>& ops) = 0;

  /// Whether SLC GC must read a victim page out of the array before
  /// relocate_slc_page() can consume its data. True for every
  /// read-migrate-program scheme; IPS overrides to false because in-place
  /// reprogramming converts the cells without a channel round-trip, so no
  /// GC page read is emitted and relocation ops carry no read dependency.
  [[nodiscard]] virtual bool relocation_reads_source() const { return true; }

  /// Victim-selection policy for the SLC region.
  [[nodiscard]] virtual const ftl::GcPolicy& slc_policy() const = 0;

  /// Hook invoked when an SLC block is erased (clear side tables).
  virtual void on_slc_block_erased(BlockId /*block*/) {}

  /// Hook invoked after a fresh SLC page is programmed by the shared
  /// placement helper (IPU tags the page's extent here).
  virtual void on_slc_page_programmed(BlockId /*block*/, PageId /*page*/,
                                      std::span<const Lsn> /*lsns*/,
                                      bool /*first_program*/) {}

  /// Hook invoked whenever an SLC slot is invalidated (MGA clears its
  /// second-level table entry here).
  virtual void on_slc_slot_invalidated(const PhysicalAddress& /*addr*/) {}

  /// Hook for scheme-specific instruments. `registry` is null on detach;
  /// `labels` already carries {scheme=<name>}.
  virtual void on_attach_telemetry(telemetry::MetricsRegistry* /*registry*/,
                                   const telemetry::Labels& /*labels*/) {}

  /// Hooks for scheme-specific mutable state in warm-start checkpoints
  /// (side tables, open-page cursors, promotion counters). Baseline has
  /// none; MGA/IPU/IPS override both.
  virtual void save_scheme_state(io::StateSink& /*sink*/) const {}
  virtual void restore_scheme_state(io::StateSource& /*src*/) {}

  // ---- shared mechanisms available to subclasses -----------------------

  [[nodiscard]] std::uint32_t subpages_per_page() const { return spp_; }

  /// Next plane in round-robin order for new-page placement.
  std::uint32_t next_plane();

  /// Bump and return the LSN's version (host writes only).
  std::uint32_t bump_version(Lsn lsn);

  /// Drop the previous version of `lsn` wherever it lives. Safe to call
  /// for never-written LSNs.
  void invalidate_previous(Lsn lsn);

  /// Retire one physical slot: invalidate in the array, clear the map,
  /// fire the SLC hook. The slot must be the current mapping of `lsn`.
  void retire_slot(Lsn lsn, const PhysicalAddress& addr);

  /// Emit a program op for a page of `block`.
  void emit_program(BlockId block, std::uint32_t subpages, bool background,
                    std::vector<PhysOp>& ops);

  /// Emit a read op of `subpages` subpages from one physical page,
  /// pricing ECC by the max raw BER across the page's read subpages.
  void emit_page_read(BlockId block, PageId page, std::uint32_t subpages,
                      double max_ber, bool background,
                      std::vector<PhysOp>& ops);

  /// Emit an erase op for `block`.
  void emit_erase(BlockId block, std::vector<PhysOp>& ops);

  /// Raw BER of a stored subpage right now.
  [[nodiscard]] double ber_of(const PhysicalAddress& addr) const;

  /// Program freshly-allocated SLC page slots [0, n) with the given LSNs
  /// (used by every scheme for new-page placement and GC moves). Updates
  /// the map, emits the program op, and tallies level metrics when `host`
  /// is true (host semantics also supersede prior copies). Returns the
  /// allocation actually used (after level fallback) or nullopt when the
  /// SLC region is exhausted.
  std::optional<ftl::PageAlloc> program_new_slc_page(
      std::uint32_t plane, BlockLevel level, std::span<const Lsn> lsns,
      std::span<const std::uint32_t> versions, SimTime now, bool host,
      std::vector<PhysOp>& ops);

  /// Write the given LSNs into a fresh MLC page (packed slots). Same
  /// host/GC semantics as program_new_slc_page. Runs MLC GC first when the
  /// destination plane is below threshold.
  void program_mlc_page(std::span<const Lsn> lsns,
                        std::span<const std::uint32_t> versions, SimTime now,
                        bool host, bool background, std::vector<PhysOp>& ops,
                        std::uint32_t plane_hint = UINT32_MAX);

  /// Evict one victim page's valid subpages to the MLC region (GC path).
  /// Evictions within one GC pass are *packed*: the controller buffers
  /// GC-out data and writes full MLC pages; flush_evictions() closes the
  /// pass (called automatically by the GC driver).
  void evict_page_to_mlc(BlockId victim, PageId page, SimTime now,
                         std::vector<PhysOp>& ops);
  void flush_evictions(std::uint32_t plane, SimTime now,
                       std::vector<PhysOp>& ops);

  /// Write host data directly to MLC (fallback when the SLC region cannot
  /// take another page even after GC).
  void direct_mlc_write(Lsn lsn, std::uint32_t count, SimTime now,
                        std::vector<PhysOp>& ops);

  /// Run SLC / MLC GC passes on `plane` while below threshold (bounded
  /// passes per call).
  void maybe_slc_gc(std::uint32_t plane, SimTime now,
                    std::vector<PhysOp>& ops);
  void maybe_mlc_gc(std::uint32_t plane, SimTime now,
                    std::vector<PhysOp>& ops);

  /// Tally `n` subpages written by a partial (reprogram) operation.
  /// Subclasses call this wherever they program an already-programmed
  /// page; no-op until telemetry attaches.
  void count_partial_program(std::uint32_t n) {
    if (tl_partial_programs_) tl_partial_programs_->inc(n);
  }

  /// Tally `n` subpages ejected from the SLC cache into the dense region
  /// (metrics plus telemetry). The shared eviction flush calls this;
  /// schemes with their own SLC→MLC promotion path (IPS) call it too so
  /// the evicted_subpages family stays comparable across schemes.
  void count_evicted(std::uint32_t n) {
    metrics_.evicted_subpages += n;
    if (tl_evicted_) tl_evicted_->inc(n);
  }

  /// Index (into the current request's op vector) of the GC page read that
  /// sourced the data currently being relocated; kNoDependency outside GC
  /// victim processing. emit_program() attaches it to background programs
  /// so relocation writes wait for their source read in the controller.
  /// MLC GC nests inside SLC victim processing (eviction flush can trigger
  /// it), so mlc_gc_once() saves and restores the surrounding value.
  std::uint32_t gc_read_dep_ = PhysOp::kNoDependency;

  SsdConfig cfg_;
  nand::FlashArray array_;
  ftl::BlockManager bm_;
  ftl::DeviceMap map_;
  ecc::BerModel ber_model_;
  ecc::EccLatencyModel ecc_model_;
  ftl::GreedyPolicy greedy_;
  SchemeMetrics metrics_;
  std::vector<std::uint32_t> versions_;
  /// Trace log adopted from the attached bundle (null when disabled);
  /// subclasses may emit their own category-filtered events through it.
  telemetry::TraceLog* tlog_ = nullptr;

 private:
  /// One GC pass on a plane's region; returns false if no victim.
  bool slc_gc_once(std::uint32_t plane, SimTime now, std::vector<PhysOp>& ops);
  /// MLC GC pass; victims below `min_invalid` reclaimable subpages are
  /// deferred (write-amplification guard).
  bool mlc_gc_once(std::uint32_t plane, SimTime now, std::vector<PhysOp>& ops,
                   std::uint32_t min_invalid);

  struct StagedEviction {
    Lsn lsn;
    std::uint32_t version;
  };
  std::vector<StagedEviction> staged_evictions_;

  GcDecisionHook gc_decision_hook_;
  telemetry::introspect::FlightRecorder* flight_ = nullptr;

  std::uint32_t spp_;
  std::uint32_t rr_plane_ = 0;
  OpOrigin fg_origin_ = OpOrigin::kHost;

  // Telemetry handles (null until attached).
  telemetry::Counter* tl_writes_hit_ = nullptr;    // update of SLC-cached data
  telemetry::Counter* tl_writes_miss_ = nullptr;   // new / non-cached data
  telemetry::Counter* tl_partial_programs_ = nullptr;
  telemetry::Counter* tl_evicted_ = nullptr;       // subpages SLC -> MLC
  telemetry::Counter* tl_gc_moved_ = nullptr;      // subpages moved within SLC
  telemetry::Counter* tl_direct_mlc_ = nullptr;    // host subpages bypassing SLC
  telemetry::Counter* tl_reads_slc_ = nullptr;
  telemetry::Counter* tl_reads_mlc_ = nullptr;
  telemetry::Counter* tl_reads_unmapped_ = nullptr;
  telemetry::Counter* tl_gc_slc_ = nullptr;        // GC episodes per region
  telemetry::Counter* tl_gc_mlc_ = nullptr;
  telemetry::Histogram* tl_read_ber_ = nullptr;
  telemetry::Histogram* tl_victim_util_ = nullptr;
};

}  // namespace ppssd::cache
