// IPU: the paper's intra-page cache update scheme (Sections 3.1-3.3).
//
// Placement rules (Algorithm 1):
//  * new data -> a fresh page in a Work block, one request per page, the
//    page's remaining subpage slots reserved for that data's future
//    updates;
//  * an update whose previous version is cached -> partial-programmed
//    into the *same page* when a free slot and partial-program budget
//    remain (in-page disturb then only hits the just-invalidated old
//    version), otherwise relocated to a fresh page one block-level up
//    (Work -> Monitor -> Hot), which is how hot data is identified;
//  * GC uses the ISR policy (Eq. 1/2) and degraded movement: pages that
//    were updated in place stay at their level, never-updated pages sink
//    one level, and cold Work-level pages are ejected to the MLC region.
#pragma once

#include <memory>

#include "cache/scheme.h"
#include "ftl/hotness.h"
#include "ftl/subpage_mapping.h"

namespace ppssd::cache {

class IpuScheme final : public Scheme {
 public:
  explicit IpuScheme(const SsdConfig& cfg);

  [[nodiscard]] const char* name() const override { return "IPU"; }

  [[nodiscard]] const ftl::IpuOffsetTable& offsets() const {
    return offsets_;
  }

  /// Base entries plus the offset table's occupancy and the count of
  /// open combine_cold shared pages.
  void inspect(telemetry::introspect::StateSink& sink) const override;

  /// Ablation knobs (bench/ablations): disable pieces of the design —
  /// plus the paper's future-work extension (`combine_cold`).
  struct Options {
    bool use_isr_gc = true;       // false -> greedy victim selection
    bool use_levels = true;       // false -> single Work level
    bool use_intra_page = true;   // false -> every update relocates
    /// Section 5 future work: adaptively combine data predicted to be
    /// infrequently updated into shared Work pages (MGA-style appends),
    /// recovering page utilization at the cost of in-page disturb on the
    /// co-located cold data and per-slot mapping entries for those pages.
    bool combine_cold = false;

    /// Registry option-bag form (keys isr/lvl/ipp/cmb, values "0"/"1",
    /// fixed order — the encoding participates in experiment cache keys).
    [[nodiscard]] SchemeOptions to_scheme_options() const;
    [[nodiscard]] static Options from_scheme_options(
        const SchemeOptions& opts);
  };
  void set_options(const Options& opts);
  [[nodiscard]] const Options& options() const { return opts_; }

 protected:
  void place_write(Lsn lsn, std::uint32_t count, SimTime now,
                   std::vector<PhysOp>& ops) override;
  void relocate_slc_page(BlockId victim, PageId page, SimTime now,
                         std::vector<PhysOp>& ops) override;
  [[nodiscard]] const ftl::GcPolicy& slc_policy() const override;
  void on_slc_block_erased(BlockId block) override;
  void on_slc_page_programmed(BlockId block, PageId page,
                              std::span<const Lsn> lsns,
                              bool first_program) override;
  void on_attach_telemetry(telemetry::MetricsRegistry* registry,
                           const telemetry::Labels& labels) override;
  void save_scheme_state(io::StateSink& sink) const override;
  void restore_scheme_state(io::StateSource& src) override;

 private:
  /// Serve an update run whose previous versions all live in one SLC page.
  /// Returns the number of subpages handled.
  std::uint32_t update_cached_run(Lsn lsn, std::uint32_t count, SimTime now,
                                  std::vector<PhysOp>& ops);

  /// Length of the prefix of [lsn, lsn+max) whose cached copies sit
  /// contiguously in one SLC page (0 when lsn is not cached in SLC).
  [[nodiscard]] std::uint32_t cached_batch_len(Lsn lsn,
                                               std::uint32_t max) const;

  /// combine_cold: append `count` cold subpages into the plane-rotating
  /// shared cold page. Returns subpages written (0 -> caller falls back).
  std::uint32_t append_cold(Lsn lsn, std::uint32_t count, SimTime now,
                            std::vector<PhysOp>& ops);

  struct ColdOpenPage {
    BlockId block = kInvalidBlock;
    PageId page = kInvalidPage;
    [[nodiscard]] bool valid() const { return block != kInvalidBlock; }
  };

  ftl::IpuOffsetTable offsets_;
  ftl::IsrPolicy isr_;
  Options opts_;
  /// combine_cold state: per-LSN write history + per-plane shared pages.
  std::unique_ptr<ftl::UpdateTracker> tracker_;
  std::vector<ColdOpenPage> cold_pages_;
  // Telemetry handles (null until attached): IPU-specific placement paths.
  telemetry::Counter* tl_intra_page_ = nullptr;   // subpages updated in place
  telemetry::Counter* tl_level_climbs_ = nullptr; // hot relocations upward
  telemetry::Counter* tl_cold_appends_ = nullptr; // combine_cold subpages
};

}  // namespace ppssd::cache
