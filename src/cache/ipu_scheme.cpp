#include "cache/ipu_scheme.h"

#include <algorithm>
#include <array>
#include <utility>
#include <vector>

#include "cache/registry.h"
#include "common/check.h"
#include "common/state_io.h"

namespace ppssd::cache {

namespace detail {
const SchemeRegistrar ipu_registrar(SchemeInfo{
    "IPU",
    "intra-page cache update with level climbing and ISR GC (the paper)",
    /*order=*/2,
    [](const SsdConfig& cfg,
       const SchemeOptions& opts) -> std::unique_ptr<Scheme> {
      auto scheme = std::make_unique<IpuScheme>(cfg);
      if (!opts.empty()) {
        scheme->set_options(IpuScheme::Options::from_scheme_options(opts));
      }
      return scheme;
    },
    [](const ftl::MappingFootprint& fp) { return fp.ipu(); },
});

// Called by SchemeRegistry::instance() to pin this translation unit (and
// with it the registrar above) into static-library consumers.
void ipu_scheme_link() {}
}  // namespace detail

SchemeOptions IpuScheme::Options::to_scheme_options() const {
  SchemeOptions opts;
  opts.set("isr", use_isr_gc ? "1" : "0");
  opts.set("lvl", use_levels ? "1" : "0");
  opts.set("ipp", use_intra_page ? "1" : "0");
  opts.set("cmb", combine_cold ? "1" : "0");
  return opts;
}

IpuScheme::Options IpuScheme::Options::from_scheme_options(
    const SchemeOptions& opts) {
  for (const auto& [key, value] : opts.entries) {
    PPSSD_CHECK_MSG(key == "isr" || key == "lvl" || key == "ipp" ||
                        key == "cmb",
                    ("unknown IPU option '" + key +
                     "'; known options: isr, lvl, ipp, cmb")
                        .c_str());
  }
  Options out;
  out.use_isr_gc = opts.flag("isr", out.use_isr_gc);
  out.use_levels = opts.flag("lvl", out.use_levels);
  out.use_intra_page = opts.flag("ipp", out.use_intra_page);
  out.combine_cold = opts.flag("cmb", out.combine_cold);
  return out;
}

IpuScheme::IpuScheme(const SsdConfig& cfg)
    : Scheme(cfg), offsets_(array_.geometry()) {}

void IpuScheme::inspect(telemetry::introspect::StateSink& sink) const {
  Scheme::inspect(sink);
  sink.value("offset_tagged_pages", offsets_.live_pages());
  sink.value("offset_table_capacity", offsets_.capacity());
  std::uint64_t cold = 0;
  for (const ColdOpenPage& p : cold_pages_) {
    if (p.valid()) ++cold;
  }
  sink.value("open_cold_pages", cold);
}

void IpuScheme::set_options(const Options& opts) {
  opts_ = opts;
  if (opts_.combine_cold) {
    if (!tracker_) {
      tracker_ = std::make_unique<ftl::UpdateTracker>(
          array_.geometry().logical_subpages());
    }
    cold_pages_.assign(array_.geometry().planes(), ColdOpenPage{});
  }
}

const ftl::GcPolicy& IpuScheme::slc_policy() const {
  if (opts_.use_isr_gc) return isr_;
  return greedy_;
}

void IpuScheme::on_attach_telemetry(telemetry::MetricsRegistry* registry,
                                    const telemetry::Labels& labels) {
  if (registry == nullptr) {
    tl_intra_page_ = tl_level_climbs_ = tl_cold_appends_ = nullptr;
    return;
  }
  isr_.attach_telemetry(*registry, labels);
  tl_intra_page_ = registry->counter("intra_page_update_subpages", labels);
  tl_level_climbs_ = registry->counter("level_climbs", labels);
  tl_cold_appends_ = registry->counter("cold_append_subpages", labels);
}

std::uint32_t IpuScheme::append_cold(Lsn lsn, std::uint32_t count,
                                     SimTime now, std::vector<PhysOp>& ops) {
  const std::uint32_t plane = next_plane();
  ColdOpenPage& open = cold_pages_[plane];
  if (open.valid()) {
    const auto& page = array_.block(open.block).page(open.page);
    const bool usable = page.programmed()
                            ? array_.can_partial_program(open.block, open.page)
                            : true;
    if (!usable) open = ColdOpenPage{};
  }
  if (!open.valid()) {
    const auto alloc = bm_.allocate_page(plane, BlockLevel::kWork);
    if (!alloc) return 0;
    open = ColdOpenPage{alloc->block, alloc->page};
  }

  const auto& page = array_.block(open.block).page(open.page);
  const std::uint32_t free =
      array_.page_count_state(open.block, open.page, nand::SubpageState::kFree);
  PPSSD_CHECK(free > 0);
  const std::uint32_t n = std::min(count, free);
  const bool partial = page.programmed();

  std::array<nand::SlotWrite, nand::kMaxSubpagesPerPage> writes;
  const SubpageId first = array_.page_first_free(open.block, open.page);
  for (std::uint32_t k = 0; k < n; ++k) {
    const Lsn cur = lsn + k;
    invalidate_previous(cur);
    writes[k] = {static_cast<SubpageId>(first + k), cur, bump_version(cur)};
  }
  array_.program(open.block, open.page,
                 std::span<const nand::SlotWrite>(writes.data(), n), now);
  if (partial) count_partial_program(n);
  if (tl_cold_appends_) tl_cold_appends_->inc(n);
  for (std::uint32_t k = 0; k < n; ++k) {
    map_.set(writes[k].lsn,
             PhysicalAddress{open.block, open.page, writes[k].slot});
  }
  metrics_.slc_subpages_written += n;
  metrics_.host_subpages_written += n;
  metrics_.level_subpages[static_cast<std::size_t>(BlockLevel::kWork)] += n;
  emit_program(open.block, n, /*background=*/false, ops);
  return n;
}

std::uint32_t IpuScheme::update_cached_run(Lsn lsn, std::uint32_t count,
                                           SimTime now,
                                           std::vector<PhysOp>& ops) {
  const PhysicalAddress first = map_.lookup(lsn);
  PPSSD_CHECK(first.valid());

  // Batch the following LSNs whose cached copies share the same page, so
  // one update request touching one page costs one program operation.
  std::uint32_t n = 1;
  while (n < count) {
    const PhysicalAddress next = map_.lookup(lsn + n);
    if (!next.valid() || next.block != first.block ||
        next.page != first.page) {
      break;
    }
    ++n;
  }

  nand::Block& blk = array_.block(first.block);
  const std::uint32_t free =
      array_.page_count_state(first.block, first.page,
                              nand::SubpageState::kFree);
  const bool fits = opts_.use_intra_page && free >= n &&
                    array_.can_partial_program(first.block, first.page);

  if (fits) {
    // Intra-page update: new versions into the page's free slots; the old
    // versions are invalidated, so the partial program's in-page disturb
    // lands only on dead data (Section 3.1).
    std::array<nand::SlotWrite, nand::kMaxSubpagesPerPage> writes;
    SubpageId slot = array_.page_first_free(first.block, first.page);
    for (std::uint32_t k = 0; k < n; ++k) {
      writes[k] = {slot, lsn + k, bump_version(lsn + k)};
      slot = static_cast<SubpageId>(slot + 1);
    }
    // Retire the old versions first (they live in this same page), then
    // program the new versions into the free slots.
    for (std::uint32_t k = 0; k < n; ++k) {
      const PhysicalAddress prev = map_.lookup(lsn + k);
      PPSSD_CHECK(prev.valid() && prev.block == first.block &&
                  prev.page == first.page);
      retire_slot(lsn + k, prev);
    }
    array_.program(first.block, first.page,
                   std::span<const nand::SlotWrite>(writes.data(), n), now);
    for (std::uint32_t k = 0; k < n; ++k) {
      map_.set(writes[k].lsn,
               PhysicalAddress{first.block, first.page, writes[k].slot});
    }
    // Pages whose valid set became non-contiguous (misaligned overlap, or
    // a combined cold page) carry no extent tag; adopt one on the first
    // in-place update, otherwise just advance the latest-version offset.
    if (offsets_.lookup(array_.geometry(), first.block, first.page)
            .extent_base == kInvalidLsn) {
      offsets_.open_page(array_.geometry(), first.block, first.page, lsn,
                         static_cast<std::uint8_t>(n), writes[0].slot);
    } else {
      offsets_.update_offset(array_.geometry(), first.block, first.page,
                             writes[0].slot);
    }

    const auto level = static_cast<std::size_t>(blk.level());
    metrics_.slc_subpages_written += n;
    metrics_.host_subpages_written += n;
    metrics_.level_subpages[level] += n;
    metrics_.intra_page_updates += n;
    count_partial_program(n);
    if (tl_intra_page_) tl_intra_page_->inc(n);
    emit_program(first.block, n, /*background=*/false, ops);
    return n;
  }

  // Upgraded movement: the data is demonstrably hot (it outgrew its page's
  // update budget), so it climbs one block level.
  BlockLevel dest = BlockLevel::kWork;
  if (opts_.use_levels) {
    const auto cur = static_cast<std::uint8_t>(blk.level());
    dest = static_cast<BlockLevel>(
        std::min<std::uint8_t>(cur + 1,
                               static_cast<std::uint8_t>(BlockLevel::kHot)));
  }
  if (tl_level_climbs_ &&
      static_cast<std::uint8_t>(dest) > static_cast<std::uint8_t>(blk.level())) {
    tl_level_climbs_->inc();
  }
  if (tlog_ && tlog_->enabled(telemetry::TraceCategory::kCache)) {
    tlog_->instant(telemetry::TraceCategory::kCache, "level_climb", now,
                   telemetry::kCacheLane,
                   {{"lsn", static_cast<double>(lsn)},
                    {"subpages", static_cast<double>(n)},
                    {"dest_level", static_cast<double>(dest)}});
  }
  std::vector<Lsn> lsns(n);
  std::vector<std::uint32_t> vers(n);
  for (std::uint32_t k = 0; k < n; ++k) {
    lsns[k] = lsn + k;
    vers[k] = bump_version(lsn + k);
  }
  // Round-robin the destination plane: hot extents would otherwise stay
  // pinned to one plane forever and unbalance the chips.
  const auto alloc = program_new_slc_page(next_plane(), dest, lsns, vers,
                                          now, /*host=*/true, ops);
  if (!alloc) {
    for (const Lsn l : lsns) versions_[l] -= 1;
    direct_mlc_write(lsn, n, now, ops);
  }
  return n;
}

std::uint32_t IpuScheme::cached_batch_len(Lsn lsn, std::uint32_t max) const {
  const PhysicalAddress first = map_.lookup(lsn);
  if (!first.valid() ||
      array_.block_static(first.block).mode != CellMode::kSlc) {
    return 0;
  }
  std::uint32_t n = 1;
  while (n < max) {
    const PhysicalAddress next = map_.lookup(lsn + n);
    if (!next.valid() || next.block != first.block ||
        next.page != first.page) {
      break;
    }
    ++n;
  }
  return n;
}

void IpuScheme::place_write(Lsn lsn, std::uint32_t count, SimTime now,
                            std::vector<PhysOp>& ops) {
  if (tracker_) {
    for (std::uint32_t i = 0; i < count; ++i) {
      tracker_->record_write(lsn + i, now);
    }
  }
  std::uint32_t i = 0;
  std::vector<Lsn> chunk;
  std::vector<std::uint32_t> vers;
  while (i < count) {
    // Algorithm 1 resolves at request granularity: the update path is
    // taken when this request re-writes data whose previous version is
    // cached as a whole extent (a full page batch or the entire remaining
    // run). Partially overlapping writes are treated as new data — they
    // re-enter a Work page and the stale fragments are invalidated.
    const std::uint32_t remaining = count - i;
    const std::uint32_t batch = cached_batch_len(lsn + i, remaining);
    if (batch == remaining || batch == subpages_per_page()) {
      i += update_cached_run(lsn + i, remaining, now, ops);
      continue;
    }
    // Future-work extension: data seen for the first time is predicted
    // infrequently-updated and may be combined into shared Work pages.
    // (record_write above already counted this write: count == 1 means
    // never written before.)
    if (opts_.combine_cold && tracker_ &&
        tracker_->write_count(lsn + i) <= 1) {
      std::uint32_t cold_run = 1;
      while (i + cold_run < count &&
             tracker_->write_count(lsn + i + cold_run) <= 1) {
        ++cold_run;
      }
      const std::uint32_t wrote = append_cold(lsn + i, cold_run, now, ops);
      if (wrote > 0) {
        i += wrote;
        continue;
      }
      // No SLC space: fall through to the normal path's MLC fallback.
    }
    // New data (or misaligned overlap / MLC-resident): pack the run into
    // fresh Work pages, one request per page (Figure 3's W1/W2/W3).
    chunk.clear();
    vers.clear();
    while (i < count && chunk.size() < subpages_per_page()) {
      chunk.push_back(lsn + i);
      vers.push_back(bump_version(lsn + i));
      ++i;
    }
    const auto alloc = program_new_slc_page(next_plane(), BlockLevel::kWork,
                                            chunk, vers, now,
                                            /*host=*/true, ops);
    if (!alloc) {
      for (const Lsn l : chunk) versions_[l] -= 1;
      direct_mlc_write(chunk.front(),
                       static_cast<std::uint32_t>(chunk.size()), now, ops);
    }
  }
}

void IpuScheme::relocate_slc_page(BlockId victim, PageId page, SimTime now,
                                  std::vector<PhysOp>& ops) {
  nand::Block& blk = array_.block(victim);
  const nand::Page& pg = blk.page(page);

  std::vector<Lsn> live;
  std::vector<std::uint32_t> vers;
  for (std::uint32_t s = 0; s < subpages_per_page(); ++s) {
    const nand::Subpage sp =
        array_.subpage(victim, page, static_cast<SubpageId>(s));
    if (sp.state == nand::SubpageState::kValid) {
      live.push_back(sp.owner_lsn);
      vers.push_back(sp.version);
    }
  }
  PPSSD_CHECK(!live.empty());

  // Degraded movement (Section 3.2 / Figure 4): updated pages keep their
  // level, never-updated pages sink one level; cold Work pages leave the
  // cache entirely.
  const bool updated = ftl::page_updated(pg);
  const auto cur = static_cast<std::uint8_t>(blk.level());
  BlockLevel dest;
  if (!opts_.use_levels) {
    dest = updated ? BlockLevel::kWork : BlockLevel::kHighDensity;
  } else {
    dest = updated ? blk.level() : static_cast<BlockLevel>(cur - 1);
  }

  if (dest == BlockLevel::kHighDensity) {
    evict_page_to_mlc(victim, page, now, ops);
    return;
  }
  const auto alloc =
      program_new_slc_page(array_.block_static(victim).plane, dest, live,
                           vers, now, /*host=*/false, ops);
  if (!alloc) {
    // No SLC destination: fall back to ejecting the page's data.
    evict_page_to_mlc(victim, page, now, ops);
  }
}

void IpuScheme::on_slc_block_erased(BlockId block) {
  offsets_.clear_block(array_.geometry(), block);
  for (auto& open : cold_pages_) {
    if (open.block == block) open = ColdOpenPage{};
  }
}

void IpuScheme::on_slc_page_programmed(BlockId block, PageId page,
                                       std::span<const Lsn> lsns,
                                       bool first_program) {
  if (!first_program) return;
  // Combined cold pages (and GC moves of them) can carry non-contiguous
  // LSNs; those pages need per-slot mapping entries, not an extent tag.
  for (std::size_t i = 1; i < lsns.size(); ++i) {
    if (lsns[i] != lsns[i - 1] + 1) return;
  }
  offsets_.open_page(array_.geometry(), block, page, lsns.front(),
                     static_cast<std::uint8_t>(lsns.size()), /*offset=*/0);
}

void IpuScheme::save_scheme_state(io::StateSink& sink) const {
  offsets_.save(sink);
  sink.boolean(tracker_ != nullptr);
  if (tracker_) tracker_->save(sink);
  sink.vec(cold_pages_);
}

void IpuScheme::restore_scheme_state(io::StateSource& src) {
  offsets_.restore(src);
  // Options (and with them the tracker's existence) are config-derived and
  // applied before restore; the checkpoint key pins them, so a mismatch
  // here is a programming error, not data corruption.
  const bool has_tracker = src.boolean();
  PPSSD_CHECK_MSG(has_tracker == (tracker_ != nullptr),
                  "warm-start checkpoint disagrees on combine_cold tracker");
  if (tracker_) tracker_->restore(src);
  std::vector<ColdOpenPage> cold = src.vec<ColdOpenPage>();
  PPSSD_CHECK_MSG(src.ok() && cold.size() == cold_pages_.size(),
                  "warm-start checkpoint does not match cold-page shape");
  cold_pages_ = std::move(cold);
}

}  // namespace ppssd::cache
