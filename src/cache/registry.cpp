#include "cache/registry.h"

#include <algorithm>
#include <cctype>

// For the complete Scheme type: make_scheme returns unique_ptr<Scheme>,
// whose deleter needs the definition.
#include "cache/scheme.h"
#include "common/check.h"

namespace ppssd::cache {

namespace detail {
// Link hooks, one defined in each builtin scheme's translation unit.
// ppssd_cache is a static library: a consumer that names schemes only by
// string references no symbol of the scheme objects, so the linker would
// drop them — and their self-registering SchemeRegistrar constructors
// would never run. Calling these no-ops from instance() creates the
// undefined references that force the scheme objects into every binary
// that uses the registry. (An address-only anchor is not enough: the
// compiler folds away unused address constants together with their
// relocations.)
void baseline_scheme_link();
void mga_scheme_link();
void ipu_scheme_link();
void ips_scheme_link();
}  // namespace detail

namespace {

bool iequals(std::string_view a, std::string_view b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
           return std::tolower(static_cast<unsigned char>(x)) ==
                  std::tolower(static_cast<unsigned char>(y));
         });
}

}  // namespace

void SchemeOptions::set(std::string_view key, std::string_view value) {
  for (auto& [k, v] : entries) {
    if (k == key) {
      v = std::string(value);
      return;
    }
  }
  entries.emplace_back(std::string(key), std::string(value));
}

const std::string* SchemeOptions::find(std::string_view key) const {
  for (const auto& [k, v] : entries) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool SchemeOptions::flag(std::string_view key, bool fallback) const {
  const std::string* v = find(key);
  if (v == nullptr) return fallback;
  if (*v == "1" || *v == "true") return true;
  if (*v == "0" || *v == "false") return false;
  PPSSD_CHECK_MSG(false, ("scheme option '" + std::string(key) +
                          "' must be a boolean (0/1/true/false), got '" + *v +
                          "'")
                             .c_str());
  return fallback;
}

SchemeRegistry& SchemeRegistry::instance() {
  detail::baseline_scheme_link();
  detail::mga_scheme_link();
  detail::ipu_scheme_link();
  detail::ips_scheme_link();
  static SchemeRegistry registry;
  return registry;
}

void SchemeRegistry::add(SchemeInfo info) {
  PPSSD_CHECK_MSG(!info.name.empty(), "scheme name must not be empty");
  PPSSD_CHECK(info.factory != nullptr);
  PPSSD_CHECK(info.footprint != nullptr);
  PPSSD_CHECK_MSG(find(info.name) == nullptr,
                  ("scheme '" + info.name + "' already registered").c_str());
  schemes_.push_back(std::move(info));
  std::sort(schemes_.begin(), schemes_.end(),
            [](const SchemeInfo& a, const SchemeInfo& b) {
              if (a.order != b.order) return a.order < b.order;
              return a.name < b.name;
            });
}

const SchemeInfo* SchemeRegistry::find(std::string_view name) const {
  for (const SchemeInfo& s : schemes_) {
    if (iequals(s.name, name)) return &s;
  }
  return nullptr;
}

const SchemeInfo& SchemeRegistry::resolve(std::string_view name) const {
  const SchemeInfo* info = find(name);
  if (info == nullptr) {
    PPSSD_CHECK_MSG(false, ("unknown scheme '" + std::string(name) +
                            "'; known schemes: " + known_names())
                               .c_str());
  }
  return *info;
}

std::vector<std::string> SchemeRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(schemes_.size());
  for (const SchemeInfo& s : schemes_) out.push_back(s.name);
  return out;
}

std::string SchemeRegistry::known_names() const {
  std::string out;
  for (const SchemeInfo& s : schemes_) {
    if (!out.empty()) out += ", ";
    out += s.name;
  }
  return out;
}

SchemeRegistrar::SchemeRegistrar(SchemeInfo info) {
  SchemeRegistry::instance().add(std::move(info));
}

std::unique_ptr<Scheme> make_scheme(std::string_view name,
                                    const SsdConfig& cfg,
                                    const SchemeOptions& opts) {
  const SchemeInfo& info = SchemeRegistry::instance().resolve(name);
  return info.factory(cfg, opts);
}

}  // namespace ppssd::cache
