#include "cache/scheme.h"

#include <algorithm>
#include <array>
#include <utility>

#include "cache/registry.h"
#include "common/check.h"
#include "common/state_io.h"
#include "nand/page.h"

namespace ppssd::cache {

namespace {
/// Bound on GC passes triggered by a single host request, so one request
/// cannot stall forever on a pathological cache state (incremental GC).
constexpr std::uint32_t kMaxGcPassesPerRequest = 1;
}  // namespace

Scheme::Scheme(const SsdConfig& cfg)
    : cfg_(cfg),
      array_(cfg),
      bm_(array_),
      map_(array_.geometry().logical_subpages()),
      ber_model_(cfg.ber),
      ecc_model_(cfg.ecc),
      versions_(array_.geometry().logical_subpages(), 0),
      spp_(cfg.geometry.subpages_per_page()) {}

void Scheme::attach_telemetry(telemetry::Telemetry* telemetry) {
  if (telemetry == nullptr) {
    tlog_ = nullptr;
    tl_writes_hit_ = tl_writes_miss_ = tl_partial_programs_ = nullptr;
    tl_evicted_ = tl_gc_moved_ = tl_direct_mlc_ = nullptr;
    tl_reads_slc_ = tl_reads_mlc_ = tl_reads_unmapped_ = nullptr;
    tl_gc_slc_ = tl_gc_mlc_ = nullptr;
    tl_read_ber_ = tl_victim_util_ = nullptr;
    on_attach_telemetry(nullptr, {});
    return;
  }
  auto& reg = telemetry->registry();
  tlog_ = telemetry->trace();
  const telemetry::Labels labels{{"scheme", name()}};
  const auto with = [&labels](const char* key, const char* value) {
    telemetry::Labels l = labels;
    l.push_back({key, value});
    return l;
  };
  tl_writes_hit_ = reg.counter("cache_writes", with("result", "hit"));
  tl_writes_miss_ = reg.counter("cache_writes", with("result", "miss"));
  tl_partial_programs_ = reg.counter("partial_program_subpages", labels);
  tl_evicted_ = reg.counter("evicted_subpages", labels);
  tl_gc_moved_ = reg.counter("gc_moved_subpages", labels);
  tl_direct_mlc_ = reg.counter("direct_mlc_subpages", labels);
  tl_reads_slc_ = reg.counter("host_reads", with("region", "slc"));
  tl_reads_mlc_ = reg.counter("host_reads", with("region", "mlc"));
  tl_reads_unmapped_ = reg.counter("host_reads", with("region", "unmapped"));
  tl_gc_slc_ = reg.counter("gc_episodes", with("region", "slc"));
  tl_gc_mlc_ = reg.counter("gc_episodes", with("region", "mlc"));
  tl_read_ber_ = reg.histogram("host_read_ber", labels, 1e-9, 1.0);
  // Victim utilisation lives in [0, 1]; headroom keeps 1.0 in-range.
  tl_victim_util_ = reg.histogram("gc_victim_utilization", labels, 1e-3, 2.0);
  reg.gauge_fn("write_amplification", labels, [this] {
    const auto host = metrics_.host_subpages_written;
    if (host == 0) return 1.0;
    return static_cast<double>(metrics_.slc_subpages_written +
                               metrics_.mlc_subpages_written) /
           static_cast<double>(host);
  });
  bm_.attach_telemetry(reg, labels);
  greedy_.attach_telemetry(reg, labels);
  on_attach_telemetry(&reg, labels);
}

std::uint32_t Scheme::next_plane() {
  const std::uint32_t p = rr_plane_;
  rr_plane_ = (rr_plane_ + 1) % array_.geometry().planes();
  return p;
}

std::uint32_t Scheme::bump_version(Lsn lsn) {
  PPSSD_CHECK(lsn < versions_.size());
  return ++versions_[lsn];
}

double Scheme::ber_of(const PhysicalAddress& addr) const {
  return ber_model_.raw_ber(
      array_.disturb_of(addr.block, addr.page, addr.subpage));
}

void Scheme::emit_program(BlockId block, std::uint32_t subpages,
                          bool background, std::vector<PhysOp>& ops) {
  const nand::BlockStatic& bs = array_.block_static(block);
  PhysOp op;
  op.chip = bs.chip;
  op.channel = bs.channel;
  op.kind = PhysOp::Kind::kProgram;
  op.mode = bs.mode;
  op.subpages = subpages;
  op.background = background;
  op.origin = background ? OpOrigin::kGc : fg_origin_;
  // Relocation programs consume data produced by a GC page read earlier in
  // this request; host programs have no intra-request data dependency.
  if (background) op.depends_on = gc_read_dep_;
  ops.push_back(op);
}

void Scheme::emit_page_read(BlockId block, PageId /*page*/,
                            std::uint32_t subpages, double max_ber,
                            bool background, std::vector<PhysOp>& ops) {
  const nand::BlockStatic& bs = array_.block_static(block);
  PhysOp op;
  op.chip = bs.chip;
  op.channel = bs.channel;
  op.kind = PhysOp::Kind::kRead;
  op.mode = bs.mode;
  op.subpages = subpages;
  op.ber = max_ber;
  op.background = background;
  op.origin = background ? OpOrigin::kGc : fg_origin_;
  ops.push_back(op);
  array_.count_read(block);
}

void Scheme::emit_erase(BlockId block, std::vector<PhysOp>& ops) {
  const nand::BlockStatic& bs = array_.block_static(block);
  PhysOp op;
  op.chip = bs.chip;
  op.channel = bs.channel;
  op.kind = PhysOp::Kind::kErase;
  op.mode = bs.mode;
  op.subpages = 0;
  op.background = true;
  op.origin = OpOrigin::kGc;
  ops.push_back(op);
}

// ---- invalidation ----------------------------------------------------------

void Scheme::retire_slot(Lsn lsn, const PhysicalAddress& addr) {
  array_.invalidate(addr.block, addr.page, addr.subpage);
  map_.clear(lsn);
  if (array_.block_static(addr.block).mode == CellMode::kSlc) {
    on_slc_slot_invalidated(addr);
  }
}

void Scheme::invalidate_previous(Lsn lsn) {
  // Fused supersede: one mapping-table access resolves and unbinds the
  // old slot, then the fused array invalidate does the single page
  // lookup + bucket move (no per-layer re-resolution).
  const PhysicalAddress addr = map_.take(lsn);
  if (addr.valid()) {
    array_.invalidate(addr.block, addr.page, addr.subpage);
    if (array_.block_static(addr.block).mode == CellMode::kSlc) {
      on_slc_slot_invalidated(addr);
    }
  }
}

// ---- placement helpers -------------------------------------------------------

std::optional<ftl::PageAlloc> Scheme::program_new_slc_page(
    std::uint32_t plane, BlockLevel level, std::span<const Lsn> lsns,
    std::span<const std::uint32_t> versions, SimTime now, bool host,
    std::vector<PhysOp>& ops) {
  PPSSD_CHECK(!lsns.empty() && lsns.size() <= spp_);
  PPSSD_CHECK(lsns.size() == versions.size());
  const auto alloc = bm_.allocate_page(plane, level);
  if (!alloc) return std::nullopt;

  std::array<nand::SlotWrite, nand::kMaxSubpagesPerPage> writes;
  for (std::size_t i = 0; i < lsns.size(); ++i) {
    // Whether this is a host supersede or a GC move, the previous copy
    // retires first; the map transition is then a clean clear+set.
    invalidate_previous(lsns[i]);
    writes[i] = {static_cast<SubpageId>(i), lsns[i], versions[i]};
  }
  array_.program(alloc->block, alloc->page,
                 std::span<const nand::SlotWrite>(writes.data(), lsns.size()),
                 now);
  for (std::size_t i = 0; i < lsns.size(); ++i) {
    map_.set(lsns[i], PhysicalAddress{alloc->block, alloc->page,
                                      static_cast<SubpageId>(i)});
  }
  on_slc_page_programmed(alloc->block, alloc->page, lsns, /*first=*/true);

  metrics_.slc_subpages_written += lsns.size();
  if (host) {
    metrics_.host_subpages_written += lsns.size();
    metrics_.level_subpages[static_cast<std::size_t>(alloc->level)] +=
        lsns.size();
  } else {
    metrics_.gc_moved_subpages += lsns.size();
    if (tl_gc_moved_) tl_gc_moved_->inc(lsns.size());
  }
  emit_program(alloc->block, static_cast<std::uint32_t>(lsns.size()),
               /*background=*/!host, ops);
  return alloc;
}

void Scheme::program_mlc_page(std::span<const Lsn> lsns,
                              std::span<const std::uint32_t> versions,
                              SimTime now, bool host, bool background,
                              std::vector<PhysOp>& ops,
                              std::uint32_t plane_hint) {
  PPSSD_CHECK(!lsns.empty() && lsns.size() <= spp_);
  // GC evictions stay plane-local (SSDsim-style copy out of the victim's
  // plane); host-path MLC writes stripe round-robin.
  std::uint32_t plane = plane_hint != UINT32_MAX ? plane_hint : next_plane();
  std::optional<ftl::PageAlloc> alloc;
  for (std::uint32_t attempt = 0; attempt < array_.geometry().planes();
       ++attempt) {
    maybe_mlc_gc(plane, now, ops);
    alloc = bm_.allocate_page(plane, BlockLevel::kHighDensity);
    if (alloc) break;
    plane = next_plane();
  }
  PPSSD_CHECK_MSG(alloc.has_value(), "MLC region exhausted beyond recovery");

  std::array<nand::SlotWrite, nand::kMaxSubpagesPerPage> writes;
  for (std::size_t i = 0; i < lsns.size(); ++i) {
    invalidate_previous(lsns[i]);
    writes[i] = {static_cast<SubpageId>(i), lsns[i], versions[i]};
  }
  array_.program(alloc->block, alloc->page,
                 std::span<const nand::SlotWrite>(writes.data(), lsns.size()),
                 now);
  for (std::size_t i = 0; i < lsns.size(); ++i) {
    map_.set(lsns[i], PhysicalAddress{alloc->block, alloc->page,
                                      static_cast<SubpageId>(i)});
  }
  metrics_.mlc_subpages_written += lsns.size();
  if (host) metrics_.host_subpages_written += lsns.size();
  emit_program(alloc->block, static_cast<std::uint32_t>(lsns.size()),
               background, ops);
}

void Scheme::evict_page_to_mlc(BlockId victim, PageId page, SimTime now,
                               std::vector<PhysOp>& ops) {
  // Stage and retire the page's valid data; the staged buffer flushes
  // into packed MLC pages at the end of the GC pass.
  for (std::uint32_t s = 0; s < spp_; ++s) {
    const nand::Subpage sp =
        array_.subpage(victim, page, static_cast<SubpageId>(s));
    if (sp.state != nand::SubpageState::kValid) continue;
    staged_evictions_.push_back({sp.owner_lsn, sp.version});
    retire_slot(sp.owner_lsn,
                PhysicalAddress{victim, page, static_cast<SubpageId>(s)});
  }
  if (staged_evictions_.size() >= 4 * spp_) {
    flush_evictions(array_.block_static(victim).plane, now, ops);
  }
}

void Scheme::flush_evictions(std::uint32_t plane, SimTime now,
                             std::vector<PhysOp>& ops) {
  std::size_t i = 0;
  std::array<Lsn, nand::kMaxSubpagesPerPage> lsns;
  std::array<std::uint32_t, nand::kMaxSubpagesPerPage> versions;
  while (i < staged_evictions_.size()) {
    std::size_t n = 0;
    while (n < spp_ && i < staged_evictions_.size()) {
      lsns[n] = staged_evictions_[i].lsn;
      versions[n] = staged_evictions_[i].version;
      ++n;
      ++i;
    }
    program_mlc_page(std::span<const Lsn>(lsns.data(), n),
                     std::span<const std::uint32_t>(versions.data(), n), now,
                     /*host=*/false, /*background=*/true, ops, plane);
    count_evicted(static_cast<std::uint32_t>(n));
  }
  if (i > 0 && tlog_ && tlog_->enabled(telemetry::TraceCategory::kMode)) {
    tlog_->instant(telemetry::TraceCategory::kMode, "evict_slc_to_mlc", now,
                   telemetry::kCacheLane,
                   {{"subpages", static_cast<double>(i)},
                    {"plane", static_cast<double>(plane)}});
  }
  staged_evictions_.clear();
}

void Scheme::direct_mlc_write(Lsn lsn, std::uint32_t count, SimTime now,
                              std::vector<PhysOp>& ops) {
  if (tl_direct_mlc_) tl_direct_mlc_->inc(count);
  std::uint32_t i = 0;
  std::vector<Lsn> chunk;
  std::vector<std::uint32_t> vers;
  while (i < count) {
    chunk.clear();
    vers.clear();
    while (i < count && chunk.size() < spp_) {
      chunk.push_back(lsn + i);
      vers.push_back(bump_version(lsn + i));
      ++i;
    }
    program_mlc_page(chunk, vers, now, /*host=*/true, /*background=*/false,
                     ops);
  }
}

std::uint64_t Scheme::prefill_mlc(std::uint64_t max_subpages,
                                  std::uint32_t free_floor_blocks) {
  const auto& geom = array_.geometry();
  max_subpages = std::min(max_subpages, geom.logical_subpages());
  std::uint64_t filled = 0;
  std::array<nand::SlotWrite, nand::kMaxSubpagesPerPage> writes;
  while (filled < max_subpages) {
    // Stop once the region is as full as an aged drive would run.
    std::uint32_t plane = next_plane();
    bool room = false;
    for (std::uint32_t attempts = 0; attempts < geom.planes(); ++attempts) {
      if (bm_.free_blocks(plane, CellMode::kMlc) > free_floor_blocks) {
        room = true;
        break;
      }
      plane = next_plane();
    }
    if (!room) break;

    const auto alloc = bm_.allocate_page(plane, BlockLevel::kHighDensity);
    PPSSD_CHECK(alloc.has_value());
    std::size_t n = 0;
    while (n < spp_ && filled < max_subpages) {
      const Lsn lsn = filled++;
      writes[n] = {static_cast<SubpageId>(n), lsn, bump_version(lsn)};
      ++n;
    }
    // Bulk setup entry point: frontier fill at sim time 0, skipping the
    // partial-program and forward-neighbour work of the general path.
    array_.prefill_page(alloc->block, alloc->page,
                        std::span<const nand::SlotWrite>(writes.data(), n));
    for (std::size_t i = 0; i < n; ++i) {
      map_.set(writes[i].lsn, PhysicalAddress{alloc->block, alloc->page,
                                              static_cast<SubpageId>(i)});
    }
  }
  reset_metrics();
  return filled;
}

// ---- garbage collection -----------------------------------------------------

void Scheme::maybe_slc_gc(std::uint32_t plane, SimTime now,
                          std::vector<PhysOp>& ops) {
  for (std::uint32_t pass = 0;
       pass < kMaxGcPassesPerRequest && bm_.needs_gc(plane, CellMode::kSlc);
       ++pass) {
    if (!slc_gc_once(plane, now, ops)) break;
  }
}

void Scheme::maybe_mlc_gc(std::uint32_t plane, SimTime now,
                          std::vector<PhysOp>& ops) {
  // Write-amplification guard: defer MLC GC until a victim reclaims a
  // worthwhile share of a block. The bar lowers as free space shrinks so
  // the region degrades gracefully instead of hitting a reclamation cliff.
  const std::uint32_t total_subpages =
      array_.geometry().pages_per_block(CellMode::kMlc) * spp_;
  const std::uint32_t free = bm_.free_blocks(plane, CellMode::kMlc);
  const std::uint32_t threshold = bm_.gc_threshold_blocks(CellMode::kMlc);
  std::uint32_t min_invalid = total_subpages / 4;
  if (free < threshold) {
    min_invalid = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(
               static_cast<std::uint64_t>(min_invalid) * free / threshold));
  }
  for (std::uint32_t pass = 0;
       pass < kMaxGcPassesPerRequest && bm_.needs_gc(plane, CellMode::kMlc);
       ++pass) {
    if (!mlc_gc_once(plane, now, ops, min_invalid)) break;
  }
}

bool Scheme::slc_gc_once(std::uint32_t plane, SimTime now,
                         std::vector<PhysOp>& ops) {
  BlockId victim =
      slc_policy().select_victim(array_, bm_, plane, CellMode::kSlc, now);
  if (victim == kInvalidBlock) {
    // The cache may be full of entirely-valid data (a pure cold flood):
    // no policy victim exists, but the cache must still drain. Fall back
    // to the block holding the oldest data (FIFO-ish eviction).
    double oldest = -1.0;
    bm_.for_each_candidate(plane, CellMode::kSlc, [&](BlockId b) {
      const auto& blk = array_.block(b);
      if (blk.programmed_subpages() == 0) return;
      const auto [sum, count] = ftl::IsrPolicy::age_sum(blk, now);
      const double age = count ? sum / static_cast<double>(count) : 0.0;
      if (age > oldest) {
        oldest = age;
        victim = b;
      }
    });
    if (victim == kInvalidBlock) return false;
  }
  if (gc_decision_hook_) {
    gc_decision_hook_(plane, CellMode::kSlc, victim, now);
  }
  if (flight_ != nullptr) {
    flight_->record(telemetry::introspect::FlightEvent{
        now, victim, plane, bm_.free_blocks(plane, CellMode::kSlc),
        telemetry::introspect::FlightEventKind::kGcDecision,
        static_cast<std::uint8_t>(CellMode::kSlc)});
  }

  nand::Block& blk = array_.block(victim);
  ++metrics_.slc_gc_count;
  const double util = static_cast<double>(blk.programmed_subpages()) /
                      blk.total_subpages();
  metrics_.gc_utilization.add(util);
  if (tl_gc_slc_) {
    tl_gc_slc_->inc();
    tl_victim_util_->observe(util);
  }
  if (tlog_ && tlog_->enabled(telemetry::TraceCategory::kGc)) {
    tlog_->instant(telemetry::TraceCategory::kGc, "slc_gc", now,
                   telemetry::kGcLane,
                   {{"victim", static_cast<double>(victim)},
                    {"plane", static_cast<double>(plane)},
                    {"utilization", util},
                    {"valid", static_cast<double>(blk.valid_subpages())}});
  }

  const std::size_t victim_ops_start = ops.size();
  for (std::uint32_t p = 0; p < blk.write_frontier(); ++p) {
    const auto page_id = static_cast<PageId>(p);
    std::uint32_t valid = 0;
    double max_ber = 0.0;
    for (std::uint32_t s = 0; s < spp_; ++s) {
      if (array_.subpage_state(victim, page_id, static_cast<SubpageId>(s)) ==
          nand::SubpageState::kValid) {
        ++valid;
        max_ber = std::max(
            max_ber,
            ber_of(PhysicalAddress{victim, page_id,
                                   static_cast<SubpageId>(s)}));
      }
    }
    if (valid == 0) continue;
    if (relocation_reads_source()) {
      emit_page_read(victim, page_id, valid, max_ber, /*background=*/true,
                     ops);
      gc_read_dep_ = static_cast<std::uint32_t>(ops.size() - 1);
    }
    relocate_slc_page(victim, page_id, now, ops);
    PPSSD_DCHECK_MSG(
        array_.page_count_state(victim, page_id, nand::SubpageState::kValid) ==
            0,
        "relocate_slc_page left valid data behind");
  }
  flush_evictions(array_.block_static(victim).plane, now, ops);
  gc_read_dep_ = PhysOp::kNoDependency;

  emit_erase(victim, ops);
  // The victim may be erased only after its valid data has been rewritten
  // elsewhere: chain the erase behind the last relocation op.
  if (ops.size() - 1 > victim_ops_start) {
    ops.back().depends_on = static_cast<std::uint32_t>(ops.size() - 2);
  }
  array_.erase(victim, now);
  on_slc_block_erased(victim);
  bm_.release_block(victim);
  return true;
}

bool Scheme::mlc_gc_once(std::uint32_t plane, SimTime now,
                         std::vector<PhysOp>& ops,
                         std::uint32_t min_invalid) {
  const BlockId victim =
      greedy_.select_victim(array_, bm_, plane, CellMode::kMlc, now);
  if (victim == kInvalidBlock) return false;

  nand::Block& blk = array_.block(victim);
  if (blk.invalid_subpages() < min_invalid) return false;
  if (gc_decision_hook_) {
    gc_decision_hook_(plane, CellMode::kMlc, victim, now);
  }
  if (flight_ != nullptr) {
    flight_->record(telemetry::introspect::FlightEvent{
        now, victim, plane, bm_.free_blocks(plane, CellMode::kMlc),
        telemetry::introspect::FlightEventKind::kGcDecision,
        static_cast<std::uint8_t>(CellMode::kMlc)});
  }
  ++metrics_.mlc_gc_count;
  if (tl_gc_mlc_) tl_gc_mlc_->inc();
  if (tlog_ && tlog_->enabled(telemetry::TraceCategory::kGc)) {
    tlog_->instant(telemetry::TraceCategory::kGc, "mlc_gc", now,
                   telemetry::kGcLane,
                   {{"victim", static_cast<double>(victim)},
                    {"plane", static_cast<double>(plane)},
                    {"invalid", static_cast<double>(blk.invalid_subpages())},
                    {"valid", static_cast<double>(blk.valid_subpages())}});
  }

  // MLC GC can run nested inside SLC victim processing (an eviction flush
  // below the free threshold triggers it); keep the outer read dependency
  // intact for the ops emitted after this pass returns.
  const std::uint32_t outer_read_dep = gc_read_dep_;
  const std::size_t victim_ops_start = ops.size();

  // Pack the victim's valid subpages into fresh MLC pages of the same
  // plane: one read per source page, one program per packed destination.
  std::array<nand::SlotWrite, nand::kMaxSubpagesPerPage> pack;
  std::size_t packed = 0;
  auto flush_pack = [&] {
    if (packed == 0) return;
    const auto alloc = bm_.allocate_page(plane, BlockLevel::kHighDensity);
    PPSSD_CHECK_MSG(alloc.has_value(),
                    "no MLC destination during GC (threshold too low)");
    for (std::size_t i = 0; i < packed; ++i) {
      pack[i].slot = static_cast<SubpageId>(i);
      invalidate_previous(pack[i].lsn);
    }
    array_.program(alloc->block, alloc->page,
                   std::span<const nand::SlotWrite>(pack.data(), packed),
                   now);
    for (std::size_t i = 0; i < packed; ++i) {
      map_.set(pack[i].lsn, PhysicalAddress{alloc->block, alloc->page,
                                            static_cast<SubpageId>(i)});
    }
    metrics_.mlc_subpages_written += packed;
    emit_program(alloc->block, static_cast<std::uint32_t>(packed),
                 /*background=*/true, ops);
    packed = 0;
  };

  for (std::uint32_t p = 0; p < blk.write_frontier(); ++p) {
    const auto page_id = static_cast<PageId>(p);
    std::uint32_t valid = 0;
    double max_ber = 0.0;
    for (std::uint32_t s = 0; s < spp_; ++s) {
      if (array_.subpage_state(victim, page_id, static_cast<SubpageId>(s)) !=
          nand::SubpageState::kValid) {
        continue;
      }
      ++valid;
      max_ber = std::max(
          max_ber, ber_of(PhysicalAddress{victim, page_id,
                                          static_cast<SubpageId>(s)}));
    }
    if (valid == 0) continue;
    emit_page_read(victim, page_id, valid, max_ber, /*background=*/true, ops);
    gc_read_dep_ = static_cast<std::uint32_t>(ops.size() - 1);
    for (std::uint32_t s = 0; s < spp_; ++s) {
      const nand::Subpage sp =
          array_.subpage(victim, page_id, static_cast<SubpageId>(s));
      if (sp.state != nand::SubpageState::kValid) continue;
      pack[packed++] = {0, sp.owner_lsn, sp.version};
      if (packed == spp_) flush_pack();
    }
  }
  flush_pack();

  emit_erase(victim, ops);
  if (ops.size() - 1 > victim_ops_start) {
    ops.back().depends_on = static_cast<std::uint32_t>(ops.size() - 2);
  }
  gc_read_dep_ = outer_read_dep;
  array_.erase(victim, now);
  bm_.release_block(victim);
  return true;
}

// ---- host entry points -------------------------------------------------------

void Scheme::host_write(Lsn lsn, std::uint32_t count, SimTime now,
                        std::vector<PhysOp>& ops) {
  PPSSD_CHECK(count > 0);
  PPSSD_CHECK(lsn + count <= array_.geometry().logical_subpages());
  if (tl_writes_hit_) {
    // Cache hit = this write supersedes data currently held in SLC.
    std::uint64_t hits = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
      if (cached_in_slc(lsn + i)) ++hits;
    }
    tl_writes_hit_->inc(hits);
    tl_writes_miss_->inc(count - hits);
  }
  place_write(lsn, count, now, ops);
  // Algorithm 1: insert, then collect where thresholds are crossed. The
  // pressure bitmask makes this iterate-set-bits instead of an all-planes
  // scan; re-reading the mask after each plane's GC keeps the semantics of
  // the original ascending scan (a pass can flip later planes' bits, and
  // needs_gc is re-checked per region at visit time exactly as before).
  for (std::uint32_t p = bm_.next_pressured_plane(0);
       p != ftl::BlockManager::kNoPlane; p = bm_.next_pressured_plane(p + 1)) {
    if (bm_.needs_gc(p, CellMode::kSlc)) maybe_slc_gc(p, now, ops);
    if (bm_.needs_gc(p, CellMode::kMlc)) maybe_mlc_gc(p, now, ops);
  }
}

void Scheme::host_read(Lsn lsn, std::uint32_t count, SimTime now,
                       std::vector<PhysOp>& ops) {
  PPSSD_CHECK(count > 0);
  PPSSD_CHECK(lsn + count <= array_.geometry().logical_subpages());
  (void)now;

  // Resolve every subpage, then coalesce consecutive same-page hits into
  // single page reads.
  struct Resolved {
    PhysicalAddress addr;  // invalid => unmapped
    double ber;
  };
  std::vector<Resolved> resolved;
  resolved.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const Lsn cur = lsn + i;
    const PhysicalAddress addr = map_.lookup(cur);
    if (!addr.valid()) {
      // Never written: the FTL answers from the mapping table (zero-fill)
      // without touching flash — no op, no error exposure.
      resolved.push_back({PhysicalAddress{}, 0.0});
      ++metrics_.host_reads_unmapped;
      if (tl_reads_unmapped_) tl_reads_unmapped_->inc();
      continue;
    }
    const double ber = ber_of(addr);
    resolved.push_back({addr, ber});
    metrics_.read_ber.add(ber);
    if (tl_read_ber_) tl_read_ber_->observe(ber);
    if (array_.block_static(addr.block).mode == CellMode::kSlc) {
      ++metrics_.host_reads_slc;
      if (tl_reads_slc_) tl_reads_slc_->inc();
    } else {
      ++metrics_.host_reads_mlc;
      if (tl_reads_mlc_) tl_reads_mlc_->inc();
    }
  }

  std::size_t i = 0;
  while (i < resolved.size()) {
    const auto& first = resolved[i];
    std::size_t j = i + 1;
    double max_ber = first.ber;
    if (first.addr.valid()) {
      while (j < resolved.size() && resolved[j].addr.valid() &&
             resolved[j].addr.block == first.addr.block &&
             resolved[j].addr.page == first.addr.page) {
        max_ber = std::max(max_ber, resolved[j].ber);
        ++j;
      }
      emit_page_read(first.addr.block, first.addr.page,
                     static_cast<std::uint32_t>(j - i), max_ber,
                     /*background=*/false, ops);
    } else {
      // Unmapped run: served from the mapping table, no flash work.
      while (j < resolved.size() && !resolved[j].addr.valid()) {
        ++j;
      }
    }
    i = j;
  }
}

// ---- introspection ------------------------------------------------------------

void Scheme::inspect(telemetry::introspect::StateSink& sink) const {
  sink.value("mapped_lsns", map_.mapped_count());
  sink.value("logical_subpages", map_.logical_subpages());
  const nand::Geometry& geom = array_.geometry();
  std::uint64_t slc_valid = 0;
  for (std::uint32_t i = 0; i < geom.slc_block_count(); ++i) {
    slc_valid += array_.block(geom.slc_block_at(i)).valid_subpages();
  }
  sink.value("slc_cached_subpages", slc_valid);
  sink.value("staged_evictions",
             static_cast<std::uint64_t>(staged_evictions_.size()));
}

// ---- warm-start checkpointing -------------------------------------------------

void Scheme::save(io::StateSink& sink) const {
  PPSSD_CHECK_MSG(staged_evictions_.empty(),
                  "checkpointing with staged evictions in flight");
  PPSSD_CHECK_MSG(gc_read_dep_ == PhysOp::kNoDependency,
                  "checkpointing inside GC victim processing");
  array_.save(sink);
  bm_.save(sink);
  map_.save(sink);
  sink.vec(versions_);
  sink.u32(rr_plane_);
  save_scheme_state(sink);
}

void Scheme::restore(io::StateSource& src) {
  // Order matters: the block manager's victim-index rebuild reads invalid
  // counts out of the restored array.
  array_.restore(src);
  bm_.restore(src);
  map_.restore(src);
  (void)src.vec_into(versions_);
  const std::uint32_t rr = src.u32();
  PPSSD_CHECK_MSG(src.ok(),
                  "warm-start checkpoint does not match version-table shape");
  rr_plane_ = rr;
  restore_scheme_state(src);
}

// ---- footprint & invariants ---------------------------------------------------

ftl::FootprintReport Scheme::footprint() const {
  const ftl::MappingFootprint fp(array_.geometry());
  return SchemeRegistry::instance().resolve(name()).footprint(fp);
}

void Scheme::check_consistency() const {
  const auto& geom = array_.geometry();

  // Physical walk: every valid subpage is the current mapping of its
  // owner, counters match, and versions agree.
  std::uint64_t valid_total = 0;
  for (BlockId b = 0; b < geom.total_blocks(); ++b) {
    const auto& blk = array_.block(b);
    std::uint32_t recount_valid = 0;
    std::uint32_t recount_invalid = 0;
    std::uint64_t recount_wt_sum = 0;
    nand::AgeHistogram recount_hist;
    recount_hist.clear(blk.age_histogram().base_ms());
    for (std::uint32_t p = 0; p < blk.page_count(); ++p) {
      const auto& page = blk.page(static_cast<PageId>(p));
      for (std::uint32_t s = 0; s < blk.subpages_per_page(); ++s) {
        const nand::Subpage sp = array_.subpage(b, static_cast<PageId>(p),
                                                static_cast<SubpageId>(s));
        if (sp.state == nand::SubpageState::kInvalid) ++recount_invalid;
        if (sp.state != nand::SubpageState::kValid) continue;
        recount_wt_sum += sp.write_time_ms;
        if (page.program_ops() == 1) recount_hist.add(sp.write_time_ms);
        ++recount_valid;
        ++valid_total;
        const Lsn lsn = sp.owner_lsn;
        const PhysicalAddress mapped = map_.lookup(lsn);
        PPSSD_CHECK_MSG(mapped.valid(),
                        "valid subpage whose owner is unmapped");
        PPSSD_CHECK_MSG(mapped.block == b &&
                            mapped.page == static_cast<PageId>(p) &&
                            mapped.subpage == static_cast<SubpageId>(s),
                        "valid subpage is not its owner's current mapping");
        PPSSD_CHECK_MSG(sp.version == versions_[lsn],
                        "stored version is stale");
      }
    }
    PPSSD_CHECK(recount_valid == blk.valid_subpages());
    PPSSD_CHECK(recount_invalid == blk.invalid_subpages());
    // The GC-score aggregates must agree with a from-scratch rebuild.
    PPSSD_CHECK_MSG(recount_wt_sum == blk.sum_write_time_ms(),
                    "running write-time sum is stale");
    PPSSD_CHECK_MSG(recount_hist == blk.age_histogram(),
                    "age histogram disagrees with page state");
  }
  // Bijection: mapped LSNs == valid physical subpages (each valid subpage
  // points back at its unique mapping, counts close the loop).
  PPSSD_CHECK(valid_total == map_.mapped_count());
  // The GC victim index must mirror block states and invalid counts.
  bm_.check_victim_index();
}

}  // namespace ppssd::cache
