// Scheme plugin registry.
//
// Schemes self-register by name (SimpleSSD-style modular components): each
// scheme's translation unit defines a file-scope SchemeRegistrar whose
// constructor adds a {factory, metadata} record to the process-wide
// registry. Consumers — Ssd construction, the experiment runner, every
// figure bench — resolve schemes by string name and enumerate the registry
// instead of switching over a closed enum, so registering a new scheme
// automatically gives it a curve in every figure and a cell family in the
// perf report.
//
// Enumeration order is deterministic: records sort by their explicit
// `order` field (ties by name), never by static-initialisation order,
// which is unspecified across translation units.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/config.h"
#include "ftl/mapping_footprint.h"

namespace ppssd::cache {

class Scheme;

/// Opaque per-scheme option bag: ordered key/value pairs handed to the
/// scheme factory. Generalises the former IPU-only options plumbing —
/// each scheme parses the keys it understands and rejects the rest.
/// Insertion order is preserved (it participates in experiment cache
/// keys), and keys are unique.
struct SchemeOptions {
  std::vector<std::pair<std::string, std::string>> entries;

  [[nodiscard]] bool empty() const { return entries.empty(); }

  /// Set `key` to `value`, overwriting an existing entry in place.
  void set(std::string_view key, std::string_view value);

  /// Value of `key`, or nullptr when absent.
  [[nodiscard]] const std::string* find(std::string_view key) const;

  /// Boolean knob: "1"/"true" => true, "0"/"false" => false, absent =>
  /// `fallback`. Aborts on any other value.
  [[nodiscard]] bool flag(std::string_view key, bool fallback) const;
};

/// One registered scheme: identity, construction, and the metadata the
/// generic layers need (enumeration position, Figure 11 memory model).
struct SchemeInfo {
  std::string name;         // canonical display name ("IPU")
  std::string description;  // one-line summary for docs/diagnostics
  /// Enumeration position among the paper schemes (Baseline=0 … IPS=3);
  /// ties break by name.
  int order = 0;
  std::unique_ptr<Scheme> (*factory)(const SsdConfig& cfg,
                                     const SchemeOptions& opts) = nullptr;
  /// Mapping-table memory model (Figure 11) for this scheme.
  ftl::FootprintReport (*footprint)(const ftl::MappingFootprint& fp) = nullptr;
};

class SchemeRegistry {
 public:
  /// The process-wide registry (constructed on first use, so registrar
  /// constructors may run in any static-initialisation order).
  static SchemeRegistry& instance();

  /// Register a scheme. Duplicate names (case-insensitive) abort.
  void add(SchemeInfo info);

  /// Lookup by case-insensitive name; nullptr when unknown.
  [[nodiscard]] const SchemeInfo* find(std::string_view name) const;

  /// Lookup by name; aborts with the known-name list when unknown.
  [[nodiscard]] const SchemeInfo& resolve(std::string_view name) const;

  /// Canonical names in deterministic enumeration order.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Comma-separated canonical names (error messages, --help text).
  [[nodiscard]] std::string known_names() const;

  [[nodiscard]] const std::vector<SchemeInfo>& schemes() const {
    return schemes_;
  }

 private:
  std::vector<SchemeInfo> schemes_;  // kept sorted by (order, name)
};

/// Static self-registration helper: define one at file scope in the
/// scheme's translation unit, together with a no-op link hook that
/// registry.cpp calls so static-library builds cannot drop the scheme's
/// object (and with it the registrar).
struct SchemeRegistrar {
  explicit SchemeRegistrar(SchemeInfo info);
};

/// Construct a scheme by registry name. Aborts (listing known names) on an
/// unknown scheme; option parsing is delegated to the scheme's factory.
[[nodiscard]] std::unique_ptr<Scheme> make_scheme(
    std::string_view name, const SsdConfig& cfg,
    const SchemeOptions& opts = {});

}  // namespace ppssd::cache
