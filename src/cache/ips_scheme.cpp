#include "cache/ips_scheme.h"

#include <algorithm>
#include <array>
#include <optional>
#include <vector>

#include "cache/registry.h"
#include "common/check.h"

namespace ppssd::cache {

namespace detail {
const SchemeRegistrar ips_registrar(SchemeInfo{
    "IPS",
    "in-place switch: SLC cache promoted to dense mode by reprogramming",
    /*order=*/3,
    [](const SsdConfig& cfg,
       const SchemeOptions& opts) -> std::unique_ptr<Scheme> {
      auto scheme = std::make_unique<IpsScheme>(cfg);
      if (!opts.empty()) {
        scheme->set_options(IpsScheme::Options::from_scheme_options(opts));
      }
      return scheme;
    },
    [](const ftl::MappingFootprint& fp) { return fp.ips(); },
});

// Called by SchemeRegistry::instance() to pin this translation unit (and
// with it the registrar above) into static-library consumers.
void ips_scheme_link() {}
}  // namespace detail

SchemeOptions IpsScheme::Options::to_scheme_options() const {
  SchemeOptions opts;
  opts.set("rpg", use_reprogram ? "1" : "0");
  return opts;
}

IpsScheme::Options IpsScheme::Options::from_scheme_options(
    const SchemeOptions& opts) {
  for (const auto& [key, value] : opts.entries) {
    PPSSD_CHECK_MSG(key == "rpg",
                    ("unknown IPS option '" + key + "'; known options: rpg")
                        .c_str());
  }
  Options out;
  out.use_reprogram = opts.flag("rpg", out.use_reprogram);
  return out;
}

void IpsScheme::on_attach_telemetry(telemetry::MetricsRegistry* registry,
                                    const telemetry::Labels& labels) {
  if (registry == nullptr) {
    tl_reprogrammed_ = tl_fallback_ = nullptr;
    return;
  }
  tl_reprogrammed_ = registry->counter("reprogrammed_subpages", labels);
  tl_fallback_ = registry->counter("reprogram_fallback_subpages", labels);
}

void IpsScheme::place_write(Lsn lsn, std::uint32_t count, SimTime now,
                            std::vector<PhysOp>& ops) {
  // Baseline-style placement: one request per fresh Work page, remainder
  // slots left unprogrammed. Never partial-programming is what keeps
  // every cached page in frontier state, i.e. reprogram-eligible.
  std::uint32_t i = 0;
  std::vector<Lsn> chunk;
  std::vector<std::uint32_t> vers;
  while (i < count) {
    chunk.clear();
    vers.clear();
    const std::uint32_t n = std::min(count - i, subpages_per_page());
    for (std::uint32_t k = 0; k < n; ++k) {
      chunk.push_back(lsn + i + k);
      vers.push_back(bump_version(lsn + i + k));
    }
    const auto alloc = program_new_slc_page(next_plane(), BlockLevel::kWork,
                                            chunk, vers, now,
                                            /*host=*/true, ops);
    if (!alloc) {
      // SLC region exhausted even for Work blocks: write through to MLC.
      // Roll the versions back first — direct_mlc_write bumps them itself.
      for (const Lsn l : chunk) versions_[l] -= 1;
      direct_mlc_write(chunk.front(),
                       static_cast<std::uint32_t>(chunk.size()), now, ops);
    }
    i += n;
  }
}

void IpsScheme::relocate_slc_page(BlockId victim, PageId page, SimTime now,
                                  std::vector<PhysOp>& ops) {
  const auto& pg = array_.block(victim).page(page);

  // Surviving slots, positions preserved: the switch converts cells in
  // place, so slot i of the SLC page becomes slot i of the dense page.
  std::array<nand::SlotWrite, nand::kMaxSubpagesPerPage> writes;
  std::size_t n = 0;
  double max_ber = 0.0;
  for (std::uint32_t s = 0; s < subpages_per_page(); ++s) {
    const nand::Subpage sp =
        array_.subpage(victim, page, static_cast<SubpageId>(s));
    if (sp.state != nand::SubpageState::kValid) continue;
    writes[n++] = {static_cast<SubpageId>(s), sp.owner_lsn, sp.version};
    max_ber = std::max(
        max_ber,
        ber_of(PhysicalAddress{victim, page, static_cast<SubpageId>(s)}));
  }
  if (n == 0) return;

  // Defensive fallback: a page outside frontier state (cannot happen with
  // IPS placement, which never partial-programs) is not reprogram-eligible
  // and takes the conventional read-migrate path, including the page read
  // the fast path skipped.
  const bool reprogram = opts_.use_reprogram && pg.program_ops() == 1;
  if (opts_.use_reprogram && !reprogram) {
    emit_page_read(victim, page, static_cast<std::uint32_t>(n), max_ber,
                   /*background=*/true, ops);
    gc_read_dep_ = static_cast<std::uint32_t>(ops.size() - 1);
  }

  // Plane-local dense destination with the same GC-then-fallback loop as
  // the shared MLC placement helper.
  std::uint32_t plane = array_.block_static(victim).plane;
  std::optional<ftl::PageAlloc> alloc;
  for (std::uint32_t attempt = 0; attempt < array_.geometry().planes();
       ++attempt) {
    maybe_mlc_gc(plane, now, ops);
    alloc = bm_.allocate_page(plane, BlockLevel::kHighDensity);
    if (alloc) break;
    plane = next_plane();
  }
  PPSSD_CHECK_MSG(alloc.has_value(), "MLC region exhausted beyond recovery");

  for (std::size_t i = 0; i < n; ++i) {
    retire_slot(writes[i].lsn,
                PhysicalAddress{victim, page, writes[i].slot});
  }
  const std::span<const nand::SlotWrite> span(writes.data(), n);
  if (reprogram) {
    array_.reprogram(victim, page, alloc->block, alloc->page, span, now);
    const nand::BlockStatic& bs = array_.block_static(alloc->block);
    PhysOp op;
    op.chip = bs.chip;
    op.channel = bs.channel;
    op.kind = PhysOp::Kind::kReprogram;
    op.mode = bs.mode;
    op.subpages = static_cast<std::uint32_t>(n);
    op.background = true;
    op.origin = OpOrigin::kGc;
    ops.push_back(op);
    ++reprogrammed_pages_;
    reprogrammed_subpages_ += n;
    if (tl_reprogrammed_) tl_reprogrammed_->inc(n);
  } else {
    // Oracle / fallback: identical state mutation via a conventional
    // program (the source read was emitted by the GC driver or above).
    array_.program(alloc->block, alloc->page, span, now);
    emit_program(alloc->block, static_cast<std::uint32_t>(n),
                 /*background=*/true, ops);
    if (opts_.use_reprogram) {
      fallback_subpages_ += n;
      if (tl_fallback_) tl_fallback_->inc(n);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    map_.set(writes[i].lsn,
             PhysicalAddress{alloc->block, alloc->page, writes[i].slot});
  }
  metrics_.mlc_subpages_written += n;
  count_evicted(static_cast<std::uint32_t>(n));
}

}  // namespace ppssd::cache
