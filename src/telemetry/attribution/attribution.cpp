#include "telemetry/attribution/attribution.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"

namespace ppssd::telemetry::attribution {

namespace {

// Coarse who-blocked-whom group for the registry matrix.
int class_group(OpClass cls) {
  switch (cls) {
    case OpClass::kHost:
      return 0;
    case OpClass::kGcRead:
    case OpClass::kGcProgram:
      return 1;
    case OpClass::kErase:
      return 2;
    case OpClass::kPrefill:
      return 3;
  }
  return 3;
}

const char* kGroupNames[4] = {"host", "gc", "erase", "prefill"};

// Fixed-size record layout, little-endian, written field by field (see
// write_record / read_record). Keep in sync with kLedgerVersion.
constexpr std::uint32_t kRecordBytes = 140;
constexpr std::size_t kDumpFlushBytes = 1u << 20;

void put_u8(std::vector<unsigned char>& b, std::uint8_t v) {
  b.push_back(v);
}
void put_u32(std::vector<unsigned char>& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) b.push_back(static_cast<unsigned char>(v >> (8 * i)));
}
void put_u64(std::vector<unsigned char>& b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) b.push_back(static_cast<unsigned char>(v >> (8 * i)));
}
void put_str(std::vector<unsigned char>& b, const std::string& s) {
  put_u32(b, static_cast<std::uint32_t>(s.size()));
  b.insert(b.end(), s.begin(), s.end());
}

// Bounds-checked reader over a loaded ledger file.
struct ByteReader {
  const unsigned char* p;
  std::size_t left;
  bool ok = true;

  std::uint8_t u8() {
    if (left < 1) return fail<std::uint8_t>();
    std::uint8_t v = *p;
    ++p;
    --left;
    return v;
  }
  std::uint32_t u32() {
    if (left < 4) return fail<std::uint32_t>();
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    p += 4;
    left -= 4;
    return v;
  }
  std::uint64_t u64() {
    if (left < 8) return fail<std::uint64_t>();
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    p += 8;
    left -= 8;
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (!ok || left < n) {
      ok = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(p), n);
    p += n;
    left -= n;
    return s;
  }

  template <typename T>
  T fail() {
    ok = false;
    return T{};
  }
};

}  // namespace

const char* class_name(OpClass cls) {
  switch (cls) {
    case OpClass::kHost:
      return "host";
    case OpClass::kGcRead:
      return "gc_read";
    case OpClass::kGcProgram:
      return "gc_program";
    case OpClass::kErase:
      return "erase";
    case OpClass::kPrefill:
      return "prefill";
  }
  return "?";
}

const char* component_name(Component c) {
  switch (c) {
    case Component::kService:
      return "service";
    case Component::kEcc:
      return "ecc";
    case Component::kLaneHost:
      return "lane_host";
    case Component::kLaneGcRead:
      return "lane_gc_read";
    case Component::kLaneGcProgram:
      return "lane_gc_program";
    case Component::kLanePrefill:
      return "lane_prefill";
    case Component::kChanHost:
      return "chan_host";
    case Component::kChanGcRead:
      return "chan_gc_read";
    case Component::kChanGcProgram:
      return "chan_gc_program";
    case Component::kChanPrefill:
      return "chan_prefill";
    case Component::kEraseRemainder:
      return "erase_remainder";
  }
  return "?";
}

const char* resource_name(Resource r) {
  switch (r) {
    case Resource::kLane:
      return "lane";
    case Resource::kChannel:
      return "channel";
    case Resource::kErase:
      return "erase";
  }
  return "?";
}

Component wait_component(Resource r, OpClass blocker) {
  // The suspendable-erase horizon is advanced only by erases (and attach
  // seeds); every tick waited there is erase remainder.
  if (r == Resource::kErase) return Component::kEraseRemainder;
  const bool lane = r == Resource::kLane;
  switch (blocker) {
    case OpClass::kHost:
      return lane ? Component::kLaneHost : Component::kChanHost;
    case OpClass::kGcRead:
      return lane ? Component::kLaneGcRead : Component::kChanGcRead;
    case OpClass::kGcProgram:
      return lane ? Component::kLaneGcProgram : Component::kChanGcProgram;
    case OpClass::kErase:
      // Erases never occupy a lane or channel claim; blame coarsening
      // (dropped claims) can surface one only via the prefill bucket.
      return lane ? Component::kLanePrefill : Component::kChanPrefill;
    case OpClass::kPrefill:
      return lane ? Component::kLanePrefill : Component::kChanPrefill;
  }
  return Component::kLanePrefill;
}

AttributionLedger::AttributionLedger() = default;

AttributionLedger::~AttributionLedger() { close_dump(); }

void AttributionLedger::bind_resources(std::uint32_t chips,
                                       std::uint32_t channels) {
  if (lane_claims_.size() != chips) {
    lane_claims_.assign(chips, ClaimDeque{});
    erase_claims_.assign(chips, ClaimDeque{});
  }
  if (channel_claims_.size() != channels) {
    channel_claims_.assign(channels, ClaimDeque{});
  }
}

void AttributionLedger::reset_resources() {
  for (auto& d : lane_claims_) d.clear();
  for (auto& d : channel_claims_) d.clear();
  for (auto& d : erase_claims_) d.clear();
  op_open_ = false;
  request_open_ = false;
}

void AttributionLedger::seed(ClaimDeque& claims, SimTime horizon) {
  if (horizon == 0) return;
  if (!claims.empty() && claims.back().end >= horizon) return;
  claims.push_back(Claim{horizon, 0, OpClass::kPrefill});
}

void AttributionLedger::seed_lane(std::uint32_t chip, SimTime horizon) {
  PPSSD_CHECK(chip < lane_claims_.size());
  seed(lane_claims_[chip], horizon);
}

void AttributionLedger::seed_channel(std::uint32_t channel, SimTime horizon) {
  PPSSD_CHECK(channel < channel_claims_.size());
  seed(channel_claims_[channel], horizon);
}

void AttributionLedger::seed_erase(std::uint32_t chip, SimTime horizon) {
  PPSSD_CHECK(chip < erase_claims_.size());
  seed(erase_claims_[chip], horizon);
}

void AttributionLedger::op_begin(std::uint64_t op_id, OpClass cls,
                                 CellMode mode, bool background,
                                 std::uint32_t chip, std::uint32_t channel,
                                 SimTime ready) {
  PPSSD_DCHECK_MSG(!op_open_, "attribution: op_begin while an op is open");
  PPSSD_DCHECK(chip < lane_claims_.size());
  PPSSD_DCHECK(channel < channel_claims_.size());
  cur_ = OpBlame{};
  cur_.op_id = op_id;
  cur_.cls = cls;
  cur_.mode = mode;
  cur_.background = background;
  cur_.chip = chip;
  cur_.channel = channel;
  cur_.ready = ready;
  op_open_ = true;
}

void AttributionLedger::charge(ClaimDeque& claims, Resource r, SimTime from,
                               SimTime to) {
  if (to <= from) return;
  PPSSD_DCHECK(op_open_);
  while (!claims.empty() && claims.front().end <= from) claims.pop_front();
  const int mode = cur_.mode == CellMode::kSlc ? 0 : 1;
  SimTime t = from;
  for (const Claim& c : claims) {
    if (t >= to) break;
    const SimTime upto = std::min(c.end, to);
    if (upto <= t) continue;
    const SimTime slice = upto - t;
    cur_.comp[static_cast<std::size_t>(wait_component(r, c.cls))] += slice;
    matrix_[static_cast<std::size_t>(cur_.cls)][static_cast<std::size_t>(
        c.cls)][static_cast<std::size_t>(r)][mode] += slice;
    if (slice > cur_.blocked_ns) {
      cur_.blocked_ns = slice;
      cur_.blocker_op = c.op;
      cur_.blocker_cls = c.cls;
      cur_.blocker_res = r;
    }
    t = upto;
  }
  // Conservation backbone: a horizon always equals the end of the last
  // claim on its resource, so the wait interval must be fully tiled.
  PPSSD_CHECK_MSG(t == to,
                  "attribution: wait interval not covered by claims");
}

void AttributionLedger::wait_lane(std::uint32_t chip, SimTime from,
                                  SimTime to) {
  if (to <= from) return;
  charge(lane_claims_[chip], Resource::kLane, from, to);
}

void AttributionLedger::wait_channel(std::uint32_t channel, SimTime from,
                                     SimTime to) {
  if (to <= from) return;
  charge(channel_claims_[channel], Resource::kChannel, from, to);
}

void AttributionLedger::wait_erase(std::uint32_t chip, SimTime from,
                                   SimTime to) {
  if (to <= from) return;
  charge(erase_claims_[chip], Resource::kErase, from, to);
}

void AttributionLedger::add_service(SimTime ns) {
  cur_.comp[static_cast<std::size_t>(Component::kService)] += ns;
}

void AttributionLedger::add_ecc(SimTime ns) {
  cur_.comp[static_cast<std::size_t>(Component::kEcc)] += ns;
}

void AttributionLedger::push_claim(ClaimDeque& claims, SimTime end) {
  PPSSD_DCHECK(op_open_);
  PPSSD_DCHECK_MSG(claims.empty() || end >= claims.back().end,
                   "attribution: claim ends must be monotone");
  claims.push_back(Claim{end, cur_.op_id, cur_.cls});
  if (claims.size() > kMaxClaims) claims.pop_front();
}

void AttributionLedger::claim_lane(std::uint32_t chip, SimTime end) {
  push_claim(lane_claims_[chip], end);
}

void AttributionLedger::claim_channel(std::uint32_t channel, SimTime end) {
  push_claim(channel_claims_[channel], end);
}

void AttributionLedger::claim_erase(std::uint32_t chip, SimTime end) {
  push_claim(erase_claims_[chip], end);
}

void AttributionLedger::note_suspend_saved(SimTime ns) {
  suspend_saved_ns_ += ns;
}

void AttributionLedger::op_end(SimTime end) {
  PPSSD_DCHECK_MSG(op_open_, "attribution: op_end without op_begin");
  cur_.end = end;
  PPSSD_CHECK_MSG(cur_.component_sum() == end - cur_.ready,
                  "attribution: op components do not sum to op latency");
  ++ops_;
  last_op_ = cur_;
  if (request_open_ && !cur_.background) req_ops_.push_back(cur_);
  op_open_ = false;
}

void AttributionLedger::begin_request(std::uint64_t id, OpType op,
                                      SimTime arrival) {
  PPSSD_DCHECK_MSG(!request_open_,
                   "attribution: begin_request while a request is open");
  request_open_ = true;
  req_ = RequestBlame{};
  req_.id = id;
  req_.op = op;
  req_.arrival = arrival;
  req_ops_.clear();
}

void AttributionLedger::finish_request(SimTime finish) {
  PPSSD_DCHECK_MSG(request_open_,
                   "attribution: finish_request without begin_request");
  request_open_ = false;
  req_.finish = finish;

  // Fold the critical chain backwards from the completion time. Each link
  // is an exact tick equality: an op whose ready exceeds the arrival was
  // released by the op that finished at exactly that tick (the scheduler
  // resolves dependencies to finish times). Foreground ops off the chain
  // did not determine the latency and contribute nothing.
  SimTime t = finish;
  while (t > req_.arrival) {
    const OpBlame* link = nullptr;
    for (auto it = req_ops_.rbegin(); it != req_ops_.rend(); ++it) {
      if (it->end == t) {
        link = &*it;
        break;
      }
    }
    PPSSD_CHECK_MSG(link != nullptr,
                    "attribution: request critical chain broken");
    PPSSD_CHECK_MSG(link->ready >= req_.arrival,
                    "attribution: foreground op ready before arrival");
    for (std::size_t i = 0; i < kComponentCount; ++i) {
      req_.comp[i] += link->comp[i];
    }
    ++req_.fg_ops;
    if (link->blocked_ns > req_.blocked_ns) {
      req_.blocked_ns = link->blocked_ns;
      req_.blocker_op = link->blocker_op;
      req_.blocker_cls = link->blocker_cls;
      req_.blocker_res = link->blocker_res;
      // Resource identity: chip id for lane/erase waits, channel id for
      // channel contention (the blocker shares the blocked op's resource).
      req_.blocker_chip = link->blocker_res == Resource::kChannel
                              ? link->channel
                              : link->chip;
    }
    t = link->ready;  // strictly decreases: every op has positive service
  }

  // The hard invariant: components tile [arrival, finish] exactly.
  PPSSD_CHECK_MSG(req_.component_sum() == req_.finish - req_.arrival,
                  "attribution: conservation invariant violated");

  ++requests_;
  if (tl_component_ms_[0] != nullptr) {
    for (std::size_t i = 0; i < kComponentCount; ++i) {
      tl_component_ms_[i]->observe(static_cast<double>(req_.comp[i]) / 1e6);
    }
  }
  if (keep_records_) records_.push_back(req_);
  if (dump_) write_record(req_);
}

void AttributionLedger::attach_registry(MetricsRegistry* registry,
                                        const std::string& scheme) {
  if (registry == nullptr) {
    for (auto& h : tl_component_ms_) h = nullptr;
    return;
  }
  for (std::size_t i = 0; i < kComponentCount; ++i) {
    tl_component_ms_[i] = registry->histogram(
        "host_latency_component_ms",
        {{"scheme", scheme},
         {"component", component_name(static_cast<Component>(i))}},
        1e-4, 1e5);
  }
  const char* modes[2] = {"slc", "mlc"};
  for (int bg = 0; bg < 4; ++bg) {
    for (int bk = 0; bk < 4; ++bk) {
      for (int m = 0; m < 2; ++m) {
        registry->gauge_fn(
            "attrib_wait_ns",
            {{"scheme", scheme},
             {"blocked", kGroupNames[bg]},
             {"blocker", kGroupNames[bk]},
             {"mode", modes[m]}},
            [this, bg, bk, m]() {
              std::uint64_t sum = 0;
              for (std::size_t i = 0; i < kClassCount; ++i) {
                if (class_group(static_cast<OpClass>(i)) != bg) continue;
                for (std::size_t j = 0; j < kClassCount; ++j) {
                  if (class_group(static_cast<OpClass>(j)) != bk) continue;
                  for (std::size_t r = 0; r < kResourceCount; ++r) {
                    sum += matrix_[i][j][r][m];
                  }
                }
              }
              return static_cast<double>(sum);
            });
      }
    }
  }
  registry->gauge_fn(
      "attrib_suspend_saved_ns", {{"scheme", scheme}},
      [this]() { return static_cast<double>(suspend_saved_ns_); });
}

std::uint64_t AttributionLedger::wait_ns(OpClass blocked, OpClass blocker,
                                         Resource r, CellMode mode) const {
  return matrix_[static_cast<std::size_t>(blocked)][static_cast<std::size_t>(
      blocker)][static_cast<std::size_t>(r)][mode == CellMode::kSlc ? 0 : 1];
}

bool AttributionLedger::open_dump(const std::string& path) {
  close_dump();
  auto f = std::make_unique<std::ofstream>(path, std::ios::binary);
  if (!*f) return false;
  dump_ = std::move(f);
  dump_buf_.clear();
  for (char c : kLedgerMagic) {
    dump_buf_.push_back(static_cast<unsigned char>(c));
  }
  put_u32(dump_buf_, kLedgerVersion);
  put_u32(dump_buf_, static_cast<std::uint32_t>(kComponentCount));
  put_u32(dump_buf_, static_cast<std::uint32_t>(kClassCount));
  put_u32(dump_buf_, kRecordBytes);
  for (std::size_t i = 0; i < kComponentCount; ++i) {
    put_str(dump_buf_, component_name(static_cast<Component>(i)));
  }
  for (std::size_t i = 0; i < kClassCount; ++i) {
    put_str(dump_buf_, class_name(static_cast<OpClass>(i)));
  }
  flush_dump();
  return true;
}

void AttributionLedger::write_record(const RequestBlame& r) {
  const std::size_t at = dump_buf_.size();
  put_u64(dump_buf_, r.id);
  put_u64(dump_buf_, r.arrival);
  put_u64(dump_buf_, r.finish);
  for (SimTime c : r.comp) put_u64(dump_buf_, c);
  put_u32(dump_buf_, r.fg_ops);
  put_u32(dump_buf_, r.blocker_chip);
  put_u64(dump_buf_, r.blocker_op);
  put_u64(dump_buf_, r.blocked_ns);
  put_u8(dump_buf_, static_cast<std::uint8_t>(r.op));
  put_u8(dump_buf_, static_cast<std::uint8_t>(r.blocker_cls));
  put_u8(dump_buf_, static_cast<std::uint8_t>(r.blocker_res));
  put_u8(dump_buf_, 0);
  PPSSD_DCHECK(dump_buf_.size() - at == kRecordBytes);
  if (dump_buf_.size() >= kDumpFlushBytes) flush_dump();
}

void AttributionLedger::flush_dump() {
  if (!dump_ || dump_buf_.empty()) return;
  dump_->write(reinterpret_cast<const char*>(dump_buf_.data()),
               static_cast<std::streamsize>(dump_buf_.size()));
  dump_buf_.clear();
}

void AttributionLedger::close_dump() {
  if (!dump_) return;
  flush_dump();
  dump_->flush();
  dump_.reset();
}

bool load_ledger(const std::string& path, LedgerFile* out,
                 std::string* error) {
  PPSSD_CHECK(out != nullptr);
  *out = LedgerFile{};
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  ByteReader r{reinterpret_cast<const unsigned char*>(bytes.data()),
               bytes.size()};
  if (r.left < 8 || std::memcmp(r.p, kLedgerMagic, 8) != 0) {
    if (error) *error = "not a ledger file (bad magic)";
    return false;
  }
  r.p += 8;
  r.left -= 8;
  out->version = r.u32();
  const std::uint32_t ncomp = r.u32();
  const std::uint32_t nclass = r.u32();
  const std::uint32_t record_bytes = r.u32();
  if (!r.ok || out->version != kLedgerVersion ||
      ncomp != kComponentCount || nclass != kClassCount ||
      record_bytes != kRecordBytes) {
    if (error) *error = "unsupported ledger header";
    return false;
  }
  for (std::uint32_t i = 0; i < ncomp; ++i) {
    out->component_names.push_back(r.str());
  }
  for (std::uint32_t i = 0; i < nclass; ++i) {
    out->class_names.push_back(r.str());
  }
  if (!r.ok) {
    if (error) *error = "truncated ledger header";
    return false;
  }
  // Records to EOF; a truncated tail record (aborted run) is dropped.
  while (r.left >= kRecordBytes) {
    RequestBlame rec;
    rec.id = r.u64();
    rec.arrival = r.u64();
    rec.finish = r.u64();
    for (std::size_t i = 0; i < kComponentCount; ++i) rec.comp[i] = r.u64();
    rec.fg_ops = r.u32();
    rec.blocker_chip = r.u32();
    rec.blocker_op = r.u64();
    rec.blocked_ns = r.u64();
    rec.op = static_cast<OpType>(r.u8());
    rec.blocker_cls = static_cast<OpClass>(r.u8());
    rec.blocker_res = static_cast<Resource>(r.u8());
    (void)r.u8();
    if (!r.ok) break;
    out->records.push_back(rec);
  }
  return true;
}

}  // namespace ppssd::telemetry::attribution
