// Causal latency attribution: a per-request blame ledger.
//
// The controller reports, for every scheduled command, how its lifetime
// decomposes into *additive* components: raw NAND service, ECC decode,
// and wait intervals on the three timing resources (chip array lane,
// channel, suspendable-erase horizon). Each wait interval is charged to
// the command that occupied the resource, identified by a claim deque
// per resource: whenever a command advances a resource horizon it pushes
// a claim (end time, op id, op class); a later command that waits on the
// resource partitions its wait interval by the consecutive claim ends —
// head-of-queue blame — so every waited tick names a blocking op.
//
// The Ssd brackets each host request (begin_request / finish_request)
// and the ledger folds the request's foreground ops into one component
// vector by walking the critical chain backwards from the op that
// determined the completion time: an op whose `ready` exceeds the
// arrival was gated by the op that finished exactly at `ready` (the
// controller resolves dependencies to finish times, so the chain links
// are exact tick equalities). Because every op conserves
// (components sum to end - ready) and the chain telescopes from finish
// down to arrival, the request vector conserves too:
//
//     sum(components) == finish - arrival            (exact, in ticks)
//
// — enforced by PPSSD_CHECK at both levels. This is the hard invariant
// the randomized dual-accounting test recomputes independently.
//
// Blame coarsening (never conservation loss): claim deques are capped at
// kMaxClaims entries per resource; overflow drops the oldest claim, so a
// wait slice older than the window is blamed on the oldest *surviving*
// claim. Likewise, claims present when the ledger attaches mid-run are
// seeded as kPrefill.
//
// Aggregates:
//  * interference matrix — waited ns by (blocked class, blocker class,
//    resource, cell mode), exposed raw via wait_ns() and, coarsened to
//    {host, gc, erase, prefill} groups, as `attrib_wait_ns` gauges in an
//    attached MetricsRegistry;
//  * per-component host-latency histograms
//    (`host_latency_component_ms{component=...}`: p50/p95/p99/p999);
//  * suspend savings — ticks a foreground op would have waited for an
//    in-progress erase had the controller not suspended it;
//  * a compact binary dump (one fixed-size record per request, see
//    kLedgerMagic) that tools/latency_explain turns into a
//    "why was p999 slow" report.
//
// Zero-cost when detached: the controller holds a null ledger pointer
// and every call site is `if (attrib_) ...` (null-handle pattern,
// DESIGN.md §6); the write_bench `write/attrib/*` cells gate the
// overhead both ways.
//
// Layering: this module sees only common/ types — the controller maps
// cache::PhysOp (origin, kind, background) to an OpClass before calling
// in, so ppssd_telemetry keeps its common-only dependency edge.
#pragma once

#include <cstdint>
#include <deque>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "telemetry/metrics.h"

namespace ppssd::telemetry::attribution {

/// Who issued the op (the controller classifies from PhysOp origin/kind).
enum class OpClass : std::uint8_t {
  kHost = 0,       // foreground host command
  kGcRead = 1,     // background GC / migration page read
  kGcProgram = 2,  // background GC / migration program
  kErase = 3,      // block erase (suspendable horizon)
  kPrefill = 4,    // warm-up traffic, or resource state seeded at attach
};
inline constexpr std::size_t kClassCount = 5;
[[nodiscard]] const char* class_name(OpClass cls);

/// Additive latency components. Wait components are (resource x blocker
/// class); service/ECC are occupancy of the op itself.
enum class Component : std::uint8_t {
  kService = 0,         // array sense/program/erase + channel transfer
  kEcc = 1,             // controller-side decode after a read transfer
  kLaneHost = 2,        // chip-lane queueing behind host ops
  kLaneGcRead = 3,      // ... behind GC reads
  kLaneGcProgram = 4,   // ... behind GC programs
  kLanePrefill = 5,     // ... behind pre-attach / warm-up occupancy
  kChanHost = 6,        // channel contention with host transfers
  kChanGcRead = 7,      // ... with GC read transfers
  kChanGcProgram = 8,   // ... with GC program transfers
  kChanPrefill = 9,     // ... with pre-attach / warm-up transfers
  kEraseRemainder = 10,  // background op waiting out an in-progress erase
};
inline constexpr std::size_t kComponentCount = 11;
[[nodiscard]] const char* component_name(Component c);

/// The three timing resources a command can wait on.
enum class Resource : std::uint8_t { kLane = 0, kChannel = 1, kErase = 2 };
inline constexpr std::size_t kResourceCount = 3;
[[nodiscard]] const char* resource_name(Resource r);

/// Wait component charged for a slice on `r` blamed on a `blocker` op.
[[nodiscard]] Component wait_component(Resource r, OpClass blocker);

/// Blame vector of one scheduled command (exposed for tests via
/// last_op()).
struct OpBlame {
  std::uint64_t op_id = 0;
  OpClass cls = OpClass::kHost;
  CellMode mode = CellMode::kSlc;
  bool background = false;
  std::uint32_t chip = 0;
  std::uint32_t channel = 0;
  SimTime ready = 0;
  SimTime end = 0;
  SimTime comp[kComponentCount] = {};
  // Largest single blocking slice and the claim it was charged to.
  SimTime blocked_ns = 0;
  std::uint64_t blocker_op = 0;
  OpClass blocker_cls = OpClass::kHost;
  Resource blocker_res = Resource::kLane;

  [[nodiscard]] SimTime component_sum() const {
    SimTime s = 0;
    for (SimTime c : comp) s += c;
    return s;
  }
};

/// Blame vector of one host request (critical-chain fold of its
/// foreground ops). This is also the binary ledger record.
struct RequestBlame {
  std::uint64_t id = 0;
  OpType op = OpType::kRead;
  SimTime arrival = 0;
  SimTime finish = 0;
  SimTime comp[kComponentCount] = {};
  std::uint32_t fg_ops = 0;  // foreground ops folded into the chain
  // Worst single blocking slice across the chain.
  SimTime blocked_ns = 0;
  std::uint64_t blocker_op = 0;
  std::uint32_t blocker_chip = 0;
  OpClass blocker_cls = OpClass::kHost;
  Resource blocker_res = Resource::kLane;

  [[nodiscard]] SimTime latency() const { return finish - arrival; }
  [[nodiscard]] SimTime component_sum() const {
    SimTime s = 0;
    for (SimTime c : comp) s += c;
    return s;
  }
};

/// Binary ledger framing (see attribution.cpp for the exact layout).
inline constexpr char kLedgerMagic[8] = {'P', 'P', 'S', 'S',
                                         'D', 'A', 'L', 'G'};
inline constexpr std::uint32_t kLedgerVersion = 1;

class AttributionLedger {
 public:
  AttributionLedger();
  AttributionLedger(const AttributionLedger&) = delete;
  AttributionLedger& operator=(const AttributionLedger&) = delete;
  ~AttributionLedger();

  // ---- resource topology (controller attach/reset) --------------------

  /// Size the claim deques. Keeps existing claims when the topology is
  /// unchanged (re-attach), clears them otherwise.
  void bind_resources(std::uint32_t chips, std::uint32_t channels);

  /// Drop all claims and any in-progress op (controller reset between
  /// warm-up and measurement; aggregates and records are preserved).
  void reset_resources();

  /// Register pre-existing horizon state as kPrefill claims so waits
  /// against pre-attach occupancy stay fully covered (mid-run attach).
  void seed_lane(std::uint32_t chip, SimTime horizon);
  void seed_channel(std::uint32_t channel, SimTime horizon);
  void seed_erase(std::uint32_t chip, SimTime horizon);

  // ---- per-op lifecycle (controller hot path) --------------------------

  /// Begin accounting one command. `ready` is the no-earlier-than time
  /// the controller schedules against; all waits and service charged
  /// until op_end() must tile [ready, end] exactly.
  void op_begin(std::uint64_t op_id, OpClass cls, CellMode mode,
                bool background, std::uint32_t chip, std::uint32_t channel,
                SimTime ready);
  /// Charge the wait interval [from, to) on a resource to the claims
  /// occupying it. No-ops when to <= from.
  void wait_lane(std::uint32_t chip, SimTime from, SimTime to);
  void wait_channel(std::uint32_t channel, SimTime from, SimTime to);
  void wait_erase(std::uint32_t chip, SimTime from, SimTime to);
  /// Charge own occupancy (array/transfer time; ECC decode separately).
  void add_service(SimTime ns);
  void add_ecc(SimTime ns);
  /// Record that the current op advanced a resource horizon to `end`.
  void claim_lane(std::uint32_t chip, SimTime end);
  void claim_channel(std::uint32_t channel, SimTime end);
  void claim_erase(std::uint32_t chip, SimTime end);
  /// Ticks a foreground op skipped by suspending an in-progress erase.
  void note_suspend_saved(SimTime ns);
  /// Close the op: PPSSD_CHECK per-op conservation, fold into the open
  /// request (foreground ops only), accrue the interference matrix.
  void op_end(SimTime end);

  // ---- per-request lifecycle (Ssd) -------------------------------------

  void begin_request(std::uint64_t id, OpType op, SimTime arrival);
  /// Fold the request's foreground ops along the critical chain ending
  /// at `finish`; PPSSD_CHECK the conservation invariant; aggregate and
  /// (when a dump is open) serialize the record.
  void finish_request(SimTime finish);

  // ---- aggregation sinks ----------------------------------------------

  /// Register the coarse interference matrix (gauges polled from this
  /// ledger), per-component latency histograms and the suspend-savings
  /// gauge, all labelled {scheme=<name>}. The registry must outlive the
  /// ledger or be re-attached.
  void attach_registry(MetricsRegistry* registry, const std::string& scheme);

  /// Open / finalize the binary ledger dump.
  bool open_dump(const std::string& path);
  void close_dump();

  // ---- introspection ---------------------------------------------------

  /// Blame of the most recently completed op (test hook).
  [[nodiscard]] const OpBlame& last_op() const { return last_op_; }
  /// Waited ns with `blocked` class stalled behind `blocker` on `r`,
  /// split by the blocked op's cell mode.
  [[nodiscard]] std::uint64_t wait_ns(OpClass blocked, OpClass blocker,
                                      Resource r, CellMode mode) const;
  [[nodiscard]] std::uint64_t suspend_saved_ns() const {
    return suspend_saved_ns_;
  }
  [[nodiscard]] std::uint64_t requests() const { return requests_; }
  [[nodiscard]] std::uint64_t ops() const { return ops_; }

  /// Keep every RequestBlame in memory (tests; off by default).
  void set_keep_records(bool keep) { keep_records_ = keep; }
  [[nodiscard]] const std::vector<RequestBlame>& records() const {
    return records_;
  }

 private:
  /// One horizon advance on a resource. Ends are strictly increasing per
  /// deque (every command has positive service time).
  struct Claim {
    SimTime end = 0;
    std::uint64_t op = 0;
    OpClass cls = OpClass::kPrefill;
  };
  using ClaimDeque = std::deque<Claim>;
  /// Cap per resource: overflow drops the oldest claim (blame coarsens
  /// to the oldest survivor; conservation is unaffected).
  static constexpr std::size_t kMaxClaims = 64;

  void charge(ClaimDeque& claims, Resource r, SimTime from, SimTime to);
  void push_claim(ClaimDeque& claims, SimTime end);
  void seed(ClaimDeque& claims, SimTime horizon);
  void write_record(const RequestBlame& r);
  void flush_dump();

  std::vector<ClaimDeque> lane_claims_;
  std::vector<ClaimDeque> channel_claims_;
  std::vector<ClaimDeque> erase_claims_;

  OpBlame cur_;
  bool op_open_ = false;
  OpBlame last_op_;

  bool request_open_ = false;
  RequestBlame req_;
  std::vector<OpBlame> req_ops_;  // foreground ops of the open request

  // matrix_[blocked][blocker][resource][mode] in ns.
  std::uint64_t matrix_[kClassCount][kClassCount][kResourceCount][2] = {};
  std::uint64_t suspend_saved_ns_ = 0;
  std::uint64_t requests_ = 0;
  std::uint64_t ops_ = 0;

  Histogram* tl_component_ms_[kComponentCount] = {};

  bool keep_records_ = false;
  std::vector<RequestBlame> records_;

  std::unique_ptr<std::ofstream> dump_;
  std::vector<unsigned char> dump_buf_;
};

/// Parsed ledger dump (tools/latency_explain, tests).
struct LedgerFile {
  std::uint32_t version = 0;
  std::vector<std::string> component_names;
  std::vector<std::string> class_names;
  std::vector<RequestBlame> records;
};

/// Load a binary ledger dump; false (with *error set) on malformed
/// input. A file truncated mid-record loads the complete prefix.
[[nodiscard]] bool load_ledger(const std::string& path, LedgerFile* out,
                               std::string* error);

}  // namespace ppssd::telemetry::attribution
