#include "telemetry/telemetry.h"

#include <cstdlib>

#include "common/units.h"

namespace ppssd::telemetry {

namespace {
std::string env_or(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v ? std::string(v) : fallback;
}
}  // namespace

TelemetryOptions TelemetryOptions::from_env() {
  TelemetryOptions opts;
  opts.trace_path = env_or("PPSSD_TRACE", "");
  opts.trace_categories =
      parse_categories(env_or("PPSSD_TRACE_CATEGORIES", ""));
  const std::string limit = env_or("PPSSD_TRACE_LIMIT", "");
  if (!limit.empty()) opts.trace_max_events = std::stoull(limit);
  opts.metrics_path = env_or("PPSSD_METRICS", "");
  opts.timeseries_path = env_or("PPSSD_TIMESERIES", "");
  const std::string every = env_or("PPSSD_SAMPLE_REQUESTS", "");
  if (!every.empty()) opts.sample_every_requests = std::stoull(every);
  const std::string ms = env_or("PPSSD_SAMPLE_MS", "");
  if (!ms.empty()) opts.sample_every_ns = ms_to_ns(std::stod(ms));
  opts.attribution_path = env_or("PPSSD_ATTRIB", "");
  return opts;
}

Telemetry::Telemetry() = default;

Telemetry::Telemetry(const TelemetryOptions& opts) : opts_(opts) {
  if (!opts_.trace_path.empty()) {
    TraceLog::Options to;
    to.categories = opts_.trace_categories;
    to.max_events = opts_.trace_max_events;
    trace_ = TraceLog::open_file(opts_.trace_path, to);
  }
  if (!opts_.timeseries_path.empty()) {
    timeseries_file_.open(opts_.timeseries_path);
    if (timeseries_file_) {
      TimeSeriesSampler::Options so;
      so.every_requests = opts_.sample_every_requests;
      so.every_ns = opts_.sample_every_ns;
      sampler_ = std::make_unique<TimeSeriesSampler>(registry_,
                                                     timeseries_file_, so);
    }
  }
  if (opts_.attribution || !opts_.attribution_path.empty()) {
    attribution_ = std::make_unique<attribution::AttributionLedger>();
    if (!opts_.attribution_path.empty()) {
      attribution_->open_dump(opts_.attribution_path);
    }
  }
}

Telemetry::~Telemetry() { finish(0); }

std::unique_ptr<Telemetry> Telemetry::from_env() {
  const TelemetryOptions opts = TelemetryOptions::from_env();
  if (!opts.any()) return nullptr;
  return std::make_unique<Telemetry>(opts);
}

void Telemetry::finish(SimTime end) {
  if (finished_) return;
  finished_ = true;
  if (sampler_) sampler_->finish(end);
  if (!opts_.metrics_path.empty()) {
    std::ofstream out(opts_.metrics_path);
    if (out) {
      const std::string& p = opts_.metrics_path;
      const bool json = p.size() >= 5 && p.compare(p.size() - 5, 5, ".json") == 0;
      if (json) {
        registry_.write_json(out);
      } else {
        registry_.write_csv(out);
      }
    }
  }
  if (attribution_) attribution_->close_dump();
  if (trace_) trace_->close();
}

}  // namespace ppssd::telemetry
