// Minimal recursive-descent JSON parser.
//
// Exists so the telemetry layer can *validate its own output*: TraceLog
// emits Chrome trace-event JSON, and the tests (plus telemetry_tour)
// parse the artifact back instead of trusting the serializer. It is a
// strict parser for the JSON subset the simulator produces — no comments,
// no trailing commas — and deliberately tiny; it is not a general-purpose
// JSON library.
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ppssd::telemetry::json {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(const std::string& key) const {
    if (kind != Kind::kObject) return nullptr;
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

namespace detail {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> parse() {
    auto v = value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  [[nodiscard]] bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  std::optional<Value> value() {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return bool_value();
    if (c == 'n') {
      if (!literal("null")) return std::nullopt;
      return Value{};
    }
    return number();
  }

  std::optional<Value> object() {
    if (!eat('{')) return std::nullopt;
    Value v;
    v.kind = Value::Kind::kObject;
    skip_ws();
    if (eat('}')) return v;
    for (;;) {
      auto key = string_value();
      if (!key || !eat(':')) return std::nullopt;
      auto member = value();
      if (!member) return std::nullopt;
      v.object.emplace(std::move(key->string), std::move(*member));
      if (eat(',')) continue;
      if (eat('}')) return v;
      return std::nullopt;
    }
  }

  std::optional<Value> array() {
    if (!eat('[')) return std::nullopt;
    Value v;
    v.kind = Value::Kind::kArray;
    skip_ws();
    if (eat(']')) return v;
    for (;;) {
      auto element = value();
      if (!element) return std::nullopt;
      v.array.push_back(std::move(*element));
      if (eat(',')) continue;
      if (eat(']')) return v;
      return std::nullopt;
    }
  }

  std::optional<Value> string_value() {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '"') return std::nullopt;
    ++pos_;
    Value v;
    v.kind = Value::Kind::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c == '\\') {
        if (pos_ >= text_.size()) return std::nullopt;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': v.string += '"'; break;
          case '\\': v.string += '\\'; break;
          case '/': v.string += '/'; break;
          case 'b': v.string += '\b'; break;
          case 'f': v.string += '\f'; break;
          case 'n': v.string += '\n'; break;
          case 'r': v.string += '\r'; break;
          case 't': v.string += '\t'; break;
          case 'u': {
            // The serializer never emits \u escapes; accept and keep raw.
            if (pos_ + 4 > text_.size()) return std::nullopt;
            v.string += "\\u";
            v.string += text_.substr(pos_, 4);
            pos_ += 4;
            break;
          }
          default:
            return std::nullopt;
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) return std::nullopt;
      v.string += c;
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Value> bool_value() {
    Value v;
    v.kind = Value::Kind::kBool;
    if (literal("true")) {
      v.boolean = true;
      return v;
    }
    if (literal("false")) {
      v.boolean = false;
      return v;
    }
    return std::nullopt;
  }

  std::optional<Value> number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return std::nullopt;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return std::nullopt;
    Value v;
    v.kind = Value::Kind::kNumber;
    v.number = d;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace detail

/// Parse a complete JSON document; nullopt on any syntax error.
[[nodiscard]] inline std::optional<Value> parse(std::string_view text) {
  return detail::Parser(text).parse();
}

}  // namespace ppssd::telemetry::json
