// Telemetry: one attachable bundle of registry + trace log + sampler.
//
// This is the object the rest of the simulator sees. A subsystem that
// wants instrumentation implements an `attach_telemetry(Telemetry*)`
// hook that registers its handles once; the hot path then works through
// those (possibly null) handles. `Ssd::attach_telemetry` fans the bundle
// out to the scheme, block manager, GC policies and service model, and
// the replayer drives the sampler.
//
// Environment knobs (read by from_env(); all optional):
//
//   PPSSD_TRACE=out.trace.json        Chrome trace-event output
//   PPSSD_TRACE_CATEGORIES=gc,cache   category filter (default: all)
//   PPSSD_TRACE_LIMIT=n               hard cap on emitted events
//   PPSSD_METRICS=out.metrics.csv     end-of-run registry dump
//                                     (.json extension selects JSON)
//   PPSSD_TIMESERIES=out.ts.csv       windowed registry deltas
//   PPSSD_SAMPLE_REQUESTS=n           window = n host requests (default 1000)
//   PPSSD_SAMPLE_MS=f                 window = f ms of sim time
//   PPSSD_ATTRIB=out.ledger.bin       per-request blame ledger (binary;
//                                     read with tools/latency_explain)
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>

#include "common/types.h"
#include "telemetry/attribution/attribution.h"
#include "telemetry/metrics.h"
#include "telemetry/timeseries.h"
#include "telemetry/trace_log.h"

namespace ppssd::telemetry {

struct TelemetryOptions {
  std::string trace_path;
  std::uint32_t trace_categories = kAllCategories;
  std::uint64_t trace_max_events = 0;
  std::string metrics_path;
  std::string timeseries_path;
  std::uint64_t sample_every_requests = 0;
  SimTime sample_every_ns = 0;
  std::string attribution_path;
  /// Build the blame ledger even without a dump path (in-memory
  /// aggregates / test use; implied by attribution_path).
  bool attribution = false;

  /// True when at least one output artifact is requested.
  [[nodiscard]] bool any() const {
    return !trace_path.empty() || !metrics_path.empty() ||
           !timeseries_path.empty() || !attribution_path.empty() ||
           attribution;
  }

  [[nodiscard]] static TelemetryOptions from_env();
};

class Telemetry {
 public:
  explicit Telemetry(const TelemetryOptions& opts);

  /// In-memory bundle: registry only, no artifacts (test / embedding use).
  Telemetry();

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;
  ~Telemetry();

  /// Build from the PPSSD_* environment; nullptr when none are set.
  [[nodiscard]] static std::unique_ptr<Telemetry> from_env();

  [[nodiscard]] MetricsRegistry& registry() { return registry_; }
  [[nodiscard]] const MetricsRegistry& registry() const { return registry_; }
  /// Null when no trace output is configured.
  [[nodiscard]] TraceLog* trace() { return trace_.get(); }
  [[nodiscard]] TimeSeriesSampler* sampler() { return sampler_.get(); }
  /// Null unless attribution was requested (PPSSD_ATTRIB / options).
  [[nodiscard]] attribution::AttributionLedger* attribution() {
    return attribution_.get();
  }

  /// Host-request tick (drives the sampler window clock).
  void on_request(SimTime now) {
    if (sampler_) sampler_->on_request(now);
  }

  /// Close the current sampler window, dump the metrics CSV, finalize
  /// the trace. Idempotent; also runs from the destructor.
  void finish(SimTime end);

 private:
  TelemetryOptions opts_;
  MetricsRegistry registry_;
  std::unique_ptr<TraceLog> trace_;
  std::ofstream timeseries_file_;
  std::unique_ptr<TimeSeriesSampler> sampler_;
  // After registry_: attached gauges poll the ledger, so it must die
  // first (no snapshots run during destruction either way).
  std::unique_ptr<attribution::AttributionLedger> attribution_;
  bool finished_ = false;
};

}  // namespace ppssd::telemetry
