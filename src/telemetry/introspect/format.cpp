#include "telemetry/introspect/format.h"

#include <cstdlib>
#include <cstring>

#include "common/check.h"
#include "common/units.h"

namespace ppssd::telemetry::introspect {

namespace {

void put_u8(std::vector<unsigned char>& b, std::uint8_t v) { b.push_back(v); }
void put_u16(std::vector<unsigned char>& b, std::uint16_t v) {
  for (int i = 0; i < 2; ++i)
    b.push_back(static_cast<unsigned char>(v >> (8 * i)));
}
void put_u32(std::vector<unsigned char>& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    b.push_back(static_cast<unsigned char>(v >> (8 * i)));
}
void put_u64(std::vector<unsigned char>& b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    b.push_back(static_cast<unsigned char>(v >> (8 * i)));
}
void put_f64(std::vector<unsigned char>& b, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(b, bits);
}
void put_str(std::vector<unsigned char>& b, const std::string& s) {
  put_u32(b, static_cast<std::uint32_t>(s.size()));
  b.insert(b.end(), s.begin(), s.end());
}

// Bounds-checked little-endian reader (same shape as the ledger loader).
struct ByteReader {
  const unsigned char* p;
  std::size_t left;
  bool ok = true;

  std::uint8_t u8() {
    if (left < 1) return fail<std::uint8_t>();
    const std::uint8_t v = *p;
    ++p;
    --left;
    return v;
  }
  std::uint16_t u16() {
    if (left < 2) return fail<std::uint16_t>();
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i)
      v = static_cast<std::uint16_t>(v | (static_cast<std::uint16_t>(p[i])
                                          << (8 * i)));
    p += 2;
    left -= 2;
    return v;
  }
  std::uint32_t u32() {
    if (left < 4) return fail<std::uint32_t>();
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    p += 4;
    left -= 4;
    return v;
  }
  std::uint64_t u64() {
    if (left < 8) return fail<std::uint64_t>();
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    p += 8;
    left -= 8;
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (!ok || left < n) {
      ok = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(p), n);
    p += n;
    left -= n;
    return s;
  }
  [[nodiscard]] std::uint32_t peek_u32() const {
    if (left < 4) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
  }

  template <typename T>
  T fail() {
    ok = false;
    return T{};
  }
};

}  // namespace

const StateSink::Entry* StateSink::find(std::string_view name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

// ---- writer -------------------------------------------------------------

bool SnapshotWriter::open(const std::string& path) {
  PPSSD_CHECK(!out_.is_open());
  out_.open(path, std::ios::binary | std::ios::app);
  if (!out_) return false;
  path_ = path;
  return true;
}

void SnapshotWriter::begin_stream(const StreamInfo& info) {
  PPSSD_CHECK(out_.is_open());
  buf_.clear();
  std::vector<unsigned char> header;
  put_str(header, info.scheme);
  put_u32(header, info.total_blocks);
  put_u32(header, info.planes);
  put_u32(header, info.subpages_per_page);
  put_u32(header, info.slc_blocks_per_plane);
  put_u32(header, info.slc_gc_threshold);
  put_u32(header, info.mlc_gc_threshold);
  put_u32(header, kBlockRecordBytes);
  put_u32(header, kPlaneRecordBytes);

  buf_.insert(buf_.end(), kSnapshotMagic, kSnapshotMagic + 8);
  put_u32(buf_, kSnapshotVersion);
  put_u32(buf_, static_cast<std::uint32_t>(header.size()));
  buf_.insert(buf_.end(), header.begin(), header.end());
  out_.write(reinterpret_cast<const char*>(buf_.data()),
             static_cast<std::streamsize>(buf_.size()));
  out_.flush();
  seq_ = 0;
}

void SnapshotWriter::write_frame(SimTime now,
                                 const std::vector<BlockState>& blocks,
                                 const std::vector<PlaneState>& planes) {
  PPSSD_CHECK(out_.is_open());
  std::vector<unsigned char> payload;
  payload.reserve(16 + blocks.size() * kBlockRecordBytes +
                  planes.size() * kPlaneRecordBytes);
  put_u64(payload, now);
  put_u32(payload, seq_++);
  for (const BlockState& b : blocks) {
    put_u32(payload, b.erase_count);
    put_u32(payload, b.valid_subpages);
    put_u32(payload, b.invalid_subpages);
    put_u16(payload, b.write_frontier);
    put_u16(payload, b.pages);
    put_u16(payload, b.reprogrammed_pages);
    put_u8(payload, b.mode);
    put_u8(payload, b.level);
  }
  for (const PlaneState& p : planes) {
    put_u32(payload, p.free_slc);
    put_u32(payload, p.free_mlc);
    put_u8(payload, p.pressure_slc);
    put_u8(payload, p.pressure_mlc);
  }
  put_u32(payload, static_cast<std::uint32_t>(sink_.entries().size()));
  for (const StateSink::Entry& e : sink_.entries()) {
    put_str(payload, e.name);
    put_u8(payload, e.is_float ? 1 : 0);
    if (e.is_float) {
      put_f64(payload, e.d);
    } else {
      put_u64(payload, e.u);
    }
  }
  sink_.clear();

  buf_.clear();
  put_u32(buf_, kFrameMarker);
  put_u32(buf_, static_cast<std::uint32_t>(payload.size()));
  out_.write(reinterpret_cast<const char*>(buf_.data()),
             static_cast<std::streamsize>(buf_.size()));
  out_.write(reinterpret_cast<const char*>(payload.data()),
             static_cast<std::streamsize>(payload.size()));
  // Flush per frame: frames are interval-paced (rare next to the event
  // loop), and the crash hook must find every completed frame on disk.
  out_.flush();
  ++frames_;
}

void SnapshotWriter::flush() {
  if (out_.is_open()) out_.flush();
}

// ---- loader -------------------------------------------------------------

namespace {

/// Parse one frame payload against the stream's header. Returns false on
/// a malformed (not merely truncated) payload.
bool parse_frame(ByteReader r, const StreamInfo& info, SnapshotFrame* out) {
  out->time = r.u64();
  out->seq = r.u32();
  out->blocks.reserve(info.total_blocks);
  for (std::uint32_t i = 0; i < info.total_blocks; ++i) {
    BlockState b;
    b.erase_count = r.u32();
    b.valid_subpages = r.u32();
    b.invalid_subpages = r.u32();
    b.write_frontier = r.u16();
    b.pages = r.u16();
    b.reprogrammed_pages = r.u16();
    b.mode = r.u8();
    b.level = r.u8();
    if (!r.ok) return false;
    out->blocks.push_back(b);
  }
  for (std::uint32_t i = 0; i < info.planes; ++i) {
    PlaneState p;
    p.free_slc = r.u32();
    p.free_mlc = r.u32();
    p.pressure_slc = r.u8();
    p.pressure_mlc = r.u8();
    if (!r.ok) return false;
    out->planes.push_back(p);
  }
  const std::uint32_t kv = r.u32();
  for (std::uint32_t i = 0; i < kv; ++i) {
    const std::string name = r.str();
    const std::uint8_t tag = r.u8();
    if (!r.ok) return false;
    if (tag == 1) {
      out->values.value(name, r.f64());
    } else {
      out->values.value(name, r.u64());
    }
    if (!r.ok) return false;
  }
  return r.ok;
}

}  // namespace

bool load_snapshots(const std::string& path, SnapshotFile* out,
                    std::string* error) {
  PPSSD_CHECK(out != nullptr);
  *out = SnapshotFile{};
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  ByteReader r{reinterpret_cast<const unsigned char*>(bytes.data()),
               bytes.size()};
  if (r.left < 8 || std::memcmp(r.p, kSnapshotMagic, 8) != 0) {
    if (error) *error = "not a snapshot stream (bad magic)";
    return false;
  }

  while (r.left > 0) {
    // Stream header. A truncated trailing header is dropped silently —
    // the writer was killed between open and the first frame.
    if (r.left < 8 || std::memcmp(r.p, kSnapshotMagic, 8) != 0) {
      if (error) *error = "garbage between streams";
      out->truncated_bytes = r.left;
      return !out->streams.empty();
    }
    ByteReader header = r;
    header.p += 8;
    header.left -= 8;
    const std::uint32_t version = header.u32();
    const std::uint32_t header_len = header.u32();
    if (!header.ok || header.left < header_len) {
      out->truncated_bytes = r.left;
      break;
    }
    if (version != kSnapshotVersion) {
      if (error) *error = "unsupported snapshot version";
      return false;
    }
    ByteReader h{header.p, header_len};
    SnapshotStream stream;
    stream.info.scheme = h.str();
    stream.info.total_blocks = h.u32();
    stream.info.planes = h.u32();
    stream.info.subpages_per_page = h.u32();
    stream.info.slc_blocks_per_plane = h.u32();
    stream.info.slc_gc_threshold = h.u32();
    stream.info.mlc_gc_threshold = h.u32();
    const std::uint32_t block_bytes = h.u32();
    const std::uint32_t plane_bytes = h.u32();
    if (!h.ok || block_bytes != kBlockRecordBytes ||
        plane_bytes != kPlaneRecordBytes) {
      if (error) *error = "unsupported snapshot stream header";
      return false;
    }
    r.p = header.p + header_len;
    r.left = header.left - header_len;

    // Frames until the next stream's magic or EOF.
    while (r.left >= 8 && r.peek_u32() == kFrameMarker) {
      ByteReader f = r;
      (void)f.u32();  // marker
      const std::uint32_t payload_len = f.u32();
      if (!f.ok || f.left < payload_len) {
        // Aborted mid-frame: keep the complete prefix.
        out->truncated_bytes = r.left;
        out->streams.push_back(std::move(stream));
        return true;
      }
      SnapshotFrame frame;
      if (!parse_frame(ByteReader{f.p, payload_len}, stream.info, &frame)) {
        if (error) *error = "malformed frame payload";
        return false;
      }
      stream.frames.push_back(std::move(frame));
      r.p = f.p + payload_len;
      r.left = f.left - payload_len;
    }
    if (r.left > 0 && r.left < 8) {
      out->truncated_bytes = r.left;
      r.left = 0;
    }
    out->streams.push_back(std::move(stream));
  }
  return true;
}

// ---- flight recorder ----------------------------------------------------

const char* flight_event_name(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kOpBegin:
      return "op_begin";
    case FlightEventKind::kOpFinish:
      return "op_finish";
    case FlightEventKind::kGcDecision:
      return "gc_decision";
    case FlightEventKind::kEraseSuspend:
      return "erase_suspend";
    case FlightEventKind::kCheckFailure:
      return "check_failure";
  }
  return "?";
}

FlightRecorder::FlightRecorder(std::uint32_t capacity) {
  PPSSD_CHECK(capacity > 0);
  ring_.resize(capacity);
}

std::vector<FlightEvent> FlightRecorder::events() const {
  std::vector<FlightEvent> out;
  const std::uint64_t cap = ring_.size();
  const std::uint64_t count = head_ < cap ? head_ : cap;
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    out.push_back(
        ring_[static_cast<std::size_t>((head_ - count + i) % cap)]);
  }
  return out;
}

bool FlightRecorder::dump(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const std::vector<FlightEvent> evs = events();
  std::vector<unsigned char> buf;
  buf.reserve(32 + evs.size() * kFlightEventBytes);
  buf.insert(buf.end(), kFlightMagic, kFlightMagic + 8);
  put_u32(buf, kFlightVersion);
  put_u32(buf, capacity());
  put_u64(buf, head_);
  put_u32(buf, static_cast<std::uint32_t>(evs.size()));
  for (const FlightEvent& e : evs) {
    put_u64(buf, e.time);
    put_u64(buf, e.id);
    put_u32(buf, e.a);
    put_u32(buf, e.b);
    put_u8(buf, static_cast<std::uint8_t>(e.kind));
    put_u8(buf, e.detail);
  }
  out.write(reinterpret_cast<const char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
  return static_cast<bool>(out);
}

bool load_flight(const std::string& path, FlightFile* out,
                 std::string* error) {
  PPSSD_CHECK(out != nullptr);
  *out = FlightFile{};
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  ByteReader r{reinterpret_cast<const unsigned char*>(bytes.data()),
               bytes.size()};
  if (r.left < 8 || std::memcmp(r.p, kFlightMagic, 8) != 0) {
    if (error) *error = "not a flight dump (bad magic)";
    return false;
  }
  r.p += 8;
  r.left -= 8;
  out->version = r.u32();
  out->capacity = r.u32();
  out->recorded = r.u64();
  const std::uint32_t count = r.u32();
  if (!r.ok || out->version != kFlightVersion) {
    if (error) *error = "unsupported flight dump header";
    return false;
  }
  // Events to EOF (bounded by the declared count); a truncated tail
  // event is dropped.
  for (std::uint32_t i = 0; i < count && r.left >= kFlightEventBytes; ++i) {
    FlightEvent e;
    e.time = r.u64();
    e.id = r.u64();
    e.a = r.u32();
    e.b = r.u32();
    e.kind = static_cast<FlightEventKind>(r.u8());
    e.detail = r.u8();
    if (!r.ok) break;
    out->events.push_back(e);
  }
  return true;
}

// ---- environment knobs --------------------------------------------------

IntrospectOptions IntrospectOptions::from_env() {
  IntrospectOptions opts;
  if (const char* ms = std::getenv("PPSSD_SNAPSHOT")) {
    const double v = std::atof(ms);
    if (v > 0.0) opts.snapshot_every_ns = ms_to_ns(v);
  }
  if (const char* p = std::getenv("PPSSD_SNAPSHOT_PATH")) {
    if (*p) opts.snapshot_path = p;
  }
  if (const char* n = std::getenv("PPSSD_FLIGHT")) {
    const long v = std::atol(n);
    if (v > 0) opts.flight_capacity = static_cast<std::uint32_t>(v);
  }
  if (const char* p = std::getenv("PPSSD_FLIGHT_PATH")) {
    if (*p) opts.flight_path = p;
  }
  return opts;
}

}  // namespace ppssd::telemetry::introspect
