// Read-only adapter: present a warm-start checkpoint (PPSSDWRM,
// common/warmstart_format.h) as a single-frame snapshot stream, so every
// existing device_inspect view (--heatmap, --diff, --verify, --timeline)
// works on checkpoints without a second rendering path.
//
// The adapter parses only the *leading* sections of the Ssd::save()
// payload — the FlashArray state and the BlockManager free lists — and
// derives exactly the per-block / per-plane figures Snapshotter walks
// out of a live device (see snapshotter.cpp): write frontier = pages
// with program ops, valid/invalid from the subpage-state rows,
// reprogrammed marks below the frontier, free counts from the heap
// lengths, pressure against the header's GC thresholds. Everything past
// the BlockManager section (mapping table, scheme side-state, controller
// queue) is ignored; the container checksum is validated first, so a
// short or corrupt file is rejected, never misread.
//
// This lives in ppssd_telemetry (common-only dependencies) like the rest
// of the format layer: it parses bytes, it never constructs a device.
#pragma once

#include <string>

#include "telemetry/introspect/format.h"

namespace ppssd::telemetry::introspect {

/// True when `path` starts with the PPSSDWRM container magic (the
/// cheap dispatch test tools use to pick a loader).
[[nodiscard]] bool is_warmstart_file(const std::string& path);

/// Load a warm-start checkpoint as a SnapshotFile with one stream and
/// one frame at sim time 0 (checkpoints are cut after reset_timing()).
/// Returns false with `*error` set on I/O failure, bad magic/version, a
/// checksum mismatch, or a payload too short for the array + block
/// manager sections.
[[nodiscard]] bool load_warmstart_as_snapshot(const std::string& path,
                                              SnapshotFile* out,
                                              std::string* error);

}  // namespace ppssd::telemetry::introspect
