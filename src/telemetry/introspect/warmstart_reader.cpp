#include "telemetry/introspect/warmstart_reader.h"

#include <cstdint>
#include <fstream>
#include <string_view>
#include <vector>

#include "common/state_io.h"
#include "common/warmstart_format.h"

namespace ppssd::telemetry::introspect {

namespace {

bool fail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

bool read_file(const std::string& path, std::vector<std::uint8_t>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  in.seekg(0, std::ios::end);
  const auto size = in.tellg();
  if (size < 0) return false;
  out->resize(static_cast<std::size_t>(size));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(out->data()),
          static_cast<std::streamsize>(out->size()));
  return static_cast<bool>(in);
}

}  // namespace

bool is_warmstart_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[8] = {};
  in.read(magic, sizeof magic);
  return in &&
         std::string_view(magic, sizeof magic) == io::warmstart::kMagic;
}

bool load_warmstart_as_snapshot(const std::string& path, SnapshotFile* out,
                                std::string* error) {
  std::vector<std::uint8_t> bytes;
  if (!read_file(path, &bytes)) return fail(error, "cannot read file");

  io::StateSource src(bytes);
  io::warmstart::Header h;
  if (!io::warmstart::read_header(src, &h)) {
    return fail(error, "not a warm-start checkpoint (bad magic, container "
                       "version, or truncated header)");
  }
  const std::size_t header_end = src.pos();
  if (bytes.size() - header_end != h.payload_size) {
    return fail(error, "payload size disagrees with the container header");
  }
  if (io::warmstart::fnv1a(bytes.data() + header_end, h.payload_size) !=
      h.payload_checksum) {
    return fail(error, "payload checksum mismatch");
  }
  if (h.planes == 0 || h.total_blocks % h.planes != 0) {
    return fail(error, "degenerate geometry in container header");
  }
  const std::uint32_t blocks_per_plane = h.total_blocks / h.planes;

  // The payload is the Ssd::save() stream; its leading sections are
  // FlashArray::save() then BlockManager::save() (keep the parses below
  // in sync with those writers — the shared container version gates
  // incompatible layout changes).
  io::StateSource p(bytes.data() + header_end,
                    static_cast<std::size_t>(h.payload_size));

  // ---- FlashArray section ----------------------------------------------
  const std::uint32_t spp = p.u32();
  const std::uint32_t block_count = p.u32();
  const std::uint64_t slot_count = p.u64();
  if (!p.ok() || spp != h.subpages_per_page || block_count != h.total_blocks) {
    return fail(error, "array shape disagrees with the container header");
  }
  const std::vector<std::uint8_t> sp_state = p.vec<std::uint8_t>();
  (void)p.vec<std::uint32_t>();  // sp_owner
  (void)p.vec<std::uint32_t>();  // sp_wtime
  (void)p.vec<std::uint32_t>();  // sp_version
  (void)p.vec<std::uint8_t>();   // sp_programs_before
  (void)p.vec<std::uint16_t>();  // sp_neighbors_before
  if (!p.ok() || sp_state.size() != slot_count) {
    return fail(error, "subpage-state rows truncated or missized");
  }
  (void)p.vec<std::uint8_t>();  // pg_program_ops
  (void)p.vec<std::uint16_t>();  // pg_neighbor_programs
  const std::vector<std::uint8_t> pg_reprogrammed = p.vec<std::uint8_t>();
  if (!p.ok()) return fail(error, "page rows truncated");

  SnapshotStream stream;
  stream.info.scheme = h.scheme;
  stream.info.total_blocks = h.total_blocks;
  stream.info.planes = h.planes;
  stream.info.subpages_per_page = h.subpages_per_page;
  stream.info.slc_blocks_per_plane = h.slc_blocks_per_plane;
  stream.info.slc_gc_threshold = h.slc_gc_threshold;
  stream.info.mlc_gc_threshold = h.mlc_gc_threshold;

  SnapshotFrame frame;  // time 0: checkpoints are cut after reset_timing()
  frame.blocks.reserve(h.total_blocks);
  std::uint64_t page_cursor = 0;  // blocks are laid out in order
  for (std::uint32_t b = 0; b < block_count; ++b) {
    const bool slc = b % blocks_per_plane < h.slc_blocks_per_plane;
    const std::uint32_t pages =
        slc ? h.slc_pages_per_block : h.mlc_pages_per_block;

    BlockState bs;
    bs.level = p.u8();
    bs.erase_count = p.u32();
    (void)p.u64();  // last_erase_time
    bs.mode = slc ? 0 : 1;
    bs.pages = static_cast<std::uint16_t>(pages);
    const std::uint32_t frontier = p.u32();
    bs.write_frontier = static_cast<std::uint16_t>(frontier);
    bs.valid_subpages = p.u32();
    bs.invalid_subpages = p.u32();
    (void)p.u64();  // sum_write_time_ms
    // Skip the sparse age histogram: base_ms, then n (bucket, count, sum)
    // entries.
    (void)p.u32();
    const std::uint32_t hist_n = p.u32();
    for (std::uint32_t i = 0; p.ok() && i < hist_n; ++i) {
      (void)p.u16();
      (void)p.u32();
      (void)p.u64();
    }
    if (!p.ok() || frontier > pages) {
      return fail(error, "block record truncated or out of shape");
    }
    if (page_cursor + pages > pg_reprogrammed.size()) {
      return fail(error, "block pages run past the page rows");
    }
    // Same walk as Snapshotter::snapshot_now: sticky marks count only
    // below the frontier (an erase clears the pages but the mark rows
    // are rewritten lazily).
    for (std::uint32_t pg = 0; pg < frontier; ++pg) {
      bs.reprogrammed_pages += pg_reprogrammed[page_cursor + pg] != 0;
    }
    page_cursor += pages;
    frame.blocks.push_back(bs);
  }
  if (page_cursor != pg_reprogrammed.size()) {
    return fail(error, "page rows extend past the last block");
  }
  for (std::uint32_t pl = 0; pl < h.planes; ++pl) {
    (void)p.u64();  // programs
    (void)p.u64();  // reads
    (void)p.u64();  // erases
  }
  for (int i = 0; i < 10; ++i) {
    (void)p.u64();  // ArrayCounters: ten u64 totals (nand/flash_array.h)
  }
  if (!p.ok()) return fail(error, "array section truncated");

  // ---- BlockManager section --------------------------------------------
  const std::vector<std::uint8_t> bm_state = p.vec<std::uint8_t>();
  const std::uint64_t bm_planes = p.u64();
  if (!p.ok() || bm_state.size() != h.total_blocks ||
      bm_planes != h.planes) {
    return fail(error, "block-manager shape disagrees with the header");
  }
  frame.planes.reserve(h.planes);
  for (std::uint32_t pl = 0; pl < h.planes; ++pl) {
    // FreeEntry is two u32s; reading the heap vectors as u64 elements
    // consumes the identical bytes and the lengths are the free counts.
    const auto slc_free = p.vec<std::uint64_t>();
    const auto mlc_free = p.vec<std::uint64_t>();
    for (int i = 0; i < 8; ++i) {
      (void)p.u32();  // open[4] + level_counts[4]
    }
    PlaneState ps;
    ps.free_slc = static_cast<std::uint32_t>(slc_free.size());
    ps.free_mlc = static_cast<std::uint32_t>(mlc_free.size());
    ps.pressure_slc = ps.free_slc <= h.slc_gc_threshold ? 1 : 0;
    ps.pressure_mlc = ps.free_mlc <= h.mlc_gc_threshold ? 1 : 0;
    frame.planes.push_back(ps);
  }
  if (!p.ok()) return fail(error, "block-manager section truncated");
  // The rest of the payload (mapping table, scheme side-state, deferred
  // controller queue) is not rendered by any snapshot view; ignore it.

  stream.frames.push_back(std::move(frame));
  out->streams.clear();
  out->truncated_bytes = 0;
  out->streams.push_back(std::move(stream));
  return true;
}

}  // namespace ppssd::telemetry::introspect
