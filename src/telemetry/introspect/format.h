// Device-state introspection: binary snapshot streams and the crash
// flight recorder.
//
// This header is the *format* layer: record structs, the StateSink that
// schemes fill from their `inspect()` hook, the append-mode stream
// writer, the truncation-tolerant loaders, and the fixed-size event ring
// the controller and GC driver feed. Like the attribution ledger, it
// sees only common/ types — the walker that knows FlashArray /
// BlockManager / Scheme lives one layer up (telemetry/introspect/
// snapshotter.h, library ppssd_introspect), so ppssd_telemetry keeps its
// common-only dependency edge.
//
// Snapshot file layout (little-endian, magic "PPSSDSNP"): a file is a
// sequence of *streams*, one per Snapshotter::bind() — the writer opens
// the file in append mode, so sequential experiment cells sharing one
// PPSSD_SNAPSHOT_PATH each contribute their own stream. Each stream is
//
//   magic(8) version(u32) header_len(u32) header_payload
//   { frame } *
//
// where header_payload names the scheme and pins the geometry
// (total_blocks, planes, subpages/page, SLC blocks/plane, GC
// thresholds), and each frame is
//
//   kFrameMarker(u32) payload_len(u32) payload
//   payload = time(u64) seq(u32)
//             BlockRecord * total_blocks        (kBlockRecordBytes each)
//             PlaneRecord * planes              (kPlaneRecordBytes each)
//             kv_count(u32) { name(str) tag(u8) value(u64/f64) } *
//
// The loader reads complete prefixes: a frame (or trailing stream
// header) cut off mid-record — an aborted run — is dropped, everything
// before it loads. Same contract as the PPSSDALG ledger loader.
//
// Flight dump layout (magic "PPSSDFLT"): header + fixed-size events,
// oldest first; the loader is truncation-tolerant the same way.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace ppssd::telemetry::introspect {

inline constexpr char kSnapshotMagic[9] = "PPSSDSNP";
inline constexpr std::uint32_t kSnapshotVersion = 1;
inline constexpr std::uint32_t kFrameMarker = 0x454d5246;  // "FRME"
inline constexpr std::uint32_t kBlockRecordBytes = 20;
inline constexpr std::uint32_t kPlaneRecordBytes = 10;

inline constexpr char kFlightMagic[9] = "PPSSDFLT";
inline constexpr std::uint32_t kFlightVersion = 1;
inline constexpr std::uint32_t kFlightEventBytes = 26;

/// Per-block state at frame time, as the walker read it out of the
/// array's running aggregates (no page walk except the reprogram marks).
struct BlockState {
  std::uint32_t erase_count = 0;
  std::uint32_t valid_subpages = 0;
  std::uint32_t invalid_subpages = 0;
  std::uint16_t write_frontier = 0;      // pages programmed so far
  std::uint16_t pages = 0;               // page count for the block's mode
  std::uint16_t reprogrammed_pages = 0;  // sticky IPS promotion marks
  std::uint8_t mode = 0;                 // CellMode
  std::uint8_t level = 0;                // BlockLevel
};

/// Per-(plane,mode) GC pressure at frame time.
struct PlaneState {
  std::uint32_t free_slc = 0;
  std::uint32_t free_mlc = 0;
  std::uint8_t pressure_slc = 0;  // needs_gc(plane, SLC)
  std::uint8_t pressure_mlc = 0;  // needs_gc(plane, MLC)
};

/// Stream identity: which scheme produced it, over which geometry.
struct StreamInfo {
  std::string scheme;
  std::uint32_t total_blocks = 0;
  std::uint32_t planes = 0;
  std::uint32_t subpages_per_page = 0;
  std::uint32_t slc_blocks_per_plane = 0;
  std::uint32_t slc_gc_threshold = 0;  // blocks, per plane
  std::uint32_t mlc_gc_threshold = 0;
};

/// Named scalar collector handed to Scheme::inspect(): schemes append
/// their occupancy/side-table figures here and the writer serialises
/// them into the frame's key/value section. Names should be stable —
/// tools key on them ("mapped_lsns", "slc_cached_subpages", ...).
class StateSink {
 public:
  struct Entry {
    std::string name;
    bool is_float = false;
    std::uint64_t u = 0;
    double d = 0.0;
  };

  void value(std::string_view name, std::uint64_t v) {
    entries_.push_back(Entry{std::string(name), false, v, 0.0});
  }
  void value(std::string_view name, double v) {
    entries_.push_back(Entry{std::string(name), true, 0, v});
  }

  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }
  /// Entry by name, or nullptr (linear scan; frames carry few entries).
  [[nodiscard]] const Entry* find(std::string_view name) const;
  void clear() { entries_.clear(); }

 private:
  std::vector<Entry> entries_;
};

/// Append-mode stream writer. One begin_stream() per bound device;
/// write_frame() serialises and flushes (so the crash hook always finds
/// every completed frame on disk).
class SnapshotWriter {
 public:
  SnapshotWriter() = default;
  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  /// Open `path` for appending. Returns false (and stays closed) on I/O
  /// failure.
  bool open(const std::string& path);
  [[nodiscard]] bool is_open() const { return out_.is_open(); }
  [[nodiscard]] const std::string& path() const { return path_; }

  void begin_stream(const StreamInfo& info);

  /// Scheme key/value section of the next frame; cleared by write_frame.
  [[nodiscard]] StateSink& sink() { return sink_; }

  void write_frame(SimTime now, const std::vector<BlockState>& blocks,
                   const std::vector<PlaneState>& planes);

  [[nodiscard]] std::uint64_t frames_written() const { return frames_; }
  void flush();

 private:
  std::ofstream out_;
  std::string path_;
  StateSink sink_;
  std::vector<unsigned char> buf_;
  std::uint32_t seq_ = 0;
  std::uint64_t frames_ = 0;
};

struct SnapshotFrame {
  SimTime time = 0;
  std::uint32_t seq = 0;
  std::vector<BlockState> blocks;
  std::vector<PlaneState> planes;
  StateSink values;
};

struct SnapshotStream {
  StreamInfo info;
  std::vector<SnapshotFrame> frames;
};

struct SnapshotFile {
  std::vector<SnapshotStream> streams;
  /// Bytes of a trailing stream header or frame that arrived incomplete
  /// (aborted run); informational.
  std::uint64_t truncated_bytes = 0;
};

/// Load every complete stream/frame of `path`. Returns false only when
/// the file cannot be read at all or its first bytes are not a snapshot
/// stream; a truncated tail loads as the complete prefix.
[[nodiscard]] bool load_snapshots(const std::string& path, SnapshotFile* out,
                                  std::string* error);

// ---- flight recorder ----------------------------------------------------

enum class FlightEventKind : std::uint8_t {
  kOpBegin = 1,       // PhysOp accepted by the controller (time = ready)
  kOpFinish = 2,      // its computed completion time
  kGcDecision = 3,    // victim committed (id = victim block, a = plane)
  kEraseSuspend = 4,  // foreground op preempted an in-progress erase
  kCheckFailure = 5,  // appended by the crash hook before dumping
};

[[nodiscard]] const char* flight_event_name(FlightEventKind kind);

struct FlightEvent {
  SimTime time = 0;      // sim time of the event
  std::uint64_t id = 0;  // op sequence number / victim block id
  std::uint32_t a = 0;   // chip or plane
  std::uint32_t b = 0;   // channel, free-block count, saved ns, ...
  FlightEventKind kind = FlightEventKind::kOpBegin;
  /// For op events: (PhysOp::Kind << 2) | (CellMode << 1) | background.
  std::uint8_t detail = 0;
};

/// Fixed-size ring of recent controller/GC events. Pure memory writes on
/// the record path; never allocates after construction, so the crash
/// hook can dump it from inside a failing PPSSD_CHECK.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::uint32_t capacity);

  void record(const FlightEvent& ev) {
    ring_[static_cast<std::size_t>(head_ % ring_.size())] = ev;
    ++head_;
  }

  [[nodiscard]] std::uint32_t capacity() const {
    return static_cast<std::uint32_t>(ring_.size());
  }
  /// Total events ever recorded (>= capacity once the ring wrapped).
  [[nodiscard]] std::uint64_t recorded() const { return head_; }

  /// Event by absolute record index (0 = first ever recorded). The index
  /// must still be retained: recorded() - capacity() <= index < recorded().
  /// Used by the shard executor to replay a staging ring's window slice
  /// into the run's real recorder at the window barrier.
  [[nodiscard]] const FlightEvent& event_at(std::uint64_t index) const {
    return ring_[static_cast<std::size_t>(index % ring_.size())];
  }

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<FlightEvent> events() const;

  /// Write the ring to `path` (overwrite). Returns false on I/O failure.
  bool dump(const std::string& path) const;

 private:
  std::vector<FlightEvent> ring_;
  std::uint64_t head_ = 0;
};

struct FlightFile {
  std::uint32_t version = 0;
  std::uint32_t capacity = 0;
  std::uint64_t recorded = 0;  // total ever recorded at dump time
  std::vector<FlightEvent> events;
};

/// Load a flight dump; a truncated tail event is dropped (complete
/// prefix loads), mirroring the snapshot and ledger loaders.
[[nodiscard]] bool load_flight(const std::string& path, FlightFile* out,
                               std::string* error);

// ---- environment knobs --------------------------------------------------

/// Introspection env knobs (read by from_env; all optional):
///
///   PPSSD_SNAPSHOT=ms        snapshot interval in sim-time milliseconds
///   PPSSD_SNAPSHOT_PATH=f    snapshot stream file (default
///                            ppssd_snapshots.bin, append mode)
///   PPSSD_FLIGHT=n           flight-recorder ring capacity in events
///   PPSSD_FLIGHT_PATH=f      crash/finish dump target (default
///                            ppssd_flight.bin)
struct IntrospectOptions {
  SimTime snapshot_every_ns = 0;  // 0 = snapshots off
  std::string snapshot_path = "ppssd_snapshots.bin";
  std::uint32_t flight_capacity = 0;  // 0 = flight recorder off
  std::string flight_path = "ppssd_flight.bin";

  [[nodiscard]] bool any() const {
    return snapshot_every_ns > 0 || flight_capacity > 0;
  }

  [[nodiscard]] static IntrospectOptions from_env();
};

}  // namespace ppssd::telemetry::introspect
