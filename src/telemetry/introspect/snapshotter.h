// The introspection walker: periodically serialises the full device
// state of a bound cache scheme into the snapshot stream, and owns the
// crash flight recorder.
//
// Layering: this is the one introspection component that sees the whole
// device (FlashArray, BlockManager, Scheme), so it lives in its own
// library (ppssd_introspect, linked by ppssd_sim) instead of
// ppssd_telemetry — the *format* layer underneath keeps its common-only
// dependency edge (see telemetry/introspect/format.h).
//
// Lifecycle mirrors the telemetry bundle: construct from env
// (PPSSD_SNAPSHOT / PPSSD_FLIGHT; from_env() returns null when neither
// is set, and the replayer's per-request tick is a single null check),
// bind() to a scheme after warm-up, tick() during replay, finish() at
// the end of the measured phase. bind() also installs the PPSSD_CHECK
// failure hook: if an invariant trips mid-run, the hook appends a
// kCheckFailure event, dumps the flight ring, and flushes the snapshot
// stream — frames are flushed as written, so the stream on disk already
// holds every completed frame.
//
// The snapshotter is a pure observer: it reads running aggregates
// (plus the per-page reprogram marks up to each block's frontier) and
// never touches scheme or array state, so results with and without it
// are byte-identical.
#pragma once

#include <memory>
#include <vector>

#include "common/types.h"
#include "telemetry/introspect/format.h"

namespace ppssd::cache {
class Scheme;
}

namespace ppssd::telemetry::introspect {

class Snapshotter {
 public:
  explicit Snapshotter(const IntrospectOptions& opts);
  ~Snapshotter();

  Snapshotter(const Snapshotter&) = delete;
  Snapshotter& operator=(const Snapshotter&) = delete;

  /// Build from PPSSD_SNAPSHOT / PPSSD_FLIGHT; null when neither is set.
  [[nodiscard]] static std::unique_ptr<Snapshotter> from_env();

  /// Bind to the device this snapshotter observes: opens the snapshot
  /// stream (append mode — sequential cells sharing one path each get
  /// their own stream), writes the stream header from the scheme's
  /// geometry, and installs the check-failure hook. Returns false when
  /// the snapshot file cannot be opened (flight-only configurations
  /// still bind). The scheme must outlive the snapshotter or finish()
  /// must run first.
  bool bind(const cache::Scheme& scheme);

  /// Per-request pulse from the replayer: snapshots when `now` crossed
  /// the configured interval. Inline null-ish fast path.
  void tick(SimTime now) {
    if (scheme_ != nullptr && every_ > 0 && now >= next_due_) {
      snapshot_now(now);
    }
  }

  /// Walk the device and append one frame at time `now` (on-demand
  /// entry point; tick() calls it on interval crossings).
  void snapshot_now(SimTime now);

  /// Close out the run: writes a final frame at `end` (so short runs
  /// still produce at least one), dumps the flight ring on demand, and
  /// uninstalls the failure hook. Idempotent.
  void finish(SimTime end);

  /// The flight recorder, or null when PPSSD_FLIGHT is unset. The Ssd
  /// hands this to the controller and scheme at attach time.
  [[nodiscard]] FlightRecorder* flight() { return flight_.get(); }

  [[nodiscard]] const IntrospectOptions& options() const { return opts_; }
  [[nodiscard]] std::uint64_t frames_written() const {
    return writer_.frames_written();
  }

 private:
  static void on_check_failure(void* ctx);

  IntrospectOptions opts_;
  SimTime every_ = 0;
  SimTime next_due_ = 0;
  SimTime last_time_ = 0;
  const cache::Scheme* scheme_ = nullptr;
  SnapshotWriter writer_;
  std::unique_ptr<FlightRecorder> flight_;
  // Reused frame buffers (no per-frame allocation after the first).
  std::vector<BlockState> blocks_;
  std::vector<PlaneState> planes_;
  bool hook_installed_ = false;
  bool finished_ = false;
};

}  // namespace ppssd::telemetry::introspect
