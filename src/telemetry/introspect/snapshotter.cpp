#include "telemetry/introspect/snapshotter.h"

#include <cstdio>

#include "cache/scheme.h"
#include "common/check.h"

namespace ppssd::telemetry::introspect {

Snapshotter::Snapshotter(const IntrospectOptions& opts)
    : opts_(opts), every_(opts.snapshot_every_ns) {
  if (opts_.flight_capacity > 0) {
    flight_ = std::make_unique<FlightRecorder>(opts_.flight_capacity);
  }
}

Snapshotter::~Snapshotter() {
  if (hook_installed_) {
    detail::set_check_failure_hook(nullptr, nullptr);
  }
}

std::unique_ptr<Snapshotter> Snapshotter::from_env() {
  const IntrospectOptions opts = IntrospectOptions::from_env();
  if (!opts.any()) return nullptr;
  return std::make_unique<Snapshotter>(opts);
}

bool Snapshotter::bind(const cache::Scheme& scheme) {
  scheme_ = &scheme;
  finished_ = false;
  next_due_ = every_;
  last_time_ = 0;

  bool ok = true;
  if (every_ > 0) {
    if (!writer_.is_open() && !writer_.open(opts_.snapshot_path)) {
      std::fprintf(stderr, "ppssd: cannot open snapshot file %s\n",
                   opts_.snapshot_path.c_str());
      every_ = 0;  // degrade to flight-only rather than crashing the run
      ok = false;
    } else {
      const nand::Geometry& geom = scheme.array().geometry();
      StreamInfo info;
      info.scheme = scheme.name();
      info.total_blocks = geom.total_blocks();
      info.planes = geom.planes();
      info.subpages_per_page = geom.subpages_per_page();
      info.slc_blocks_per_plane = geom.slc_blocks_per_plane();
      info.slc_gc_threshold = scheme.blocks().gc_threshold_blocks(CellMode::kSlc);
      info.mlc_gc_threshold = scheme.blocks().gc_threshold_blocks(CellMode::kMlc);
      writer_.begin_stream(info);
    }
  }

  detail::set_check_failure_hook(&Snapshotter::on_check_failure, this);
  hook_installed_ = true;
  return ok;
}

void Snapshotter::snapshot_now(SimTime now) {
  if (scheme_ == nullptr || !writer_.is_open()) return;
  const nand::FlashArray& array = scheme_->array();
  const nand::Geometry& geom = array.geometry();
  const ftl::BlockManager& bm = scheme_->blocks();

  blocks_.resize(geom.total_blocks());
  for (BlockId b = 0; b < geom.total_blocks(); ++b) {
    const nand::Block& blk = array.block(b);
    BlockState& bs = blocks_[b];
    bs.erase_count = blk.erase_count();
    bs.valid_subpages = blk.valid_subpages();
    bs.invalid_subpages = blk.invalid_subpages();
    bs.write_frontier = static_cast<std::uint16_t>(blk.write_frontier());
    bs.pages = static_cast<std::uint16_t>(blk.page_count());
    std::uint16_t reprogrammed = 0;
    for (PageId p = 0; p < blk.write_frontier(); ++p) {
      if (blk.page(p).reprogrammed()) ++reprogrammed;
    }
    bs.reprogrammed_pages = reprogrammed;
    bs.mode = static_cast<std::uint8_t>(blk.mode());
    bs.level = static_cast<std::uint8_t>(blk.level());
  }

  planes_.resize(geom.planes());
  for (std::uint32_t p = 0; p < geom.planes(); ++p) {
    PlaneState& ps = planes_[p];
    ps.free_slc = bm.free_blocks(p, CellMode::kSlc);
    ps.free_mlc = bm.free_blocks(p, CellMode::kMlc);
    ps.pressure_slc = bm.needs_gc(p, CellMode::kSlc) ? 1 : 0;
    ps.pressure_mlc = bm.needs_gc(p, CellMode::kMlc) ? 1 : 0;
  }

  scheme_->inspect(writer_.sink());
  writer_.write_frame(now, blocks_, planes_);

  last_time_ = now;
  if (every_ > 0) next_due_ = now + every_;
}

void Snapshotter::finish(SimTime end) {
  if (finished_) return;
  finished_ = true;
  if (scheme_ != nullptr && writer_.is_open()) {
    snapshot_now(end);
    writer_.flush();
  }
  if (flight_ != nullptr && flight_->recorded() > 0) {
    if (!flight_->dump(opts_.flight_path)) {
      std::fprintf(stderr, "ppssd: cannot write flight dump %s\n",
                   opts_.flight_path.c_str());
    }
  }
  if (hook_installed_) {
    detail::set_check_failure_hook(nullptr, nullptr);
    hook_installed_ = false;
  }
  scheme_ = nullptr;
}

void Snapshotter::on_check_failure(void* ctx) {
  // Last-gasp path, called from a failing PPSSD_CHECK: do not walk
  // device state (the invariant just proved it inconsistent) — persist
  // what is already in memory. Per-frame flushes mean the stream on
  // disk holds every completed frame; only the flight ring needs
  // writing out.
  auto* self = static_cast<Snapshotter*>(ctx);
  if (self->flight_ != nullptr) {
    FlightEvent ev;
    ev.time = self->last_time_;
    ev.kind = FlightEventKind::kCheckFailure;
    self->flight_->record(ev);
    if (self->flight_->dump(self->opts_.flight_path)) {
      std::fprintf(stderr, "ppssd: flight recorder dumped to %s (%llu events)\n",
                   self->opts_.flight_path.c_str(),
                   static_cast<unsigned long long>(self->flight_->recorded()));
    }
  }
  self->writer_.flush();
}

}  // namespace ppssd::telemetry::introspect
