#include "telemetry/trace_log.h"

#include <algorithm>
#include <cstdio>
#include <mutex>

namespace ppssd::telemetry {

namespace {

// Live-log registry backing the atexit finalizer. Logs deregister in
// their destructor, so only logs still alive at process exit (globals,
// leaks, std::exit mid-run) are finalized here.
std::mutex& live_logs_mutex() {
  static std::mutex mu;
  return mu;
}

std::vector<TraceLog*>& live_logs() {
  static std::vector<TraceLog*> logs;
  return logs;
}

void close_live_logs() {
  std::lock_guard<std::mutex> lock(live_logs_mutex());
  for (TraceLog* log : live_logs()) log->close();
}

void register_live(TraceLog* log) {
  std::lock_guard<std::mutex> lock(live_logs_mutex());
  static const bool registered = [] {
    std::atexit(close_live_logs);
    return true;
  }();
  (void)registered;
  live_logs().push_back(log);
}

void deregister_live(TraceLog* log) {
  std::lock_guard<std::mutex> lock(live_logs_mutex());
  auto& logs = live_logs();
  logs.erase(std::remove(logs.begin(), logs.end(), log), logs.end());
}

}  // namespace

const char* category_name(TraceCategory cat) {
  switch (cat) {
    case TraceCategory::kHost:
      return "host";
    case TraceCategory::kFlash:
      return "flash";
    case TraceCategory::kGc:
      return "gc";
    case TraceCategory::kCache:
      return "cache";
    case TraceCategory::kEcc:
      return "ecc";
    case TraceCategory::kMode:
      return "mode";
  }
  return "?";
}

std::uint32_t parse_categories(const std::string& csv) {
  if (csv.empty() || csv == "all") return kAllCategories;
  std::uint32_t mask = 0;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string token =
        csv.substr(pos, comma == std::string::npos ? std::string::npos
                                                   : comma - pos);
    for (const TraceCategory cat :
         {TraceCategory::kHost, TraceCategory::kFlash, TraceCategory::kGc,
          TraceCategory::kCache, TraceCategory::kEcc, TraceCategory::kMode}) {
      if (token == category_name(cat)) {
        mask |= static_cast<std::uint32_t>(cat);
      }
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return mask == 0 ? kAllCategories : mask;
}

TraceLog::TraceLog(std::ostream& out, Options opts)
    : out_(&out), opts_(opts) {
  buffer_.reserve(opts_.buffer_events);
  *out_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  seal();
  register_live(this);
}

TraceLog::TraceLog(std::ostream& out) : TraceLog(out, Options{}) {}

std::unique_ptr<TraceLog> TraceLog::open_file(const std::string& path,
                                              Options opts) {
  auto file = std::make_unique<std::ofstream>(path);
  if (!*file) return nullptr;
  auto log = std::make_unique<TraceLog>(*file, opts);
  log->owned_file_ = std::move(file);
  return log;
}

std::unique_ptr<TraceLog> TraceLog::open_file(const std::string& path) {
  return open_file(path, Options{});
}

TraceLog::~TraceLog() {
  deregister_live(this);
  close();
}

void TraceLog::record(TraceCategory cat, const char* name, char phase,
                      SimTime ts, SimTime dur, std::uint32_t lane,
                      std::initializer_list<Arg> args) {
  if (closed_ || !enabled(cat)) return;
  if (opts_.max_events != 0 && emitted_ >= opts_.max_events) {
    ++dropped_;
    return;
  }
  Event e;
  e.name = name;
  e.cat = cat;
  e.phase = phase;
  e.ts = ts;
  e.dur = dur;
  e.lane = lane;
  e.nargs = 0;
  for (const Arg& a : args) {
    if (e.nargs == kMaxArgs) break;
    e.args[e.nargs++] = a;
  }
  buffer_.push_back(e);
  ++emitted_;
  if (buffer_.size() >= opts_.buffer_events) flush();
}

void TraceLog::span(TraceCategory cat, const char* name, SimTime start,
                    SimTime end, std::uint32_t lane,
                    std::initializer_list<Arg> args) {
  record(cat, name, 'X', start, end >= start ? end - start : 0, lane, args);
}

void TraceLog::instant(TraceCategory cat, const char* name, SimTime ts,
                       std::uint32_t lane, std::initializer_list<Arg> args) {
  record(cat, name, 'i', ts, 0, lane, args);
}

void TraceLog::write_event(const Event& e) {
  // ts/dur in microseconds of sim time; fixed-point keeps ns resolution.
  char head[256];
  const double ts_us = static_cast<double>(e.ts) / 1e3;
  int n;
  if (e.phase == 'X') {
    const double dur_us = static_cast<double>(e.dur) / 1e3;
    n = std::snprintf(head, sizeof head,
                      "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                      "\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%u",
                      e.name, category_name(e.cat), ts_us, dur_us, e.lane);
  } else {
    n = std::snprintf(head, sizeof head,
                      "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\","
                      "\"s\":\"t\",\"ts\":%.3f,\"pid\":0,\"tid\":%u",
                      e.name, category_name(e.cat), ts_us, e.lane);
  }
  if (!first_event_) *out_ << ',';
  first_event_ = false;
  out_->write(head, n);
  if (e.nargs > 0) {
    *out_ << ",\"args\":{";
    for (std::uint32_t i = 0; i < e.nargs; ++i) {
      char arg[96];
      const int m =
          std::snprintf(arg, sizeof arg, "%s\"%s\":%.17g", i ? "," : "",
                        e.args[i].key, e.args[i].value);
      out_->write(arg, m);
    }
    *out_ << '}';
  }
  *out_ << '}';
}

void TraceLog::seal() {
  // Append the document terminator, push it to the sink, then rewind so
  // the next event overwrites it — an aborted run keeps a parseable
  // file. Streams without a seek position (pipes) skip the seal; they
  // get the terminator at close() only.
  const std::ostream::pos_type pos = out_->tellp();
  if (pos == std::ostream::pos_type(-1)) return;
  *out_ << "]}";
  out_->flush();
  out_->seekp(pos);
}

void TraceLog::flush() {
  if (closed_) return;  // the stream may be gone (owned file released)
  for (const Event& e : buffer_) write_event(e);
  buffer_.clear();
  seal();
  out_->flush();
}

void TraceLog::close() {
  if (closed_) return;
  flush();
  // Final metadata instant so a truncated trace is detectable in-band.
  Event meta;
  meta.name = "trace_closed";
  meta.cat = TraceCategory::kHost;
  meta.phase = 'i';
  meta.ts = 0;
  meta.dur = 0;
  meta.lane = kHostLane;
  meta.nargs = 2;
  meta.args[0] = {"emitted", static_cast<double>(emitted_)};
  meta.args[1] = {"dropped", static_cast<double>(dropped_)};
  write_event(meta);
  *out_ << "]}";
  out_->flush();
  closed_ = true;
  owned_file_.reset();
}

}  // namespace ppssd::telemetry
