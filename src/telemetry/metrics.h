// MetricsRegistry: named, labeled counters / gauges / histograms.
//
// Design contract (the reason this file exists as infrastructure rather
// than ad-hoc members on every subsystem):
//
//  * Registration is the only allocating step. Instrumented code asks the
//    registry once — at attach time — for a handle (`Counter*`, `Gauge*`,
//    `Histogram*`) and the hot path is then a single pointer-guarded
//    add: `if (c) c->inc()`. Handles are stable for the registry's
//    lifetime (deque storage, no reallocation).
//  * Disabled telemetry costs one null-pointer test per site: subsystems
//    hold null handles until a registry is attached, so a replay without
//    telemetry runs the exact same code minus the arithmetic.
//  * Series identity is `name{key=value,...}` with labels sorted by key,
//    so label order at the call site does not create duplicate series.
//    Typical labels: scheme=IPU, region=slc, op=read, level=hot.
//
// Snapshots flatten every instrument into one or more scalar samples
// (histograms expand to the uniform count/mean/p50/p95/p99/p999/max
// ladder), which is what the TimeSeriesSampler windows and the
// end-of-run CSV dump serialize.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/stats.h"

namespace ppssd::telemetry {

/// One label dimension of a series.
struct Label {
  std::string key;
  std::string value;
};
using Labels = std::vector<Label>;

/// Monotonic event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Point-in-time level (pool sizes, queue depths).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double delta) { value_ += delta; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Log-bucketed distribution (latencies, BERs, ratios).
class Histogram {
 public:
  Histogram(double lo, double hi, std::uint32_t buckets)
      : hist_(lo, hi, buckets) {}

  void observe(double x) { hist_.add(x); }
  [[nodiscard]] std::uint64_t count() const { return hist_.count(); }
  [[nodiscard]] double mean() const { return hist_.mean(); }
  [[nodiscard]] double quantile(double q) const { return hist_.quantile(q); }
  [[nodiscard]] double max() const { return hist_.max(); }

 private:
  LogHistogram hist_;
};

/// Flattened view of one scalar sample of one series.
struct Sample {
  std::string series;  // "name{k=v,...}" plus ".p99"-style suffixes
  double value = 0.0;
  bool cumulative = false;  // true for counters / histogram counts
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create. Repeated registration of the same name+labels returns
  /// the same handle regardless of label order.
  Counter* counter(const std::string& name, Labels labels = {});
  Gauge* gauge(const std::string& name, Labels labels = {});
  Histogram* histogram(const std::string& name, Labels labels, double lo,
                       double hi, std::uint32_t buckets = 64);

  /// A gauge whose value is polled at snapshot time (pool sizes that are
  /// cheaper to query than to maintain incrementally).
  void gauge_fn(const std::string& name, Labels labels,
                std::function<double()> fn);

  /// Canonical series id for name+labels (exposed for tests).
  [[nodiscard]] static std::string series_id(const std::string& name,
                                             Labels labels);

  /// Flatten every instrument, in registration order.
  [[nodiscard]] std::vector<Sample> snapshot() const;

  /// Number of registered instruments (histograms count once).
  [[nodiscard]] std::size_t instrument_count() const { return order_.size(); }

  /// `series,value` CSV of a full snapshot (end-of-run artifact). Rows
  /// are sorted by series id so exports diff cleanly across runs and
  /// platforms regardless of registration order.
  void write_csv(std::ostream& out) const;

  /// JSON snapshot: {"schema":1,"series":{"<id>":value,...}} with keys
  /// in sorted order (deterministic diffs). Selected by a `.json`
  /// PPSSD_METRICS path. Non-finite values serialize as null.
  void write_json(std::ostream& out) const;

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram, kGaugeFn };

  struct Entry {
    std::string id;
    Kind kind;
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
    std::function<double()> fn;
  };

  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::vector<Entry> order_;
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace ppssd::telemetry
