// TraceLog: sim-time span / instant events as Chrome trace-event JSON.
//
// The output is the Trace Event Format's "JSON object" flavour
// ({"traceEvents":[...]}) and loads directly in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing. Mapping:
//
//  * ts/dur are microseconds of *simulated* time, so the Perfetto
//    timeline is the device timeline, not wall clock;
//  * pid is always 0 (one device), tid is the resource lane — chip id
//    for flash ops, kHostLane for host-request spans, kGcLane for GC
//    episodes — so chips render as parallel tracks;
//  * spans are complete events (ph "X": start + duration known at emit
//    time, which is always true in a discrete-event simulator), instants
//    are ph "i" with thread scope;
//  * args carry numeric detail only (victim block, subpages moved, BER…):
//    keys must be string literals — the log stores the pointers, not
//    copies, so the hot path never allocates.
//
// Events are buffered in a fixed-capacity vector and flushed to the
// stream whenever it fills (and at close), so a multi-million-request
// replay streams to disk instead of accumulating in memory. An optional
// hard cap on total events turns the log into a prefix trace; dropped
// events are counted and reported in a final metadata event.
//
// Category filtering ("gc,cache") is a bitmask test before any
// formatting work happens; a filtered-out emit is a few instructions.
//
// Crash safety: every flush() seals the document — it appends the
// closing "]}" and rewinds the stream so the next event overwrites the
// seal. A run killed or aborted mid-replay therefore leaves a valid
// (truncated-but-parseable) JSON file covering everything up to the
// last flush, instead of an unterminated array. Live logs are also
// closed from an atexit hook, so std::exit() mid-run finalizes the
// document (including the trace_closed metadata event).
#pragma once

#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.h"

namespace ppssd::telemetry {

enum class TraceCategory : std::uint32_t {
  kHost = 1u << 0,   // host request lifecycle
  kFlash = 1u << 1,  // chip-level read/program/erase
  kGc = 1u << 2,     // GC episodes
  kCache = 1u << 3,  // SLC-cache placement / eviction
  kEcc = 1u << 4,    // ECC decode pressure
  kMode = 1u << 5,   // SLC <-> MLC data movement
};

inline constexpr std::uint32_t kAllCategories = 0x3f;

[[nodiscard]] const char* category_name(TraceCategory cat);

/// Parse a comma-separated category list ("gc,cache"); empty or "all"
/// selects every category; unknown names are ignored.
[[nodiscard]] std::uint32_t parse_categories(const std::string& csv);

/// Synthetic "thread" lanes for non-chip events. Chip ops use the chip id
/// directly; these start above any realistic chip count.
inline constexpr std::uint32_t kHostLane = 1000;
inline constexpr std::uint32_t kGcLane = 1001;
inline constexpr std::uint32_t kCacheLane = 1002;

class TraceLog {
 public:
  /// Numeric key/value attachment. The key must be a string literal (or
  /// otherwise outlive the log).
  struct Arg {
    const char* key;
    double value;
  };

  struct Options {
    std::uint32_t categories = kAllCategories;
    std::size_t buffer_events = 1 << 16;  // flush granularity
    std::uint64_t max_events = 0;         // 0 = unbounded (disk-bound)
  };

  /// Stream-backed log; the stream must outlive the log. close() (or the
  /// destructor) finalizes the JSON document.
  TraceLog(std::ostream& out, Options opts);
  explicit TraceLog(std::ostream& out);

  /// File-backed convenience; nullptr if the file cannot be opened.
  static std::unique_ptr<TraceLog> open_file(const std::string& path,
                                             Options opts);
  static std::unique_ptr<TraceLog> open_file(const std::string& path);

  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;
  ~TraceLog();

  [[nodiscard]] bool enabled(TraceCategory cat) const {
    return (opts_.categories & static_cast<std::uint32_t>(cat)) != 0;
  }

  /// Complete event covering [start, end] sim-time.
  void span(TraceCategory cat, const char* name, SimTime start, SimTime end,
            std::uint32_t lane, std::initializer_list<Arg> args = {});

  /// Instant event at `ts` sim-time.
  void instant(TraceCategory cat, const char* name, SimTime ts,
               std::uint32_t lane, std::initializer_list<Arg> args = {});

  /// Events accepted (post-filter, pre-cap) and dropped by the cap.
  [[nodiscard]] std::uint64_t emitted() const { return emitted_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// Write buffered events through to the stream and re-seal the
  /// document (see the crash-safety note above).
  void flush();

  /// Finalize the JSON document; further emits are dropped.
  void close();

 private:
  static constexpr std::size_t kMaxArgs = 4;

  struct Event {
    const char* name;
    TraceCategory cat;
    char phase;  // 'X' or 'i'
    SimTime ts;
    SimTime dur;
    std::uint32_t lane;
    std::uint32_t nargs;
    Arg args[kMaxArgs];
  };

  void record(TraceCategory cat, const char* name, char phase, SimTime ts,
              SimTime dur, std::uint32_t lane,
              std::initializer_list<Arg> args);
  void write_event(const Event& e);
  /// Append "]}" and rewind so the document parses as-is; no-op on
  /// non-seekable sinks.
  void seal();

  std::unique_ptr<std::ofstream> owned_file_;  // set by open_file()
  std::ostream* out_;
  Options opts_;
  std::vector<Event> buffer_;
  std::uint64_t emitted_ = 0;
  std::uint64_t dropped_ = 0;
  bool first_event_ = true;
  bool closed_ = false;
};

}  // namespace ppssd::telemetry
