#include "telemetry/metrics.h"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "common/check.h"

namespace ppssd::telemetry {

std::string MetricsRegistry::series_id(const std::string& name,
                                       Labels labels) {
  std::sort(labels.begin(), labels.end(),
            [](const Label& a, const Label& b) { return a.key < b.key; });
  std::string id = name;
  if (!labels.empty()) {
    id += '{';
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (i) id += ',';
      id += labels[i].key;
      id += '=';
      id += labels[i].value;
    }
    id += '}';
  }
  return id;
}

Counter* MetricsRegistry::counter(const std::string& name, Labels labels) {
  const std::string id = series_id(name, std::move(labels));
  if (const auto it = index_.find(id); it != index_.end()) {
    const Entry& e = order_[it->second];
    PPSSD_CHECK_MSG(e.kind == Kind::kCounter,
                    "series re-registered with a different instrument kind");
    return e.counter;
  }
  counters_.emplace_back();
  Entry e;
  e.id = id;
  e.kind = Kind::kCounter;
  e.counter = &counters_.back();
  index_.emplace(id, order_.size());
  order_.push_back(std::move(e));
  return &counters_.back();
}

Gauge* MetricsRegistry::gauge(const std::string& name, Labels labels) {
  const std::string id = series_id(name, std::move(labels));
  if (const auto it = index_.find(id); it != index_.end()) {
    const Entry& e = order_[it->second];
    PPSSD_CHECK_MSG(e.kind == Kind::kGauge,
                    "series re-registered with a different instrument kind");
    return e.gauge;
  }
  gauges_.emplace_back();
  Entry e;
  e.id = id;
  e.kind = Kind::kGauge;
  e.gauge = &gauges_.back();
  index_.emplace(id, order_.size());
  order_.push_back(std::move(e));
  return &gauges_.back();
}

Histogram* MetricsRegistry::histogram(const std::string& name, Labels labels,
                                      double lo, double hi,
                                      std::uint32_t buckets) {
  const std::string id = series_id(name, std::move(labels));
  if (const auto it = index_.find(id); it != index_.end()) {
    const Entry& e = order_[it->second];
    PPSSD_CHECK_MSG(e.kind == Kind::kHistogram,
                    "series re-registered with a different instrument kind");
    return e.histogram;
  }
  histograms_.emplace_back(lo, hi, buckets);
  Entry e;
  e.id = id;
  e.kind = Kind::kHistogram;
  e.histogram = &histograms_.back();
  index_.emplace(id, order_.size());
  order_.push_back(std::move(e));
  return &histograms_.back();
}

void MetricsRegistry::gauge_fn(const std::string& name, Labels labels,
                               std::function<double()> fn) {
  const std::string id = series_id(name, std::move(labels));
  if (const auto it = index_.find(id); it != index_.end()) {
    Entry& e = order_[it->second];
    PPSSD_CHECK_MSG(e.kind == Kind::kGaugeFn,
                    "series re-registered with a different instrument kind");
    e.fn = std::move(fn);  // re-attach: newest callback wins
    return;
  }
  Entry e;
  e.id = id;
  e.kind = Kind::kGaugeFn;
  e.fn = std::move(fn);
  index_.emplace(id, order_.size());
  order_.push_back(std::move(e));
}

std::vector<Sample> MetricsRegistry::snapshot() const {
  std::vector<Sample> out;
  out.reserve(order_.size() * 2);
  for (const Entry& e : order_) {
    switch (e.kind) {
      case Kind::kCounter:
        out.push_back(
            {e.id, static_cast<double>(e.counter->value()), true});
        break;
      case Kind::kGauge:
        out.push_back({e.id, e.gauge->value(), false});
        break;
      case Kind::kGaugeFn:
        out.push_back({e.id, e.fn ? e.fn() : 0.0, false});
        break;
      case Kind::kHistogram: {
        const Histogram& h = *e.histogram;
        out.push_back(
            {e.id + ".count", static_cast<double>(h.count()), true});
        out.push_back({e.id + ".mean", h.mean(), false});
        out.push_back({e.id + ".p50", h.quantile(0.50), false});
        out.push_back({e.id + ".p95", h.quantile(0.95), false});
        out.push_back({e.id + ".p99", h.quantile(0.99), false});
        out.push_back({e.id + ".p999", h.quantile(0.999), false});
        out.push_back({e.id + ".max", h.max(), false});
        break;
      }
    }
  }
  return out;
}

namespace {
std::vector<Sample> sorted_snapshot(const MetricsRegistry& reg) {
  std::vector<Sample> samples = reg.snapshot();
  std::sort(samples.begin(), samples.end(),
            [](const Sample& a, const Sample& b) { return a.series < b.series; });
  return samples;
}
}  // namespace

void MetricsRegistry::write_csv(std::ostream& out) const {
  out << "series,value\n";
  out.precision(17);
  for (const Sample& s : sorted_snapshot(*this)) {
    out << s.series << ',' << s.value << '\n';
  }
}

void MetricsRegistry::write_json(std::ostream& out) const {
  out.precision(17);
  out << "{\n  \"schema\": 1,\n  \"series\": {";
  bool first = true;
  for (const Sample& s : sorted_snapshot(*this)) {
    if (!first) out << ',';
    first = false;
    out << "\n    \"";
    // Series ids are metric names + labels: escape the JSON specials
    // that can plausibly appear (quotes, backslashes).
    for (char c : s.series) {
      if (c == '"' || c == '\\') out << '\\';
      out << c;
    }
    out << "\": ";
    if (std::isfinite(s.value)) {
      out << s.value;
    } else {
      out << "null";
    }
  }
  out << "\n  }\n}\n";
}

}  // namespace ppssd::telemetry
