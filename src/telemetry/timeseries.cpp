#include "telemetry/timeseries.h"

namespace ppssd::telemetry {

TimeSeriesSampler::TimeSeriesSampler(const MetricsRegistry& registry,
                                     std::ostream& out, Options opts)
    : registry_(&registry), out_(&out), opts_(opts) {
  if (opts_.every_requests == 0 && opts_.every_ns == 0) {
    opts_.every_requests = 1000;
  }
}

void TimeSeriesSampler::on_request(SimTime now) {
  ++requests_total_;
  ++requests_in_window_;
  const bool by_count = opts_.every_requests != 0 &&
                        requests_in_window_ >= opts_.every_requests;
  const bool by_time =
      opts_.every_ns != 0 && now >= window_start_ + opts_.every_ns;
  if (by_count || by_time) emit_window(now);
}

void TimeSeriesSampler::finish(SimTime now) {
  if (requests_in_window_ > 0) emit_window(now);
}

void TimeSeriesSampler::emit_window(SimTime now) {
  const std::vector<Sample> snap = registry_->snapshot();
  if (!header_written_) {
    *out_ << "window_end_ns,requests";
    for (const Sample& s : snap) *out_ << ',' << s.series;
    *out_ << '\n';
    prev_.assign(snap.size(), 0.0);
    header_written_ = true;
  }
  out_->precision(12);
  *out_ << now << ',' << requests_in_window_;
  // Instruments registered after the first window would misalign the
  // columns; emit up to the header's width only.
  const std::size_t n = std::min(snap.size(), prev_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const double v =
        snap[i].cumulative ? snap[i].value - prev_[i] : snap[i].value;
    *out_ << ',' << v;
    prev_[i] = snap[i].value;
  }
  *out_ << '\n';
  out_->flush();
  ++windows_;
  requests_in_window_ = 0;
  window_start_ = now;
}

}  // namespace ppssd::telemetry
