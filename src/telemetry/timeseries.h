// TimeSeriesSampler: windowed CSV snapshots of a MetricsRegistry.
//
// Every figure of the paper's evaluation is trajectory-shaped (erase
// counts over the trace, GC overhead per scheme, wear over P/E cycles),
// but the registry alone only answers "what happened in total". The
// sampler closes that gap: every N host requests — or every Δ of sim
// time, whichever is configured — it snapshots the registry and appends
// one CSV row per window:
//
//   window_end_ns,requests,<series>,<series>,...
//
// Cumulative series (counters, histogram counts) are emitted as
// *per-window deltas* so a spike reads as a spike; level series (gauges,
// histogram quantiles/means) are emitted as the value at window close.
// The header is fixed at the first window from the instruments registered
// by then — attach all instrumentation before the replay starts.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.h"
#include "telemetry/metrics.h"

namespace ppssd::telemetry {

class TimeSeriesSampler {
 public:
  struct Options {
    std::uint64_t every_requests = 0;  // 0 = no request-count trigger
    SimTime every_ns = 0;              // 0 = no sim-time trigger
  };

  /// The registry and stream must outlive the sampler.
  TimeSeriesSampler(const MetricsRegistry& registry, std::ostream& out,
                    Options opts);

  /// Host-request tick; closes a window when a trigger fires. `now` is
  /// the request's arrival sim-time.
  void on_request(SimTime now);

  /// Force-close the current window (end of replay). No-op when the
  /// window is empty.
  void finish(SimTime now);

  [[nodiscard]] std::uint64_t windows() const { return windows_; }

 private:
  void emit_window(SimTime now);

  const MetricsRegistry* registry_;
  std::ostream* out_;
  Options opts_;
  std::vector<double> prev_;  // last snapshot of cumulative series
  std::uint64_t requests_total_ = 0;
  std::uint64_t requests_in_window_ = 0;
  SimTime window_start_ = 0;
  std::uint64_t windows_ = 0;
  bool header_written_ = false;
};

}  // namespace ppssd::telemetry
