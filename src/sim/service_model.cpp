#include "sim/service_model.h"

#include <algorithm>

#include "common/check.h"

namespace ppssd::sim {

ServiceModel::ServiceModel(const SsdConfig& cfg, std::uint32_t chips,
                           std::uint32_t channels)
    : timing_(cfg.timing), ecc_(cfg.ecc) {
  PPSSD_CHECK(chips > 0 && channels > 0);
  chip_busy_.assign(chips, 0);
  channel_busy_.assign(channels, 0);
  chip_occupancy_.assign(chips, 0);
  erase_busy_.assign(chips, 0);
}

void ServiceModel::reset() {
  std::fill(chip_busy_.begin(), chip_busy_.end(), SimTime{0});
  std::fill(channel_busy_.begin(), channel_busy_.end(), SimTime{0});
  std::fill(chip_occupancy_.begin(), chip_occupancy_.end(), SimTime{0});
  std::fill(erase_busy_.begin(), erase_busy_.end(), SimTime{0});
  usage_ = Usage{};
}

SimTime ServiceModel::ecc_cost(const cache::PhysOp& op) const {
  return ecc_.decode_time(op.ber, op.subpages);
}

ServiceModel::Outcome ServiceModel::service(
    std::span<const cache::PhysOp> ops, SimTime now) {
  using Kind = cache::PhysOp::Kind;
  Outcome out;
  out.foreground_end = now;
  out.background_end = now;

  for (const auto& op : ops) {
    PPSSD_CHECK(op.chip < chip_busy_.size());
    PPSSD_CHECK(op.channel < channel_busy_.size());
    SimTime& chip = chip_busy_[op.chip];
    SimTime& channel = channel_busy_[op.channel];
    SimTime end = now;

    switch (op.kind) {
      case Kind::kRead: {
        // Array sense, then transfer out, then controller-side ECC.
        const SimTime sense_start = std::max(now, chip);
        const SimTime sense_end =
            sense_start + timing_.read_latency(op.mode);
        (op.background ? usage_.read_bg : usage_.read_fg) +=
            timing_.read_latency(op.mode);
        chip_occupancy_[op.chip] += timing_.read_latency(op.mode);
        chip = sense_end;
        const SimTime xfer_start = std::max(sense_end, channel);
        const SimTime xfer_end =
            xfer_start + timing_.transfer_latency(op.subpages);
        channel = xfer_end;
        end = xfer_end + ecc_cost(op);
        break;
      }
      case Kind::kProgram: {
        // Transfer in, then program pulse on the chip.
        const SimTime xfer_start = std::max(now, channel);
        const SimTime xfer_end =
            xfer_start + timing_.transfer_latency(op.subpages);
        channel = xfer_end;
        const SimTime prog_start = std::max(xfer_end, chip);
        end = prog_start + timing_.program_latency(op.mode);
        (op.background ? usage_.program_bg : usage_.program_fg) +=
            timing_.program_latency(op.mode);
        chip_occupancy_[op.chip] += timing_.program_latency(op.mode);
        chip = end;
        break;
      }
      case Kind::kErase: {
        // Erase-suspend: the controller suspends a background erase when a
        // host command arrives, so erases occupy a *separate* per-chip
        // horizon that only serialises background work. Host ops see the
        // chip as available; the erase's wall-clock completion still gates
        // background_end.
        SimTime& erase_chip = erase_busy_[op.chip];
        const SimTime start = std::max({now, erase_chip, chip});
        end = start + timing_.erase_latency();
        usage_.erase_bg += timing_.erase_latency();
        chip_occupancy_[op.chip] += timing_.erase_latency();
        erase_chip = end;
        break;
      }
    }

    if (op.background) {
      out.background_end = std::max(out.background_end, end);
      ++out.background_ops;
    } else {
      out.foreground_end = std::max(out.foreground_end, end);
      ++out.foreground_ops;
    }
  }
  out.background_end = std::max(out.background_end, out.foreground_end);
  return out;
}

}  // namespace ppssd::sim
