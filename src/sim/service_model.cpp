#include "sim/service_model.h"

#include <algorithm>

#include "common/check.h"

namespace ppssd::sim {

ServiceModel::Outcome ServiceModel::service(
    std::span<const cache::PhysOp> ops, SimTime now) {
  Outcome out;
  out.foreground_end = now;
  out.background_end = now;

  // Completion time of each already-scheduled op of this sequence, for
  // dependency resolution.
  std::vector<SimTime> ends;
  ends.reserve(ops.size());

  for (const auto& op : ops) {
    SimTime ready = now;
    if (op.depends_on != cache::PhysOp::kNoDependency) {
      PPSSD_CHECK_MSG(op.depends_on < ends.size(),
                      "depends_on must reference an earlier op");
      ready = std::max(ready, ends[op.depends_on]);
    }
    const SimTime end = ctrl_.schedule(op, ready);
    ends.push_back(end);
    if (op.background) {
      out.background_end = std::max(out.background_end, end);
      ++out.background_ops;
    } else {
      out.foreground_end = std::max(out.foreground_end, end);
      ++out.foreground_ops;
    }
  }
  out.background_end = std::max(out.background_end, out.foreground_end);
  return out;
}

}  // namespace ppssd::sim
