// Sharded window pricing for the event-driven controller (DESIGN.md §15).
//
// The controller's timing state is a set of per-chip and per-channel
// horizons, and the topology contract (a chip's channel is chip %
// channels) means partitioning the channels by `channel % shards` also
// partitions the chips: two ops on different shards never touch the same
// horizon. Pricing — the pure arithmetic half of Controller::schedule()
// — can therefore run concurrently across shards, as long as every
// cross-shard dependency is already resolved.
//
// price_window() takes a whole admission window of staged ops, mirrors
// the controller's horizons, cuts the window into segments at each op
// whose in-window dependency lives on another shard, and prices each
// segment with one worker per shard (ThreadPool barrier between
// segments). Within a shard, ops price in global submission order, so
// every horizon advances through exactly the sequence the sequential
// controller would produce — the priced outcomes are bit-identical, and
// the caller replays them into the controller in submission order
// (Controller::commit) or folds them in one merge
// (Controller::apply_window) when no observer is attached.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "cache/scheme.h"
#include "common/thread_pool.h"
#include "sim/controller.h"

namespace ppssd::sim {

class ShardExecutor {
 public:
  static constexpr std::uint32_t kNoDep = 0xffffffffu;

  /// One staged op of an admission window: the physical op, the earliest
  /// start implied by already-known times (arrival joined with resolved
  /// dependency finishes), and an optional dependency on an earlier item
  /// of the same window whose priced end joins the floor.
  struct WinItem {
    cache::PhysOp op;
    SimTime floor = 0;
    std::uint32_t dep = kNoDep;
  };

  /// `shards` worker shards (clamped to >= 1). One worker thread per
  /// shard when shards > 1; shards == 1 prices inline on the caller.
  explicit ShardExecutor(std::uint32_t shards);

  [[nodiscard]] std::uint32_t shards() const { return shards_; }

  /// Price every item of the window against `ctrl`'s current horizons,
  /// filling `out[i]` with the outcome of item i. The controller itself
  /// is not modified — the caller applies the outcomes (commit /
  /// apply_window). Outcomes are bit-identical to pricing the same
  /// sequence through Controller::schedule() in submission order.
  void price_window(const Controller& ctrl, std::span<const WinItem> items,
                    std::vector<Controller::OpOutcome>& out);

  /// Window totals and final horizons of the last price_window() call,
  /// in the exact shape Controller::apply_window consumes. The pointed-to
  /// arrays live in this executor and stay valid until the next call.
  [[nodiscard]] const Controller::WindowAggregate& aggregate() const {
    return agg_;
  }

 private:
  /// Segments smaller than this price inline on the calling thread: the
  /// pool dispatch + barrier costs more than the pricing it would spread.
  static constexpr std::uint32_t kInlineItems = 96;

  struct ShardAccum {
    Controller::Usage usage;
    std::uint64_t ops = 0;
    SimTime retire_max = 0;
  };

  std::uint32_t shards_;
  std::unique_ptr<ThreadPool> pool_;  // null when shards_ == 1

  // Horizon mirrors, reloaded from the controller at each window.
  std::vector<SimTime> lane_busy_;
  std::vector<SimTime> lane_erase_;
  std::vector<SimTime> chan_busy_;
  std::vector<SimTime> occupancy_;  // per-chip delta of this window

  std::vector<SimTime> ends_;        // priced end per item
  std::vector<ShardAccum> accum_;    // per-shard usage partials
  std::vector<std::vector<std::uint32_t>> shard_items_;  // item ids by shard
  std::vector<std::uint32_t> cuts_;   // global item index of each segment start
  std::vector<std::uint32_t> marks_;  // per-shard list sizes at each cut
  Controller::WindowAggregate agg_;
};

}  // namespace ppssd::sim
