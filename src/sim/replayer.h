// Trace replay loop: drives an Ssd with a TraceSource and accumulates the
// host-visible metrics (latency distributions, in-flight statistics).
//
// Requests are submitted at their arrival times and completions are
// harvested from the device's completion queue in *completion* order,
// which generally differs from submission order (a short read on an idle
// chip overtakes a long GC-laden write on a busy one).
#pragma once

#include <cstdint>

#include "common/latency_recorder.h"
#include "perf/progress.h"
#include "sim/ssd.h"
#include "telemetry/introspect/snapshotter.h"
#include "trace/record.h"

namespace ppssd::sim {

struct ReplayResult {
  LatencyRecorder latency;
  std::uint64_t requests = 0;
  SimTime makespan = 0;  // last completion time
  /// Time-weighted mean in-flight requests over [first arrival, last
  /// completion]: the integral of the in-flight count divided by the
  /// active span. The quantity a device-side QD monitor would report.
  double avg_queue_depth = 0.0;
  /// Legacy definition: the mean in-flight count sampled at each request
  /// arrival. Biased low for bursty traces (samples cluster where
  /// arrivals do, not where queue time accumulates).
  double avg_queue_depth_at_arrival = 0.0;
  std::uint64_t max_queue_depth = 0;
};

class Replayer {
 public:
  explicit Replayer(Ssd& ssd) : ssd_(&ssd) {}

  /// Replay the source to exhaustion (or `max_requests` if nonzero).
  ReplayResult replay(trace::TraceSource& src, std::uint64_t max_requests = 0);

  /// Optional live-progress sink, ticked every few thousand requests (a
  /// null sink costs one pointer test per request). Caller keeps
  /// ownership; the sink must outlive the replay.
  void set_progress(perf::ProgressSink* sink) { progress_ = sink; }

  /// Optional introspection snapshotter, ticked at every request arrival
  /// (a null snapshotter costs one pointer test per request). Caller
  /// keeps ownership and calls finish() after the replay.
  void set_snapshotter(telemetry::introspect::Snapshotter* snap) {
    snapshot_ = snap;
  }

 private:
  /// Tick granularity: frequent enough for a smooth ETA, rare enough to
  /// stay invisible in the replay loop's profile.
  static constexpr std::uint64_t kProgressMask = (1u << 14) - 1;

  /// Records fetched per TraceSource::next_batch call. Small enough that
  /// the arena stays cache-resident, large enough that virtual dispatch
  /// and decode-loop overhead amortize to noise.
  static constexpr std::size_t kBatch = 256;

  /// Requests admitted per window when the device has a shard executor
  /// attached: large enough to amortize the per-segment pool barrier,
  /// small enough that the staged-op arena stays cache-friendly. Any
  /// value yields the same results (windows only batch the pricing).
  static constexpr std::size_t kWindowRequests = 2048;

  Ssd* ssd_;
  perf::ProgressSink* progress_ = nullptr;
  telemetry::introspect::Snapshotter* snapshot_ = nullptr;
};

}  // namespace ppssd::sim
