// Trace replay loop: drives an Ssd with a TraceSource and accumulates the
// host-visible metrics (latency distributions, in-flight statistics).
#pragma once

#include <cstdint>

#include "common/latency_recorder.h"
#include "sim/event_queue.h"
#include "sim/ssd.h"
#include "trace/record.h"

namespace ppssd::sim {

struct ReplayResult {
  LatencyRecorder latency;
  std::uint64_t requests = 0;
  SimTime makespan = 0;          // last completion time
  double avg_queue_depth = 0.0;  // mean in-flight requests at arrival
  std::uint64_t max_queue_depth = 0;
};

class Replayer {
 public:
  explicit Replayer(Ssd& ssd) : ssd_(&ssd) {}

  /// Replay the source to exhaustion (or `max_requests` if nonzero).
  ReplayResult replay(trace::TraceSource& src, std::uint64_t max_requests = 0);

 private:
  Ssd* ssd_;
};

}  // namespace ppssd::sim
