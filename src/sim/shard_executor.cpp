#include "sim/shard_executor.h"

#include <algorithm>

#include "common/check.h"

namespace ppssd::sim {

ShardExecutor::ShardExecutor(std::uint32_t shards)
    : shards_(std::max(1u, shards)) {
  if (shards_ > 1) pool_ = std::make_unique<ThreadPool>(shards_);
  shard_items_.resize(shards_);
}

void ShardExecutor::price_window(const Controller& ctrl,
                                 std::span<const WinItem> items,
                                 std::vector<Controller::OpOutcome>& out) {
  using Kind = cache::PhysOp::Kind;
  const std::uint32_t chips = ctrl.chip_count();
  const std::uint32_t channels = ctrl.channel_count();

  // Mirror the controller's horizons. Pricing advances the mirrors only;
  // the caller folds them back through commit() or apply_window().
  lane_busy_.resize(chips);
  lane_erase_.resize(chips);
  chan_busy_.resize(channels);
  occupancy_.assign(chips, 0);
  for (std::uint32_t c = 0; c < chips; ++c) {
    lane_busy_[c] = ctrl.chip_free_at(c);
    lane_erase_[c] = ctrl.chip_erase_free_at(c);
  }
  for (std::uint32_t ch = 0; ch < channels; ++ch) {
    chan_busy_[ch] = ctrl.channel_free_at(ch);
  }

  out.resize(items.size());
  ends_.resize(items.size());
  accum_.assign(shards_, ShardAccum{});

  const auto shard_of = [this](const WinItem& it) {
    return it.op.channel % shards_;
  };

  const auto price_one = [&](std::uint32_t i, ShardAccum& acc) {
    const WinItem& it = items[i];
    PPSSD_DCHECK(it.op.chip < chips && it.op.channel < channels);
    // Partitioning invariant: a chip's channel is chip % channels, so
    // sharding by channel also partitions the chips — two shards never
    // touch the same lane or channel horizon.
    PPSSD_DCHECK(it.op.channel == it.op.chip % channels);
    SimTime ready = it.floor;
    if (it.dep != kNoDep) ready = std::max(ready, ends_[it.dep]);
    Controller::OpOutcome& oc = out[i];
    ctrl.price(it.op, ready, lane_busy_[it.op.chip], lane_erase_[it.op.chip],
               chan_busy_[it.op.channel], oc);
    ends_[i] = oc.end;
    // Mirror commit()'s usage/occupancy sums so the no-observer fast path
    // can fold the whole window in one apply_window() call.
    SimTime dur = 0;
    switch (it.op.kind) {
      case Kind::kRead:
        dur = oc.sense_end - oc.svc_start;
        (it.op.background ? acc.usage.read_bg : acc.usage.read_fg) += dur;
        break;
      case Kind::kProgram:
      case Kind::kReprogram:
        dur = oc.end - oc.svc_start;
        (it.op.background ? acc.usage.program_bg : acc.usage.program_fg) +=
            dur;
        break;
      case Kind::kErase:
        dur = oc.end - oc.svc_start;
        acc.usage.erase_bg += dur;
        break;
    }
    occupancy_[it.op.chip] += dur;
    acc.retire_max = std::max(acc.retire_max, oc.end);
    ++acc.ops;
  };

  if (shards_ == 1 || items.size() < kInlineItems) {
    // Global submission order is a supersequence of every shard's order,
    // so inline pricing lands on exactly the parallel result.
    for (std::uint32_t i = 0; i < items.size(); ++i) {
      price_one(i, accum_[shard_of(items[i])]);
    }
  } else {
    // Cut the window into segments: an op whose in-window dependency is
    // on another shard *and* not yet priced (same segment) starts a new
    // segment, so by the time its shard prices it, the barrier has
    // published the dependency's end.
    for (auto& v : shard_items_) v.clear();
    cuts_.clear();
    marks_.clear();
    cuts_.push_back(0);
    for (std::uint32_t s = 0; s < shards_; ++s) marks_.push_back(0);
    std::uint32_t seg_begin = 0;
    for (std::uint32_t i = 0; i < items.size(); ++i) {
      const std::uint32_t s = shard_of(items[i]);
      const std::uint32_t dep = items[i].dep;
      if (dep != kNoDep && dep >= seg_begin && shard_of(items[dep]) != s) {
        cuts_.push_back(i);
        for (std::uint32_t s2 = 0; s2 < shards_; ++s2) {
          marks_.push_back(
              static_cast<std::uint32_t>(shard_items_[s2].size()));
        }
        seg_begin = i;
      }
      shard_items_[s].push_back(i);
    }
    cuts_.push_back(static_cast<std::uint32_t>(items.size()));
    for (std::uint32_t s2 = 0; s2 < shards_; ++s2) {
      marks_.push_back(static_cast<std::uint32_t>(shard_items_[s2].size()));
    }

    const std::size_t segs = cuts_.size() - 1;
    for (std::size_t g = 0; g < segs; ++g) {
      const std::uint32_t gb = cuts_[g];
      const std::uint32_t ge = cuts_[g + 1];
      if (ge - gb < kInlineItems) {
        for (std::uint32_t i = gb; i < ge; ++i) {
          price_one(i, accum_[shard_of(items[i])]);
        }
        continue;
      }
      pool_->parallel_for(shards_, [&](std::size_t s) {
        const auto& list = shard_items_[s];
        const std::uint32_t lo = marks_[g * shards_ + s];
        const std::uint32_t hi = marks_[(g + 1) * shards_ + s];
        ShardAccum& acc = accum_[s];
        for (std::uint32_t k = lo; k < hi; ++k) price_one(list[k], acc);
      });
    }
  }

  agg_ = Controller::WindowAggregate{};
  for (const ShardAccum& a : accum_) {
    agg_.usage.read_fg += a.usage.read_fg;
    agg_.usage.read_bg += a.usage.read_bg;
    agg_.usage.program_fg += a.usage.program_fg;
    agg_.usage.program_bg += a.usage.program_bg;
    agg_.usage.erase_bg += a.usage.erase_bg;
    agg_.ops += a.ops;
    agg_.retire_max = std::max(agg_.retire_max, a.retire_max);
  }
  agg_.lane_busy = lane_busy_.data();
  agg_.lane_erase = lane_erase_.data();
  agg_.chan_busy = chan_busy_.data();
  agg_.occupancy_delta = occupancy_.data();
}

}  // namespace ppssd::sim
