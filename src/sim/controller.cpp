#include "sim/controller.h"

#include <algorithm>

#include "common/check.h"

namespace ppssd::sim {

Controller::Controller(const SsdConfig& cfg, std::uint32_t chips,
                       std::uint32_t channels)
    : timing_(cfg.timing), ecc_(cfg.ecc) {
  PPSSD_CHECK(chips > 0 && channels > 0);
  lanes_.assign(chips, ChipLane{});
  channel_busy_.assign(channels, 0);
  chip_occupancy_.assign(chips, 0);
}

void Controller::reset() {
  std::fill(lanes_.begin(), lanes_.end(), ChipLane{});
  std::fill(channel_busy_.begin(), channel_busy_.end(), SimTime{0});
  std::fill(chip_occupancy_.begin(), chip_occupancy_.end(), SimTime{0});
  usage_ = Usage{};
  scheduled_ops_ = 0;
  clock_ = 0;
  while (!inflight_.empty()) inflight_.pop();
}

SimTime Controller::ecc_cost(const cache::PhysOp& op) const {
  return ecc_.decode_time(op.ber, op.subpages);
}

void Controller::attach_telemetry(telemetry::Telemetry* telemetry) {
  if (telemetry == nullptr) {
    trace_ = nullptr;
    tl_ops_[0][0] = tl_ops_[0][1] = tl_ops_[1][0] = tl_ops_[1][1] = nullptr;
    tl_erases_ = tl_ecc_decodes_ = tl_ecc_saturated_ = nullptr;
    tl_chip_wait_ = tl_ecc_ns_ = nullptr;
    return;
  }
  auto& reg = telemetry->registry();
  trace_ = telemetry->trace();
  const char* kinds[2] = {"read", "program"};
  const char* modes[2] = {"slc", "mlc"};
  for (int k = 0; k < 2; ++k) {
    for (int m = 0; m < 2; ++m) {
      tl_ops_[k][m] =
          reg.counter("flash_ops", {{"kind", kinds[k]}, {"mode", modes[m]}});
    }
  }
  tl_erases_ = reg.counter("flash_ops", {{"kind", "erase"}});
  tl_ecc_decodes_ = reg.counter("ecc_decodes");
  tl_ecc_saturated_ = reg.counter("ecc_decodes_saturated");
  // Chip queueing delay seen by array ops (ns): 100 ns .. 10 s.
  tl_chip_wait_ = reg.histogram("chip_wait_ns", {}, 1e2, 1e10);
  tl_ecc_ns_ = reg.histogram("ecc_decode_ns", {}, 1e2, 1e8);
}

SimTime Controller::schedule(const cache::PhysOp& op, SimTime ready) {
  using Kind = cache::PhysOp::Kind;
  PPSSD_CHECK(op.chip < lanes_.size());
  PPSSD_CHECK(op.channel < channel_busy_.size());
  advance_to(ready);

  ChipLane& lane = lanes_[op.chip];
  SimTime& channel = channel_busy_[op.channel];
  SimTime end = ready;

  switch (op.kind) {
    case Kind::kRead: {
      // Array sense, then transfer out, then controller-side ECC. A
      // background read must wait for an in-progress erase; a foreground
      // read suspends it.
      SimTime sense_start = std::max(ready, lane.busy_until);
      if (op.background) sense_start = std::max(sense_start, lane.erase_until);
      const SimTime sense_end = sense_start + timing_.read_latency(op.mode);
      (op.background ? usage_.read_bg : usage_.read_fg) +=
          timing_.read_latency(op.mode);
      chip_occupancy_[op.chip] += timing_.read_latency(op.mode);
      lane.busy_until = sense_end;
      const SimTime xfer_start = std::max(sense_end, channel);
      const SimTime xfer_end =
          xfer_start + timing_.transfer_latency(op.subpages);
      channel = xfer_end;
      const SimTime ecc_ns = ecc_cost(op);
      end = xfer_end + ecc_ns;
      if (tl_ecc_decodes_) {
        tl_ecc_decodes_->inc(op.subpages);
        if (ecc_.saturated(op.ber)) tl_ecc_saturated_->inc(op.subpages);
        tl_ecc_ns_->observe(static_cast<double>(ecc_ns));
        tl_ops_[0][static_cast<int>(op.mode)]->inc();
        tl_chip_wait_->observe(static_cast<double>(sense_start - ready));
      }
      if (trace_ && trace_->enabled(telemetry::TraceCategory::kFlash)) {
        trace_->span(telemetry::TraceCategory::kFlash,
                     op.mode == CellMode::kSlc ? "read_slc" : "read_mlc",
                     sense_start, end, op.chip,
                     {{"subpages", static_cast<double>(op.subpages)},
                      {"ber", op.ber},
                      {"bg", op.background ? 1.0 : 0.0}});
      }
      break;
    }
    case Kind::kProgram: {
      // Transfer in, then program pulse on the chip. Background programs
      // queue behind an in-progress erase; foreground programs suspend it.
      const SimTime xfer_start = std::max(ready, channel);
      const SimTime xfer_end =
          xfer_start + timing_.transfer_latency(op.subpages);
      channel = xfer_end;
      SimTime prog_start = std::max(xfer_end, lane.busy_until);
      if (op.background) prog_start = std::max(prog_start, lane.erase_until);
      end = prog_start + timing_.program_latency(op.mode);
      (op.background ? usage_.program_bg : usage_.program_fg) +=
          timing_.program_latency(op.mode);
      chip_occupancy_[op.chip] += timing_.program_latency(op.mode);
      lane.busy_until = end;
      if (tl_ops_[1][static_cast<int>(op.mode)]) {
        tl_ops_[1][static_cast<int>(op.mode)]->inc();
        tl_chip_wait_->observe(static_cast<double>(prog_start - ready));
      }
      if (trace_ && trace_->enabled(telemetry::TraceCategory::kFlash)) {
        trace_->span(telemetry::TraceCategory::kFlash,
                     op.mode == CellMode::kSlc ? "prog_slc" : "prog_mlc",
                     xfer_start, end, op.chip,
                     {{"subpages", static_cast<double>(op.subpages)},
                      {"bg", op.background ? 1.0 : 0.0}});
      }
      break;
    }
    case Kind::kErase: {
      // Erase-suspend: the controller suspends a background erase when a
      // host command arrives, so erases occupy a *separate* per-chip
      // horizon that serialises only background work. Host ops see the
      // chip as available; the erase's wall-clock completion still gates
      // background progress on the lane.
      const SimTime start =
          std::max({ready, lane.erase_until, lane.busy_until});
      end = start + timing_.erase_latency();
      usage_.erase_bg += timing_.erase_latency();
      chip_occupancy_[op.chip] += timing_.erase_latency();
      lane.erase_until = end;
      if (tl_erases_) tl_erases_->inc();
      if (trace_ && trace_->enabled(telemetry::TraceCategory::kFlash)) {
        trace_->span(telemetry::TraceCategory::kFlash, "erase", start, end,
                     op.chip,
                     {{"mode", op.mode == CellMode::kSlc ? 0.0 : 1.0}});
      }
      break;
    }
  }

  ++scheduled_ops_;
  inflight_.push(end, op.chip);
  return end;
}

}  // namespace ppssd::sim
