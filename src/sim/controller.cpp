#include "sim/controller.h"

#include <algorithm>

#include "common/check.h"

namespace ppssd::sim {

namespace {

/// PhysOp -> attribution class: erases have their own suspendable
/// horizon; otherwise the scheme's origin tag decides, with background
/// ops defaulting to GC when a host-origin tag leaks onto one.
telemetry::attribution::OpClass classify(const cache::PhysOp& op) {
  using telemetry::attribution::OpClass;
  if (op.kind == cache::PhysOp::Kind::kErase) return OpClass::kErase;
  const bool read = op.kind == cache::PhysOp::Kind::kRead;
  switch (op.origin) {
    case cache::OpOrigin::kPrefill:
      return OpClass::kPrefill;
    case cache::OpOrigin::kGc:
      return read ? OpClass::kGcRead : OpClass::kGcProgram;
    case cache::OpOrigin::kHost:
      break;
  }
  if (op.background) return read ? OpClass::kGcRead : OpClass::kGcProgram;
  return OpClass::kHost;
}

}  // namespace

Controller::Controller(const SsdConfig& cfg, std::uint32_t chips,
                       std::uint32_t channels)
    : timing_(cfg.timing), ecc_(cfg.ecc) {
  PPSSD_CHECK(chips > 0 && channels > 0);
  lanes_.assign(chips, ChipLane{});
  channel_busy_.assign(channels, 0);
  chip_occupancy_.assign(chips, 0);
}

void Controller::reset() {
  std::fill(lanes_.begin(), lanes_.end(), ChipLane{});
  std::fill(channel_busy_.begin(), channel_busy_.end(), SimTime{0});
  std::fill(chip_occupancy_.begin(), chip_occupancy_.end(), SimTime{0});
  usage_ = Usage{};
  scheduled_ops_ = 0;
  clock_ = 0;
  while (!inflight_.empty()) inflight_.pop();
  // Horizons are zero again: stale claims would break interval coverage.
  if (attrib_) attrib_->reset_resources();
}

SimTime Controller::ecc_cost(const cache::PhysOp& op) const {
  return ecc_.decode_time(op.ber, op.subpages);
}

void Controller::attach_telemetry(telemetry::Telemetry* telemetry) {
  attrib_ = telemetry ? telemetry->attribution() : nullptr;
  if (attrib_) {
    attrib_->bind_resources(static_cast<std::uint32_t>(lanes_.size()),
                            static_cast<std::uint32_t>(channel_busy_.size()));
    // Mid-run attach: outstanding horizon state predates the ledger, so
    // seed it as prefill claims to keep wait intervals fully covered.
    for (std::uint32_t c = 0; c < lanes_.size(); ++c) {
      attrib_->seed_lane(c, lanes_[c].busy_until);
      attrib_->seed_erase(c, lanes_[c].erase_until);
    }
    for (std::uint32_t ch = 0; ch < channel_busy_.size(); ++ch) {
      attrib_->seed_channel(ch, channel_busy_[ch]);
    }
  }
  if (telemetry == nullptr) {
    trace_ = nullptr;
    tl_ops_[0][0] = tl_ops_[0][1] = tl_ops_[1][0] = tl_ops_[1][1] = nullptr;
    tl_erases_ = tl_reprograms_ = tl_ecc_decodes_ = tl_ecc_saturated_ =
        nullptr;
    tl_chip_wait_ = tl_ecc_ns_ = nullptr;
    return;
  }
  auto& reg = telemetry->registry();
  trace_ = telemetry->trace();
  const char* kinds[2] = {"read", "program"};
  const char* modes[2] = {"slc", "mlc"};
  for (int k = 0; k < 2; ++k) {
    for (int m = 0; m < 2; ++m) {
      tl_ops_[k][m] =
          reg.counter("flash_ops", {{"kind", kinds[k]}, {"mode", modes[m]}});
    }
  }
  tl_erases_ = reg.counter("flash_ops", {{"kind", "erase"}});
  tl_reprograms_ = reg.counter("flash_ops", {{"kind", "reprogram"}});
  tl_ecc_decodes_ = reg.counter("ecc_decodes");
  tl_ecc_saturated_ = reg.counter("ecc_decodes_saturated");
  // Chip queueing delay seen by array ops (ns): 100 ns .. 10 s.
  tl_chip_wait_ = reg.histogram("chip_wait_ns", {}, 1e2, 1e10);
  tl_ecc_ns_ = reg.histogram("ecc_decode_ns", {}, 1e2, 1e8);
}

SimTime Controller::schedule(const cache::PhysOp& op, SimTime ready) {
  PPSSD_CHECK(op.chip < lanes_.size());
  PPSSD_CHECK(op.channel < channel_busy_.size());
  OpOutcome out;
  price(op, ready, lanes_[op.chip].busy_until, lanes_[op.chip].erase_until,
        channel_busy_[op.channel], out);
  return commit(op, out);
}

void Controller::price(const cache::PhysOp& op, SimTime ready,
                       SimTime& lane_busy, SimTime& lane_erase,
                       SimTime& chan_busy, OpOutcome& out) const {
  using Kind = cache::PhysOp::Kind;
  out.ready = ready;
  // Horizons before this op claims them — the attribution ledger charges
  // wait intervals against the *previous* occupancy.
  out.lane_was = lane_busy;
  out.erase_was = lane_erase;

  switch (op.kind) {
    case Kind::kRead: {
      // Array sense, then transfer out, then controller-side ECC. A
      // background read must wait for an in-progress erase; a foreground
      // read suspends it.
      SimTime sense_start = std::max(ready, lane_busy);
      if (op.background) sense_start = std::max(sense_start, lane_erase);
      out.svc_start = sense_start;
      out.sense_end = sense_start + timing_.read_latency(op.mode);
      lane_busy = out.sense_end;
      out.xfer_start = std::max(out.sense_end, chan_busy);
      out.xfer_end = out.xfer_start + timing_.transfer_latency(op.subpages);
      chan_busy = out.xfer_end;
      out.ecc_ns = ecc_cost(op);
      out.end = out.xfer_end + out.ecc_ns;
      break;
    }
    case Kind::kProgram: {
      // Transfer in, then program pulse on the chip. Background programs
      // queue behind an in-progress erase; foreground programs suspend it.
      out.xfer_start = std::max(ready, chan_busy);
      out.xfer_end = out.xfer_start + timing_.transfer_latency(op.subpages);
      chan_busy = out.xfer_end;
      SimTime prog_start = std::max(out.xfer_end, lane_busy);
      if (op.background) prog_start = std::max(prog_start, lane_erase);
      out.svc_start = prog_start;
      out.end = prog_start + timing_.program_latency(op.mode);
      lane_busy = out.end;
      break;
    }
    case Kind::kReprogram: {
      // In-place SLC→dense switch (IPS): one continued-ISPP pulse sequence
      // on the chip — the data never leaves the array, so there is no
      // channel transfer and no controller-side ECC. Erase interaction
      // mirrors a program: background reprograms queue behind an
      // in-progress erase, foreground ones suspend it.
      SimTime start = std::max(ready, lane_busy);
      if (op.background) start = std::max(start, lane_erase);
      out.svc_start = start;
      out.end = start + timing_.reprogram_latency();
      lane_busy = out.end;
      break;
    }
    case Kind::kErase: {
      // Erase-suspend: the controller suspends a background erase when a
      // host command arrives, so erases occupy a *separate* per-chip
      // horizon that serialises only background work. Host ops see the
      // chip as available; the erase's wall-clock completion still gates
      // background progress on the lane.
      const SimTime start = std::max({ready, lane_erase, lane_busy});
      out.svc_start = start;
      out.end = start + timing_.erase_latency();
      lane_erase = out.end;
      break;
    }
  }
}

SimTime Controller::commit(const cache::PhysOp& op, const OpOutcome& out) {
  using Kind = cache::PhysOp::Kind;
  advance_to(out.ready);

  ChipLane& lane = lanes_[op.chip];
  const SimTime ready = out.ready;
  const SimTime end = out.end;
  // Writing the priced horizons back is idempotent on the sequential path
  // (price already advanced the controller's own references) and is what
  // re-synchronises the controller when the outcome was priced against a
  // shard executor's mirrored horizons.
  switch (op.kind) {
    case Kind::kRead: {
      const SimTime sense_start = out.svc_start;
      lane.busy_until = out.sense_end;
      channel_busy_[op.channel] = out.xfer_end;
      (op.background ? usage_.read_bg : usage_.read_fg) +=
          out.sense_end - sense_start;
      chip_occupancy_[op.chip] += out.sense_end - sense_start;
      if (attrib_) {
        attrib_->op_begin(scheduled_ops_, classify(op), op.mode,
                          op.background, op.chip, op.channel, ready);
        const SimTime base = std::max(ready, out.lane_was);
        attrib_->wait_lane(op.chip, ready, base);
        if (op.background) {
          attrib_->wait_erase(op.chip, base, sense_start);
        } else if (out.erase_was > sense_start) {
          attrib_->note_suspend_saved(out.erase_was - sense_start);
        }
        attrib_->add_service(out.sense_end - sense_start);
        attrib_->claim_lane(op.chip, out.sense_end);
        attrib_->wait_channel(op.channel, out.sense_end, out.xfer_start);
        attrib_->add_service(out.xfer_end - out.xfer_start);
        attrib_->claim_channel(op.channel, out.xfer_end);
        attrib_->add_ecc(out.ecc_ns);
        attrib_->op_end(end);
      }
      if (tl_ecc_decodes_) {
        tl_ecc_decodes_->inc(op.subpages);
        if (ecc_.saturated(op.ber)) tl_ecc_saturated_->inc(op.subpages);
        tl_ecc_ns_->observe(static_cast<double>(out.ecc_ns));
        tl_ops_[0][static_cast<int>(op.mode)]->inc();
        tl_chip_wait_->observe(static_cast<double>(sense_start - ready));
      }
      if (trace_ && trace_->enabled(telemetry::TraceCategory::kFlash)) {
        trace_->span(telemetry::TraceCategory::kFlash,
                     op.mode == CellMode::kSlc ? "read_slc" : "read_mlc",
                     sense_start, end, op.chip,
                     {{"subpages", static_cast<double>(op.subpages)},
                      {"ber", op.ber},
                      {"bg", op.background ? 1.0 : 0.0}});
      }
      break;
    }
    case Kind::kProgram: {
      const SimTime prog_start = out.svc_start;
      channel_busy_[op.channel] = out.xfer_end;
      lane.busy_until = end;
      (op.background ? usage_.program_bg : usage_.program_fg) +=
          end - prog_start;
      chip_occupancy_[op.chip] += end - prog_start;
      if (attrib_) {
        attrib_->op_begin(scheduled_ops_, classify(op), op.mode,
                          op.background, op.chip, op.channel, ready);
        attrib_->wait_channel(op.channel, ready, out.xfer_start);
        attrib_->add_service(out.xfer_end - out.xfer_start);
        attrib_->claim_channel(op.channel, out.xfer_end);
        const SimTime base = std::max(out.xfer_end, out.lane_was);
        attrib_->wait_lane(op.chip, out.xfer_end, base);
        if (op.background) {
          attrib_->wait_erase(op.chip, base, prog_start);
        } else if (out.erase_was > prog_start) {
          attrib_->note_suspend_saved(out.erase_was - prog_start);
        }
        attrib_->add_service(end - prog_start);
        attrib_->claim_lane(op.chip, end);
        attrib_->op_end(end);
      }
      if (tl_ops_[1][static_cast<int>(op.mode)]) {
        tl_ops_[1][static_cast<int>(op.mode)]->inc();
        tl_chip_wait_->observe(static_cast<double>(prog_start - ready));
      }
      if (trace_ && trace_->enabled(telemetry::TraceCategory::kFlash)) {
        trace_->span(telemetry::TraceCategory::kFlash,
                     op.mode == CellMode::kSlc ? "prog_slc" : "prog_mlc",
                     out.xfer_start, end, op.chip,
                     {{"subpages", static_cast<double>(op.subpages)},
                      {"bg", op.background ? 1.0 : 0.0}});
      }
      break;
    }
    case Kind::kReprogram: {
      const SimTime start = out.svc_start;
      lane.busy_until = end;
      (op.background ? usage_.program_bg : usage_.program_fg) += end - start;
      chip_occupancy_[op.chip] += end - start;
      if (attrib_) {
        attrib_->op_begin(scheduled_ops_, classify(op), op.mode,
                          op.background, op.chip, op.channel, ready);
        const SimTime base = std::max(ready, out.lane_was);
        attrib_->wait_lane(op.chip, ready, base);
        if (op.background) {
          attrib_->wait_erase(op.chip, base, start);
        } else if (out.erase_was > start) {
          attrib_->note_suspend_saved(out.erase_was - start);
        }
        attrib_->add_service(end - start);
        attrib_->claim_lane(op.chip, end);
        attrib_->op_end(end);
      }
      if (tl_reprograms_) {
        tl_reprograms_->inc();
        tl_chip_wait_->observe(static_cast<double>(start - ready));
      }
      if (trace_ && trace_->enabled(telemetry::TraceCategory::kFlash)) {
        trace_->span(telemetry::TraceCategory::kFlash, "reprog", start, end,
                     op.chip,
                     {{"subpages", static_cast<double>(op.subpages)},
                      {"bg", op.background ? 1.0 : 0.0}});
      }
      break;
    }
    case Kind::kErase: {
      const SimTime start = out.svc_start;
      lane.erase_until = end;
      usage_.erase_bg += end - start;
      chip_occupancy_[op.chip] += end - start;
      if (attrib_) {
        attrib_->op_begin(scheduled_ops_, classify(op), op.mode,
                          op.background, op.chip, op.channel, ready);
        const SimTime after_erase = std::max(ready, out.erase_was);
        attrib_->wait_erase(op.chip, ready, after_erase);
        attrib_->wait_lane(op.chip, after_erase, start);
        attrib_->add_service(end - start);
        attrib_->claim_erase(op.chip, end);
        attrib_->op_end(end);
      }
      if (tl_erases_) tl_erases_->inc();
      if (trace_ && trace_->enabled(telemetry::TraceCategory::kFlash)) {
        trace_->span(telemetry::TraceCategory::kFlash, "erase", start, end,
                     op.chip,
                     {{"mode", op.mode == CellMode::kSlc ? 0.0 : 1.0}});
      }
      break;
    }
  }

  if (flight_ != nullptr) [[unlikely]] {
    using telemetry::introspect::FlightEvent;
    using telemetry::introspect::FlightEventKind;
    const auto detail = static_cast<std::uint8_t>(
        (static_cast<std::uint8_t>(op.kind) << 2) |
        (static_cast<std::uint8_t>(op.mode) << 1) | (op.background ? 1 : 0));
    flight_->record(FlightEvent{ready, scheduled_ops_, op.chip, op.channel,
                                FlightEventKind::kOpBegin, detail});
    // A foreground array op starting under a pending erase horizon is
    // exactly the condition the attribution layer books as suspend
    // savings; record it with the saved nanoseconds.
    if (!op.background && op.kind != Kind::kErase &&
        out.erase_was > out.svc_start) {
      flight_->record(FlightEvent{
          out.svc_start, scheduled_ops_, op.chip,
          static_cast<std::uint32_t>(
              std::min<SimTime>(out.erase_was - out.svc_start, UINT32_MAX)),
          FlightEventKind::kEraseSuspend, detail});
    }
    flight_->record(FlightEvent{end, scheduled_ops_, op.chip, op.channel,
                                FlightEventKind::kOpFinish, detail});
  }

  ++scheduled_ops_;
  inflight_.push(end, op.chip);
  return end;
}

void Controller::apply_window(const WindowAggregate& agg) {
  PPSSD_CHECK(agg.lane_busy != nullptr && agg.lane_erase != nullptr &&
              agg.chan_busy != nullptr && agg.occupancy_delta != nullptr);
  for (std::size_t c = 0; c < lanes_.size(); ++c) {
    lanes_[c].busy_until = agg.lane_busy[c];
    lanes_[c].erase_until = agg.lane_erase[c];
    chip_occupancy_[c] += agg.occupancy_delta[c];
  }
  for (std::size_t ch = 0; ch < channel_busy_.size(); ++ch) {
    channel_busy_[ch] = agg.chan_busy[ch];
  }
  usage_.read_fg += agg.usage.read_fg;
  usage_.read_bg += agg.usage.read_bg;
  usage_.program_fg += agg.usage.program_fg;
  usage_.program_bg += agg.usage.program_bg;
  usage_.erase_bg += agg.usage.erase_bg;
  scheduled_ops_ += agg.ops;
  // One aggregated retirement event stands in for the window's commands:
  // advance_to(cutoff) keeps its max(clock, cutoff) behaviour, and the
  // final advance_to(kNoTime) still lands the clock on the last
  // completion, exactly where the per-op events would have left it.
  if (agg.ops > 0) inflight_.push(agg.retire_max, 0);
}

}  // namespace ppssd::sim
