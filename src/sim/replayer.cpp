#include "sim/replayer.h"

#include <algorithm>

#include "common/units.h"

namespace ppssd::sim {

ReplayResult Replayer::replay(trace::TraceSource& src,
                              std::uint64_t max_requests) {
  ReplayResult result;
  EventQueue<std::uint8_t> in_flight;
  double depth_sum = 0.0;

  // Host-level instruments (null without an attached telemetry bundle).
  telemetry::Telemetry* tel = ssd_->telemetry();
  telemetry::TraceLog* tlog = nullptr;
  telemetry::Histogram* lat_read = nullptr;
  telemetry::Histogram* lat_write = nullptr;
  telemetry::Gauge* inflight = nullptr;
  if (tel != nullptr) {
    tlog = tel->trace();
    auto& reg = tel->registry();
    lat_read = reg.histogram("host_latency_ms", {{"op", "read"}}, 1e-3, 1e4);
    lat_write = reg.histogram("host_latency_ms", {{"op", "write"}}, 1e-3, 1e4);
    inflight = reg.gauge("inflight_requests");
  }

  trace::TraceRecord rec;
  while (src.next(rec)) {
    if (max_requests != 0 && result.requests >= max_requests) break;

    in_flight.drain_until(rec.arrival, [](const auto&) {});
    depth_sum += static_cast<double>(in_flight.size());
    result.max_queue_depth =
        std::max<std::uint64_t>(result.max_queue_depth, in_flight.size());

    const auto done = ssd_->submit(rec.op, rec.offset, rec.size, rec.arrival);
    result.latency.record(rec.op, done.latency());
    result.makespan = std::max(result.makespan, done.drained);
    in_flight.push(done.finish, 0);
    ++result.requests;

    if (tel != nullptr) {
      inflight->set(static_cast<double>(in_flight.size()));
      const double ms = ns_to_ms(done.latency());
      const bool read = rec.op == OpType::kRead;
      (read ? lat_read : lat_write)->observe(ms);
      if (tlog != nullptr &&
          tlog->enabled(telemetry::TraceCategory::kHost)) {
        tlog->span(telemetry::TraceCategory::kHost,
                   read ? "host_read" : "host_write", rec.arrival,
                   done.finish, telemetry::kHostLane,
                   {{"bytes", static_cast<double>(rec.size)},
                    {"queue_depth", static_cast<double>(in_flight.size())},
                    {"latency_ms", ms}});
      }
      tel->on_request(rec.arrival);
    }
  }
  if (result.requests > 0) {
    result.avg_queue_depth = depth_sum / static_cast<double>(result.requests);
  }
  return result;
}

}  // namespace ppssd::sim
