#include "sim/replayer.h"

#include <algorithm>
#include <array>
#include <span>

#include "common/units.h"

namespace ppssd::sim {

ReplayResult Replayer::replay(trace::TraceSource& src,
                              std::uint64_t max_requests) {
  ReplayResult result;

  // Host-level instruments (null without an attached telemetry bundle).
  telemetry::Telemetry* tel = ssd_->telemetry();
  telemetry::TraceLog* tlog = nullptr;
  telemetry::Histogram* lat_read = nullptr;
  telemetry::Histogram* lat_write = nullptr;
  telemetry::Gauge* inflight = nullptr;
  if (tel != nullptr) {
    tlog = tel->trace();
    auto& reg = tel->registry();
    lat_read = reg.histogram("host_latency_ms", {{"op", "read"}}, 1e-3, 1e4);
    lat_write = reg.histogram("host_latency_ms", {{"op", "write"}}, 1e-3, 1e4);
    inflight = reg.gauge("inflight_requests");
  }

  // Queue-depth accounting. `depth` mirrors the device's completion queue;
  // `depth_integral` accumulates depth x time between consecutive events
  // (arrivals and completions) for the time-weighted mean.
  std::uint64_t depth = 0;
  double depth_integral = 0.0;
  double at_arrival_sum = 0.0;
  SimTime first_arrival = kNoTime;
  SimTime prev_event = 0;

  const auto harvest = [&](const Ssd::HostCompletion& c) {
    if (c.finish > prev_event) {
      depth_integral +=
          static_cast<double>(depth) * static_cast<double>(c.finish - prev_event);
      prev_event = c.finish;
    }
    --depth;
    result.latency.record(c.op, c.latency());
    result.makespan = std::max(result.makespan, c.finish);
    if (tel != nullptr) {
      (c.op == OpType::kRead ? lat_read : lat_write)
          ->observe(ns_to_ms(c.latency()));
    }
  };

  // Batched decode: fetch up to kBatch records per virtual call so the
  // source's decode loop runs devirtualized and the per-record cost in
  // this loop is pure simulation. The record sequence is identical to
  // one-by-one next() by the TraceSource contract. With a request cap the
  // final fetch is clamped, so no record past the cap is consumed.
  const auto submit_one = [&](const trace::TraceRecord& rec) {
    // Retire everything that completed before this request arrives, in
    // completion order, then advance the depth integral to the arrival.
    ssd_->drain_completions(rec.arrival, harvest);
    if (rec.arrival > prev_event) {
      depth_integral += static_cast<double>(depth) *
                        static_cast<double>(rec.arrival - prev_event);
      prev_event = rec.arrival;
    }
    at_arrival_sum += static_cast<double>(depth);
    result.max_queue_depth = std::max(result.max_queue_depth, depth);
    if (first_arrival == kNoTime) first_arrival = rec.arrival;

    const auto done = ssd_->enqueue(rec.op, rec.offset, rec.size, rec.arrival);
    ++depth;
    result.makespan = std::max(result.makespan, done.drained);
    ++result.requests;
    if (progress_ != nullptr && (result.requests & kProgressMask) == 0) {
      progress_->advance(result.requests);
    }

    if (snapshot_ != nullptr) snapshot_->tick(rec.arrival);
    if (tel != nullptr) {
      inflight->set(static_cast<double>(depth));
      const double ms = ns_to_ms(done.latency());
      const bool read = rec.op == OpType::kRead;
      if (tlog != nullptr && tlog->enabled(telemetry::TraceCategory::kHost)) {
        tlog->span(telemetry::TraceCategory::kHost,
                   read ? "host_read" : "host_write", rec.arrival, done.finish,
                   telemetry::kHostLane,
                   {{"bytes", static_cast<double>(rec.size)},
                    {"queue_depth", static_cast<double>(depth)},
                    {"latency_ms", ms}});
      }
      tel->on_request(rec.arrival);
    }
  };

  std::array<trace::TraceRecord, kBatch> batch;
  if (ssd_->windowed()) {
    // Sharded windowed replay (DESIGN.md §15): admit requests in windows
    // (phase A — scheme state advances, ops are staged), then flush each
    // window (phase B — sharded pricing, sequential retirement). The
    // callbacks below replay exactly the accounting submit_one does
    // around its enqueue() call, in the same per-request order.
    const std::function<void(const Ssd::WinReq&)> before =
        [&](const Ssd::WinReq& r) {
          ssd_->drain_completions(r.arrival, harvest);
          if (r.arrival > prev_event) {
            depth_integral += static_cast<double>(depth) *
                              static_cast<double>(r.arrival - prev_event);
            prev_event = r.arrival;
          }
          at_arrival_sum += static_cast<double>(depth);
          result.max_queue_depth = std::max(result.max_queue_depth, depth);
          if (first_arrival == kNoTime) first_arrival = r.arrival;
        };
    const std::function<void(const Ssd::WinReq&, const Ssd::Completion&)>
        after = [&](const Ssd::WinReq& r, const Ssd::Completion& done) {
          ++depth;
          result.makespan = std::max(result.makespan, done.drained);
          ++result.requests;
          if (progress_ != nullptr && (result.requests & kProgressMask) == 0) {
            progress_->advance(result.requests);
          }
          if (tel != nullptr) {
            inflight->set(static_cast<double>(depth));
            const double ms = ns_to_ms(done.latency());
            const bool read = r.op == OpType::kRead;
            if (tlog != nullptr &&
                tlog->enabled(telemetry::TraceCategory::kHost)) {
              tlog->span(telemetry::TraceCategory::kHost,
                         read ? "host_read" : "host_write", r.arrival,
                         done.finish, telemetry::kHostLane,
                         {{"bytes", static_cast<double>(r.size)},
                          {"queue_depth", static_cast<double>(depth)},
                          {"latency_ms", ms}});
            }
            tel->on_request(r.arrival);
          }
        };
    std::uint64_t submitted = 0;
    for (;;) {
      std::size_t want = batch.size();
      if (max_requests != 0) {
        want = static_cast<std::size_t>(
            std::min<std::uint64_t>(want, max_requests - submitted));
      }
      if (want == 0) break;
      const std::size_t got = src.next_batch(std::span(batch.data(), want));
      if (got == 0) break;
      for (std::size_t i = 0; i < got; ++i) {
        const auto& rec = batch[i];
        ssd_->enqueue_window(rec.op, rec.offset, rec.size, rec.arrival);
        ++submitted;
        // Snapshot frames walk scheme state, which advances at admission
        // — ticking here keeps the stream byte-identical to the
        // sequential replay.
        if (snapshot_ != nullptr) snapshot_->tick(rec.arrival);
        if (ssd_->window_requests() >= kWindowRequests ||
            ssd_->window_wants_flush()) {
          ssd_->flush_window(before, after);
        }
      }
    }
    ssd_->flush_window(before, after);
  } else {
    for (;;) {
      std::size_t want = batch.size();
      if (max_requests != 0) {
        want = static_cast<std::size_t>(
            std::min<std::uint64_t>(want, max_requests - result.requests));
      }
      if (want == 0) break;
      const std::size_t got = src.next_batch(std::span(batch.data(), want));
      if (got == 0) break;
      for (std::size_t i = 0; i < got; ++i) submit_one(batch[i]);
    }
  }

  // Source exhausted: harvest every remaining completion.
  ssd_->drain_completions(kNoTime, harvest);
  if (tel != nullptr && inflight != nullptr) inflight->set(0.0);

  if (result.requests > 0) {
    result.avg_queue_depth_at_arrival =
        at_arrival_sum / static_cast<double>(result.requests);
    if (prev_event > first_arrival) {
      result.avg_queue_depth =
          depth_integral / static_cast<double>(prev_event - first_arrival);
    }
  }
  return result;
}

}  // namespace ppssd::sim
