#include "sim/replayer.h"

#include <algorithm>

namespace ppssd::sim {

ReplayResult Replayer::replay(trace::TraceSource& src,
                              std::uint64_t max_requests) {
  ReplayResult result;
  EventQueue<std::uint8_t> in_flight;
  double depth_sum = 0.0;

  trace::TraceRecord rec;
  while (src.next(rec)) {
    if (max_requests != 0 && result.requests >= max_requests) break;

    in_flight.drain_until(rec.arrival, [](const auto&) {});
    depth_sum += static_cast<double>(in_flight.size());
    result.max_queue_depth =
        std::max<std::uint64_t>(result.max_queue_depth, in_flight.size());

    const auto done = ssd_->submit(rec.op, rec.offset, rec.size, rec.arrival);
    result.latency.record(rec.op, done.latency());
    result.makespan = std::max(result.makespan, done.drained);
    in_flight.push(done.finish, 0);
    ++result.requests;
  }
  if (result.requests > 0) {
    result.avg_queue_depth = depth_sum / static_cast<double>(result.requests);
  }
  return result;
}

}  // namespace ppssd::sim
