#include "sim/ssd.h"

#include <algorithm>
#include <span>

#include "common/check.h"
#include "common/state_io.h"
#include "common/units.h"
#include "telemetry/introspect/snapshotter.h"

namespace ppssd::sim {

Ssd::Ssd(const SsdConfig& cfg, std::string_view scheme_name)
    : Ssd(cfg, cache::make_scheme(scheme_name, cfg)) {}

Ssd::Ssd(const SsdConfig& cfg, std::unique_ptr<cache::Scheme> scheme)
    : scheme_(std::move(scheme)),
      service_(cfg, scheme_->array().chip_count(),
               scheme_->array().geometry().channels()) {
  PPSSD_CHECK(scheme_ != nullptr);
}

std::uint64_t Ssd::logical_bytes() const {
  return scheme_->array().geometry().logical_subpages() * kSubpageBytes;
}

void Ssd::attach_telemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry;
  attrib_ = telemetry ? telemetry->attribution() : nullptr;
  if (attrib_) {
    attrib_->attach_registry(&telemetry->registry(), scheme_->name());
  }
  scheme_->attach_telemetry(telemetry);
  service_.attach_telemetry(telemetry);
}

void Ssd::attach_introspection(telemetry::introspect::Snapshotter* snap) {
  if (snap == nullptr) {
    controller().set_flight_recorder(nullptr);
    scheme_->set_flight_recorder(nullptr);
    return;
  }
  snap->bind(*scheme_);
  controller().set_flight_recorder(snap->flight());
  scheme_->set_flight_recorder(snap->flight());
}

void Ssd::reset_timing() {
  service_.reset();
  // Unharvested completions carry pre-reset finish times.
  pending_.drain_until(kNoTime, [](const auto&) {});
  // Pending deferred ops may reference finish times from before the reset;
  // those would distort post-reset scheduling. Dependencies on entries that
  // are themselves still pending stay intact — they resolve to post-reset
  // times when the dependency is scheduled.
  for (std::size_t i = deferred_head_; i < deferred_.size(); ++i) {
    Deferred& d = deferred_[i];
    d.dep_finish = 0;
    if (d.dep_entry != kNoEntry && deferred_[d.dep_entry].scheduled) {
      d.dep_entry = kNoEntry;
    }
  }
}

SimTime Ssd::schedule_deferred(Deferred& d, SimTime now) {
  SimTime ready = std::max(now, d.dep_finish);
  if (d.dep_entry != kNoEntry) {
    const Deferred& dep = deferred_[d.dep_entry];
    // Deferral is FIFO and dependencies only point backward, so the
    // dependency has always been scheduled by the time we get here.
    PPSSD_CHECK_MSG(dep.scheduled, "deferred dependency scheduled out of order");
    ready = std::max(ready, dep.finish);
  }
  d.finish = service_.controller().schedule(d.op, ready);
  d.scheduled = true;
  return d.finish;
}

Ssd::Completion Ssd::do_submit(OpType op, std::uint64_t offset,
                               std::uint32_t size, SimTime arrival) {
  PPSSD_CHECK(size > 0);
  const std::uint64_t total = scheme_->array().geometry().logical_subpages();

  // Subpage-align and wrap into the logical space.
  Lsn lsn = (offset / kSubpageBytes) % total;
  auto count = static_cast<std::uint32_t>(
      bytes_to_subpages(offset % kSubpageBytes + size));
  count = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(count, total - lsn));

  ops_.clear();
  if (op == OpType::kWrite) {
    scheme_->host_write(lsn, count, arrival, ops_);
  } else {
    scheme_->host_read(lsn, count, arrival, ops_);
  }

  Completion done;
  done.id = next_request_id_++;
  done.start = arrival;

  // Bracket the request for the blame ledger: every foreground op
  // scheduled until finish_request folds into this request's component
  // vector (background ops accrue to the interference matrix only).
  if (attrib_) attrib_->begin_request(done.id, op, arrival);

  // GC interleaving: the controller gives host commands priority and
  // spreads background flash work across subsequent requests rather than
  // monopolising chips in one burst. Logical state already advanced in
  // the scheme; only the command *scheduling* is deferred.
  const std::uint32_t interleave = config().cache.gc_interleave_ops;
  if (interleave == 0) {
    const auto outcome = service_.service(ops_, arrival);
    done.finish = outcome.foreground_end;
    done.drained = outcome.background_end;
    if (attrib_) attrib_->finish_request(done.finish);
    return done;
  }

  // Schedule this request's foreground commands immediately; queue its
  // background commands, then drain a bounded slice of the backlog.
  // Dependency edges (PhysOp::depends_on, request-local indices) are
  // translated here: an edge to a foreground op becomes a resolved finish
  // time, an edge to a deferred op becomes a deferred-queue index that the
  // FIFO drain resolves when the dependency is scheduled.
  Controller& ctrl = service_.controller();
  SimTime fg_end = arrival;
  op_finish_.clear();
  op_deferred_.clear();
  for (const auto& o : ops_) {
    SimTime dep_finish = 0;
    std::size_t dep_entry = kNoEntry;
    if (o.depends_on != cache::PhysOp::kNoDependency) {
      PPSSD_CHECK_MSG(o.depends_on < op_finish_.size(),
                      "depends_on must reference an earlier op");
      dep_entry = op_deferred_[o.depends_on];
      if (dep_entry == kNoEntry) dep_finish = op_finish_[o.depends_on];
    }
    if (o.background) {
      op_deferred_.push_back(deferred_.size());
      op_finish_.push_back(0);
      deferred_.push_back(Deferred{o, dep_finish, dep_entry});
    } else {
      PPSSD_CHECK_MSG(dep_entry == kNoEntry,
                      "foreground op cannot depend on a deferred op");
      const SimTime end =
          ctrl.schedule(o, std::max(arrival, dep_finish));
      fg_end = std::max(fg_end, end);
      op_deferred_.push_back(kNoEntry);
      op_finish_.push_back(end);
    }
  }
  SimTime bg_end = arrival;
  std::uint32_t budget = interleave;
  // Never let the backlog grow unboundedly: drain faster when it piles up.
  budget = std::max<std::uint32_t>(
      budget, static_cast<std::uint32_t>(deferred_background_ops() / 64));
  while (budget-- > 0 && deferred_head_ < deferred_.size()) {
    bg_end = std::max(bg_end, schedule_deferred(deferred_[deferred_head_],
                                                arrival));
    ++deferred_head_;
  }
  if (deferred_head_ == deferred_.size()) {
    deferred_.clear();
    deferred_head_ = 0;
  }

  done.finish = fg_end;
  done.drained = std::max(fg_end, bg_end);
  if (attrib_) attrib_->finish_request(done.finish);
  return done;
}

Ssd::Completion Ssd::submit(OpType op, std::uint64_t offset,
                            std::uint32_t size, SimTime arrival) {
  return do_submit(op, offset, size, arrival);
}

Ssd::Completion Ssd::enqueue(OpType op, std::uint64_t offset,
                             std::uint32_t size, SimTime arrival) {
  const Completion done = do_submit(op, offset, size, arrival);
  HostCompletion host;
  host.id = done.id;
  host.op = op;
  host.arrival = arrival;
  host.finish = done.finish;
  host.drained = done.drained;
  pending_.push(done.finish, host);
  return done;
}

SimTime Ssd::drain_background(SimTime now) {
  SimTime end = now;
  while (deferred_head_ < deferred_.size()) {
    end = std::max(end, schedule_deferred(deferred_[deferred_head_], now));
    ++deferred_head_;
  }
  deferred_.clear();
  deferred_head_ = 0;
  return end;
}

void Ssd::save(io::StateSink& sink) const {
  PPSSD_CHECK_MSG(pending_.empty(),
                  "checkpointing with unharvested host completions");
  scheme_->save(sink);
  sink.u64(next_request_id_);
  sink.u64(deferred_head_);
  // Field-wise (PhysOp and Deferred carry padding bytes; a memcpy'd
  // vector would leak indeterminate padding into the checkpoint stream).
  sink.u64(deferred_.size());
  for (const Deferred& d : deferred_) {
    sink.u32(d.op.chip);
    sink.u32(d.op.channel);
    sink.u8(static_cast<std::uint8_t>(d.op.kind));
    sink.u8(static_cast<std::uint8_t>(d.op.mode));
    sink.u32(d.op.subpages);
    sink.f64(d.op.ber);
    sink.boolean(d.op.background);
    sink.u8(static_cast<std::uint8_t>(d.op.origin));
    sink.u32(d.op.depends_on);
    sink.u64(d.dep_finish);
    sink.u64(d.dep_entry);
    sink.u64(d.finish);
    sink.boolean(d.scheduled);
  }
}

void Ssd::restore(io::StateSource& src) {
  scheme_->restore(src);
  next_request_id_ = src.u64();
  deferred_head_ = static_cast<std::size_t>(src.u64());
  deferred_.assign(static_cast<std::size_t>(src.u64()), Deferred{});
  for (Deferred& d : deferred_) {
    d.op.chip = src.u32();
    d.op.channel = src.u32();
    d.op.kind = static_cast<cache::PhysOp::Kind>(src.u8());
    d.op.mode = static_cast<CellMode>(src.u8());
    d.op.subpages = src.u32();
    d.op.ber = src.f64();
    d.op.background = src.boolean();
    d.op.origin = static_cast<cache::OpOrigin>(src.u8());
    d.op.depends_on = src.u32();
    d.dep_finish = src.u64();
    d.dep_entry = static_cast<std::size_t>(src.u64());
    d.finish = src.u64();
    d.scheduled = src.boolean();
  }
  PPSSD_CHECK_MSG(src.ok() && deferred_head_ <= deferred_.size(),
                  "warm-start checkpoint truncated at device level");
}

}  // namespace ppssd::sim
