#include "sim/ssd.h"

#include <algorithm>
#include <span>

#include "common/check.h"
#include "common/units.h"

namespace ppssd::sim {

Ssd::Ssd(const SsdConfig& cfg, cache::SchemeKind kind)
    : Ssd(cfg, cache::make_scheme(kind, cfg)) {}

Ssd::Ssd(const SsdConfig& cfg, std::unique_ptr<cache::Scheme> scheme)
    : scheme_(std::move(scheme)),
      service_(cfg, scheme_->array().chip_count(),
               scheme_->array().geometry().channels()) {
  PPSSD_CHECK(scheme_ != nullptr);
}

std::uint64_t Ssd::logical_bytes() const {
  return scheme_->array().geometry().logical_subpages() * kSubpageBytes;
}

void Ssd::attach_telemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry;
  scheme_->attach_telemetry(telemetry);
  service_.attach_telemetry(telemetry);
}

Ssd::Completion Ssd::submit(OpType op, std::uint64_t offset,
                            std::uint32_t size, SimTime arrival) {
  PPSSD_CHECK(size > 0);
  const std::uint64_t total = scheme_->array().geometry().logical_subpages();

  // Subpage-align and wrap into the logical space.
  Lsn lsn = (offset / kSubpageBytes) % total;
  auto count = static_cast<std::uint32_t>(
      bytes_to_subpages(offset % kSubpageBytes + size));
  count = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(count, total - lsn));

  ops_.clear();
  if (op == OpType::kWrite) {
    scheme_->host_write(lsn, count, arrival, ops_);
  } else {
    scheme_->host_read(lsn, count, arrival, ops_);
  }

  // GC interleaving: the controller gives host commands priority and
  // spreads background flash work across subsequent requests rather than
  // monopolising chips in one burst. Logical state already advanced in
  // the scheme; only the op *pricing* is deferred.
  const std::uint32_t interleave = config().cache.gc_interleave_ops;
  SimTime bg_end = arrival;
  if (interleave == 0) {
    const auto outcome = service_.service(ops_, arrival);
    Completion done;
    done.start = arrival;
    done.finish = outcome.foreground_end;
    done.drained = outcome.background_end;
    return done;
  }

  // Price this request's foreground ops immediately; queue its background
  // ops, then drain a bounded slice of the backlog.
  SimTime fg_end = arrival;
  for (const auto& o : ops_) {
    if (o.background) {
      deferred_.push_back(o);
    } else {
      const auto outcome =
          service_.service(std::span<const cache::PhysOp>(&o, 1), arrival);
      fg_end = std::max(fg_end, outcome.foreground_end);
    }
  }
  std::uint32_t budget = interleave;
  // Never let the backlog grow unboundedly: drain faster when it piles up.
  budget = std::max<std::uint32_t>(
      budget, static_cast<std::uint32_t>(deferred_background_ops() / 64));
  while (budget-- > 0 && deferred_head_ < deferred_.size()) {
    const auto outcome = service_.service(
        std::span<const cache::PhysOp>(&deferred_[deferred_head_], 1),
        arrival);
    bg_end = std::max(bg_end, outcome.background_end);
    ++deferred_head_;
  }
  if (deferred_head_ == deferred_.size()) {
    deferred_.clear();
    deferred_head_ = 0;
  }

  Completion done;
  done.start = arrival;
  done.finish = fg_end;
  done.drained = std::max(fg_end, bg_end);
  return done;
}

SimTime Ssd::drain_background(SimTime now) {
  SimTime end = now;
  while (deferred_head_ < deferred_.size()) {
    const auto outcome = service_.service(
        std::span<const cache::PhysOp>(&deferred_[deferred_head_], 1), now);
    end = std::max(end, outcome.background_end);
    ++deferred_head_;
  }
  deferred_.clear();
  deferred_head_ = 0;
  return end;
}

}  // namespace ppssd::sim
