#include "sim/ssd.h"

#include <algorithm>
#include <span>

#include "common/check.h"
#include "common/state_io.h"
#include "common/units.h"
#include "telemetry/introspect/snapshotter.h"

namespace ppssd::sim {

Ssd::Ssd(const SsdConfig& cfg, std::string_view scheme_name)
    : Ssd(cfg, cache::make_scheme(scheme_name, cfg)) {}

Ssd::Ssd(const SsdConfig& cfg, std::unique_ptr<cache::Scheme> scheme)
    : scheme_(std::move(scheme)),
      service_(cfg, scheme_->array().chip_count(),
               scheme_->array().geometry().channels()) {
  PPSSD_CHECK(scheme_ != nullptr);
}

std::uint64_t Ssd::logical_bytes() const {
  return scheme_->array().geometry().logical_subpages() * kSubpageBytes;
}

void Ssd::attach_telemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry;
  attrib_ = telemetry ? telemetry->attribution() : nullptr;
  if (attrib_) {
    attrib_->attach_registry(&telemetry->registry(), scheme_->name());
  }
  scheme_->attach_telemetry(telemetry);
  service_.attach_telemetry(telemetry);
}

void Ssd::attach_introspection(telemetry::introspect::Snapshotter* snap) {
  if (snap == nullptr) {
    controller().set_flight_recorder(nullptr);
    scheme_->set_flight_recorder(nullptr);
    scheme_flight_ = nullptr;
    return;
  }
  snap->bind(*scheme_);
  controller().set_flight_recorder(snap->flight());
  scheme_->set_flight_recorder(snap->flight());
  scheme_flight_ = snap->flight();
  if (executor_ != nullptr && scheme_flight_ != nullptr && !staging_) {
    staging_ = std::make_unique<telemetry::introspect::FlightRecorder>(
        kFlightStagingCapacity);
    win_flight_base_ = 0;
  }
}

void Ssd::set_shard_executor(ShardExecutor* exec) {
  PPSSD_CHECK_MSG(win_reqs_.empty() && win_items_.empty(),
                  "cannot swap shard executors with an open window");
  executor_ = exec;
  win_def_begin_ = deferred_.size();
  if (executor_ != nullptr && scheme_flight_ != nullptr && !staging_) {
    staging_ = std::make_unique<telemetry::introspect::FlightRecorder>(
        kFlightStagingCapacity);
    win_flight_base_ = 0;
  }
}

void Ssd::reset_timing() {
  PPSSD_CHECK_MSG(win_reqs_.empty(), "reset_timing with an open window");
  service_.reset();
  // Unharvested completions carry pre-reset finish times.
  pending_.drain_until(kNoTime, [](const auto&) {});
  // Pending deferred ops may reference finish times from before the reset;
  // those would distort post-reset scheduling. Dependencies on entries that
  // are themselves still pending stay intact — they resolve to post-reset
  // times when the dependency is scheduled.
  for (std::size_t i = deferred_head_; i < deferred_.size(); ++i) {
    Deferred& d = deferred_[i];
    d.dep_finish = 0;
    if (d.dep_entry != kNoEntry && deferred_[d.dep_entry].scheduled) {
      d.dep_entry = kNoEntry;
    }
  }
}

SimTime Ssd::schedule_deferred(Deferred& d, SimTime now) {
  SimTime ready = std::max(now, d.dep_finish);
  if (d.dep_entry != kNoEntry) {
    const Deferred& dep = deferred_[d.dep_entry];
    // Deferral is FIFO and dependencies only point backward, so the
    // dependency has always been scheduled by the time we get here.
    PPSSD_CHECK_MSG(dep.scheduled, "deferred dependency scheduled out of order");
    ready = std::max(ready, dep.finish);
  }
  d.finish = service_.controller().schedule(d.op, ready);
  d.scheduled = true;
  return d.finish;
}

Ssd::Completion Ssd::do_submit(OpType op, std::uint64_t offset,
                               std::uint32_t size, SimTime arrival) {
  PPSSD_CHECK(size > 0);
  PPSSD_CHECK_MSG(win_reqs_.empty(),
                  "synchronous submit with an open admission window");
  const std::uint64_t total = scheme_->array().geometry().logical_subpages();

  // Subpage-align and wrap into the logical space.
  Lsn lsn = (offset / kSubpageBytes) % total;
  auto count = static_cast<std::uint32_t>(
      bytes_to_subpages(offset % kSubpageBytes + size));
  count = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(count, total - lsn));

  ops_.clear();
  if (op == OpType::kWrite) {
    scheme_->host_write(lsn, count, arrival, ops_);
  } else {
    scheme_->host_read(lsn, count, arrival, ops_);
  }

  Completion done;
  done.id = next_request_id_++;
  done.start = arrival;

  // Bracket the request for the blame ledger: every foreground op
  // scheduled until finish_request folds into this request's component
  // vector (background ops accrue to the interference matrix only).
  if (attrib_) attrib_->begin_request(done.id, op, arrival);

  // GC interleaving: the controller gives host commands priority and
  // spreads background flash work across subsequent requests rather than
  // monopolising chips in one burst. Logical state already advanced in
  // the scheme; only the command *scheduling* is deferred.
  const std::uint32_t interleave = config().cache.gc_interleave_ops;
  if (interleave == 0) {
    const auto outcome = service_.service(ops_, arrival);
    done.finish = outcome.foreground_end;
    done.drained = outcome.background_end;
    if (attrib_) attrib_->finish_request(done.finish);
    return done;
  }

  // Schedule this request's foreground commands immediately; queue its
  // background commands, then drain a bounded slice of the backlog.
  // Dependency edges (PhysOp::depends_on, request-local indices) are
  // translated here: an edge to a foreground op becomes a resolved finish
  // time, an edge to a deferred op becomes a deferred-queue index that the
  // FIFO drain resolves when the dependency is scheduled.
  Controller& ctrl = service_.controller();
  SimTime fg_end = arrival;
  op_finish_.clear();
  op_deferred_.clear();
  for (const auto& o : ops_) {
    SimTime dep_finish = 0;
    std::size_t dep_entry = kNoEntry;
    if (o.depends_on != cache::PhysOp::kNoDependency) {
      PPSSD_CHECK_MSG(o.depends_on < op_finish_.size(),
                      "depends_on must reference an earlier op");
      dep_entry = op_deferred_[o.depends_on];
      if (dep_entry == kNoEntry) dep_finish = op_finish_[o.depends_on];
    }
    if (o.background) {
      op_deferred_.push_back(deferred_.size());
      op_finish_.push_back(0);
      deferred_.push_back(Deferred{o, dep_finish, dep_entry});
    } else {
      PPSSD_CHECK_MSG(dep_entry == kNoEntry,
                      "foreground op cannot depend on a deferred op");
      const SimTime end =
          ctrl.schedule(o, std::max(arrival, dep_finish));
      fg_end = std::max(fg_end, end);
      op_deferred_.push_back(kNoEntry);
      op_finish_.push_back(end);
    }
  }
  SimTime bg_end = arrival;
  std::uint32_t budget = interleave;
  // Never let the backlog grow unboundedly: drain faster when it piles up.
  budget = std::max<std::uint32_t>(
      budget, static_cast<std::uint32_t>(deferred_background_ops() / 64));
  while (budget-- > 0 && deferred_head_ < deferred_.size()) {
    bg_end = std::max(bg_end, schedule_deferred(deferred_[deferred_head_],
                                                arrival));
    ++deferred_head_;
  }
  if (deferred_head_ == deferred_.size()) {
    deferred_.clear();
    deferred_head_ = 0;
  }

  done.finish = fg_end;
  done.drained = std::max(fg_end, bg_end);
  if (attrib_) attrib_->finish_request(done.finish);
  return done;
}

Ssd::Completion Ssd::submit(OpType op, std::uint64_t offset,
                            std::uint32_t size, SimTime arrival) {
  return do_submit(op, offset, size, arrival);
}

Ssd::Completion Ssd::enqueue(OpType op, std::uint64_t offset,
                             std::uint32_t size, SimTime arrival) {
  const Completion done = do_submit(op, offset, size, arrival);
  HostCompletion host;
  host.id = done.id;
  host.op = op;
  host.arrival = arrival;
  host.finish = done.finish;
  host.drained = done.drained;
  pending_.push(done.finish, host);
  return done;
}

SimTime Ssd::drain_background(SimTime now) {
  PPSSD_CHECK_MSG(win_reqs_.empty(), "drain_background with an open window");
  SimTime end = now;
  while (deferred_head_ < deferred_.size()) {
    end = std::max(end, schedule_deferred(deferred_[deferred_head_], now));
    ++deferred_head_;
  }
  deferred_.clear();
  deferred_head_ = 0;
  win_def_begin_ = 0;
  return end;
}

void Ssd::enqueue_window(OpType op, std::uint64_t offset, std::uint32_t size,
                         SimTime arrival) {
  PPSSD_CHECK(executor_ != nullptr);
  PPSSD_CHECK(size > 0);
  const std::uint64_t total = scheme_->array().geometry().logical_subpages();

  // Same subpage-align-and-wrap as do_submit.
  Lsn lsn = (offset / kSubpageBytes) % total;
  auto count = static_cast<std::uint32_t>(
      bytes_to_subpages(offset % kSubpageBytes + size));
  count = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(count, total - lsn));

  WinReq r;
  r.id = next_request_id_++;
  r.op = op;
  r.arrival = arrival;
  r.size = size;
  r.first_item = static_cast<std::uint32_t>(win_items_.size());

  // Stage the scheme's flight events (GC decisions) so the ordered merge
  // at flush time lands them exactly where the sequential stream has
  // them: before this request's op begin/finish events.
  if (staging_) {
    r.flight_begin = staging_->recorded();
    scheme_->set_flight_recorder(staging_.get());
  }
  ops_.clear();
  if (op == OpType::kWrite) {
    scheme_->host_write(lsn, count, arrival, ops_);
  } else {
    scheme_->host_read(lsn, count, arrival, ops_);
  }
  if (staging_) {
    r.flight_end = staging_->recorded();
    scheme_->set_flight_recorder(scheme_flight_);
    PPSSD_CHECK_MSG(r.flight_end - r.flight_begin <= staging_->capacity(),
                    "flight staging ring overflowed within one request");
  }

  const std::uint32_t interleave = config().cache.gc_interleave_ops;
  if (interleave == 0) {
    // Synchronous service semantics: every op (foreground and background)
    // of this request is staged in issue order with its dependency as a
    // window edge — the windowed twin of ServiceModel::service().
    for (const auto& o : ops_) {
      ShardExecutor::WinItem it{o, arrival, ShardExecutor::kNoDep};
      if (o.depends_on != cache::PhysOp::kNoDependency) {
        PPSSD_CHECK_MSG(
            r.first_item + o.depends_on < win_items_.size(),
            "depends_on must reference an earlier op");
        it.dep = r.first_item + o.depends_on;
      }
      win_items_.push_back(it);
      win_def_.push_back(kNoEntry);
    }
  } else {
    // GC interleaving: stage foreground ops now, queue background ops,
    // then claim a bounded slice of the backlog into the window — the
    // same admission order and drain budget as the sequential do_submit,
    // all of it phase-A state, so the op stream is identical.
    op_item_.clear();
    op_deferred_.clear();
    for (const auto& o : ops_) {
      std::size_t dep_entry = kNoEntry;
      std::uint32_t dep_item = ShardExecutor::kNoDep;
      if (o.depends_on != cache::PhysOp::kNoDependency) {
        PPSSD_CHECK_MSG(o.depends_on < op_item_.size(),
                        "depends_on must reference an earlier op");
        dep_entry = op_deferred_[o.depends_on];
        if (dep_entry == kNoEntry) dep_item = op_item_[o.depends_on];
      }
      if (o.background) {
        Deferred d{o, 0, dep_entry};
        d.dep_win = dep_item;  // fg dep staged this window (or kNoDep)
        op_deferred_.push_back(deferred_.size());
        op_item_.push_back(ShardExecutor::kNoDep);
        deferred_.push_back(d);
      } else {
        PPSSD_CHECK_MSG(dep_entry == kNoEntry,
                        "foreground op cannot depend on a deferred op");
        op_deferred_.push_back(kNoEntry);
        op_item_.push_back(static_cast<std::uint32_t>(win_items_.size()));
        win_items_.push_back({o, arrival, dep_item});
        win_def_.push_back(kNoEntry);
      }
    }
    std::uint32_t budget = std::max<std::uint32_t>(
        interleave,
        static_cast<std::uint32_t>(deferred_background_ops() / 64));
    while (budget-- > 0 && deferred_head_ < deferred_.size()) {
      Deferred& d = deferred_[deferred_head_];
      SimTime floor = arrival;
      std::uint32_t dep = ShardExecutor::kNoDep;
      if (d.dep_win != ShardExecutor::kNoDep) {
        dep = d.dep_win;  // fg dependency staged earlier this window
      } else {
        floor = std::max(floor, d.dep_finish);
      }
      if (d.dep_entry != kNoEntry) {
        const Deferred& dd = deferred_[d.dep_entry];
        if (dd.scheduled) {
          floor = std::max(floor, dd.finish);
        } else {
          PPSSD_CHECK_MSG(dd.win_item != ShardExecutor::kNoDep,
                          "deferred dependency scheduled out of order");
          dep = dd.win_item;
        }
      }
      d.win_item = static_cast<std::uint32_t>(win_items_.size());
      win_items_.push_back({d.op, floor, dep});
      win_def_.push_back(deferred_head_);
      ++deferred_head_;
    }
    // Compaction waits for the flush: win_def_ entries and dep_entry
    // edges hold live indices into deferred_ until the priced finishes
    // are written back.
  }
  r.num_items = static_cast<std::uint32_t>(win_items_.size()) - r.first_item;
  win_reqs_.push_back(r);
}

void Ssd::flush_window(
    const std::function<void(const WinReq&)>& before,
    const std::function<void(const WinReq&, const Completion&)>& after) {
  if (win_reqs_.empty()) return;
  Controller& ctrl = service_.controller();
  executor_->price_window(ctrl, win_items_, win_out_);
  // With no observer attached, every result-visible controller quantity
  // is an order-independent sum or a final horizon: fold the whole
  // window in one merge. Otherwise replay per-op commits in submission
  // order below, which keeps every instrumentation stream bit-identical
  // to the sequential run.
  const bool fast = !ctrl.has_observers();
  if (fast) ctrl.apply_window(executor_->aggregate());

  for (const WinReq& r : win_reqs_) {
    if (before) before(r);
    if (staging_ && scheme_flight_ != nullptr) {
      for (std::uint64_t e = r.flight_begin; e < r.flight_end; ++e) {
        scheme_flight_->record(staging_->event_at(e));
      }
    }
    if (attrib_) attrib_->begin_request(r.id, r.op, r.arrival);
    SimTime fg_end = r.arrival;
    SimTime bg_end = r.arrival;
    const std::uint32_t hi = r.first_item + r.num_items;
    for (std::uint32_t k = r.first_item; k < hi; ++k) {
      if (!fast) ctrl.commit(win_items_[k].op, win_out_[k]);
      const SimTime end = win_out_[k].end;
      if (win_items_[k].op.background) {
        bg_end = std::max(bg_end, end);
      } else {
        fg_end = std::max(fg_end, end);
      }
    }
    Completion done;
    done.id = r.id;
    done.start = r.arrival;
    done.finish = fg_end;
    done.drained = std::max(fg_end, bg_end);
    if (attrib_) attrib_->finish_request(done.finish);
    HostCompletion host;
    host.id = r.id;
    host.op = r.op;
    host.arrival = r.arrival;
    host.finish = done.finish;
    host.drained = done.drained;
    pending_.push(done.finish, host);
    if (after) after(r, done);
  }

  // Write the priced finishes back into the backlog entries this window
  // claimed, and resolve the window-local dependency fields of entries
  // that stay queued (their fg dependency's end is now known).
  for (std::size_t k = 0; k < win_items_.size(); ++k) {
    if (win_def_[k] == kNoEntry) continue;
    Deferred& d = deferred_[win_def_[k]];
    d.finish = win_out_[k].end;
    d.scheduled = true;
    d.win_item = ShardExecutor::kNoDep;
  }
  for (std::size_t s = win_def_begin_; s < deferred_.size(); ++s) {
    Deferred& d = deferred_[s];
    if (d.dep_win != ShardExecutor::kNoDep) {
      d.dep_finish = std::max(d.dep_finish, win_out_[d.dep_win].end);
      d.dep_win = ShardExecutor::kNoDep;
    }
  }
  if (deferred_head_ == deferred_.size()) {
    deferred_.clear();
    deferred_head_ = 0;
  }
  win_def_begin_ = deferred_.size();
  win_items_.clear();
  win_def_.clear();
  win_reqs_.clear();
  if (staging_) win_flight_base_ = staging_->recorded();
}

void Ssd::save(io::StateSink& sink) const {
  PPSSD_CHECK_MSG(pending_.empty(),
                  "checkpointing with unharvested host completions");
  PPSSD_CHECK_MSG(win_reqs_.empty(), "checkpointing with an open window");
  scheme_->save(sink);
  sink.u64(next_request_id_);
  sink.u64(deferred_head_);
  // Field-wise (PhysOp and Deferred carry padding bytes; a memcpy'd
  // vector would leak indeterminate padding into the checkpoint stream).
  sink.u64(deferred_.size());
  for (const Deferred& d : deferred_) {
    sink.u32(d.op.chip);
    sink.u32(d.op.channel);
    sink.u8(static_cast<std::uint8_t>(d.op.kind));
    sink.u8(static_cast<std::uint8_t>(d.op.mode));
    sink.u32(d.op.subpages);
    sink.f64(d.op.ber);
    sink.boolean(d.op.background);
    sink.u8(static_cast<std::uint8_t>(d.op.origin));
    sink.u32(d.op.depends_on);
    sink.u64(d.dep_finish);
    sink.u64(d.dep_entry);
    sink.u64(d.finish);
    sink.boolean(d.scheduled);
  }
}

void Ssd::restore(io::StateSource& src) {
  scheme_->restore(src);
  next_request_id_ = src.u64();
  deferred_head_ = static_cast<std::size_t>(src.u64());
  deferred_.assign(static_cast<std::size_t>(src.u64()), Deferred{});
  for (Deferred& d : deferred_) {
    d.op.chip = src.u32();
    d.op.channel = src.u32();
    d.op.kind = static_cast<cache::PhysOp::Kind>(src.u8());
    d.op.mode = static_cast<CellMode>(src.u8());
    d.op.subpages = src.u32();
    d.op.ber = src.f64();
    d.op.background = src.boolean();
    d.op.origin = static_cast<cache::OpOrigin>(src.u8());
    d.op.depends_on = src.u32();
    d.dep_finish = src.u64();
    d.dep_entry = static_cast<std::size_t>(src.u64());
    d.finish = src.u64();
    d.scheduled = src.boolean();
  }
  PPSSD_CHECK_MSG(src.ok() && deferred_head_ <= deferred_.size(),
                  "warm-start checkpoint truncated at device level");
}

}  // namespace ppssd::sim
