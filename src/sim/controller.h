// Event-driven flash controller: per-chip command lanes, a simulation
// clock, and dependency-aware command scheduling.
//
// The controller owns the device's timing resources. Each chip lane
// executes one array operation (read sense / program pulse) at a time;
// each channel serialises data transfers; ECC decoding happens
// controller-side after a read transfer and scales with the raw BER
// (ecc::EccLatencyModel). Erases run on a separate, suspendable per-chip
// horizon: a foreground (host) command suspends an in-progress erase and
// executes immediately, while background (GC) commands wait for the erase
// to finish — the paper's erase-suspend semantics.
//
// Commands are scheduled one at a time via schedule(op, ready): the op
// starts no earlier than `ready` (its arrival time joined with the
// completion of its dependency, resolved by the caller from
// PhysOp::depends_on), then queues FIFO behind the commands already
// claimed on its lane and channel. Because callers submit commands in
// arrival order, this eager per-command scheduling is exactly equivalent
// to a lazy event-driven dispatch with FIFO resource queues — while
// keeping the hot path allocation-free and bit-reproducible.
//
// Completion *delivery* is event-driven: every scheduled command pushes a
// retirement event into a stable EventQueue; advance_to(now) moves the
// controller clock forward and retires everything that finished, so
// callers (Ssd, Replayer) can observe in-flight command counts and
// harvest host-request completions out of submission order.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cache/scheme.h"
#include "common/config.h"
#include "ecc/latency_model.h"
#include "nand/timing.h"
#include "sim/event_queue.h"
#include "telemetry/telemetry.h"

namespace ppssd::sim {

class Controller {
 public:
  Controller(const SsdConfig& cfg, std::uint32_t chips,
             std::uint32_t channels);

  /// Price one command. The op may not start before `ready`; it then
  /// queues behind the commands already scheduled on its chip lane and
  /// channel. Returns the completion time (for reads: after the
  /// controller-side ECC decode).
  SimTime schedule(const cache::PhysOp& op, SimTime ready);

  /// Everything price() derives for one command: the resolved horizons it
  /// consumed (for the attribution ledger's wait intervals) and the
  /// per-leg times commit() replays into the instrumentation. Pricing is
  /// pure horizon arithmetic, so an OpOutcome computed against mirrored
  /// horizons (sim/shard_executor.h) is bit-identical to the sequential
  /// one.
  struct OpOutcome {
    SimTime ready = 0;      // resolved start floor handed to price()
    SimTime lane_was = 0;   // lane busy horizon before this op claimed it
    SimTime erase_was = 0;  // erase horizon before this op
    SimTime svc_start = 0;  // array-occupancy start (sense/pulse/erase)
    SimTime sense_end = 0;  // reads: end of the array sense
    SimTime xfer_start = 0; // reads/programs: channel leg start
    SimTime xfer_end = 0;   // reads/programs: channel leg end
    SimTime ecc_ns = 0;     // reads: controller-side decode cost
    SimTime end = 0;        // completion time
  };

  /// Pure pricing half of schedule(): advance the caller-supplied lane /
  /// channel horizons exactly as schedule() would advance the
  /// controller's own, and fill `out`. Reads only the immutable timing
  /// and ECC models, so concurrent calls are safe as long as no two
  /// touch the same horizon references — the shard executor's
  /// partitioning invariant.
  void price(const cache::PhysOp& op, SimTime ready, SimTime& lane_busy,
             SimTime& lane_erase, SimTime& chan_busy, OpOutcome& out) const;

  /// Bookkeeping half of schedule(): apply a priced outcome to the
  /// controller's own horizons and run every observer exactly as the
  /// sequential path would (usage, occupancy, telemetry counters, blame
  /// ledger, trace spans, flight recorder, retirement event). Commits
  /// must arrive in the same order schedule() calls would have — that
  /// replay order is what keeps instrumentation bit-identical.
  SimTime commit(const cache::PhysOp& op, const OpOutcome& out);

  [[nodiscard]] std::uint32_t chip_count() const {
    return static_cast<std::uint32_t>(lanes_.size());
  }
  [[nodiscard]] std::uint32_t channel_count() const {
    return static_cast<std::uint32_t>(channel_busy_.size());
  }

  /// Advance the controller clock, retiring every in-flight command that
  /// completes at or before `now` (kNoTime retires everything).
  /// Header-inline: called once per scheduled op and once per host
  /// request, and the common case — nothing to retire yet — is a single
  /// front-of-queue compare (DESIGN.md §10).
  void advance_to(SimTime now) {
    SimTime last = clock_;
    inflight_.drain_until(now, [&](const auto& ev) { last = ev.time; });
    // kNoTime means "retire everything"; the clock lands on the last
    // retirement instead of the sentinel.
    clock_ = std::max(clock_, now == kNoTime ? last : now);
  }

  [[nodiscard]] SimTime clock() const { return clock_; }
  /// Commands scheduled but not yet retired by advance_to().
  [[nodiscard]] std::size_t inflight_ops() const { return inflight_.size(); }
  /// Total commands scheduled since construction / reset(). This is the
  /// denominator-free "controller events" count the wall-clock perf layer
  /// divides by measured seconds (events/s); deterministic per replay.
  [[nodiscard]] std::uint64_t scheduled_ops() const { return scheduled_ops_; }

  [[nodiscard]] SimTime chip_free_at(std::uint32_t chip) const {
    return lanes_[chip].busy_until;
  }
  [[nodiscard]] SimTime channel_free_at(std::uint32_t ch) const {
    return channel_busy_[ch];
  }

  /// Decode latency the model charges for a read op (exposed for tests).
  [[nodiscard]] SimTime ecc_cost(const cache::PhysOp& op) const;

  /// Accumulated chip-occupancy by op kind (ns), foreground/background.
  /// In-place reprograms (IPS) fold into the program buckets: they occupy
  /// the lane exactly like a program pulse, just without the channel leg.
  struct Usage {
    SimTime read_fg = 0, read_bg = 0;
    SimTime program_fg = 0, program_bg = 0;
    SimTime erase_bg = 0;
    [[nodiscard]] SimTime total() const {
      return read_fg + read_bg + program_fg + program_bg + erase_bg;
    }
  };
  [[nodiscard]] const Usage& usage() const { return usage_; }

  /// Fast-path window merge for runs with no observers attached (see
  /// has_observers): one call folds a whole priced window into the
  /// controller — final horizons, usage / occupancy deltas, command
  /// count, and a single aggregated retirement event at the window's
  /// latest completion. Every result-visible quantity (integer sums,
  /// horizon state, clock after a full drain) lands on exactly the
  /// values per-op commits would produce; only the in-flight event
  /// granularity is coarser (one retirement per window instead of one
  /// per command).
  struct WindowAggregate {
    Usage usage;
    std::uint64_t ops = 0;
    SimTime retire_max = 0;
    const SimTime* lane_busy = nullptr;   // [chip_count] final horizons
    const SimTime* lane_erase = nullptr;  // [chip_count]
    const SimTime* chan_busy = nullptr;   // [channel_count]
    const SimTime* occupancy_delta = nullptr;  // [chip_count]
  };
  void apply_window(const WindowAggregate& agg);

  /// True when any order-sensitive observer is attached (blame ledger,
  /// trace log, flight recorder, or metric counters): windowed execution
  /// must then replay per-op commits sequentially instead of taking the
  /// aggregate fast path.
  [[nodiscard]] bool has_observers() const {
    return attrib_ != nullptr || trace_ != nullptr || flight_ != nullptr ||
           tl_chip_wait_ != nullptr;
  }

  [[nodiscard]] SimTime chip_erase_free_at(std::uint32_t chip) const {
    return lanes_[chip].erase_until;
  }

  /// Accumulated array-op occupancy per chip (ns) — load-balance probe.
  [[nodiscard]] const std::vector<SimTime>& chip_occupancy() const {
    return chip_occupancy_;
  }

  void reset();

  /// Register flash-op counters / wait histograms and adopt the bundle's
  /// trace log for per-op chip-lane spans. Null detaches.
  void attach_telemetry(telemetry::Telemetry* telemetry);

  /// Attach (or detach, with null) the crash flight recorder: every
  /// scheduled command records begin/finish events (ids match the
  /// attribution ledger's op sequence numbers), and a foreground command
  /// preempting an in-progress erase records a kEraseSuspend. Pure
  /// observer; one branch per scheduled op when detached. Survives
  /// reset() — the recorder's lifetime is managed by the snapshotter.
  void set_flight_recorder(telemetry::introspect::FlightRecorder* flight) {
    flight_ = flight;
  }

 private:
  /// Per-chip command lane: the array horizon (one read/program at a
  /// time) and the suspendable-erase horizon.
  struct ChipLane {
    SimTime busy_until = 0;
    SimTime erase_until = 0;
  };

  nand::TimingModel timing_;
  ecc::EccLatencyModel ecc_;
  std::vector<ChipLane> lanes_;
  std::vector<SimTime> channel_busy_;
  std::vector<SimTime> chip_occupancy_;
  Usage usage_;
  std::uint64_t scheduled_ops_ = 0;
  SimTime clock_ = 0;
  EventQueue<std::uint32_t> inflight_;  // retirement events, payload = chip

  // Telemetry handles (null until attached). Counter index is
  // [kind][mode] for read/program, erase is mode-independent.
  telemetry::TraceLog* trace_ = nullptr;
  // Blame ledger (null when detached — the attribution hot path is one
  // pointer test per scheduled op). attach_telemetry() binds the
  // resource topology and seeds current horizons as prefill claims.
  telemetry::attribution::AttributionLedger* attrib_ = nullptr;
  // Flight recorder (null when detached; see set_flight_recorder).
  telemetry::introspect::FlightRecorder* flight_ = nullptr;
  telemetry::Counter* tl_ops_[2][2] = {{nullptr, nullptr},
                                       {nullptr, nullptr}};
  telemetry::Counter* tl_erases_ = nullptr;
  telemetry::Counter* tl_reprograms_ = nullptr;
  telemetry::Counter* tl_ecc_decodes_ = nullptr;
  telemetry::Counter* tl_ecc_saturated_ = nullptr;
  telemetry::Histogram* tl_chip_wait_ = nullptr;
  telemetry::Histogram* tl_ecc_ns_ = nullptr;
};

}  // namespace ppssd::sim
