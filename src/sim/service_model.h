// Compatibility facade over sim::Controller: prices a whole op sequence
// in one synchronous call.
//
// The event-driven controller (sim/controller.h) is the real timing
// model; this wrapper resolves each op's intra-request dependency
// (PhysOp::depends_on) to a ready time and schedules the sequence in
// issue order, returning the aggregate foreground/background completion
// — the contract the original one-shot horizon model exposed. Existing
// unit tests and probes (ecc_cost, usage, chip occupancy) keep working
// unchanged; new code should talk to the Controller directly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cache/scheme.h"
#include "common/config.h"
#include "sim/controller.h"
#include "telemetry/telemetry.h"

namespace ppssd::sim {

class ServiceModel {
 public:
  ServiceModel(const SsdConfig& cfg, std::uint32_t chips,
               std::uint32_t channels)
      : ctrl_(cfg, chips, channels) {}

  struct Outcome {
    SimTime foreground_end = 0;  // completion of the host-visible ops
    SimTime background_end = 0;  // completion of everything
    std::uint32_t foreground_ops = 0;
    std::uint32_t background_ops = 0;
  };

  /// Price the op sequence starting no earlier than `now`, in issue order
  /// per resource, honouring intra-sequence depends_on edges. Returns
  /// completion times; the controller's lane/channel horizons advance.
  Outcome service(std::span<const cache::PhysOp> ops, SimTime now);

  [[nodiscard]] SimTime chip_busy_until(std::uint32_t chip) const {
    return ctrl_.chip_free_at(chip);
  }
  [[nodiscard]] SimTime channel_busy_until(std::uint32_t ch) const {
    return ctrl_.channel_free_at(ch);
  }

  /// Decode latency the model charges for a read op (exposed for tests).
  [[nodiscard]] SimTime ecc_cost(const cache::PhysOp& op) const {
    return ctrl_.ecc_cost(op);
  }

  using Usage = Controller::Usage;
  [[nodiscard]] const Usage& usage() const { return ctrl_.usage(); }

  /// Accumulated array-op occupancy per chip (ns) — load-balance probe.
  [[nodiscard]] const std::vector<SimTime>& chip_occupancy() const {
    return ctrl_.chip_occupancy();
  }

  void reset() { ctrl_.reset(); }

  void attach_telemetry(telemetry::Telemetry* telemetry) {
    ctrl_.attach_telemetry(telemetry);
  }

  [[nodiscard]] Controller& controller() { return ctrl_; }
  [[nodiscard]] const Controller& controller() const { return ctrl_; }

 private:
  Controller ctrl_;
};

}  // namespace ppssd::sim
