// Resource-timing model: prices a sequence of physical flash operations
// against per-chip and per-channel availability.
//
// A chip executes one array operation (read sense / program pulse /
// erase) at a time; a channel serialises data transfers; ECC decoding
// happens controller-side after the transfer and scales with the raw BER
// of the read (ecc::EccLatencyModel). Host latency is the completion of
// the request's foreground ops; background (GC) ops occupy the same
// resources and surface as queueing delay for later requests — exactly
// the mechanism that differentiates the schemes in Figure 5.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cache/scheme.h"
#include "common/config.h"
#include "ecc/latency_model.h"
#include "nand/timing.h"
#include "telemetry/telemetry.h"

namespace ppssd::sim {

class ServiceModel {
 public:
  ServiceModel(const SsdConfig& cfg, std::uint32_t chips,
               std::uint32_t channels);

  struct Outcome {
    SimTime foreground_end = 0;  // completion of the host-visible ops
    SimTime background_end = 0;  // completion of everything
    std::uint32_t foreground_ops = 0;
    std::uint32_t background_ops = 0;
  };

  /// Price the op sequence starting no earlier than `now`, in issue order
  /// per resource. Returns completion times; chip/channel horizons advance.
  Outcome service(std::span<const cache::PhysOp> ops, SimTime now);

  [[nodiscard]] SimTime chip_busy_until(std::uint32_t chip) const {
    return chip_busy_[chip];
  }
  [[nodiscard]] SimTime channel_busy_until(std::uint32_t ch) const {
    return channel_busy_[ch];
  }

  /// Decode latency the model charges for a read op (exposed for tests).
  [[nodiscard]] SimTime ecc_cost(const cache::PhysOp& op) const;

  /// Accumulated chip-occupancy by op kind (ns), foreground/background.
  struct Usage {
    SimTime read_fg = 0, read_bg = 0;
    SimTime program_fg = 0, program_bg = 0;
    SimTime erase_bg = 0;
    [[nodiscard]] SimTime total() const {
      return read_fg + read_bg + program_fg + program_bg + erase_bg;
    }
  };
  [[nodiscard]] const Usage& usage() const { return usage_; }

  /// Accumulated array-op occupancy per chip (ns) — load-balance probe.
  [[nodiscard]] const std::vector<SimTime>& chip_occupancy() const {
    return chip_occupancy_;
  }

  void reset();

  /// Register flash-op counters / wait histograms and adopt the bundle's
  /// trace log for per-op chip-lane spans. Null detaches.
  void attach_telemetry(telemetry::Telemetry* telemetry);

 private:
  nand::TimingModel timing_;
  ecc::EccLatencyModel ecc_;
  std::vector<SimTime> chip_busy_;
  std::vector<SimTime> channel_busy_;
  std::vector<SimTime> erase_busy_;  // suspendable-erase horizon per chip
  std::vector<SimTime> chip_occupancy_;
  Usage usage_;

  // Telemetry handles (null until attached). Counter index is
  // [kind][mode] for read/program, erase is mode-independent.
  telemetry::TraceLog* trace_ = nullptr;
  telemetry::Counter* tl_ops_[2][2] = {{nullptr, nullptr},
                                       {nullptr, nullptr}};
  telemetry::Counter* tl_erases_ = nullptr;
  telemetry::Counter* tl_ecc_decodes_ = nullptr;
  telemetry::Counter* tl_ecc_saturated_ = nullptr;
  telemetry::Histogram* tl_chip_wait_ = nullptr;
  telemetry::Histogram* tl_ecc_ns_ = nullptr;
};

}  // namespace ppssd::sim
