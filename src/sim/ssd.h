// The simulated SSD: cache scheme + flash array + event-driven controller,
// behind a byte-addressed host interface.
//
// Two submission paths share one controller:
//  * submit()  — synchronous: generate ops, schedule them, return the
//    completion record immediately (unit tests, warm-up helpers).
//  * enqueue() — pipelined: same scheduling, but the completion is also
//    pushed into a host completion queue keyed by finish time, so the
//    replayer can harvest completions in *completion order* against later
//    arrivals — true device queue depth and out-of-order host completions
//    (a short read on an idle chip overtakes a long GC-laden write).
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "cache/scheme.h"
#include "common/config.h"
#include "common/types.h"
#include "sim/event_queue.h"
#include "sim/service_model.h"

namespace ppssd::telemetry::introspect {
class Snapshotter;
}

namespace ppssd::sim {

class Ssd {
 public:
  /// Construct with a scheme resolved from the registry by name.
  Ssd(const SsdConfig& cfg, std::string_view scheme_name);

  /// Take ownership of a pre-built scheme (used for ablation variants).
  Ssd(const SsdConfig& cfg, std::unique_ptr<cache::Scheme> scheme);

  struct Completion {
    std::uint64_t id = 0;  // submission order, unique per request
    SimTime start = 0;     // host submission time
    SimTime finish = 0;    // host-visible completion
    SimTime drained = 0;   // background work completion
    [[nodiscard]] SimTime latency() const { return finish - start; }
  };

  /// One harvested host completion (see drain_completions).
  struct HostCompletion {
    std::uint64_t id = 0;
    OpType op = OpType::kRead;
    SimTime arrival = 0;
    SimTime finish = 0;
    SimTime drained = 0;
    [[nodiscard]] SimTime latency() const { return finish - arrival; }
  };

  /// Submit one host request synchronously. `offset` and `size` are in
  /// bytes; addresses beyond the logical capacity wrap (size is clamped at
  /// the top).
  Completion submit(OpType op, std::uint64_t offset, std::uint32_t size,
                    SimTime arrival);

  /// Pipelined submission: like submit(), but the request is also entered
  /// into the host completion queue for later harvesting.
  Completion enqueue(OpType op, std::uint64_t offset, std::uint32_t size,
                     SimTime arrival);

  /// Pop every pending completion with finish <= cutoff, in completion
  /// order (ties by submission order), invoking fn(const HostCompletion&).
  /// Also advances the controller clock.
  template <typename Fn>
  void drain_completions(SimTime cutoff, Fn&& fn) {
    pending_.drain_until(cutoff, [&](auto ev) { fn(ev.payload); });
    service_.controller().advance_to(cutoff);
  }

  /// Requests enqueued but not yet harvested.
  [[nodiscard]] std::size_t in_flight() const { return pending_.size(); }
  /// Finish time of the earliest pending completion (kNoTime if none).
  [[nodiscard]] SimTime next_completion_time() const {
    return pending_.empty() ? kNoTime : pending_.top().time;
  }

  [[nodiscard]] const cache::Scheme& scheme() const { return *scheme_; }
  [[nodiscard]] cache::Scheme& scheme() { return *scheme_; }

  /// Clear chip/channel lanes (used between warm-up and measurement).
  void reset_timing();
  [[nodiscard]] const ServiceModel& service_model() const { return service_; }
  [[nodiscard]] Controller& controller() { return service_.controller(); }
  [[nodiscard]] const Controller& controller() const {
    return service_.controller();
  }
  [[nodiscard]] const SsdConfig& config() const { return scheme_->config(); }
  [[nodiscard]] std::uint64_t logical_bytes() const;

  /// Background ops awaiting interleaved execution.
  [[nodiscard]] std::size_t deferred_background_ops() const {
    return deferred_.size() - deferred_head_;
  }

  /// Schedule every deferred background op now (end-of-replay flush).
  SimTime drain_background(SimTime now);

  /// Warm-start checkpointing (DESIGN.md §14): the scheme's full device
  /// state plus the host-interface bits that survive the warm-up boundary
  /// (request-id counter, deferred background-op queue). Call at a
  /// quiescent point — right after reset_timing(), with every completion
  /// harvested — so the timing layer is clean on both sides.
  void save(io::StateSink& sink) const;
  void restore(io::StateSource& src);

  /// Fan the bundle out to the scheme (placement/GC instruments) and the
  /// controller (flash-op spans). Null detaches.
  void attach_telemetry(telemetry::Telemetry* telemetry);

  /// Bind the introspection snapshotter to this device (stream header
  /// from the scheme's geometry, crash hook installed) and fan its
  /// flight recorder out to the controller and the scheme's GC driver.
  /// Null detaches the recorder hooks; the snapshotter must outlive the
  /// device or be detached first.
  void attach_introspection(telemetry::introspect::Snapshotter* snap);
  /// The attached bundle, or null. The replayer uses this for host-level
  /// spans and sampler ticks.
  [[nodiscard]] telemetry::Telemetry* telemetry() const { return telemetry_; }

 private:
  static constexpr std::size_t kNoEntry = static_cast<std::size_t>(-1);

  /// A background op whose scheduling is deferred for GC interleaving.
  /// Its dependency is carried either as an already-known finish time
  /// (dep_finish) or as the index of an earlier deferred entry that will
  /// be scheduled first (dep_entry).
  struct Deferred {
    cache::PhysOp op;
    SimTime dep_finish = 0;
    std::size_t dep_entry = kNoEntry;
    SimTime finish = 0;  // set once scheduled
    bool scheduled = false;
  };

  Completion do_submit(OpType op, std::uint64_t offset, std::uint32_t size,
                       SimTime arrival);
  SimTime schedule_deferred(Deferred& d, SimTime now);

  std::unique_ptr<cache::Scheme> scheme_;
  ServiceModel service_;
  telemetry::Telemetry* telemetry_ = nullptr;
  // Blame ledger from the attached bundle (null when detached). do_submit
  // brackets every host request so the ledger can fold the request's
  // foreground ops into one conserved component vector.
  telemetry::attribution::AttributionLedger* attrib_ = nullptr;
  std::vector<cache::PhysOp> ops_;        // reused per request
  std::vector<SimTime> op_finish_;        // reused per request
  std::vector<std::size_t> op_deferred_;  // reused per request
  std::vector<Deferred> deferred_;        // background ops not yet scheduled
  std::size_t deferred_head_ = 0;
  EventQueue<HostCompletion> pending_;
  std::uint64_t next_request_id_ = 0;
};

}  // namespace ppssd::sim
