// The simulated SSD: cache scheme + flash array + event-driven controller,
// behind a byte-addressed host interface.
//
// Two submission paths share one controller:
//  * submit()  — synchronous: generate ops, schedule them, return the
//    completion record immediately (unit tests, warm-up helpers).
//  * enqueue() — pipelined: same scheduling, but the completion is also
//    pushed into a host completion queue keyed by finish time, so the
//    replayer can harvest completions in *completion order* against later
//    arrivals — true device queue depth and out-of-order host completions
//    (a short read on an idle chip overtakes a long GC-laden write).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "cache/scheme.h"
#include "common/config.h"
#include "common/types.h"
#include "sim/event_queue.h"
#include "sim/service_model.h"
#include "sim/shard_executor.h"
#include "telemetry/introspect/format.h"

namespace ppssd::telemetry::introspect {
class Snapshotter;
}

namespace ppssd::sim {

class Ssd {
 public:
  /// Construct with a scheme resolved from the registry by name.
  Ssd(const SsdConfig& cfg, std::string_view scheme_name);

  /// Take ownership of a pre-built scheme (used for ablation variants).
  Ssd(const SsdConfig& cfg, std::unique_ptr<cache::Scheme> scheme);

  struct Completion {
    std::uint64_t id = 0;  // submission order, unique per request
    SimTime start = 0;     // host submission time
    SimTime finish = 0;    // host-visible completion
    SimTime drained = 0;   // background work completion
    [[nodiscard]] SimTime latency() const { return finish - start; }
  };

  /// One harvested host completion (see drain_completions).
  struct HostCompletion {
    std::uint64_t id = 0;
    OpType op = OpType::kRead;
    SimTime arrival = 0;
    SimTime finish = 0;
    SimTime drained = 0;
    [[nodiscard]] SimTime latency() const { return finish - arrival; }
  };

  /// Submit one host request synchronously. `offset` and `size` are in
  /// bytes; addresses beyond the logical capacity wrap (size is clamped at
  /// the top).
  Completion submit(OpType op, std::uint64_t offset, std::uint32_t size,
                    SimTime arrival);

  /// Pipelined submission: like submit(), but the request is also entered
  /// into the host completion queue for later harvesting.
  Completion enqueue(OpType op, std::uint64_t offset, std::uint32_t size,
                     SimTime arrival);

  // ---- windowed submission (sharded pricing; DESIGN.md §15) ------------
  //
  // With a shard executor attached, the replayer admits requests in two
  // phases: enqueue_window() advances the scheme's *logical* state and
  // stages the request's physical ops (phase A), and flush_window()
  // prices the whole window across shards, then retires it request by
  // request in submission order (phase B). Every result-visible quantity
  // is bit-identical to the sequential submit path.

  /// One admitted-but-not-yet-priced host request of the open window.
  struct WinReq {
    std::uint64_t id = 0;
    OpType op = OpType::kRead;
    SimTime arrival = 0;
    std::uint32_t size = 0;  // host bytes (telemetry span payload)
    std::uint32_t first_item = 0;
    std::uint32_t num_items = 0;
    // Staged scheme flight events (GC decisions) recorded during this
    // request's phase A, merged into the real recorder at flush time.
    std::uint64_t flight_begin = 0;
    std::uint64_t flight_end = 0;
  };

  /// Attach (or detach, with null) the shard executor that prices
  /// admission windows. Must be called with no window open; the executor
  /// must outlive the device or be detached first.
  void set_shard_executor(ShardExecutor* exec);
  [[nodiscard]] bool windowed() const { return executor_ != nullptr; }

  /// Phase A: advance the scheme and stage the request's ops into the
  /// open window. Nothing is priced or retired until flush_window().
  void enqueue_window(OpType op, std::uint64_t offset, std::uint32_t size,
                      SimTime arrival);

  /// Requests admitted to the open window so far.
  [[nodiscard]] std::size_t window_requests() const {
    return win_reqs_.size();
  }

  /// True when the window should flush early: the flight staging ring is
  /// half full, and waiting longer risks overwriting unmerged events.
  [[nodiscard]] bool window_wants_flush() const {
    return staging_ != nullptr &&
           (staging_->recorded() - win_flight_base_) * 2 >=
               staging_->capacity();
  }

  /// Phase B: price the open window across shards, then per request in
  /// submission order: `before(req)` (the replayer drains completions up
  /// to the arrival there), staged flight merge, blame-ledger bracket,
  /// op commits, completion-queue push, `after(req, done)`. The
  /// callbacks must not submit new requests. No-op on an empty window.
  void flush_window(
      const std::function<void(const WinReq&)>& before,
      const std::function<void(const WinReq&, const Completion&)>& after);

  /// Pop every pending completion with finish <= cutoff, in completion
  /// order (ties by submission order), invoking fn(const HostCompletion&).
  /// Also advances the controller clock.
  template <typename Fn>
  void drain_completions(SimTime cutoff, Fn&& fn) {
    pending_.drain_until(cutoff, [&](auto ev) { fn(ev.payload); });
    service_.controller().advance_to(cutoff);
  }

  /// Requests enqueued but not yet harvested.
  [[nodiscard]] std::size_t in_flight() const { return pending_.size(); }
  /// Finish time of the earliest pending completion (kNoTime if none).
  [[nodiscard]] SimTime next_completion_time() const {
    return pending_.empty() ? kNoTime : pending_.top().time;
  }

  [[nodiscard]] const cache::Scheme& scheme() const { return *scheme_; }
  [[nodiscard]] cache::Scheme& scheme() { return *scheme_; }

  /// Clear chip/channel lanes (used between warm-up and measurement).
  void reset_timing();
  [[nodiscard]] const ServiceModel& service_model() const { return service_; }
  [[nodiscard]] Controller& controller() { return service_.controller(); }
  [[nodiscard]] const Controller& controller() const {
    return service_.controller();
  }
  [[nodiscard]] const SsdConfig& config() const { return scheme_->config(); }
  [[nodiscard]] std::uint64_t logical_bytes() const;

  /// Background ops awaiting interleaved execution.
  [[nodiscard]] std::size_t deferred_background_ops() const {
    return deferred_.size() - deferred_head_;
  }

  /// Schedule every deferred background op now (end-of-replay flush).
  SimTime drain_background(SimTime now);

  /// Warm-start checkpointing (DESIGN.md §14): the scheme's full device
  /// state plus the host-interface bits that survive the warm-up boundary
  /// (request-id counter, deferred background-op queue). Call at a
  /// quiescent point — right after reset_timing(), with every completion
  /// harvested — so the timing layer is clean on both sides.
  void save(io::StateSink& sink) const;
  void restore(io::StateSource& src);

  /// Fan the bundle out to the scheme (placement/GC instruments) and the
  /// controller (flash-op spans). Null detaches.
  void attach_telemetry(telemetry::Telemetry* telemetry);

  /// Bind the introspection snapshotter to this device (stream header
  /// from the scheme's geometry, crash hook installed) and fan its
  /// flight recorder out to the controller and the scheme's GC driver.
  /// Null detaches the recorder hooks; the snapshotter must outlive the
  /// device or be detached first.
  void attach_introspection(telemetry::introspect::Snapshotter* snap);
  /// The attached bundle, or null. The replayer uses this for host-level
  /// spans and sampler ticks.
  [[nodiscard]] telemetry::Telemetry* telemetry() const { return telemetry_; }

 private:
  static constexpr std::size_t kNoEntry = static_cast<std::size_t>(-1);

  /// A background op whose scheduling is deferred for GC interleaving.
  /// Its dependency is carried either as an already-known finish time
  /// (dep_finish) or as the index of an earlier deferred entry that will
  /// be scheduled first (dep_entry). The two win_* fields are transient
  /// windowed-mode state, only meaningful while a window is open: a
  /// dependency on a foreground op staged in the open window (dep_win,
  /// resolved to dep_finish at flush), and this entry's own slot in the
  /// open window once claimed by the drain (win_item).
  struct Deferred {
    cache::PhysOp op;
    SimTime dep_finish = 0;
    std::size_t dep_entry = kNoEntry;
    SimTime finish = 0;  // set once scheduled
    bool scheduled = false;
    std::uint32_t dep_win = ShardExecutor::kNoDep;
    std::uint32_t win_item = ShardExecutor::kNoDep;
  };

  Completion do_submit(OpType op, std::uint64_t offset, std::uint32_t size,
                       SimTime arrival);
  SimTime schedule_deferred(Deferred& d, SimTime now);

  std::unique_ptr<cache::Scheme> scheme_;
  ServiceModel service_;
  telemetry::Telemetry* telemetry_ = nullptr;
  // Blame ledger from the attached bundle (null when detached). do_submit
  // brackets every host request so the ledger can fold the request's
  // foreground ops into one conserved component vector.
  telemetry::attribution::AttributionLedger* attrib_ = nullptr;
  std::vector<cache::PhysOp> ops_;        // reused per request
  std::vector<SimTime> op_finish_;        // reused per request
  std::vector<std::size_t> op_deferred_;  // reused per request
  std::vector<Deferred> deferred_;        // background ops not yet scheduled
  std::size_t deferred_head_ = 0;
  EventQueue<HostCompletion> pending_;
  std::uint64_t next_request_id_ = 0;

  // ---- windowed-mode state (null/empty on the sequential path) ---------
  /// Flight staging ring capacity: comfortably above the GC decisions a
  /// full admission window produces; window_wants_flush() forces an
  /// early flush at half occupancy before anything could be overwritten.
  static constexpr std::uint32_t kFlightStagingCapacity = 1u << 16;

  ShardExecutor* executor_ = nullptr;
  std::vector<ShardExecutor::WinItem> win_items_;
  std::vector<std::size_t> win_def_;  // per item: deferred_ slot (or kNoEntry)
  std::vector<Controller::OpOutcome> win_out_;
  std::vector<WinReq> win_reqs_;
  std::vector<std::uint32_t> op_item_;  // reused per request
  std::size_t win_def_begin_ = 0;  // first deferred_ slot of the open window
  // The real scheme-side flight recorder (attach_introspection) and the
  // staging ring phase A redirects it to while windowed.
  telemetry::introspect::FlightRecorder* scheme_flight_ = nullptr;
  std::unique_ptr<telemetry::introspect::FlightRecorder> staging_;
  std::uint64_t win_flight_base_ = 0;  // staged count at window start
};

}  // namespace ppssd::sim
