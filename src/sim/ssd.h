// The simulated SSD: cache scheme + flash array + timing, behind a
// byte-addressed host interface.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/scheme.h"
#include "common/config.h"
#include "common/types.h"
#include "sim/service_model.h"

namespace ppssd::sim {

class Ssd {
 public:
  Ssd(const SsdConfig& cfg, cache::SchemeKind kind);

  /// Take ownership of a pre-built scheme (used for ablation variants).
  Ssd(const SsdConfig& cfg, std::unique_ptr<cache::Scheme> scheme);

  struct Completion {
    SimTime start = 0;     // host submission time
    SimTime finish = 0;    // host-visible completion
    SimTime drained = 0;   // background work completion
    [[nodiscard]] SimTime latency() const { return finish - start; }
  };

  /// Submit one host request. `offset` and `size` are in bytes; addresses
  /// beyond the logical capacity wrap (size is clamped at the top).
  Completion submit(OpType op, std::uint64_t offset, std::uint32_t size,
                    SimTime arrival);

  [[nodiscard]] const cache::Scheme& scheme() const { return *scheme_; }
  [[nodiscard]] cache::Scheme& scheme() { return *scheme_; }

  /// Clear chip/channel queues (used between warm-up and measurement).
  void reset_timing() { service_.reset(); }
  [[nodiscard]] const ServiceModel& service_model() const { return service_; }
  [[nodiscard]] const SsdConfig& config() const { return scheme_->config(); }
  [[nodiscard]] std::uint64_t logical_bytes() const;

  /// Background ops awaiting interleaved execution.
  [[nodiscard]] std::size_t deferred_background_ops() const {
    return deferred_.size() - deferred_head_;
  }

  /// Price every deferred background op now (end-of-replay flush).
  SimTime drain_background(SimTime now);

  /// Fan the bundle out to the scheme (placement/GC instruments) and the
  /// service model (flash-op spans). Null detaches.
  void attach_telemetry(telemetry::Telemetry* telemetry);
  /// The attached bundle, or null. The replayer uses this for host-level
  /// spans and sampler ticks.
  [[nodiscard]] telemetry::Telemetry* telemetry() const { return telemetry_; }

 private:
  std::unique_ptr<cache::Scheme> scheme_;
  ServiceModel service_;
  telemetry::Telemetry* telemetry_ = nullptr;
  std::vector<cache::PhysOp> ops_;       // reused per request
  std::vector<cache::PhysOp> deferred_;  // background ops not yet priced
  std::size_t deferred_head_ = 0;
};

}  // namespace ppssd::sim
