#include "sim/event_queue.h"

// EventQueue is a header-only template; this TU anchors it in the library.
