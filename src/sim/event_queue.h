// Time-ordered min-heap of (time, payload) events with stable ordering:
// events that carry the same timestamp pop in push (FIFO) order. Stability
// is what makes replays bit-reproducible — the controller completion queue
// and multi-stream trace merges must not depend on heap internals to break
// timestamp ties.
//
// The replayer uses it to deliver request completions in simulation-time
// order against arrivals (out-of-order host completions, device queue-depth
// statistics); the controller uses it to retire in-flight flash commands.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace ppssd::sim {

template <typename T>
class EventQueue {
 public:
  struct Event {
    SimTime time;
    std::uint64_t seq;  // push order; breaks timestamp ties FIFO
    T payload;
  };

  void push(SimTime time, T payload) {
    heap_.push_back(Event{time, next_seq_++, std::move(payload)});
    sift_up(heap_.size() - 1);
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  [[nodiscard]] const Event& top() const {
    PPSSD_CHECK(!heap_.empty());
    return heap_.front();
  }

  Event pop() {
    PPSSD_CHECK(!heap_.empty());
    Event out = std::move(heap_.front());
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    return out;
  }

  /// Pop every event with time <= cutoff, invoking fn(event).
  template <typename Fn>
  void drain_until(SimTime cutoff, Fn&& fn) {
    while (!heap_.empty() && heap_.front().time <= cutoff) {
      fn(pop());
    }
  }

 private:
  [[nodiscard]] static bool before(const Event& a, const Event& b) {
    return a.time < b.time || (a.time == b.time && a.seq < b.seq);
  }

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!before(heap_[i], heap_[parent])) break;
      std::swap(heap_[parent], heap_[i]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t smallest = i;
      const std::size_t l = 2 * i + 1;
      const std::size_t r = 2 * i + 2;
      if (l < n && before(heap_[l], heap_[smallest])) smallest = l;
      if (r < n && before(heap_[r], heap_[smallest])) smallest = r;
      if (smallest == i) break;
      std::swap(heap_[i], heap_[smallest]);
      i = smallest;
    }
  }

  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace ppssd::sim
