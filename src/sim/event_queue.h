// Time-ordered min-heap of (time, payload) events.
//
// The replayer uses it to track in-flight request completions against
// arrivals (device queue-depth statistics); it is also the building block
// for multi-stream trace merging in the examples.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace ppssd::sim {

template <typename T>
class EventQueue {
 public:
  struct Event {
    SimTime time;
    T payload;
  };

  void push(SimTime time, T payload) {
    heap_.push_back(Event{time, std::move(payload)});
    sift_up(heap_.size() - 1);
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  [[nodiscard]] const Event& top() const {
    PPSSD_CHECK(!heap_.empty());
    return heap_.front();
  }

  Event pop() {
    PPSSD_CHECK(!heap_.empty());
    Event out = std::move(heap_.front());
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    return out;
  }

  /// Pop every event with time <= cutoff, invoking fn(event).
  template <typename Fn>
  void drain_until(SimTime cutoff, Fn&& fn) {
    while (!heap_.empty() && heap_.front().time <= cutoff) {
      fn(pop());
    }
  }

 private:
  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (heap_[parent].time <= heap_[i].time) break;
      std::swap(heap_[parent], heap_[i]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t smallest = i;
      const std::size_t l = 2 * i + 1;
      const std::size_t r = 2 * i + 2;
      if (l < n && heap_[l].time < heap_[smallest].time) smallest = l;
      if (r < n && heap_[r].time < heap_[smallest].time) smallest = r;
      if (smallest == i) break;
      std::swap(heap_[i], heap_[smallest]);
      i = smallest;
    }
  }

  std::vector<Event> heap_;
};

}  // namespace ppssd::sim
