// Warm-start checkpoint container format (DESIGN.md §14).
//
// A checkpoint file is one PPSSDWRM container:
//
//   magic(8) container_version(u32)
//   key(str)                      — the full experiment cache key
//   scheme(str)                   — scheme name, for inspection tools
//   geometry(8 × u32)             — total_blocks, planes, subpages/page,
//                                   SLC blocks/plane, SLC pages/block,
//                                   MLC pages/block, SLC GC threshold,
//                                   MLC GC threshold
//   payload_size(u64) payload_checksum(u64)
//   payload                       — Ssd::save() byte stream
//
// The checksum (FNV-1a over the payload) is validated *before* any layer
// restore runs, so the layer restores may assume integrity and hard-check
// shape; everything the container check rejects is treated as a cache
// miss, never an abort. This header is shared by the writer
// (core/warmstart) and the read-only snapshot adapter
// (telemetry/introspect/warmstart_reader), which parses the leading
// FlashArray section of the payload — see FlashArray::save() for that
// layout.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

#include "common/state_io.h"

namespace ppssd::io::warmstart {

inline constexpr char kMagic[9] = "PPSSDWRM";
inline constexpr std::uint32_t kVersion = 1;

struct Header {
  std::string key;
  std::string scheme;
  std::uint32_t total_blocks = 0;
  std::uint32_t planes = 0;
  std::uint32_t subpages_per_page = 0;
  std::uint32_t slc_blocks_per_plane = 0;
  std::uint32_t slc_pages_per_block = 0;
  std::uint32_t mlc_pages_per_block = 0;
  std::uint32_t slc_gc_threshold = 0;
  std::uint32_t mlc_gc_threshold = 0;
  std::uint64_t payload_size = 0;
  std::uint64_t payload_checksum = 0;
};

/// FNV-1a, word-at-a-time variant: one xor+multiply per 8-byte word
/// (byte-wise tail). ~8x the byte-wise throughput, which matters — the
/// checksum runs over the whole multi-MB payload on every warm restore.
/// Single-word (hence single-bit) corruptions are still detected
/// deterministically: each step h' = (h ^ w) * prime is a bijection in
/// both operands, so two equal-length inputs differing in any word hash
/// differently.
inline std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, data + i, 8);
    h = (h ^ w) * 1099511628211ull;
  }
  for (; i < n; ++i) {
    h = (h ^ data[i]) * 1099511628211ull;
  }
  return h;
}

inline void write_header(StateSink& sink, const Header& h) {
  for (std::size_t i = 0; i < 8; ++i) {
    sink.u8(static_cast<std::uint8_t>(kMagic[i]));
  }
  sink.u32(kVersion);
  sink.str(h.key);
  sink.str(h.scheme);
  sink.u32(h.total_blocks);
  sink.u32(h.planes);
  sink.u32(h.subpages_per_page);
  sink.u32(h.slc_blocks_per_plane);
  sink.u32(h.slc_pages_per_block);
  sink.u32(h.mlc_pages_per_block);
  sink.u32(h.slc_gc_threshold);
  sink.u32(h.mlc_gc_threshold);
  sink.u64(h.payload_size);
  sink.u64(h.payload_checksum);
}

/// Read the container header; false on bad magic, wrong container
/// version, or truncation (`src` may be mid-stream afterwards — callers
/// treat false as a cache miss and stop).
inline bool read_header(StateSource& src, Header* out) {
  for (std::size_t i = 0; i < 8; ++i) {
    if (src.u8() != static_cast<std::uint8_t>(kMagic[i])) return false;
  }
  if (src.u32() != kVersion) return false;
  out->key = src.str();
  out->scheme = src.str();
  out->total_blocks = src.u32();
  out->planes = src.u32();
  out->subpages_per_page = src.u32();
  out->slc_blocks_per_plane = src.u32();
  out->slc_pages_per_block = src.u32();
  out->mlc_pages_per_block = src.u32();
  out->slc_gc_threshold = src.u32();
  out->mlc_gc_threshold = src.u32();
  out->payload_size = src.u64();
  out->payload_checksum = src.u64();
  return src.ok();
}

}  // namespace ppssd::io::warmstart
