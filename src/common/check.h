// Lightweight invariant checking, split in two tiers.
//
// PPSSD_CHECK is active in every build type: the simulator's correctness
// invariants (mapping consistency, no lost data, program-order rules) are
// part of its contract, and off the hot paths their cost is negligible
// next to event handling.
//
// PPSSD_DCHECK guards *hot-path* assertions — per-slot state checks inside
// the fused program/invalidate paths, per-call bounds checks in the
// mapping table and victim index. Those fire millions of times per host
// request batch, so they compile out of optimized (NDEBUG) builds unless
// PPSSD_ENABLE_DCHECKS is defined (the PPSSD_DCHECK CMake option; Debug
// builds enable them automatically). CI runs the full test suite with
// them on, and Scheme::check_consistency re-verifies the same state
// invariants exhaustively in every build type, so a Release binary still
// has end-to-end coverage — it just stops paying per-operation.
#pragma once

namespace ppssd::detail {

/// Cold path behind every failing PPSSD_CHECK: prints the failure,
/// invokes the registered failure hook at most once, then aborts.
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const char* msg);

/// Last-gasp forensic hook, invoked (at most once per process) from
/// check_failed() after the failure is printed and before abort(). The
/// introspection layer registers one that dumps the flight-recorder ring
/// and flushes the snapshot stream, so an invariant violation ships with
/// its recent-event context. The hook is cleared before it runs: a
/// PPSSD_CHECK failing *inside* the hook falls straight through to
/// abort() instead of recursing.
using CheckFailureHook = void (*)(void* ctx);
void set_check_failure_hook(CheckFailureHook hook, void* ctx);

}  // namespace ppssd::detail

#define PPSSD_CHECK(expr)                                               \
  do {                                                                  \
    if (!(expr)) [[unlikely]] {                                         \
      ::ppssd::detail::check_failed(#expr, __FILE__, __LINE__, nullptr); \
    }                                                                   \
  } while (false)

#define PPSSD_CHECK_MSG(expr, msg)                                   \
  do {                                                               \
    if (!(expr)) [[unlikely]] {                                      \
      ::ppssd::detail::check_failed(#expr, __FILE__, __LINE__, msg); \
    }                                                                \
  } while (false)

// Debug checks default on whenever NDEBUG is absent (Debug builds), and
// can be forced on in optimized builds with -DPPSSD_ENABLE_DCHECKS (the
// PPSSD_DCHECK CMake option, used by the CI debug job).
#if !defined(PPSSD_ENABLE_DCHECKS) && !defined(NDEBUG)
#define PPSSD_ENABLE_DCHECKS 1
#endif

#if defined(PPSSD_ENABLE_DCHECKS)
#define PPSSD_DCHECK(expr) PPSSD_CHECK(expr)
#define PPSSD_DCHECK_MSG(expr, msg) PPSSD_CHECK_MSG(expr, msg)
#else
// Compiled out, but still type-checked (and never evaluated at runtime),
// so a DCHECK-only build break cannot hide in Release.
#define PPSSD_DCHECK(expr)         \
  do {                             \
    if (false && (expr)) {         \
    }                              \
  } while (false)
#define PPSSD_DCHECK_MSG(expr, msg) \
  do {                              \
    if (false && (expr)) {          \
      (void)(msg);                  \
    }                               \
  } while (false)
#endif
