// Lightweight invariant checking.
//
// PPSSD_CHECK is active in all build types: the simulator's correctness
// invariants (mapping consistency, no lost data, program-order rules) are
// part of its contract, and the cost is negligible next to event handling.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ppssd::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "ppssd check failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  std::abort();
}

}  // namespace ppssd::detail

#define PPSSD_CHECK(expr)                                               \
  do {                                                                  \
    if (!(expr)) [[unlikely]] {                                         \
      ::ppssd::detail::check_failed(#expr, __FILE__, __LINE__, nullptr); \
    }                                                                   \
  } while (false)

#define PPSSD_CHECK_MSG(expr, msg)                                   \
  do {                                                               \
    if (!(expr)) [[unlikely]] {                                      \
      ::ppssd::detail::check_failed(#expr, __FILE__, __LINE__, msg); \
    }                                                                \
  } while (false)
