#include "common/config.h"

#include <algorithm>
#include <sstream>

namespace ppssd {

SsdConfig SsdConfig::paper() { return SsdConfig{}; }

SsdConfig SsdConfig::scaled(std::uint32_t total_blocks) {
  SsdConfig cfg;
  cfg.geometry.total_blocks = total_blocks;
  // Preserve the paper's 512 blocks per plane so the per-plane cache
  // structure (26 SLC-mode blocks per plane at 5%) matches paper scale.
  // Shed intra-chip parallelism (dies, planes) before chips/channels: the
  // paper's differentiation depends on its 32 independent chips, so a
  // scaled device keeps as many chips as the block budget allows.
  const std::uint32_t target_planes = std::max(1u, total_blocks / 512);
  while (cfg.geometry.planes() > target_planes) {
    if (cfg.geometry.dies_per_chip > 1) {
      cfg.geometry.dies_per_chip /= 2;
    } else if (cfg.geometry.planes_per_die > 1) {
      cfg.geometry.planes_per_die /= 2;
    } else if (cfg.geometry.chips_per_channel > 1) {
      cfg.geometry.chips_per_channel /= 2;
    } else if (cfg.geometry.channels > 1) {
      cfg.geometry.channels /= 2;
    } else {
      break;
    }
  }
  return cfg;
}

std::uint32_t SsdConfig::slc_block_count() const {
  return static_cast<std::uint32_t>(geometry.total_blocks * cache.slc_ratio);
}

std::string SsdConfig::validate() const {
  std::ostringstream err;
  const auto& g = geometry;
  if (g.channels == 0 || g.chips_per_channel == 0 || g.dies_per_chip == 0 ||
      g.planes_per_die == 0) {
    err << "geometry dimensions must be nonzero; ";
  }
  if (g.total_blocks == 0 || g.planes() == 0 ||
      g.total_blocks % g.planes() != 0) {
    err << "total_blocks (" << g.total_blocks
        << ") must be a positive multiple of plane count (" << g.planes()
        << "); ";
  }
  if (g.page_bytes == 0 || g.subpage_bytes == 0 ||
      g.page_bytes % g.subpage_bytes != 0) {
    err << "page_bytes must be a positive multiple of subpage_bytes; ";
  }
  if (g.pages_per_slc_block == 0 || g.pages_per_mlc_block == 0) {
    err << "pages per block must be nonzero; ";
  }
  if (cache.slc_ratio <= 0.0 || cache.slc_ratio >= 1.0) {
    err << "slc_ratio must be in (0,1); ";
  }
  if (cache.gc_threshold <= 0.0 || cache.gc_threshold >= 1.0) {
    err << "gc_threshold must be in (0,1); ";
  }
  if (cache.max_partial_programs == 0) {
    err << "max_partial_programs must be >= 1; ";
  }
  if (slc_block_count() < 8) {
    err << "slc region too small (<8 blocks): enlarge total_blocks or "
           "slc_ratio; ";
  }
  if (cache.monitor_ratio + cache.hot_ratio >= 1.0) {
    err << "monitor_ratio + hot_ratio must leave room for Work blocks; ";
  }
  if (ecc.min_decode > ecc.max_decode) {
    err << "ECC min_decode must not exceed max_decode; ";
  }
  if (ecc.t_per_codeword == 0) {
    err << "ECC t_per_codeword must be >= 1; ";
  }
  if (ber.mlc_anchor_ber <= 0.0 || ber.mlc_anchor_ber >= 1.0) {
    err << "mlc_anchor_ber must be in (0,1); ";
  }
  if (ber.anchor_pe == 0) {
    err << "anchor_pe must be nonzero; ";
  }
  return err.str();
}

}  // namespace ppssd
