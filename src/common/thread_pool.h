// Minimal fixed-size thread pool for running independent experiments
// (scheme × trace × P/E cells) concurrently in the bench harness.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ppssd {

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = hardware_concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Tasks must not throw; exceptions terminate.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Convenience: run fn(i) for i in [0, n) across the pool and wait.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::deque<std::function<void()>> tasks_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ppssd
