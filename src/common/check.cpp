#include "common/check.h"

#include <cstdio>
#include <cstdlib>

namespace ppssd::detail {

namespace {
CheckFailureHook g_hook = nullptr;
void* g_hook_ctx = nullptr;
}  // namespace

void set_check_failure_hook(CheckFailureHook hook, void* ctx) {
  g_hook = hook;
  g_hook_ctx = ctx;
}

[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const char* msg) {
  std::fprintf(stderr, "ppssd check failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  // Clear the hook before invoking it: if the hook itself trips a
  // PPSSD_CHECK we land back here with g_hook == nullptr and abort
  // directly instead of recursing. Also gives exactly-once semantics.
  if (g_hook != nullptr) {
    CheckFailureHook hook = g_hook;
    void* ctx = g_hook_ctx;
    g_hook = nullptr;
    g_hook_ctx = nullptr;
    hook(ctx);
  }
  std::abort();
}

}  // namespace ppssd::detail
