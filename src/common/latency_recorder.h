// Per-operation-class latency accumulation for the replayer.
#pragma once

#include <cstdint>

#include "common/stats.h"
#include "common/types.h"
#include "common/units.h"

namespace ppssd {

/// Records read/write response times and exposes the aggregates the paper's
/// Figure 5 / 13 report (average and tail latency per class and overall).
///
/// record() takes the response time in *nanoseconds* (SimTime); all
/// accessors report *milliseconds*. Internally each class keeps one
/// LogHistogram over [1 us, 10 s] in ms — the same instrument the
/// telemetry registry uses — whose embedded RunningStat supplies the exact
/// means, so averages are not subject to bucketing error.
class LatencyRecorder {
 public:
  LatencyRecorder();

  /// Record one completed request; `latency_ns` is in nanoseconds.
  void record(OpType op, SimTime latency_ns);

  [[nodiscard]] double avg_read_ms() const { return read_hist_.mean(); }
  [[nodiscard]] double avg_write_ms() const { return write_hist_.mean(); }
  [[nodiscard]] double avg_overall_ms() const;
  [[nodiscard]] std::uint64_t read_count() const {
    return read_hist_.count();
  }
  [[nodiscard]] std::uint64_t write_count() const {
    return write_hist_.count();
  }

  /// Interpolated quantile of one class's distribution, in ms.
  [[nodiscard]] double read_quantile_ms(double q) const {
    return read_hist_.quantile(q);
  }
  [[nodiscard]] double write_quantile_ms(double q) const {
    return write_hist_.quantile(q);
  }
  [[nodiscard]] double read_p50_ms() const { return read_quantile_ms(0.50); }
  [[nodiscard]] double write_p50_ms() const {
    return write_quantile_ms(0.50);
  }
  [[nodiscard]] double read_p95_ms() const { return read_quantile_ms(0.95); }
  [[nodiscard]] double write_p95_ms() const {
    return write_quantile_ms(0.95);
  }
  [[nodiscard]] double read_p99_ms() const { return read_quantile_ms(0.99); }
  [[nodiscard]] double write_p99_ms() const {
    return write_quantile_ms(0.99);
  }
  [[nodiscard]] double read_p999_ms() const {
    return read_quantile_ms(0.999);
  }
  [[nodiscard]] double write_p999_ms() const {
    return write_quantile_ms(0.999);
  }

  [[nodiscard]] const LogHistogram& read_histogram() const {
    return read_hist_;
  }
  [[nodiscard]] const LogHistogram& write_histogram() const {
    return write_hist_;
  }

  void merge(const LatencyRecorder& other);

 private:
  LogHistogram read_hist_;   // in ms
  LogHistogram write_hist_;  // in ms
};

}  // namespace ppssd
