// Per-operation-class latency accumulation for the replayer.
#pragma once

#include <cstdint>

#include "common/stats.h"
#include "common/types.h"
#include "common/units.h"

namespace ppssd {

/// Records read/write response times and exposes the aggregates the paper's
/// Figure 5 / 13 report (average latency per class and overall).
class LatencyRecorder {
 public:
  LatencyRecorder();

  void record(OpType op, SimTime latency_ns);

  [[nodiscard]] double avg_read_ms() const { return read_.mean(); }
  [[nodiscard]] double avg_write_ms() const { return write_.mean(); }
  [[nodiscard]] double avg_overall_ms() const;
  [[nodiscard]] std::uint64_t read_count() const { return read_.count(); }
  [[nodiscard]] std::uint64_t write_count() const { return write_.count(); }
  [[nodiscard]] double read_p99_ms() const { return read_hist_.quantile(0.99); }
  [[nodiscard]] double write_p99_ms() const {
    return write_hist_.quantile(0.99);
  }

  void merge(const LatencyRecorder& other);

 private:
  RunningStat read_;   // in ms
  RunningStat write_;  // in ms
  LogHistogram read_hist_;
  LogHistogram write_hist_;
};

}  // namespace ppssd
