#include "common/rng.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/check.h"

namespace ppssd {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: seeds the xoshiro state from a single 64-bit seed.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = splitmix64(s);
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  PPSSD_CHECK(bound > 0);
  // Lemire's nearly-divisionless bounded sampling.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t t = -bound % bound;
    while (l < t) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  PPSSD_CHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::exponential(double mean) {
  PPSSD_CHECK(mean > 0.0);
  double u = next_double();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * M_PI * u2);
}

std::uint64_t Rng::poisson(double mean) {
  PPSSD_CHECK(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean > 64.0) {
    const double v = normal(mean, std::sqrt(mean));
    return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  double prod = next_double();
  std::uint64_t n = 0;
  while (prod > limit) {
    prod *= next_double();
    ++n;
  }
  return n;
}

ZipfSampler::ZipfSampler(std::uint64_t n, double alpha) {
  PPSSD_CHECK(n > 0);
  cdf_.resize(n);
  double sum = 0.0;
  for (std::uint64_t k = 0; k < n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k + 1), alpha);
    cdf_[k] = sum;
  }
  for (auto& c : cdf_) {
    c /= sum;
  }
  cdf_.back() = 1.0;  // close the CDF exactly despite rounding

  // Bucket index: enough buckets that a typical bracket is a handful of
  // ranks (Zipf mass concentrates, so low buckets stay wider — the binary
  // search handles those), capped so construction stays trivial.
  buckets_ = std::min<std::uint64_t>(4096, std::bit_ceil(n));
  index_.resize(buckets_ + 1);
  for (std::uint64_t j = 0; j <= buckets_; ++j) {
    const double b =
        static_cast<double>(j) / static_cast<double>(buckets_);
    index_[j] = static_cast<std::uint64_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), b) - cdf_.begin());
  }
  // u < 1.0 strictly, but keep the top bracket closed on a valid rank.
  if (index_[buckets_] >= n) index_[buckets_] = n - 1;
}

std::uint64_t ZipfSampler::sample_reference(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::uint64_t k) const {
  PPSSD_CHECK(k < cdf_.size());
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace ppssd
