// Core scalar types and strong identifiers shared by every ppssd module.
//
// The simulator measures time in integer nanoseconds (SimTime) so that the
// discrete-event queue is exactly ordered and runs are bit-reproducible.
// All Table-2 latencies from the paper are expressed in milliseconds there;
// conversion helpers live in units.h.
#pragma once

#include <cstdint>
#include <limits>

namespace ppssd {

/// Simulation time in nanoseconds since replay start.
using SimTime = std::uint64_t;

/// Sentinel for "no time" / unset timestamps.
inline constexpr SimTime kNoTime = std::numeric_limits<SimTime>::max();

/// Logical subpage number: host address space in subpage (4 KiB) units.
using Lsn = std::uint64_t;

/// Logical page number (page = kSubpagesPerPage subpages).
using Lpn = std::uint64_t;

inline constexpr Lsn kInvalidLsn = std::numeric_limits<Lsn>::max();
inline constexpr Lpn kInvalidLpn = std::numeric_limits<Lpn>::max();

/// Flat physical block index across the whole flash array.
using BlockId = std::uint32_t;
/// Page index within a block.
using PageId = std::uint16_t;
/// Subpage slot index within a page.
using SubpageId = std::uint8_t;

inline constexpr BlockId kInvalidBlock = std::numeric_limits<BlockId>::max();
inline constexpr PageId kInvalidPage = std::numeric_limits<PageId>::max();
inline constexpr SubpageId kInvalidSubpage =
    std::numeric_limits<SubpageId>::max();

/// Physical address of one subpage slot.
struct PhysicalAddress {
  BlockId block = kInvalidBlock;
  PageId page = kInvalidPage;
  SubpageId subpage = kInvalidSubpage;

  [[nodiscard]] constexpr bool valid() const { return block != kInvalidBlock; }
  constexpr bool operator==(const PhysicalAddress&) const = default;
};

/// Block-level labels used by the IPU three-level SLC cache (Section 3.1).
/// Values match Algorithm 1's block_flag convention.
enum class BlockLevel : std::uint8_t {
  kHighDensity = 0,  // native MLC region (not SLC-mode)
  kWork = 1,
  kMonitor = 2,
  kHot = 3,
};

/// Flash cell operating mode of a block.
enum class CellMode : std::uint8_t {
  kSlc = 0,  // SLC-mode cache block: 1 bit/cell
  kMlc = 1,  // native high-density block: 2 bit/cell
};

/// Host request direction.
enum class OpType : std::uint8_t { kRead = 0, kWrite = 1 };

}  // namespace ppssd
