// Size and time unit helpers.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace ppssd {

inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;

/// Subpage size: the partial-programming granularity (4 KiB in the paper).
inline constexpr std::uint64_t kSubpageBytes = 4 * kKiB;

/// Convert milliseconds (paper's Table-2 unit) to SimTime nanoseconds.
constexpr SimTime ms_to_ns(double ms) {
  return static_cast<SimTime>(ms * 1.0e6 + 0.5);
}

/// Convert microseconds to SimTime nanoseconds.
constexpr SimTime us_to_ns(double us) {
  return static_cast<SimTime>(us * 1.0e3 + 0.5);
}

/// Convert SimTime nanoseconds to milliseconds (for reporting).
constexpr double ns_to_ms(SimTime ns) { return static_cast<double>(ns) / 1.0e6; }

/// Convert SimTime nanoseconds to microseconds (for reporting).
constexpr double ns_to_us(SimTime ns) { return static_cast<double>(ns) / 1.0e3; }

/// Round a byte count up to whole subpages.
constexpr std::uint64_t bytes_to_subpages(std::uint64_t bytes) {
  return (bytes + kSubpageBytes - 1) / kSubpageBytes;
}

}  // namespace ppssd
