// Streaming statistics and histograms used by the metric pipeline.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace ppssd {

/// Welford's online mean/variance with min/max tracking.
class RunningStat {
 public:
  void add(double x);
  void merge(const RunningStat& other);
  void reset();

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(count_); }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Log-bucketed histogram for positive values (latencies in ns).
///
/// Buckets are geometric: bucket i covers [lo * g^i, lo * g^(i+1)).
/// Quantiles are answered with linear interpolation inside a bucket — good
/// to a few percent, constant memory, O(1) insert.
class LogHistogram {
 public:
  /// Covers [lo, hi] with `buckets` geometric buckets.
  LogHistogram(double lo, double hi, std::uint32_t buckets = 128);

  void add(double x);
  void merge(const LogHistogram& other);

  [[nodiscard]] std::uint64_t count() const { return total_; }
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double mean() const { return stat_.mean(); }
  [[nodiscard]] double max() const { return stat_.max(); }
  [[nodiscard]] const RunningStat& stat() const { return stat_; }

 private:
  [[nodiscard]] std::uint32_t bucket_for(double x) const;
  [[nodiscard]] double bucket_lo(std::uint32_t i) const;

  double lo_;
  double log_lo_;
  double log_ratio_;  // log(g)
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  RunningStat stat_;
};

}  // namespace ppssd
