// Simulator configuration: geometry, timings, cache policy knobs.
//
// Defaults reproduce Table 2 of the paper ("Experimental settings of
// SSDsim"). scaled() derives a smaller device with identical ratios so the
// full benchmark matrix runs in minutes on a laptop; REPRO_FULL=1 switches
// the benches back to paper scale.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"
#include "common/units.h"

namespace ppssd {

/// Physical organisation of the flash array.
///
/// total_blocks are striped over channels*chips_per_channel*dies_per_chip*
/// planes_per_die planes. Blocks are whole-plane entities as in SSDsim.
struct GeometryConfig {
  std::uint32_t channels = 8;
  std::uint32_t chips_per_channel = 4;
  std::uint32_t dies_per_chip = 2;
  std::uint32_t planes_per_die = 2;
  std::uint32_t total_blocks = 65536;       // Table 2: Block number
  std::uint32_t pages_per_mlc_block = 128;  // Table 2: SLC/MLC Page 64/128
  std::uint32_t pages_per_slc_block = 64;
  std::uint32_t page_bytes = 16 * kKiB;  // Table 2: Page size
  std::uint32_t subpage_bytes = static_cast<std::uint32_t>(kSubpageBytes);

  [[nodiscard]] std::uint32_t planes() const {
    return channels * chips_per_channel * dies_per_chip * planes_per_die;
  }
  [[nodiscard]] std::uint32_t chips() const {
    return channels * chips_per_channel;
  }
  [[nodiscard]] std::uint32_t subpages_per_page() const {
    return page_bytes / subpage_bytes;
  }
  [[nodiscard]] std::uint64_t mlc_capacity_bytes() const {
    return static_cast<std::uint64_t>(total_blocks) * pages_per_mlc_block *
           page_bytes;
  }
};

/// NAND operation latencies (Table 2, values in ms there).
struct TimingConfig {
  SimTime slc_read = ms_to_ns(0.025);
  SimTime mlc_read = ms_to_ns(0.05);
  SimTime slc_write = ms_to_ns(0.3);
  SimTime mlc_write = ms_to_ns(0.9);
  SimTime erase = ms_to_ns(10.0);
  /// Bus transfer per subpage (not in Table 2; SSDsim uses ~25ns/byte ONFI;
  /// we fold it into a small per-subpage constant).
  SimTime transfer_per_subpage = us_to_ns(10.0);
  /// In-place SLC→dense reprogram (IPS, arXiv 2409.14360): the continued
  /// ISPP sequence on already-programmed cells costs about a dense page
  /// program — but no read, no channel transfer and no ECC round-trip.
  SimTime reprogram = ms_to_ns(0.9);
};

/// BCH ECC decode-latency bounds (Table 2) and codec parameters.
struct EccConfig {
  SimTime min_decode = ms_to_ns(0.0005);  // Table 2: ECC min time
  SimTime max_decode = ms_to_ns(0.0968);  // Table 2: ECC max time
  /// Correction capability in bits per codeword (one codeword per subpage).
  std::uint32_t t_per_codeword = 40;
  /// Codeword payload size in bytes (per-subpage codewords).
  std::uint32_t codeword_bytes = static_cast<std::uint32_t>(kSubpageBytes);
};

/// Raw bit-error-rate model calibration (Figure 2 anchors; see
/// ecc/ber_model.h for the functional form).
struct BerConfig {
  /// Conventional-programming raw BER of an MLC page at the anchor P/E.
  double mlc_anchor_ber = 2.8e-4;
  std::uint32_t anchor_pe = 4000;
  /// Growth exponent of BER with P/E cycles.
  double pe_exponent = 1.6;
  /// BER floor at P/E = 0 as a fraction of the anchor BER.
  double fresh_fraction = 0.12;
  /// BER of SLC-mode pages relative to native MLC pages at equal wear.
  /// SLC-mode blocks in a hybrid SSD are the *same* MLC cells operated at
  /// one bit per cell; the paper's Figure 2 statistics [19] are measured
  /// on such pages, so the default keeps the bases equal and lets the
  /// disturb terms differentiate the schemes (Figure 8's mechanism).
  double slc_factor = 1.0;
  /// Multiplicative penalty per partial-programming pass observed by data
  /// already resident in the same page (in-page disturb). Calibrated so a
  /// fully partially-programmed page at 4000 P/E reaches ~3.8e-4 (Fig. 2).
  double in_page_disturb_factor = 0.12;
  /// Penalty per program operation on a wordline-adjacent page.
  double neighbor_disturb_factor = 0.012;
  /// The in-page/neighbour penalties grow with wear; extra multiplier per
  /// anchor-normalised P/E ((pe/anchor)^disturb_pe_exponent).
  double disturb_pe_exponent = 0.5;
  /// Additive BER penalty (fraction of the page's base BER) on pages whose
  /// cells were converted in place from SLC state (IPS reprogramming):
  /// the continued ISPP sequence leaves wider threshold-voltage
  /// distributions than a fresh dense program.
  double reprogram_penalty = 0.3;
};

/// SLC-mode cache policy knobs.
struct CacheConfig {
  double slc_ratio = 0.05;     // Table 2: SLC mode ratio
  double gc_threshold = 0.05;  // Table 2: GC threshold (free-block fraction)
  /// Manufacturer limit on partial programs per SLC page (Section 1).
  std::uint32_t max_partial_programs = 4;
  /// Controller GC scheduling: background (GC/migration) flash ops are
  /// interleaved with host commands at most this many per host request,
  /// instead of monopolising chips in one burst. 0 = run GC ops inline.
  std::uint32_t gc_interleave_ops = 1;
  /// Fraction of SLC blocks assignable to Monitor/Hot levels each (IPU).
  double monitor_ratio = 0.25;
  double hot_ratio = 0.25;
};

/// Device wear state.
struct WearConfig {
  std::uint32_t initial_pe_cycles = 4000;  // paper default; Sec. 4.5 sweeps
  std::uint32_t slc_endurance = 100000;    // SLC-mode endures ~10x MLC [8]
  std::uint32_t mlc_endurance = 10000;
};

/// Top-level simulator configuration.
struct SsdConfig {
  GeometryConfig geometry;
  TimingConfig timing;
  EccConfig ecc;
  BerConfig ber;
  CacheConfig cache;
  WearConfig wear;

  /// Paper-scale configuration (Table 2 verbatim).
  [[nodiscard]] static SsdConfig paper();

  /// Proportionally scaled-down device: same ratios, `total_blocks` blocks.
  [[nodiscard]] static SsdConfig scaled(std::uint32_t total_blocks);

  /// Number of SLC-mode cache blocks implied by geometry and slc_ratio.
  [[nodiscard]] std::uint32_t slc_block_count() const;

  /// Validates internal consistency; returns an error message or empty.
  [[nodiscard]] std::string validate() const;
};

}  // namespace ppssd
