// Deterministic random number generation for workload synthesis.
//
// xoshiro256** (Blackman & Vigna) — fast, high quality, and stable across
// platforms so every trace profile is reproducible from its seed.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace ppssd {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [0, bound) via Lemire's method. bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial.
  bool chance(double p);

  /// Exponential with mean `mean` (> 0).
  double exponential(double mean);

  /// Standard normal via Box-Muller (no cached spare: keeps state minimal).
  double normal(double mean, double stddev);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  std::uint64_t poisson(double mean);

 private:
  std::array<std::uint64_t, 4> state_;
};

/// Zipf(α) sampler over ranks [0, n): precomputes the CDF once and samples
/// by binary search — O(log n) per draw, deterministic.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double alpha);

  std::uint64_t sample(Rng& rng) const;

  [[nodiscard]] std::uint64_t size() const { return cdf_.size(); }

  /// Probability mass of rank k (for tests).
  [[nodiscard]] double pmf(std::uint64_t k) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace ppssd
