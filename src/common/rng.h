// Deterministic random number generation for workload synthesis.
//
// xoshiro256** (Blackman & Vigna) — fast, high quality, and stable across
// platforms so every trace profile is reproducible from its seed.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace ppssd {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [0, bound) via Lemire's method. bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial.
  bool chance(double p);

  /// Exponential with mean `mean` (> 0).
  double exponential(double mean);

  /// Standard normal via Box-Muller (no cached spare: keeps state minimal).
  double normal(double mean, double stddev);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  std::uint64_t poisson(double mean);

 private:
  std::array<std::uint64_t, 4> state_;
};

/// Zipf(α) sampler over ranks [0, n): precomputes the CDF once and samples
/// by inverse transform, deterministic.
///
/// sample() brackets the draw with a precomputed bucket index (bucket j
/// stores lower_bound(cdf, j/K)) and finishes with a branchless binary
/// search over the bracket, so a draw costs O(log(n/K)) well-predicted
/// steps instead of a full O(log n) lower_bound. The result is defined to
/// be *identical* to sample_reference() — the plain lower_bound over the
/// whole CDF — for every u, so workload streams are unchanged
/// (tests/common/rng_test.cpp locks the two together).
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double alpha);

  std::uint64_t sample(Rng& rng) const {
    const double u = rng.next_double();
    // Bucket of u, corrected for the float rounding of u * K (the cast
    // can land one bucket off either way near a boundary).
    std::uint64_t j = static_cast<std::uint64_t>(u * buckets_);
    if (j >= buckets_) j = buckets_ - 1;
    if (u < boundary(j)) {
      --j;
    } else if (u >= boundary(j + 1)) {
      ++j;
    }
    // The answer lies in [index_[j], index_[j + 1]] by CDF monotonicity.
    std::uint64_t lo = index_[j];
    std::uint64_t len = index_[j + 1] - lo + 1;
    while (len > 1) {
      const std::uint64_t half = len / 2;
      const bool right = cdf_[lo + half - 1] < u;
      lo += right ? half : 0;
      len = right ? len - half : half;
    }
    return lo;
  }

  /// Plain lower_bound over the full CDF: the reference oracle sample()
  /// must match draw for draw.
  std::uint64_t sample_reference(Rng& rng) const;

  [[nodiscard]] std::uint64_t size() const { return cdf_.size(); }

  /// Probability mass of rank k (for tests).
  [[nodiscard]] double pmf(std::uint64_t k) const;

 private:
  [[nodiscard]] double boundary(std::uint64_t j) const {
    return static_cast<double>(j) / static_cast<double>(buckets_);
  }

  std::vector<double> cdf_;
  /// index_[j] = lower_bound(cdf_, j / buckets_); index_[buckets_] covers
  /// u -> 1.0 exactly. Size buckets_ + 1.
  std::vector<std::uint64_t> index_;
  std::uint64_t buckets_ = 1;
};

}  // namespace ppssd
