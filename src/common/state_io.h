// Bounds-checked binary serialization for device-state checkpoints.
//
// StateSink appends fixed-width little-endian scalars, strings, and flat
// vectors of trivially copyable elements to an in-memory buffer;
// StateSource reads them back in the same order. This is the substrate of
// the warm-start checkpoint (DESIGN.md §14): every layer's save()/
// restore() pair writes its mutable state through one of these.
//
// Checkpoints are host-local cache artifacts keyed by the experiment
// spec — vectors are memcpy'd in native element layout, so the format is
// not portable across architectures. The container layer (core/warmstart)
// guards against that with an up-front checksum + version check, and a
// StateSource that runs past the end of its buffer fails softly: reads
// return zero values and ok() flips to false, so a caller can treat any
// malformed payload as a cache miss instead of aborting.
//
// A distinct type from telemetry::introspect::StateSink (the key-value
// inspection emitter) — this one is a byte-exact state serializer.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

namespace ppssd::io {

class StateSink {
 public:
  void u8(std::uint8_t v) { raw(&v, 1); }
  void u16(std::uint16_t v) { raw(&v, sizeof(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void f64(double v) { raw(&v, sizeof(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  void str(const std::string& s) {
    u64(s.size());
    raw(s.data(), s.size());
  }

  /// Flat vector of trivially copyable elements: u64 count + raw bytes.
  template <typename T>
  void vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    u64(v.size());
    raw(v.data(), v.size() * sizeof(T));
  }

  /// Raw bytes of one trivially copyable object (fixed-size arrays etc.).
  template <typename T>
  void pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    raw(&v, sizeof(T));
  }

  [[nodiscard]] const std::vector<std::uint8_t>& buffer() const {
    return buf_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  void raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  std::vector<std::uint8_t> buf_;
};

class StateSource {
 public:
  StateSource(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit StateSource(const std::vector<std::uint8_t>& buf)
      : StateSource(buf.data(), buf.size()) {}

  [[nodiscard]] std::uint8_t u8() { return scalar<std::uint8_t>(); }
  [[nodiscard]] std::uint16_t u16() { return scalar<std::uint16_t>(); }
  [[nodiscard]] std::uint32_t u32() { return scalar<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t u64() { return scalar<std::uint64_t>(); }
  [[nodiscard]] double f64() { return scalar<double>(); }
  [[nodiscard]] bool boolean() { return u8() != 0; }

  [[nodiscard]] std::string str() {
    const std::uint64_t n = u64();
    if (!take(n)) return {};
    std::string s(reinterpret_cast<const char*>(data_ + pos_ - n),
                  static_cast<std::size_t>(n));
    return s;
  }

  template <typename T>
  [[nodiscard]] std::vector<T> vec() {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t n = u64();
    std::vector<T> v;
    if (!take(n * sizeof(T))) return v;
    v.resize(static_cast<std::size_t>(n));
    std::memcpy(v.data(), data_ + pos_ - n * sizeof(T), n * sizeof(T));
    return v;
  }

  /// Read a flat vector in place: the serialized element count must equal
  /// v.size() exactly (sticky-fail otherwise, leaving v untouched). The
  /// hot restore path uses this for the multi-MB SoA rows — the
  /// destination arrays are already sized by the device constructor, so
  /// the bytes land in one memcpy with no temporary allocation or
  /// zero-fill.
  template <typename T>
  bool vec_into(std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t n = u64();
    if (n != v.size()) {
      ok_ = false;
      return false;
    }
    if (!take(n * sizeof(T))) return false;
    std::memcpy(v.data(), data_ + pos_ - n * sizeof(T), n * sizeof(T));
    return true;
  }

  template <typename T>
  [[nodiscard]] T pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v{};
    if (take(sizeof(T))) {
      std::memcpy(&v, data_ + pos_ - sizeof(T), sizeof(T));
    }
    return v;
  }

  /// False once any read ran past the end of the buffer (every subsequent
  /// read returns zero values). Callers treat !ok() as a corrupt payload.
  [[nodiscard]] bool ok() const { return ok_; }
  /// Current read cursor (bytes consumed so far). The container layer
  /// uses this to locate the payload after parsing a variable-length
  /// header.
  [[nodiscard]] std::size_t pos() const { return pos_; }
  /// True when the whole buffer was consumed exactly.
  [[nodiscard]] bool exhausted() const { return ok_ && pos_ == size_; }

 private:
  template <typename T>
  [[nodiscard]] T scalar() {
    T v{};
    if (take(sizeof(T))) {
      std::memcpy(&v, data_ + pos_ - sizeof(T), sizeof(T));
    }
    return v;
  }

  /// Advance `n` bytes; false (and sticky-fail) if they are not there.
  bool take(std::uint64_t n) {
    if (!ok_ || n > size_ - pos_) {
      ok_ = false;
      return false;
    }
    pos_ += static_cast<std::size_t>(n);
    return true;
  }

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace ppssd::io
