#include "common/latency_recorder.h"

namespace ppssd {
namespace {
// Histogram range: 1 us .. 10 s in milliseconds.
constexpr double kHistLoMs = 1e-3;
constexpr double kHistHiMs = 1e4;
}  // namespace

LatencyRecorder::LatencyRecorder()
    : read_hist_(kHistLoMs, kHistHiMs), write_hist_(kHistLoMs, kHistHiMs) {}

void LatencyRecorder::record(OpType op, SimTime latency_ns) {
  const double ms = ns_to_ms(latency_ns);
  if (op == OpType::kRead) {
    read_hist_.add(ms);
  } else {
    write_hist_.add(ms);
  }
}

double LatencyRecorder::avg_overall_ms() const {
  const auto n = read_hist_.count() + write_hist_.count();
  if (n == 0) return 0.0;
  return (read_hist_.stat().sum() + write_hist_.stat().sum()) /
         static_cast<double>(n);
}

void LatencyRecorder::merge(const LatencyRecorder& other) {
  read_hist_.merge(other.read_hist_);
  write_hist_.merge(other.write_hist_);
}

}  // namespace ppssd
