#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ppssd {

void RunningStat::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStat::merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStat::reset() { *this = RunningStat{}; }

double RunningStat::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

LogHistogram::LogHistogram(double lo, double hi, std::uint32_t buckets)
    : lo_(lo), log_lo_(std::log(lo)) {
  PPSSD_CHECK(lo > 0.0 && hi > lo && buckets >= 2);
  log_ratio_ = (std::log(hi) - log_lo_) / buckets;
  counts_.assign(buckets + 2, 0);  // +underflow +overflow
}

std::uint32_t LogHistogram::bucket_for(double x) const {
  if (x < lo_) return 0;
  const auto i =
      static_cast<std::int64_t>((std::log(x) - log_lo_) / log_ratio_);
  const auto nbuckets = static_cast<std::int64_t>(counts_.size()) - 2;
  if (i >= nbuckets) return static_cast<std::uint32_t>(counts_.size() - 1);
  return static_cast<std::uint32_t>(i + 1);
}

double LogHistogram::bucket_lo(std::uint32_t i) const {
  if (i == 0) return 0.0;
  return std::exp(log_lo_ + (i - 1) * log_ratio_);
}

void LogHistogram::add(double x) {
  ++counts_[bucket_for(x)];
  ++total_;
  stat_.add(x);
}

void LogHistogram::merge(const LogHistogram& other) {
  PPSSD_CHECK(counts_.size() == other.counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
  stat_.merge(other.stat_);
}

double LogHistogram::quantile(double q) const {
  PPSSD_CHECK(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_ - 1));
  std::uint64_t cum = 0;
  for (std::uint32_t i = 0; i < counts_.size(); ++i) {
    if (cum + counts_[i] > target) {
      // Interpolate within the bucket.
      const double frac =
          counts_[i] == 0
              ? 0.0
              : static_cast<double>(target - cum) /
                    static_cast<double>(counts_[i]);
      const double blo = bucket_lo(i);
      const double bhi = i + 1 < counts_.size() ? bucket_lo(i + 1) : stat_.max();
      return blo + frac * (bhi - blo);
    }
    cum += counts_[i];
  }
  return stat_.max();
}

}  // namespace ppssd
