#include "ecc/bch.h"

#include <algorithm>

#include "common/check.h"

namespace ppssd::ecc {

BchCode::BchCode(const GaloisField& gf, std::uint32_t t,
                 std::uint32_t data_bits)
    : gf_(&gf), t_(t), data_bits_(data_bits) {
  PPSSD_CHECK(t >= 1);
  const std::uint32_t n = gf.n();

  // Generator polynomial: product of the distinct minimal polynomials of
  // alpha^1 .. alpha^(2t). Build each minimal polynomial from its
  // cyclotomic coset, then multiply into the generator over GF(2).
  std::vector<bool> covered(n, false);
  std::vector<std::uint32_t> gen{1};  // GF(2^m) coefficients, start g = 1
  for (std::uint32_t j = 1; j <= 2 * t; ++j) {
    if (covered[j % n]) continue;
    // Cyclotomic coset of j under doubling mod n.
    std::vector<std::uint32_t> coset;
    std::uint32_t s = j % n;
    while (!covered[s]) {
      covered[s] = true;
      coset.push_back(s);
      s = static_cast<std::uint32_t>((2ull * s) % n);
    }
    // Minimal polynomial: prod_{s in coset} (x + alpha^s).
    std::vector<std::uint32_t> minpoly{1};
    for (std::uint32_t exp : coset) {
      const std::uint32_t root = gf.exp(exp);
      std::vector<std::uint32_t> next(minpoly.size() + 1, 0);
      for (std::size_t i = 0; i < minpoly.size(); ++i) {
        next[i + 1] = GaloisField::add(next[i + 1], minpoly[i]);
        next[i] = GaloisField::add(next[i], gf.mul(minpoly[i], root));
      }
      minpoly = std::move(next);
    }
    // Multiply gen *= minpoly (minpoly has GF(2) coefficients in theory;
    // verify below).
    std::vector<std::uint32_t> prod(gen.size() + minpoly.size() - 1, 0);
    for (std::size_t a = 0; a < gen.size(); ++a) {
      if (gen[a] == 0) continue;
      for (std::size_t b = 0; b < minpoly.size(); ++b) {
        prod[a + b] = GaloisField::add(prod[a + b], gf.mul(gen[a], minpoly[b]));
      }
    }
    gen = std::move(prod);
  }
  gen_.resize(gen.size());
  for (std::size_t i = 0; i < gen.size(); ++i) {
    PPSSD_CHECK_MSG(gen[i] <= 1, "BCH generator polynomial not binary");
    gen_[i] = static_cast<std::uint8_t>(gen[i]);
  }
  parity_bits_ = static_cast<std::uint32_t>(gen_.size()) - 1;
  PPSSD_CHECK_MSG(data_bits_ + parity_bits_ <= n,
                  "data_bits too large for this code");
}

std::vector<std::uint8_t> BchCode::encode(
    std::span<const std::uint8_t> data) const {
  PPSSD_CHECK(data.size() == data_bits_);
  // Systematic encoding: codeword = [parity | data] where parity is the
  // remainder of data(x) * x^parity_bits modulo g(x), computed with an LFSR.
  std::vector<std::uint8_t> lfsr(parity_bits_, 0);
  // Feed data bits from the highest information position down.
  for (std::size_t idx = data.size(); idx-- > 0;) {
    const std::uint8_t feedback =
        static_cast<std::uint8_t>(data[idx] ^ lfsr[parity_bits_ - 1]);
    for (std::size_t i = parity_bits_ - 1; i > 0; --i) {
      lfsr[i] = static_cast<std::uint8_t>(
          lfsr[i - 1] ^ (feedback ? gen_[i] : 0));
    }
    lfsr[0] = static_cast<std::uint8_t>(feedback ? gen_[0] : 0);
  }
  std::vector<std::uint8_t> codeword(codeword_bits());
  std::copy(lfsr.begin(), lfsr.end(), codeword.begin());
  std::copy(data.begin(), data.end(), codeword.begin() + parity_bits_);
  return codeword;
}

DecodeResult BchCode::decode(std::span<std::uint8_t> codeword) const {
  PPSSD_CHECK(codeword.size() == codeword_bits());
  const GaloisField& gf = *gf_;

  // Syndromes S_j = r(alpha^j), j = 1..2t. Bit i of the (shortened)
  // codeword is the coefficient of x^i.
  std::vector<std::uint32_t> synd(2 * t_ + 1, 0);
  bool any = false;
  for (std::uint32_t j = 1; j <= 2 * t_; ++j) {
    std::uint32_t s = 0;
    for (std::uint32_t i = 0; i < codeword.size(); ++i) {
      if (codeword[i]) {
        s = GaloisField::add(
            s, gf.exp(static_cast<std::uint32_t>(
                   (static_cast<std::uint64_t>(j) * i) % gf.n())));
      }
    }
    synd[j] = s;
    any = any || s != 0;
  }
  if (!any) {
    return {DecodeStatus::kClean, 0};
  }

  // Berlekamp–Massey: find the error-locator polynomial sigma.
  GfPoly sigma{{1}};
  GfPoly prev_sigma{{1}};
  std::uint32_t prev_discrepancy = 1;
  std::uint32_t mdiff = 1;  // x^mdiff multiplier for the correction term
  std::uint32_t lfsr_len = 0;
  for (std::uint32_t iter = 1; iter <= 2 * t_; ++iter) {
    // Discrepancy d = S_iter + sum_{i=1..L} sigma_i * S_{iter-i}.
    std::uint32_t d = synd[iter];
    for (std::uint32_t i = 1; i <= lfsr_len && i < sigma.coeff.size(); ++i) {
      if (iter >= i + 1 && iter - i >= 1) {
        d = GaloisField::add(d, gf.mul(sigma.coeff[i], synd[iter - i]));
      }
    }
    if (d == 0) {
      ++mdiff;
      continue;
    }
    if (2 * lfsr_len <= iter - 1) {
      // Length change: save sigma before updating.
      GfPoly saved = sigma;
      const std::uint32_t scale = gf.div(d, prev_discrepancy);
      // sigma -= scale * x^mdiff * prev_sigma
      if (sigma.coeff.size() < prev_sigma.coeff.size() + mdiff) {
        sigma.coeff.resize(prev_sigma.coeff.size() + mdiff, 0);
      }
      for (std::size_t i = 0; i < prev_sigma.coeff.size(); ++i) {
        sigma.coeff[i + mdiff] = GaloisField::add(
            sigma.coeff[i + mdiff], gf.mul(scale, prev_sigma.coeff[i]));
      }
      lfsr_len = iter - lfsr_len;
      prev_sigma = std::move(saved);
      prev_discrepancy = d;
      mdiff = 1;
    } else {
      const std::uint32_t scale = gf.div(d, prev_discrepancy);
      if (sigma.coeff.size() < prev_sigma.coeff.size() + mdiff) {
        sigma.coeff.resize(prev_sigma.coeff.size() + mdiff, 0);
      }
      for (std::size_t i = 0; i < prev_sigma.coeff.size(); ++i) {
        sigma.coeff[i + mdiff] = GaloisField::add(
            sigma.coeff[i + mdiff], gf.mul(scale, prev_sigma.coeff[i]));
      }
      ++mdiff;
    }
  }

  const int deg = sigma.degree();
  if (deg < 0 || static_cast<std::uint32_t>(deg) > t_) {
    return {DecodeStatus::kFailed, 0};
  }

  // Chien search over the *shortened* positions: error at position i iff
  // sigma(alpha^{-i}) == 0.
  std::vector<std::uint32_t> error_positions;
  for (std::uint32_t i = 0; i < codeword.size(); ++i) {
    const std::uint32_t x =
        gf.exp((gf.n() - i % gf.n()) % gf.n());  // alpha^{-i}
    if (sigma.eval(gf, x) == 0) {
      error_positions.push_back(i);
      if (error_positions.size() > t_) break;
    }
  }
  if (error_positions.size() != static_cast<std::size_t>(deg)) {
    // Roots outside the shortened range or repeated roots: uncorrectable.
    return {DecodeStatus::kFailed, 0};
  }
  for (const std::uint32_t pos : error_positions) {
    codeword[pos] ^= 1;
  }
  // Re-verify: corrected word must have zero syndromes.
  for (std::uint32_t j = 1; j <= 2 * t_; ++j) {
    std::uint32_t s = 0;
    for (std::uint32_t i = 0; i < codeword.size(); ++i) {
      if (codeword[i]) {
        s = GaloisField::add(
            s, gf.exp(static_cast<std::uint32_t>(
                   (static_cast<std::uint64_t>(j) * i) % gf.n())));
      }
    }
    if (s != 0) {
      return {DecodeStatus::kFailed, 0};
    }
  }
  return {DecodeStatus::kCorrected,
          static_cast<std::uint32_t>(error_positions.size())};
}

std::vector<std::uint8_t> BchCode::extract_data(
    std::span<const std::uint8_t> codeword) const {
  PPSSD_CHECK(codeword.size() == codeword_bits());
  return {codeword.begin() + parity_bits_, codeword.end()};
}

}  // namespace ppssd::ecc
