// GF(2^m) arithmetic for the BCH codec.
//
// Log/antilog table implementation over the primitive polynomial
// x^13 + x^4 + x^3 + x + 1 (the standard choice for m = 13, giving the
// n = 8191 code family used by NAND BCH controllers such as [26]).
// The field size is a constructor parameter so tests can exercise small
// fields (e.g. GF(2^4)) against hand-computed tables.
#pragma once

#include <cstdint>
#include <vector>

namespace ppssd::ecc {

class GaloisField {
 public:
  /// Builds GF(2^m) from a primitive polynomial given as the bitmask of
  /// its coefficients including the x^m term.
  GaloisField(unsigned m, std::uint32_t primitive_poly);

  /// Default field used by the codec: GF(2^13).
  static const GaloisField& gf13();

  [[nodiscard]] unsigned m() const { return m_; }
  /// Multiplicative group order: 2^m - 1.
  [[nodiscard]] std::uint32_t n() const { return n_; }

  /// alpha^i for i in [0, n).
  [[nodiscard]] std::uint32_t exp(std::uint32_t i) const {
    return exp_[i % n_];
  }
  /// Discrete log of a nonzero element.
  [[nodiscard]] std::uint32_t log(std::uint32_t x) const;

  [[nodiscard]] std::uint32_t mul(std::uint32_t a, std::uint32_t b) const;
  [[nodiscard]] std::uint32_t div(std::uint32_t a, std::uint32_t b) const;
  [[nodiscard]] std::uint32_t inv(std::uint32_t a) const;
  /// a^e with e >= 0.
  [[nodiscard]] std::uint32_t pow(std::uint32_t a, std::uint64_t e) const;

  /// Addition in GF(2^m) is XOR; provided for readability.
  [[nodiscard]] static std::uint32_t add(std::uint32_t a, std::uint32_t b) {
    return a ^ b;
  }

 private:
  unsigned m_;
  std::uint32_t n_;
  std::vector<std::uint32_t> exp_;
  std::vector<std::uint32_t> log_;
};

/// Polynomial over GF(2^m), coefficients in ascending degree order.
/// Utility operations used by Berlekamp–Massey and Chien search.
struct GfPoly {
  std::vector<std::uint32_t> coeff;  // coeff[i] multiplies x^i

  [[nodiscard]] int degree() const;
  [[nodiscard]] std::uint32_t eval(const GaloisField& gf,
                                   std::uint32_t x) const;
};

}  // namespace ppssd::ecc
