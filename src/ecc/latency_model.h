// ECC decode-latency model (Table 2: ECC min/max time).
//
// BCH decode cost is dominated by the error-location stages whose work
// grows with the number of raw bit errors; controllers short-circuit on
// all-zero syndromes (min time) and saturate at the correction capability
// (max time). Reads of disturbed pages therefore take longer — the paper's
// mechanism linking partial programming to read latency (Sections 2.2, 4.2).
#pragma once

#include <cstdint>

#include "common/config.h"
#include "common/types.h"

namespace ppssd::ecc {

class EccLatencyModel {
 public:
  explicit EccLatencyModel(const EccConfig& cfg) : cfg_(cfg) {}

  /// Expected raw bit errors in one codeword at raw bit-error rate `ber`.
  [[nodiscard]] double expected_errors(double ber) const {
    return ber * 8.0 * cfg_.codeword_bytes;
  }

  /// Decode time for a codeword read observing raw BER `ber`:
  ///   min + (max - min) * clamp(E[errors] / t, 0, 1).
  [[nodiscard]] SimTime decode_time(double ber) const;

  /// Decode time for `codewords` codewords decoded back-to-back.
  [[nodiscard]] SimTime decode_time(double ber, std::uint32_t codewords) const {
    return decode_time(ber) * codewords;
  }

  /// True when the expected error count reaches the correction capability:
  /// the decoder runs at max time and the read sits at the retry/failure
  /// boundary (telemetry counts these as ECC-retry pressure).
  [[nodiscard]] bool saturated(double ber) const {
    return expected_errors(ber) >=
           static_cast<double>(cfg_.t_per_codeword);
  }

  [[nodiscard]] const EccConfig& config() const { return cfg_; }

 private:
  EccConfig cfg_;
};

}  // namespace ppssd::ecc
