// Raw bit-error-rate model.
//
// Calibrated to the paper's Figure 2 (MLC statistical data from Zhang et
// al., FAST'16): at the 4000 P/E anchor, conventional programming shows a
// raw BER of 2.8e-4 and a fully partially-programmed page 3.8e-4, with the
// gap widening as P/E grows.
//
// Functional form:
//   base(pe)  = anchor_ber * (f + (1-f) * (pe/anchor)^e)        [MLC]
//   base_slc  = slc_factor * base(pe)
//   ber(snap) = base * (1 + a(pe) * in_page + b(pe) * neighbor)
// where a(pe) = in_page_disturb_factor * (pe/anchor)^d and likewise b(pe).
// With the default a(4000) = 0.12 and the manufacturer limit of 4 programs
// per page, a first-written subpage absorbs up to 3 in-page disturbs:
// 2.8e-4 * (1 + 3*0.12) ≈ 3.8e-4, matching the Figure 2 anchor.
#pragma once

#include "common/config.h"
#include "nand/disturb.h"

namespace ppssd::ecc {

class BerModel {
 public:
  explicit BerModel(const BerConfig& cfg) : cfg_(cfg) {}

  /// Raw BER of a stored subpage given its disturb snapshot.
  [[nodiscard]] double raw_ber(const nand::DisturbSnapshot& snap) const;

  /// Conventional-programming curve (Figure 2 lower series) for MLC pages.
  [[nodiscard]] double conventional_ber(std::uint32_t pe_cycles) const;

  /// Worst-case partial-programming curve (Figure 2 upper series): a
  /// subpage that absorbed `max_partials - 1` in-page disturbs.
  [[nodiscard]] double partial_ber(std::uint32_t pe_cycles,
                                   std::uint32_t max_partials) const;

  [[nodiscard]] const BerConfig& config() const { return cfg_; }

 private:
  [[nodiscard]] double base_ber(CellMode mode, std::uint32_t pe) const;
  [[nodiscard]] double wear_scale(std::uint32_t pe) const;

  BerConfig cfg_;
};

}  // namespace ppssd::ecc
