#include "ecc/galois.h"

#include "common/check.h"

namespace ppssd::ecc {

GaloisField::GaloisField(unsigned m, std::uint32_t primitive_poly) : m_(m) {
  PPSSD_CHECK(m >= 2 && m <= 16);
  n_ = (1u << m) - 1;
  exp_.resize(n_);
  log_.assign(n_ + 1, 0);

  std::uint32_t x = 1;
  for (std::uint32_t i = 0; i < n_; ++i) {
    exp_[i] = x;
    PPSSD_CHECK_MSG(log_[x] == 0 || x == 1,
                    "primitive polynomial is not primitive for this m");
    log_[x] = i;
    x <<= 1;
    if (x & (1u << m)) {
      x ^= primitive_poly;
    }
  }
  PPSSD_CHECK_MSG(x == 1, "alpha does not have order 2^m - 1");
}

const GaloisField& GaloisField::gf13() {
  // x^13 + x^4 + x^3 + x + 1 -> 0b1'0000'0001'1011
  static const GaloisField field(13, 0x201B);
  return field;
}

std::uint32_t GaloisField::log(std::uint32_t x) const {
  PPSSD_CHECK_MSG(x != 0 && x <= n_, "log of zero or out-of-field element");
  return log_[x];
}

std::uint32_t GaloisField::mul(std::uint32_t a, std::uint32_t b) const {
  if (a == 0 || b == 0) return 0;
  return exp_[(log_[a] + log_[b]) % n_];
}

std::uint32_t GaloisField::div(std::uint32_t a, std::uint32_t b) const {
  PPSSD_CHECK(b != 0);
  if (a == 0) return 0;
  return exp_[(log_[a] + n_ - log_[b]) % n_];
}

std::uint32_t GaloisField::inv(std::uint32_t a) const {
  PPSSD_CHECK(a != 0);
  return exp_[(n_ - log_[a]) % n_];
}

std::uint32_t GaloisField::pow(std::uint32_t a, std::uint64_t e) const {
  if (a == 0) return e == 0 ? 1 : 0;
  return exp_[static_cast<std::uint32_t>((log_[a] * e) % n_)];
}

int GfPoly::degree() const {
  for (int i = static_cast<int>(coeff.size()) - 1; i >= 0; --i) {
    if (coeff[i] != 0) return i;
  }
  return -1;
}

std::uint32_t GfPoly::eval(const GaloisField& gf, std::uint32_t x) const {
  // Horner's rule.
  std::uint32_t acc = 0;
  for (int i = static_cast<int>(coeff.size()) - 1; i >= 0; --i) {
    acc = GaloisField::add(gf.mul(acc, x), coeff[i]);
  }
  return acc;
}

}  // namespace ppssd::ecc
