#include "ecc/ber_model.h"

#include <algorithm>
#include <cmath>

namespace ppssd::ecc {

double BerModel::wear_scale(std::uint32_t pe) const {
  return std::pow(static_cast<double>(pe) / cfg_.anchor_pe,
                  cfg_.disturb_pe_exponent);
}

double BerModel::base_ber(CellMode mode, std::uint32_t pe) const {
  const double rel = static_cast<double>(pe) / cfg_.anchor_pe;
  const double mlc = cfg_.mlc_anchor_ber *
                     (cfg_.fresh_fraction +
                      (1.0 - cfg_.fresh_fraction) * std::pow(rel, cfg_.pe_exponent));
  return mode == CellMode::kSlc ? cfg_.slc_factor * mlc : mlc;
}

double BerModel::raw_ber(const nand::DisturbSnapshot& snap) const {
  const double scale = wear_scale(snap.pe_cycles);
  const double a = cfg_.in_page_disturb_factor * scale;
  const double b = cfg_.neighbor_disturb_factor * scale;
  const double r = snap.reprogrammed ? cfg_.reprogram_penalty : 0.0;
  const double ber =
      base_ber(snap.mode, snap.pe_cycles) *
      (1.0 + r + a * snap.in_page_disturbs + b * snap.neighbor_disturbs);
  return std::min(ber, 0.5);
}

double BerModel::conventional_ber(std::uint32_t pe_cycles) const {
  return base_ber(CellMode::kMlc, pe_cycles);
}

double BerModel::partial_ber(std::uint32_t pe_cycles,
                             std::uint32_t max_partials) const {
  nand::DisturbSnapshot snap;
  snap.mode = CellMode::kMlc;
  snap.pe_cycles = pe_cycles;
  snap.in_page_disturbs = max_partials > 0 ? max_partials - 1 : 0;
  snap.neighbor_disturbs = 0;
  return raw_ber(snap);
}

}  // namespace ppssd::ecc
