#include "ecc/latency_model.h"

#include <algorithm>

namespace ppssd::ecc {

SimTime EccLatencyModel::decode_time(double ber) const {
  const double errors = expected_errors(ber);
  const double load =
      std::clamp(errors / static_cast<double>(cfg_.t_per_codeword), 0.0, 1.0);
  const double span =
      static_cast<double>(cfg_.max_decode - cfg_.min_decode);
  return cfg_.min_decode + static_cast<SimTime>(span * load + 0.5);
}

}  // namespace ppssd::ecc
