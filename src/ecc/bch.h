// Binary BCH codec: encode, syndrome decode (Berlekamp–Massey + Chien).
//
// NAND controllers protect each 512 B sector with a BCH code over
// GF(2^13) (n = 8191) [26]. The codec here is fully functional — tests
// round-trip random data through random error patterns — and the decode-
// latency model (latency_model.h) is calibrated against its behaviour:
// decode effort grows with the number of raw errors until the correction
// capability t is exhausted.
//
// The code is used in *shortened* form: data_bits <= k = n - m*t, with the
// unused leading information positions implicitly zero.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ecc/galois.h"

namespace ppssd::ecc {

enum class DecodeStatus : std::uint8_t {
  kClean = 0,      // syndromes all zero: no errors
  kCorrected = 1,  // errors found and corrected
  kFailed = 2,     // error weight beyond capability (detected failure)
};

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kClean;
  std::uint32_t corrected = 0;
};

class BchCode {
 public:
  /// Code over `gf` correcting up to `t` bit errors, carrying `data_bits`
  /// information bits (shortened if data_bits < k).
  BchCode(const GaloisField& gf, std::uint32_t t, std::uint32_t data_bits);

  [[nodiscard]] std::uint32_t t() const { return t_; }
  [[nodiscard]] std::uint32_t n() const { return gf_->n(); }
  [[nodiscard]] std::uint32_t data_bits() const { return data_bits_; }
  [[nodiscard]] std::uint32_t parity_bits() const { return parity_bits_; }
  /// Transmitted codeword length (shortened): data + parity bits.
  [[nodiscard]] std::uint32_t codeword_bits() const {
    return data_bits_ + parity_bits_;
  }

  /// Systematic encode: returns a codeword_bits()-long bit vector with
  /// layout [parity | data].
  [[nodiscard]] std::vector<std::uint8_t> encode(
      std::span<const std::uint8_t> data) const;

  /// Decode in place. Returns the decode outcome; on kCorrected the
  /// codeword has been repaired.
  DecodeResult decode(std::span<std::uint8_t> codeword) const;

  /// Extract the data bits of a codeword.
  [[nodiscard]] std::vector<std::uint8_t> extract_data(
      std::span<const std::uint8_t> codeword) const;

  /// Generator polynomial coefficients over GF(2), ascending degree.
  [[nodiscard]] const std::vector<std::uint8_t>& generator() const {
    return gen_;
  }

 private:
  const GaloisField* gf_;
  std::uint32_t t_;
  std::uint32_t data_bits_;
  std::uint32_t parity_bits_;
  std::vector<std::uint8_t> gen_;  // generator poly bits, ascending degree
};

}  // namespace ppssd::ecc
