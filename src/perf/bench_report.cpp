#include "perf/bench_report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "telemetry/json.h"

namespace ppssd::perf {

namespace {

using telemetry::json::Value;

double num_or(const Value& obj, const char* key, double fallback) {
  const Value* v = obj.find(key);
  return (v != nullptr && v->is_number()) ? v->number : fallback;
}

std::string str_or(const Value& obj, const char* key) {
  const Value* v = obj.find(key);
  return (v != nullptr && v->is_string()) ? v->string : std::string();
}

void append_kv(std::ostringstream& os, const char* key, double v,
               bool first = false) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s\"%s\":%.17g", first ? "" : ",", key, v);
  os << buf;
}

}  // namespace

double BenchReport::total_wall_seconds() const {
  double total = 0.0;
  for (const BenchCell& c : cells) total += c.wall_seconds;
  return total;
}

double BenchReport::geomean_reqs_per_sec() const {
  if (cells.empty()) return 0.0;
  double log_sum = 0.0;
  std::size_t n = 0;
  for (const BenchCell& c : cells) {
    if (c.reqs_per_sec <= 0.0) continue;
    log_sum += std::log(c.reqs_per_sec);
    ++n;
  }
  return n == 0 ? 0.0 : std::exp(log_sum / static_cast<double>(n));
}

std::string BenchReport::to_json() const {
  std::ostringstream os;
  os << "{\"schema\":" << kSchemaVersion << ",\"config\":{\"blocks\":"
     << blocks;
  append_kv(os, "scale", scale);
  os << ",\"jobs\":" << jobs << "},\"cells\":[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const BenchCell& c = cells[i];
    if (i != 0) os << ',';
    os << "{\"key\":\"" << c.key << "\",\"scheme\":\"" << c.scheme
       << "\",\"trace\":\"" << c.trace << "\",\"requests\":" << c.requests
       << ",\"ctrl_events\":" << c.ctrl_events;
    append_kv(os, "wall_seconds", c.wall_seconds);
    append_kv(os, "reqs_per_sec", c.reqs_per_sec);
    append_kv(os, "ctrl_events_per_sec", c.ctrl_events_per_sec);
    os << ",\"phases\":{";
    append_kv(os, "setup", c.phases.setup_seconds, /*first=*/true);
    append_kv(os, "warmup", c.phases.warmup_seconds);
    append_kv(os, "measure", c.phases.measure_seconds);
    append_kv(os, "report", c.phases.report_seconds);
    os << "}}";
  }
  os << "],\"totals\":{";
  append_kv(os, "wall_seconds", total_wall_seconds(), /*first=*/true);
  append_kv(os, "geomean_reqs_per_sec", geomean_reqs_per_sec());
  os << "}}\n";
  return os.str();
}

std::optional<BenchReport> BenchReport::from_json(const std::string& text) {
  const auto doc = telemetry::json::parse(text);
  if (!doc || !doc->is_object()) return std::nullopt;
  const Value* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_number() ||
      static_cast<int>(schema->number) != kSchemaVersion) {
    return std::nullopt;
  }
  BenchReport r;
  if (const Value* cfg = doc->find("config"); cfg != nullptr) {
    r.blocks = static_cast<std::uint32_t>(num_or(*cfg, "blocks", 0));
    r.scale = num_or(*cfg, "scale", 0.0);
    r.jobs = static_cast<std::size_t>(num_or(*cfg, "jobs", 1));
  }
  const Value* cells = doc->find("cells");
  if (cells == nullptr || !cells->is_array()) return std::nullopt;
  for (const Value& v : cells->array) {
    if (!v.is_object()) return std::nullopt;
    BenchCell c;
    c.key = str_or(v, "key");
    if (c.key.empty()) return std::nullopt;
    c.scheme = str_or(v, "scheme");
    c.trace = str_or(v, "trace");
    c.requests = static_cast<std::uint64_t>(num_or(v, "requests", 0));
    c.ctrl_events = static_cast<std::uint64_t>(num_or(v, "ctrl_events", 0));
    c.wall_seconds = num_or(v, "wall_seconds", 0.0);
    c.reqs_per_sec = num_or(v, "reqs_per_sec", 0.0);
    c.ctrl_events_per_sec = num_or(v, "ctrl_events_per_sec", 0.0);
    if (const Value* ph = v.find("phases"); ph != nullptr) {
      c.phases.setup_seconds = num_or(*ph, "setup", 0.0);
      c.phases.warmup_seconds = num_or(*ph, "warmup", 0.0);
      c.phases.measure_seconds = num_or(*ph, "measure", 0.0);
      c.phases.report_seconds = num_or(*ph, "report", 0.0);
    }
    r.cells.push_back(std::move(c));
  }
  return r;
}

std::optional<BenchReport> BenchReport::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_json(buf.str());
}

bool BenchReport::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json();
  return static_cast<bool>(out);
}

bool BenchComparison::has_regression() const {
  return std::any_of(cells.begin(), cells.end(),
                     [](const CellDelta& c) { return c.regression; });
}

bool BenchComparison::has_phase_regression() const {
  return std::any_of(cells.begin(), cells.end(),
                     [](const CellDelta& c) { return c.phase_regression(); });
}

double BenchComparison::worst_ratio() const {
  double worst = 1.0;
  for (const CellDelta& c : cells) {
    if (c.ratio > 0.0) worst = std::min(worst, c.ratio);
  }
  return worst;
}

std::string BenchComparison::render() const {
  std::ostringstream os;
  char line[256];
  std::snprintf(line, sizeof line, "%-52s %14s %14s %8s\n", "cell",
                "base req/s", "cur req/s", "ratio");
  os << line;
  for (const CellDelta& c : cells) {
    std::snprintf(line, sizeof line, "%-52s %14.1f %14.1f %7.2fx%s\n",
                  c.key.c_str(), c.base_reqs_per_sec, c.cur_reqs_per_sec,
                  c.ratio, c.regression ? "  REGRESSION" : "");
    os << line;
    // Phase breakdown lines only where a gated phase slowed down: the
    // table stays one line per healthy cell.
    const struct {
      const char* name;
      const PhaseDelta& p;
    } phases[] = {{"setup", c.setup}, {"warmup", c.warmup},
                  {"measure", c.measure}};
    for (const auto& [name, p] : phases) {
      if (!p.regression) continue;
      std::snprintf(line, sizeof line,
                    "  phase %-8s %13.2fs %13.2fs %7.2fx  REGRESSION\n",
                    name, p.base_seconds, p.cur_seconds, p.ratio);
      os << line;
    }
  }
  for (const std::string& k : only_in_baseline) {
    os << k << "  (missing from current run)\n";
  }
  for (const std::string& k : only_in_current) {
    os << k << "  (new cell, no baseline)\n";
  }
  const bool phase_reg = has_phase_regression();
  std::snprintf(line, sizeof line,
                "worst ratio %.2fx against tolerance -%d%%: %s%s\n",
                worst_ratio(), static_cast<int>(tolerance * 100.0),
                has_regression() ? "REGRESSION" : "ok",
                phase_reg ? " (phase REGRESSION)" : "");
  os << line;
  return os.str();
}

std::string render_shard_scaling(const BenchReport& report) {
  // Collect "<group>/s<N>" cells into per-group (N -> rate) maps.
  std::map<std::string, std::map<std::uint32_t, double>> groups;
  for (const BenchCell& c : report.cells) {
    const auto slash = c.key.rfind("/s");
    if (slash == std::string::npos) continue;
    const std::string tail = c.key.substr(slash + 2);
    if (tail.empty() ||
        tail.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    groups[c.key.substr(0, slash)][static_cast<std::uint32_t>(
        std::stoul(tail))] = c.reqs_per_sec;
  }

  std::ostringstream os;
  char line[256];
  for (const auto& [group, by_shards] : groups) {
    const auto s1 = by_shards.find(1);
    if (s1 == by_shards.end() || s1->second <= 0.0 || by_shards.size() < 2) {
      continue;
    }
    if (os.tellp() == 0) {
      std::snprintf(line, sizeof line, "\n%-40s %14s %9s %11s\n",
                    "shard scaling", "req/s", "speedup", "efficiency");
      os << line;
    }
    for (const auto& [shards, rate] : by_shards) {
      const double speedup = rate / s1->second;
      std::snprintf(line, sizeof line, "%-40s %14.1f %8.2fx %10.0f%%\n",
                    (group + "/s" + std::to_string(shards)).c_str(), rate,
                    speedup, 100.0 * speedup / static_cast<double>(shards));
      os << line;
    }
  }
  return os.str();
}

BenchComparison compare_bench(const BenchReport& baseline,
                              const BenchReport& current, double tolerance) {
  BenchComparison out;
  out.tolerance = tolerance;
  std::map<std::string, const BenchCell*> base_by_key;
  for (const BenchCell& c : baseline.cells) base_by_key[c.key] = &c;
  std::map<std::string, bool> matched;
  for (const BenchCell& c : current.cells) {
    const auto it = base_by_key.find(c.key);
    if (it == base_by_key.end()) {
      out.only_in_current.push_back(c.key);
      continue;
    }
    matched[c.key] = true;
    CellDelta d;
    d.key = c.key;
    d.base_reqs_per_sec = it->second->reqs_per_sec;
    d.cur_reqs_per_sec = c.reqs_per_sec;
    d.ratio = d.base_reqs_per_sec > 0.0
                  ? d.cur_reqs_per_sec / d.base_reqs_per_sec
                  : 0.0;
    d.regression = d.base_reqs_per_sec > 0.0 && d.ratio < 1.0 - tolerance;
    const auto phase_delta = [tolerance](double base, double cur) {
      PhaseDelta p;
      p.base_seconds = base;
      p.cur_seconds = cur;
      p.ratio = base > 0.0 ? cur / base : 0.0;
      // Phases gate at twice the cell tolerance: they are raw wall
      // times (not request-normalized throughput), so host noise hits
      // them harder, while the failure modes the gate exists for — a
      // warm-start cache that stopped hitting, a setup path that began
      // rescanning — are multiples, not percentages.
      p.regression = std::max(base, cur) >= kPhaseGateFloorSeconds &&
                     base > 0.0 && p.ratio > 1.0 + 2.0 * tolerance;
      return p;
    };
    const BenchPhases& bp = it->second->phases;
    d.setup = phase_delta(bp.setup_seconds, c.phases.setup_seconds);
    d.warmup = phase_delta(bp.warmup_seconds, c.phases.warmup_seconds);
    d.measure = phase_delta(bp.measure_seconds, c.phases.measure_seconds);
    out.cells.push_back(std::move(d));
  }
  for (const BenchCell& c : baseline.cells) {
    if (!matched.count(c.key)) out.only_in_baseline.push_back(c.key);
  }
  return out;
}

}  // namespace ppssd::perf
