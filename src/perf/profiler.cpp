#include "perf/profiler.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

namespace ppssd::perf {

namespace {

// Cache the owning profiler alongside the state so a test that installs a
// fresh instance re-registers instead of writing into the old one's tree.
thread_local Profiler* t_owner = nullptr;
thread_local void* t_state = nullptr;

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string fmt_seconds(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3fs", static_cast<double>(ns) / 1e9);
  return buf;
}

}  // namespace

Profiler::Profiler(Options opts)
    : opts_(std::move(opts)), epoch_ns_(steady_now_ns()) {}

Profiler::~Profiler() {
  finalize();
  if (instance_ == this) instance_ = nullptr;
}

void Profiler::init_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* path = std::getenv("PPSSD_PROFILE");
    if (path == nullptr || *path == '\0') return;
    // Function-local static: destroyed (and therefore finalized) at
    // process exit, after the runner has joined any worker pool.
    static Profiler prof(Options{.json_path = path});
    instance_ = &prof;
  });
}

Profiler* Profiler::exchange_instance(Profiler* p) {
  Profiler* prev = instance_;
  instance_ = p;
  return prev;
}

std::uint64_t Profiler::now_ns() const { return steady_now_ns() - epoch_ns_; }

Profiler::ThreadState* Profiler::register_thread() {
  auto state = std::make_unique<ThreadState>();
  Node root;
  root.name = "";
  root.parent = 0;
  state->nodes.push_back(std::move(root));
  state->stack.push_back(0);
  ThreadState* raw = state.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    raw->tid = static_cast<std::uint32_t>(threads_.size());
    threads_.push_back(std::move(state));
  }
  t_owner = this;
  t_state = raw;
  return raw;
}

std::uint32_t Profiler::child_for(ThreadState& ts, std::uint32_t parent,
                                  const char* name) {
  for (const std::uint32_t c : ts.nodes[parent].children) {
    // Pointer equality first: scope names are string literals, and the
    // same site always passes the same pointer.
    if (ts.nodes[c].name == name ||
        std::strcmp(ts.nodes[c].name, name) == 0) {
      return c;
    }
  }
  const auto idx = static_cast<std::uint32_t>(ts.nodes.size());
  Node n;
  n.name = name;
  n.parent = parent;
  ts.nodes.push_back(std::move(n));
  ts.nodes[parent].children.push_back(idx);
  return idx;
}

void Profiler::enter(const char* name) {
  ThreadState* ts = (t_owner == this)
                        ? static_cast<ThreadState*>(t_state)
                        : register_thread();
  const std::uint32_t node = child_for(*ts, ts->stack.back(), name);
  ++ts->nodes[node].calls;
  ts->stack.push_back(node);
  ts->starts.push_back(now_ns());
}

void Profiler::leave() {
  ThreadState* ts = static_cast<ThreadState*>(t_state);
  if (ts == nullptr || t_owner != this || ts->stack.size() <= 1) return;
  const std::uint64_t end = now_ns();
  const std::uint32_t node = ts->stack.back();
  const std::uint64_t start = ts->starts.back();
  ts->stack.pop_back();
  ts->starts.pop_back();
  ts->nodes[node].total_ns += end - start;
  if (ts->spans.size() < opts_.max_spans_per_thread) {
    ts->spans.push_back({ts->nodes[node].name, start, end - start});
  } else {
    ++ts->dropped;
  }
}

std::vector<Profiler::NodeReport> Profiler::merged_tree() const {
  // Merge per-thread trees by path. A std::map keyed by the full path
  // yields a stable, alphabetical-within-depth order; each entry keeps
  // the insertion-free aggregate.
  struct Agg {
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t child_ns = 0;
    std::string name;
    int depth = 0;
  };
  std::map<std::string, Agg> merged;

  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& ts : threads_) {
    // Pre-order walk of this thread's tree, accumulating into `merged`.
    struct Item {
      std::uint32_t node;
      std::string path;
      int depth;
    };
    std::vector<Item> work;
    for (auto it = ts->nodes[0].children.rbegin();
         it != ts->nodes[0].children.rend(); ++it) {
      work.push_back({*it, "", 0});
    }
    while (!work.empty()) {
      const Item item = work.back();
      work.pop_back();
      const Node& n = ts->nodes[item.node];
      const std::string path =
          item.path.empty() ? n.name : item.path + "/" + n.name;
      Agg& a = merged[path];
      a.calls += n.calls;
      a.total_ns += n.total_ns;
      a.name = n.name;
      a.depth = item.depth;
      std::uint64_t child_total = 0;
      for (const std::uint32_t c : n.children) {
        child_total += ts->nodes[c].total_ns;
      }
      a.child_ns += child_total;
      for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
        work.push_back({*it, path, item.depth + 1});
      }
    }
  }

  std::vector<NodeReport> out;
  out.reserve(merged.size());
  for (const auto& [path, a] : merged) {
    NodeReport r;
    r.path = path;
    r.name = a.name;
    r.depth = a.depth;
    r.calls = a.calls;
    r.total_ns = a.total_ns;
    r.self_ns = a.total_ns > a.child_ns ? a.total_ns - a.child_ns : 0;
    out.push_back(std::move(r));
  }
  // Map order sorts "a/b" before "a0" lexicographically but always keeps a
  // parent before its children ('/' sorts low among the characters scope
  // names use), which is all the indented rendering needs.
  return out;
}

std::string Profiler::report_text() const {
  const auto tree = merged_tree();
  std::uint64_t top_total = 0;
  for (const auto& n : tree) {
    if (n.depth == 0) top_total += n.total_ns;
  }
  std::ostringstream os;
  os << "[ppssd] wall-clock profile: " << fmt_seconds(top_total)
     << " profiled across " << thread_count() << " thread(s)\n";
  char line[256];
  std::snprintf(line, sizeof line, "  %-40s %10s %12s %12s\n", "scope",
                "calls", "total", "self");
  os << line;
  for (const auto& n : tree) {
    const std::string label = std::string(
        static_cast<std::size_t>(n.depth) * 2, ' ') + n.name;
    std::snprintf(line, sizeof line, "  %-40s %10llu %12s %12s\n",
                  label.c_str(),
                  static_cast<unsigned long long>(n.calls),
                  fmt_seconds(n.total_ns).c_str(),
                  fmt_seconds(n.self_ns).c_str());
    os << line;
  }
  return os.str();
}

void Profiler::write_chrome_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
         "\"args\":{\"name\":\"ppssd wall-clock\"}}";
  char buf[256];
  std::uint64_t spans = 0;
  std::uint64_t dropped = 0;
  for (const auto& ts : threads_) {
    std::snprintf(buf, sizeof buf,
                  ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%u,\"args\":{\"name\":\"host thread %u\"}}",
                  ts->tid, ts->tid);
    out << buf;
    for (const Span& s : ts->spans) {
      std::snprintf(buf, sizeof buf,
                    ",{\"name\":\"%s\",\"cat\":\"wall\",\"ph\":\"X\","
                    "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u}",
                    s.name, static_cast<double>(s.start_ns) / 1e3,
                    static_cast<double>(s.dur_ns) / 1e3, ts->tid);
      out << buf;
      ++spans;
    }
    dropped += ts->dropped;
  }
  std::snprintf(buf, sizeof buf,
                ",{\"name\":\"profile_closed\",\"cat\":\"wall\",\"ph\":\"i\","
                "\"s\":\"p\",\"ts\":0,\"pid\":1,\"tid\":0,"
                "\"args\":{\"spans\":%llu,\"dropped\":%llu}}",
                static_cast<unsigned long long>(spans),
                static_cast<unsigned long long>(dropped));
  out << buf << "]}";
}

void Profiler::finalize() {
  if (finalized_) return;
  finalized_ = true;
  if (!opts_.json_path.empty()) {
    std::ofstream out(opts_.json_path);
    if (out) write_chrome_json(out);
  }
  if (opts_.report_to_stderr) {
    std::fputs(report_text().c_str(), stderr);
  }
}

std::uint64_t Profiler::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const auto& ts : threads_) n += ts->spans.size();
  return n;
}

std::uint64_t Profiler::dropped_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const auto& ts : threads_) n += ts->dropped;
  return n;
}

std::size_t Profiler::thread_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return threads_.size();
}

}  // namespace ppssd::perf
