// Live replay progress for the experiment runner: one serialized status
// channel for all concurrently-simulating matrix cells.
//
// PR 2 made `PPSSD_JOBS>1` runs common, and the runner's raw stderr
// prints interleaved garbled; this class is the single funnel. It owns a
// mutex around every write, tracks one ProgressCell per in-flight matrix
// cell, and — when live output is active — repaints a single `\r` status
// line with percent / reqs-per-second / ETA per active cell.
//
// Activation policy (the global() instance):
//   PPSSD_PROGRESS=0  force-silent, even on a TTY
//   PPSSD_PROGRESS=1  force-enabled, even when stderr is a pipe
//   (unset)           enabled iff stderr is a TTY
// The live repaint (\r redraw) additionally requires a TTY — a forced
// non-TTY run gets plain sequential lines, never control characters.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ppssd::perf {

/// Minimal sink the replayer ticks; keeps sim code decoupled from the
/// reporter. `begin` fixes the denominator, `advance` is monotone.
class ProgressSink {
 public:
  virtual ~ProgressSink() = default;
  virtual void begin(std::uint64_t total_requests) = 0;
  virtual void advance(std::uint64_t done_requests) = 0;
};

class ProgressReporter;

/// One matrix cell's progress handle (owned by the reporter).
class ProgressCell final : public ProgressSink {
 public:
  void begin(std::uint64_t total_requests) override;
  void advance(std::uint64_t done_requests) override;

 private:
  friend class ProgressReporter;
  ProgressReporter* reporter_ = nullptr;
  std::size_t index_ = 0;
};

class ProgressReporter {
 public:
  struct Options {
    bool enabled = false;
    bool live = false;           // \r repaints (requires a real terminal)
    std::ostream* out = nullptr; // nullptr = std::cerr
    /// Minimum milliseconds between repaints (live mode).
    std::uint64_t repaint_ms = 100;
  };

  explicit ProgressReporter(Options opts);
  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;
  ~ProgressReporter();

  /// Process-wide reporter configured from PPSSD_PROGRESS + isatty(2).
  static ProgressReporter& global();

  [[nodiscard]] bool enabled() const { return opts_.enabled; }

  /// Serialized status line ("[ppssd] simulating …"). Swallowed when the
  /// reporter is disabled; never interleaves with the repaint line.
  void note(const std::string& text);

  /// Total cells the current matrix batch will run (shown as "k/n
  /// cells"); resets the finished count for the new batch.
  void set_expected_cells(std::size_t n);

  /// Register a cell; the returned sink stays valid until the reporter is
  /// destroyed (handles are stable — deque-like storage).
  ProgressCell* start_cell(std::string label);

  /// Mark a cell finished and print its one-line summary.
  void finish_cell(ProgressCell* cell, double wall_seconds,
                   std::uint64_t requests);

  /// Current status line, exactly as a repaint would draw it (tests).
  [[nodiscard]] std::string status_line();

  /// Render helpers (pure; exposed for tests).
  [[nodiscard]] static std::string format_rate(double reqs_per_sec);
  [[nodiscard]] static std::string format_eta(double seconds);

 private:
  friend class ProgressCell;

  struct CellState {
    std::string label;
    std::uint64_t total = 0;
    std::uint64_t done = 0;
    std::chrono::steady_clock::time_point start;
    bool begun = false;
    bool finished = false;
  };

  void cell_begin(std::size_t index, std::uint64_t total);
  void cell_advance(std::size_t index, std::uint64_t done);
  void maybe_repaint_locked();
  void clear_line_locked();
  [[nodiscard]] std::string status_line_locked() const;

  Options opts_;
  std::ostream* out_;
  std::mutex mu_;
  std::vector<std::unique_ptr<ProgressCell>> handles_;
  std::vector<CellState> cells_;
  std::size_t expected_cells_ = 0;
  std::size_t finished_cells_ = 0;
  std::size_t last_line_len_ = 0;
  std::chrono::steady_clock::time_point last_repaint_;
};

}  // namespace ppssd::perf
