// BENCH_perf.json: the machine-readable wall-clock perf trajectory.
//
// bench/perf_suite writes one BenchReport per run; tools/perf_compare
// diffs two of them with a noise tolerance. The schema (documented in
// DESIGN.md §8) is deliberately flat:
//
//   {
//     "schema": 1,
//     "config": {"blocks": 2048, "scale": 0.02, "jobs": 1},
//     "cells": [
//       {"key": "...", "scheme": "IPU", "trace": "ts0",
//        "requests": 20000, "ctrl_events": 123456,
//        "wall_seconds": 1.23, "reqs_per_sec": 16260.2,
//        "ctrl_events_per_sec": 100370.7,
//        "phases": {"setup": 0.01, "warmup": 0.40,
//                   "measure": 0.80, "report": 0.02}}
//     ],
//     "totals": {"wall_seconds": 7.4, "geomean_reqs_per_sec": 15800.0}
//   }
//
// Parsing reuses the telemetry JSON validator, so the artifact is
// round-trippable by construction and the tests hold it to that.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ppssd::perf {

struct BenchPhases {
  double setup_seconds = 0.0;
  double warmup_seconds = 0.0;
  double measure_seconds = 0.0;
  double report_seconds = 0.0;
};

struct BenchCell {
  std::string key;     // full experiment cache key (identity for diffs)
  std::string scheme;  // registry scheme name (cache/registry.h)
  std::string trace;   // profile name
  std::uint64_t requests = 0;
  std::uint64_t ctrl_events = 0;  // flash commands in the measured phase
  double wall_seconds = 0.0;
  double reqs_per_sec = 0.0;
  double ctrl_events_per_sec = 0.0;
  BenchPhases phases;
};

struct BenchReport {
  static constexpr int kSchemaVersion = 1;

  std::uint32_t blocks = 0;
  double scale = 0.0;
  std::size_t jobs = 1;
  std::vector<BenchCell> cells;

  [[nodiscard]] double total_wall_seconds() const;
  /// Geometric mean of per-cell host reqs/s (0 when empty).
  [[nodiscard]] double geomean_reqs_per_sec() const;

  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] static std::optional<BenchReport> from_json(
      const std::string& text);

  /// File convenience wrappers; load() returns nullopt on I/O or parse
  /// failure, save() returns false on I/O failure.
  [[nodiscard]] static std::optional<BenchReport> load(
      const std::string& path);
  [[nodiscard]] bool save(const std::string& path) const;
};

/// One phase's baseline-vs-current wall-time comparison. Phases are
/// time-based (lower is better), the opposite sense of the throughput
/// ratio: cur/base > 1 is a slowdown.
struct PhaseDelta {
  double base_seconds = 0.0;
  double cur_seconds = 0.0;
  /// cur/base; > 1 is a slowdown. 0 when the baseline time is 0.
  double ratio = 0.0;
  bool regression = false;  // ratio above 1 + tolerance on a gated phase
};

/// Phases shorter than this on both sides are never gated: sub-50 ms
/// timings are scheduler noise, not signal.
inline constexpr double kPhaseGateFloorSeconds = 0.05;

/// One cell's baseline-vs-current throughput comparison, plus the
/// per-phase wall-time breakdown (setup / warmup / measure). The phase
/// gates catch regressions the end-to-end rate hides — e.g. a warm-start
/// cache that silently stopped hitting shows up as a warmup-phase
/// regression long before it moves the overall req/s.
struct CellDelta {
  std::string key;
  double base_reqs_per_sec = 0.0;
  double cur_reqs_per_sec = 0.0;
  /// cur/base; < 1 is a slowdown. 0 when the baseline rate is 0.
  double ratio = 0.0;
  bool regression = false;  // ratio below 1 - tolerance
  PhaseDelta setup;
  PhaseDelta warmup;
  PhaseDelta measure;

  [[nodiscard]] bool phase_regression() const {
    return setup.regression || warmup.regression || measure.regression;
  }
};

struct BenchComparison {
  double tolerance = 0.0;
  std::vector<CellDelta> cells;
  std::vector<std::string> only_in_baseline;
  std::vector<std::string> only_in_current;

  [[nodiscard]] bool has_regression() const;
  /// Any matched cell with a gated phase slowdown (see CellDelta).
  [[nodiscard]] bool has_phase_regression() const;
  /// Worst (smallest) cur/base ratio over matched cells; 1.0 when none.
  [[nodiscard]] double worst_ratio() const;
  /// Human-readable per-cell delta table plus a verdict line.
  [[nodiscard]] std::string render() const;
};

/// Match cells by key and flag every cell whose throughput dropped by
/// more than `tolerance` (fraction, e.g. 0.25 = 25 % slower).
[[nodiscard]] BenchComparison compare_bench(const BenchReport& baseline,
                                            const BenchReport& current,
                                            double tolerance);

/// Shard-scaling table (DESIGN.md §15) over the report's shard cell
/// families: every group of keys "<group>/s<N>" that includes an s1
/// cell renders one row per shard count with the speedup over s1 and
/// the scaling efficiency (speedup / N). Returns "" when the report has
/// no such family, so callers can print the result unconditionally.
[[nodiscard]] std::string render_shard_scaling(const BenchReport& report);

}  // namespace ppssd::perf
