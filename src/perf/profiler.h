// Wall-clock self-profiler: RAII hierarchical scopes, per-thread frames,
// a merged call-tree report, and a Chrome trace-event timeline.
//
// This is the *host-side* twin of src/telemetry: telemetry answers "where
// did simulated time go inside the device", this layer answers "where did
// the simulator's own wall-clock time go". The two never mix clocks — the
// telemetry trace uses pid 0 (sim time), the profiler emits pid 1 (wall
// time), so the JSON artifacts can be concatenated into one Perfetto view
// without the domains colliding.
//
// Usage contract:
//
//  * `Profiler::init_from_env()` installs a process-wide instance when
//    PPSSD_PROFILE=f.json is set (idempotent, thread-safe). The instance
//    writes f.json and a call-tree summary to stderr at process exit.
//  * Instrumented code uses `PPSSD_PROFILE_SCOPE("name")`. When no
//    profiler is installed the scope costs one null-pointer test — there
//    is no lock, no clock read, and no allocation on the disabled path.
//  * When enabled, enter/leave touch only thread-local state: a frame
//    stack plus an interned call-tree (nodes keyed by parent + name).
//    The only lock is taken once per thread, at registration.
//  * merged_tree()/report_text()/write_chrome_json() merge the per-thread
//    trees by scope-name path. Call them (and finalize()) only while no
//    other thread is inside a scope — the runner satisfies this by
//    joining its worker pool before the process exits.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ppssd::perf {

class Profiler {
 public:
  struct Options {
    std::string json_path;  // empty = no JSON artifact
    /// Cap on timeline span events kept per thread; beyond it the call
    /// tree still accumulates and drops are counted in-band.
    std::size_t max_spans_per_thread = 1u << 20;
    bool report_to_stderr = true;
  };

  explicit Profiler(Options opts);
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;
  ~Profiler();

  /// The installed process-wide profiler (nullptr = profiling disabled).
  [[nodiscard]] static Profiler* instance() { return instance_; }

  /// Install from PPSSD_PROFILE once. Safe to call from multiple threads;
  /// only the first call reads the environment.
  static void init_from_env();

  /// Swap the installed instance (testing); returns the previous one.
  static Profiler* exchange_instance(Profiler* p);

  // -- hot path (only reached when a profiler is installed) --------------
  void enter(const char* name);
  void leave();

  // -- reporting ----------------------------------------------------------
  /// One row of the merged (cross-thread) call tree, pre-order.
  struct NodeReport {
    std::string path;  // "experiment/measure"
    std::string name;  // leaf scope name
    int depth = 0;
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;  // inclusive
    std::uint64_t self_ns = 0;   // total minus profiled children
  };
  [[nodiscard]] std::vector<NodeReport> merged_tree() const;

  /// Human-readable indented call-tree summary.
  [[nodiscard]] std::string report_text() const;

  /// Chrome trace-event JSON: every retained span as a complete event on
  /// pid 1 (wall-clock domain), tid = thread registration index, ts/dur
  /// in microseconds since profiler construction. Ends with a
  /// "profile_closed" instant carrying span/drop counts in-band.
  void write_chrome_json(std::ostream& out) const;

  /// Write the JSON artifact and the stderr summary once. Runs from the
  /// destructor; exposed so tests and tools can flush eagerly.
  void finalize();

  [[nodiscard]] std::uint64_t span_count() const;
  [[nodiscard]] std::uint64_t dropped_spans() const;
  [[nodiscard]] std::size_t thread_count() const;

 private:
  struct Node {
    const char* name;
    std::uint32_t parent;
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
    std::vector<std::uint32_t> children;
  };
  struct Span {
    const char* name;
    std::uint64_t start_ns;
    std::uint64_t dur_ns;
  };
  struct ThreadState {
    std::uint32_t tid = 0;
    std::vector<Node> nodes;               // [0] is the synthetic root
    std::vector<std::uint32_t> stack;      // open node indices
    std::vector<std::uint64_t> starts;     // start times of open frames
    std::vector<Span> spans;               // retained timeline events
    std::uint64_t dropped = 0;
  };

  [[nodiscard]] std::uint64_t now_ns() const;
  ThreadState* register_thread();
  static std::uint32_t child_for(ThreadState& ts, std::uint32_t parent,
                                 const char* name);

  inline static Profiler* instance_ = nullptr;

  Options opts_;
  std::uint64_t epoch_ns_;  // steady_clock at construction
  mutable std::mutex mu_;   // guards threads_ (registration + reporting)
  std::vector<std::unique_ptr<ThreadState>> threads_;
  bool finalized_ = false;
};

/// RAII frame: opens a profiler scope when a profiler is installed.
class ProfileScope {
 public:
  explicit ProfileScope(const char* name) : prof_(Profiler::instance()) {
    if (prof_) prof_->enter(name);
  }
  ~ProfileScope() {
    if (prof_) prof_->leave();
  }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  Profiler* prof_;
};

#define PPSSD_PROFILE_CONCAT2(a, b) a##b
#define PPSSD_PROFILE_CONCAT(a, b) PPSSD_PROFILE_CONCAT2(a, b)
/// Profile the enclosing block under `name` (a string literal).
#define PPSSD_PROFILE_SCOPE(name) \
  ::ppssd::perf::ProfileScope PPSSD_PROFILE_CONCAT(ppssd_prof_scope_, \
                                                   __LINE__)(name)

}  // namespace ppssd::perf
