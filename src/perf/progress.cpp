#include "perf/progress.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>

namespace ppssd::perf {

void ProgressCell::begin(std::uint64_t total_requests) {
  reporter_->cell_begin(index_, total_requests);
}

void ProgressCell::advance(std::uint64_t done_requests) {
  reporter_->cell_advance(index_, done_requests);
}

ProgressReporter::ProgressReporter(Options opts)
    : opts_(opts),
      out_(opts.out != nullptr ? opts.out : &std::cerr),
      last_repaint_(std::chrono::steady_clock::now() -
                    std::chrono::hours(1)) {}

ProgressReporter::~ProgressReporter() {
  std::lock_guard<std::mutex> lock(mu_);
  clear_line_locked();
}

ProgressReporter& ProgressReporter::global() {
  static ProgressReporter reporter = [] {
    Options opts;
    const bool tty = isatty(fileno(stderr)) != 0;
    const char* env = std::getenv("PPSSD_PROGRESS");
    if (env != nullptr && *env != '\0') {
      opts.enabled = std::string(env) != "0";
    } else {
      opts.enabled = tty;
    }
    opts.live = opts.enabled && tty;
    return ProgressReporter(opts);
  }();
  return reporter;
}

void ProgressReporter::note(const std::string& text) {
  if (!opts_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  clear_line_locked();
  *out_ << text << '\n';
  out_->flush();
}

void ProgressReporter::set_expected_cells(std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  // A new matrix batch starts counting from zero (bench binaries run
  // several run_all batches per process).
  expected_cells_ = n;
  finished_cells_ = 0;
}

ProgressCell* ProgressReporter::start_cell(std::string label) {
  std::lock_guard<std::mutex> lock(mu_);
  auto handle = std::make_unique<ProgressCell>();
  handle->reporter_ = this;
  handle->index_ = cells_.size();
  CellState state;
  state.label = std::move(label);
  state.start = std::chrono::steady_clock::now();
  cells_.push_back(std::move(state));
  handles_.push_back(std::move(handle));
  return handles_.back().get();
}

void ProgressReporter::finish_cell(ProgressCell* cell, double wall_seconds,
                                   std::uint64_t requests) {
  if (cell == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  CellState& state = cells_[cell->index_];
  state.finished = true;
  ++finished_cells_;
  if (!opts_.enabled) return;
  clear_line_locked();
  const double rate =
      wall_seconds > 0.0 ? static_cast<double>(requests) / wall_seconds : 0.0;
  char buf[192];
  std::snprintf(buf, sizeof buf, "[ppssd]   done %-28s %7.1fs  %s",
                state.label.c_str(), wall_seconds,
                format_rate(rate).c_str());
  *out_ << buf;
  if (expected_cells_ > 0) {
    *out_ << "  (" << finished_cells_ << '/' << expected_cells_ << " cells)";
  }
  *out_ << '\n';
  out_->flush();
}

void ProgressReporter::cell_begin(std::size_t index, std::uint64_t total) {
  std::lock_guard<std::mutex> lock(mu_);
  CellState& state = cells_[index];
  state.total = total;
  state.done = 0;
  state.begun = true;
  state.start = std::chrono::steady_clock::now();
}

void ProgressReporter::cell_advance(std::size_t index, std::uint64_t done) {
  std::lock_guard<std::mutex> lock(mu_);
  cells_[index].done = std::min(done, cells_[index].total);
  maybe_repaint_locked();
}

void ProgressReporter::maybe_repaint_locked() {
  if (!opts_.live) return;
  const auto now = std::chrono::steady_clock::now();
  if (now - last_repaint_ < std::chrono::milliseconds(opts_.repaint_ms)) {
    return;
  }
  last_repaint_ = now;
  const std::string line = status_line_locked();
  // Overwrite in place; pad with spaces when the new line is shorter.
  *out_ << '\r' << line;
  if (line.size() < last_line_len_) {
    *out_ << std::string(last_line_len_ - line.size(), ' ');
  }
  out_->flush();
  last_line_len_ = line.size();
}

void ProgressReporter::clear_line_locked() {
  if (last_line_len_ == 0) return;
  *out_ << '\r' << std::string(last_line_len_, ' ') << '\r';
  last_line_len_ = 0;
}

std::string ProgressReporter::status_line() {
  std::lock_guard<std::mutex> lock(mu_);
  return status_line_locked();
}

std::string ProgressReporter::status_line_locked() const {
  std::ostringstream os;
  os << "[ppssd] " << finished_cells_ << '/'
     << (expected_cells_ > 0 ? expected_cells_ : cells_.size()) << " cells";
  const auto now = std::chrono::steady_clock::now();
  int shown = 0;
  int active = 0;
  for (const CellState& c : cells_) {
    if (c.finished || !c.begun) continue;
    ++active;
    if (shown == 3) continue;  // keep the line terminal-width friendly
    ++shown;
    const double elapsed =
        std::chrono::duration<double>(now - c.start).count();
    const double rate =
        elapsed > 0.0 ? static_cast<double>(c.done) / elapsed : 0.0;
    os << " | " << c.label;
    if (c.total > 0) {
      os << ' '
         << static_cast<int>(100.0 * static_cast<double>(c.done) /
                             static_cast<double>(c.total))
         << '%';
    }
    os << ' ' << format_rate(rate);
    if (c.total > c.done && rate > 0.0) {
      os << " eta "
         << format_eta(static_cast<double>(c.total - c.done) / rate);
    }
  }
  if (active > shown) {
    os << " | +" << (active - shown) << " more";
  }
  return os.str();
}

std::string ProgressReporter::format_rate(double reqs_per_sec) {
  char buf[32];
  if (reqs_per_sec >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2f Mreq/s", reqs_per_sec / 1e6);
  } else if (reqs_per_sec >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.1f kreq/s", reqs_per_sec / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f req/s", reqs_per_sec);
  }
  return buf;
}

std::string ProgressReporter::format_eta(double seconds) {
  char buf[32];
  if (seconds >= 3600.0) {
    std::snprintf(buf, sizeof buf, "%.1fh", seconds / 3600.0);
  } else if (seconds >= 60.0) {
    std::snprintf(buf, sizeof buf, "%dm%02ds", static_cast<int>(seconds) / 60,
                  static_cast<int>(seconds) % 60);
  } else {
    std::snprintf(buf, sizeof buf, "%ds", static_cast<int>(seconds));
  }
  return buf;
}

}  // namespace ppssd::perf
