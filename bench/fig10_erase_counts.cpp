// Figure 10: erase counts in SLC-mode (a) and MLC (b) blocks.
//
// Paper shape: (a) Baseline erases SLC the most; IPU > MGA (MGA's higher
// utilization means fewer SLC GCs). (b) IPU erases MLC the least.
// Endurance ratio SLC:MLC is ~10:1 [8], so shifting erases to the SLC
// region extends overall device lifetime.
#include <cstdio>
#include <vector>

#include "bench_util.h"

using namespace ppssd;
using namespace ppssd::bench;

int main() {
  print_scale_banner("Figure 10: erase counts per region");

  Runner runner;
  const auto grouped = matrix_by_trace(runner);
  const auto schemes = Runner::paper_schemes();

  std::vector<std::string> header = {"Trace"};
  header.insert(header.end(), schemes.begin(), schemes.end());
  Table slc(header);
  Table mlc(header);
  for (const auto& trace : Runner::paper_traces()) {
    const auto& cells = grouped.at(trace);
    std::vector<std::string> srow = {trace};
    std::vector<std::string> mrow = {trace};
    for (const auto& r : cells) {
      srow.push_back(Table::count(r.slc_erases));
      mrow.push_back(Table::count(r.mlc_erases));
    }
    slc.add_row(srow);
    mlc.add_row(mrow);
  }
  std::printf("%s\n", slc.render("(a) erases in SLC-mode blocks").c_str());
  std::printf("%s\n", mlc.render("(b) erases in MLC blocks").c_str());
  std::printf("Shape checks: Baseline max in (a); IPU min in (b).\n");
  return 0;
}
