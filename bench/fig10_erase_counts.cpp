// Figure 10: erase counts in SLC-mode (a) and MLC (b) blocks.
//
// Paper shape: (a) Baseline erases SLC the most; IPU > MGA (MGA's higher
// utilization means fewer SLC GCs). (b) IPU erases MLC the least.
// Endurance ratio SLC:MLC is ~10:1 [8], so shifting erases to the SLC
// region extends overall device lifetime.
#include <cstdio>

#include "bench_util.h"

using namespace ppssd;
using namespace ppssd::bench;

int main() {
  print_scale_banner("Figure 10: erase counts per region");

  Runner runner;
  const auto grouped = matrix_by_trace(runner);

  Table slc({"Trace", "Baseline", "MGA", "IPU"});
  Table mlc({"Trace", "Baseline", "MGA", "IPU"});
  for (const auto& trace : Runner::paper_traces()) {
    const auto& cells = grouped.at(trace);
    slc.add_row({trace, Table::count(cells[0].slc_erases),
                 Table::count(cells[1].slc_erases),
                 Table::count(cells[2].slc_erases)});
    mlc.add_row({trace, Table::count(cells[0].mlc_erases),
                 Table::count(cells[1].mlc_erases),
                 Table::count(cells[2].mlc_erases)});
  }
  std::printf("%s\n", slc.render("(a) erases in SLC-mode blocks").c_str());
  std::printf("%s\n", mlc.render("(b) erases in MLC blocks").c_str());
  std::printf("Shape checks: Baseline max in (a); IPU min in (b).\n");
  return 0;
}
