// Figure 5: I/O response time per trace for Baseline / MGA / IPU.
//
// Paper shape: vs Baseline, MGA cuts overall time ~6.4% and IPU ~14.9% on
// average; IPU cuts write latency 23.8% vs Baseline and 17.9% vs MGA, and
// read latency up to 6.3% vs MGA.
#include <cstdio>
#include <vector>

#include "bench_util.h"

using namespace ppssd;
using namespace ppssd::bench;

int main() {
  print_scale_banner("Figure 5: I/O response time distribution");

  Runner runner;
  const auto grouped = matrix_by_trace(runner);

  Table table({"Trace", "scheme", "read ms", "write ms", "overall ms",
               "vs Baseline"});
  std::vector<double> base_overall, mga_overall, ipu_overall;
  std::vector<double> base_write, mga_write, ipu_write;
  std::vector<double> mga_read, ipu_read;
  for (const auto& trace : Runner::paper_traces()) {
    const auto& cells = grouped.at(trace);
    const auto& base = cells[0];
    for (const auto& r : cells) {
      table.add_row({trace, cache::scheme_name(r.spec.scheme),
                     Table::fmt(r.avg_read_ms),
                     Table::fmt(r.avg_write_ms),
                     Table::fmt(r.avg_overall_ms),
                     core::delta_pct(r.avg_overall_ms, base.avg_overall_ms)});
    }
    base_overall.push_back(base.avg_overall_ms);
    mga_overall.push_back(cells[1].avg_overall_ms);
    ipu_overall.push_back(cells[2].avg_overall_ms);
    base_write.push_back(base.avg_write_ms);
    mga_write.push_back(cells[1].avg_write_ms);
    ipu_write.push_back(cells[2].avg_write_ms);
    mga_read.push_back(cells[1].avg_read_ms);
    ipu_read.push_back(cells[2].avg_read_ms);
  }
  std::printf("%s\n", table.render().c_str());

  auto mean = [](const std::vector<double>& v) {
    double s = 0;
    for (const double x : v) s += x;
    return s / static_cast<double>(v.size());
  };
  std::printf("averages:\n");
  std::printf("  overall: MGA vs Baseline %s, IPU vs Baseline %s "
              "(paper: -6.4%% / -14.9%%)\n",
              core::delta_pct(mean(mga_overall), mean(base_overall)).c_str(),
              core::delta_pct(mean(ipu_overall), mean(base_overall)).c_str());
  std::printf("  write:   IPU vs Baseline %s, IPU vs MGA %s "
              "(paper: -23.8%% / -17.9%%)\n",
              core::delta_pct(mean(ipu_write), mean(base_write)).c_str(),
              core::delta_pct(mean(ipu_write), mean(mga_write)).c_str());
  std::printf("  read:    IPU vs MGA %s (paper: up to -6.3%%)\n",
              core::delta_pct(mean(ipu_read), mean(mga_read)).c_str());
  return 0;
}
