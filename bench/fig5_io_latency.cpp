// Figure 5: I/O response time per trace for every registered scheme.
//
// Paper shape: vs Baseline, MGA cuts overall time ~6.4% and IPU ~14.9% on
// average; IPU cuts write latency 23.8% vs Baseline and 17.9% vs MGA, and
// read latency up to 6.3% vs MGA.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace ppssd;
using namespace ppssd::bench;

namespace {

struct SchemeMeans {
  std::vector<double> overall, write, read;
};

double mean(const std::vector<double>& v) {
  double s = 0;
  for (const double x : v) s += x;
  return s / static_cast<double>(v.size());
}

}  // namespace

int main() {
  print_scale_banner("Figure 5: I/O response time distribution");

  Runner runner;
  const auto grouped = matrix_by_trace(runner);
  const auto schemes = Runner::paper_schemes();

  Table table({"Trace", "scheme", "read ms", "write ms", "overall ms",
               "vs " + schemes.front()});
  // Per-scheme per-trace series, in registry order: schemes[0] is the
  // comparison baseline of every figure delta.
  std::map<std::string, SchemeMeans> by_scheme;
  for (const auto& trace : Runner::paper_traces()) {
    const auto& cells = grouped.at(trace);
    const auto& base = cells[0];
    for (const auto& r : cells) {
      table.add_row({trace, r.spec.scheme, Table::fmt(r.avg_read_ms),
                     Table::fmt(r.avg_write_ms),
                     Table::fmt(r.avg_overall_ms),
                     core::delta_pct(r.avg_overall_ms, base.avg_overall_ms)});
      auto& m = by_scheme[r.spec.scheme];
      m.overall.push_back(r.avg_overall_ms);
      m.write.push_back(r.avg_write_ms);
      m.read.push_back(r.avg_read_ms);
    }
  }
  std::printf("%s\n", table.render().c_str());

  const auto& base = by_scheme.at(schemes.front());
  std::printf("averages (overall, vs %s):\n", schemes.front().c_str());
  for (const auto& name : schemes) {
    if (name == schemes.front()) continue;
    const auto& m = by_scheme.at(name);
    std::printf("  %-8s overall %s, write %s, read %s\n", name.c_str(),
                core::delta_pct(mean(m.overall), mean(base.overall)).c_str(),
                core::delta_pct(mean(m.write), mean(base.write)).c_str(),
                core::delta_pct(mean(m.read), mean(base.read)).c_str());
  }
  if (by_scheme.count("MGA") && by_scheme.count("IPU")) {
    const auto& mga = by_scheme.at("MGA");
    const auto& ipu = by_scheme.at("IPU");
    std::printf("paper notes: overall MGA -6.4%% / IPU -14.9%%; "
                "IPU write vs MGA %s (paper -17.9%%), "
                "IPU read vs MGA %s (paper up to -6.3%%)\n",
                core::delta_pct(mean(ipu.write), mean(mga.write)).c_str(),
                core::delta_pct(mean(ipu.read), mean(mga.read)).c_str());
  }
  return 0;
}
