// Figure 11: normalized mapping-table size per scheme.
//
// Paper shape: MGA needs ~23.7% more mapping memory than Baseline's pure
// page map; IPU only ~0.84% more. IPU's auxiliary bookkeeping (block-level
// labels + IS' values) is reported separately, as in Section 4.4.1.
#include <cstdio>

#include "bench_util.h"
#include "cache/registry.h"
#include "core/experiment.h"
#include "ftl/mapping_footprint.h"
#include "nand/geometry.h"

using namespace ppssd;
using namespace ppssd::bench;

int main() {
  print_scale_banner("Figure 11: normalized mapping table size");

  const auto spec = Runner::default_spec();
  const SsdConfig cfg = core::config_for(spec);
  const nand::Geometry geom(cfg.geometry, cfg.cache.slc_ratio);
  const ftl::MappingFootprint fp(geom);

  // Every registered scheme contributes a row via its footprint model;
  // the first (Baseline) anchors the normalization.
  const auto& registry = cache::SchemeRegistry::instance();
  const auto base = registry.schemes().front().footprint(fp);

  Table table({"scheme", "mapping bytes", "normalized", "aux bytes",
               "vs " + registry.schemes().front().name});
  for (const auto& info : registry.schemes()) {
    const auto r = info.footprint(fp);
    table.add_row({info.name, Table::count(r.mapping_total()),
                   Table::fmt(r.normalized(), 4), Table::count(r.aux_bytes),
                   core::delta_pct(static_cast<double>(r.mapping_total()),
                                   static_cast<double>(base.mapping_total()))});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper: MGA +23.7%%, IPU +0.84%% vs Baseline.\n");

  // Paper-scale sanity numbers from Section 4.4.1 (65536-block device):
  const SsdConfig paper = SsdConfig::paper();
  const nand::Geometry pg(paper.geometry, paper.cache.slc_ratio);
  const ftl::MappingFootprint pfp(pg);
  const auto pipu = pfp.ipu();
  std::printf(
      "paper-scale IPU aux bookkeeping: %.1f KiB (paper: 0.8 KiB labels + "
      "819.2 KiB IS' values)\n",
      static_cast<double>(pipu.aux_bytes) / 1024.0);
  return 0;
}
