// Table 1: size distribution of updated requests in the block I/O traces.
//
// Regenerates the paper's table from the synthetic trace profiles (or,
// with the real MSR files on disk, from them via trace_replay --file).
#include <cstdio>

#include "bench_util.h"
#include "core/experiment.h"
#include "trace/profiles.h"
#include "trace/synthetic.h"
#include "trace/trace_stats.h"

using namespace ppssd;

int main() {
  bench::print_scale_banner(
      "Table 1: size distribution of updated requests");

  const auto spec = core::Runner::default_spec();
  const SsdConfig cfg = core::config_for(spec);
  const std::uint64_t logical_bytes =
      nand::Geometry(cfg.geometry, cfg.cache.slc_ratio).logical_subpages() *
      kSubpageBytes;

  core::Table table({"Trace", "Size<=4K", "4K<Size<=8K", "Size>8K",
                     "paper<=4K", "paper(4,8K]", "paper>8K"});
  for (const auto& profile : trace::paper_profiles()) {
    trace::SyntheticWorkload workload(profile, logical_bytes,
                                      spec.trace_scale);
    const auto stats = trace::analyze(workload);
    table.add_row({profile.name, core::Table::pct(stats.update_frac_le_4k()),
                   core::Table::pct(stats.update_frac_le_8k()),
                   core::Table::pct(stats.update_frac_gt_8k()),
                   core::Table::pct(profile.write_sizes.le_4k),
                   core::Table::pct(profile.write_sizes.le_8k),
                   core::Table::pct(1.0 - profile.write_sizes.le_4k -
                                    profile.write_sizes.le_8k)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
