// Sharded window-pricing bench (DESIGN.md §15): drives the controller
// layer directly with synthetic admission windows on a million-block-
// class device geometry (TB-class: 32 chips over 8 channels — the
// controller prices against chip/channel horizons, so the block count
// enters only through the geometry, not through array state).
//
//   ./shard_bench [report.json]      default output: BENCH_perf.json
//
// Cells (family "shard/", merged into the shared report):
//   shard/ctrl/seq  — sequential Controller::schedule() reference
//   shard/ctrl/sN   — ShardExecutor::price_window at N shards plus the
//                     aggregate apply_window merge (the fast commit mode
//                     a replay with no observers uses), N in {1,2,4,8}
//
// The windows mirror a replay's structure: arrival-ordered floors, ~25%
// of ops chained to the previous op on the same chip (GC relocation
// chains — shard-local, no synchronization), and ~0.5% random
// cross-window dependencies (the cross-shard cuts that force segment
// barriers). Before timing, the s4 outcomes are checked bit-identical
// against the sequential reference on every window.
//
// Wall-clock speedup needs hardware threads: on a single-core host the
// sN cells measure synchronization overhead, not scaling — compare
// shard cells only across machines with the same core budget (the CI
// perf-smoke runner pins this).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/units.h"
#include "perf/bench_report.h"
#include "sim/controller.h"
#include "sim/shard_executor.h"

using namespace ppssd;
using namespace ppssd::bench;

namespace {

constexpr std::size_t kWindowOps = 8192;
constexpr int kWindows = 8;

/// One synthetic admission window against the device geometry.
std::vector<sim::ShardExecutor::WinItem> make_window(Rng& rng,
                                                     std::uint32_t chips,
                                                     std::uint32_t channels,
                                                     SimTime* now) {
  std::vector<sim::ShardExecutor::WinItem> items;
  items.reserve(kWindowOps);
  std::vector<std::uint32_t> last_on_chip(chips, sim::ShardExecutor::kNoDep);
  for (std::size_t i = 0; i < kWindowOps; ++i) {
    *now += rng.next_below(us_to_ns(10.0));
    sim::ShardExecutor::WinItem it;
    cache::PhysOp& op = it.op;
    op.chip = static_cast<std::uint32_t>(rng.next_below(chips));
    op.channel = op.chip % channels;
    const std::uint64_t kind = rng.next_below(20);
    if (kind < 9) {
      op.kind = cache::PhysOp::Kind::kRead;
    } else if (kind < 18) {
      op.kind = cache::PhysOp::Kind::kProgram;
    } else if (kind < 19) {
      op.kind = cache::PhysOp::Kind::kReprogram;
    } else {
      op.kind = cache::PhysOp::Kind::kErase;
    }
    op.mode = op.kind == cache::PhysOp::Kind::kReprogram || rng.next_below(2)
                  ? CellMode::kMlc
                  : CellMode::kSlc;
    op.subpages = static_cast<std::uint32_t>(1 + rng.next_below(4));
    op.ber = 0.0;
    op.background =
        op.kind == cache::PhysOp::Kind::kErase || rng.next_below(3) == 0;
    op.origin = op.background ? cache::OpOrigin::kGc : cache::OpOrigin::kHost;
    it.floor = *now;

    const std::uint64_t r = rng.next_below(1000);
    if (r < 250 && last_on_chip[op.chip] != sim::ShardExecutor::kNoDep) {
      it.dep = last_on_chip[op.chip];  // shard-local GC chain
    } else if (r < 255 && i > 0) {
      it.dep = static_cast<std::uint32_t>(rng.next_below(i));  // cross cut
    }
    last_on_chip[op.chip] = static_cast<std::uint32_t>(i);
    items.push_back(it);
  }
  return items;
}

using Windows = std::vector<std::vector<sim::ShardExecutor::WinItem>>;

/// Sequential reference: one pass of schedule() over every window.
Timing time_sequential(const SsdConfig& cfg, std::uint32_t chips,
                       std::uint32_t channels, const Windows& windows) {
  using clock = std::chrono::steady_clock;
  Timing t;
  std::vector<SimTime> ends(kWindowOps);
  while (t.seconds < kMinMeasureSeconds) {
    sim::Controller ctrl(cfg, chips, channels);
    const auto start = clock::now();
    for (const auto& items : windows) {
      for (std::size_t i = 0; i < items.size(); ++i) {
        SimTime ready = items[i].floor;
        if (items[i].dep != sim::ShardExecutor::kNoDep) {
          ready = std::max(ready, ends[items[i].dep]);
        }
        ends[i] = ctrl.schedule(items[i].op, ready);
      }
      ctrl.advance_to(kNoTime);
      t.calls += items.size();
    }
    t.seconds += std::chrono::duration<double>(clock::now() - start).count();
  }
  return t;
}

/// Windowed fast path: price_window across `shards`, one aggregate merge.
Timing time_sharded(const SsdConfig& cfg, std::uint32_t chips,
                    std::uint32_t channels, const Windows& windows,
                    std::uint32_t shards) {
  using clock = std::chrono::steady_clock;
  Timing t;
  sim::ShardExecutor exec(shards);
  std::vector<sim::Controller::OpOutcome> out;
  while (t.seconds < kMinMeasureSeconds) {
    sim::Controller ctrl(cfg, chips, channels);
    const auto start = clock::now();
    for (const auto& items : windows) {
      exec.price_window(ctrl, items, out);
      ctrl.apply_window(exec.aggregate());
      ctrl.advance_to(kNoTime);
      t.calls += items.size();
    }
    t.seconds += std::chrono::duration<double>(clock::now() - start).count();
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = report_path_from_args(argc, argv);

  // Million-block-class geometry: paper-shape device at 2^20 blocks.
  const SsdConfig cfg = SsdConfig::scaled(1u << 20);
  const std::uint32_t chips = cfg.geometry.chips();
  const std::uint32_t channels = cfg.geometry.channels;
  std::printf(
      "Sharded pricing bench (%u blocks, %u chips / %u channels, "
      "%d windows x %zu ops)\n\n",
      cfg.geometry.total_blocks, chips, channels, kWindows,
      static_cast<std::size_t>(kWindowOps));

  Rng rng(2021);
  SimTime now = 0;
  Windows windows;
  for (int w = 0; w < kWindows; ++w) {
    windows.push_back(make_window(rng, chips, channels, &now));
  }

  // Bit-identity sanity before any timing: the sharded outcomes must
  // equal the sequential reference on every window.
  {
    sim::Controller seq(cfg, chips, channels);
    sim::Controller win(cfg, chips, channels);
    sim::ShardExecutor exec(4);
    std::vector<sim::Controller::OpOutcome> out;
    std::vector<SimTime> ends(kWindowOps);
    for (const auto& items : windows) {
      exec.price_window(win, items, out);
      for (std::size_t i = 0; i < items.size(); ++i) {
        SimTime ready = items[i].floor;
        if (items[i].dep != sim::ShardExecutor::kNoDep) {
          ready = std::max(ready, ends[items[i].dep]);
        }
        ends[i] = seq.schedule(items[i].op, ready);
        if (out[i].end != ends[i]) {
          std::fprintf(stderr,
                       "shard_bench: sharded pricing diverged from the "
                       "sequential reference (op end %llu != %llu)\n",
                       static_cast<unsigned long long>(out[i].end),
                       static_cast<unsigned long long>(ends[i]));
          return 1;
        }
      }
      win.apply_window(exec.aggregate());
    }
    std::printf("bit-identity check: s4 == sequential over %d windows\n\n",
                kWindows);
  }

  perf::BenchReport report = load_report_replacing(out_path, "shard/ctrl/");
  const auto spec = Runner::default_spec();
  report.blocks = spec.total_blocks;
  report.scale = spec.trace_scale;

  const Timing seq = time_sequential(cfg, chips, channels, windows);
  add_micro_cell(report, "shard/ctrl/seq", "ctrl", "synthetic", seq);
  std::printf("%-16s %8.1f ns/op  %10.0f ops/s\n", "shard/ctrl/seq",
              seq.ns_per_call(), seq.calls_per_sec());

  for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    const Timing t = time_sharded(cfg, chips, channels, windows, shards);
    const std::string key = "shard/ctrl/s" + std::to_string(shards);
    add_micro_cell(report, key, "ctrl", "synthetic", t);
    std::printf("%-16s %8.1f ns/op  %10.0f ops/s  (%.2fx vs seq)\n",
                key.c_str(), t.ns_per_call(), t.calls_per_sec(),
                seq.seconds > 0 ? t.calls_per_sec() / seq.calls_per_sec()
                                : 0.0);
  }

  return save_report(report, out_path, "shard_bench", "shard/ctrl/");
}
