// Ablation study: which piece of IPU buys what (DESIGN.md §4).
//
//  full IPU           — everything on
//  -ISR (greedy GC)   — isolates the Eq. 1/2 victim-selection gain
//  -levels            — single Work level (no hot/cold block separation)
//  -intra-page        — every update relocates (no in-place programming)
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "cache/ipu_scheme.h"

using namespace ppssd;
using namespace ppssd::bench;

int main() {
  print_scale_banner("Ablations: IPU design-choice contributions");

  Runner runner;
  struct Variant {
    const char* name;
    cache::IpuScheme::Options opts;
  };
  const std::vector<Variant> variants = {
      {"full IPU", {true, true, true, false}},
      {"-ISR (greedy GC)", {false, true, true, false}},
      {"-levels", {true, false, true, false}},
      {"-intra-page", {true, true, false, false}},
      // Section 5 future work: combine infrequently-updated data into
      // shared pages to recover page utilization.
      {"+combine-cold", {true, true, true, true}},
  };

  Table table({"Variant", "trace", "overall ms", "read BER", "MLC subpages",
               "SLC erases", "GC util"});
  for (const auto& trace : {std::string("ts0"), std::string("usr0")}) {
    for (const auto& v : variants) {
      auto spec = Runner::default_spec();
      spec.scheme = "IPU";
      spec.trace = trace;
      spec.options = v.opts.to_scheme_options();
      const auto r = runner.run(spec);
      table.add_row({v.name, trace, Table::fmt(r.avg_overall_ms),
                     Table::fmt(r.read_ber, 8), Table::count(r.mlc_subpages),
                     Table::count(r.slc_erases),
                     Table::pct(r.gc_utilization)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Expected: removing intra-page raises BER-neutral write cost;\n"
      "removing levels or ISR increases MLC traffic / latency.\n");
  return 0;
}
