// Figure 6: completed writes distribution in SLC-mode vs MLC blocks.
//
// Paper shape: IPU shows the lowest MLC write count — the SLC cache
// absorbs the hot updates.
#include <cstdio>

#include "bench_util.h"

using namespace ppssd;
using namespace ppssd::bench;

int main() {
  print_scale_banner("Figure 6: completed writes in SLC/MLC blocks");

  Runner runner;
  const auto grouped = matrix_by_trace(runner);

  Table table({"Trace", "scheme", "SLC subpages", "MLC subpages",
               "MLC share"});
  for (const auto& trace : Runner::paper_traces()) {
    for (const auto& r : grouped.at(trace)) {
      const double total =
          static_cast<double>(r.slc_subpages + r.mlc_subpages);
      table.add_row({trace, r.spec.scheme, Table::count(r.slc_subpages),
                     Table::count(r.mlc_subpages),
                     total > 0
                         ? Table::pct(static_cast<double>(r.mlc_subpages) /
                                      total)
                         : "n/a"});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Shape check: IPU should have the smallest MLC column per "
              "trace.\n");
  return 0;
}
