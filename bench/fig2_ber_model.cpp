// Figure 2: raw bit error rate of conventional vs partial programming as
// P/E cycles grow (Zhang et al. [19] calibration).
#include <cstdio>

#include "common/config.h"
#include "core/report.h"
#include "ecc/ber_model.h"

using namespace ppssd;

int main() {
  std::printf("Figure 2: bit error rate, conventional vs partial programming\n"
              "(anchors: 2.8e-4 / 3.8e-4 at 4000 P/E, from [19])\n\n");

  const SsdConfig cfg;
  const ecc::BerModel model(cfg.ber);

  core::Table table({"P/E cycles", "conventional", "partial", "ratio"});
  for (std::uint32_t pe = 0; pe <= 12000; pe += 1000) {
    const double conv = model.conventional_ber(pe);
    const double part = model.partial_ber(pe, cfg.cache.max_partial_programs);
    table.add_row({std::to_string(pe), core::Table::fmt(conv, 7),
                   core::Table::fmt(part, 7),
                   conv > 0 ? core::Table::fmt(part / conv, 3) : "n/a"});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nShape checks: partial > conventional everywhere; the absolute gap\n"
      "widens with P/E (Section 2.2).\n");
  return 0;
}
