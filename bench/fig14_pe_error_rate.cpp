// Figure 14: read error rate under varied P/E cycles.
//
// Paper shape: BER rises with wear; IPU tracks close to Baseline while
// MGA's penalty grows.
#include <cstdio>
#include <vector>

#include "bench_util.h"

using namespace ppssd;
using namespace ppssd::bench;

int main() {
  print_scale_banner("Figure 14: read error rate vs P/E cycles");

  Runner runner;
  const std::vector<std::uint32_t> pe_points = {1000, 2000, 4000, 8000};

  Table table({"P/E", "trace", "Baseline", "MGA", "IPU", "IPU vs MGA"});
  for (const std::uint32_t pe : pe_points) {
    const auto grouped = matrix_by_trace(runner, pe);
    for (const auto& trace : Runner::paper_traces()) {
      const auto& cells = grouped.at(trace);
      table.add_row({std::to_string(pe), trace,
                     Table::fmt(cells[0].read_ber, 8),
                     Table::fmt(cells[1].read_ber, 8),
                     Table::fmt(cells[2].read_ber, 8),
                     core::delta_pct(cells[2].read_ber, cells[1].read_ber)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Shape checks: BER increasing in P/E; IPU < MGA at every wear "
              "stage.\n");
  return 0;
}
