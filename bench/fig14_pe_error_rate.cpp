// Figure 14: read error rate under varied P/E cycles.
//
// Paper shape: BER rises with wear; IPU tracks close to Baseline while
// MGA's penalty grows.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace ppssd;
using namespace ppssd::bench;

int main() {
  print_scale_banner("Figure 14: read error rate vs P/E cycles");

  Runner runner;
  const std::vector<std::uint32_t> pe_points = {1000, 2000, 4000, 8000};
  const auto schemes = Runner::paper_schemes();
  const bool have_ipu_mga =
      std::count(schemes.begin(), schemes.end(), "IPU") &&
      std::count(schemes.begin(), schemes.end(), "MGA");

  std::vector<std::string> header = {"P/E", "trace"};
  header.insert(header.end(), schemes.begin(), schemes.end());
  if (have_ipu_mga) header.push_back("IPU vs MGA");
  Table table(header);
  for (const std::uint32_t pe : pe_points) {
    const auto grouped = matrix_by_trace(runner, pe);
    for (const auto& trace : Runner::paper_traces()) {
      const auto& cells = grouped.at(trace);
      std::vector<std::string> row = {std::to_string(pe), trace};
      double ipu = 0, mga = 0;
      for (const auto& r : cells) {
        row.push_back(Table::fmt(r.read_ber, 8));
        if (r.spec.scheme == "IPU") ipu = r.read_ber;
        if (r.spec.scheme == "MGA") mga = r.read_ber;
      }
      if (have_ipu_mga) row.push_back(core::delta_pct(ipu, mga));
      table.add_row(row);
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Shape checks: BER increasing in P/E; IPU < MGA at every wear "
              "stage.\n");
  return 0;
}
