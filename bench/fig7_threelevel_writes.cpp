// Figure 7: distribution of host writes across the three-level SLC blocks
// under IPU. Paper averages: Work 62.7%, Hot 32.9%, remainder Monitor.
#include <cstdio>

#include "bench_util.h"

using namespace ppssd;
using namespace ppssd::bench;

int main() {
  print_scale_banner("Figure 7: writes across Work/Monitor/Hot blocks (IPU)");

  Runner runner;
  Table table({"Trace", "Work", "Monitor", "Hot", "in-place updates"});
  double wsum = 0, msum = 0, hsum = 0;
  const auto traces = Runner::paper_traces();
  for (const auto& trace : traces) {
    auto spec = Runner::default_spec();
    spec.scheme = "IPU";
    spec.trace = trace;
    const auto r = runner.run(spec);
    const double total = static_cast<double>(
        r.level_subpages[1] + r.level_subpages[2] + r.level_subpages[3]);
    const double w = r.level_subpages[1] / total;
    const double m = r.level_subpages[2] / total;
    const double h = r.level_subpages[3] / total;
    wsum += w;
    msum += m;
    hsum += h;
    table.add_row({trace, Table::pct(w), Table::pct(m), Table::pct(h),
                   Table::count(r.intra_page_updates)});
  }
  const auto n = static_cast<double>(traces.size());
  table.add_row({"average", Table::pct(wsum / n), Table::pct(msum / n),
                 Table::pct(hsum / n), ""});
  std::printf("%s\n", table.render().c_str());
  std::printf("Paper averages: Work 62.7%%, Hot 32.9%%.\n");
  return 0;
}
