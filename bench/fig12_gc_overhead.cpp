// Figure 12: computation overhead of GC victim selection.
//
// Paper shape: the ISR policy costs only ~1.2% more than greedy and stays
// under 2.48 ms per search at paper scale. We benchmark both policies'
// select_victim over a realistically populated SLC region.
#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.h"
#include "ftl/gc_policy.h"
#include "sim/ssd.h"
#include "trace/profiles.h"
#include "trace/synthetic.h"

using namespace ppssd;

namespace {

/// Build an SSD whose SLC region is populated by a prefix of a real
/// workload, so victim blocks carry a realistic mix of valid/invalid and
/// hot/cold subpages.
struct PopulatedDevice {
  explicit PopulatedDevice(std::uint32_t blocks) {
    const SsdConfig cfg = SsdConfig::scaled(blocks);
    ssd = std::make_unique<sim::Ssd>(cfg, "IPU");
    trace::SyntheticWorkload workload(trace::profile_by_name("ts0"),
                                      ssd->logical_bytes(), 0.01);
    trace::TraceRecord rec;
    while (workload.next(rec)) {
      last_time = rec.arrival;
      ssd->submit(rec.op, rec.offset, rec.size, rec.arrival);
    }
  }

  std::unique_ptr<sim::Ssd> ssd;
  SimTime last_time = 0;
};

PopulatedDevice& device() {
  static PopulatedDevice dev(16384);
  return dev;
}

template <typename Policy>
void run_policy(benchmark::State& state) {
  auto& dev = device();
  const auto& scheme = dev.ssd->scheme();
  const Policy policy;
  const std::uint32_t planes = scheme.array().geometry().planes();
  std::uint32_t plane = 0;
  for (auto _ : state) {
    const BlockId victim = policy.select_victim(
        scheme.array(), scheme.blocks(), plane, CellMode::kSlc,
        dev.last_time);
    benchmark::DoNotOptimize(victim);
    plane = (plane + 1) % planes;
  }
  state.SetLabel("per-plane SLC victim scan");
}

void BM_GreedySelect(benchmark::State& state) {
  run_policy<ftl::GreedyPolicy>(state);
}
void BM_IsrSelect(benchmark::State& state) {
  run_policy<ftl::IsrPolicy>(state);
}

BENCHMARK(BM_GreedySelect);
BENCHMARK(BM_IsrSelect);

}  // namespace

BENCHMARK_MAIN();
