// Wall-clock performance suite: replays the fixed paper scheme × trace
// matrix with the result cache disabled (every cell simulates) and writes
// the machine-readable BENCH_perf.json next to a human summary table.
//
//   ./perf_suite [output.json]        default output: BENCH_perf.json
//
// Scale knobs are the usual ones — PPSSD_BLOCKS / PPSSD_SCALE shrink the
// device and trace, PPSSD_JOBS parallelises cells. The committed
// repo-root baseline is generated at PPSSD_BLOCKS=2048 PPSSD_SCALE=0.02
// (matching the CI perf-smoke job); compare runs only against baselines
// produced with the same knobs.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "perf/bench_report.h"

using namespace ppssd;
using namespace ppssd::bench;

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_perf.json";
  print_scale_banner("Wall-clock performance suite");

  // Empty cache dir: a cache hit would report zero wall time for the cell.
  Runner runner("");
  const auto traces = Runner::paper_traces();
  const auto schemes = Runner::paper_schemes();
  const auto results = runner.run_matrix(schemes, traces);

  perf::BenchReport report;
  const auto spec = Runner::default_spec();
  report.blocks = spec.total_blocks;
  report.scale = spec.trace_scale;
  report.jobs = 1;
  if (const char* jobs = std::getenv("PPSSD_JOBS")) {
    try {
      report.jobs = std::stoul(jobs);
    } catch (...) {
    }
  }

  Table table({"cell", "requests", "wall s", "req/s", "ctrl ev/s",
               "measure s", "warmup s"});
  for (const auto& r : results) {
    perf::BenchCell cell;
    cell.key = r.spec.key();
    cell.scheme = r.spec.scheme;
    cell.trace = r.spec.trace;
    cell.requests = r.reads + r.writes;
    cell.ctrl_events = r.ctrl_events;
    cell.wall_seconds = r.wall_seconds;
    cell.reqs_per_sec = r.wall_reqs_per_sec;
    cell.ctrl_events_per_sec = r.wall_ctrl_events_per_sec;
    cell.phases.setup_seconds = r.wall_setup_seconds;
    cell.phases.warmup_seconds = r.wall_warmup_seconds;
    cell.phases.measure_seconds = r.wall_measure_seconds;
    cell.phases.report_seconds = r.wall_report_seconds;
    report.cells.push_back(cell);

    table.add_row({cell.scheme + "/" + cell.trace,
                   Table::count(cell.requests), Table::fmt(cell.wall_seconds, 2),
                   Table::fmt(cell.reqs_per_sec, 0),
                   Table::fmt(cell.ctrl_events_per_sec, 0),
                   Table::fmt(cell.phases.measure_seconds, 2),
                   Table::fmt(cell.phases.warmup_seconds, 2)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("total wall %.1fs, geomean %.0f req/s\n",
              report.total_wall_seconds(), report.geomean_reqs_per_sec());

  if (!report.save(out_path)) {
    std::fprintf(stderr, "perf_suite: failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu cells)\n", out_path.c_str(), report.cells.size());
  return 0;
}
