// Wall-clock performance suite: replays the fixed paper scheme × trace
// matrix with the result cache disabled (every cell simulates) and writes
// the machine-readable BENCH_perf.json next to a human summary table.
//
//   ./perf_suite [output.json]        default output: BENCH_perf.json
//
// Scale knobs are the usual ones — PPSSD_BLOCKS / PPSSD_SCALE shrink the
// device and trace, PPSSD_JOBS parallelises cells. The committed
// repo-root baseline is generated at PPSSD_BLOCKS=2048 PPSSD_SCALE=0.02
// (matching the CI perf-smoke job); compare runs only against baselines
// produced with the same knobs.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/units.h"
#include "perf/bench_report.h"
#include "sim/ssd.h"
#include "telemetry/introspect/snapshotter.h"

using namespace ppssd;
using namespace ppssd::bench;

namespace {

/// Introspection-overhead cell pair: the full Ssd submit path with the
/// snapshotter + flight recorder detached (pricing the null-handle hot
/// path the perf gate enforces) vs attached at a 5 ms sim-time snapshot
/// interval. Both variants run the same loop including the tick guard;
/// the scratch stream files are deleted afterwards — only the timing
/// survives.
Timing run_snapshot_variant(bool attached) {
  const std::string scratch_snap = "BENCH_snapshot_scratch.bin";
  const std::string scratch_flight = "BENCH_flight_scratch.bin";
  SsdConfig cfg = SsdConfig::scaled(2048);
  sim::Ssd ssd(cfg, "IPU");
  std::unique_ptr<telemetry::introspect::Snapshotter> snap;
  if (attached) {
    telemetry::introspect::IntrospectOptions opts;
    opts.snapshot_every_ns = ms_to_ns(5.0);
    opts.snapshot_path = scratch_snap;
    opts.flight_capacity = 4096;
    opts.flight_path = scratch_flight;
    snap = std::make_unique<telemetry::introspect::Snapshotter>(opts);
    ssd.attach_introspection(snap.get());
  }

  using clock = std::chrono::steady_clock;
  Timing t;
  std::uint64_t lsn = 0;
  SimTime now = 0;
  while (t.seconds < kMinMeasureSeconds) {
    const auto start = clock::now();
    for (int i = 0; i < 2048; ++i) {
      // Same 3:1 write:read churn as the attribution pair, so the two
      // observability overhead figures are directly comparable.
      const OpType op = (i & 3) == 3 ? OpType::kRead : OpType::kWrite;
      ssd.submit(op, (lsn * 17) * kSubpageBytes, kSubpageBytes, now);
      now += us_to_ns(20.0);
      ++lsn;
      ++t.calls;
      if (snap != nullptr) snap->tick(now);
    }
    t.seconds += std::chrono::duration<double>(clock::now() - start).count();
  }

  if (attached) {
    snap->finish(now);
    ssd.attach_introspection(nullptr);
    snap.reset();
    std::remove(scratch_snap.c_str());
    std::remove(scratch_flight.c_str());
  }
  return t;
}

/// Warm-start checkpoint pair (DESIGN.md §14): the same cell run twice
/// against a scratch checkpoint directory — first cold (warms the device
/// and stores the checkpoint), then warm (restores it). The two cells
/// make the cache's value visible in the perf trajectory, and the
/// per-phase gate on warmstart/warm's warmup time is what catches the
/// cache silently breaking.
///
/// The cell pins its own trace and scale (blocks still follow the
/// device config under test): at the smoke scale of the rest of the
/// matrix the warm-up replay is a couple of milliseconds, so the pair
/// would measure checkpoint serialization overhead instead of the
/// warm-up work the cache saves. ads has the largest prefill footprint
/// per measured request, so at scale 0.5 the warm-up replay dominates
/// the cold path (~10x the restore cost) while the measure phase stays
/// a few hundred milliseconds.
core::ExperimentResult run_warmstart_variant(const std::string& dir) {
  setenv("PPSSD_WARMSTART", "1", 1);
  setenv("PPSSD_WARMSTART_DIR", dir.c_str(), 1);
  core::ExperimentSpec spec = Runner::default_spec();
  spec.scheme = "IPU";
  spec.trace = "ads";
  spec.trace_scale = 0.5;
  const core::ExperimentResult r = core::run_experiment(spec);
  unsetenv("PPSSD_WARMSTART");
  unsetenv("PPSSD_WARMSTART_DIR");
  return r;
}

/// Sharded-replay cell (DESIGN.md §15): the same experiment cell run
/// end-to-end with PPSSD_SHARDS pinned. Results are bit-identical at any
/// shard count, so the pair's only signal is wall time: s1 is the
/// sequential reference, s4 the windowed path at four shards. Speedup
/// needs hardware threads — on few-core hosts the s4 cell prices the
/// windowing overhead instead (still worth gating: the overhead
/// regressing is a real regression).
core::ExperimentResult run_shard_variant(std::uint32_t shards) {
  setenv("PPSSD_SHARDS", std::to_string(shards).c_str(), 1);
  core::ExperimentSpec spec = Runner::default_spec();
  spec.scheme = "IPU";
  spec.trace = "ts0";
  const core::ExperimentResult r = core::run_experiment(spec);
  unsetenv("PPSSD_SHARDS");
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = report_path_from_args(argc, argv);
  print_scale_banner("Wall-clock performance suite");

  // Empty cache dir: a cache hit would report zero wall time for the cell.
  Runner runner("");
  const auto traces = Runner::paper_traces();
  const auto schemes = Runner::paper_schemes();
  const auto results = runner.run_matrix(schemes, traces);

  perf::BenchReport report;
  const auto spec = Runner::default_spec();
  report.blocks = spec.total_blocks;
  report.scale = spec.trace_scale;
  report.jobs = 1;
  if (const char* jobs = std::getenv("PPSSD_JOBS")) {
    try {
      report.jobs = std::stoul(jobs);
    } catch (...) {
    }
  }

  Table table({"cell", "requests", "wall s", "req/s", "ctrl ev/s",
               "measure s", "warmup s"});
  for (const auto& r : results) {
    perf::BenchCell cell;
    cell.key = r.spec.key();
    cell.scheme = r.spec.scheme;
    cell.trace = r.spec.trace;
    cell.requests = r.reads + r.writes;
    cell.ctrl_events = r.ctrl_events;
    cell.wall_seconds = r.wall_seconds;
    cell.reqs_per_sec = r.wall_reqs_per_sec;
    cell.ctrl_events_per_sec = r.wall_ctrl_events_per_sec;
    cell.phases.setup_seconds = r.wall_setup_seconds;
    cell.phases.warmup_seconds = r.wall_warmup_seconds;
    cell.phases.measure_seconds = r.wall_measure_seconds;
    cell.phases.report_seconds = r.wall_report_seconds;
    report.cells.push_back(cell);

    table.add_row({cell.scheme + "/" + cell.trace,
                   Table::count(cell.requests), Table::fmt(cell.wall_seconds, 2),
                   Table::fmt(cell.reqs_per_sec, 0),
                   Table::fmt(cell.ctrl_events_per_sec, 0),
                   Table::fmt(cell.phases.measure_seconds, 2),
                   Table::fmt(cell.phases.warmup_seconds, 2)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("total wall %.1fs, geomean %.0f req/s\n",
              report.total_wall_seconds(), report.geomean_reqs_per_sec());

  // Snapshotter-overhead pair: appended after the matrix summary so the
  // printed geomean stays the replay matrix alone (requests here are bare
  // submits, not replayed trace requests).
  for (const bool attached : {false, true}) {
    const Timing t = run_snapshot_variant(attached);
    const std::string key =
        std::string("snapshot/") + (attached ? "on" : "off");
    add_micro_cell(report, key, "IPU",
                   std::string("snapshot-") + (attached ? "on" : "off"), t);
    std::printf("%-14s %8.1f ns/op  %10.0f ops/s\n", key.c_str(),
                t.ns_per_call(), t.calls_per_sec());
  }

  // Warm-start pair: cold stores the checkpoint, warm restores it. Keys
  // are stable ("warmstart/cold", "warmstart/warm") so CI can --require
  // them; the warm cell's warmup phase is the cache's health signal.
  {
    const std::string scratch_dir = "BENCH_warmstart_scratch";
    std::filesystem::remove_all(scratch_dir);
    for (const bool warm : {false, true}) {
      const core::ExperimentResult r = run_warmstart_variant(scratch_dir);
      perf::BenchCell cell;
      cell.key = std::string("warmstart/") + (warm ? "warm" : "cold");
      cell.scheme = r.spec.scheme;
      cell.trace = r.spec.trace;
      cell.requests = r.reads + r.writes;
      cell.ctrl_events = r.ctrl_events;
      cell.wall_seconds = r.wall_seconds;
      cell.reqs_per_sec = r.wall_reqs_per_sec;
      cell.ctrl_events_per_sec = r.wall_ctrl_events_per_sec;
      cell.phases.setup_seconds = r.wall_setup_seconds;
      cell.phases.warmup_seconds = r.wall_warmup_seconds;
      cell.phases.measure_seconds = r.wall_measure_seconds;
      cell.phases.report_seconds = r.wall_report_seconds;
      report.cells.push_back(cell);
      std::printf("%-14s %8.2f s warmup  %8.2f s total\n", cell.key.c_str(),
                  cell.phases.warmup_seconds, cell.wall_seconds);
    }
    std::filesystem::remove_all(scratch_dir);
  }

  // Sharded-replay pair: the IPU/ts0 cell sequential vs four shards.
  // Stable keys ("shard/replay/s1", "shard/replay/s4") for CI --require;
  // the scaling table (perf_compare) reads the sN suffix.
  for (const std::uint32_t shards : {1u, 4u}) {
    const core::ExperimentResult r = run_shard_variant(shards);
    perf::BenchCell cell;
    cell.key = "shard/replay/s" + std::to_string(shards);
    cell.scheme = r.spec.scheme;
    cell.trace = r.spec.trace;
    cell.requests = r.reads + r.writes;
    cell.ctrl_events = r.ctrl_events;
    cell.wall_seconds = r.wall_seconds;
    cell.reqs_per_sec = r.wall_reqs_per_sec;
    cell.ctrl_events_per_sec = r.wall_ctrl_events_per_sec;
    cell.phases.setup_seconds = r.wall_setup_seconds;
    cell.phases.warmup_seconds = r.wall_warmup_seconds;
    cell.phases.measure_seconds = r.wall_measure_seconds;
    cell.phases.report_seconds = r.wall_report_seconds;
    report.cells.push_back(cell);
    std::printf("%-16s %8.0f req/s  %8.2f s total\n", cell.key.c_str(),
                cell.reqs_per_sec, cell.wall_seconds);
  }

  if (!report.save(out_path)) {
    std::fprintf(stderr, "perf_suite: failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu cells)\n", out_path.c_str(), report.cells.size());
  return 0;
}
