// Shared helpers for the per-figure bench binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/report.h"
#include "core/runner.h"

namespace ppssd::bench {

using core::ExperimentResult;
using core::Runner;
using core::Table;

/// The full scheme × trace matrix at the default scale, grouped by trace.
/// Each value holds results in paper_schemes() order (registry order:
/// Baseline, MGA, IPU, IPS, ... — $PPSSD_SCHEMES restricts the set).
inline std::map<std::string, std::vector<ExperimentResult>> matrix_by_trace(
    Runner& runner, std::uint32_t pe_cycles = 4000) {
  const auto traces = Runner::paper_traces();
  const auto schemes = Runner::paper_schemes();
  const auto results = runner.run_matrix(schemes, traces, pe_cycles);
  // Optional flat export for external plotting.
  if (const char* dir = std::getenv("PPSSD_CSV_DIR")) {
    core::write_results_csv(std::string(dir) + "/matrix_pe" +
                                std::to_string(pe_cycles) + ".csv",
                            results);
  }
  std::map<std::string, std::vector<ExperimentResult>> grouped;
  for (const auto& r : results) {
    grouped[r.spec.trace].push_back(r);
  }
  return grouped;
}

inline void print_scale_banner(const char* what) {
  const auto spec = Runner::default_spec();
  std::printf(
      "%s\n(device: %u blocks, trace scale: %.2f; set REPRO_FULL=1 for "
      "paper scale)\n\n",
      what, spec.total_blocks, spec.trace_scale);
}

}  // namespace ppssd::bench
