// Shared helpers for the per-figure bench binaries.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/config.h"
#include "core/report.h"
#include "core/runner.h"
#include "perf/bench_report.h"

namespace ppssd::bench {

using core::ExperimentResult;
using core::Runner;
using core::Table;

/// The full scheme × trace matrix at the default scale, grouped by trace.
/// Each value holds results in paper_schemes() order (registry order:
/// Baseline, MGA, IPU, IPS, ... — $PPSSD_SCHEMES restricts the set).
inline std::map<std::string, std::vector<ExperimentResult>> matrix_by_trace(
    Runner& runner, std::uint32_t pe_cycles = 4000) {
  const auto traces = Runner::paper_traces();
  const auto schemes = Runner::paper_schemes();
  const auto results = runner.run_matrix(schemes, traces, pe_cycles);
  // Optional flat export for external plotting.
  if (const char* dir = std::getenv("PPSSD_CSV_DIR")) {
    core::write_results_csv(std::string(dir) + "/matrix_pe" +
                                std::to_string(pe_cycles) + ".csv",
                            results);
  }
  std::map<std::string, std::vector<ExperimentResult>> grouped;
  for (const auto& r : results) {
    grouped[r.spec.trace].push_back(r);
  }
  return grouped;
}

inline void print_scale_banner(const char* what) {
  const auto spec = Runner::default_spec();
  std::printf(
      "%s\n(device: %u blocks, trace scale: %.2f; set REPRO_FULL=1 for "
      "paper scale)\n\n",
      what, spec.total_blocks, spec.trace_scale);
}

// ---- micro-bench scaffolding (gc_bench, write_bench) -----------------------

/// Device sizes every micro-bench sweeps: candidate / cycle counts grow
/// with the block budget, which is what separates O(n) reference paths
/// from the indexed ones.
inline constexpr std::uint32_t kMicroSizes[] = {2048, 8192, 32768};

/// Minimum accumulated wall time before a timing loop may report.
inline constexpr double kMinMeasureSeconds = 0.05;

/// Accumulated call count + wall seconds for one timed loop.
struct Timing {
  std::uint64_t calls = 0;
  double seconds = 0.0;
  [[nodiscard]] double calls_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(calls) / seconds : 0.0;
  }
  [[nodiscard]] double ns_per_call() const {
    return calls > 0 ? seconds * 1e9 / static_cast<double>(calls) : 0.0;
  }
};

/// Report path from `./bench [report.json]` — default is the shared
/// artifact every micro-bench merges into.
inline std::string report_path_from_args(int argc, char** argv) {
  return argc > 1 ? argv[1] : "BENCH_perf.json";
}

/// Load the shared report and drop this bench's own cell family (keys
/// starting with `prefix`) so it can be regenerated; every other family
/// (perf_suite replay matrix, the other micro-benches) is preserved, so
/// the benches can rebuild one artifact in any order.
inline perf::BenchReport load_report_replacing(const std::string& path,
                                               std::string_view prefix) {
  perf::BenchReport report;
  if (auto existing = perf::BenchReport::load(path)) {
    report = *existing;
    std::erase_if(report.cells, [prefix](const perf::BenchCell& c) {
      return std::string_view(c.key).substr(0, prefix.size()) == prefix;
    });
  }
  return report;
}

/// Append one micro-bench cell in the shared layout: requests = timed
/// calls, wall/measure seconds = the timed loop only.
inline void add_micro_cell(perf::BenchReport& report, std::string key,
                           std::string scheme, std::string trace,
                           const Timing& t) {
  perf::BenchCell cell;
  cell.key = std::move(key);
  cell.scheme = std::move(scheme);
  cell.trace = std::move(trace);
  cell.requests = t.calls;
  cell.wall_seconds = t.seconds;
  cell.reqs_per_sec = t.calls_per_sec();
  // Phases stay zero: a micro cell's wall time is however long the
  // timing loop chose to run (elastic, not a cost), so the per-phase
  // regression gate must never fire on it — per-op throughput above is
  // the micro cell's only signal.
  report.cells.push_back(cell);
}

/// Save the merged report; returns the bench's exit code and prints the
/// standard merge line (or an error naming the bench).
inline int save_report(const perf::BenchReport& report,
                       const std::string& path, const char* bench_name,
                       const char* family) {
  if (!report.save(path)) {
    std::fprintf(stderr, "%s: failed to write %s\n", bench_name,
                 path.c_str());
    return 1;
  }
  std::printf("merged %s cells into %s (%zu cells total)\n", family,
              path.c_str(), report.cells.size());
  return 0;
}

/// Scaled device config collapsed to a single plane: the whole block
/// budget forms one region, so per-plane candidate / cycle counts scale
/// with device size instead of plane count.
inline SsdConfig single_plane_config(std::uint32_t blocks) {
  SsdConfig cfg = SsdConfig::scaled(blocks);
  cfg.geometry.channels = 1;
  cfg.geometry.chips_per_channel = 1;
  cfg.geometry.dies_per_chip = 1;
  cfg.geometry.planes_per_die = 1;
  return cfg;
}

}  // namespace ppssd::bench
