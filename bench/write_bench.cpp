// Write-path microbenchmark: fused vs reference program/invalidate cost.
//
//   ./write_bench [report.json]          default: BENCH_perf.json
//
// For each device size (2048 / 8192 / 32768 blocks) and each cell mode the
// bench drives the same fill/drain cycle through both implementations of
// the two hottest array operations:
//
//   write/program/fused        FlashArray::program (single-pass, PR 5)
//   write/program/reference    FlashArray::program_reference (per-layer)
//   write/invalidate/fused     FlashArray::invalidate (single-pass)
//   write/invalidate/reference FlashArray::invalidate_reference
//
// plus the attribution-overhead pair — the full Ssd submit path with the
// per-request blame ledger detached (null-handle hot path) and attached:
//
//   write/attrib/off           Ssd::submit, ledger detached
//   write/attrib/on            Ssd::submit, ledger attached
//
// A cycle fills plane 0's region page by page through the real allocator
// (conventional program of all-but-one slot, partial program of the last
// slot on every other page), then drains it: every valid subpage is
// invalidated — exercising the BlockManager victim-index observer exactly
// like the simulator's supersede path — and the blocks are erased and
// released. Program timing covers the fill loop, invalidate timing the
// drain loop, so each figure is the operation in its realistic
// surroundings rather than a bare call in a cache-hot microloop.
//
// Results are merged into the report as the "write/..." cell family: any
// existing write/ cells are replaced, every other cell (perf_suite replay
// matrix, gc_bench) is preserved, so the three benches can regenerate one
// shared artifact in any order.
#include <array>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/config.h"
#include "common/units.h"
#include "core/report.h"
#include "ftl/block_manager.h"
#include "nand/flash_array.h"
#include "perf/bench_report.h"
#include "sim/ssd.h"
#include "telemetry/telemetry.h"

using namespace ppssd;
using bench::kMinMeasureSeconds;
using bench::Timing;
using core::Table;

namespace {

/// One fill/drain cycle over plane 0's region. Accumulates program timing
/// over the fill loop and invalidate timing over the drain loop.
template <bool kFused>
void run_cycle(nand::FlashArray& arr, ftl::BlockManager& bm, CellMode mode,
               SimTime& now, Timing& program, Timing& invalidate) {
  using clock = std::chrono::steady_clock;
  const BlockLevel level =
      mode == CellMode::kSlc ? BlockLevel::kWork : BlockLevel::kHighDensity;
  const std::uint32_t floor = bm.gc_threshold_blocks(mode) + 1;
  const std::uint32_t spp = arr.geometry().subpages_per_page();
  // Conventional programs fill all but the last slot; every other page
  // then takes a partial program, mirroring the cache's update pattern.
  const std::uint32_t head = spp > 1 ? spp - 1 : 1;

  Lsn lsn = 0;
  std::array<nand::SlotWrite, nand::kMaxSubpagesPerPage> writes;
  const auto fill_start = clock::now();
  while (bm.free_blocks(0, mode) > floor) {
    const auto alloc = bm.allocate_page(0, level);
    if (!alloc) break;
    now += ms_to_ns(1.0);
    for (std::uint32_t s = 0; s < head; ++s) {
      writes[s] = {static_cast<SubpageId>(s), lsn + s, 1};
    }
    const std::span<const nand::SlotWrite> first(writes.data(), head);
    if constexpr (kFused) {
      arr.program(alloc->block, alloc->page, first, now);
    } else {
      arr.program_reference(alloc->block, alloc->page, first, now);
    }
    ++program.calls;
    if (spp > 1 && alloc->page % 2 == 0) {
      const nand::SlotWrite upd[] = {
          {static_cast<SubpageId>(spp - 1), lsn + spp - 1, 1}};
      if constexpr (kFused) {
        arr.program(alloc->block, alloc->page, upd, now);
      } else {
        arr.program_reference(alloc->block, alloc->page, upd, now);
      }
      ++program.calls;
    }
    lsn += spp;
  }
  program.seconds +=
      std::chrono::duration<double>(clock::now() - fill_start).count();

  // Drain: invalidate every valid subpage of every closed block (through
  // the BlockManager observer, as the supersede path does), then erase.
  std::vector<BlockId> victims;
  bm.for_each_candidate(0, mode, [&](BlockId b) { victims.push_back(b); });
  const auto drain_start = clock::now();
  for (const BlockId b : victims) {
    const nand::Block& blk = arr.block(b);
    const std::uint32_t pages = blk.write_frontier();
    for (std::uint32_t p = 0; p < pages; ++p) {
      for (std::uint32_t s = 0; s < spp; ++s) {
        if (arr.subpage_state(b, static_cast<PageId>(p),
                              static_cast<SubpageId>(s)) !=
            nand::SubpageState::kValid) {
          continue;
        }
        if constexpr (kFused) {
          arr.invalidate(b, static_cast<PageId>(p),
                         static_cast<SubpageId>(s));
        } else {
          arr.invalidate_reference(b, static_cast<PageId>(p),
                                   static_cast<SubpageId>(s));
        }
        ++invalidate.calls;
      }
    }
  }
  invalidate.seconds +=
      std::chrono::duration<double>(clock::now() - drain_start).count();

  for (const BlockId b : victims) {
    arr.erase(b, now);
    bm.release_block(b);
  }
}

/// Repeat cycles on a fresh device until both loops have accrued enough
/// measured time.
template <bool kFused>
std::pair<Timing, Timing> run_variant(std::uint32_t blocks, CellMode mode) {
  nand::FlashArray arr(bench::single_plane_config(blocks));
  ftl::BlockManager bm(arr);

  Timing program;
  Timing invalidate;
  SimTime now = 0;
  while (program.seconds < kMinMeasureSeconds ||
         invalidate.seconds < kMinMeasureSeconds) {
    run_cycle<kFused>(arr, bm, mode, now, program, invalidate);
  }
  return {program, invalidate};
}

const char* mode_name(CellMode mode) {
  return mode == CellMode::kSlc ? "slc" : "mlc";
}

/// Attribution-overhead cell: the full host submit path (IPU scheme,
/// GC, the works) with the blame ledger detached vs attached. The
/// detached figure is the null-handle guarantee the perf gate enforces;
/// the attached figure prices the ledger for users who turn it on.
Timing run_attrib_variant(bool attached) {
  SsdConfig cfg = SsdConfig::scaled(2048);
  sim::Ssd ssd(cfg, "IPU");
  telemetry::Telemetry tel([] {
    telemetry::TelemetryOptions opts;
    opts.attribution = true;
    return opts;
  }());
  if (attached) ssd.attach_telemetry(&tel);

  using clock = std::chrono::steady_clock;
  Timing t;
  std::uint64_t lsn = 0;
  SimTime now = 0;
  while (t.seconds < kMinMeasureSeconds) {
    const auto start = clock::now();
    for (int i = 0; i < 2048; ++i) {
      // 3:1 write:read mix over a wrapping strided address pattern —
      // enough churn to keep GC (and thus interference blame) active.
      const OpType op = (i & 3) == 3 ? OpType::kRead : OpType::kWrite;
      ssd.submit(op, (lsn * 17) * kSubpageBytes, kSubpageBytes, now);
      now += us_to_ns(20.0);
      ++lsn;
      ++t.calls;
    }
    t.seconds +=
        std::chrono::duration<double>(clock::now() - start).count();
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = bench::report_path_from_args(argc, argv);
  perf::BenchReport report = bench::load_report_replacing(out_path, "write/");

  Table table({"cell", "ns/op", "ops/s"});
  for (const std::uint32_t blocks : bench::kMicroSizes) {
    for (const CellMode mode : {CellMode::kSlc, CellMode::kMlc}) {
      const auto [fused_prog, fused_inv] = run_variant<true>(blocks, mode);
      const auto [ref_prog, ref_inv] = run_variant<false>(blocks, mode);
      struct Cell {
        const char* family;
        const char* variant;
        const Timing& timing;
      } cells[] = {
          {"program", "fused", fused_prog},
          {"program", "reference", ref_prog},
          {"invalidate", "fused", fused_inv},
          {"invalidate", "reference", ref_inv},
      };
      for (const Cell& c : cells) {
        const std::string key = std::string("write/") + c.family + "/" +
                                c.variant + "/" + mode_name(mode) + "/" +
                                std::to_string(blocks);
        bench::add_micro_cell(report, key, "WritePath",
                              std::string(c.family) + "-" + c.variant + "@" +
                                  mode_name(mode) + std::to_string(blocks),
                              c.timing);
        table.add_row({key, Table::fmt(c.timing.ns_per_call(), 1),
                       Table::fmt(c.timing.calls_per_sec(), 0)});
      }
    }
  }

  for (const bool attached : {false, true}) {
    const Timing t = run_attrib_variant(attached);
    const std::string key =
        std::string("write/attrib/") + (attached ? "on" : "off");
    bench::add_micro_cell(report, key, "IPU",
                          std::string("attrib-") + (attached ? "on" : "off"),
                          t);
    table.add_row({key, Table::fmt(t.ns_per_call(), 1),
                   Table::fmt(t.calls_per_sec(), 0)});
  }

  std::printf("%s\n", table.render("Write-path program/invalidate").c_str());
  return bench::save_report(report, out_path, "write_bench", "write/");
}
