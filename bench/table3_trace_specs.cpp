// Table 3: specifications of the selected traces (ordered by write ratio).
#include <cstdio>

#include "bench_util.h"
#include "core/experiment.h"
#include "trace/profiles.h"
#include "trace/synthetic.h"
#include "trace/trace_stats.h"

using namespace ppssd;

int main() {
  bench::print_scale_banner("Table 3: trace specifications");

  const auto spec = core::Runner::default_spec();
  const SsdConfig cfg = core::config_for(spec);
  const std::uint64_t logical_bytes =
      nand::Geometry(cfg.geometry, cfg.cache.slc_ratio).logical_subpages() *
      kSubpageBytes;

  core::Table table({"Trace", "# of Req.", "Write R", "Write SZ",
                     "Hot write", "paper WR", "paper SZ", "paper HW"});
  for (const auto& profile : trace::paper_profiles()) {
    trace::SyntheticWorkload workload(profile, logical_bytes,
                                      spec.trace_scale);
    const auto stats = trace::analyze(workload);
    table.add_row(
        {profile.name, core::Table::count(stats.requests),
         core::Table::pct(stats.write_ratio()),
         core::Table::fmt(stats.mean_write_kb(), 1) + "KB",
         core::Table::pct(stats.hot_write_fraction),
         core::Table::pct(profile.write_ratio),
         core::Table::fmt(profile.mean_write_kb, 1) + "KB",
         core::Table::pct(profile.hot_write)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
