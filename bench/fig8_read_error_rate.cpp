// Figure 8: average read error rate per trace.
//
// Paper shape: vs Baseline, MGA raises the read error rate by ~14.0% and
// IPU by only ~3.5% — intra-page update eliminates in-page disturb on
// valid data.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace ppssd;
using namespace ppssd::bench;

int main() {
  print_scale_banner("Figure 8: average read error rate");

  Runner runner;
  const auto grouped = matrix_by_trace(runner);
  const auto schemes = Runner::paper_schemes();

  Table table({"Trace", "scheme", "read BER", "vs " + schemes.front()});
  std::map<std::string, std::vector<double>> by_scheme;
  for (const auto& trace : Runner::paper_traces()) {
    const auto& cells = grouped.at(trace);
    for (const auto& r : cells) {
      table.add_row({trace, r.spec.scheme, Table::fmt(r.read_ber, 8),
                     core::delta_pct(r.read_ber, cells[0].read_ber)});
      by_scheme[r.spec.scheme].push_back(r.read_ber);
    }
  }
  std::printf("%s\n", table.render().c_str());

  auto mean = [](const std::vector<double>& v) {
    double s = 0;
    for (const double x : v) s += x;
    return s / static_cast<double>(v.size());
  };
  const double base = mean(by_scheme.at(schemes.front()));
  std::printf("averages vs %s:", schemes.front().c_str());
  for (const auto& name : schemes) {
    if (name == schemes.front()) continue;
    std::printf(" %s %s", name.c_str(),
                core::delta_pct(mean(by_scheme.at(name)), base).c_str());
  }
  std::printf("\n(paper: MGA +14.0%%, IPU +3.5%%)\n");
  return 0;
}
