// Figure 8: average read error rate per trace.
//
// Paper shape: vs Baseline, MGA raises the read error rate by ~14.0% and
// IPU by only ~3.5% — intra-page update eliminates in-page disturb on
// valid data.
#include <cstdio>
#include <vector>

#include "bench_util.h"

using namespace ppssd;
using namespace ppssd::bench;

int main() {
  print_scale_banner("Figure 8: average read error rate");

  Runner runner;
  const auto grouped = matrix_by_trace(runner);

  Table table({"Trace", "scheme", "read BER", "vs Baseline"});
  std::vector<double> base, mga, ipu;
  for (const auto& trace : Runner::paper_traces()) {
    const auto& cells = grouped.at(trace);
    for (const auto& r : cells) {
      table.add_row({trace, cache::scheme_name(r.spec.scheme),
                     Table::fmt(r.read_ber, 8),
                     core::delta_pct(r.read_ber, cells[0].read_ber)});
    }
    base.push_back(cells[0].read_ber);
    mga.push_back(cells[1].read_ber);
    ipu.push_back(cells[2].read_ber);
  }
  std::printf("%s\n", table.render().c_str());

  auto mean = [](const std::vector<double>& v) {
    double s = 0;
    for (const double x : v) s += x;
    return s / static_cast<double>(v.size());
  };
  std::printf("averages vs Baseline: MGA %s, IPU %s "
              "(paper: +14.0%% / +3.5%%)\n",
              core::delta_pct(mean(mga), mean(base)).c_str(),
              core::delta_pct(mean(ipu), mean(base)).c_str());
  return 0;
}
