// Figure 9: page utilization ratio of GC'd blocks in the SLC-mode cache.
//
// Paper shape: Baseline ~52.8% (fragmentation), MGA ~99.9% (aggregation),
// IPU ~73.0% (reserves in-page space for updates).
#include <cstdio>
#include <vector>

#include "bench_util.h"

using namespace ppssd;
using namespace ppssd::bench;

int main() {
  print_scale_banner("Figure 9: page utilization of SLC GC blocks");

  Runner runner;
  const auto grouped = matrix_by_trace(runner);

  Table table({"Trace", "Baseline", "MGA", "IPU"});
  double sums[3] = {0, 0, 0};
  const auto traces = Runner::paper_traces();
  for (const auto& trace : traces) {
    const auto& cells = grouped.at(trace);
    table.add_row({trace, Table::pct(cells[0].gc_utilization),
                   Table::pct(cells[1].gc_utilization),
                   Table::pct(cells[2].gc_utilization)});
    for (int i = 0; i < 3; ++i) sums[i] += cells[i].gc_utilization;
  }
  const auto n = static_cast<double>(traces.size());
  table.add_row({"average", Table::pct(sums[0] / n), Table::pct(sums[1] / n),
                 Table::pct(sums[2] / n)});
  std::printf("%s\n", table.render().c_str());
  std::printf("Paper averages: 52.8%% / 99.9%% / 73.0%%.\n");
  return 0;
}
