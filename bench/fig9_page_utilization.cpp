// Figure 9: page utilization ratio of GC'd blocks in the SLC-mode cache.
//
// Paper shape: Baseline ~52.8% (fragmentation), MGA ~99.9% (aggregation),
// IPU ~73.0% (reserves in-page space for updates).
#include <cstdio>
#include <vector>

#include "bench_util.h"

using namespace ppssd;
using namespace ppssd::bench;

int main() {
  print_scale_banner("Figure 9: page utilization of SLC GC blocks");

  Runner runner;
  const auto grouped = matrix_by_trace(runner);
  const auto schemes = Runner::paper_schemes();

  std::vector<std::string> header = {"Trace"};
  header.insert(header.end(), schemes.begin(), schemes.end());
  Table table(header);
  std::vector<double> sums(schemes.size(), 0.0);
  const auto traces = Runner::paper_traces();
  for (const auto& trace : traces) {
    const auto& cells = grouped.at(trace);
    std::vector<std::string> row = {trace};
    for (std::size_t i = 0; i < cells.size(); ++i) {
      row.push_back(Table::pct(cells[i].gc_utilization));
      sums[i] += cells[i].gc_utilization;
    }
    table.add_row(row);
  }
  const auto n = static_cast<double>(traces.size());
  std::vector<std::string> avg = {"average"};
  for (const double s : sums) avg.push_back(Table::pct(s / n));
  table.add_row(avg);
  std::printf("%s\n", table.render().c_str());
  std::printf("Paper averages: Baseline 52.8%% / MGA 99.9%% / IPU 73.0%%.\n");
  return 0;
}
