// GC victim-selection microbenchmark: indexed vs full-scan cost.
//
//   ./gc_bench [report.json]          default: BENCH_perf.json
//
// For each device size (2048 / 8192 / 32768 blocks) the bench builds a
// steady-state SLC region on one plane — staggered write times, a share
// of updated pages, per-block invalidation counts — then times four
// victim-selection variants on identical state:
//
//   greedy/indexed    BlockManager bucket index (O(1) amortized)
//   greedy/scan       pre-index full candidate scan
//   isr/indexed       block aggregates: O(1) age sums + histogram folds
//   isr/scan          pre-optimization two-pass page walk
//
// Selection cost of the scan variants grows with candidate count (and,
// for ISR, with pages × subpages); the indexed variants should stay flat
// — that sublinear gap is what the committed BENCH_perf.json pins.
//
// Results are merged into the report as the "gc/select/..." cell family:
// any existing gc/select cells are replaced, every other cell (the
// perf_suite replay matrix) is preserved, so perf_suite and gc_bench can
// regenerate one shared artifact in either order.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/config.h"
#include "common/units.h"
#include "core/report.h"
#include "ftl/block_manager.h"
#include "ftl/gc_policy.h"
#include "nand/flash_array.h"
#include "perf/bench_report.h"

using namespace ppssd;
using bench::kMinMeasureSeconds;
using bench::Timing;
using core::Table;

namespace {

/// Fill plane 0's SLC region into GC-candidate shape. Returns the sim
/// time just after the last write.
SimTime populate_slc_plane(nand::FlashArray& arr, ftl::BlockManager& bm) {
  const std::uint32_t floor = bm.gc_threshold_blocks(CellMode::kSlc) + 1;
  Lsn lsn = 0;
  std::uint64_t page_seq = 0;
  // Program slots {0,1,2} of every page; every third page later takes a
  // partial program in slot 3 and becomes "updated".
  while (bm.free_blocks(0, CellMode::kSlc) > floor) {
    const auto alloc = bm.allocate_page(0, BlockLevel::kWork);
    if (!alloc) break;
    const SimTime t = ms_to_ns(static_cast<double>(++page_seq));
    const nand::SlotWrite first[] = {{0, lsn, 1}, {1, lsn + 1, 1},
                                     {2, lsn + 2, 1}};
    arr.program(alloc->block, alloc->page, first, t);
    if (alloc->page % 3 == 0) {
      const nand::SlotWrite upd[] = {{3, lsn + 3, 1}};
      arr.program(alloc->block, alloc->page, upd, t + ms_to_ns(0.5));
    }
    lsn += 4;
  }

  // Give every candidate its own invalid count (0 .. half the block).
  std::vector<BlockId> candidates;
  bm.for_each_candidate(0, CellMode::kSlc,
                        [&](BlockId b) { candidates.push_back(b); });
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const nand::Block& blk = arr.block(candidates[i]);
    const std::uint32_t half = blk.total_subpages() / 2;
    std::uint32_t budget = static_cast<std::uint32_t>(i * 131) % half;
    for (std::uint32_t p = 0; p < blk.page_count() && budget > 0; ++p) {
      for (std::uint32_t s = 0; s < 3 && budget > 0; ++s, --budget) {
        arr.invalidate(candidates[i], static_cast<PageId>(p),
                       static_cast<SubpageId>(s));
      }
    }
  }
  return ms_to_ns(static_cast<double>(page_seq) + 10'000.0);
}

/// Time repeated calls of `fn` until kMinMeasureSeconds elapsed.
template <typename Fn>
Timing time_select(Fn&& fn) {
  using clock = std::chrono::steady_clock;
  // Warm caches and fault in any lazy state before timing.
  BlockId sink = fn();
  Timing t;
  std::uint64_t batch = 8;
  const auto start = clock::now();
  for (;;) {
    for (std::uint64_t i = 0; i < batch; ++i) sink ^= fn();
    t.calls += batch;
    t.seconds = std::chrono::duration<double>(clock::now() - start).count();
    if (t.seconds >= kMinMeasureSeconds) break;
    batch *= 2;
  }
  // Keep the selections observable so the loop cannot be elided.
  if (sink == kInvalidBlock - 1) std::printf("\n");
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = bench::report_path_from_args(argc, argv);
  perf::BenchReport report =
      bench::load_report_replacing(out_path, "gc/select/");

  Table table({"cell", "candidates", "ns/select", "selects/s"});
  for (const std::uint32_t blocks : bench::kMicroSizes) {
    // One plane: the whole block budget lands in a single SLC region, so
    // candidate count grows with device size, which is what separates
    // O(candidates) scans from the index.
    nand::FlashArray arr(bench::single_plane_config(blocks));
    ftl::BlockManager bm(arr);
    const SimTime now = populate_slc_plane(arr, bm);
    std::uint64_t candidates = 0;
    bm.for_each_candidate(0, CellMode::kSlc, [&](BlockId) { ++candidates; });

    const ftl::GreedyPolicy greedy;
    const ftl::IsrPolicy isr;
    struct Variant {
      const char* name;
      Timing timing;
    } variants[] = {
        {"greedy/indexed", time_select([&] {
           return greedy.select_victim(arr, bm, 0, CellMode::kSlc, now);
         })},
        {"greedy/scan", time_select([&] {
           return greedy.select_victim_reference(arr, bm, 0, CellMode::kSlc);
         })},
        {"isr/indexed", time_select([&] {
           return isr.select_victim(arr, bm, 0, CellMode::kSlc, now);
         })},
        {"isr/scan", time_select([&] {
           return isr.select_victim_reference(arr, bm, 0, CellMode::kSlc,
                                              now);
         })},
    };

    for (const Variant& v : variants) {
      const std::string key =
          std::string("gc/select/") + v.name + "/" + std::to_string(blocks);
      bench::add_micro_cell(
          report, key, "GC",
          std::string(v.name) + "@" + std::to_string(blocks), v.timing);
      table.add_row({key, Table::count(candidates),
                     Table::fmt(v.timing.ns_per_call(), 0),
                     Table::fmt(v.timing.calls_per_sec(), 0)});
    }
  }

  std::printf("%s\n", table.render("GC victim selection").c_str());
  return bench::save_report(report, out_path, "gc_bench", "gc/select");
}
