// Figure 13: I/O latency under varied P/E cycles (1000/2000/4000/8000).
//
// Paper shape: latency grows with wear (more raw errors -> longer ECC
// decode), and IPU's advantage over MGA holds across all wear stages.
#include <cstdio>
#include <vector>

#include "bench_util.h"

using namespace ppssd;
using namespace ppssd::bench;

int main() {
  print_scale_banner("Figure 13: I/O latency vs P/E cycles");

  Runner runner;
  const std::vector<std::uint32_t> pe_points = {1000, 2000, 4000, 8000};

  Table table({"P/E", "trace", "Baseline ms", "MGA ms", "IPU ms",
               "IPU vs MGA"});
  for (const std::uint32_t pe : pe_points) {
    const auto grouped = matrix_by_trace(runner, pe);
    for (const auto& trace : Runner::paper_traces()) {
      const auto& cells = grouped.at(trace);
      table.add_row({std::to_string(pe), trace,
                     Table::fmt(cells[0].avg_overall_ms),
                     Table::fmt(cells[1].avg_overall_ms),
                     Table::fmt(cells[2].avg_overall_ms),
                     core::delta_pct(cells[2].avg_overall_ms,
                                     cells[1].avg_overall_ms)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Shape checks: latency non-decreasing in P/E; IPU <= MGA at "
              "every wear stage.\n");
  return 0;
}
