# Empty compiler generated dependencies file for error_model_explorer.
# This may be replaced when dependencies are built.
