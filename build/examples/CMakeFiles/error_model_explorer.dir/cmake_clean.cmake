file(REMOVE_RECURSE
  "CMakeFiles/error_model_explorer.dir/error_model_explorer.cpp.o"
  "CMakeFiles/error_model_explorer.dir/error_model_explorer.cpp.o.d"
  "error_model_explorer"
  "error_model_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_model_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
