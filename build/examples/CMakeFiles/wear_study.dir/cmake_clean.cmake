file(REMOVE_RECURSE
  "CMakeFiles/wear_study.dir/wear_study.cpp.o"
  "CMakeFiles/wear_study.dir/wear_study.cpp.o.d"
  "wear_study"
  "wear_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wear_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
