file(REMOVE_RECURSE
  "CMakeFiles/ppssd_common.dir/common/config.cpp.o"
  "CMakeFiles/ppssd_common.dir/common/config.cpp.o.d"
  "CMakeFiles/ppssd_common.dir/common/latency_recorder.cpp.o"
  "CMakeFiles/ppssd_common.dir/common/latency_recorder.cpp.o.d"
  "CMakeFiles/ppssd_common.dir/common/rng.cpp.o"
  "CMakeFiles/ppssd_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/ppssd_common.dir/common/stats.cpp.o"
  "CMakeFiles/ppssd_common.dir/common/stats.cpp.o.d"
  "CMakeFiles/ppssd_common.dir/common/thread_pool.cpp.o"
  "CMakeFiles/ppssd_common.dir/common/thread_pool.cpp.o.d"
  "libppssd_common.a"
  "libppssd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppssd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
