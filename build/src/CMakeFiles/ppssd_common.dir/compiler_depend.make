# Empty compiler generated dependencies file for ppssd_common.
# This may be replaced when dependencies are built.
