file(REMOVE_RECURSE
  "libppssd_common.a"
)
