file(REMOVE_RECURSE
  "CMakeFiles/ppssd_trace.dir/trace/msr_parser.cpp.o"
  "CMakeFiles/ppssd_trace.dir/trace/msr_parser.cpp.o.d"
  "CMakeFiles/ppssd_trace.dir/trace/profiles.cpp.o"
  "CMakeFiles/ppssd_trace.dir/trace/profiles.cpp.o.d"
  "CMakeFiles/ppssd_trace.dir/trace/record.cpp.o"
  "CMakeFiles/ppssd_trace.dir/trace/record.cpp.o.d"
  "CMakeFiles/ppssd_trace.dir/trace/synthetic.cpp.o"
  "CMakeFiles/ppssd_trace.dir/trace/synthetic.cpp.o.d"
  "CMakeFiles/ppssd_trace.dir/trace/trace_stats.cpp.o"
  "CMakeFiles/ppssd_trace.dir/trace/trace_stats.cpp.o.d"
  "CMakeFiles/ppssd_trace.dir/trace/writer.cpp.o"
  "CMakeFiles/ppssd_trace.dir/trace/writer.cpp.o.d"
  "libppssd_trace.a"
  "libppssd_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppssd_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
