
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/msr_parser.cpp" "src/CMakeFiles/ppssd_trace.dir/trace/msr_parser.cpp.o" "gcc" "src/CMakeFiles/ppssd_trace.dir/trace/msr_parser.cpp.o.d"
  "/root/repo/src/trace/profiles.cpp" "src/CMakeFiles/ppssd_trace.dir/trace/profiles.cpp.o" "gcc" "src/CMakeFiles/ppssd_trace.dir/trace/profiles.cpp.o.d"
  "/root/repo/src/trace/record.cpp" "src/CMakeFiles/ppssd_trace.dir/trace/record.cpp.o" "gcc" "src/CMakeFiles/ppssd_trace.dir/trace/record.cpp.o.d"
  "/root/repo/src/trace/synthetic.cpp" "src/CMakeFiles/ppssd_trace.dir/trace/synthetic.cpp.o" "gcc" "src/CMakeFiles/ppssd_trace.dir/trace/synthetic.cpp.o.d"
  "/root/repo/src/trace/trace_stats.cpp" "src/CMakeFiles/ppssd_trace.dir/trace/trace_stats.cpp.o" "gcc" "src/CMakeFiles/ppssd_trace.dir/trace/trace_stats.cpp.o.d"
  "/root/repo/src/trace/writer.cpp" "src/CMakeFiles/ppssd_trace.dir/trace/writer.cpp.o" "gcc" "src/CMakeFiles/ppssd_trace.dir/trace/writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ppssd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
