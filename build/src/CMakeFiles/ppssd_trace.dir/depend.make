# Empty dependencies file for ppssd_trace.
# This may be replaced when dependencies are built.
