file(REMOVE_RECURSE
  "libppssd_trace.a"
)
