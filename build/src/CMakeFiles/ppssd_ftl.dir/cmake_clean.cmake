file(REMOVE_RECURSE
  "CMakeFiles/ppssd_ftl.dir/ftl/block_manager.cpp.o"
  "CMakeFiles/ppssd_ftl.dir/ftl/block_manager.cpp.o.d"
  "CMakeFiles/ppssd_ftl.dir/ftl/gc_policy.cpp.o"
  "CMakeFiles/ppssd_ftl.dir/ftl/gc_policy.cpp.o.d"
  "CMakeFiles/ppssd_ftl.dir/ftl/hotness.cpp.o"
  "CMakeFiles/ppssd_ftl.dir/ftl/hotness.cpp.o.d"
  "CMakeFiles/ppssd_ftl.dir/ftl/mapping.cpp.o"
  "CMakeFiles/ppssd_ftl.dir/ftl/mapping.cpp.o.d"
  "CMakeFiles/ppssd_ftl.dir/ftl/mapping_footprint.cpp.o"
  "CMakeFiles/ppssd_ftl.dir/ftl/mapping_footprint.cpp.o.d"
  "CMakeFiles/ppssd_ftl.dir/ftl/subpage_mapping.cpp.o"
  "CMakeFiles/ppssd_ftl.dir/ftl/subpage_mapping.cpp.o.d"
  "libppssd_ftl.a"
  "libppssd_ftl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppssd_ftl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
