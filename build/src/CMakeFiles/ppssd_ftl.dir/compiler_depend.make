# Empty compiler generated dependencies file for ppssd_ftl.
# This may be replaced when dependencies are built.
