file(REMOVE_RECURSE
  "libppssd_ftl.a"
)
