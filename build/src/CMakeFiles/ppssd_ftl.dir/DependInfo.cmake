
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ftl/block_manager.cpp" "src/CMakeFiles/ppssd_ftl.dir/ftl/block_manager.cpp.o" "gcc" "src/CMakeFiles/ppssd_ftl.dir/ftl/block_manager.cpp.o.d"
  "/root/repo/src/ftl/gc_policy.cpp" "src/CMakeFiles/ppssd_ftl.dir/ftl/gc_policy.cpp.o" "gcc" "src/CMakeFiles/ppssd_ftl.dir/ftl/gc_policy.cpp.o.d"
  "/root/repo/src/ftl/hotness.cpp" "src/CMakeFiles/ppssd_ftl.dir/ftl/hotness.cpp.o" "gcc" "src/CMakeFiles/ppssd_ftl.dir/ftl/hotness.cpp.o.d"
  "/root/repo/src/ftl/mapping.cpp" "src/CMakeFiles/ppssd_ftl.dir/ftl/mapping.cpp.o" "gcc" "src/CMakeFiles/ppssd_ftl.dir/ftl/mapping.cpp.o.d"
  "/root/repo/src/ftl/mapping_footprint.cpp" "src/CMakeFiles/ppssd_ftl.dir/ftl/mapping_footprint.cpp.o" "gcc" "src/CMakeFiles/ppssd_ftl.dir/ftl/mapping_footprint.cpp.o.d"
  "/root/repo/src/ftl/subpage_mapping.cpp" "src/CMakeFiles/ppssd_ftl.dir/ftl/subpage_mapping.cpp.o" "gcc" "src/CMakeFiles/ppssd_ftl.dir/ftl/subpage_mapping.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ppssd_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppssd_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppssd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
