file(REMOVE_RECURSE
  "CMakeFiles/ppssd_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/ppssd_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/ppssd_sim.dir/sim/replayer.cpp.o"
  "CMakeFiles/ppssd_sim.dir/sim/replayer.cpp.o.d"
  "CMakeFiles/ppssd_sim.dir/sim/service_model.cpp.o"
  "CMakeFiles/ppssd_sim.dir/sim/service_model.cpp.o.d"
  "CMakeFiles/ppssd_sim.dir/sim/ssd.cpp.o"
  "CMakeFiles/ppssd_sim.dir/sim/ssd.cpp.o.d"
  "libppssd_sim.a"
  "libppssd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppssd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
