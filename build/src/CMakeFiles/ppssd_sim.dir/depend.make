# Empty dependencies file for ppssd_sim.
# This may be replaced when dependencies are built.
