file(REMOVE_RECURSE
  "libppssd_sim.a"
)
