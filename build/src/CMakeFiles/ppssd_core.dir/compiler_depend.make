# Empty compiler generated dependencies file for ppssd_core.
# This may be replaced when dependencies are built.
