file(REMOVE_RECURSE
  "CMakeFiles/ppssd_core.dir/core/experiment.cpp.o"
  "CMakeFiles/ppssd_core.dir/core/experiment.cpp.o.d"
  "CMakeFiles/ppssd_core.dir/core/report.cpp.o"
  "CMakeFiles/ppssd_core.dir/core/report.cpp.o.d"
  "CMakeFiles/ppssd_core.dir/core/runner.cpp.o"
  "CMakeFiles/ppssd_core.dir/core/runner.cpp.o.d"
  "libppssd_core.a"
  "libppssd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppssd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
