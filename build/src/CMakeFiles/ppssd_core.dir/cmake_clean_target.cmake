file(REMOVE_RECURSE
  "libppssd_core.a"
)
