file(REMOVE_RECURSE
  "libppssd_nand.a"
)
