file(REMOVE_RECURSE
  "CMakeFiles/ppssd_nand.dir/nand/block.cpp.o"
  "CMakeFiles/ppssd_nand.dir/nand/block.cpp.o.d"
  "CMakeFiles/ppssd_nand.dir/nand/chip.cpp.o"
  "CMakeFiles/ppssd_nand.dir/nand/chip.cpp.o.d"
  "CMakeFiles/ppssd_nand.dir/nand/disturb.cpp.o"
  "CMakeFiles/ppssd_nand.dir/nand/disturb.cpp.o.d"
  "CMakeFiles/ppssd_nand.dir/nand/flash_array.cpp.o"
  "CMakeFiles/ppssd_nand.dir/nand/flash_array.cpp.o.d"
  "CMakeFiles/ppssd_nand.dir/nand/geometry.cpp.o"
  "CMakeFiles/ppssd_nand.dir/nand/geometry.cpp.o.d"
  "CMakeFiles/ppssd_nand.dir/nand/page.cpp.o"
  "CMakeFiles/ppssd_nand.dir/nand/page.cpp.o.d"
  "CMakeFiles/ppssd_nand.dir/nand/plane.cpp.o"
  "CMakeFiles/ppssd_nand.dir/nand/plane.cpp.o.d"
  "CMakeFiles/ppssd_nand.dir/nand/timing.cpp.o"
  "CMakeFiles/ppssd_nand.dir/nand/timing.cpp.o.d"
  "libppssd_nand.a"
  "libppssd_nand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppssd_nand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
