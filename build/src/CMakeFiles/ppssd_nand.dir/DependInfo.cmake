
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nand/block.cpp" "src/CMakeFiles/ppssd_nand.dir/nand/block.cpp.o" "gcc" "src/CMakeFiles/ppssd_nand.dir/nand/block.cpp.o.d"
  "/root/repo/src/nand/chip.cpp" "src/CMakeFiles/ppssd_nand.dir/nand/chip.cpp.o" "gcc" "src/CMakeFiles/ppssd_nand.dir/nand/chip.cpp.o.d"
  "/root/repo/src/nand/disturb.cpp" "src/CMakeFiles/ppssd_nand.dir/nand/disturb.cpp.o" "gcc" "src/CMakeFiles/ppssd_nand.dir/nand/disturb.cpp.o.d"
  "/root/repo/src/nand/flash_array.cpp" "src/CMakeFiles/ppssd_nand.dir/nand/flash_array.cpp.o" "gcc" "src/CMakeFiles/ppssd_nand.dir/nand/flash_array.cpp.o.d"
  "/root/repo/src/nand/geometry.cpp" "src/CMakeFiles/ppssd_nand.dir/nand/geometry.cpp.o" "gcc" "src/CMakeFiles/ppssd_nand.dir/nand/geometry.cpp.o.d"
  "/root/repo/src/nand/page.cpp" "src/CMakeFiles/ppssd_nand.dir/nand/page.cpp.o" "gcc" "src/CMakeFiles/ppssd_nand.dir/nand/page.cpp.o.d"
  "/root/repo/src/nand/plane.cpp" "src/CMakeFiles/ppssd_nand.dir/nand/plane.cpp.o" "gcc" "src/CMakeFiles/ppssd_nand.dir/nand/plane.cpp.o.d"
  "/root/repo/src/nand/timing.cpp" "src/CMakeFiles/ppssd_nand.dir/nand/timing.cpp.o" "gcc" "src/CMakeFiles/ppssd_nand.dir/nand/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ppssd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
