# Empty compiler generated dependencies file for ppssd_nand.
# This may be replaced when dependencies are built.
