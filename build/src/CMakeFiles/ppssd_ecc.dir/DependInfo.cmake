
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ecc/bch.cpp" "src/CMakeFiles/ppssd_ecc.dir/ecc/bch.cpp.o" "gcc" "src/CMakeFiles/ppssd_ecc.dir/ecc/bch.cpp.o.d"
  "/root/repo/src/ecc/ber_model.cpp" "src/CMakeFiles/ppssd_ecc.dir/ecc/ber_model.cpp.o" "gcc" "src/CMakeFiles/ppssd_ecc.dir/ecc/ber_model.cpp.o.d"
  "/root/repo/src/ecc/galois.cpp" "src/CMakeFiles/ppssd_ecc.dir/ecc/galois.cpp.o" "gcc" "src/CMakeFiles/ppssd_ecc.dir/ecc/galois.cpp.o.d"
  "/root/repo/src/ecc/latency_model.cpp" "src/CMakeFiles/ppssd_ecc.dir/ecc/latency_model.cpp.o" "gcc" "src/CMakeFiles/ppssd_ecc.dir/ecc/latency_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ppssd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
