file(REMOVE_RECURSE
  "CMakeFiles/ppssd_ecc.dir/ecc/bch.cpp.o"
  "CMakeFiles/ppssd_ecc.dir/ecc/bch.cpp.o.d"
  "CMakeFiles/ppssd_ecc.dir/ecc/ber_model.cpp.o"
  "CMakeFiles/ppssd_ecc.dir/ecc/ber_model.cpp.o.d"
  "CMakeFiles/ppssd_ecc.dir/ecc/galois.cpp.o"
  "CMakeFiles/ppssd_ecc.dir/ecc/galois.cpp.o.d"
  "CMakeFiles/ppssd_ecc.dir/ecc/latency_model.cpp.o"
  "CMakeFiles/ppssd_ecc.dir/ecc/latency_model.cpp.o.d"
  "libppssd_ecc.a"
  "libppssd_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppssd_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
