file(REMOVE_RECURSE
  "libppssd_ecc.a"
)
