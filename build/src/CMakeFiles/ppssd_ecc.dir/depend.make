# Empty dependencies file for ppssd_ecc.
# This may be replaced when dependencies are built.
