file(REMOVE_RECURSE
  "CMakeFiles/ppssd_cache.dir/cache/baseline_scheme.cpp.o"
  "CMakeFiles/ppssd_cache.dir/cache/baseline_scheme.cpp.o.d"
  "CMakeFiles/ppssd_cache.dir/cache/ipu_scheme.cpp.o"
  "CMakeFiles/ppssd_cache.dir/cache/ipu_scheme.cpp.o.d"
  "CMakeFiles/ppssd_cache.dir/cache/mga_scheme.cpp.o"
  "CMakeFiles/ppssd_cache.dir/cache/mga_scheme.cpp.o.d"
  "CMakeFiles/ppssd_cache.dir/cache/scheme.cpp.o"
  "CMakeFiles/ppssd_cache.dir/cache/scheme.cpp.o.d"
  "libppssd_cache.a"
  "libppssd_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppssd_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
