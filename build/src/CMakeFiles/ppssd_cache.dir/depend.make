# Empty dependencies file for ppssd_cache.
# This may be replaced when dependencies are built.
