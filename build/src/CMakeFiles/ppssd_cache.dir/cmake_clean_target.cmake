file(REMOVE_RECURSE
  "libppssd_cache.a"
)
