
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/baseline_scheme.cpp" "src/CMakeFiles/ppssd_cache.dir/cache/baseline_scheme.cpp.o" "gcc" "src/CMakeFiles/ppssd_cache.dir/cache/baseline_scheme.cpp.o.d"
  "/root/repo/src/cache/ipu_scheme.cpp" "src/CMakeFiles/ppssd_cache.dir/cache/ipu_scheme.cpp.o" "gcc" "src/CMakeFiles/ppssd_cache.dir/cache/ipu_scheme.cpp.o.d"
  "/root/repo/src/cache/mga_scheme.cpp" "src/CMakeFiles/ppssd_cache.dir/cache/mga_scheme.cpp.o" "gcc" "src/CMakeFiles/ppssd_cache.dir/cache/mga_scheme.cpp.o.d"
  "/root/repo/src/cache/scheme.cpp" "src/CMakeFiles/ppssd_cache.dir/cache/scheme.cpp.o" "gcc" "src/CMakeFiles/ppssd_cache.dir/cache/scheme.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ppssd_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppssd_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppssd_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppssd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
