file(REMOVE_RECURSE
  "CMakeFiles/ftl_test.dir/ftl/block_manager_test.cpp.o"
  "CMakeFiles/ftl_test.dir/ftl/block_manager_test.cpp.o.d"
  "CMakeFiles/ftl_test.dir/ftl/gc_policy_test.cpp.o"
  "CMakeFiles/ftl_test.dir/ftl/gc_policy_test.cpp.o.d"
  "CMakeFiles/ftl_test.dir/ftl/hotness_test.cpp.o"
  "CMakeFiles/ftl_test.dir/ftl/hotness_test.cpp.o.d"
  "CMakeFiles/ftl_test.dir/ftl/mapping_footprint_test.cpp.o"
  "CMakeFiles/ftl_test.dir/ftl/mapping_footprint_test.cpp.o.d"
  "CMakeFiles/ftl_test.dir/ftl/mapping_test.cpp.o"
  "CMakeFiles/ftl_test.dir/ftl/mapping_test.cpp.o.d"
  "CMakeFiles/ftl_test.dir/ftl/subpage_mapping_test.cpp.o"
  "CMakeFiles/ftl_test.dir/ftl/subpage_mapping_test.cpp.o.d"
  "ftl_test"
  "ftl_test.pdb"
  "ftl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
