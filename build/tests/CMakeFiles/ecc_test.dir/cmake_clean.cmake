file(REMOVE_RECURSE
  "CMakeFiles/ecc_test.dir/ecc/bch_exhaustive_test.cpp.o"
  "CMakeFiles/ecc_test.dir/ecc/bch_exhaustive_test.cpp.o.d"
  "CMakeFiles/ecc_test.dir/ecc/bch_test.cpp.o"
  "CMakeFiles/ecc_test.dir/ecc/bch_test.cpp.o.d"
  "CMakeFiles/ecc_test.dir/ecc/ber_model_test.cpp.o"
  "CMakeFiles/ecc_test.dir/ecc/ber_model_test.cpp.o.d"
  "CMakeFiles/ecc_test.dir/ecc/galois_test.cpp.o"
  "CMakeFiles/ecc_test.dir/ecc/galois_test.cpp.o.d"
  "CMakeFiles/ecc_test.dir/ecc/latency_model_test.cpp.o"
  "CMakeFiles/ecc_test.dir/ecc/latency_model_test.cpp.o.d"
  "ecc_test"
  "ecc_test.pdb"
  "ecc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
