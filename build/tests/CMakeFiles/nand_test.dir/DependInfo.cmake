
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nand/block_test.cpp" "tests/CMakeFiles/nand_test.dir/nand/block_test.cpp.o" "gcc" "tests/CMakeFiles/nand_test.dir/nand/block_test.cpp.o.d"
  "/root/repo/tests/nand/disturb_test.cpp" "tests/CMakeFiles/nand_test.dir/nand/disturb_test.cpp.o" "gcc" "tests/CMakeFiles/nand_test.dir/nand/disturb_test.cpp.o.d"
  "/root/repo/tests/nand/flash_array_test.cpp" "tests/CMakeFiles/nand_test.dir/nand/flash_array_test.cpp.o" "gcc" "tests/CMakeFiles/nand_test.dir/nand/flash_array_test.cpp.o.d"
  "/root/repo/tests/nand/geometry_test.cpp" "tests/CMakeFiles/nand_test.dir/nand/geometry_test.cpp.o" "gcc" "tests/CMakeFiles/nand_test.dir/nand/geometry_test.cpp.o.d"
  "/root/repo/tests/nand/page_test.cpp" "tests/CMakeFiles/nand_test.dir/nand/page_test.cpp.o" "gcc" "tests/CMakeFiles/nand_test.dir/nand/page_test.cpp.o.d"
  "/root/repo/tests/nand/shadow_fuzz_test.cpp" "tests/CMakeFiles/nand_test.dir/nand/shadow_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/nand_test.dir/nand/shadow_fuzz_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ppssd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppssd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppssd_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppssd_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppssd_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppssd_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppssd_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppssd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
