file(REMOVE_RECURSE
  "CMakeFiles/nand_test.dir/nand/block_test.cpp.o"
  "CMakeFiles/nand_test.dir/nand/block_test.cpp.o.d"
  "CMakeFiles/nand_test.dir/nand/disturb_test.cpp.o"
  "CMakeFiles/nand_test.dir/nand/disturb_test.cpp.o.d"
  "CMakeFiles/nand_test.dir/nand/flash_array_test.cpp.o"
  "CMakeFiles/nand_test.dir/nand/flash_array_test.cpp.o.d"
  "CMakeFiles/nand_test.dir/nand/geometry_test.cpp.o"
  "CMakeFiles/nand_test.dir/nand/geometry_test.cpp.o.d"
  "CMakeFiles/nand_test.dir/nand/page_test.cpp.o"
  "CMakeFiles/nand_test.dir/nand/page_test.cpp.o.d"
  "CMakeFiles/nand_test.dir/nand/shadow_fuzz_test.cpp.o"
  "CMakeFiles/nand_test.dir/nand/shadow_fuzz_test.cpp.o.d"
  "nand_test"
  "nand_test.pdb"
  "nand_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nand_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
