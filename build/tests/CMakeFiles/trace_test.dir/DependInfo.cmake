
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace/msr_parser_test.cpp" "tests/CMakeFiles/trace_test.dir/trace/msr_parser_test.cpp.o" "gcc" "tests/CMakeFiles/trace_test.dir/trace/msr_parser_test.cpp.o.d"
  "/root/repo/tests/trace/synthetic_test.cpp" "tests/CMakeFiles/trace_test.dir/trace/synthetic_test.cpp.o" "gcc" "tests/CMakeFiles/trace_test.dir/trace/synthetic_test.cpp.o.d"
  "/root/repo/tests/trace/trace_stats_test.cpp" "tests/CMakeFiles/trace_test.dir/trace/trace_stats_test.cpp.o" "gcc" "tests/CMakeFiles/trace_test.dir/trace/trace_stats_test.cpp.o.d"
  "/root/repo/tests/trace/writer_test.cpp" "tests/CMakeFiles/trace_test.dir/trace/writer_test.cpp.o" "gcc" "tests/CMakeFiles/trace_test.dir/trace/writer_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ppssd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppssd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppssd_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppssd_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppssd_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppssd_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppssd_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppssd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
