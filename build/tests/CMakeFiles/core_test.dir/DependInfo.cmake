
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/experiment_test.cpp" "tests/CMakeFiles/core_test.dir/core/experiment_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/experiment_test.cpp.o.d"
  "/root/repo/tests/core/report_test.cpp" "tests/CMakeFiles/core_test.dir/core/report_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/report_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ppssd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppssd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppssd_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppssd_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppssd_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppssd_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppssd_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppssd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
