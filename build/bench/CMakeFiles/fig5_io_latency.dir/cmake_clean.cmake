file(REMOVE_RECURSE
  "CMakeFiles/fig5_io_latency.dir/fig5_io_latency.cpp.o"
  "CMakeFiles/fig5_io_latency.dir/fig5_io_latency.cpp.o.d"
  "fig5_io_latency"
  "fig5_io_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_io_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
