file(REMOVE_RECURSE
  "CMakeFiles/table3_trace_specs.dir/table3_trace_specs.cpp.o"
  "CMakeFiles/table3_trace_specs.dir/table3_trace_specs.cpp.o.d"
  "table3_trace_specs"
  "table3_trace_specs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_trace_specs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
