# Empty compiler generated dependencies file for fig7_threelevel_writes.
# This may be replaced when dependencies are built.
