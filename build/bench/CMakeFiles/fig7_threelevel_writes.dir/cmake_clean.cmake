file(REMOVE_RECURSE
  "CMakeFiles/fig7_threelevel_writes.dir/fig7_threelevel_writes.cpp.o"
  "CMakeFiles/fig7_threelevel_writes.dir/fig7_threelevel_writes.cpp.o.d"
  "fig7_threelevel_writes"
  "fig7_threelevel_writes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_threelevel_writes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
