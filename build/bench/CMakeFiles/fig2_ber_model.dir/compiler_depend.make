# Empty compiler generated dependencies file for fig2_ber_model.
# This may be replaced when dependencies are built.
