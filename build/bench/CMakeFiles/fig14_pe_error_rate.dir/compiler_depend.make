# Empty compiler generated dependencies file for fig14_pe_error_rate.
# This may be replaced when dependencies are built.
