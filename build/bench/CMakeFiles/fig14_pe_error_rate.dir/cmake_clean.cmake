file(REMOVE_RECURSE
  "CMakeFiles/fig14_pe_error_rate.dir/fig14_pe_error_rate.cpp.o"
  "CMakeFiles/fig14_pe_error_rate.dir/fig14_pe_error_rate.cpp.o.d"
  "fig14_pe_error_rate"
  "fig14_pe_error_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_pe_error_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
