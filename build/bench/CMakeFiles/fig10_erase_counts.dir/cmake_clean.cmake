file(REMOVE_RECURSE
  "CMakeFiles/fig10_erase_counts.dir/fig10_erase_counts.cpp.o"
  "CMakeFiles/fig10_erase_counts.dir/fig10_erase_counts.cpp.o.d"
  "fig10_erase_counts"
  "fig10_erase_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_erase_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
