# Empty dependencies file for fig10_erase_counts.
# This may be replaced when dependencies are built.
