file(REMOVE_RECURSE
  "CMakeFiles/fig9_page_utilization.dir/fig9_page_utilization.cpp.o"
  "CMakeFiles/fig9_page_utilization.dir/fig9_page_utilization.cpp.o.d"
  "fig9_page_utilization"
  "fig9_page_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_page_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
