# Empty dependencies file for fig9_page_utilization.
# This may be replaced when dependencies are built.
