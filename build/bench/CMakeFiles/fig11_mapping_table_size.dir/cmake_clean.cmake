file(REMOVE_RECURSE
  "CMakeFiles/fig11_mapping_table_size.dir/fig11_mapping_table_size.cpp.o"
  "CMakeFiles/fig11_mapping_table_size.dir/fig11_mapping_table_size.cpp.o.d"
  "fig11_mapping_table_size"
  "fig11_mapping_table_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_mapping_table_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
