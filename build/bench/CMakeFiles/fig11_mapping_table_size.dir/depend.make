# Empty dependencies file for fig11_mapping_table_size.
# This may be replaced when dependencies are built.
