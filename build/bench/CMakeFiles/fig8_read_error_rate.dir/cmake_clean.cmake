file(REMOVE_RECURSE
  "CMakeFiles/fig8_read_error_rate.dir/fig8_read_error_rate.cpp.o"
  "CMakeFiles/fig8_read_error_rate.dir/fig8_read_error_rate.cpp.o.d"
  "fig8_read_error_rate"
  "fig8_read_error_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_read_error_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
