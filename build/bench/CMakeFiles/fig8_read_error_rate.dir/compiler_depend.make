# Empty compiler generated dependencies file for fig8_read_error_rate.
# This may be replaced when dependencies are built.
