# Empty dependencies file for fig6_write_distribution.
# This may be replaced when dependencies are built.
