# Empty dependencies file for table1_update_size_dist.
# This may be replaced when dependencies are built.
