file(REMOVE_RECURSE
  "CMakeFiles/table1_update_size_dist.dir/table1_update_size_dist.cpp.o"
  "CMakeFiles/table1_update_size_dist.dir/table1_update_size_dist.cpp.o.d"
  "table1_update_size_dist"
  "table1_update_size_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_update_size_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
