#include "perf/progress.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace ppssd::perf {
namespace {

ProgressReporter::Options plain(std::ostream& os) {
  ProgressReporter::Options opts;
  opts.enabled = true;
  opts.live = false;  // sequential lines, no \r control characters
  opts.out = &os;
  return opts;
}

TEST(ProgressFormat, RateScalesUnits) {
  EXPECT_EQ(ProgressReporter::format_rate(12.4), "12 req/s");
  EXPECT_EQ(ProgressReporter::format_rate(8500.0), "8.5 kreq/s");
  EXPECT_EQ(ProgressReporter::format_rate(2.25e6), "2.25 Mreq/s");
  EXPECT_EQ(ProgressReporter::format_rate(0.0), "0 req/s");
}

TEST(ProgressFormat, EtaPicksHumanUnits) {
  EXPECT_EQ(ProgressReporter::format_eta(12.0), "12s");
  EXPECT_EQ(ProgressReporter::format_eta(125.0), "2m05s");
  EXPECT_EQ(ProgressReporter::format_eta(5400.0), "1.5h");
}

TEST(ProgressReporter, DisabledSwallowsEverything) {
  std::ostringstream os;
  ProgressReporter::Options opts;
  opts.enabled = false;
  opts.out = &os;
  ProgressReporter rep(opts);
  rep.note("[ppssd] should not appear");
  ProgressCell* cell = rep.start_cell("IPU/ts0");
  cell->begin(100);
  cell->advance(50);
  rep.finish_cell(cell, 1.0, 100);
  EXPECT_TRUE(os.str().empty()) << os.str();
}

TEST(ProgressReporter, NotesAndFinishLinesAreSequential) {
  std::ostringstream os;
  ProgressReporter rep(plain(os));
  rep.set_expected_cells(2);
  rep.note("[ppssd] simulating IPU-ts0 ...");
  ProgressCell* cell = rep.start_cell("IPU/ts0");
  cell->begin(1000);
  cell->advance(1000);
  rep.finish_cell(cell, 2.0, 1000);
  const std::string out = os.str();
  EXPECT_NE(out.find("simulating IPU-ts0"), std::string::npos);
  EXPECT_NE(out.find("done IPU/ts0"), std::string::npos);
  EXPECT_NE(out.find("2.0s"), std::string::npos);
  EXPECT_NE(out.find("500 req/s"), std::string::npos);
  EXPECT_NE(out.find("(1/2 cells)"), std::string::npos);
  // Non-live mode must never emit carriage returns.
  EXPECT_EQ(out.find('\r'), std::string::npos);
}

TEST(ProgressReporter, StatusLineTracksMultipleActiveCells) {
  std::ostringstream os;
  ProgressReporter rep(plain(os));
  rep.set_expected_cells(3);
  ProgressCell* a = rep.start_cell("Baseline/ts0");
  ProgressCell* b = rep.start_cell("IPU/prxy0");
  a->begin(200);
  a->advance(50);
  b->begin(400);
  b->advance(100);

  const std::string line = rep.status_line();
  EXPECT_EQ(line.rfind("[ppssd] 0/3 cells", 0), 0u) << line;
  EXPECT_NE(line.find("Baseline/ts0 25%"), std::string::npos) << line;
  EXPECT_NE(line.find("IPU/prxy0 25%"), std::string::npos) << line;

  rep.finish_cell(a, 0.5, 200);
  const std::string after = rep.status_line();
  EXPECT_EQ(after.rfind("[ppssd] 1/3 cells", 0), 0u) << after;
  EXPECT_EQ(after.find("Baseline/ts0"), std::string::npos) << after;
  rep.finish_cell(b, 0.5, 400);
}

TEST(ProgressReporter, StatusLineElidesBeyondThreeActiveCells) {
  std::ostringstream os;
  ProgressReporter rep(plain(os));
  for (int i = 0; i < 5; ++i) {
    ProgressCell* c = rep.start_cell("cell" + std::to_string(i));
    c->begin(100);
    c->advance(10);
  }
  const std::string line = rep.status_line();
  EXPECT_NE(line.find("cell0"), std::string::npos);
  EXPECT_NE(line.find("cell2"), std::string::npos);
  EXPECT_EQ(line.find("cell3"), std::string::npos) << line;
  EXPECT_NE(line.find("+2 more"), std::string::npos) << line;
}

TEST(ProgressReporter, ExpectedCellsResetStartsANewBatch) {
  std::ostringstream os;
  ProgressReporter rep(plain(os));
  rep.set_expected_cells(1);
  ProgressCell* a = rep.start_cell("batch1");
  a->begin(10);
  rep.finish_cell(a, 0.1, 10);
  EXPECT_EQ(rep.status_line().rfind("[ppssd] 1/1 cells", 0), 0u);
  // A second run_all batch in the same process starts over.
  rep.set_expected_cells(2);
  EXPECT_EQ(rep.status_line().rfind("[ppssd] 0/2 cells", 0), 0u);
}

TEST(ProgressReporter, AdvanceClampsToTotal) {
  std::ostringstream os;
  ProgressReporter rep(plain(os));
  ProgressCell* c = rep.start_cell("clamped");
  c->begin(100);
  c->advance(250);  // replayer ticks on a mask; the last tick can overshoot
  EXPECT_NE(rep.status_line().find("clamped 100%"), std::string::npos);
  rep.finish_cell(c, 0.1, 100);
}

}  // namespace
}  // namespace ppssd::perf
