#include "perf/bench_report.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "telemetry/json.h"

namespace ppssd::perf {
namespace {

BenchReport sample_report() {
  BenchReport r;
  r.blocks = 2048;
  r.scale = 0.02;
  r.jobs = 4;
  BenchCell a;
  a.key = "IPU-ts0-pe4000-b2048-s0.02";
  a.scheme = "IPU";
  a.trace = "ts0";
  a.requests = 20000;
  a.ctrl_events = 123456;
  a.wall_seconds = 1.25;
  a.reqs_per_sec = 16000.0;
  a.ctrl_events_per_sec = 98764.8;
  a.phases = {0.05, 0.4, 0.75, 0.05};
  BenchCell b = a;
  b.key = "Baseline-ts0-pe4000-b2048-s0.02";
  b.scheme = "Baseline";
  b.reqs_per_sec = 25000.0;
  r.cells = {a, b};
  return r;
}

TEST(BenchReport, JsonRoundTripPreservesEveryField) {
  const BenchReport r = sample_report();
  const std::string json = r.to_json();
  // Must be valid JSON by the same parser users of the artifact get.
  ASSERT_TRUE(telemetry::json::parse(json).has_value()) << json;

  const auto parsed = BenchReport::from_json(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->blocks, r.blocks);
  EXPECT_DOUBLE_EQ(parsed->scale, r.scale);
  EXPECT_EQ(parsed->jobs, r.jobs);
  ASSERT_EQ(parsed->cells.size(), 2u);
  const BenchCell& c = parsed->cells[0];
  EXPECT_EQ(c.key, r.cells[0].key);
  EXPECT_EQ(c.scheme, "IPU");
  EXPECT_EQ(c.trace, "ts0");
  EXPECT_EQ(c.requests, 20000u);
  EXPECT_EQ(c.ctrl_events, 123456u);
  EXPECT_DOUBLE_EQ(c.wall_seconds, 1.25);
  EXPECT_DOUBLE_EQ(c.reqs_per_sec, 16000.0);
  EXPECT_DOUBLE_EQ(c.ctrl_events_per_sec, 98764.8);
  EXPECT_DOUBLE_EQ(c.phases.setup_seconds, 0.05);
  EXPECT_DOUBLE_EQ(c.phases.warmup_seconds, 0.4);
  EXPECT_DOUBLE_EQ(c.phases.measure_seconds, 0.75);
  EXPECT_DOUBLE_EQ(c.phases.report_seconds, 0.05);
}

TEST(BenchReport, RejectsWrongSchemaAndMalformedCells) {
  EXPECT_FALSE(BenchReport::from_json("").has_value());
  EXPECT_FALSE(BenchReport::from_json("[]").has_value());
  EXPECT_FALSE(BenchReport::from_json("{\"schema\":99,\"cells\":[]}")
                   .has_value());
  // A cell without a key has no identity to diff by.
  EXPECT_FALSE(BenchReport::from_json(
                   "{\"schema\":1,\"cells\":[{\"requests\":5}]}")
                   .has_value());
}

TEST(BenchReport, TotalsAggregateCells) {
  const BenchReport r = sample_report();
  EXPECT_DOUBLE_EQ(r.total_wall_seconds(), 2.5);
  EXPECT_NEAR(r.geomean_reqs_per_sec(), 20000.0, 1.0);
  EXPECT_DOUBLE_EQ(BenchReport{}.geomean_reqs_per_sec(), 0.0);
}

TEST(BenchReport, SaveLoadRoundTripsViaDisk) {
  const std::string path = ::testing::TempDir() + "bench_report_test.json";
  const BenchReport r = sample_report();
  ASSERT_TRUE(r.save(path));
  const auto loaded = BenchReport::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->cells.size(), 2u);
  EXPECT_EQ(loaded->to_json(), r.to_json());
  std::remove(path.c_str());
  EXPECT_FALSE(BenchReport::load(path).has_value());
}

TEST(CompareBench, FlagsOnlyDropsBeyondTolerance) {
  const BenchReport base = sample_report();
  BenchReport cur = base;
  cur.cells[0].reqs_per_sec = 15000.0;  // -6.25%: inside 10% tolerance
  cur.cells[1].reqs_per_sec = 20000.0;  // -20%: regression

  const BenchComparison cmp = compare_bench(base, cur, 0.10);
  ASSERT_EQ(cmp.cells.size(), 2u);
  EXPECT_FALSE(cmp.cells[0].regression);
  EXPECT_NEAR(cmp.cells[0].ratio, 0.9375, 1e-9);
  EXPECT_TRUE(cmp.cells[1].regression);
  EXPECT_NEAR(cmp.cells[1].ratio, 0.8, 1e-9);
  EXPECT_TRUE(cmp.has_regression());
  EXPECT_NEAR(cmp.worst_ratio(), 0.8, 1e-9);
  EXPECT_NE(cmp.render().find("REGRESSION"), std::string::npos);
}

TEST(CompareBench, SpeedupsAndWideToleranceAreClean) {
  const BenchReport base = sample_report();
  BenchReport cur = base;
  cur.cells[0].reqs_per_sec *= 1.5;
  const BenchComparison cmp = compare_bench(base, cur, 0.25);
  EXPECT_FALSE(cmp.has_regression());
  EXPECT_DOUBLE_EQ(cmp.worst_ratio(), 1.0);
  EXPECT_NE(cmp.render().find("ok"), std::string::npos);
}

TEST(CompareBench, UnmatchedCellsAreReportedNotFailed) {
  const BenchReport base = sample_report();
  BenchReport cur = base;
  cur.cells.erase(cur.cells.begin());  // IPU cell missing from current
  BenchCell fresh;
  fresh.key = "MGA-ts0-pe4000-b2048-s0.02";
  fresh.reqs_per_sec = 100.0;
  cur.cells.push_back(fresh);

  const BenchComparison cmp = compare_bench(base, cur, 0.10);
  EXPECT_EQ(cmp.cells.size(), 1u);  // only the matched Baseline cell
  ASSERT_EQ(cmp.only_in_baseline.size(), 1u);
  EXPECT_EQ(cmp.only_in_baseline[0], base.cells[0].key);
  ASSERT_EQ(cmp.only_in_current.size(), 1u);
  EXPECT_EQ(cmp.only_in_current[0], fresh.key);
  EXPECT_FALSE(cmp.has_regression());
}

TEST(CompareBench, PhaseSlowdownGatesEvenWhenThroughputHolds) {
  const BenchReport base = sample_report();
  BenchReport cur = base;
  // Throughput unchanged, but warmup wall time tripled (0.4s -> 1.2s):
  // exactly the shape of a warm-start cache that stopped hitting.
  cur.cells[0].phases.warmup_seconds = 1.2;
  const BenchComparison cmp = compare_bench(base, cur, 0.10);
  ASSERT_EQ(cmp.cells.size(), 2u);
  EXPECT_FALSE(cmp.cells[0].regression);
  EXPECT_TRUE(cmp.cells[0].warmup.regression);
  EXPECT_NEAR(cmp.cells[0].warmup.ratio, 3.0, 1e-9);
  EXPECT_FALSE(cmp.cells[0].setup.regression);
  EXPECT_FALSE(cmp.cells[0].measure.regression);
  EXPECT_TRUE(cmp.cells[0].phase_regression());
  EXPECT_FALSE(cmp.has_regression());
  EXPECT_TRUE(cmp.has_phase_regression());
  EXPECT_NE(cmp.render().find("phase warmup"), std::string::npos);
  EXPECT_NE(cmp.render().find("phase REGRESSION"), std::string::npos);
}

TEST(CompareBench, PhaseGateIsTwiceTheCellTolerance) {
  // Phases are raw wall times, so they gate at 2x the throughput
  // tolerance: +15% warmup noise passes at tolerance 0.10, +25% gates.
  const BenchReport base = sample_report();
  BenchReport cur = base;
  cur.cells[0].phases.warmup_seconds = 0.4 * 1.15;
  EXPECT_FALSE(compare_bench(base, cur, 0.10).has_phase_regression());
  cur.cells[0].phases.warmup_seconds = 0.4 * 1.25;
  EXPECT_TRUE(compare_bench(base, cur, 0.10).has_phase_regression());
}

TEST(CompareBench, PhaseSpeedupAndTinyPhasesAreClean) {
  const BenchReport base = sample_report();
  BenchReport cur = base;
  cur.cells[0].phases.warmup_seconds = 0.01;  // warm-start hit: much faster
  // Sub-floor noise on both sides never gates, however large the ratio.
  cur.cells[1].phases.setup_seconds = 0.04;
  BenchReport base2 = base;
  base2.cells[1].phases.setup_seconds = 0.001;
  const BenchComparison cmp = compare_bench(base2, cur, 0.10);
  EXPECT_FALSE(cmp.has_phase_regression());
  // Above the floor the same ratio would gate.
  BenchReport cur2 = base;
  cur2.cells[1].phases.setup_seconds = 0.2;
  EXPECT_TRUE(compare_bench(base, cur2, 0.10).has_phase_regression());
}

TEST(CompareBench, ZeroBaselineRateNeverDividesOrRegresses) {
  BenchReport base = sample_report();
  base.cells[0].reqs_per_sec = 0.0;
  const BenchComparison cmp = compare_bench(base, sample_report(), 0.10);
  ASSERT_EQ(cmp.cells.size(), 2u);
  EXPECT_DOUBLE_EQ(cmp.cells[0].ratio, 0.0);
  EXPECT_FALSE(cmp.cells[0].regression);
}

TEST(ShardScaling, RendersSpeedupAndEfficiencyPerFamily) {
  BenchReport report;
  const auto cell = [](std::string key, double rate) {
    BenchCell c;
    c.key = std::move(key);
    c.reqs_per_sec = rate;
    return c;
  };
  report.cells.push_back(cell("shard/ctrl/s1", 1000.0));
  report.cells.push_back(cell("shard/ctrl/s4", 3000.0));
  report.cells.push_back(cell("shard/replay/s1", 500.0));
  report.cells.push_back(cell("shard/replay/s2", 900.0));
  // Not shard families: no sN suffix / no s1 anchor / non-numeric tail.
  report.cells.push_back(cell("shard/ctrl/seq", 1100.0));
  report.cells.push_back(cell("warmstart/s8", 50.0));
  report.cells.push_back(cell("snapshot/s4x", 10.0));

  const std::string table = render_shard_scaling(report);
  // shard/ctrl: s4 at 3x over s1 = 75% efficiency.
  EXPECT_NE(table.find("shard/ctrl/s4"), std::string::npos);
  EXPECT_NE(table.find("3.00x"), std::string::npos);
  EXPECT_NE(table.find("75%"), std::string::npos);
  // shard/replay: s2 at 1.8x = 90% efficiency.
  EXPECT_NE(table.find("shard/replay/s2"), std::string::npos);
  EXPECT_NE(table.find("1.80x"), std::string::npos);
  EXPECT_NE(table.find("90%"), std::string::npos);
  // Anchors render too (speedup 1.00x by construction).
  EXPECT_NE(table.find("shard/ctrl/s1"), std::string::npos);
  // Non-family keys stay out of the table.
  EXPECT_EQ(table.find("shard/ctrl/seq"), std::string::npos);
  EXPECT_EQ(table.find("warmstart/s8"), std::string::npos);
  EXPECT_EQ(table.find("snapshot/s4x"), std::string::npos);
}

TEST(ShardScaling, EmptyWithoutShardCellFamilies) {
  BenchReport report;
  BenchCell c;
  c.key = "IPU-ts0";
  c.reqs_per_sec = 1000.0;
  report.cells.push_back(c);
  EXPECT_EQ(render_shard_scaling(report), "");
  EXPECT_EQ(render_shard_scaling(BenchReport{}), "");
}

}  // namespace
}  // namespace ppssd::perf
