#include "perf/profiler.h"

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

#include "telemetry/json.h"

namespace ppssd::perf {
namespace {

Profiler::Options quiet() {
  Profiler::Options opts;
  opts.report_to_stderr = false;
  return opts;
}

const Profiler::NodeReport* find_path(
    const std::vector<Profiler::NodeReport>& tree, const std::string& path) {
  for (const auto& n : tree) {
    if (n.path == path) return &n;
  }
  return nullptr;
}

TEST(Profiler, BuildsHierarchicalCallTree) {
  Profiler prof(quiet());
  prof.enter("outer");
  prof.enter("inner");
  prof.leave();
  prof.enter("inner");
  prof.leave();
  prof.leave();
  prof.enter("outer");
  prof.leave();

  const auto tree = prof.merged_tree();
  const auto* outer = find_path(tree, "outer");
  const auto* inner = find_path(tree, "outer/inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->calls, 2u);
  EXPECT_EQ(outer->depth, 0);
  EXPECT_EQ(inner->calls, 2u);
  EXPECT_EQ(inner->depth, 1);
  EXPECT_EQ(inner->name, "inner");
  // Inclusive time of a parent covers its children; self excludes them.
  EXPECT_GE(outer->total_ns, inner->total_ns);
  EXPECT_LE(outer->self_ns, outer->total_ns);
  EXPECT_EQ(prof.span_count(), 4u);
  EXPECT_EQ(prof.dropped_spans(), 0u);
}

TEST(Profiler, ScopeRaiiMatchesEnterLeave) {
  Profiler prof(quiet());
  Profiler* prev = Profiler::exchange_instance(&prof);
  {
    PPSSD_PROFILE_SCOPE("a");
    { PPSSD_PROFILE_SCOPE("b"); }
  }
  Profiler::exchange_instance(prev);
  const auto tree = prof.merged_tree();
  EXPECT_NE(find_path(tree, "a"), nullptr);
  EXPECT_NE(find_path(tree, "a/b"), nullptr);
  // After the exchange the disabled path is back: no new frames.
  { PPSSD_PROFILE_SCOPE("after"); }
  EXPECT_EQ(find_path(prof.merged_tree(), "after"), nullptr);
}

TEST(Profiler, MergesThreadsByScopePath) {
  Profiler prof(quiet());
  auto work = [&prof] {
    prof.enter("worker");
    prof.enter("step");
    prof.leave();
    prof.leave();
  };
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) threads.emplace_back(work);
  for (auto& t : threads) t.join();

  EXPECT_EQ(prof.thread_count(), 4u);
  const auto tree = prof.merged_tree();
  const auto* worker = find_path(tree, "worker");
  const auto* step = find_path(tree, "worker/step");
  ASSERT_NE(worker, nullptr);
  ASSERT_NE(step, nullptr);
  EXPECT_EQ(worker->calls, 4u);  // one per thread, merged
  EXPECT_EQ(step->calls, 4u);
}

TEST(Profiler, SpanCapDropsAreCountedNotLost) {
  Profiler::Options opts = quiet();
  opts.max_spans_per_thread = 3;
  Profiler prof(opts);
  for (int i = 0; i < 10; ++i) {
    prof.enter("hot");
    prof.leave();
  }
  EXPECT_EQ(prof.span_count(), 3u);
  EXPECT_EQ(prof.dropped_spans(), 7u);
  // The call tree keeps aggregating past the timeline cap.
  const auto* hot = find_path(prof.merged_tree(), "hot");
  ASSERT_NE(hot, nullptr);
  EXPECT_EQ(hot->calls, 10u);
}

TEST(Profiler, ChromeJsonParsesAndUsesWallClockDomain) {
  Profiler prof(quiet());
  prof.enter("experiment");
  prof.enter("measure");
  prof.leave();
  prof.leave();

  std::ostringstream os;
  prof.write_chrome_json(os);
  const auto doc = telemetry::json::parse(os.str());
  ASSERT_TRUE(doc.has_value() && doc->is_object()) << os.str();
  const auto* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  // pid 1 everywhere: the wall-clock domain never collides with the
  // sim-time telemetry trace (pid 0) when the files are concatenated.
  std::size_t spans = 0;
  bool saw_closing = false;
  for (const auto& e : events->array) {
    const auto* pid = e.find("pid");
    ASSERT_NE(pid, nullptr);
    EXPECT_DOUBLE_EQ(pid->number, 1.0);
    const auto* ph = e.find("ph");
    if (ph != nullptr && ph->string == "X") {
      ++spans;
      EXPECT_GE(e.find("dur")->number, 0.0);
    }
    if (e.find("name")->string == "profile_closed") {
      saw_closing = true;
      EXPECT_DOUBLE_EQ(e.find("args")->find("spans")->number, 2.0);
      EXPECT_DOUBLE_EQ(e.find("args")->find("dropped")->number, 0.0);
    }
  }
  EXPECT_EQ(spans, 2u);
  EXPECT_TRUE(saw_closing);
}

TEST(Profiler, ReportTextListsScopesWithIndentation) {
  Profiler prof(quiet());
  prof.enter("experiment");
  prof.enter("warmup");
  prof.leave();
  prof.leave();
  const std::string text = prof.report_text();
  EXPECT_NE(text.find("wall-clock profile"), std::string::npos);
  EXPECT_NE(text.find("experiment"), std::string::npos);
  EXPECT_NE(text.find("  warmup"), std::string::npos);
}

TEST(Profiler, UnbalancedLeaveIsIgnored) {
  Profiler prof(quiet());
  prof.leave();  // nothing open: must not underflow
  prof.enter("only");
  prof.leave();
  prof.leave();  // extra
  EXPECT_EQ(prof.span_count(), 1u);
}

// The acceptance bar: a disabled profiler (no instance installed) must
// cost nothing measurable. A/B-time a tight loop of profile scopes with
// no instance vs. an installed one; the disabled loop must not look like
// it is doing the enabled loop's work. Generous 8x bound — the disabled
// path is a null test while the enabled path takes two clock reads and
// tree bookkeeping, which is reliably slower even under CI noise.
TEST(Profiler, DisabledScopeIsFreeComparedToEnabled) {
  Profiler* outer = Profiler::exchange_instance(nullptr);
  constexpr int kIters = 200000;
  auto time_loop = [&] {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kIters; ++i) {
      PPSSD_PROFILE_SCOPE("ab_test");
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  // Warm both paths once, then take the best of three to shed scheduler
  // noise.
  auto best_of = [&](auto&& f) {
    double best = f();
    for (int i = 0; i < 2; ++i) best = std::min(best, f());
    return best;
  };

  const double disabled = best_of(time_loop);

  Profiler::Options opts = quiet();
  opts.max_spans_per_thread = 0;  // timeline off; tree bookkeeping stays
  Profiler prof(opts);
  Profiler* prev = Profiler::exchange_instance(&prof);
  const double enabled = best_of(time_loop);
  Profiler::exchange_instance(prev);

  EXPECT_GT(enabled, 0.0);
  EXPECT_LT(disabled, enabled * 8.0)
      << "disabled=" << disabled << "s enabled=" << enabled << "s";
  Profiler::exchange_instance(outer);
}

}  // namespace
}  // namespace ppssd::perf
