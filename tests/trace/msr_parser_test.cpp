#include "trace/msr_parser.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace ppssd::trace {
namespace {

TEST(MsrParser, ParsesWellFormedLine) {
  TraceRecord rec;
  std::uint64_t raw = 0;
  ASSERT_TRUE(MsrTraceParser::parse_line(
      "128166372003061629,hm,0,Read,383496192,32768,58000", &rec != nullptr
          ? rec
          : rec,
      &raw));
  EXPECT_EQ(rec.op, OpType::kRead);
  EXPECT_EQ(rec.offset, 383496192u);
  EXPECT_EQ(rec.size, 32768u);
  EXPECT_EQ(raw, 128166372003061629u);
}

TEST(MsrParser, WriteTypeCaseInsensitive) {
  TraceRecord rec;
  EXPECT_TRUE(
      MsrTraceParser::parse_line("1,h,0,WRITE,4096,512,1", rec, nullptr));
  EXPECT_EQ(rec.op, OpType::kWrite);
  EXPECT_TRUE(MsrTraceParser::parse_line("1,h,0,w,4096,512,1", rec, nullptr));
  EXPECT_EQ(rec.op, OpType::kWrite);
}

TEST(MsrParser, RejectsMalformedLines) {
  TraceRecord rec;
  EXPECT_FALSE(MsrTraceParser::parse_line("", rec, nullptr));
  EXPECT_FALSE(MsrTraceParser::parse_line("1,h,0,Read", rec, nullptr));
  EXPECT_FALSE(
      MsrTraceParser::parse_line("x,h,0,Read,1,1,1", rec, nullptr));
  EXPECT_FALSE(
      MsrTraceParser::parse_line("1,h,0,Flush,1,1,1", rec, nullptr));
  EXPECT_FALSE(
      MsrTraceParser::parse_line("1,h,0,Read,abc,1,1", rec, nullptr));
  EXPECT_FALSE(MsrTraceParser::parse_line("1,h,0,Read,1,0,1", rec, nullptr));
}

class MsrParserFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "ppssd_msr_test.csv";
    std::ofstream out(path_);
    out << "128166372003000000,srv,0,Write,0,4096,100\n"
        << "# a comment line\n"
        << "128166372003100000,srv,0,Read,0,8192,100\n"
        << "garbage line that should be skipped\n"
        << "128166372003200000,srv,0,Write,16384,4096,100\n";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(MsrParserFileTest, StreamsRecordsWithRebasedTime) {
  MsrTraceParser parser(path_);
  TraceRecord rec;

  ASSERT_TRUE(parser.next(rec));
  EXPECT_EQ(rec.arrival, 0u);  // rebased to trace start
  EXPECT_EQ(rec.op, OpType::kWrite);

  ASSERT_TRUE(parser.next(rec));
  // 100000 FILETIME ticks * 100 ns.
  EXPECT_EQ(rec.arrival, 10'000'000u);
  EXPECT_EQ(rec.op, OpType::kRead);
  EXPECT_EQ(rec.size, 8192u);

  ASSERT_TRUE(parser.next(rec));
  EXPECT_EQ(rec.offset, 16384u);

  EXPECT_FALSE(parser.next(rec));
  EXPECT_EQ(parser.skipped_lines(), 1u);  // only the garbage line
}

TEST_F(MsrParserFileTest, ResetRestartsStream) {
  MsrTraceParser parser(path_);
  TraceRecord rec;
  while (parser.next(rec)) {
  }
  parser.reset();
  ASSERT_TRUE(parser.next(rec));
  EXPECT_EQ(rec.arrival, 0u);
}

TEST(MsrParser, MissingFileThrows) {
  EXPECT_THROW(MsrTraceParser("/nonexistent/definitely_missing.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace ppssd::trace
