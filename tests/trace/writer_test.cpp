#include "trace/writer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "trace/msr_parser.h"
#include "trace/profiles.h"
#include "trace/synthetic.h"

namespace ppssd::trace {
namespace {

TEST(MsrWriter, EmitsParseableLines) {
  std::ostringstream out;
  MsrTraceWriter writer(out, "host1", 3);
  writer.write(TraceRecord{0, OpType::kWrite, 4096, 8192});
  writer.write(TraceRecord{1'000'000, OpType::kRead, 0, 4096});
  EXPECT_EQ(writer.records_written(), 2u);

  std::istringstream in(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  TraceRecord rec;
  std::uint64_t raw = 0;
  ASSERT_TRUE(MsrTraceParser::parse_line(line, rec, &raw));
  EXPECT_EQ(rec.op, OpType::kWrite);
  EXPECT_EQ(rec.offset, 4096u);
  EXPECT_EQ(rec.size, 8192u);

  ASSERT_TRUE(std::getline(in, line));
  ASSERT_TRUE(MsrTraceParser::parse_line(line, rec, nullptr));
  EXPECT_EQ(rec.op, OpType::kRead);
}

TEST(MsrWriter, TimestampsConvertNsToTicks) {
  std::ostringstream out;
  MsrTraceWriter writer(out);
  writer.set_epoch_ticks(1'000'000);
  writer.write(TraceRecord{12'345'600, OpType::kRead, 0, 512});
  std::uint64_t raw = 0;
  TraceRecord rec;
  ASSERT_TRUE(MsrTraceParser::parse_line(out.str(), rec, &raw));
  EXPECT_EQ(raw, 1'000'000u + 123'456u);
}

TEST(MsrWriter, RoundTripThroughFilePreservesStream) {
  // Synthetic -> CSV file -> parser must reproduce the exact records
  // (arrivals rebased to the first record, rounded to 100 ns ticks).
  const auto& profile = profile_by_name("wdev0");
  SyntheticWorkload workload(profile, 4ull << 30, 0.001);
  const auto original = collect(workload);

  const std::string path = ::testing::TempDir() + "ppssd_roundtrip.csv";
  {
    std::ofstream file(path);
    MsrTraceWriter writer(file);
    workload.reset();
    EXPECT_EQ(writer.write_all(workload), original.size());
  }

  MsrTraceParser parser(path);
  std::size_t i = 0;
  TraceRecord rec;
  while (parser.next(rec)) {
    ASSERT_LT(i, original.size());
    EXPECT_EQ(rec.op, original[i].op);
    EXPECT_EQ(rec.offset, original[i].offset);
    EXPECT_EQ(rec.size, original[i].size);
    // Arrivals rebase to the first record's time; tick rounding <= 100ns.
    const SimTime expected =
        (original[i].arrival / 100 - original[0].arrival / 100) * 100;
    EXPECT_EQ(rec.arrival, expected);
    ++i;
  }
  EXPECT_EQ(i, original.size());
  EXPECT_EQ(parser.skipped_lines(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ppssd::trace
