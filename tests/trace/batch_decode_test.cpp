// Batched trace decode: TraceSource::next_batch must produce the exact
// record sequence of repeated next() calls, for every source and any
// batch size — the replay loop depends on this equivalence to switch to
// the batched path without changing simulation results.
#include <cstdio>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "trace/msr_parser.h"
#include "trace/profiles.h"
#include "trace/record.h"
#include "trace/synthetic.h"

namespace ppssd::trace {
namespace {

constexpr std::size_t kBatchSizes[] = {1, 2, 3, 7, 256};

/// Drain a source through next_batch with a fixed batch size.
std::vector<TraceRecord> collect_batched(TraceSource& src,
                                         std::size_t batch_size) {
  std::vector<TraceRecord> out;
  std::vector<TraceRecord> arena(batch_size);
  for (;;) {
    const std::size_t n = src.next_batch(std::span(arena));
    out.insert(out.end(), arena.begin(),
               arena.begin() + static_cast<std::ptrdiff_t>(n));
    if (n < batch_size) break;
  }
  return out;
}

/// Drain a source one record at a time through next().
std::vector<TraceRecord> collect_single(TraceSource& src) {
  std::vector<TraceRecord> out;
  TraceRecord rec;
  while (src.next(rec)) out.push_back(rec);
  return out;
}

void expect_equivalent(TraceSource& a, TraceSource& b) {
  const std::vector<TraceRecord> reference = collect_single(a);
  ASSERT_FALSE(reference.empty());
  for (const std::size_t bs : kBatchSizes) {
    b.reset();
    EXPECT_EQ(collect_batched(b, bs), reference) << "batch size " << bs;
  }
}

/// A source that only implements next(): exercises the default
/// next_batch loop.
class CountingSource final : public TraceSource {
 public:
  explicit CountingSource(std::uint64_t total) : total_(total) {}
  bool next(TraceRecord& out) override {
    if (produced_ >= total_) return false;
    out.arrival = produced_ * 100;
    out.op = produced_ % 3 == 0 ? OpType::kRead : OpType::kWrite;
    out.offset = produced_ * 4096;
    out.size = 4096;
    ++produced_;
    return true;
  }
  void reset() override { produced_ = 0; }

 private:
  std::uint64_t total_;
  std::uint64_t produced_ = 0;
};

TEST(BatchDecode, DefaultImplementationMatchesNext) {
  CountingSource a(1000);
  CountingSource b(1000);
  expect_equivalent(a, b);
}

TEST(BatchDecode, DefaultImplementationShortFinalBatch) {
  CountingSource src(10);
  std::vector<TraceRecord> arena(7);
  EXPECT_EQ(src.next_batch(std::span(arena)), 7u);
  EXPECT_EQ(src.next_batch(std::span(arena)), 3u);
  EXPECT_EQ(src.next_batch(std::span(arena)), 0u);
}

TEST(BatchDecode, VectorSourceMatchesNext) {
  std::vector<TraceRecord> records;
  for (std::uint64_t i = 0; i < 997; ++i) {
    records.push_back(TraceRecord{i * 7, OpType::kWrite, i * 512, 512});
  }
  VectorTraceSource a(records);
  VectorTraceSource b(records);
  expect_equivalent(a, b);
}

TEST(BatchDecode, SyntheticWorkloadMatchesNext) {
  const TraceProfile profile = profile_by_name("ts0");
  const std::uint64_t logical = 1ull << 30;
  SyntheticWorkload a(profile, logical, 0.002);
  SyntheticWorkload b(profile, logical, 0.002);
  expect_equivalent(a, b);
}

TEST(BatchDecode, SyntheticWorkloadBatchThenResetRegenerates) {
  const TraceProfile profile = profile_by_name("wdev0");
  SyntheticWorkload src(profile, 1ull << 30, 0.001);
  const std::vector<TraceRecord> first = collect_batched(src, 64);
  src.reset();
  const std::vector<TraceRecord> second = collect_batched(src, 64);
  EXPECT_EQ(first, second);
}

TEST(BatchDecode, MsrParserMatchesNext) {
  // A trace with comments, blank lines, a malformed line, and a final
  // line without a newline — everything the line splitter handles.
  const std::string path =
      ::testing::TempDir() + "ppssd_batch_decode_msr.csv";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "# header comment\n";
    for (int i = 0; i < 500; ++i) {
      out << (128000000000ull + static_cast<std::uint64_t>(i) * 10000) << ","
          << "srv0,0," << (i % 2 == 0 ? "Read" : "Write") << ","
          << i * 8192 << "," << (i % 3 + 1) * 4096 << ",100\n";
    }
    out << "\n";
    out << "not,a,valid,line\n";
    out << "128000006000000,srv0,0,Write,12345728,4096,100";  // no newline
  }
  MsrTraceParser a(path);
  MsrTraceParser b(path);
  expect_equivalent(a, b);
  EXPECT_EQ(a.skipped_lines(), b.skipped_lines());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ppssd::trace
