#include "trace/synthetic.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "trace/profiles.h"
#include "trace/trace_stats.h"

namespace ppssd::trace {
namespace {

constexpr std::uint64_t kLogicalBytes = 8ull << 30;  // 8 GiB

TEST(Synthetic, DeterministicForSameSeed) {
  const auto& profile = profile_by_name("ts0");
  SyntheticWorkload a(profile, kLogicalBytes, 0.01);
  SyntheticWorkload b(profile, kLogicalBytes, 0.01);
  TraceRecord ra, rb;
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(a.next(ra));
    ASSERT_TRUE(b.next(rb));
    EXPECT_EQ(ra, rb);
  }
}

TEST(Synthetic, ResetReproducesStream) {
  const auto& profile = profile_by_name("wdev0");
  SyntheticWorkload w(profile, kLogicalBytes, 0.005);
  const auto first = collect(w);
  w.reset();
  const auto second = collect(w);
  EXPECT_EQ(first, second);
}

TEST(Synthetic, RespectsScale) {
  const auto& profile = profile_by_name("ts0");
  SyntheticWorkload w(profile, kLogicalBytes, 0.01);
  EXPECT_EQ(w.expected_records(),
            static_cast<std::uint64_t>(profile.requests * 0.01));
  EXPECT_EQ(collect(w).size(), w.expected_records());
}

TEST(Synthetic, ArrivalsMonotone) {
  const auto& profile = profile_by_name("usr0");
  SyntheticWorkload w(profile, kLogicalBytes, 0.005);
  TraceRecord rec;
  SimTime last = 0;
  while (w.next(rec)) {
    EXPECT_GE(rec.arrival, last);
    last = rec.arrival;
  }
}

TEST(Synthetic, OffsetsAlignedAndInFootprint) {
  const auto& profile = profile_by_name("lun1");
  SyntheticWorkload w(profile, kLogicalBytes, 0.01);
  const std::uint64_t footprint = static_cast<std::uint64_t>(
      kLogicalBytes * profile.footprint_fraction);
  TraceRecord rec;
  while (w.next(rec)) {
    EXPECT_EQ(rec.offset % kSubpageBytes, 0u);
    EXPECT_LE(rec.offset + rec.size, footprint + 256 * 1024);
    EXPECT_GT(rec.size, 0u);
    EXPECT_LE(rec.size, 256u * 1024u);  // 64-subpage cap
  }
}

TEST(Synthetic, HotObjectSizesAreStable) {
  // The same hot object is always written with the same size (update
  // semantics), across separate generator instances.
  const auto& profile = profile_by_name("ts0");
  SyntheticWorkload w(profile, kLogicalBytes, 0.05);
  std::unordered_map<std::uint64_t, std::uint32_t> sizes;
  TraceRecord rec;
  const std::uint64_t hot_span = w.hot_object_count() * 64 * 1024;
  while (w.next(rec)) {
    // Cold *reads* may roam into the hot region; only writes there are
    // object rewrites.
    if (rec.op == OpType::kWrite && rec.offset < hot_span &&
        rec.offset % (64 * 1024) == 0) {
      auto [it, fresh] = sizes.try_emplace(rec.offset, rec.size);
      if (!fresh) {
        EXPECT_EQ(it->second, rec.size) << "object " << rec.offset;
      }
    }
  }
  EXPECT_GT(sizes.size(), 10u);
}

/// Statistical calibration sweep across all six paper profiles.
class ProfileCalibration : public ::testing::TestWithParam<const char*> {};

TEST_P(ProfileCalibration, MatchesTable3Statistics) {
  const auto& profile = profile_by_name(GetParam());
  SyntheticWorkload w(profile, kLogicalBytes, 0.1);
  const TraceStats stats = analyze(w);

  EXPECT_NEAR(stats.write_ratio(), profile.write_ratio, 0.02)
      << "write ratio off for " << profile.name;
  EXPECT_NEAR(stats.mean_write_kb(), profile.mean_write_kb,
              profile.mean_write_kb * 0.15)
      << "mean write size off for " << profile.name;
}

TEST_P(ProfileCalibration, MatchesTable1Buckets) {
  const auto& profile = profile_by_name(GetParam());
  SyntheticWorkload w(profile, kLogicalBytes, 0.1);
  const TraceStats stats = analyze(w);
  if (stats.updates() < 1000) GTEST_SKIP() << "too few updates to bin";
  // Updates are dominated by hot objects whose sizes are drawn from the
  // Table 1 buckets; allow slack for the cold-overwrite contribution.
  EXPECT_NEAR(stats.update_frac_le_4k(), profile.write_sizes.le_4k, 0.12);
}

INSTANTIATE_TEST_SUITE_P(AllTraces, ProfileCalibration,
                         ::testing::Values("ts0", "wdev0", "lun1", "usr0",
                                           "lun2", "ads"));

TEST(Profiles, AllSixPresentInPaperOrder) {
  const auto& profiles = paper_profiles();
  ASSERT_EQ(profiles.size(), 6u);
  const char* expected[] = {"ts0", "wdev0", "lun1", "usr0", "lun2", "ads"};
  double prev_ratio = 1.0;
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(profiles[i].name, expected[i]);
    // Table 3 is ordered by descending write ratio.
    EXPECT_LE(profiles[i].write_ratio, prev_ratio);
    prev_ratio = profiles[i].write_ratio;
  }
}

TEST(Profiles, RequestCountsMatchTable3) {
  EXPECT_EQ(profile_by_name("ts0").requests, 1'801'734u);
  EXPECT_EQ(profile_by_name("wdev0").requests, 1'143'261u);
  EXPECT_EQ(profile_by_name("lun1").requests, 1'073'405u);
  EXPECT_EQ(profile_by_name("usr0").requests, 2'237'889u);
  EXPECT_EQ(profile_by_name("lun2").requests, 1'758'887u);
  EXPECT_EQ(profile_by_name("ads").requests, 1'532'120u);
}

}  // namespace
}  // namespace ppssd::trace
