#include "trace/trace_stats.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace ppssd::trace {
namespace {

TraceRecord wr(std::uint64_t offset, std::uint32_t size) {
  return TraceRecord{0, OpType::kWrite, offset, size};
}
TraceRecord rd(std::uint64_t offset, std::uint32_t size) {
  return TraceRecord{0, OpType::kRead, offset, size};
}

TEST(TraceStats, CountsAndRatios) {
  TraceAnalyzer a;
  a.add(wr(0, 4096));
  a.add(wr(16384, 8192));
  a.add(rd(0, 4096));
  a.add(rd(0, 4096));
  const auto stats = a.finish();
  EXPECT_EQ(stats.requests, 4u);
  EXPECT_EQ(stats.writes, 2u);
  EXPECT_EQ(stats.reads, 2u);
  EXPECT_DOUBLE_EQ(stats.write_ratio(), 0.5);
  EXPECT_DOUBLE_EQ(stats.mean_write_kb(), 6.0);
}

TEST(TraceStats, FirstWriteIsNotAnUpdate) {
  TraceAnalyzer a;
  a.add(wr(0, 4096));
  const auto stats = a.finish();
  EXPECT_EQ(stats.updates(), 0u);
}

TEST(TraceStats, UpdateBucketsFollowTable1Boundaries) {
  TraceAnalyzer a;
  a.add(wr(0, 4096));      // first write
  a.add(wr(0, 4096));      // update <= 4K
  a.add(wr(0, 8192));      // update in (4K, 8K]
  a.add(wr(0, 8193));      // update > 8K
  a.add(wr(0, 65536));     // update > 8K
  const auto stats = a.finish();
  EXPECT_EQ(stats.updates_le_4k, 1u);
  EXPECT_EQ(stats.updates_le_8k, 1u);
  EXPECT_EQ(stats.updates_gt_8k, 2u);
  EXPECT_DOUBLE_EQ(stats.update_frac_le_4k(), 0.25);
  EXPECT_DOUBLE_EQ(stats.update_frac_gt_8k(), 0.5);
}

TEST(TraceStats, HotWriteUsesFourWriteThreshold) {
  TraceAnalyzer a;
  for (int i = 0; i < 4; ++i) a.add(wr(0, 4096));       // hot
  for (int i = 0; i < 3; ++i) a.add(wr(16384, 4096));   // not hot (3 < 4)
  a.add(wr(32768, 4096));                               // cold
  const auto stats = a.finish();
  // 3 distinct addresses, 1 hot.
  EXPECT_NEAR(stats.hot_write_fraction, 1.0 / 3.0, 1e-12);
}

TEST(TraceStats, ReadsDoNotAffectHotWrite) {
  TraceAnalyzer a;
  a.add(wr(0, 4096));
  for (int i = 0; i < 10; ++i) a.add(rd(0, 4096));
  const auto stats = a.finish();
  EXPECT_DOUBLE_EQ(stats.hot_write_fraction, 0.0);
}

TEST(TraceStats, AddressKeyedBySubpage) {
  TraceAnalyzer a;
  a.add(wr(0, 4096));
  a.add(wr(1024, 4096));  // same 4K-aligned start address bucket? No:
  // 1024 / 4096 = 0 -> same key -> counts as an update.
  const auto stats = a.finish();
  EXPECT_EQ(stats.updates(), 1u);
}

TEST(TraceStats, EmptyTrace) {
  TraceAnalyzer a;
  const auto stats = a.finish();
  EXPECT_EQ(stats.requests, 0u);
  EXPECT_EQ(stats.write_ratio(), 0.0);
  EXPECT_EQ(stats.mean_write_kb(), 0.0);
  EXPECT_EQ(stats.hot_write_fraction, 0.0);
}

}  // namespace
}  // namespace ppssd::trace
