#include "ftl/subpage_mapping.h"

#include <gtest/gtest.h>

#include "common/config.h"

namespace ppssd::ftl {
namespace {

nand::Geometry small_geometry() {
  const SsdConfig cfg = SsdConfig::scaled(1024);
  return nand::Geometry(cfg.geometry, cfg.cache.slc_ratio);
}

TEST(SecondLevelTable, SetClearLookup) {
  const auto geom = small_geometry();
  SecondLevelTable table(geom);
  EXPECT_EQ(table.live_entries(), 0u);
  EXPECT_EQ(table.capacity(),
            static_cast<std::uint64_t>(geom.slc_block_count()) * 64 * 4);

  const PhysicalAddress addr{0, 5, 2};
  table.set(geom, addr, 1234);
  EXPECT_EQ(table.lookup(geom, addr), 1234u);
  EXPECT_EQ(table.live_entries(), 1u);

  table.clear(geom, addr);
  EXPECT_EQ(table.lookup(geom, addr), kInvalidLsn);
  EXPECT_EQ(table.live_entries(), 0u);
}

TEST(SecondLevelTableDeathTest, DoubleSetAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto geom = small_geometry();
  SecondLevelTable table(geom);
  table.set(geom, PhysicalAddress{0, 0, 0}, 1);
  EXPECT_DEATH(table.set(geom, PhysicalAddress{0, 0, 0}, 2), "occupied");
}

TEST(SecondLevelTable, ClearBlockDropsAllSlots) {
  const auto geom = small_geometry();
  SecondLevelTable table(geom);
  for (std::uint32_t p = 0; p < 3; ++p) {
    for (std::uint32_t s = 0; s < 4; ++s) {
      table.set(geom,
                PhysicalAddress{0, static_cast<PageId>(p),
                                static_cast<SubpageId>(s)},
                p * 4 + s);
    }
  }
  EXPECT_EQ(table.live_entries(), 12u);
  table.clear_block(geom, 0);
  EXPECT_EQ(table.live_entries(), 0u);
}

TEST(SecondLevelTable, DistinctBlocksDoNotCollide) {
  const auto geom = small_geometry();
  SecondLevelTable table(geom);
  const BlockId second_slc = geom.slc_block_at(1);
  table.set(geom, PhysicalAddress{0, 0, 0}, 111);
  table.set(geom, PhysicalAddress{second_slc, 0, 0}, 222);
  EXPECT_EQ(table.lookup(geom, PhysicalAddress{0, 0, 0}), 111u);
  EXPECT_EQ(table.lookup(geom, PhysicalAddress{second_slc, 0, 0}), 222u);
}

TEST(IpuOffsetTable, OpenUpdateClear) {
  const auto geom = small_geometry();
  IpuOffsetTable table(geom);
  table.open_page(geom, 0, 3, /*extent_base=*/400, /*extent_len=*/2,
                  /*offset=*/0);
  EXPECT_EQ(table.live_pages(), 1u);
  const auto& tag = table.lookup(geom, 0, 3);
  EXPECT_EQ(tag.extent_base, 400u);
  EXPECT_EQ(tag.extent_len, 2);
  EXPECT_EQ(tag.latest_offset, 0);

  table.update_offset(geom, 0, 3, 2);
  EXPECT_EQ(table.lookup(geom, 0, 3).latest_offset, 2);

  table.clear_page(geom, 0, 3);
  EXPECT_EQ(table.live_pages(), 0u);
  EXPECT_EQ(table.lookup(geom, 0, 3).extent_base, kInvalidLsn);
}

TEST(IpuOffsetTableDeathTest, DoubleOpenAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto geom = small_geometry();
  IpuOffsetTable table(geom);
  table.open_page(geom, 0, 0, 1, 1, 0);
  EXPECT_DEATH(table.open_page(geom, 0, 0, 2, 1, 0), "already has");
}

TEST(IpuOffsetTable, ClearBlock) {
  const auto geom = small_geometry();
  IpuOffsetTable table(geom);
  for (PageId p = 0; p < 5; ++p) {
    table.open_page(geom, 0, p, p * 10, 1, 0);
  }
  EXPECT_EQ(table.live_pages(), 5u);
  table.clear_block(geom, 0);
  EXPECT_EQ(table.live_pages(), 0u);
}

TEST(IpuOffsetTable, ClearingEmptyPageIsIdempotent) {
  const auto geom = small_geometry();
  IpuOffsetTable table(geom);
  table.clear_page(geom, 0, 0);
  table.clear_page(geom, 0, 0);
  EXPECT_EQ(table.live_pages(), 0u);
}

}  // namespace
}  // namespace ppssd::ftl
