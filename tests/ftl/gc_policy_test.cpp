#include "ftl/gc_policy.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/units.h"
#include "nand/flash_array.h"

namespace ppssd::ftl {
namespace {

SsdConfig small_config() { return SsdConfig::scaled(1024); }

nand::SlotWrite w(SubpageId slot, Lsn lsn) {
  return nand::SlotWrite{slot, lsn, 1};
}

/// Fill `pages` pages of a block with 4 valid subpages each at time `t`.
void fill_block(nand::FlashArray& arr, BlockId b, std::uint32_t pages,
                SimTime t, Lsn base = 0) {
  for (std::uint32_t p = 0; p < pages; ++p) {
    const nand::SlotWrite ws[] = {w(0, base + p * 4), w(1, base + p * 4 + 1),
                                  w(2, base + p * 4 + 2),
                                  w(3, base + p * 4 + 3)};
    arr.program(b, static_cast<PageId>(p), ws, t);
  }
}

/// Advance a block's state so it counts as a GC candidate.
struct Fixture {
  Fixture() : arr(small_config()), bm(arr) {}

  /// Take `n` blocks out of the free list and close them.
  std::vector<BlockId> make_candidates(std::uint32_t n) {
    std::vector<BlockId> out;
    const std::uint32_t pages = arr.geometry().pages_per_block(CellMode::kSlc);
    for (std::uint32_t i = 0; i <= n; ++i) {
      for (std::uint32_t p = 0; p < pages; ++p) {
        const auto alloc = bm.allocate_page(0, BlockLevel::kWork);
        const nand::SlotWrite ws[] = {w(0, 100000 + i * pages * 4 + p)};
        arr.program(alloc->block, alloc->page, ws, 0);
        if (p == 0 && out.size() < n) out.push_back(alloc->block);
      }
    }
    // Drop the helper fills so candidate blocks start clean for tests:
    // invalidate everything in the returned blocks and erase them, then
    // re-program per test. Simpler: return blocks as-is; tests overwrite
    // via invalidate patterns on the one filled subpage per page.
    return out;
  }

  nand::FlashArray arr;
  BlockManager bm;
};

TEST(GreedyPolicy, PicksMostInvalid) {
  Fixture f;
  const auto blocks = f.make_candidates(2);
  ASSERT_EQ(blocks.size(), 2u);
  // blocks[0]: invalidate 10 subpages; blocks[1]: invalidate 20.
  for (std::uint32_t p = 0; p < 10; ++p) {
    f.arr.invalidate(blocks[0], static_cast<PageId>(p), 0);
  }
  for (std::uint32_t p = 0; p < 20; ++p) {
    f.arr.invalidate(blocks[1], static_cast<PageId>(p), 0);
  }
  GreedyPolicy greedy;
  EXPECT_EQ(greedy.select_victim(f.arr, f.bm, 0, CellMode::kSlc, 0),
            blocks[1]);
}

TEST(GreedyPolicy, NoVictimWhenNothingInvalid) {
  Fixture f;
  f.make_candidates(2);
  GreedyPolicy greedy;
  EXPECT_EQ(greedy.select_victim(f.arr, f.bm, 0, CellMode::kSlc, 0),
            kInvalidBlock);
}

TEST(IsrPolicy, ColdWeightZeroForEmptyBlock) {
  nand::Block blk(CellMode::kSlc, 8, 4);
  EXPECT_EQ(IsrPolicy::cold_weight(blk, ms_to_ns(1000), 100.0), 0.0);
  EXPECT_EQ(IsrPolicy::isr(blk, ms_to_ns(1000), 100.0), 0.0);
  EXPECT_EQ(IsrPolicy::age_sum(blk, ms_to_ns(1000)).second, 0u);
}

TEST(IsrPolicy, ColdWeightGrowsWithAge) {
  // Two identical blocks; one written long ago.
  nand::FlashArray arr(small_config());
  fill_block(arr, 0, 8, /*t=*/0);
  const BlockId b2 = arr.geometry().slc_block_at(1);
  fill_block(arr, b2, 8, /*t=*/ms_to_ns(90'000));

  // Normalised by the fleet-wide mean age, the older block weighs more.
  const SimTime now = ms_to_ns(100'000);
  const auto [s1, c1] = IsrPolicy::age_sum(arr.block(0), now);
  const auto [s2, c2] = IsrPolicy::age_sum(arr.block(b2), now);
  const double mean = (s1 + s2) / static_cast<double>(c1 + c2);
  EXPECT_GT(IsrPolicy::cold_weight(arr.block(0), now, mean),
            IsrPolicy::cold_weight(arr.block(b2), now, mean));
}

TEST(IsrPolicy, UpdatedPagesExcludedFromColdWeight) {
  nand::FlashArray arr(small_config());
  fill_block(arr, 0, 4, 0);
  const double before =
      IsrPolicy::cold_weight(arr.block(0), ms_to_ns(1000), 500.0);

  // Same fill but every page receives a partial program ("updated").
  const BlockId b2 = arr.geometry().slc_block_at(1);
  for (std::uint32_t p = 0; p < 4; ++p) {
    const nand::SlotWrite first[] = {w(0, 5000 + p * 4), w(1, 5001 + p * 4)};
    arr.program(b2, static_cast<PageId>(p), first, 0);
    const nand::SlotWrite upd[] = {w(2, 5002 + p * 4)};
    arr.program(b2, static_cast<PageId>(p), upd, 0);
  }
  EXPECT_GT(before, 0.0);
  EXPECT_EQ(IsrPolicy::cold_weight(arr.block(b2), ms_to_ns(1000), 500.0),
            0.0);
}

TEST(IsrPolicy, IsrCombinesInvalidAndColdTerms) {
  // Paper's Figure 4 example: a block with fewer invalid subpages but
  // cold valid data can beat a hotter block with slightly more invalids.
  nand::FlashArray arr(small_config());

  // Candidate A: 6 invalid subpages, remaining data "hot" (updated).
  fill_block(arr, 0, 4, ms_to_ns(99'000));  // recent data
  for (std::uint32_t i = 0; i < 6; ++i) {
    arr.invalidate(0, static_cast<PageId>(i / 4),
                   static_cast<SubpageId>(i % 4));
  }

  // Candidate B: 6 invalid subpages + very old never-updated data.
  const BlockId b2 = arr.geometry().slc_block_at(1);
  fill_block(arr, b2, 4, /*t=*/0, /*base=*/4000);
  for (std::uint32_t i = 0; i < 6; ++i) {
    arr.invalidate(b2, static_cast<PageId>(i / 4),
                   static_cast<SubpageId>(i % 4));
  }

  const SimTime now = ms_to_ns(100'000);
  const auto [s1, c1] = IsrPolicy::age_sum(arr.block(0), now);
  const auto [s2, c2] = IsrPolicy::age_sum(arr.block(b2), now);
  const double mean = (s1 + s2) / static_cast<double>(c1 + c2);
  EXPECT_GT(IsrPolicy::isr(arr.block(b2), now, mean),
            IsrPolicy::isr(arr.block(0), now, mean));
}

TEST(IsrPolicy, IsrBounded) {
  nand::FlashArray arr(small_config());
  fill_block(arr, 0, 16, 0);
  const double isr = IsrPolicy::isr(arr.block(0), ms_to_ns(1'000'000), 10.0);
  // IS=0, IS' <= valid count: ISR <= used/total <= 1.
  EXPECT_GE(isr, 0.0);
  EXPECT_LE(isr, 1.0);
}

TEST(IsrPolicy, SelectsColdBlockOverHotBlock) {
  Fixture f;
  const auto blocks = f.make_candidates(2);
  ASSERT_EQ(blocks.size(), 2u);
  // Equal invalid counts; blocks hold equal data but blocks[0]'s pages are
  // "updated" (partial-programmed), blocks[1]'s are not.
  for (std::uint32_t p = 20; p < 40; ++p) {
    const nand::SlotWrite upd[] = {w(1, 777000 + p)};
    f.arr.program(blocks[0], static_cast<PageId>(p), upd, ms_to_ns(10.0));
  }
  for (std::uint32_t p = 0; p < 5; ++p) {
    f.arr.invalidate(blocks[0], static_cast<PageId>(p), 0);
    f.arr.invalidate(blocks[1], static_cast<PageId>(p), 0);
  }
  IsrPolicy isr;
  EXPECT_EQ(isr.select_victim(f.arr, f.bm, 0, CellMode::kSlc,
                              ms_to_ns(50'000)),
            blocks[1]);
}

/// Property sweep: ISR is monotone in the number of invalid subpages.
class IsrMonotonicity : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(IsrMonotonicity, MoreInvalidNeverLowersIsr) {
  nand::FlashArray arr(small_config());
  fill_block(arr, 0, 8, 0);
  const SimTime now = ms_to_ns(10'000);
  double prev = IsrPolicy::isr(arr.block(0), now, 5000.0);
  const std::uint32_t invalidate = GetParam();
  for (std::uint32_t i = 0; i < invalidate; ++i) {
    arr.invalidate(0, static_cast<PageId>(i / 4),
                   static_cast<SubpageId>(i % 4));
    const double cur = IsrPolicy::isr(arr.block(0), now, 5000.0);
    EXPECT_GE(cur + 1e-9, prev);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, IsrMonotonicity,
                         ::testing::Values(4u, 12u, 32u));

/// Build a plane of candidates with staggered write times, scattered
/// updates and invalidations — a miniature of steady-state GC input.
struct EquivalenceFixture : Fixture {
  EquivalenceFixture() {
    blocks = make_candidates(4);
    const std::uint32_t pages = arr.geometry().pages_per_block(CellMode::kSlc);
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      const BlockId b = blocks[i];
      for (std::uint32_t p = 0; p < pages; ++p) {
        // Stagger extra writes over time; update every third page.
        const SimTime t = ms_to_ns(100.0 * static_cast<double>(i * pages + p));
        const nand::SlotWrite extra[] = {w(1, 900000 + i * pages * 4 + p)};
        arr.program(b, static_cast<PageId>(p), extra, t);
        if (p % 3 == 0) {
          const nand::SlotWrite upd[] = {w(2, 950000 + i * pages * 4 + p)};
          arr.program(b, static_cast<PageId>(p), upd, t + ms_to_ns(1.0));
        }
      }
      // Invalidate a block-dependent share of the first subpages.
      for (std::uint32_t p = 0; p < pages / (i + 1); ++p) {
        arr.invalidate(b, static_cast<PageId>(p), 0);
      }
    }
  }

  std::vector<BlockId> blocks;
};

TEST(GcEquivalence, AggregateAgeSumMatchesExactWalk) {
  EquivalenceFixture f;
  const SimTime now = ms_to_ns(500'000);
  for (const BlockId b : f.blocks) {
    const auto [opt_sum, opt_n] = IsrPolicy::age_sum(f.arr.block(b), now);
    const auto [ref_sum, ref_n] = IsrPolicy::age_sum_exact(f.arr, b, now);
    EXPECT_EQ(opt_n, ref_n);
    EXPECT_NEAR(opt_sum, ref_sum, 1e-6 * std::max(1.0, ref_sum));
  }
}

TEST(GcEquivalence, BucketedColdWeightTracksExact) {
  EquivalenceFixture f;
  const SimTime now = ms_to_ns(500'000);
  for (const BlockId b : f.blocks) {
    const auto [sum, n] = IsrPolicy::age_sum_exact(f.arr, b, now);
    const double mean = n ? sum / static_cast<double>(n) : 0.0;
    const double opt = IsrPolicy::cold_weight(f.arr.block(b), now, mean);
    const double ref = IsrPolicy::cold_weight_exact(f.arr, b, now, mean);
    // The bucketed fold evaluates the concave kernel at per-bucket mean
    // write times; with sub-octave buckets the error stays well under 1%.
    EXPECT_NEAR(opt, ref, 0.01 * std::max(1.0, ref));
  }
}

TEST(GcEquivalence, SelectVictimMatchesReference) {
  EquivalenceFixture f;
  const SimTime now = ms_to_ns(500'000);
  const GreedyPolicy greedy;
  EXPECT_EQ(greedy.select_victim(f.arr, f.bm, 0, CellMode::kSlc, now),
            greedy.select_victim_reference(f.arr, f.bm, 0, CellMode::kSlc));
  const IsrPolicy isr;
  EXPECT_EQ(isr.select_victim(f.arr, f.bm, 0, CellMode::kSlc, now),
            isr.select_victim_reference(f.arr, f.bm, 0, CellMode::kSlc, now));
}

}  // namespace
}  // namespace ppssd::ftl
