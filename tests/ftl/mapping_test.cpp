#include "ftl/mapping.h"

#include <gtest/gtest.h>

namespace ppssd::ftl {
namespace {

TEST(DeviceMap, StartsUnmapped) {
  DeviceMap map(100);
  EXPECT_EQ(map.logical_subpages(), 100u);
  EXPECT_EQ(map.mapped_count(), 0u);
  for (Lsn lsn = 0; lsn < 100; ++lsn) {
    EXPECT_FALSE(map.mapped(lsn));
    EXPECT_FALSE(map.lookup(lsn).valid());
  }
}

TEST(DeviceMap, SetLookupClearRoundTrip) {
  DeviceMap map(10);
  const PhysicalAddress addr{42, 7, 3};
  map.set(5, addr);
  EXPECT_TRUE(map.mapped(5));
  EXPECT_EQ(map.lookup(5), addr);
  EXPECT_EQ(map.mapped_count(), 1u);

  map.clear(5);
  EXPECT_FALSE(map.mapped(5));
  EXPECT_EQ(map.mapped_count(), 0u);
}

TEST(DeviceMapDeathTest, DoubleSetAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  DeviceMap map(10);
  map.set(1, PhysicalAddress{1, 1, 1});
  EXPECT_DEATH(map.set(1, PhysicalAddress{2, 2, 2}), "already mapped");
}

TEST(DeviceMapDeathTest, ClearUnmappedAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  DeviceMap map(10);
  EXPECT_DEATH(map.clear(3), "unmapped");
}

TEST(DeviceMap, ManyEntries) {
  DeviceMap map(10000);
  for (Lsn lsn = 0; lsn < 10000; lsn += 7) {
    map.set(lsn, PhysicalAddress{static_cast<BlockId>(lsn / 64),
                                 static_cast<PageId>(lsn % 64),
                                 static_cast<SubpageId>(lsn % 4)});
  }
  for (Lsn lsn = 0; lsn < 10000; ++lsn) {
    if (lsn % 7 == 0) {
      const auto addr = map.lookup(lsn);
      EXPECT_EQ(addr.block, lsn / 64);
      EXPECT_EQ(addr.page, lsn % 64);
      EXPECT_EQ(addr.subpage, lsn % 4);
    } else {
      EXPECT_FALSE(map.mapped(lsn));
    }
  }
}

TEST(DeviceMap, RemapAfterClear) {
  DeviceMap map(4);
  map.set(0, PhysicalAddress{1, 2, 3});
  map.clear(0);
  map.set(0, PhysicalAddress{4, 5, 2});
  EXPECT_EQ(map.lookup(0).block, 4u);
  EXPECT_EQ(map.mapped_count(), 1u);
}

}  // namespace
}  // namespace ppssd::ftl
