#include "ftl/hotness.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace ppssd::ftl {
namespace {

TEST(UpdateTracker, FreshTrackerIsCold) {
  UpdateTracker tracker(100);
  EXPECT_FALSE(tracker.ever_written(0));
  EXPECT_FALSE(tracker.is_hot(0));
  EXPECT_EQ(tracker.hot_fraction(), 0.0);
}

TEST(UpdateTracker, HotThresholdMatchesPaper) {
  // Table 3 counts an address hot at >= 4 requests.
  UpdateTracker tracker(10);
  for (int i = 0; i < 3; ++i) tracker.record_write(5, 0);
  EXPECT_FALSE(tracker.is_hot(5));
  tracker.record_write(5, 0);
  EXPECT_TRUE(tracker.is_hot(5));
}

TEST(UpdateTracker, HotFraction) {
  UpdateTracker tracker(10);
  for (int i = 0; i < 5; ++i) tracker.record_write(0, 0);  // hot
  tracker.record_write(1, 0);                              // cold
  tracker.record_write(2, 0);                              // cold
  tracker.record_write(3, 0);                              // cold
  EXPECT_DOUBLE_EQ(tracker.hot_fraction(), 0.25);
}

TEST(UpdateTracker, LastWriteTimeTracked) {
  UpdateTracker tracker(4);
  tracker.record_write(2, ms_to_ns(1234.0));
  EXPECT_EQ(tracker.last_write_ms(2), 1234u);
}

TEST(UpdateTracker, CountSaturates) {
  UpdateTracker tracker(1);
  for (int i = 0; i < 300; ++i) tracker.record_write(0, 0);
  EXPECT_EQ(tracker.write_count(0), 255);
}

}  // namespace
}  // namespace ppssd::ftl
