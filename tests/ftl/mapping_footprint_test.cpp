#include "ftl/mapping_footprint.h"

#include <gtest/gtest.h>

#include "common/config.h"

namespace ppssd::ftl {
namespace {

MappingFootprint paper_footprint() {
  static const SsdConfig cfg = SsdConfig::paper();
  static const nand::Geometry geom(cfg.geometry, cfg.cache.slc_ratio);
  return MappingFootprint(geom);
}

TEST(MappingFootprint, BaselineIsPurePageMap) {
  const auto r = paper_footprint().baseline();
  EXPECT_GT(r.base_bytes, 0u);
  EXPECT_EQ(r.scheme_extra, 0u);
  EXPECT_EQ(r.aux_bytes, 0u);
  EXPECT_DOUBLE_EQ(r.normalized(), 1.0);
}

TEST(MappingFootprint, MgaOverheadMatchesPaperShape) {
  const auto fp = paper_footprint();
  const auto mga = fp.mga();
  // Paper: MGA needs ~23.7% more than Baseline.
  EXPECT_GT(mga.normalized(), 1.15);
  EXPECT_LT(mga.normalized(), 1.35);
}

TEST(MappingFootprint, IpuOverheadTiny) {
  const auto fp = paper_footprint();
  const auto ipu = fp.ipu();
  // Paper: IPU needs ~0.84% more than Baseline.
  EXPECT_GT(ipu.normalized(), 1.0);
  EXPECT_LT(ipu.normalized(), 1.02);
}

TEST(MappingFootprint, Ordering) {
  const auto fp = paper_footprint();
  EXPECT_LT(fp.baseline().mapping_total(), fp.ipu().mapping_total());
  EXPECT_LT(fp.ipu().mapping_total(), fp.mga().mapping_total());
}

TEST(MappingFootprint, IpuAuxMatchesSection441) {
  // Paper: 2-bit labels for 3276 SLC blocks (~820 B) + 4 B IS' per SLC
  // page (819.2 KB) at paper scale.
  const auto ipu = paper_footprint().ipu();
  const double kib = static_cast<double>(ipu.aux_bytes) / 1024.0;
  EXPECT_GT(kib, 700.0);
  EXPECT_LT(kib, 950.0);
}

TEST(MappingFootprint, BitsHelpers) {
  const auto fp = paper_footprint();
  // 65536 blocks * (26/512 SLC : 64p, else 128p) physical pages ~ 8.2M:
  // needs 23-24 bits.
  EXPECT_GE(fp.ppn_bits(), 23u);
  EXPECT_LE(fp.ppn_bits(), 24u);
  EXPECT_GE(fp.lsn_bits(), 24u);
  EXPECT_LE(fp.lsn_bits(), 26u);
}

TEST(MappingFootprint, ScalesWithDevice) {
  const SsdConfig small = SsdConfig::scaled(1024);
  const nand::Geometry geom(small.geometry, small.cache.slc_ratio);
  const MappingFootprint fp(geom);
  EXPECT_LT(fp.baseline().base_bytes, paper_footprint().baseline().base_bytes);
  // Normalised overheads stay in the same bands regardless of scale.
  EXPECT_GT(fp.mga().normalized(), 1.1);
  EXPECT_LT(fp.ipu().normalized(), 1.03);
}

}  // namespace
}  // namespace ppssd::ftl
