#include "ftl/block_manager.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "nand/flash_array.h"

namespace ppssd::ftl {
namespace {

SsdConfig small_config() { return SsdConfig::scaled(1024); }

nand::SlotWrite w(SubpageId slot, Lsn lsn) {
  return nand::SlotWrite{slot, lsn, 1};
}

/// Program the allocated page so its frontier advances (alloc contract).
void commit(nand::FlashArray& arr, const PageAlloc& alloc, Lsn lsn) {
  const nand::SlotWrite ws[] = {w(0, lsn)};
  arr.program(alloc.block, alloc.page, ws, 0);
}

TEST(BlockManager, InitialFreeCounts) {
  nand::FlashArray arr(small_config());
  BlockManager bm(arr);
  const auto& geom = arr.geometry();
  for (std::uint32_t p = 0; p < geom.planes(); ++p) {
    EXPECT_EQ(bm.free_blocks(p, CellMode::kSlc), geom.slc_blocks_per_plane());
    EXPECT_EQ(bm.free_blocks(p, CellMode::kMlc),
              geom.blocks_per_plane() - geom.slc_blocks_per_plane());
  }
}

TEST(BlockManager, AllocatesSequentialPages) {
  nand::FlashArray arr(small_config());
  BlockManager bm(arr);
  Lsn lsn = 0;
  BlockId first_block = kInvalidBlock;
  for (PageId expect = 0; expect < 3; ++expect) {
    const auto alloc = bm.allocate_page(0, BlockLevel::kWork);
    ASSERT_TRUE(alloc.has_value());
    EXPECT_EQ(alloc->page, expect);
    if (first_block == kInvalidBlock) {
      first_block = alloc->block;
    } else {
      EXPECT_EQ(alloc->block, first_block);  // same open block
    }
    commit(arr, *alloc, lsn++);
  }
  EXPECT_TRUE(bm.is_open(first_block));
  // One block consumed from the free list.
  EXPECT_EQ(bm.free_blocks(0, CellMode::kSlc),
            arr.geometry().slc_blocks_per_plane() - 1);
}

TEST(BlockManager, OpensNewBlockWhenFull) {
  nand::FlashArray arr(small_config());
  BlockManager bm(arr);
  const std::uint32_t pages = arr.geometry().pages_per_block(CellMode::kSlc);
  Lsn lsn = 0;
  BlockId first = kInvalidBlock;
  for (std::uint32_t i = 0; i < pages; ++i) {
    const auto alloc = bm.allocate_page(0, BlockLevel::kWork);
    ASSERT_TRUE(alloc.has_value());
    first = alloc->block;
    commit(arr, *alloc, lsn++);
  }
  const auto alloc = bm.allocate_page(0, BlockLevel::kWork);
  ASSERT_TRUE(alloc.has_value());
  EXPECT_NE(alloc->block, first);
  EXPECT_EQ(alloc->page, 0);
  // The filled block was closed: it is now a GC candidate.
  EXPECT_TRUE(bm.is_candidate(first));
}

TEST(BlockManager, LevelLabelsApplied) {
  nand::FlashArray arr(small_config());
  BlockManager bm(arr);
  const auto alloc = bm.allocate_page(0, BlockLevel::kHot);
  ASSERT_TRUE(alloc.has_value());
  EXPECT_EQ(alloc->level, BlockLevel::kHot);
  EXPECT_EQ(arr.block(alloc->block).level(), BlockLevel::kHot);
  EXPECT_EQ(bm.level_count(0, BlockLevel::kHot), 1u);
}

TEST(BlockManager, LevelCapDegradesAllocation) {
  SsdConfig cfg = small_config();
  cfg.cache.hot_ratio = 0.05;  // cap: max(1, 26*0.05) = 1 Hot block
  nand::FlashArray arr(cfg);
  BlockManager bm(arr);
  const std::uint32_t pages = arr.geometry().pages_per_block(CellMode::kSlc);
  Lsn lsn = 0;
  // Fill the single allowed Hot block.
  for (std::uint32_t i = 0; i < pages; ++i) {
    const auto alloc = bm.allocate_page(0, BlockLevel::kHot);
    ASSERT_TRUE(alloc.has_value());
    EXPECT_EQ(alloc->level, BlockLevel::kHot);
    commit(arr, *alloc, lsn++);
  }
  // Next Hot allocation must degrade (cap reached).
  const auto alloc = bm.allocate_page(0, BlockLevel::kHot);
  ASSERT_TRUE(alloc.has_value());
  EXPECT_NE(alloc->level, BlockLevel::kHot);
}

TEST(BlockManager, MlcAllocationsSeparate) {
  nand::FlashArray arr(small_config());
  BlockManager bm(arr);
  const auto slc = bm.allocate_page(0, BlockLevel::kWork);
  const auto mlc = bm.allocate_page(0, BlockLevel::kHighDensity);
  ASSERT_TRUE(slc && mlc);
  EXPECT_EQ(arr.block(slc->block).mode(), CellMode::kSlc);
  EXPECT_EQ(arr.block(mlc->block).mode(), CellMode::kMlc);
}

TEST(BlockManager, ExhaustionReturnsNullopt) {
  nand::FlashArray arr(small_config());
  BlockManager bm(arr);
  const auto& geom = arr.geometry();
  const std::uint64_t total_pages =
      static_cast<std::uint64_t>(geom.slc_blocks_per_plane()) *
      geom.pages_per_block(CellMode::kSlc);
  Lsn lsn = 0;
  for (std::uint64_t i = 0; i < total_pages; ++i) {
    const auto alloc = bm.allocate_page(0, BlockLevel::kWork);
    ASSERT_TRUE(alloc.has_value());
    commit(arr, *alloc, lsn++);
  }
  EXPECT_FALSE(bm.allocate_page(0, BlockLevel::kWork).has_value());
  EXPECT_EQ(bm.free_blocks(0, CellMode::kSlc), 0u);
}

TEST(BlockManager, ReleaseRecyclesBlock) {
  nand::FlashArray arr(small_config());
  BlockManager bm(arr);
  const std::uint32_t pages = arr.geometry().pages_per_block(CellMode::kSlc);
  Lsn lsn = 0;
  // Fill one block completely, then allocate once more to close it.
  BlockId filled = kInvalidBlock;
  for (std::uint32_t i = 0; i < pages; ++i) {
    const auto alloc = bm.allocate_page(0, BlockLevel::kWork);
    ASSERT_TRUE(alloc.has_value());
    filled = alloc->block;
    commit(arr, *alloc, lsn++);
  }
  commit(arr, *bm.allocate_page(0, BlockLevel::kWork), lsn++);
  ASSERT_TRUE(bm.is_candidate(filled));

  // Retire all its data, erase, release.
  for (std::uint32_t p = 0; p < pages; ++p) {
    arr.invalidate(filled, static_cast<PageId>(p), 0);
  }
  const auto before = bm.free_blocks(0, CellMode::kSlc);
  arr.erase(filled, 0);
  bm.release_block(filled);
  EXPECT_EQ(bm.free_blocks(0, CellMode::kSlc), before + 1);
  EXPECT_TRUE(bm.is_free(filled));
}

TEST(BlockManager, WearAwareAllocationPrefersLowErase) {
  nand::FlashArray arr(small_config());
  BlockManager bm(arr);
  const std::uint32_t pages = arr.geometry().pages_per_block(CellMode::kSlc);
  Lsn lsn = 0;
  // Fill + close one block, then wear it with two erases and release it.
  BlockId worn = kInvalidBlock;
  for (std::uint32_t i = 0; i < pages; ++i) {
    const auto alloc = bm.allocate_page(0, BlockLevel::kWork);
    worn = alloc->block;
    commit(arr, *alloc, lsn++);
  }
  commit(arr, *bm.allocate_page(0, BlockLevel::kWork), lsn++);
  for (std::uint32_t p = 0; p < pages; ++p) {
    arr.invalidate(worn, static_cast<PageId>(p), 0);
  }
  arr.erase(worn, 0);
  arr.erase(worn, 0);  // extra wear
  bm.release_block(worn);
  EXPECT_EQ(arr.block(worn).erase_count(), 2u);

  // Fresh (0-erase) blocks must be preferred over the worn one until the
  // free list holds nothing else.
  std::uint32_t remaining = bm.free_blocks(0, CellMode::kSlc);
  for (std::uint32_t i = 0; i + 1 < remaining; ++i) {
    const auto alloc = bm.allocate_page(0, BlockLevel::kMonitor);
    ASSERT_TRUE(alloc.has_value());
    EXPECT_NE(alloc->block, worn) << "worn block allocated too early";
    // Fill it to force the next allocation to open a new block.
    commit(arr, *alloc, lsn++);
    for (std::uint32_t p = 1; p < pages; ++p) {
      commit(arr, *bm.allocate_page(0, BlockLevel::kMonitor), lsn++);
    }
  }
}

TEST(BlockManager, GcThresholdBlocks) {
  nand::FlashArray arr(small_config());
  BlockManager bm(arr);
  // 26 SLC blocks/plane * 5% -> ceil = 2; floor of 2 enforced.
  EXPECT_GE(bm.gc_threshold_blocks(CellMode::kSlc), 2u);
  EXPECT_GE(bm.gc_threshold_blocks(CellMode::kMlc), 2u);
  EXPECT_FALSE(bm.needs_gc(0, CellMode::kSlc));
}

TEST(BlockManager, ForEachCandidateSkipsFreeAndOpen) {
  nand::FlashArray arr(small_config());
  BlockManager bm(arr);
  int candidates = 0;
  bm.for_each_candidate(0, CellMode::kSlc, [&](BlockId) { ++candidates; });
  EXPECT_EQ(candidates, 0);  // everything free initially
  const auto alloc = bm.allocate_page(0, BlockLevel::kWork);
  commit(arr, *alloc, 0);
  bm.for_each_candidate(0, CellMode::kSlc, [&](BlockId) { ++candidates; });
  EXPECT_EQ(candidates, 0);  // open block is not a candidate
}

/// Fill and close `n` SLC blocks on plane 0; returns the closed blocks.
std::vector<BlockId> make_closed_blocks(nand::FlashArray& arr,
                                        BlockManager& bm, std::uint32_t n) {
  const std::uint32_t pages = arr.geometry().pages_per_block(CellMode::kSlc);
  std::vector<BlockId> out;
  Lsn lsn = 0;
  for (std::uint32_t i = 0; i <= n; ++i) {
    for (std::uint32_t p = 0; p < pages; ++p) {
      const auto alloc = bm.allocate_page(0, BlockLevel::kWork);
      commit(arr, *alloc, lsn++);
      if (p == 0 && out.size() < n) out.push_back(alloc->block);
    }
  }
  // The (n+1)-th block stays open, so the first n are closed candidates.
  return out;
}

/// Reference implementation of the victim query: full candidate scan.
BlockId scan_max_invalid(const nand::FlashArray& arr, const BlockManager& bm,
                         std::uint32_t plane, CellMode mode) {
  BlockId best = kInvalidBlock;
  std::uint32_t best_invalid = 0;
  bm.for_each_candidate(plane, mode, [&](BlockId b) {
    const std::uint32_t invalid = arr.block(b).invalid_subpages();
    if (invalid > best_invalid) {
      best = b;
      best_invalid = invalid;
    }
  });
  return best;
}

TEST(BlockManagerVictimIndex, TracksInvalidationsAndReleases) {
  nand::FlashArray arr(small_config());
  BlockManager bm(arr);
  const auto blocks = make_closed_blocks(arr, bm, 3);
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_EQ(bm.max_invalid_candidate(0, CellMode::kSlc), kInvalidBlock);

  // Invalidations bubble candidates up; the query always agrees with a
  // full scan.
  arr.invalidate(blocks[1], 0, 0);
  EXPECT_EQ(bm.max_invalid_candidate(0, CellMode::kSlc), blocks[1]);
  arr.invalidate(blocks[2], 0, 0);
  arr.invalidate(blocks[2], 1, 0);
  EXPECT_EQ(bm.max_invalid_candidate(0, CellMode::kSlc), blocks[2]);
  EXPECT_EQ(bm.max_invalid_candidate(0, CellMode::kSlc),
            scan_max_invalid(arr, bm, 0, CellMode::kSlc));
  bm.check_victim_index();

  // Erase + release removes the front-runner; the watermark falls back.
  // (Pages 0 and 1 of blocks[2] are already invalid from above.)
  const std::uint32_t pages = arr.geometry().pages_per_block(CellMode::kSlc);
  for (std::uint32_t p = 2; p < pages; ++p) {
    arr.invalidate(blocks[2], static_cast<PageId>(p), 0);
  }
  arr.erase(blocks[2], 0);
  bm.release_block(blocks[2]);
  EXPECT_EQ(bm.max_invalid_candidate(0, CellMode::kSlc), blocks[1]);
  bm.check_victim_index();
}

TEST(BlockManagerVictimIndex, TieBreaksOnLowestBlockId) {
  nand::FlashArray arr(small_config());
  BlockManager bm(arr);
  const auto blocks = make_closed_blocks(arr, bm, 3);
  // Equal invalid counts everywhere: the lowest BlockId must win, exactly
  // as the pre-index linear scan behaved.
  for (const BlockId b : blocks) {
    arr.invalidate(b, 0, 0);
    arr.invalidate(b, 1, 0);
  }
  const BlockId lowest = *std::min_element(blocks.begin(), blocks.end());
  EXPECT_EQ(bm.max_invalid_candidate(0, CellMode::kSlc), lowest);
}

TEST(BlockManagerVictimIndex, OpenBlockInvalidationsCapturedAtClose) {
  nand::FlashArray arr(small_config());
  BlockManager bm(arr);
  const std::uint32_t pages = arr.geometry().pages_per_block(CellMode::kSlc);
  // Invalidate subpages of the block while it is still open...
  const auto first = bm.allocate_page(0, BlockLevel::kWork);
  commit(arr, *first, 0);
  arr.invalidate(first->block, first->page, 0);
  for (std::uint32_t p = 1; p < pages; ++p) {
    commit(arr, *bm.allocate_page(0, BlockLevel::kWork), p);
  }
  EXPECT_EQ(bm.max_invalid_candidate(0, CellMode::kSlc), kInvalidBlock);
  // ...then close it (next allocation opens a fresh block): the index
  // must file it under its full invalid count.
  commit(arr, *bm.allocate_page(0, BlockLevel::kWork), pages);
  EXPECT_EQ(bm.max_invalid_candidate(0, CellMode::kSlc), first->block);
  bm.check_victim_index();
}

}  // namespace
}  // namespace ppssd::ftl
