#include "sim/replayer.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace ppssd::sim {
namespace {

SsdConfig cfg() { return SsdConfig::scaled(1024); }

trace::TraceRecord rec(SimTime arrival, OpType op, std::uint64_t offset,
                       std::uint32_t size) {
  return trace::TraceRecord{arrival, op, offset, size};
}

TEST(Replayer, ReplaysAllRecords) {
  Ssd ssd(cfg(), "IPU");
  std::vector<trace::TraceRecord> records;
  for (int i = 0; i < 100; ++i) {
    records.push_back(rec(ms_to_ns(i + 1.0), OpType::kWrite,
                          static_cast<std::uint64_t>(i) * 16384, 4096));
  }
  trace::VectorTraceSource src(std::move(records));
  Replayer replayer(ssd);
  const auto result = replayer.replay(src);
  EXPECT_EQ(result.requests, 100u);
  EXPECT_EQ(result.latency.write_count(), 100u);
  EXPECT_EQ(result.latency.read_count(), 0u);
  EXPECT_GT(result.makespan, ms_to_ns(100.0));
}

TEST(Replayer, MaxRequestsLimit) {
  Ssd ssd(cfg(), "Baseline");
  std::vector<trace::TraceRecord> records;
  for (int i = 0; i < 50; ++i) {
    records.push_back(rec(ms_to_ns(i + 1.0), OpType::kWrite, 0, 4096));
  }
  trace::VectorTraceSource src(std::move(records));
  Replayer replayer(ssd);
  const auto result = replayer.replay(src, 10);
  EXPECT_EQ(result.requests, 10u);
}

TEST(Replayer, SeparatesReadAndWriteLatency) {
  Ssd ssd(cfg(), "IPU");
  std::vector<trace::TraceRecord> records;
  records.push_back(rec(ms_to_ns(1.0), OpType::kWrite, 0, 16384));
  records.push_back(rec(ms_to_ns(100.0), OpType::kRead, 0, 16384));
  trace::VectorTraceSource src(std::move(records));
  Replayer replayer(ssd);
  const auto result = replayer.replay(src);
  EXPECT_GT(result.latency.avg_write_ms(), result.latency.avg_read_ms());
}

TEST(Replayer, QueueDepthTracksOverlap) {
  // Back-to-back arrivals while the device is busy -> queue builds.
  Ssd ssd(cfg(), "Baseline");
  std::vector<trace::TraceRecord> burst;
  for (int i = 0; i < 64; ++i) {
    burst.push_back(rec(1000 + i, OpType::kWrite,
                        static_cast<std::uint64_t>(i) * 16384, 16384));
  }
  trace::VectorTraceSource src(std::move(burst));
  Replayer replayer(ssd);
  const auto result = replayer.replay(src);
  EXPECT_GT(result.avg_queue_depth, 1.0);
  EXPECT_GT(result.max_queue_depth, 2u);
}

TEST(Replayer, IdleArrivalsKeepQueueEmpty) {
  Ssd ssd(cfg(), "Baseline");
  std::vector<trace::TraceRecord> slow;
  for (int i = 0; i < 20; ++i) {
    slow.push_back(rec(ms_to_ns(100.0 * (i + 1)), OpType::kWrite,
                       static_cast<std::uint64_t>(i) * 16384, 4096));
  }
  trace::VectorTraceSource src(std::move(slow));
  Replayer replayer(ssd);
  const auto result = replayer.replay(src);
  // Every request completes long before the next arrives: no arrival
  // ever observes an outstanding request, while the time-weighted depth
  // is the (small, positive) busy fraction of the replay window.
  EXPECT_DOUBLE_EQ(result.avg_queue_depth_at_arrival, 0.0);
  EXPECT_GT(result.avg_queue_depth, 0.0);
  EXPECT_LT(result.avg_queue_depth, 0.1);
}

TEST(Replayer, TimeWeightedQueueDepthClosedForm) {
  // Two non-overlapping writes of identical latency L, arrivals t1 and
  // t2 with t2 > t1 + L. The depth is 1 for 2L of simulated time and 0
  // otherwise, so the time-weighted mean over [t1, t2 + L] is
  // 2L / (t2 + L - t1); the at-arrival sample never sees a queue.
  Ssd ssd(cfg(), "Baseline");
  const SimTime t1 = ms_to_ns(1.0);
  const SimTime t2 = ms_to_ns(201.0);
  std::vector<trace::TraceRecord> records = {
      rec(t1, OpType::kWrite, 0, 4096),
      rec(t2, OpType::kWrite, 1 << 20, 4096)};
  trace::VectorTraceSource src(std::move(records));
  Replayer replayer(ssd);
  const auto result = replayer.replay(src);
  ASSERT_EQ(result.requests, 2u);
  EXPECT_DOUBLE_EQ(result.avg_queue_depth_at_arrival, 0.0);
  const double busy_ns = 2.0 * result.latency.avg_write_ms() * 1e6;
  const double span_ns = static_cast<double>(result.makespan - t1);
  EXPECT_NEAR(result.avg_queue_depth, busy_ns / span_ns, 1e-12);
}

TEST(Replayer, EmptySource) {
  Ssd ssd(cfg(), "Baseline");
  trace::VectorTraceSource src({});
  Replayer replayer(ssd);
  const auto result = replayer.replay(src);
  EXPECT_EQ(result.requests, 0u);
  EXPECT_EQ(result.makespan, 0u);
}

}  // namespace
}  // namespace ppssd::sim
