// End-to-end checks of the causal latency attribution layer.
//
// The dual-accounting test is the acceptance gate for the conservation
// invariant: it drives the real Controller with randomized op streams
// (5 seeds) while maintaining an *independent* model of the three
// resource horizons, and after every op compares the ledger's component
// decomposition — per resource, in exact ticks — against the model's
// arithmetic. The ledger's own PPSSD_CHECKs run concurrently, so both
// accountants must agree with each other and with the measured latency.
#include <gtest/gtest.h>

#include <vector>

#include "cache/scheme.h"
#include "common/rng.h"
#include "sim/controller.h"
#include "sim/ssd.h"
#include "telemetry/telemetry.h"

namespace ppssd::sim {
namespace {

namespace attr = telemetry::attribution;

telemetry::TelemetryOptions attrib_opts() {
  telemetry::TelemetryOptions opts;
  opts.attribution = true;
  return opts;
}

cache::PhysOp rand_op(Rng& rng, std::uint32_t chips, std::uint32_t channels) {
  cache::PhysOp op;
  op.chip = static_cast<std::uint32_t>(rng.next_below(chips));
  op.channel = static_cast<std::uint32_t>(rng.next_below(channels));
  const std::uint64_t kind = rng.next_below(10);
  if (kind < 4) {
    op.kind = cache::PhysOp::Kind::kRead;
  } else if (kind < 8) {
    op.kind = cache::PhysOp::Kind::kProgram;
  } else if (kind < 9) {
    op.kind = cache::PhysOp::Kind::kReprogram;
  } else {
    op.kind = cache::PhysOp::Kind::kErase;
  }
  // Reprogram targets are always dense-mode pages (the IPS promotion).
  op.mode = op.kind == cache::PhysOp::Kind::kReprogram || rng.next_below(2)
                ? CellMode::kMlc
                : CellMode::kSlc;
  op.subpages = static_cast<std::uint32_t>(1 + rng.next_below(4));
  op.ber = 0.0;
  op.background =
      op.kind == cache::PhysOp::Kind::kErase || rng.next_below(3) == 0;
  op.origin = op.background ? cache::OpOrigin::kGc : cache::OpOrigin::kHost;
  return op;
}

TEST(AttributionDualAccounting, RandomOpsMatchIndependentModelAcrossSeeds) {
  const SsdConfig c = SsdConfig::scaled(1024);
  constexpr std::uint32_t kChips = 4;
  constexpr std::uint32_t kChannels = 2;
  constexpr std::size_t kLaneComps[] = {2, 3, 4, 5};  // kLane* components
  constexpr std::size_t kChanComps[] = {6, 7, 8, 9};  // kChan* components
  constexpr std::size_t kEraseRem =
      static_cast<std::size_t>(attr::Component::kEraseRemainder);

  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Controller ctrl(c, kChips, kChannels);
    telemetry::Telemetry tel(attrib_opts());
    ctrl.attach_telemetry(&tel);
    attr::AttributionLedger* led = tel.attribution();
    ASSERT_NE(led, nullptr);

    // The independent accountant: mirror of the controller's horizons.
    std::vector<SimTime> busy(kChips, 0);
    std::vector<SimTime> erase_h(kChips, 0);
    std::vector<SimTime> chan(kChannels, 0);

    Rng rng(seed);
    SimTime now = 0;
    for (int i = 0; i < 2000; ++i) {
      now += rng.next_below(us_to_ns(50.0));
      const cache::PhysOp op = rand_op(rng, kChips, kChannels);

      // Reference decomposition, recomputed from first principles.
      SimTime exp_end = 0;
      SimTime exp_lane = 0, exp_chan = 0, exp_erase = 0;
      SimTime exp_service = 0, exp_ecc = 0;
      switch (op.kind) {
        case cache::PhysOp::Kind::kRead: {
          SimTime sense_start = std::max(now, busy[op.chip]);
          exp_lane = sense_start - now;
          if (op.background) {
            const SimTime gated = std::max(sense_start, erase_h[op.chip]);
            exp_erase = gated - sense_start;
            sense_start = gated;
          }
          const SimTime sense_end =
              sense_start + (op.mode == CellMode::kSlc ? c.timing.slc_read
                                                       : c.timing.mlc_read);
          const SimTime xfer_start = std::max(sense_end, chan[op.channel]);
          exp_chan = xfer_start - sense_end;
          const SimTime xfer_end =
              xfer_start + c.timing.transfer_per_subpage * op.subpages;
          exp_service = (sense_end - sense_start) + (xfer_end - xfer_start);
          exp_ecc = ctrl.ecc_cost(op);
          exp_end = xfer_end + exp_ecc;
          busy[op.chip] = sense_end;
          chan[op.channel] = xfer_end;
          break;
        }
        case cache::PhysOp::Kind::kProgram: {
          const SimTime xfer_start = std::max(now, chan[op.channel]);
          exp_chan = xfer_start - now;
          const SimTime xfer_end =
              xfer_start + c.timing.transfer_per_subpage * op.subpages;
          SimTime prog_start = std::max(xfer_end, busy[op.chip]);
          exp_lane = prog_start - xfer_end;
          if (op.background) {
            const SimTime gated = std::max(prog_start, erase_h[op.chip]);
            exp_erase = gated - prog_start;
            prog_start = gated;
          }
          exp_end = prog_start + (op.mode == CellMode::kSlc
                                      ? c.timing.slc_write
                                      : c.timing.mlc_write);
          exp_service =
              (xfer_end - xfer_start) + (exp_end - prog_start);
          busy[op.chip] = exp_end;
          chan[op.channel] = xfer_end;
          break;
        }
        case cache::PhysOp::Kind::kReprogram: {
          // Lane-only op: no channel transfer, no ECC (the data never
          // leaves the array).
          SimTime start = std::max(now, busy[op.chip]);
          exp_lane = start - now;
          if (op.background) {
            const SimTime gated = std::max(start, erase_h[op.chip]);
            exp_erase = gated - start;
            start = gated;
          }
          exp_end = start + c.timing.reprogram;
          exp_service = exp_end - start;
          busy[op.chip] = exp_end;
          break;
        }
        case cache::PhysOp::Kind::kErase: {
          const SimTime after_erase = std::max(now, erase_h[op.chip]);
          exp_erase = after_erase - now;
          const SimTime start = std::max(after_erase, busy[op.chip]);
          exp_lane = start - after_erase;
          exp_end = start + c.timing.erase;
          exp_service = exp_end - start;
          erase_h[op.chip] = exp_end;
          break;
        }
      }

      const SimTime end = ctrl.schedule(op, now);
      ASSERT_EQ(end, exp_end) << "seed " << seed << " op " << i;

      const attr::OpBlame& ob = led->last_op();
      SimTime got_lane = 0, got_chan = 0;
      for (const std::size_t k : kLaneComps) got_lane += ob.comp[k];
      for (const std::size_t k : kChanComps) got_chan += ob.comp[k];
      ASSERT_EQ(got_lane, exp_lane) << "seed " << seed << " op " << i;
      ASSERT_EQ(got_chan, exp_chan) << "seed " << seed << " op " << i;
      ASSERT_EQ(ob.comp[kEraseRem], exp_erase) << "seed " << seed << " op "
                                               << i;
      ASSERT_EQ(ob.comp[0], exp_service) << "seed " << seed << " op " << i;
      ASSERT_EQ(ob.comp[1], exp_ecc) << "seed " << seed << " op " << i;
      // The invariant, recomputed outside the ledger's own PPSSD_CHECK.
      ASSERT_EQ(ob.component_sum(), end - now)
          << "seed " << seed << " op " << i;
    }
    EXPECT_EQ(led->ops(), 2000u);
  }
}

TEST(AttributionE2e, EveryRecordConservesUnderBothInterleaveSettings) {
  for (const std::uint32_t interleave : {0u, 2u}) {
    SsdConfig c = SsdConfig::scaled(2048);
    c.cache.gc_interleave_ops = interleave;
    Ssd ssd(c, "IPU");
    telemetry::Telemetry tel(attrib_opts());
    tel.attribution()->set_keep_records(true);
    ssd.attach_telemetry(&tel);

    Rng rng(42);
    SimTime now = 0;
    const int kRequests = 3000;
    for (int i = 0; i < kRequests; ++i) {
      const OpType op = rng.next_below(4) == 3 ? OpType::kRead : OpType::kWrite;
      const std::uint64_t off = rng.next_below(4000) * kSubpageBytes;
      ssd.submit(op, off, kSubpageBytes, now);
      now += us_to_ns(15.0);
    }

    const auto& records = tel.attribution()->records();
    ASSERT_EQ(records.size(), static_cast<std::size_t>(kRequests));
    for (const attr::RequestBlame& r : records) {
      ASSERT_EQ(r.component_sum(), r.latency()) << "request " << r.id;
      // Zero-latency requests (e.g. a read of never-written data) fold no
      // ops; anything that took time must name at least one.
      if (r.latency() > 0) {
        ASSERT_GE(r.fg_ops, 1u) << "request " << r.id;
      }
    }
    EXPECT_EQ(tel.attribution()->requests(),
              static_cast<std::uint64_t>(kRequests));
  }
}

TEST(AttributionE2e, AttachedLedgerDoesNotPerturbLatencies) {
  SsdConfig c = SsdConfig::scaled(2048);
  Ssd plain(c, "IPU");
  Ssd probed(c, "IPU");
  telemetry::Telemetry tel(attrib_opts());
  probed.attach_telemetry(&tel);

  Rng rng(7);
  SimTime now = 0;
  for (int i = 0; i < 2000; ++i) {
    const OpType op = rng.next_below(4) == 3 ? OpType::kRead : OpType::kWrite;
    const std::uint64_t off = rng.next_below(4000) * kSubpageBytes;
    const auto a = plain.submit(op, off, kSubpageBytes, now);
    const auto b = probed.submit(op, off, kSubpageBytes, now);
    ASSERT_EQ(a.finish, b.finish) << "request " << i;
    ASSERT_EQ(a.drained, b.drained) << "request " << i;
    now += us_to_ns(15.0);
  }
}

}  // namespace
}  // namespace ppssd::sim
