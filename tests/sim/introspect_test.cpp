// End-to-end checks of the device-state introspection layer: the
// Scheme::inspect() hook against an independent device recount, the
// snapshotter's frames against the loader and the conservation rules
// device_inspect re-verifies, the flight recorder fed by the real
// controller, and the no-perturbation / near-zero-overhead guarantees
// for the detached configuration.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "cache/scheme.h"
#include "common/rng.h"
#include "sim/ssd.h"
#include "telemetry/introspect/format.h"
#include "telemetry/introspect/snapshotter.h"

namespace ppssd::sim {
namespace {

namespace intro = telemetry::introspect;

/// Mixed write-heavy churn, enough to trigger SLC GC on the scaled
/// device (mirrors the attribution e2e workload).
void churn(Ssd& ssd, int requests, SimTime* now,
           intro::Snapshotter* snap = nullptr) {
  Rng rng(42);
  for (int i = 0; i < requests; ++i) {
    const OpType op = rng.next_below(4) == 3 ? OpType::kRead : OpType::kWrite;
    const std::uint64_t off = rng.next_below(4000) * kSubpageBytes;
    ssd.submit(op, off, kSubpageBytes, *now);
    *now += us_to_ns(15.0);
    if (snap != nullptr) snap->tick(*now);
  }
}

/// Independent recount of the SLC-resident valid subpages straight from
/// the array, bypassing the scheme's own aggregates.
std::uint64_t recount_slc_valid(const cache::Scheme& scheme) {
  const auto& geom = scheme.array().geometry();
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < geom.slc_block_count(); ++i) {
    total += scheme.array().block(geom.slc_block_at(i)).valid_subpages();
  }
  return total;
}

std::string fresh_path(const char* name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

TEST(SchemeInspect, ValuesMatchIndependentDeviceRecount) {
  for (const char* name : {"Baseline", "MGA", "IPU", "IPS"}) {
    Ssd ssd(SsdConfig::scaled(2048), name);
    SimTime now = 0;
    churn(ssd, 3000, &now);

    intro::StateSink sink;
    ssd.scheme().inspect(sink);

    const auto* cached = sink.find("slc_cached_subpages");
    ASSERT_NE(cached, nullptr) << name;
    EXPECT_EQ(cached->u, recount_slc_valid(ssd.scheme())) << name;

    const auto* mapped = sink.find("mapped_lsns");
    const auto* logical = sink.find("logical_subpages");
    ASSERT_NE(mapped, nullptr) << name;
    ASSERT_NE(logical, nullptr) << name;
    EXPECT_GT(mapped->u, 0u) << name;
    EXPECT_LE(mapped->u, logical->u) << name;
  }

  // Scheme-specific extras ride on top of the base section.
  Ssd ips(SsdConfig::scaled(2048), "IPS");
  SimTime now = 0;
  churn(ips, 3000, &now);
  intro::StateSink sink;
  ips.scheme().inspect(sink);
  EXPECT_NE(sink.find("reprogrammed_pages"), nullptr);
  EXPECT_NE(sink.find("fallback_subpages"), nullptr);
}

TEST(Snapshotter, ProducesLoadableConservingFrames) {
  const std::string snap_path = fresh_path("introspect_e2e_snap.bin");
  const std::string flight_path = fresh_path("introspect_e2e_flight.bin");

  intro::IntrospectOptions opts;
  opts.snapshot_every_ns = ms_to_ns(20.0);
  opts.snapshot_path = snap_path;
  // Wide enough to retain GC decisions between cleaning bursts (steady
  // state fires one every few hundred requests).
  opts.flight_capacity = 4096;
  opts.flight_path = flight_path;

  Ssd ssd(SsdConfig::scaled(2048), "IPU");
  intro::Snapshotter snap(opts);
  ssd.attach_introspection(&snap);

  // Long enough to saturate the SLC regions and run steady-state GC
  // (free blocks reach the threshold around request ~20k at this scale).
  SimTime now = 0;
  churn(ssd, 30000, &now, &snap);
  snap.finish(now);
  ssd.attach_introspection(nullptr);
  EXPECT_GE(snap.frames_written(), 2u);

  intro::SnapshotFile file;
  std::string error;
  ASSERT_TRUE(intro::load_snapshots(snap_path, &file, &error)) << error;
  ASSERT_EQ(file.streams.size(), 1u);
  const auto& stream = file.streams[0];
  EXPECT_EQ(stream.info.scheme, "IPU");
  const auto& geom = ssd.scheme().array().geometry();
  EXPECT_EQ(stream.info.total_blocks, geom.total_blocks());
  ASSERT_EQ(stream.frames.size(), snap.frames_written());

  // Re-verify the core conservation rules on every frame, independently
  // of device_inspect: per-block bounds, mode/region agreement, and the
  // scheme's cached-subpage figure against the per-block sum.
  for (const auto& frame : stream.frames) {
    ASSERT_EQ(frame.blocks.size(), geom.total_blocks());
    std::uint64_t slc_valid = 0;
    std::uint64_t mapped = 0;
    for (std::size_t b = 0; b < frame.blocks.size(); ++b) {
      const auto& blk = frame.blocks[b];
      const std::uint32_t spp = stream.info.subpages_per_page;
      ASSERT_LE(blk.write_frontier, blk.pages);
      ASSERT_LE(blk.valid_subpages + blk.invalid_subpages,
                static_cast<std::uint32_t>(blk.write_frontier) * spp);
      ASSERT_LE(blk.reprogrammed_pages, blk.write_frontier);
      const bool in_slc_region =
          b % geom.blocks_per_plane() < geom.slc_blocks_per_plane();
      ASSERT_EQ(blk.mode == static_cast<std::uint8_t>(CellMode::kSlc),
                in_slc_region);
      if (in_slc_region) slc_valid += blk.valid_subpages;
      mapped += blk.valid_subpages;
    }
    const auto* cached = frame.values.find("slc_cached_subpages");
    ASSERT_NE(cached, nullptr);
    ASSERT_EQ(cached->u, slc_valid);
    const auto* mapped_kv = frame.values.find("mapped_lsns");
    ASSERT_NE(mapped_kv, nullptr);
    ASSERT_EQ(mapped_kv->u, mapped);
  }
  // Frames advance in time and sequence.
  for (std::size_t i = 1; i < stream.frames.size(); ++i) {
    ASSERT_GE(stream.frames[i].time, stream.frames[i - 1].time);
    ASSERT_EQ(stream.frames[i].seq, stream.frames[i - 1].seq + 1);
  }

  // The flight ring saw real controller traffic and the finish() dump
  // loads back, op begins paired with finishes.
  intro::FlightFile flight;
  ASSERT_TRUE(intro::load_flight(flight_path, &flight, &error)) << error;
  EXPECT_GT(flight.recorded, 0u);
  ASSERT_FALSE(flight.events.empty());
  std::size_t begins = 0, finishes = 0, gc = 0;
  for (const auto& ev : flight.events) {
    if (ev.kind == intro::FlightEventKind::kOpBegin) ++begins;
    if (ev.kind == intro::FlightEventKind::kOpFinish) ++finishes;
    if (ev.kind == intro::FlightEventKind::kGcDecision) ++gc;
  }
  EXPECT_GT(begins, 0u);
  EXPECT_GT(finishes, 0u);
  EXPECT_GT(gc, 0u);  // the churn workload forces SLC GC

  std::remove(snap_path.c_str());
  std::remove(flight_path.c_str());
}

TEST(Snapshotter, AttachedObserverDoesNotPerturbCompletions) {
  const std::string snap_path = fresh_path("introspect_noperturb_snap.bin");
  const std::string flight_path = fresh_path("introspect_noperturb_flight.bin");
  const SsdConfig c = SsdConfig::scaled(2048);
  Ssd plain(c, "IPU");
  Ssd probed(c, "IPU");

  intro::IntrospectOptions opts;
  opts.snapshot_every_ns = ms_to_ns(2.0);
  opts.snapshot_path = snap_path;
  opts.flight_capacity = 256;
  opts.flight_path = flight_path;
  intro::Snapshotter snap(opts);
  probed.attach_introspection(&snap);

  Rng rng(7);
  SimTime now = 0;
  for (int i = 0; i < 2000; ++i) {
    const OpType op = rng.next_below(4) == 3 ? OpType::kRead : OpType::kWrite;
    const std::uint64_t off = rng.next_below(4000) * kSubpageBytes;
    const auto a = plain.submit(op, off, kSubpageBytes, now);
    const auto b = probed.submit(op, off, kSubpageBytes, now);
    ASSERT_EQ(a.finish, b.finish) << "request " << i;
    ASSERT_EQ(a.drained, b.drained) << "request " << i;
    now += us_to_ns(15.0);
    snap.tick(now);
  }
  snap.finish(now);
  probed.attach_introspection(nullptr);
  std::remove(snap_path.c_str());
  std::remove(flight_path.c_str());
}

// The acceptance bar for the off configuration, mirroring the disabled-
// profiler test: a device with no snapshotter attached must not look
// like it is doing the attached device's work. A/B-time the same submit
// loop; generous 8x bound to shed CI noise (the attached run records
// two flight events per op and walks the device on interval crossings).
TEST(Snapshotter, DetachedSubmitPathIsFreeComparedToAttached) {
  const std::string snap_path = fresh_path("introspect_ab_snap.bin");
  const std::string flight_path = fresh_path("introspect_ab_flight.bin");
  constexpr int kRequests = 20000;

  auto time_run = [&](bool attached) {
    Ssd ssd(SsdConfig::scaled(2048), "IPU");
    intro::IntrospectOptions opts;
    opts.snapshot_every_ns = ms_to_ns(5.0);
    opts.snapshot_path = snap_path;
    opts.flight_capacity = 4096;
    opts.flight_path = flight_path;
    intro::Snapshotter snap(opts);
    if (attached) ssd.attach_introspection(&snap);

    Rng rng(3);
    SimTime now = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kRequests; ++i) {
      const OpType op =
          rng.next_below(4) == 3 ? OpType::kRead : OpType::kWrite;
      const std::uint64_t off = rng.next_below(4000) * kSubpageBytes;
      ssd.submit(op, off, kSubpageBytes, now);
      now += us_to_ns(15.0);
      if (attached) snap.tick(now);
    }
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
    if (attached) {
      snap.finish(now);
      ssd.attach_introspection(nullptr);
    }
    return seconds;
  };

  auto best_of = [&](bool attached) {
    double best = time_run(attached);
    for (int i = 0; i < 2; ++i) best = std::min(best, time_run(attached));
    return best;
  };

  const double detached = best_of(false);
  const double attached = best_of(true);
  EXPECT_GT(attached, 0.0);
  EXPECT_LT(detached, attached * 8.0)
      << "detached=" << detached << "s attached=" << attached << "s";

  std::remove(snap_path.c_str());
  std::remove(flight_path.c_str());
}

}  // namespace
}  // namespace ppssd::sim
