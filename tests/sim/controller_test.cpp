#include "sim/controller.h"

#include <gtest/gtest.h>

#include <vector>

namespace ppssd::sim {
namespace {

SsdConfig cfg() { return SsdConfig::scaled(1024); }

cache::PhysOp read_op(std::uint32_t chip, std::uint32_t channel = 0,
                      bool bg = false) {
  cache::PhysOp op;
  op.chip = chip;
  op.channel = channel;
  op.kind = cache::PhysOp::Kind::kRead;
  op.mode = CellMode::kSlc;
  op.subpages = 1;
  op.ber = 0.0;
  op.background = bg;
  return op;
}

cache::PhysOp program_op(std::uint32_t chip, std::uint32_t channel = 0,
                         bool bg = false) {
  cache::PhysOp op;
  op.chip = chip;
  op.channel = channel;
  op.kind = cache::PhysOp::Kind::kProgram;
  op.mode = CellMode::kSlc;
  op.subpages = 1;
  op.background = bg;
  return op;
}

cache::PhysOp erase_op(std::uint32_t chip) {
  cache::PhysOp op;
  op.chip = chip;
  op.channel = 0;
  op.kind = cache::PhysOp::Kind::kErase;
  op.background = true;
  return op;
}

// A dependency's completion gates the dependent op even when its own chip
// and channel are idle: the GC relocation program cannot start before the
// page read that sources its data.
TEST(Controller, DependencyReadyTimeGatesIdleChip) {
  const SsdConfig c = cfg();
  Controller ctrl(c, 2, 2);
  const SimTime read_end = ctrl.schedule(read_op(0, 0, true), 0);
  EXPECT_EQ(read_end,
            c.timing.slc_read + c.timing.transfer_per_subpage +
                c.ecc.min_decode);
  // Chip 1 / channel 1 are idle, yet the program starts only at read_end.
  const SimTime prog_end = ctrl.schedule(program_op(1, 1, true), read_end);
  EXPECT_EQ(prog_end,
            read_end + c.timing.transfer_per_subpage + c.timing.slc_write);
}

TEST(Controller, ForegroundSuspendsEraseBackgroundWaits) {
  const SsdConfig c = cfg();
  // Background case: the program queues behind the whole erase.
  {
    Controller ctrl(c, 2, 2);
    ctrl.schedule(erase_op(0), 0);
    const SimTime end = ctrl.schedule(program_op(0, 0, true), 100);
    EXPECT_EQ(end, c.timing.erase + c.timing.slc_write);
  }
  // Foreground case: the host program suspends the erase and runs as if
  // the chip were idle.
  {
    Controller ctrl(c, 2, 2);
    ctrl.schedule(erase_op(0), 0);
    const SimTime end = ctrl.schedule(program_op(0, 0, false), 100);
    EXPECT_EQ(end, 100 + c.timing.transfer_per_subpage + c.timing.slc_write);
  }
}

TEST(Controller, AdvanceToRetiresInflightCommands) {
  const SsdConfig c = cfg();
  Controller ctrl(c, 4, 2);
  const SimTime a = ctrl.schedule(program_op(0), 0);
  const SimTime b = ctrl.schedule(read_op(1, 1), 0);  // finishes earlier
  ASSERT_NE(a, b);
  EXPECT_EQ(ctrl.inflight_ops(), 2u);
  ctrl.advance_to(std::min(a, b));
  EXPECT_EQ(ctrl.inflight_ops(), 1u);
  EXPECT_EQ(ctrl.clock(), std::min(a, b));
  ctrl.advance_to(kNoTime);  // retire everything; clock lands on last end
  EXPECT_EQ(ctrl.inflight_ops(), 0u);
  EXPECT_EQ(ctrl.clock(), std::max(a, b));
}

TEST(Controller, ClockNeverMovesBackwards) {
  Controller ctrl(cfg(), 2, 2);
  ctrl.advance_to(5000);
  ctrl.advance_to(1000);
  EXPECT_EQ(ctrl.clock(), 5000u);
}

// The acceptance scenario for out-of-order host completions: chip 1 is
// mired in a GC chain (page read -> relocation program -> erase) when a
// host write lands on it; a short host read on idle chip 0, submitted
// later, finishes first. Delivering completions through the stable event
// queue hands the host the read before the write.
TEST(Controller, ShortReadOvertakesGcLadenWrite) {
  const SsdConfig c = cfg();
  Controller ctrl(c, 2, 2);

  // GC chain on chip 1 / channel 1.
  const SimTime gc_read = ctrl.schedule(read_op(1, 1, true), 0);
  const SimTime gc_prog = ctrl.schedule(program_op(1, 1, true), gc_read);
  ctrl.schedule(erase_op(1), gc_prog);

  EventQueue<char> completions;  // payload: which host request
  const SimTime w = ctrl.schedule(program_op(1, 1, false), 100);
  completions.push(w, 'W');
  const SimTime r = ctrl.schedule(read_op(0, 0, false), 200);
  completions.push(r, 'R');

  // The write queued behind the GC program on its lane (the erase was
  // suspended); the read ran on the idle chip.
  EXPECT_GE(w, gc_prog + c.timing.slc_write);
  EXPECT_EQ(r, 200 + c.timing.slc_read + c.timing.transfer_per_subpage +
                   c.ecc.min_decode);
  EXPECT_LT(r, w);
  EXPECT_EQ(completions.pop().payload, 'R');
  EXPECT_EQ(completions.pop().payload, 'W');
}

// ---- erase-suspend attribution edge cases --------------------------------
//
// Each test attaches an in-memory attribution ledger and asserts the
// suspend-remainder / suspend-savings ticks the controller reports for
// the paper's erase-suspend corner cases. Per-op conservation
// (components tile [ready, end] exactly) is asserted alongside.

namespace attr = telemetry::attribution;

constexpr std::size_t kEraseRem =
    static_cast<std::size_t>(attr::Component::kEraseRemainder);

TEST(Controller, BackToBackSuspendsOfOneEraseEachRecordShrinkingSavings) {
  const SsdConfig c = cfg();
  const SimTime T = c.timing.transfer_per_subpage;
  const SimTime W = c.timing.slc_write;
  const SimTime E = c.timing.erase;
  ASSERT_GT(E, 2 * T + W);  // the erase outlives both suspending writes

  Controller ctrl(c, 1, 1);
  telemetry::TelemetryOptions opts;
  opts.attribution = true;
  telemetry::Telemetry tel(opts);
  ctrl.attach_telemetry(&tel);
  attr::AttributionLedger* led = tel.attribution();
  ASSERT_NE(led, nullptr);

  ctrl.schedule(erase_op(0), 0);  // erase horizon [0, E)
  // First host write suspends: it runs as if the chip were idle, and the
  // ledger records how long it *would* have waited.
  const SimTime end1 = ctrl.schedule(program_op(0), 0);
  EXPECT_EQ(end1, T + W);
  EXPECT_EQ(led->suspend_saved_ns(), E - T);
  EXPECT_EQ(led->last_op().comp[kEraseRem], 0u);
  EXPECT_EQ(led->last_op().component_sum(), end1);
  // Second host write suspends the *same* still-pending erase; the saved
  // remainder shrank by exactly the simulated time that passed.
  const SimTime end2 = ctrl.schedule(program_op(0), end1);
  EXPECT_EQ(end2, end1 + T + W);
  EXPECT_EQ(led->suspend_saved_ns(), (E - T) + (E - (2 * T + W)));
  EXPECT_EQ(led->last_op().comp[kEraseRem], 0u);
  EXPECT_EQ(led->last_op().component_sum(), end2 - end1);
}

TEST(Controller, SuspendAtExactEraseCompletionTickSavesNothing) {
  const SsdConfig c = cfg();
  const SimTime T = c.timing.transfer_per_subpage;
  const SimTime W = c.timing.slc_write;
  const SimTime E = c.timing.erase;

  Controller ctrl(c, 1, 1);
  telemetry::TelemetryOptions opts;
  opts.attribution = true;
  telemetry::Telemetry tel(opts);
  ctrl.attach_telemetry(&tel);
  attr::AttributionLedger* led = tel.attribution();

  ctrl.schedule(erase_op(0), 0);
  // The program pulse starts exactly when the erase completes: there is
  // nothing to suspend, so no savings and no remainder.
  const SimTime end = ctrl.schedule(program_op(0), E - T);
  EXPECT_EQ(end, E + W);
  EXPECT_EQ(led->suspend_saved_ns(), 0u);
  EXPECT_EQ(led->last_op().comp[kEraseRem], 0u);
  EXPECT_EQ(led->last_op().component_sum(), T + W);

  // One tick earlier and the suspend is real: exactly one saved tick.
  Controller ctrl2(c, 1, 1);
  telemetry::Telemetry tel2(opts);
  ctrl2.attach_telemetry(&tel2);
  ctrl2.schedule(erase_op(0), 0);
  const SimTime end2 = ctrl2.schedule(program_op(0), E - T - 1);
  EXPECT_EQ(end2, E - 1 + W);
  EXPECT_EQ(tel2.attribution()->suspend_saved_ns(), 1u);
}

TEST(Controller, ResumeThenImmediateGcWaitsOutRemainderChargedToErase) {
  const SsdConfig c = cfg();
  const SimTime T = c.timing.transfer_per_subpage;
  const SimTime W = c.timing.slc_write;
  const SimTime E = c.timing.erase;
  ASSERT_GT(E, 2 * T + W);

  Controller ctrl(c, 1, 1);
  telemetry::TelemetryOptions opts;
  opts.attribution = true;
  telemetry::Telemetry tel(opts);
  ctrl.attach_telemetry(&tel);
  attr::AttributionLedger* led = tel.attribution();

  ctrl.schedule(erase_op(0), 0);
  // Host write suspends the erase...
  const SimTime end1 = ctrl.schedule(program_op(0), 0);
  EXPECT_EQ(end1, T + W);
  // ...the erase resumes, and a GC relocation program issued right after
  // the host write must wait out the remainder — charged tick-for-tick
  // to kEraseRemainder and blamed on the erase op.
  const SimTime end2 = ctrl.schedule(program_op(0, 0, true), end1);
  EXPECT_EQ(end2, E + W);
  const attr::OpBlame& op = led->last_op();
  EXPECT_EQ(op.comp[kEraseRem], E - (end1 + T));
  EXPECT_EQ(op.component_sum(), end2 - end1);
  EXPECT_EQ(op.blocker_cls, attr::OpClass::kErase);
  EXPECT_EQ(op.blocker_res, attr::Resource::kErase);
  EXPECT_EQ(led->wait_ns(attr::OpClass::kGcProgram, attr::OpClass::kErase,
                         attr::Resource::kErase, CellMode::kSlc),
            E - (end1 + T));
}

TEST(Controller, ResetClearsClockAndInflight) {
  Controller ctrl(cfg(), 2, 2);
  ctrl.schedule(program_op(0), 0);
  ctrl.advance_to(10);
  ctrl.reset();
  EXPECT_EQ(ctrl.clock(), 0u);
  EXPECT_EQ(ctrl.inflight_ops(), 0u);
  EXPECT_EQ(ctrl.chip_free_at(0), 0u);
  EXPECT_EQ(ctrl.usage().total(), 0u);
}

}  // namespace
}  // namespace ppssd::sim
