#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"

namespace ppssd::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue<int> q;
  q.push(30, 3);
  q.push(10, 1);
  q.push(20, 2);
  EXPECT_EQ(q.pop().payload, 1);
  EXPECT_EQ(q.pop().payload, 2);
  EXPECT_EQ(q.pop().payload, 3);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RandomizedHeapProperty) {
  EventQueue<std::uint64_t> q;
  Rng rng(3);
  std::vector<SimTime> times;
  for (int i = 0; i < 5000; ++i) {
    const SimTime t = rng.next_below(1'000'000);
    times.push_back(t);
    q.push(t, t);
  }
  std::sort(times.begin(), times.end());
  for (const SimTime expected : times) {
    EXPECT_EQ(q.pop().time, expected);
  }
}

TEST(EventQueue, DrainUntil) {
  EventQueue<int> q;
  for (int i = 1; i <= 10; ++i) {
    q.push(static_cast<SimTime>(i * 100), i);
  }
  int drained = 0;
  q.drain_until(500, [&](const auto& ev) {
    ++drained;
    EXPECT_LE(ev.time, 500u);
  });
  EXPECT_EQ(drained, 5);
  EXPECT_EQ(q.size(), 5u);
  EXPECT_EQ(q.top().time, 600u);
}

TEST(EventQueue, DrainUntilInclusive) {
  EventQueue<int> q;
  q.push(100, 1);
  int drained = 0;
  q.drain_until(100, [&](const auto&) { ++drained; });
  EXPECT_EQ(drained, 1);
}

TEST(EventQueueDeathTest, PopEmptyAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EventQueue<int> q;
  EXPECT_DEATH(q.pop(), "");
}

TEST(EventQueue, InterleavedPushPop) {
  EventQueue<int> q;
  q.push(5, 5);
  q.push(1, 1);
  EXPECT_EQ(q.pop().payload, 1);
  q.push(3, 3);
  q.push(7, 7);
  EXPECT_EQ(q.pop().payload, 3);
  EXPECT_EQ(q.pop().payload, 5);
  EXPECT_EQ(q.pop().payload, 7);
}

}  // namespace
}  // namespace ppssd::sim
