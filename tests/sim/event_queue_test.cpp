#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace ppssd::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue<int> q;
  q.push(30, 3);
  q.push(10, 1);
  q.push(20, 2);
  EXPECT_EQ(q.pop().payload, 1);
  EXPECT_EQ(q.pop().payload, 2);
  EXPECT_EQ(q.pop().payload, 3);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RandomizedHeapProperty) {
  EventQueue<std::uint64_t> q;
  Rng rng(3);
  std::vector<SimTime> times;
  for (int i = 0; i < 5000; ++i) {
    const SimTime t = rng.next_below(1'000'000);
    times.push_back(t);
    q.push(t, t);
  }
  std::sort(times.begin(), times.end());
  for (const SimTime expected : times) {
    EXPECT_EQ(q.pop().time, expected);
  }
}

TEST(EventQueue, DrainUntil) {
  EventQueue<int> q;
  for (int i = 1; i <= 10; ++i) {
    q.push(static_cast<SimTime>(i * 100), i);
  }
  int drained = 0;
  q.drain_until(500, [&](const auto& ev) {
    ++drained;
    EXPECT_LE(ev.time, 500u);
  });
  EXPECT_EQ(drained, 5);
  EXPECT_EQ(q.size(), 5u);
  EXPECT_EQ(q.top().time, 600u);
}

TEST(EventQueue, DrainUntilInclusive) {
  EventQueue<int> q;
  q.push(100, 1);
  int drained = 0;
  q.drain_until(100, [&](const auto&) { ++drained; });
  EXPECT_EQ(drained, 1);
}

TEST(EventQueue, DuplicateTimestampsPopInInsertionOrder) {
  // Stable ordering: equal-time events come back in push order, so
  // replayed simulations are bit-reproducible regardless of heap layout.
  EventQueue<int> q;
  q.push(100, 1);
  q.push(50, 0);
  q.push(100, 2);
  q.push(100, 3);
  EXPECT_EQ(q.pop().payload, 0);
  EXPECT_EQ(q.pop().payload, 1);
  EXPECT_EQ(q.pop().payload, 2);
  EXPECT_EQ(q.pop().payload, 3);
}

TEST(EventQueue, DrainUntilBelowTopIsNoOp) {
  EventQueue<int> q;
  q.push(100, 1);
  int drained = 0;
  q.drain_until(99, [&](const auto&) { ++drained; });
  EXPECT_EQ(drained, 0);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.top().time, 100u);
}

TEST(EventQueue, RandomizedStableOrderMatchesReference) {
  // Property check against a reference model: interleave pushes with
  // partial drains; every drained batch must come out sorted by time and,
  // within a time, in insertion order. Few distinct timestamps force many
  // ties so the seq tiebreak actually gets exercised.
  EventQueue<std::uint32_t> q;
  Rng rng(11);
  std::vector<std::pair<SimTime, std::uint32_t>> reference;  // insertion order
  std::vector<std::uint32_t> popped;
  std::vector<std::uint32_t> expected;
  std::uint32_t serial = 0;
  for (int round = 0; round < 200; ++round) {
    const int pushes = 1 + static_cast<int>(rng.next_below(20));
    for (int i = 0; i < pushes; ++i) {
      const SimTime t = rng.next_below(100);
      q.push(t, serial);
      reference.emplace_back(t, serial);
      ++serial;
    }
    const SimTime cutoff = rng.next_below(120);
    q.drain_until(cutoff,
                  [&](const auto& ev) { popped.push_back(ev.payload); });
    std::vector<std::pair<SimTime, std::uint32_t>> due;
    std::vector<std::pair<SimTime, std::uint32_t>> rest;
    for (const auto& e : reference) {
      (e.first <= cutoff ? due : rest).push_back(e);
    }
    std::stable_sort(due.begin(), due.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    for (const auto& e : due) expected.push_back(e.second);
    reference = std::move(rest);
    ASSERT_EQ(popped, expected) << "diverged in round " << round;
  }
}

TEST(EventQueueDeathTest, PopEmptyAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EventQueue<int> q;
  EXPECT_DEATH(q.pop(), "");
}

TEST(EventQueue, InterleavedPushPop) {
  EventQueue<int> q;
  q.push(5, 5);
  q.push(1, 1);
  EXPECT_EQ(q.pop().payload, 1);
  q.push(3, 3);
  q.push(7, 7);
  EXPECT_EQ(q.pop().payload, 3);
  EXPECT_EQ(q.pop().payload, 5);
  EXPECT_EQ(q.pop().payload, 7);
}

}  // namespace
}  // namespace ppssd::sim
