#include "sim/service_model.h"

#include <gtest/gtest.h>

namespace ppssd::sim {
namespace {

SsdConfig cfg() { return SsdConfig::scaled(1024); }

cache::PhysOp read_op(std::uint32_t chip, std::uint32_t subpages = 1,
                      double ber = 0.0, bool bg = false) {
  cache::PhysOp op;
  op.chip = chip;
  op.channel = 0;
  op.kind = cache::PhysOp::Kind::kRead;
  op.mode = CellMode::kSlc;
  op.subpages = subpages;
  op.ber = ber;
  op.background = bg;
  return op;
}

cache::PhysOp program_op(std::uint32_t chip, CellMode mode,
                         std::uint32_t subpages = 1, bool bg = false) {
  cache::PhysOp op;
  op.chip = chip;
  op.channel = 0;
  op.kind = cache::PhysOp::Kind::kProgram;
  op.mode = mode;
  op.subpages = subpages;
  op.background = bg;
  return op;
}

cache::PhysOp erase_op(std::uint32_t chip) {
  cache::PhysOp op;
  op.chip = chip;
  op.channel = 0;
  op.kind = cache::PhysOp::Kind::kErase;
  op.background = true;
  return op;
}

TEST(ServiceModel, SingleReadLatency) {
  const SsdConfig c = cfg();
  ServiceModel sm(c, 2, 2);
  const cache::PhysOp ops[] = {read_op(0)};
  const auto out = sm.service(ops, 0);
  // sense + transfer + min ECC decode (ber = 0).
  EXPECT_EQ(out.foreground_end, c.timing.slc_read +
                                    c.timing.transfer_per_subpage +
                                    c.ecc.min_decode);
}

TEST(ServiceModel, SingleProgramLatency) {
  const SsdConfig c = cfg();
  ServiceModel sm(c, 2, 2);
  const cache::PhysOp ops[] = {program_op(0, CellMode::kSlc)};
  const auto out = sm.service(ops, 1000);
  EXPECT_EQ(out.foreground_end,
            1000 + c.timing.transfer_per_subpage + c.timing.slc_write);
}

TEST(ServiceModel, MlcOpsSlower) {
  const SsdConfig c = cfg();
  ServiceModel slc_model(c, 2, 2);
  ServiceModel mlc_model(c, 2, 2);
  const cache::PhysOp slc[] = {program_op(0, CellMode::kSlc)};
  const cache::PhysOp mlc[] = {program_op(0, CellMode::kMlc)};
  const auto s = slc_model.service(slc, 0);
  const auto m = mlc_model.service(mlc, 0);
  EXPECT_EQ(m.foreground_end - s.foreground_end,
            c.timing.mlc_write - c.timing.slc_write);
}

TEST(ServiceModel, SameChipSerializes) {
  const SsdConfig c = cfg();
  ServiceModel sm(c, 2, 2);
  const cache::PhysOp ops[] = {program_op(0, CellMode::kSlc),
                               program_op(0, CellMode::kSlc)};
  const auto out = sm.service(ops, 0);
  EXPECT_GE(out.foreground_end, 2 * c.timing.slc_write);
}

TEST(ServiceModel, DifferentChipsParallel) {
  const SsdConfig c = cfg();
  ServiceModel sm(c, 2, 2);
  cache::PhysOp a = program_op(0, CellMode::kSlc);
  cache::PhysOp b = program_op(1, CellMode::kSlc);
  b.channel = 1;  // independent bus
  const cache::PhysOp ops[] = {a, b};
  const auto out = sm.service(ops, 0);
  EXPECT_EQ(out.foreground_end,
            c.timing.transfer_per_subpage + c.timing.slc_write);
}

TEST(ServiceModel, ChannelSerializesTransfers) {
  const SsdConfig c = cfg();
  ServiceModel sm(c, 2, 1);
  // Two programs on different chips but one channel: transfers serialize.
  const cache::PhysOp ops[] = {program_op(0, CellMode::kSlc, 4),
                               program_op(1, CellMode::kSlc, 4)};
  const auto out = sm.service(ops, 0);
  EXPECT_EQ(out.foreground_end,
            2 * 4 * c.timing.transfer_per_subpage + c.timing.slc_write);
}

TEST(ServiceModel, EccCostScalesWithBer) {
  const SsdConfig c = cfg();
  ServiceModel sm(c, 2, 2);
  const auto clean = sm.ecc_cost(read_op(0, 1, 0.0));
  const auto noisy = sm.ecc_cost(read_op(0, 1, 5e-4));
  EXPECT_GT(noisy, clean);
  const auto multi = sm.ecc_cost(read_op(0, 4, 5e-4));
  EXPECT_EQ(multi, 4 * noisy);
}

TEST(ServiceModel, EraseSuspendDoesNotBlockHostOps) {
  const SsdConfig c = cfg();
  ServiceModel sm(c, 2, 2);
  const cache::PhysOp first[] = {erase_op(0)};
  sm.service(first, 0);
  // A host program right after the (suspended) erase starts immediately.
  const cache::PhysOp host[] = {program_op(0, CellMode::kSlc)};
  const auto out = sm.service(host, 100);
  EXPECT_EQ(out.foreground_end,
            100 + c.timing.transfer_per_subpage + c.timing.slc_write);
}

TEST(ServiceModel, ErasesSerializeWithEachOther) {
  const SsdConfig c = cfg();
  ServiceModel sm(c, 2, 2);
  const cache::PhysOp ops[] = {erase_op(0), erase_op(0)};
  const auto out = sm.service(ops, 0);
  EXPECT_EQ(out.background_end, 2 * c.timing.erase);
}

TEST(ServiceModel, BackgroundOpsDoNotExtendForegroundEnd) {
  const SsdConfig c = cfg();
  ServiceModel sm(c, 2, 2);
  const cache::PhysOp ops[] = {program_op(0, CellMode::kSlc),
                               program_op(1, CellMode::kMlc, 4, true)};
  const auto out = sm.service(ops, 0);
  EXPECT_EQ(out.foreground_ops, 1u);
  EXPECT_EQ(out.background_ops, 1u);
  EXPECT_LT(out.foreground_end, out.background_end);
}

TEST(ServiceModel, UsageAccounting) {
  const SsdConfig c = cfg();
  ServiceModel sm(c, 2, 2);
  const cache::PhysOp ops[] = {program_op(0, CellMode::kSlc),
                               read_op(1, 1, 0.0, true), erase_op(0)};
  sm.service(ops, 0);
  EXPECT_EQ(sm.usage().program_fg, c.timing.slc_write);
  EXPECT_EQ(sm.usage().read_bg, c.timing.slc_read);
  EXPECT_EQ(sm.usage().erase_bg, c.timing.erase);
  EXPECT_EQ(sm.usage().total(),
            c.timing.slc_write + c.timing.slc_read + c.timing.erase);
}

TEST(ServiceModel, ResetClearsState) {
  const SsdConfig c = cfg();
  ServiceModel sm(c, 2, 2);
  const cache::PhysOp ops[] = {program_op(0, CellMode::kSlc)};
  sm.service(ops, 0);
  EXPECT_GT(sm.chip_busy_until(0), 0u);
  sm.reset();
  EXPECT_EQ(sm.chip_busy_until(0), 0u);
  EXPECT_EQ(sm.usage().total(), 0u);
}

TEST(ServiceModel, IdleChipStartsAtNow) {
  const SsdConfig c = cfg();
  ServiceModel sm(c, 2, 2);
  const cache::PhysOp ops[] = {program_op(0, CellMode::kSlc)};
  const auto out = sm.service(ops, ms_to_ns(500.0));
  EXPECT_EQ(out.foreground_end, ms_to_ns(500.0) +
                                    c.timing.transfer_per_subpage +
                                    c.timing.slc_write);
}

}  // namespace
}  // namespace ppssd::sim
