// Sharded window pricing (DESIGN.md §15) against the sequential oracle.
//
// The executor's contract is bit-identity: pricing a window across N
// shards and replaying the outcomes (per-op commits, or one aggregate
// merge) must leave the controller in exactly the state sequential
// schedule() calls would have. The randomized twins here drive both
// paths with the same op streams — random chips, kinds, modes and
// in-window dependencies (including cross-shard ones, which force
// segment cuts) — over multiple windows, and compare every observable:
// per-op completion times, lane/erase/channel horizons, usage and
// occupancy accumulators, scheduled-op counts, the clock after a full
// drain, and (for the commit path) the blame ledger's per-op
// decomposition. A randomized EventQueue test pins the stable-merge
// property the cross-window retirement order rests on.
#include "sim/shard_executor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "cache/scheme.h"
#include "common/rng.h"
#include "common/units.h"
#include "sim/controller.h"
#include "sim/event_queue.h"
#include "telemetry/telemetry.h"

namespace ppssd::sim {
namespace {

constexpr std::uint32_t kChips = 8;
constexpr std::uint32_t kChannels = 4;

/// Random op honouring the topology contract (channel = chip % channels)
/// the shard partitioning rests on.
cache::PhysOp rand_op(Rng& rng) {
  cache::PhysOp op;
  op.chip = static_cast<std::uint32_t>(rng.next_below(kChips));
  op.channel = op.chip % kChannels;
  const std::uint64_t kind = rng.next_below(10);
  if (kind < 4) {
    op.kind = cache::PhysOp::Kind::kRead;
  } else if (kind < 8) {
    op.kind = cache::PhysOp::Kind::kProgram;
  } else if (kind < 9) {
    op.kind = cache::PhysOp::Kind::kReprogram;
  } else {
    op.kind = cache::PhysOp::Kind::kErase;
  }
  op.mode = op.kind == cache::PhysOp::Kind::kReprogram || rng.next_below(2)
                ? CellMode::kMlc
                : CellMode::kSlc;
  op.subpages = static_cast<std::uint32_t>(1 + rng.next_below(4));
  op.ber = 0.0;
  op.background =
      op.kind == cache::PhysOp::Kind::kErase || rng.next_below(3) == 0;
  op.origin = op.background ? cache::OpOrigin::kGc : cache::OpOrigin::kHost;
  return op;
}

/// One admission window: arrival-ordered floors, ~30% of items depending
/// on a random earlier item of the same window (any shard).
std::vector<ShardExecutor::WinItem> random_window(Rng& rng, std::size_t n,
                                                  SimTime* now) {
  std::vector<ShardExecutor::WinItem> items;
  items.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    *now += rng.next_below(us_to_ns(20.0));
    ShardExecutor::WinItem it;
    it.op = rand_op(rng);
    it.floor = *now;
    if (i > 0 && rng.next_below(10) < 3) {
      it.dep = static_cast<std::uint32_t>(rng.next_below(i));
    }
    items.push_back(it);
  }
  return items;
}

/// Sequential oracle: schedule the window through the reference path.
std::vector<SimTime> schedule_sequential(
    Controller& ctrl, const std::vector<ShardExecutor::WinItem>& items) {
  std::vector<SimTime> ends(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    SimTime ready = items[i].floor;
    if (items[i].dep != ShardExecutor::kNoDep) {
      ready = std::max(ready, ends[items[i].dep]);
    }
    ends[i] = ctrl.schedule(items[i].op, ready);
  }
  return ends;
}

void expect_same_state(const Controller& a, const Controller& b) {
  for (std::uint32_t c = 0; c < kChips; ++c) {
    EXPECT_EQ(a.chip_free_at(c), b.chip_free_at(c)) << "chip " << c;
    EXPECT_EQ(a.chip_erase_free_at(c), b.chip_erase_free_at(c)) << "chip " << c;
  }
  for (std::uint32_t c = 0; c < kChannels; ++c) {
    EXPECT_EQ(a.channel_free_at(c), b.channel_free_at(c)) << "channel " << c;
  }
  EXPECT_EQ(a.chip_occupancy(), b.chip_occupancy());
  EXPECT_EQ(a.usage().read_fg, b.usage().read_fg);
  EXPECT_EQ(a.usage().read_bg, b.usage().read_bg);
  EXPECT_EQ(a.usage().program_fg, b.usage().program_fg);
  EXPECT_EQ(a.usage().program_bg, b.usage().program_bg);
  EXPECT_EQ(a.usage().erase_bg, b.usage().erase_bg);
  EXPECT_EQ(a.scheduled_ops(), b.scheduled_ops());
}

struct ShardCase {
  std::uint32_t shards;
  std::size_t window;  // items per window (below / above the inline cutoff)
};

class ShardedPricing : public ::testing::TestWithParam<ShardCase> {};

// Commit-replay path (the "exact" mode a run with observers uses):
// price each window across shards, replay per-op commits in submission
// order, and compare every op end and the full controller state against
// the sequential twin — over several windows, so the horizon mirrors
// reload against an already-advanced controller.
TEST_P(ShardedPricing, CommitReplayMatchesSequentialAcrossSeeds) {
  const ShardCase& sc = GetParam();
  const SsdConfig cfg = SsdConfig::scaled(1024);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Controller seq(cfg, kChips, kChannels);
    Controller win(cfg, kChips, kChannels);
    ShardExecutor exec(sc.shards);
    std::vector<Controller::OpOutcome> out;

    Rng rng(seed);
    SimTime now = 0;
    for (int w = 0; w < 4; ++w) {
      const auto items = random_window(rng, sc.window, &now);
      const std::vector<SimTime> ends = schedule_sequential(seq, items);

      exec.price_window(win, items, out);
      ASSERT_EQ(out.size(), items.size());
      for (std::size_t i = 0; i < items.size(); ++i) {
        ASSERT_EQ(out[i].end, ends[i])
            << "seed " << seed << " window " << w << " item " << i;
      }
      for (std::size_t i = 0; i < items.size(); ++i) {
        win.commit(items[i].op, out[i]);
      }
      expect_same_state(seq, win);
    }
    seq.advance_to(kNoTime);
    win.advance_to(kNoTime);
    EXPECT_EQ(seq.clock(), win.clock()) << "seed " << seed;
    EXPECT_EQ(seq.inflight_ops(), 0u);
    EXPECT_EQ(win.inflight_ops(), 0u);
  }
}

// Aggregate fast path (no observers attached): one apply_window() merge
// per window must land horizons, usage, occupancy, op count and the
// post-drain clock on exactly the sequential values.
TEST_P(ShardedPricing, AggregateFastPathMatchesSequential) {
  const ShardCase& sc = GetParam();
  const SsdConfig cfg = SsdConfig::scaled(1024);
  Controller seq(cfg, kChips, kChannels);
  Controller win(cfg, kChips, kChannels);
  ASSERT_FALSE(win.has_observers());
  ShardExecutor exec(sc.shards);
  std::vector<Controller::OpOutcome> out;

  Rng rng(99);
  SimTime now = 0;
  for (int w = 0; w < 4; ++w) {
    const auto items = random_window(rng, sc.window, &now);
    schedule_sequential(seq, items);
    exec.price_window(win, items, out);
    win.apply_window(exec.aggregate());
    expect_same_state(seq, win);
  }
  seq.advance_to(kNoTime);
  win.advance_to(kNoTime);
  EXPECT_EQ(seq.clock(), win.clock());
}

// With the blame ledger attached, commits must replay the attribution
// stream op for op: same decomposition vectors, same blocker
// identification, in the same ledger order.
TEST_P(ShardedPricing, CommitReplaysAttributionIdentically) {
  const ShardCase& sc = GetParam();
  const SsdConfig cfg = SsdConfig::scaled(1024);
  telemetry::TelemetryOptions topt;
  topt.attribution = true;

  Controller seq(cfg, kChips, kChannels);
  telemetry::Telemetry tel_seq(topt);
  seq.attach_telemetry(&tel_seq);

  Controller win(cfg, kChips, kChannels);
  telemetry::Telemetry tel_win(topt);
  win.attach_telemetry(&tel_win);
  ASSERT_TRUE(win.has_observers());

  ShardExecutor exec(sc.shards);
  std::vector<Controller::OpOutcome> out;
  Rng rng(7);
  SimTime now = 0;
  const auto items = random_window(rng, sc.window, &now);

  exec.price_window(win, items, out);
  std::vector<SimTime> ends(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    SimTime ready = items[i].floor;
    if (items[i].dep != ShardExecutor::kNoDep) {
      ready = std::max(ready, ends[items[i].dep]);
    }
    ends[i] = seq.schedule(items[i].op, ready);
    win.commit(items[i].op, out[i]);

    const auto& a = tel_seq.attribution()->last_op();
    const auto& b = tel_win.attribution()->last_op();
    ASSERT_EQ(a.op_id, b.op_id) << "item " << i;
    ASSERT_EQ(a.ready, b.ready) << "item " << i;
    ASSERT_EQ(a.end, b.end) << "item " << i;
    ASSERT_EQ(std::memcmp(a.comp, b.comp, sizeof(a.comp)), 0) << "item " << i;
    ASSERT_EQ(a.blocked_ns, b.blocked_ns) << "item " << i;
    ASSERT_EQ(a.blocker_op, b.blocker_op) << "item " << i;
  }
  EXPECT_EQ(tel_seq.attribution()->ops(), tel_win.attribution()->ops());
}

INSTANTIATE_TEST_SUITE_P(
    ShardsAndWindowSizes, ShardedPricing,
    ::testing::Values(ShardCase{1, 400}, ShardCase{2, 60}, ShardCase{2, 400},
                      ShardCase{4, 60}, ShardCase{4, 2000},
                      ShardCase{8, 400}),
    [](const ::testing::TestParamInfo<ShardCase>& info) {
      return "s" + std::to_string(info.param.shards) + "_w" +
             std::to_string(info.param.window);
    });

// A cross-shard dependency must gate the dependent op's start even when
// its own chip and channel are idle — the segment cut, deterministic.
TEST(ShardedPricing, CrossShardDependencyGatesIdleChip) {
  const SsdConfig cfg = SsdConfig::scaled(1024);
  Controller ctrl(cfg, kChips, kChannels);
  ShardExecutor exec(2);

  std::vector<ShardExecutor::WinItem> items(2);
  items[0].op.chip = 0;  // channel 0 -> shard 0
  items[0].op.channel = 0;
  items[0].op.kind = cache::PhysOp::Kind::kRead;
  items[0].op.mode = CellMode::kSlc;
  items[0].op.subpages = 1;
  items[0].op.background = true;
  items[0].floor = 0;
  items[1].op.chip = 1;  // channel 1 -> shard 1
  items[1].op.channel = 1;
  items[1].op.kind = cache::PhysOp::Kind::kProgram;
  items[1].op.mode = CellMode::kSlc;
  items[1].op.subpages = 1;
  items[1].op.background = true;
  items[1].floor = 0;
  items[1].dep = 0;  // GC relocation: program consumes the read's data

  std::vector<Controller::OpOutcome> out;
  exec.price_window(ctrl, items, out);
  const SimTime read_end = cfg.timing.slc_read +
                           cfg.timing.transfer_per_subpage +
                           cfg.ecc.min_decode;
  EXPECT_EQ(out[0].end, read_end);
  EXPECT_EQ(out[1].end, read_end + cfg.timing.transfer_per_subpage +
                            cfg.timing.slc_write);
}

// The stable-merge property the windowed retirement order rests on:
// events pushed with equal timestamps pop in push order, regardless of
// how the push sequence interleaves times.
TEST(EventQueueStability, EqualTimesPopInPushOrderRandomized) {
  Rng rng(1234);
  EventQueue<std::uint64_t> q;
  std::vector<std::pair<SimTime, std::uint64_t>> pushed;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    const SimTime t = static_cast<SimTime>(rng.next_below(40));  // dense ties
    q.push(t, i);
    pushed.emplace_back(t, i);
  }
  // The oracle: stable sort by time only — FIFO within a timestamp.
  std::stable_sort(pushed.begin(), pushed.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::size_t k = 0;
  q.drain_until(kNoTime, [&](const auto& ev) {
    ASSERT_EQ(ev.time, pushed[k].first) << "event " << k;
    ASSERT_EQ(ev.payload, pushed[k].second) << "event " << k;
    ++k;
  });
  EXPECT_EQ(k, pushed.size());
}

}  // namespace
}  // namespace ppssd::sim
