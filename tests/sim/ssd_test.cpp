#include "sim/ssd.h"

#include <gtest/gtest.h>

#include "cache/ipu_scheme.h"
#include "common/units.h"

namespace ppssd::sim {
namespace {

SsdConfig cfg() { return SsdConfig::scaled(1024); }

TEST(Ssd, WriteCompletesAfterArrival) {
  Ssd ssd(cfg(), "IPU");
  const auto done = ssd.submit(OpType::kWrite, 0, 4096, ms_to_ns(10.0));
  EXPECT_EQ(done.start, ms_to_ns(10.0));
  EXPECT_GT(done.finish, done.start);
  EXPECT_GE(done.drained, done.finish);
  // One 4K write: transfer + SLC program.
  EXPECT_EQ(done.latency(), cfg().timing.transfer_per_subpage +
                                cfg().timing.slc_write);
}

TEST(Ssd, ByteAddressingConvertsToSubpages) {
  Ssd ssd(cfg(), "Baseline");
  // A 6000-byte write at offset 100 touches subpages 0 and 1.
  ssd.submit(OpType::kWrite, 100, 6000, 0);
  EXPECT_TRUE(ssd.scheme().device_map().mapped(0));
  EXPECT_TRUE(ssd.scheme().device_map().mapped(1));
  EXPECT_FALSE(ssd.scheme().device_map().mapped(2));
}

TEST(Ssd, OffsetWrapsIntoLogicalSpace) {
  Ssd ssd(cfg(), "Baseline");
  const std::uint64_t logical = ssd.logical_bytes();
  const auto done =
      ssd.submit(OpType::kWrite, logical + 8192, 4096, ms_to_ns(1.0));
  EXPECT_GT(done.latency(), 0u);
  EXPECT_TRUE(ssd.scheme().device_map().mapped(2));  // wrapped to lsn 2
}

TEST(Ssd, SizeClampedAtTopOfLogicalSpace) {
  Ssd ssd(cfg(), "Baseline");
  const std::uint64_t logical = ssd.logical_bytes();
  // A write straddling the end of the logical space is truncated.
  const auto done =
      ssd.submit(OpType::kWrite, logical - 4096, 64 * 1024, ms_to_ns(1.0));
  EXPECT_GT(done.latency(), 0u);
  ssd.scheme().check_consistency();
}

TEST(Ssd, ReadOfWrittenDataIsFasterThanWrite) {
  Ssd ssd(cfg(), "IPU");
  const auto w = ssd.submit(OpType::kWrite, 0, 8192, ms_to_ns(1.0));
  const auto r = ssd.submit(OpType::kRead, 0, 8192, ms_to_ns(100.0));
  EXPECT_LT(r.latency(), w.latency());
}

TEST(Ssd, BackgroundWorkDeferredAndDrainable) {
  SsdConfig c = cfg();
  c.cache.gc_interleave_ops = 1;
  Ssd ssd(c, "Baseline");
  SimTime now = 0;
  // Enough writes to trigger GC; with interleave the deferred queue sees
  // traffic and fully drains at the end.
  for (Lsn lsn = 0; lsn < 50'000; lsn += 2) {
    ssd.submit(OpType::kWrite, lsn * kSubpageBytes, 8192,
               now += ms_to_ns(0.05));
  }
  ssd.drain_background(now);
  EXPECT_EQ(ssd.deferred_background_ops(), 0u);
  ssd.scheme().check_consistency();
}

TEST(Ssd, InlineGcModeHasNoDeferredOps) {
  SsdConfig c = cfg();
  c.cache.gc_interleave_ops = 0;
  Ssd ssd(c, "Baseline");
  SimTime now = 0;
  for (Lsn lsn = 0; lsn < 30'000; lsn += 2) {
    ssd.submit(OpType::kWrite, lsn * kSubpageBytes, 8192,
               now += ms_to_ns(0.05));
  }
  EXPECT_EQ(ssd.deferred_background_ops(), 0u);
}

TEST(Ssd, EnqueueMatchesSubmitTiming) {
  // The pipelined path schedules through the same controller: identical
  // request streams produce identical completion times.
  Ssd sync_ssd(cfg(), "IPU");
  Ssd async_ssd(cfg(), "IPU");
  SimTime now = 0;
  for (Lsn lsn = 0; lsn < 2000; lsn += 2) {
    now += ms_to_ns(0.05);
    const auto a = sync_ssd.submit(OpType::kWrite, lsn * kSubpageBytes, 8192,
                                   now);
    const auto b = async_ssd.enqueue(OpType::kWrite, lsn * kSubpageBytes,
                                     8192, now);
    ASSERT_EQ(a.finish, b.finish);
    ASSERT_EQ(a.drained, b.drained);
  }
  EXPECT_EQ(async_ssd.in_flight(), 1000u);
  async_ssd.drain_completions(kNoTime, [](const auto&) {});
  EXPECT_EQ(async_ssd.in_flight(), 0u);
}

TEST(Ssd, CompletionsHarvestedOutOfSubmissionOrder) {
  // A fast read enqueued after a slow write is delivered to the host
  // first: the completion queue orders by finish time, not submission.
  Ssd ssd(cfg(), "Baseline");
  // Prime one LSN so the read touches flash, then clear the horizons.
  ssd.submit(OpType::kWrite, 0, 4096, 0);
  ssd.reset_timing();

  const auto w = ssd.enqueue(OpType::kWrite, 1 << 20, 16384, 1000);
  const auto r = ssd.enqueue(OpType::kRead, 0, 4096, 2000);
  ASSERT_LT(r.finish, w.finish);  // short read overtakes the long write
  EXPECT_EQ(ssd.in_flight(), 2u);
  EXPECT_EQ(ssd.next_completion_time(), r.finish);

  std::vector<std::uint64_t> order;
  ssd.drain_completions(r.finish, [&](const Ssd::HostCompletion& c) {
    order.push_back(c.id);
    EXPECT_EQ(c.op, OpType::kRead);
    EXPECT_EQ(c.latency(), r.finish - 2000);
  });
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0], r.id);
  EXPECT_EQ(ssd.in_flight(), 1u);

  ssd.drain_completions(kNoTime, [&](const Ssd::HostCompletion& c) {
    order.push_back(c.id);
  });
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[1], w.id);
  EXPECT_EQ(ssd.in_flight(), 0u);
}

TEST(Ssd, ResetTimingDropsPendingCompletions) {
  Ssd ssd(cfg(), "Baseline");
  ssd.enqueue(OpType::kWrite, 0, 4096, 1000);
  EXPECT_EQ(ssd.in_flight(), 1u);
  ssd.reset_timing();
  EXPECT_EQ(ssd.in_flight(), 0u);
  EXPECT_EQ(ssd.next_completion_time(), kNoTime);
}

TEST(Ssd, CustomSchemeInjection) {
  SsdConfig c = cfg();
  auto ipu = std::make_unique<cache::IpuScheme>(c);
  ipu->set_options({false, false, true});
  Ssd ssd(c, std::move(ipu));
  EXPECT_STREQ(ssd.scheme().name(), "IPU");
}

TEST(Ssd, LogicalBytesMatchesGeometry) {
  Ssd ssd(cfg(), "Baseline");
  EXPECT_EQ(ssd.logical_bytes(),
            ssd.scheme().array().geometry().logical_subpages() *
                kSubpageBytes);
}

}  // namespace
}  // namespace ppssd::sim
