#include "sim/ssd.h"

#include <gtest/gtest.h>

#include "cache/ipu_scheme.h"
#include "common/units.h"

namespace ppssd::sim {
namespace {

SsdConfig cfg() { return SsdConfig::scaled(1024); }

TEST(Ssd, WriteCompletesAfterArrival) {
  Ssd ssd(cfg(), cache::SchemeKind::kIpu);
  const auto done = ssd.submit(OpType::kWrite, 0, 4096, ms_to_ns(10.0));
  EXPECT_EQ(done.start, ms_to_ns(10.0));
  EXPECT_GT(done.finish, done.start);
  EXPECT_GE(done.drained, done.finish);
  // One 4K write: transfer + SLC program.
  EXPECT_EQ(done.latency(), cfg().timing.transfer_per_subpage +
                                cfg().timing.slc_write);
}

TEST(Ssd, ByteAddressingConvertsToSubpages) {
  Ssd ssd(cfg(), cache::SchemeKind::kBaseline);
  // A 6000-byte write at offset 100 touches subpages 0 and 1.
  ssd.submit(OpType::kWrite, 100, 6000, 0);
  EXPECT_TRUE(ssd.scheme().device_map().mapped(0));
  EXPECT_TRUE(ssd.scheme().device_map().mapped(1));
  EXPECT_FALSE(ssd.scheme().device_map().mapped(2));
}

TEST(Ssd, OffsetWrapsIntoLogicalSpace) {
  Ssd ssd(cfg(), cache::SchemeKind::kBaseline);
  const std::uint64_t logical = ssd.logical_bytes();
  const auto done =
      ssd.submit(OpType::kWrite, logical + 8192, 4096, ms_to_ns(1.0));
  EXPECT_GT(done.latency(), 0u);
  EXPECT_TRUE(ssd.scheme().device_map().mapped(2));  // wrapped to lsn 2
}

TEST(Ssd, SizeClampedAtTopOfLogicalSpace) {
  Ssd ssd(cfg(), cache::SchemeKind::kBaseline);
  const std::uint64_t logical = ssd.logical_bytes();
  // A write straddling the end of the logical space is truncated.
  const auto done =
      ssd.submit(OpType::kWrite, logical - 4096, 64 * 1024, ms_to_ns(1.0));
  EXPECT_GT(done.latency(), 0u);
  ssd.scheme().check_consistency();
}

TEST(Ssd, ReadOfWrittenDataIsFasterThanWrite) {
  Ssd ssd(cfg(), cache::SchemeKind::kIpu);
  const auto w = ssd.submit(OpType::kWrite, 0, 8192, ms_to_ns(1.0));
  const auto r = ssd.submit(OpType::kRead, 0, 8192, ms_to_ns(100.0));
  EXPECT_LT(r.latency(), w.latency());
}

TEST(Ssd, BackgroundWorkDeferredAndDrainable) {
  SsdConfig c = cfg();
  c.cache.gc_interleave_ops = 1;
  Ssd ssd(c, cache::SchemeKind::kBaseline);
  SimTime now = 0;
  // Enough writes to trigger GC; with interleave the deferred queue sees
  // traffic and fully drains at the end.
  for (Lsn lsn = 0; lsn < 50'000; lsn += 2) {
    ssd.submit(OpType::kWrite, lsn * kSubpageBytes, 8192,
               now += ms_to_ns(0.05));
  }
  ssd.drain_background(now);
  EXPECT_EQ(ssd.deferred_background_ops(), 0u);
  ssd.scheme().check_consistency();
}

TEST(Ssd, InlineGcModeHasNoDeferredOps) {
  SsdConfig c = cfg();
  c.cache.gc_interleave_ops = 0;
  Ssd ssd(c, cache::SchemeKind::kBaseline);
  SimTime now = 0;
  for (Lsn lsn = 0; lsn < 30'000; lsn += 2) {
    ssd.submit(OpType::kWrite, lsn * kSubpageBytes, 8192,
               now += ms_to_ns(0.05));
  }
  EXPECT_EQ(ssd.deferred_background_ops(), 0u);
}

TEST(Ssd, CustomSchemeInjection) {
  SsdConfig c = cfg();
  auto ipu = std::make_unique<cache::IpuScheme>(c);
  ipu->set_options({false, false, true});
  Ssd ssd(c, std::move(ipu));
  EXPECT_EQ(ssd.scheme().kind(), cache::SchemeKind::kIpu);
}

TEST(Ssd, LogicalBytesMatchesGeometry) {
  Ssd ssd(cfg(), cache::SchemeKind::kBaseline);
  EXPECT_EQ(ssd.logical_bytes(),
            ssd.scheme().array().geometry().logical_subpages() *
                kSubpageBytes);
}

}  // namespace
}  // namespace ppssd::sim
