// Exhaustive verification of the BCH codec on a small code: the classic
// (15, 7, t=2) code over GF(2^4) is small enough to check EVERY single-
// and double-bit error pattern on multiple codewords, plus every
// syndrome-decoding edge the big code exercises probabilistically.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "ecc/bch.h"

namespace ppssd::ecc {
namespace {

const GaloisField& gf16() {
  static const GaloisField gf(4, 0b10011);
  return gf;
}

std::vector<std::uint8_t> bits_of(std::uint32_t value, std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>((value >> i) & 1);
  }
  return out;
}

TEST(BchExhaustive, FifteenSevenParameters) {
  const BchCode code(gf16(), 2, 7);
  EXPECT_EQ(code.n(), 15u);
  EXPECT_EQ(code.parity_bits(), 8u);
  EXPECT_EQ(code.codeword_bits(), 15u);
}

TEST(BchExhaustive, AllSingleErrorsOnAllMessages) {
  const BchCode code(gf16(), 2, 7);
  // All 128 messages x all 15 single-bit errors = 1920 decodes.
  for (std::uint32_t msg = 0; msg < 128; ++msg) {
    const auto data = bits_of(msg, 7);
    const auto clean = code.encode(data);
    for (std::uint32_t pos = 0; pos < 15; ++pos) {
      auto cw = clean;
      cw[pos] ^= 1;
      const auto res = code.decode(cw);
      ASSERT_EQ(res.status, DecodeStatus::kCorrected)
          << "msg=" << msg << " pos=" << pos;
      ASSERT_EQ(res.corrected, 1u);
      ASSERT_EQ(cw, clean);
    }
  }
}

TEST(BchExhaustive, AllDoubleErrorsOnSampledMessages) {
  const BchCode code(gf16(), 2, 7);
  // 8 messages x all C(15,2)=105 double-error patterns.
  for (const std::uint32_t msg : {0u, 1u, 42u, 63u, 64u, 85u, 100u, 127u}) {
    const auto data = bits_of(msg, 7);
    const auto clean = code.encode(data);
    for (std::uint32_t a = 0; a < 15; ++a) {
      for (std::uint32_t b = a + 1; b < 15; ++b) {
        auto cw = clean;
        cw[a] ^= 1;
        cw[b] ^= 1;
        const auto res = code.decode(cw);
        ASSERT_EQ(res.status, DecodeStatus::kCorrected)
            << "msg=" << msg << " a=" << a << " b=" << b;
        ASSERT_EQ(res.corrected, 2u);
        ASSERT_EQ(cw, clean);
      }
    }
  }
}

TEST(BchExhaustive, CodewordsFormALinearCode) {
  // The sum (XOR) of any two codewords is a codeword (zero syndromes).
  const BchCode code(gf16(), 2, 7);
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = code.encode(bits_of(rng.next_below(128), 7));
    const auto b = code.encode(bits_of(rng.next_below(128), 7));
    std::vector<std::uint8_t> sum(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      sum[i] = static_cast<std::uint8_t>(a[i] ^ b[i]);
    }
    EXPECT_NE(code.decode(sum).status, DecodeStatus::kFailed);
    // After decode (clean), sum must be unchanged: it IS a codeword.
  }
}

TEST(BchExhaustive, MinimumDistanceAtLeastFive) {
  // t=2 requires d_min >= 5: every nonzero codeword has weight >= 5.
  const BchCode code(gf16(), 2, 7);
  for (std::uint32_t msg = 1; msg < 128; ++msg) {
    const auto cw = code.encode(bits_of(msg, 7));
    int weight = 0;
    for (const auto bit : cw) weight += bit;
    EXPECT_GE(weight, 5) << "msg=" << msg;
  }
}

TEST(BchExhaustive, TripleErrorsNeverMiscorrectSilently) {
  // Weight-3 patterns either fail (detected) or "correct" to a different
  // codeword — but then the syndrome re-verification inside decode()
  // guarantees the result is a valid codeword, never garbage.
  const BchCode code(gf16(), 2, 7);
  const auto clean = code.encode(bits_of(77, 7));
  int detected = 0;
  int miscorrected = 0;
  for (std::uint32_t a = 0; a < 15; ++a) {
    for (std::uint32_t b = a + 1; b < 15; ++b) {
      for (std::uint32_t c = b + 1; c < 15; ++c) {
        auto cw = clean;
        cw[a] ^= 1;
        cw[b] ^= 1;
        cw[c] ^= 1;
        const auto res = code.decode(cw);
        if (res.status == DecodeStatus::kFailed) {
          ++detected;
        } else {
          ASSERT_EQ(res.status, DecodeStatus::kCorrected);
          // Miscorrection lands on a *different* valid codeword.
          EXPECT_NE(cw, clean);
          EXPECT_EQ(code.decode(cw).status, DecodeStatus::kClean);
          ++miscorrected;
        }
      }
    }
  }
  EXPECT_EQ(detected + miscorrected, 455);
  EXPECT_GT(detected, 0);
}

}  // namespace
}  // namespace ppssd::ecc
