#include "ecc/ber_model.h"

#include <gtest/gtest.h>

#include "common/config.h"

namespace ppssd::ecc {
namespace {

BerModel default_model() { return BerModel(SsdConfig{}.ber); }

TEST(BerModel, Figure2AnchorsMatch) {
  const BerModel model = default_model();
  // Paper/Zhang [19]: at 4000 P/E, conventional 2.8e-4, partial 3.8e-4.
  EXPECT_NEAR(model.conventional_ber(4000), 2.8e-4, 1e-6);
  EXPECT_NEAR(model.partial_ber(4000, 4), 3.8e-4, 0.1e-4);
}

TEST(BerModel, MonotoneInPeCycles) {
  const BerModel model = default_model();
  double prev = 0.0;
  for (std::uint32_t pe = 0; pe <= 12000; pe += 500) {
    const double ber = model.conventional_ber(pe);
    EXPECT_GT(ber, prev);
    prev = ber;
  }
}

TEST(BerModel, PartialGapWidensWithWear) {
  const BerModel model = default_model();
  double prev_gap = 0.0;
  for (std::uint32_t pe = 1000; pe <= 12000; pe += 1000) {
    const double gap =
        model.partial_ber(pe, 4) - model.conventional_ber(pe);
    EXPECT_GT(gap, prev_gap) << "pe=" << pe;
    prev_gap = gap;
  }
}

TEST(BerModel, SlcFactorScalesSlcModePages) {
  // Default: SLC-mode pages are MLC cells in one-bit mode; equal base BER.
  const BerModel model = default_model();
  nand::DisturbSnapshot slc{CellMode::kSlc, 4000, 0, 0};
  nand::DisturbSnapshot mlc{CellMode::kMlc, 4000, 0, 0};
  EXPECT_DOUBLE_EQ(model.raw_ber(slc), model.raw_ber(mlc));

  // A non-unit factor scales only the SLC-mode curve.
  BerConfig cfg = SsdConfig{}.ber;
  cfg.slc_factor = 0.25;
  const BerModel scaled(cfg);
  EXPECT_DOUBLE_EQ(scaled.raw_ber(slc), 0.25 * scaled.raw_ber(mlc));
  EXPECT_DOUBLE_EQ(scaled.raw_ber(mlc), model.raw_ber(mlc));
}

TEST(BerModel, DisturbIncreasesBer) {
  const BerModel model = default_model();
  nand::DisturbSnapshot base{CellMode::kSlc, 4000, 0, 0};
  nand::DisturbSnapshot in_page{CellMode::kSlc, 4000, 2, 0};
  nand::DisturbSnapshot neighbor{CellMode::kSlc, 4000, 0, 5};
  EXPECT_GT(model.raw_ber(in_page), model.raw_ber(base));
  EXPECT_GT(model.raw_ber(neighbor), model.raw_ber(base));
}

TEST(BerModel, InPageDisturbDominatesNeighbor) {
  // One in-page disturb event must hurt more than one neighbour event —
  // the core of the paper's argument for intra-page update.
  const BerModel model = default_model();
  nand::DisturbSnapshot in_page{CellMode::kSlc, 4000, 1, 0};
  nand::DisturbSnapshot neighbor{CellMode::kSlc, 4000, 0, 1};
  EXPECT_GT(model.raw_ber(in_page), model.raw_ber(neighbor));
}

TEST(BerModel, BerNeverExceedsHalf) {
  const BerModel model = default_model();
  nand::DisturbSnapshot extreme{CellMode::kMlc, 4'000'000, 200, 60000};
  EXPECT_LE(model.raw_ber(extreme), 0.5);
}

TEST(BerModel, FreshDeviceHasFloor) {
  const BerModel model = default_model();
  EXPECT_GT(model.conventional_ber(0), 0.0);
}

}  // namespace
}  // namespace ppssd::ecc
