#include "ecc/galois.h"

#include <gtest/gtest.h>

namespace ppssd::ecc {
namespace {

// GF(2^4) with x^4 + x + 1 — small enough to verify exhaustively.
GaloisField gf4() { return GaloisField(4, 0b10011); }

TEST(GaloisField, BasicProperties) {
  const GaloisField gf = gf4();
  EXPECT_EQ(gf.m(), 4u);
  EXPECT_EQ(gf.n(), 15u);
  EXPECT_EQ(gf.exp(0), 1u);
  EXPECT_EQ(gf.log(1), 0u);
}

TEST(GaloisField, ExpLogRoundTrip) {
  const GaloisField gf = gf4();
  for (std::uint32_t i = 0; i < gf.n(); ++i) {
    EXPECT_EQ(gf.log(gf.exp(i)), i);
  }
  for (std::uint32_t x = 1; x <= gf.n(); ++x) {
    EXPECT_EQ(gf.exp(gf.log(x)), x);
  }
}

TEST(GaloisField, MultiplicationTableProperties) {
  const GaloisField gf = gf4();
  for (std::uint32_t a = 0; a <= gf.n(); ++a) {
    EXPECT_EQ(gf.mul(a, 0), 0u);
    EXPECT_EQ(gf.mul(0, a), 0u);
    EXPECT_EQ(gf.mul(a, 1), a);
    for (std::uint32_t b = 1; b <= gf.n(); ++b) {
      EXPECT_EQ(gf.mul(a, b), gf.mul(b, a));
      if (a != 0) {
        EXPECT_EQ(gf.div(gf.mul(a, b), b), a);
      }
    }
  }
}

TEST(GaloisField, InverseIsInverse) {
  const GaloisField gf = gf4();
  for (std::uint32_t a = 1; a <= gf.n(); ++a) {
    EXPECT_EQ(gf.mul(a, gf.inv(a)), 1u);
  }
}

TEST(GaloisField, PowMatchesRepeatedMul) {
  const GaloisField gf = gf4();
  for (std::uint32_t a = 1; a <= gf.n(); ++a) {
    std::uint32_t acc = 1;
    for (std::uint64_t e = 0; e < 20; ++e) {
      EXPECT_EQ(gf.pow(a, e), acc) << "a=" << a << " e=" << e;
      acc = gf.mul(acc, a);
    }
  }
}

TEST(GaloisField, DistributivityExhaustive) {
  const GaloisField gf = gf4();
  for (std::uint32_t a = 0; a <= gf.n(); ++a) {
    for (std::uint32_t b = 0; b <= gf.n(); ++b) {
      for (std::uint32_t c = 0; c <= gf.n(); c += 3) {
        EXPECT_EQ(gf.mul(a, GaloisField::add(b, c)),
                  GaloisField::add(gf.mul(a, b), gf.mul(a, c)));
      }
    }
  }
}

TEST(GaloisField, Gf13IsWellFormed) {
  const GaloisField& gf = GaloisField::gf13();
  EXPECT_EQ(gf.n(), 8191u);
  // alpha^n == alpha^0 == 1 (full multiplicative order).
  EXPECT_EQ(gf.exp(gf.n()), 1u);
  // Spot-check inverses in the big field.
  for (std::uint32_t a : {1u, 2u, 1234u, 8000u}) {
    EXPECT_EQ(gf.mul(a, gf.inv(a)), 1u);
  }
}

TEST(GfPoly, DegreeAndEval) {
  const GaloisField gf = gf4();
  // p(x) = 3 + x^2 over GF(16).
  GfPoly p{{3, 0, 1}};
  EXPECT_EQ(p.degree(), 2);
  EXPECT_EQ(p.eval(gf, 0), 3u);
  // p(1) = 3 + 1 = 2 (XOR addition).
  EXPECT_EQ(p.eval(gf, 1), 2u);

  GfPoly zero{{0, 0}};
  EXPECT_EQ(zero.degree(), -1);
}

TEST(GaloisFieldDeathTest, LogZeroAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const GaloisField gf = gf4();
  EXPECT_DEATH((void)gf.log(0), "log of zero");
}

}  // namespace
}  // namespace ppssd::ecc
