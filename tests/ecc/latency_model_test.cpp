#include "ecc/latency_model.h"

#include <gtest/gtest.h>

#include "common/config.h"

namespace ppssd::ecc {
namespace {

EccLatencyModel default_model() { return EccLatencyModel(SsdConfig{}.ecc); }

TEST(EccLatency, BoundsRespected) {
  const EccLatencyModel model = default_model();
  EXPECT_EQ(model.decode_time(0.0), model.config().min_decode);
  // A hopelessly noisy read saturates at the max decode time.
  EXPECT_EQ(model.decode_time(0.5), model.config().max_decode);
}

TEST(EccLatency, MonotoneInBer) {
  const EccLatencyModel model = default_model();
  SimTime prev = 0;
  for (double ber = 0.0; ber < 2e-3; ber += 1e-4) {
    const SimTime t = model.decode_time(ber);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(EccLatency, ExpectedErrorsArithmetic) {
  const EccLatencyModel model = default_model();
  // 4 KiB codeword = 32768 bits; at BER 1e-3 that's ~32.8 expected errors.
  EXPECT_NEAR(model.expected_errors(1e-3), 32.768, 1e-9);
}

TEST(EccLatency, PaperScaleMagnitude) {
  const EccLatencyModel model = default_model();
  // At the paper's 4000 P/E MLC BER (2.8e-4 -> ~9.2 errors vs t=40) the
  // decode time must sit strictly between min and max.
  const SimTime t = model.decode_time(2.8e-4);
  EXPECT_GT(t, model.config().min_decode);
  EXPECT_LT(t, model.config().max_decode);
}

TEST(EccLatency, MultiCodewordScalesLinearly) {
  const EccLatencyModel model = default_model();
  const SimTime one = model.decode_time(1e-4);
  EXPECT_EQ(model.decode_time(1e-4, 4), one * 4);
}

}  // namespace
}  // namespace ppssd::ecc
