#include "ecc/bch.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.h"

namespace ppssd::ecc {
namespace {

std::vector<std::uint8_t> random_bits(Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> bits(n);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next_u64() & 1);
  return bits;
}

/// Inject `count` distinct random bit flips.
void inject(Rng& rng, std::vector<std::uint8_t>& codeword,
            std::uint32_t count) {
  std::set<std::uint64_t> positions;
  while (positions.size() < count) {
    positions.insert(rng.next_below(codeword.size()));
  }
  for (const auto pos : positions) {
    codeword[pos] ^= 1;
  }
}

TEST(BchCode, GeneratorPolynomialShape) {
  const BchCode code(GaloisField::gf13(), 4, 1024);
  // deg(g) <= m*t and g(1) != 0 only if x+1 divides... at minimum the
  // generator is monic with nonzero constant term.
  EXPECT_LE(code.parity_bits(), 13u * 4u);
  EXPECT_EQ(code.generator().front(), 1);
  EXPECT_EQ(code.generator().back(), 1);
}

TEST(BchCode, CleanRoundTrip) {
  Rng rng(1);
  const BchCode code(GaloisField::gf13(), 4, 512);
  const auto data = random_bits(rng, code.data_bits());
  auto cw = code.encode(data);
  EXPECT_EQ(cw.size(), code.codeword_bits());
  const auto res = code.decode(cw);
  EXPECT_EQ(res.status, DecodeStatus::kClean);
  EXPECT_EQ(code.extract_data(cw), data);
}

TEST(BchCode, SystematicLayoutPreservesData) {
  Rng rng(2);
  const BchCode code(GaloisField::gf13(), 2, 256);
  const auto data = random_bits(rng, code.data_bits());
  const auto cw = code.encode(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(cw[code.parity_bits() + i], data[i]);
  }
}

// Property sweep: every error weight up to t must decode exactly.
class BchCorrectionSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BchCorrectionSweep, CorrectsUpToT) {
  const std::uint32_t t = GetParam();
  Rng rng(100 + t);
  const BchCode code(GaloisField::gf13(), t, 1024);
  for (std::uint32_t errors = 0; errors <= t; ++errors) {
    const auto data = random_bits(rng, code.data_bits());
    auto cw = code.encode(data);
    inject(rng, cw, errors);
    const auto res = code.decode(cw);
    if (errors == 0) {
      EXPECT_EQ(res.status, DecodeStatus::kClean);
    } else {
      ASSERT_EQ(res.status, DecodeStatus::kCorrected)
          << "t=" << t << " errors=" << errors;
      EXPECT_EQ(res.corrected, errors);
    }
    EXPECT_EQ(code.extract_data(cw), data);
  }
}

INSTANTIATE_TEST_SUITE_P(Capabilities, BchCorrectionSweep,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(BchCode, DetectsBeyondCapability) {
  Rng rng(3);
  const BchCode code(GaloisField::gf13(), 4, 1024);
  int detected = 0;
  int trials = 20;
  for (int i = 0; i < trials; ++i) {
    const auto data = random_bits(rng, code.data_bits());
    auto cw = code.encode(data);
    inject(rng, cw, code.t() + 3);
    const auto res = code.decode(cw);
    if (res.status == DecodeStatus::kFailed) {
      ++detected;
    } else if (res.status == DecodeStatus::kCorrected) {
      // Miscorrection is possible but the result must differ from the
      // original (we flipped more bits than t).
      EXPECT_NE(code.extract_data(cw), data);
    }
  }
  // The vast majority of over-weight patterns must be detected.
  EXPECT_GE(detected, trials * 3 / 4);
}

TEST(BchCode, ErrorsInParityAreCorrected) {
  Rng rng(4);
  const BchCode code(GaloisField::gf13(), 4, 512);
  const auto data = random_bits(rng, code.data_bits());
  auto cw = code.encode(data);
  cw[0] ^= 1;  // parity bit 0
  cw[1] ^= 1;
  const auto res = code.decode(cw);
  EXPECT_EQ(res.status, DecodeStatus::kCorrected);
  EXPECT_EQ(res.corrected, 2u);
  EXPECT_EQ(code.extract_data(cw), data);
}

TEST(BchCode, SmallFieldCode) {
  // GF(2^4): n=15, t=2 -> the classic (15, 7) BCH code.
  const GaloisField gf(4, 0b10011);
  const BchCode code(gf, 2, 7);
  EXPECT_EQ(code.parity_bits(), 8u);
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const auto data = random_bits(rng, 7);
    auto cw = code.encode(data);
    inject(rng, cw, 2);
    const auto res = code.decode(cw);
    ASSERT_EQ(res.status, DecodeStatus::kCorrected);
    EXPECT_EQ(code.extract_data(cw), data);
  }
}

TEST(BchCode, AllZeroAndAllOneData) {
  const BchCode code(GaloisField::gf13(), 4, 128);
  std::vector<std::uint8_t> zeros(code.data_bits(), 0);
  auto cw = code.encode(zeros);
  // All-zero data encodes to the all-zero codeword.
  for (const auto bit : cw) EXPECT_EQ(bit, 0);
  EXPECT_EQ(code.decode(cw).status, DecodeStatus::kClean);

  std::vector<std::uint8_t> ones(code.data_bits(), 1);
  auto cw1 = code.encode(ones);
  Rng rng(6);
  inject(rng, cw1, 4);
  EXPECT_EQ(code.decode(cw1).status, DecodeStatus::kCorrected);
  EXPECT_EQ(code.extract_data(cw1), ones);
}

}  // namespace
}  // namespace ppssd::ecc
