// Fused vs reference write-path equivalence (DESIGN.md §10).
//
// FlashArray::program / ::invalidate are single-pass fused
// implementations of the layer-by-layer chains kept as
// program_reference / invalidate_reference. This test drives thousands
// of randomized program / invalidate / erase sequences through two
// arrays built from the same config — one using the fused entry points,
// one the reference oracles — and asserts the complete observable state
// stays identical at every step: per-subpage fields (owner, version,
// write time, disturb snapshots), page counters, block running
// aggregates including the age histogram, array counters, and the
// BlockObserver event stream. prefill_page is additionally locked to a
// frontier-fill through the reference path at sim time 0.
#include <gtest/gtest.h>

#include <vector>

#include "common/config.h"
#include "common/rng.h"
#include "common/units.h"
#include "nand/flash_array.h"

namespace ppssd::nand {
namespace {

struct ObservedEvent {
  BlockId block;
  std::uint32_t invalid;
  bool operator==(const ObservedEvent&) const = default;
};

class RecordingObserver : public BlockObserver {
 public:
  void on_subpage_invalidated(BlockId b, std::uint32_t invalid) override {
    events.push_back({b, invalid});
  }
  std::vector<ObservedEvent> events;
};

void expect_same_state(const FlashArray& fused, const FlashArray& ref) {
  const auto& geom = fused.geometry();
  for (BlockId b = 0; b < geom.total_blocks(); ++b) {
    const Block& fb = fused.block(b);
    const Block& rb = ref.block(b);
    ASSERT_EQ(fb.write_frontier(), rb.write_frontier()) << "block " << b;
    ASSERT_EQ(fb.valid_subpages(), rb.valid_subpages()) << "block " << b;
    ASSERT_EQ(fb.invalid_subpages(), rb.invalid_subpages()) << "block " << b;
    ASSERT_EQ(fb.sum_write_time_ms(), rb.sum_write_time_ms())
        << "block " << b;
    ASSERT_EQ(fb.never_updated_valid(), rb.never_updated_valid())
        << "block " << b;
    ASSERT_TRUE(fb.age_histogram() == rb.age_histogram()) << "block " << b;
    ASSERT_EQ(fb.erase_count(), rb.erase_count()) << "block " << b;
    ASSERT_EQ(fb.last_erase_time(), rb.last_erase_time()) << "block " << b;
    for (PageId p = 0; p < fb.page_count(); ++p) {
      const Page& fp = fb.page(p);
      const Page& rp = rb.page(p);
      ASSERT_EQ(fp.program_ops(), rp.program_ops())
          << "block " << b << " page " << p;
      ASSERT_EQ(fp.neighbor_programs(), rp.neighbor_programs())
          << "block " << b << " page " << p;
      for (SubpageId s = 0; s < fb.subpages_per_page(); ++s) {
        const Subpage fs = fused.subpage(b, p, s);
        const Subpage rs = ref.subpage(b, p, s);
        ASSERT_EQ(fs.state, rs.state)
            << "block " << b << " page " << p << " slot " << int(s);
        ASSERT_EQ(fs.owner_lsn, rs.owner_lsn);
        ASSERT_EQ(fs.version, rs.version);
        ASSERT_EQ(fs.write_time_ms, rs.write_time_ms);
        ASSERT_EQ(fs.programs_before, rs.programs_before);
        ASSERT_EQ(fs.neighbors_before, rs.neighbors_before);
        if (fs.state != SubpageState::kFree) {
          ASSERT_EQ(fused.disturb_of(b, p, s).in_page_disturbs,
                    ref.disturb_of(b, p, s).in_page_disturbs);
          ASSERT_EQ(fused.disturb_of(b, p, s).neighbor_disturbs,
                    ref.disturb_of(b, p, s).neighbor_disturbs);
        }
      }
    }
  }
  const ArrayCounters& fc = fused.counters();
  const ArrayCounters& rc = ref.counters();
  ASSERT_EQ(fc.slc_program_ops, rc.slc_program_ops);
  ASSERT_EQ(fc.mlc_program_ops, rc.mlc_program_ops);
  ASSERT_EQ(fc.partial_program_ops, rc.partial_program_ops);
  ASSERT_EQ(fc.slc_subpages_written, rc.slc_subpages_written);
  ASSERT_EQ(fc.mlc_subpages_written, rc.mlc_subpages_written);
  ASSERT_EQ(fc.slc_erases, rc.slc_erases);
  ASSERT_EQ(fc.mlc_erases, rc.mlc_erases);
  for (std::uint32_t p = 0; p < fused.geometry().planes(); ++p) {
    ASSERT_EQ(fused.plane(p).programs(), ref.plane(p).programs());
    ASSERT_EQ(fused.plane(p).erases(), ref.plane(p).erases());
  }
}

class FusedPathEquivalence : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(FusedPathEquivalence, RandomSequencesAgree) {
  SsdConfig cfg = SsdConfig::scaled(1024);
  cfg.cache.max_partial_programs = 4;
  FlashArray fused(cfg);
  FlashArray ref(cfg);
  RecordingObserver fused_obs;
  RecordingObserver ref_obs;
  fused.set_block_observer(&fused_obs);
  ref.set_block_observer(&ref_obs);

  const auto& geom = fused.geometry();
  Rng rng(GetParam());
  Lsn next_lsn = 1;
  SimTime now = 0;

  // Valid slots available to invalidate, appended as programs land.
  struct Slot {
    BlockId b;
    PageId p;
    SubpageId s;
  };
  std::vector<Slot> valid_slots;

  for (int step = 0; step < 4000; ++step) {
    now += ms_to_ns(static_cast<double>(rng.next_below(5)));
    const auto op = rng.next_below(100);
    if (op < 70) {
      // Program: pick a block, then either its frontier page (first
      // program) or an already-programmed page (partial program).
      const BlockId b =
          static_cast<BlockId>(rng.next_below(geom.total_blocks()));
      const Block& blk = fused.block(b);
      PageId p = kInvalidPage;
      if (blk.has_free_page() && rng.chance(0.6)) {
        p = static_cast<PageId>(blk.write_frontier());
      } else if (blk.write_frontier() > 0) {
        p = static_cast<PageId>(rng.next_below(blk.write_frontier()));
        if (!fused.can_partial_program(b, p)) p = kInvalidPage;
      }
      if (p == kInvalidPage) continue;
      // Fill 1..free_slots random free slots.
      std::vector<SlotWrite> writes;
      for (SubpageId s = 0; s < blk.subpages_per_page(); ++s) {
        if (fused.subpage_state(b, p, s) == SubpageState::kFree &&
            (writes.empty() || rng.chance(0.4))) {
          writes.push_back({s, next_lsn, static_cast<std::uint32_t>(
                                             1 + rng.next_below(9))});
          ++next_lsn;
        }
      }
      if (writes.empty()) continue;
      const bool fused_partial = fused.program(b, p, writes, now);
      const bool ref_partial = ref.program_reference(b, p, writes, now);
      ASSERT_EQ(fused_partial, ref_partial);
      for (const SlotWrite& w : writes) valid_slots.push_back({b, p, w.slot});
    } else if (op < 95) {
      if (valid_slots.empty()) continue;
      const auto i = rng.next_below(valid_slots.size());
      const Slot slot = valid_slots[i];
      valid_slots[i] = valid_slots.back();
      valid_slots.pop_back();
      fused.invalidate(slot.b, slot.p, slot.s);
      ref.invalidate_reference(slot.b, slot.p, slot.s);
    } else {
      // Erase a block with no remaining valid data.
      const BlockId b =
          static_cast<BlockId>(rng.next_below(geom.total_blocks()));
      if (fused.block(b).valid_subpages() != 0 ||
          fused.block(b).programmed_subpages() == 0) {
        continue;
      }
      fused.erase(b, now);
      ref.erase(b, now);
    }
    if (step % 256 == 0) {
      expect_same_state(fused, ref);
      ASSERT_EQ(fused_obs.events, ref_obs.events);
    }
  }
  expect_same_state(fused, ref);
  ASSERT_EQ(fused_obs.events, ref_obs.events);
  ASSERT_FALSE(fused_obs.events.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FusedPathEquivalence,
                         ::testing::Values(1u, 2u, 3u, 29u, 1234567u));

// prefill_page must equal a frontier program through the reference chain
// at sim time 0 — it is the Scheme setup fast path.
TEST(FusedPathEquivalence, PrefillMatchesReferenceFrontierFill) {
  SsdConfig cfg = SsdConfig::scaled(1024);
  FlashArray fused(cfg);
  FlashArray ref(cfg);
  const auto& geom = fused.geometry();
  const BlockId mlc0 = geom.slc_blocks_per_plane();  // first MLC, plane 0
  Lsn lsn = 0;
  std::vector<SlotWrite> writes;
  for (const BlockId b : {BlockId{0}, mlc0}) {
    const std::uint32_t pages = fused.block(b).page_count();
    for (PageId p = 0; p < pages; ++p) {
      writes.clear();
      // Vary fill width like prefill_mlc's final partial page.
      const std::uint32_t n = static_cast<std::uint32_t>(p) + 1 == pages
                                  ? 1u
                                  : geom.subpages_per_page();
      for (std::uint32_t s = 0; s < n; ++s) {
        writes.push_back({static_cast<SubpageId>(s), lsn, 1});
        ++lsn;
      }
      fused.prefill_page(b, p, writes);
      ref.program_reference(b, p, writes, /*now=*/0);
    }
  }
  expect_same_state(fused, ref);
}

}  // namespace
}  // namespace ppssd::nand
